package sharebackup

import (
	"fmt"
	"math"
	"time"

	"sharebackup/internal/controller"
	"sharebackup/internal/fluid"
	"sharebackup/internal/routing"
	"sharebackup/internal/topo"
)

// The paper's failure study deliberately simulates "the final states after
// failures without the transient dynamics" (Section 2.2). This file goes one
// step further: a transient study that models the recovery window itself —
// traffic through the failed element stalls for the scheme's recovery
// latency, then resumes on whatever path the scheme provides. It quantifies
// the paper's Section 5.3 argument end to end: ShareBackup's sub-2ms gap is
// invisible at coflow timescales, while rerouting's lasting bandwidth loss
// is what actually hurts.

// TransientConfig parameterizes the transient study.
type TransientConfig struct {
	// K is the fat-tree parameter. Default 8.
	K int
	// Seed drives ECMP hashing.
	Seed int64
	// FlowBytes is each reference flow's size. Default 1e9 (a
	// several-second transfer at the all-to-all max-min share of a
	// 10 Gbps fabric, so millisecond gaps are ~1e-4 of the CCT).
	FlowBytes float64
	// FailAfter is when the aggregation switch fails, as a fraction of
	// the baseline completion time. Default 0.25.
	FailAfter float64
}

func (c *TransientConfig) setDefaults() {
	if c.K == 0 {
		c.K = 8
	}
	if c.FlowBytes == 0 {
		c.FlowBytes = 1e9
	}
	if c.FailAfter == 0 {
		c.FailAfter = 0.25
	}
}

// TransientRow is one scheme's outcome.
type TransientRow struct {
	Scheme string
	// Gap is the recovery window applied to affected flows.
	Gap time.Duration
	// MeanSlowdown / MaxSlowdown are flow completion times against the
	// no-failure baseline.
	MeanSlowdown float64
	MaxSlowdown  float64
	// Disconnected counts flows that never recovered a path.
	Disconnected int
}

// TransientStudy runs an all-to-all workload, fails an aggregation switch
// mid-transfer, applies each scheme's recovery gap and post-recovery paths,
// and reports completion-time slowdowns against the unfailed baseline.
func TransientStudy(cfg TransientConfig) ([]TransientRow, error) {
	cfg.setDefaults()
	// Real units so millisecond gaps are measurable against seconds-scale
	// transfers: 10 Gbps fabric links, 10:1 oversubscribed rack access.
	const linkBps = 1.25e9
	mk := func(ab bool) (*topo.FatTree, error) {
		return topo.NewFatTree(topo.Config{
			K: cfg.K, HostsPerEdge: 1,
			LinkCapacity: linkBps,
			HostCapacity: 10 * float64(cfg.K/2) * linkBps,
			AB:           ab,
		})
	}
	ft, err := mk(false)
	if err != nil {
		return nil, err
	}
	f10, err := mk(true)
	if err != nil {
		return nil, err
	}

	// Recovery gaps from the Section 5.3 constants (probe + comm +
	// reset / rule update).
	probe := time.Millisecond
	sbGap := probe + 200*time.Microsecond + 70*time.Nanosecond
	rerouteGap := probe + controller.SDNRuleUpdateLatency

	type scheme struct {
		name   string
		ft     *topo.FatTree
		mode   rerouteScheme
		gap    time.Duration
		victim topo.NodeID
	}
	schemes := []scheme{
		{"ShareBackup", ft, schemeShareBackup, sbGap, ft.Agg(0, 0)},
		{"fat-tree", ft, schemeGlobalOptimal, rerouteGap, ft.Agg(0, 0)},
		{"F10", f10, schemeF10Local, rerouteGap, f10.Agg(0, 0)},
	}

	var rows []TransientRow
	for _, s := range schemes {
		flows, err := allToAllFlows(s.ft, cfg.Seed)
		if err != nil {
			return nil, err
		}
		baseline, err := completionTimes(s.ft, flows, cfg.FlowBytes, nil, 0, 0, s.mode)
		if err != nil {
			return nil, err
		}
		baseMax := 0.0
		for _, v := range baseline {
			if v > baseMax {
				baseMax = v
			}
		}
		blocked := topo.NewBlocked()
		blocked.BlockNode(s.victim)
		failAt := cfg.FailAfter * baseMax
		withFailure, err := completionTimes(s.ft, flows, cfg.FlowBytes, blocked, failAt, s.gap.Seconds(), s.mode)
		if err != nil {
			return nil, err
		}
		row := TransientRow{Scheme: s.name, Gap: s.gap}
		count := 0
		for i := range flows {
			if math.IsInf(withFailure[i], 1) {
				row.Disconnected++
				continue
			}
			sd := withFailure[i] / baseline[i]
			row.MeanSlowdown += sd
			if sd > row.MaxSlowdown {
				row.MaxSlowdown = sd
			}
			count++
		}
		if count > 0 {
			row.MeanSlowdown /= float64(count)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// completionTimes simulates the flow set and returns per-flow completion
// times. When blocked is non-nil, the failure occurs at failAt: affected
// flows stall for gapSec, then resume on the scheme's recovery path
// (ShareBackup: the same path at full capacity; rerouting: a surviving or
// detour path).
func completionTimes(ft *topo.FatTree, flows []flowRef, bytes float64, blocked *topo.Blocked, failAt, gapSec float64, mode rerouteScheme) ([]float64, error) {
	sim := fluid.New(ft.Topology)
	for i, f := range flows {
		if err := sim.AddFlow(fluid.FlowID(i), bytes, 0, f.path); err != nil {
			return nil, err
		}
	}
	if blocked != nil {
		if err := sim.Run(failAt); err != nil {
			return nil, err
		}
		// Failure: affected, unfinished flows stall.
		var affected []int
		for i, f := range flows {
			fl := sim.Flow(fluid.FlowID(i))
			if fl.Done() || blocked.PathOK(f.path) {
				continue
			}
			affected = append(affected, i)
			if err := sim.SetPath(fluid.FlowID(i), topo.Path{}); err != nil {
				return nil, err
			}
		}
		if err := sim.Run(failAt + gapSec); err != nil {
			return nil, err
		}
		// Recovery: resume on the scheme's paths.
		load := routing.NewLinkLoad(ft.Topology)
		var scratch routing.Scratch // shared avoid set across the reroute burst
		for i, f := range flows {
			if !sim.Flow(fluid.FlowID(i)).Done() && blocked.PathOK(f.path) {
				load.Add(f.path, 1)
			}
		}
		for _, i := range affected {
			f := flows[i]
			var np topo.Path
			ok := true
			switch mode {
			case schemeShareBackup:
				np = f.path // hardware replaced: exact path restored
			case schemeGlobalOptimal:
				src := hostIndexOf(ft, f.path.Nodes[0])
				dst := hostIndexOf(ft, f.path.Nodes[len(f.path.Nodes)-1])
				np, ok = routing.GlobalOptimalReroute(ft, src, dst, blocked, load)
			case schemeF10Local:
				np, ok = routing.F10LocalReroute(ft, f.path, blocked, &scratch)
				if !ok {
					src := hostIndexOf(ft, f.path.Nodes[0])
					dst := hostIndexOf(ft, f.path.Nodes[len(f.path.Nodes)-1])
					np, ok = routing.GlobalOptimalReroute(ft, src, dst, blocked, load)
				}
			}
			if !ok {
				continue // stays stalled: disconnected
			}
			if err := sim.SetPath(fluid.FlowID(i), np); err != nil {
				return nil, err
			}
			load.Add(np, 1)
		}
	}
	// Drive to completion with a widening horizon (stalled flows would
	// wedge RunToCompletion).
	horizon := sim.Now() + 1
	for iter := 0; iter < 80; iter++ {
		if err := sim.Run(horizon); err != nil {
			return nil, err
		}
		allSettled := true
		for i := range flows {
			fl := sim.Flow(fluid.FlowID(i))
			if !fl.Done() && !fl.Stalled() {
				allSettled = false
				break
			}
		}
		if allSettled && sim.PendingCount() == 0 {
			break
		}
		horizon *= 2
	}
	out := make([]float64, len(flows))
	for i := range flows {
		fl := sim.Flow(fluid.FlowID(i))
		if fl.Done() {
			out[i] = fl.Finish()
		} else {
			out[i] = math.Inf(1)
		}
	}
	return out, nil
}

// String renders the row compactly.
func (r TransientRow) String() string {
	return fmt.Sprintf("%-12s gap=%-10v mean=%.6fx max=%.4fx disconnected=%d",
		r.Scheme, r.Gap, r.MeanSlowdown, r.MaxSlowdown, r.Disconnected)
}
