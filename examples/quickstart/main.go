// Quickstart: build a ShareBackup network, fail a switch, and watch a
// shared backup take over its exact position — no rerouting, no bandwidth
// loss.
package main

import (
	"fmt"
	"log"
	"time"

	"sharebackup"
)

func main() {
	// A k=6 fat-tree (the paper's running example, Figures 2-3) with one
	// shared backup per failure group, on electrical crosspoint circuit
	// switches.
	sys, err := sharebackup.New(sharebackup.Config{K: 6, N: 1, Tech: sharebackup.Crosspoint})
	if err != nil {
		log.Fatal(err)
	}
	net := sys.Network
	fmt.Printf("built ShareBackup network: k=%d, %d failure groups, %d packet switches (incl. %d backups), %d circuit switches\n",
		net.K(), net.NumGroups(), net.NumSwitches(), net.NumGroups()*net.NBackups(), net.NumCircuitSwitches())

	// Fail the aggregation switch A1,0.
	victim := net.AggGroup(1).Slots()[0]
	fmt.Printf("\nfailing %s...\n", net.Name(victim))
	rec, err := sys.FailNode(victim, 3*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %s replaced by %s\n", net.Name(rec.Failed[0]), net.Name(rec.Backup[0]))
	fmt.Printf("latency: detection %v + controller comm %v + circuit reset %v = %v\n",
		rec.Detection, rec.Comm, rec.Reconfig, rec.Total())

	// The logical topology is exactly the fat-tree it was before: same
	// links, same capacities, same paths.
	if _, err := net.LogicalFatTree(1, 1, 10); err != nil {
		log.Fatal(err)
	}
	fmt.Println("logical topology verified: still a perfect fat-tree (no bandwidth loss, no path dilation)")

	// Failure groups tolerate n concurrent failures; the n+1-th is
	// refused until a switch is repaired.
	second := net.AggGroup(1).Slots()[1]
	if _, err := sys.FailNode(second, 4*time.Millisecond); err != nil {
		fmt.Printf("\nsecond failure in the same group: %v\n", err)
		fmt.Println("(expected with n=1 — repair the first switch to restore headroom)")
	}
	if err := sys.Controller.RepairSwitch(victim); err != nil {
		log.Fatal(err)
	}
	rec2, err := sys.Controller.RecoverNode(second, 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after repairing %s it becomes the group's backup; %s now replaced by %s\n",
		net.Name(victim), net.Name(second), net.Name(rec2.Backup[0]))

	if err := net.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall architecture invariants hold")
}
