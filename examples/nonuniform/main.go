// Nonuniform explores the paper's concluding directions: sharable backup on
// an unstructured Jellyfish network via degree-homogeneous failure groups,
// and non-uniform backup allocation that gives critical switches more
// protection at the same total cost.
package main

import (
	"fmt"
	"log"

	"sharebackup"
	"sharebackup/internal/failure"
	"sharebackup/internal/groups"
	"sharebackup/internal/topo"
)

func main() {
	// A 40-switch Jellyfish fabric: 8-port switches, 5 ports meshed, 3
	// facing hosts.
	jf, err := topo.NewJellyfish(topo.JellyfishConfig{
		Switches: 40, Ports: 8, NetDegree: 5, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jellyfish: %d switches, %d hosts, %d links\n",
		len(jf.Switches()), len(jf.Hosts()), jf.NumLinks())

	// Partition into failure groups of at most 8 same-degree switches —
	// the physical requirement for sharing circuit switches.
	plan, err := groups.ByDegreePlan(jf.Topology, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Validate(jf.Topology); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform plan: %d groups, %d backups (ratio %.2f), largest circuit switch %d ports\n",
		len(plan.Groups), plan.TotalBackups(), plan.BackupRatio(), maxPorts(plan))
	fmt.Printf("expected overflowed groups at %.2g unavailability: %.3g\n",
		failure.SwitchFailureRate, plan.ExpectedUnprotectedFailures(failure.SwitchFailureRate))

	// Non-uniform: same budget, allocated greedily by coverage
	// criticality (switches whose loss strands single-homed hosts first).
	nonUniform, err := groups.ByDegreePlan(jf.Topology, 8, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := groups.AllocateGreedy(jf.Topology, nonUniform, plan.TotalBackups(),
		failure.SwitchFailureRate, groups.CoverageCriticality); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnon-uniform allocation (same total budget):")
	for i := range nonUniform.Groups {
		g := &nonUniform.Groups[i]
		fmt.Printf("  group %d: %d switches, %d backups\n", i, g.Size(), g.Backups)
	}

	// And the fat-tree comparison via the library's study.
	rows, err := sharebackup.ExtensionStudy(4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(sharebackup.RenderExtensionStudy(rows).String())
}

func maxPorts(p *groups.Plan) int {
	max := 0
	for i := range p.Groups {
		if v := p.Groups[i].CircuitPortsNeeded(); v > max {
			max = v
		}
	}
	return max
}
