// Coflowstudy reproduces the paper's motivation (Section 2.2) at laptop
// scale: coflows magnify the impact of rare failures, and rerouting cannot
// hide the damage — while ShareBackup's hardware replacement leaves CCTs
// untouched.
package main

import (
	"fmt"
	"log"

	"sharebackup"
	"sharebackup/internal/coflow"
	"sharebackup/internal/metrics"
)

func main() {
	// Generate a Facebook-like synthetic coflow trace for a 32-rack
	// (k=8) fabric and show its heavy-tailed structure.
	tr, err := coflow.Generate(coflow.GenConfig{Racks: 32, NumCoflows: 200, Duration: 1800, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	widths := make([]float64, len(tr.Coflows))
	for i := range tr.Coflows {
		widths[i] = float64(tr.Coflows[i].Width())
	}
	s := metrics.Summarize(widths)
	fmt.Printf("trace: %d coflows, %d flows; width median %.0f, p90 %.0f, max %.0f\n",
		len(tr.Coflows), tr.TotalFlows(), s.Median, s.P90, s.Max)

	// Figure 1(a): affected flows vs coflows under node failures.
	res, err := sharebackup.Fig1a(sharebackup.Fig1Config{
		K: 8, Seed: 7, Trace: tr, Rates: []float64{0.01, 0.05, 0.1, 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	flows, coflows := res.Series("node failure rate")
	out, err := metrics.RenderSeries("affected flows vs coflows (failure magnification)", flows, coflows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(out)
	fmt.Printf("a SINGLE node failure affects %.1f%% of flows but %.1f%% of coflows (%.0fx magnification)\n",
		res.SingleFlowPct, res.SingleCoflowPct, res.SingleCoflowPct/res.SingleFlowPct)

	// Figure 1(c): CCT slowdown under a single failure, per architecture.
	fmt.Println()
	cct, err := sharebackup.Fig1c(sharebackup.Fig1cConfig{K: 8, Seed: 7, Coflows: 25, Scenarios: 8})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range cct {
		cdf := a.CDF()
		if cdf.N() == 0 {
			fmt.Printf("%-12s no affected coflows\n", a.Name)
			continue
		}
		fmt.Printf("%-12s CCT slowdown p50=%.2fx p90=%.2fx max=%.2fx (affected coflows: %d, disconnected: %d)\n",
			a.Name, cdf.Inverse(0.5), cdf.Inverse(0.9), cdf.Inverse(1), cdf.N(), a.Disconnected)
	}
	fmt.Println("\nShareBackup restores the exact topology, so affected coflows see no slowdown at all.")
}
