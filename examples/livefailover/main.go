// Livefailover runs the control plane over real TCP sockets: switch agents
// heartbeat a controller server on loopback; when one goes silent the
// controller fails it over to a shared backup and a subscribed monitor
// receives the recovery event with its measured wall-clock latency.
package main

import (
	"fmt"
	"log"
	"time"

	"sharebackup"
	"sharebackup/internal/controller"
	"sharebackup/internal/ctlnet"
)

func main() {
	interval := 5 * time.Millisecond
	sys, err := sharebackup.New(sharebackup.Config{
		K: 4, N: 1,
		Controller: controller.Config{ProbeInterval: interval},
	})
	if err != nil {
		log.Fatal(err)
	}

	srv, err := ctlnet.NewServer("127.0.0.1:0", sys.Controller, ctlnet.ServerConfig{
		Interval:      interval,
		MissThreshold: 3,
		CheckEvery:    interval / 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("controller on %s\n", srv.Addr())

	mon, err := ctlnet.Subscribe(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	// Agents for the core failure group.
	var agents []*ctlnet.Agent
	for _, id := range sys.Network.CoreGroup(0).Slots() {
		a, err := ctlnet.Dial(srv.Addr(), id, interval)
		if err != nil {
			log.Fatal(err)
		}
		defer a.Close()
		agents = append(agents, a)
	}
	time.Sleep(4 * interval)

	fmt.Printf("killing core switch %s...\n", sys.Network.Name(agents[1].ID))
	agents[1].StopHeartbeats()

	ev := <-mon.Events
	fmt.Printf("failover event: kind=%s failed=%s backup=%s latency=%v\n",
		ev.Kind, sys.Network.Name(ev.Failed[0]), sys.Network.Name(ev.Backup[0]), ev.Latency)
	if err := sys.Network.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("network invariants hold after live failover")
}
