// Diagnosis walks through Section 4.2's offline failure diagnosis: a link
// failure takes both endpoint switches offline for fast recovery, then the
// controller probes each suspect interface through the circuit-switch
// side-port rings, exonerates the healthy side, and keeps the faulty switch
// out for repair — all without touching the live network.
package main

import (
	"fmt"
	"log"
	"time"

	"sharebackup"
)

func main() {
	sys, err := sharebackup.New(sharebackup.Config{K: 6, N: 1})
	if err != nil {
		log.Fatal(err)
	}
	net, ctl := sys.Network, sys.Controller

	edge := net.EdgeGroup(0).Slots()[2]
	agg := net.AggGroup(0).Slots()[2]
	fmt.Printf("link %s <-> %s fails; ground truth: the edge-side interface is broken\n",
		net.Name(edge), net.Name(agg))

	// The edge's up-port 0 reaches agg slot 2 on CS_{2,0,0}... the
	// rotation means edge slot 2's up-port j reaches agg slot (2+j)%3;
	// agg slot 2 is reached via up-port 0.
	rec, err := sys.FailLink(
		sharebackup.EndPoint{Switch: edge, Port: 3 + 0}, // up-port 0
		sharebackup.EndPoint{Switch: agg, Port: 2},
		time.Millisecond,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast recovery (Section 4.1): both ends replaced in %v: %s->%s, %s->%s\n",
		rec.Total(),
		net.Name(rec.Failed[0]), net.Name(rec.Backup[0]),
		net.Name(rec.Failed[1]), net.Name(rec.Backup[1]))

	fmt.Println("\noffline diagnosis (Section 4.2, Figure 4):")
	results, err := ctl.RunDiagnosis()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("  suspect %s port %d: probed %d partner interface(s) -> ",
			net.Name(r.Suspect.Switch), r.Suspect.Port, len(r.Partners))
		if r.Exonerated {
			fmt.Println("connectivity found, exonerated, returned to backup pool")
		} else {
			fmt.Println("no connectivity in any configuration, kept offline for repair")
		}
	}
	fmt.Printf("diagnosis spent %d circuit reconfigurations, all on offline/backup switches\n",
		ctl.DiagnosisReconfigs())

	// The faulty switch comes back from repair as a backup; nothing
	// switches back (no disruption).
	if err := ctl.RepairSwitch(edge); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter repair, %s rejoins as a backup (role: %v); the network never switched back\n",
		net.Name(edge), net.Switch(edge).Role)

	if err := net.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all invariants hold")
}
