package sharebackup

import (
	"strings"
	"testing"
)

func TestExtensionStudy(t *testing.T) {
	rows, err := ExtensionStudy(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	uniform, nonUniform, jelly := rows[0], rows[1], rows[2]
	if uniform.Backups != nonUniform.Backups {
		t.Fatalf("budgets differ: %d vs %d", uniform.Backups, nonUniform.Backups)
	}
	// The criticality-weighted allocation must not be worse than uniform
	// under the weighted-risk metric it optimizes for.
	if nonUniform.WeightedRisk > uniform.WeightedRisk*(1+1e-9) {
		t.Errorf("non-uniform weighted risk %v worse than uniform %v",
			nonUniform.WeightedRisk, uniform.WeightedRisk)
	}
	if uniform.Groups != 10 { // 5k/2 at k=4
		t.Errorf("uniform groups = %d", uniform.Groups)
	}
	if uniform.MaxCSPorts != 4/2+1+2 {
		t.Errorf("uniform max CS ports = %d, want k/2+n+2", uniform.MaxCSPorts)
	}
	if jelly.Switches < 20 {
		t.Errorf("jellyfish study too small: %d switches", jelly.Switches)
	}
	out := RenderExtensionStudy(rows).String()
	if !strings.Contains(out, "jellyfish") || !strings.Contains(out, "non-uniform") {
		t.Errorf("rendering missing plans:\n%s", out)
	}
}

func TestAugmentationStudy(t *testing.T) {
	rows, err := AugmentationStudy(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want one per pod", len(rows))
	}
	for _, r := range rows {
		if r.FabricLinksAdded != 2 { // k/2
			t.Errorf("pod %d: fabric links = %d, want k/2", r.Pod, r.FabricLinksAdded)
		}
		if r.HostBandwidthAdded != 0 {
			t.Errorf("pod %d: host bandwidth = %v, want 0 (the measured finding)", r.Pod, r.HostBandwidthAdded)
		}
		if !r.SurvivedFailover {
			t.Errorf("pod %d: augmented backup unusable for failover", r.Pod)
		}
		if !r.InvariantsHeldAfter {
			t.Errorf("pod %d: invariants broken after failover", r.Pod)
		}
	}
}
