// Command sbcost evaluates the Section 5.2 cost model: Table 2 at a given
// scale and the Figure 5 sweep.
//
// Usage:
//
//	sbcost -k 48 -n 1           # Table 2 at one design point
//	sbcost -sweep -n 1,4        # Figure 5 sweep over k
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sharebackup"
	"sharebackup/internal/metrics"
)

func main() {
	var (
		k     = flag.Int("k", 48, "fat-tree parameter")
		nStr  = flag.String("n", "1", "backup switches per failure group (comma-separated for -sweep)")
		sweep = flag.Bool("sweep", false, "sweep k like Figure 5 instead of a single design point")
		ksStr = flag.String("ks", "8,16,24,32,40,48,56,64", "k values for -sweep")
	)
	flag.Parse()

	ns, err := parseInts(*nStr)
	if err != nil {
		fatal(err)
	}

	if *sweep {
		ks, err := parseInts(*ksStr)
		if err != nil {
			fatal(err)
		}
		series, err := sharebackup.Fig5(ks, ns)
		if err != nil {
			fatal(err)
		}
		out, err := metrics.RenderSeries("Figure 5 — additional cost relative to fat-tree", series...)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	tbl, err := sharebackup.Table2(*k, ns[0])
	if err != nil {
		fatal(err)
	}
	fmt.Print(tbl.String())
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbcost:", err)
	os.Exit(1)
}
