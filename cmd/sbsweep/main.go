// Command sbsweep runs one experiment sweep through the internal/sweep
// engine, with explicit control of the worker pool, checkpoint file, and
// live progress — the operational entry point for long paper-scale runs.
//
// Usage:
//
//	sbsweep -sweep fig1a|fig1b|fig1c|montecarlo|recovery
//	        [-k N] [-seed S] [-workers N] [-full]
//	        [-checkpoint FILE] [-resume] [-trace FILE] [-progress DUR]
//	        [-trials N] [-n N]                        (recovery)
//	        [-group N] [-backups N] [-mtbf H] [-mttr H] [-horizon H] [-shards N]  (montecarlo)
//
// Results are bit-identical for any -workers value. A killed run restarted
// with the same flags plus -resume re-executes only the shards missing from
// the checkpoint (fig1c keeps no checkpoint: its shard results are in-memory
// simulation state, not JSON). -progress prints shard completion, trial
// throughput, and ETA to stderr at the given interval (0 disables).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sharebackup"
	"sharebackup/internal/failure"
	"sharebackup/internal/metrics"
	"sharebackup/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sbsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sweepName  = fs.String("sweep", "", "sweep to run: fig1a, fig1b, fig1c, montecarlo, recovery")
		k          = fs.Int("k", 0, "fat-tree parameter (0 = sweep default)")
		seed       = fs.Int64("seed", 1, "root seed; shard substreams derive from it")
		workers    = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS; results identical for any value)")
		full       = fs.Bool("full", false, "paper-scale configuration (slower)")
		checkpoint = fs.String("checkpoint", "", "JSONL checkpoint file (recovery: used as a per-technology prefix)")
		resume     = fs.Bool("resume", false, "load the checkpoint and re-run only missing shards")
		trace      = fs.String("trace", "", "write structured events as JSONL to this file (summarize with sbtap)")
		progress   = fs.Duration("progress", 0, "print sweep progress to stderr at this interval (0 = off)")
		trials     = fs.Int("trials", 32, "recovery: failovers per kind; fig1a/fig1b: samples per rate point (0 = default)")
		n          = fs.Int("n", 1, "recovery: backup switches per failure group")
		group      = fs.Int("group", 8, "montecarlo: switches sharing the backup pool")
		backups    = fs.Int("backups", 1, "montecarlo: backup pool size")
		mtbf       = fs.Float64("mtbf", 0, "montecarlo: mean time between failures, hours (0 = paper default)")
		mttr       = fs.Float64("mttr", 0, "montecarlo: mean time to repair, hours (0 = paper default)")
		horizon    = fs.Float64("horizon", 1e6, "montecarlo: simulated hours")
		shards     = fs.Int("shards", 64, "montecarlo: independent horizon slices")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *trace != "" {
		done, err := obs.TraceToFile(nil, *trace)
		if err != nil {
			fmt.Fprintln(stderr, "sbsweep:", err)
			return 1
		}
		defer func() {
			if err := done(); err != nil {
				fmt.Fprintln(stderr, "sbsweep:", err)
			}
		}()
	}
	if *progress > 0 {
		stop := startProgress(*progress, stderr)
		defer stop()
	}

	var err error
	switch *sweepName {
	case "fig1a", "fig1b":
		err = runFig1(stdout, *sweepName == "fig1a", *k, *seed, *trials, *workers, *full, *checkpoint, *resume)
	case "fig1c":
		if *checkpoint != "" {
			fmt.Fprintln(stderr, "sbsweep: fig1c does not checkpoint; -checkpoint ignored")
		}
		err = runFig1c(stdout, *k, *seed, *workers, *full)
	case "montecarlo":
		err = runMonteCarlo(stdout, *group, *backups, *mtbf, *mttr, *horizon, *seed, *shards, *workers, *checkpoint, *resume)
	case "recovery":
		err = runRecovery(stdout, *k, *n, *trials, *workers, *checkpoint, *resume)
	case "":
		fmt.Fprintln(stderr, "sbsweep: -sweep is required (fig1a, fig1b, fig1c, montecarlo, recovery)")
		return 2
	default:
		fmt.Fprintf(stderr, "sbsweep: unknown sweep %q\n", *sweepName)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "sbsweep:", err)
		return 1
	}
	return 0
}

// startProgress polls the sweep gauges in obs.DefaultRegistry (where the
// engine publishes unless given a private registry) and prints a status line
// per tick. Returns a stop function.
func startProgress(interval time.Duration, w io.Writer) func() {
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		reg := obs.DefaultRegistry
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				total := reg.Gauge("sweep.shards_total").Value()
				if total == 0 {
					continue
				}
				fmt.Fprintf(w, "sbsweep: %d/%d shards, %d trials/s, eta %s\n",
					reg.Gauge("sweep.shards_done").Value(), total,
					reg.Gauge("sweep.trials_per_sec").Value(),
					time.Duration(reg.Gauge("sweep.eta_ms").Value())*time.Millisecond)
			}
		}
	}()
	return func() { close(done) }
}

func runFig1(w io.Writer, nodes bool, k int, seed int64, trials, workers int, full bool, checkpoint string, resume bool) error {
	cfg := sharebackup.Fig1Config{
		K: k, Seed: seed, Trials: trials, Workers: workers,
		Checkpoint: checkpoint, Resume: resume,
	}
	if cfg.K == 0 && full {
		cfg.K = 16
	}
	var (
		res  *sharebackup.Fig1Result
		err  error
		kind = "link"
	)
	if nodes {
		kind = "node"
		res, err = sharebackup.Fig1a(cfg)
	} else {
		res, err = sharebackup.Fig1b(cfg)
	}
	if err != nil {
		return err
	}
	tbl := &metrics.Table{
		Title:   fmt.Sprintf("%% of flows and coflows affected by %s failures", kind),
		Headers: []string{"rate", "flows %", "coflows %", "magnification"},
	}
	for i, rate := range res.Rates {
		tbl.AddRow(rate, res.FlowPct[i], res.CoflowPct[i], res.Magnification[i])
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintf(w, "single %s failure: %.2f%% of flows, %.2f%% of coflows affected\n",
		kind, res.SingleFlowPct, res.SingleCoflowPct)
	return nil
}

func runFig1c(w io.Writer, k int, seed int64, workers int, full bool) error {
	cfg := sharebackup.Fig1cConfig{K: k, Seed: seed, Workers: workers}
	if cfg.K == 0 && full {
		cfg.K = 16
		cfg.Coflows = 40
		cfg.Windows = 12
		cfg.Scenarios = 24
	}
	res, err := sharebackup.Fig1c(cfg)
	if err != nil {
		return err
	}
	tbl := &metrics.Table{
		Title:   "CCT slowdown under a single failure",
		Headers: []string{"architecture", "p50", "p99", "affected", "disconnected"},
	}
	for _, a := range res {
		cdf := a.CDF()
		tbl.AddRow(a.Name, cdf.Inverse(0.50), cdf.Inverse(0.99), len(a.Slowdowns), a.Disconnected)
	}
	fmt.Fprint(w, tbl.String())
	return nil
}

func runMonteCarlo(w io.Writer, group, backups int, mtbf, mttr, horizon float64, seed int64, shards, workers int, checkpoint string, resume bool) error {
	res, err := failure.SimulateGroupAvailability(failure.AvailabilityConfig{
		GroupSize: group, Backups: backups, MTBF: mtbf, MTTR: mttr,
		Horizon: horizon, Seed: seed, Shards: shards, Workers: workers,
		Checkpoint: checkpoint, Resume: resume,
	})
	if err != nil {
		return err
	}
	tbl := &metrics.Table{
		Title:   fmt.Sprintf("group availability (group=%d, n=%d, %d slices)", group, backups, shards),
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("switch failures simulated", res.Failures)
	tbl.AddRow("pool-overflow events", res.OverflowEvents)
	tbl.AddRow("overflow time fraction", res.OverflowFraction)
	tbl.AddRow("measured unavailability", res.Unavailability)
	tbl.AddRow("analytic overflow (binomial tail)", res.AnalyticOverflow)
	fmt.Fprint(w, tbl.String())
	return nil
}

func runRecovery(w io.Writer, k, n, trials, workers int, checkpoint string, resume bool) error {
	res, err := sharebackup.RunRecoveryBench(sharebackup.RecoveryBenchConfig{
		K: k, N: n, Trials: trials, Workers: workers,
		Checkpoint: checkpoint, Resume: resume,
	})
	if err != nil {
		return err
	}
	tbl := &metrics.Table{
		Title:   fmt.Sprintf("recovery latency (k=%d, n=%d, %d trials/kind)", res.K, res.N, res.Trials),
		Headers: []string{"tech", "recoveries", "total p50 (µs)", "total p99 (µs)"},
	}
	for _, t := range res.Techs {
		total := t.PhasesUS["total"]
		tbl.AddRow(t.Tech, t.Recoveries, total.Median, total.P99)
	}
	fmt.Fprint(w, tbl.String())
	return nil
}
