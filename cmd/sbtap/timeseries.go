package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"sharebackup/internal/obs/tsdb"
)

// timeSeriesReport loads a /timeseriesz dump — a local JSON file or an http
// URL (a bare debug-server URL gets ?all=1 appended) — and renders every
// series as a terminal sparkline.
func timeSeriesReport(src string) (string, error) {
	var data []byte
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		url := src
		if !strings.Contains(url, "?") {
			url += "?all=1"
		}
		resp, err := http.Get(url)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("%s: HTTP %s", url, resp.Status)
		}
		data, err = io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
	} else {
		var err error
		data, err = os.ReadFile(src)
		if err != nil {
			return "", err
		}
	}
	var series []tsdb.SeriesData
	if err := json.Unmarshal(data, &series); err != nil {
		// Tolerate a single-series dump (?metric=NAME).
		var one tsdb.SeriesData
		if err2 := json.Unmarshal(data, &one); err2 != nil || one.Name == "" {
			return "", fmt.Errorf("%s: not a /timeseriesz dump: %w", src, err)
		}
		series = []tsdb.SeriesData{one}
	}
	return renderTimeSeries(src, series), nil
}

// sparkRunes are the eight-level sparkline glyphs, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values scaled into sparkRunes; a flat series renders at
// the lowest level so activity stands out.
func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// renderTimeSeries is the -ts report body: one sparkline row per series with
// min/max/last, skipping series that never moved (unless everything is
// flat, in which case everything is shown so the dump isn't mistaken for
// empty).
func renderTimeSeries(name string, series []tsdb.SeriesData) string {
	const width = 60
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d series\n", name, len(series))
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	shown := 0
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		vals := make([]float64, len(s.Points))
		lo, hi := s.Points[0].V, s.Points[0].V
		for i, p := range s.Points {
			vals[i] = p.V
			if p.V < lo {
				lo = p.V
			}
			if p.V > hi {
				hi = p.V
			}
		}
		if hi == lo && hi == 0 {
			continue // never moved off zero: noise in a wide registry
		}
		fmt.Fprintf(&b, "  %-*s %-15s %s  min=%g max=%g last=%g (%d pts)\n",
			nameW, s.Name, "["+s.Kind+"]", sparkline(vals, width), lo, hi, vals[len(vals)-1], len(s.Points))
		shown++
	}
	if shown == 0 {
		b.WriteString("  (all series empty or zero)\n")
	}
	return b.String()
}
