package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"sharebackup/internal/bench"
	"sharebackup/internal/obs"
)

func mkEvent(shard, seq uint64) obs.Event {
	ev := obs.NewEvent(obs.KindLog, time.Millisecond)
	ev.Shard = shard
	ev.Seq = seq
	return ev
}

// Two interleaved shard streams, each seq 1..5, must not read as gaps: the
// per-shard grouping is what keeps sweep traces from drowning in spurious
// loss warnings.
func TestSeqLossGroupsByShard(t *testing.T) {
	var evs []obs.Event
	for seq := uint64(1); seq <= 5; seq++ {
		evs = append(evs, mkEvent(1, seq), mkEvent(2, seq))
	}
	if lost, gaps := seqLoss(evs); lost != 0 || gaps != 0 {
		t.Fatalf("interleaved complete streams read as lost=%d gaps=%d, want 0/0", lost, gaps)
	}

	// A real hole inside one shard's stream is still caught.
	evs = append(evs, mkEvent(1, 7)) // shard 1 is missing seq 6
	if lost, gaps := seqLoss(evs); lost != 1 || gaps != 1 {
		t.Fatalf("real gap read as lost=%d gaps=%d, want 1/1", lost, gaps)
	}

	if got := shardCount(evs); got != 2 {
		t.Fatalf("shardCount = %d, want 2", got)
	}
}

// Span IDs are per-bus counters, so a trace that interleaves two sweep
// shards reuses span ID 1 in both streams. collectSpans must keep them
// apart (one completed span per shard), not merge them into a single span
// that would halve the breakdown's recovery count.
func TestCollectSpansDeinterleavesShards(t *testing.T) {
	span := func(shard uint64, total time.Duration) []obs.Event {
		fd := obs.NewEvent(obs.KindFailureDeclared, 0)
		fd.Shard, fd.Span = shard, 1
		done := obs.NewEvent(obs.KindRecoveryComplete, total)
		done.Shard, done.Span = shard, 1
		done.Detail = "node"
		done.Total = total
		return []obs.Event{fd, done}
	}
	// Interleave the two shards' events the way concurrent workers would.
	a, b := span(1, time.Millisecond), span(2, 2*time.Millisecond)
	evs := []obs.Event{a[0], b[0], b[1], a[1]}

	shards, spans := collectSpans(evs)
	if len(shards) != 2 || len(spans) != 2 {
		t.Fatalf("got %d shards, %d spans, want 2/2", len(shards), len(spans))
	}
	for _, ss := range spans {
		if !ss.span.Complete {
			t.Fatalf("shard %d span incomplete", ss.shard)
		}
	}
	if n := breakdown(spans, "").N(); n != 2 {
		t.Fatalf("breakdown aggregated %d recoveries, want 2", n)
	}
}

// A BENCH_*.json trajectory file must be recognized, its metrics listed, and
// -hist must find and render every histogram snapshot inside the detail tree
// (here: the recompute-work histogram nested one level down).
func TestRenderBenchFile(t *testing.T) {
	h := &obs.Histogram{}
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 7)
	}
	f := &bench.File{
		Metrics: map[string]bench.Metric{
			"dataplane.rate_recompute_work": {Value: 12345, Unit: "incidences", Better: "lower"},
			"dataplane.events_per_sec":      {Value: 27000, Unit: "events/s", Better: "higher"},
		},
	}
	if err := f.SetDetail(map[string]interface{}{
		"recompute_work_per_pass": h.Snapshot(),
		"summary_without_buckets": map[string]int{"count": 5, "mean": 3},
	}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	bf, ok := parseBenchFile(data)
	if !ok {
		t.Fatal("bench file not recognized")
	}
	out := renderBenchFile("BENCH_dataplane.json", bf, true)
	for _, want := range []string{
		"dataplane.rate_recompute_work",
		"better=higher",
		"detail.recompute_work_per_pass",
		"p50=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "summary_without_buckets") {
		t.Errorf("bucketless summary rendered as histogram:\n%s", out)
	}

	// JSONL event streams must fall through to the event path.
	if _, ok := parseBenchFile([]byte("{\"kind\":1}\n{\"kind\":2}\n")); ok {
		t.Error("multi-line JSONL misread as bench file")
	}
	if _, ok := parseBenchFile([]byte("{\"kind\":1}\n")); ok {
		t.Error("single event misread as bench file")
	}
}

// TestRenderRoutingBenchFile pins the BENCH_routing.json shape written by
// `sbbench -routing` to the generic renderer: metrics list and the
// histogram-free detail section render cleanly.
func TestRenderRoutingBenchFile(t *testing.T) {
	f := &bench.File{
		Metrics: map[string]bench.Metric{
			"routing.pathfor_ns_op":         {Value: 45.2, Unit: "ns", Better: "lower"},
			"routing.pathfor_allocs_op":     {Value: 0, Unit: "allocs", Better: "lower"},
			"routing.speedup_vs_fresh":      {Value: 120, Unit: "x", Better: "higher"},
			"routing.storm_lookups_per_sec": {Value: 8.5e5, Unit: "lookups/s", Better: "higher"},
		},
	}
	if err := f.SetDetail(map[string]interface{}{
		"experiment": "routing-core", "k": 16, "interned_paths": 999424,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	bf, ok := parseBenchFile(data)
	if !ok {
		t.Fatal("routing bench file not recognized")
	}
	out := renderBenchFile("BENCH_routing.json", bf, true)
	for _, want := range []string{
		"routing.pathfor_ns_op",
		"routing.pathfor_allocs_op",
		"routing.speedup_vs_fresh",
		"better=higher",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRenderKACurve pins the fleet-throughput curve rendering for the
// ctlplane trajectory: one scaled bar per agent count, with connection and
// server-goroutine counts alongside.
func TestRenderKACurve(t *testing.T) {
	f := &bench.File{
		Metrics: map[string]bench.Metric{
			"ctlnet.ka_per_sec_10k":      {Value: 1.0e6, Unit: "ka/s", Better: "higher"},
			"ctlplane.storm_batch_ratio": {Value: 32, Unit: "x", Better: "higher"},
		},
	}
	if err := f.SetDetail(map[string]interface{}{
		"ka_curve": []map[string]interface{}{
			{"agents": 1000, "conns": 20, "ka_per_sec": 1.0e5, "server_goroutines": 13},
			{"agents": 4000, "conns": 80, "ka_per_sec": 4.0e5, "server_goroutines": 13},
			{"agents": 10000, "conns": 200, "ka_per_sec": 1.0e6, "server_goroutines": 13},
		},
	}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	bf, ok := parseBenchFile(data)
	if !ok {
		t.Fatal("ctlplane bench file not recognized")
	}
	out := renderBenchFile("BENCH_ctlplane.json", bf, false)
	for _, want := range []string{
		"keep-alive throughput vs fleet size (3 points)",
		"10000 agents",
		"200 conns, 13 server goroutines",
		"ctlplane.storm_batch_ratio",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The 10k bar is the tallest; the 1k bar is scaled down, not clipped out.
	if !strings.Contains(out, strings.Repeat("#", 40)) {
		t.Errorf("max point not rendered at full width:\n%s", out)
	}
}

// TestControlPlaneSummaryGolden pins the control-plane timeline rendering:
// elections, stepdowns, and agent failovers each get a line, the header
// counts them and reports the highest term seen, and a trace without any
// such events renders nothing at all.
func TestControlPlaneSummaryGolden(t *testing.T) {
	role := func(kind obs.Kind, t time.Duration, replica, term int32) obs.Event {
		ev := obs.NewEvent(kind, t)
		ev.Switch, ev.Count = replica, term
		return ev
	}
	fo := obs.NewEvent(obs.KindFailover, 9*time.Millisecond)
	fo.Switch = 12
	fo.Detail = "127.0.0.1:41000"
	fo.Count = 2
	evs := []obs.Event{
		role(obs.KindLeaderElected, 1*time.Millisecond, 0, 1),
		role(obs.KindLeaderLost, 8*time.Millisecond, 0, 1),
		fo,
		role(obs.KindLeaderElected, 10*time.Millisecond, 2, 3),
	}
	want := "control plane: 2 elections, 1 stepdowns, 1 agent failovers (max term 3)\n" +
		"           1ms  leader-elected  replica=0 term=1\n" +
		"           8ms  leader-lost     replica=0 term=1\n" +
		"           9ms  agent-failover  switch=12 -> 127.0.0.1:41000 (connection 2)\n" +
		"          10ms  leader-elected  replica=2 term=3\n"
	if got := controlPlaneSummary(evs); got != want {
		t.Errorf("controlPlaneSummary:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Single-controller traces stay clean: no header, no empty section.
	plain := []obs.Event{mkEvent(0, 1), mkEvent(0, 2)}
	if got := controlPlaneSummary(plain); got != "" {
		t.Errorf("summary on plain trace: %q", got)
	}
}

// The stitched span tree names leadership changes and failover hops so a
// leader kill mid-recovery is legible in sbtap -stitch output.
func TestStitchRendersLeadershipEvents(t *testing.T) {
	const trace = uint64(0x77)
	fail := obs.NewEvent(obs.KindFailureDeclared, time.Millisecond)
	fail.Span, fail.Trace = 1, trace
	fail.Detail = "link"
	fo := obs.NewEvent(obs.KindFailover, 2*time.Millisecond)
	fo.Span, fo.Trace = 1, trace
	fo.Switch, fo.Detail, fo.Count = 12, "127.0.0.1:41000", 2
	elected := obs.NewEvent(obs.KindLeaderElected, 3*time.Millisecond)
	elected.Span, elected.Trace = 1, trace
	elected.Switch, elected.Count = 1, 4
	lost := obs.NewEvent(obs.KindLeaderLost, 4*time.Millisecond)
	lost.Span, lost.Trace = 1, trace
	lost.Switch, lost.Count = 0, 3

	procs := []obs.ProcTrace{{Name: "agent-12", Events: []obs.Event{fail, fo, elected, lost}}}
	for i := range procs[0].Events {
		procs[0].Events[i].Proc = procs[0].Name
	}
	res, err := obs.Stitch(procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(res.Traces))
	}
	out := res.Traces[0].Render()
	for _, want := range []string{
		"failover -> 127.0.0.1:41000 (connection 2)",
		"leader-elected replica=1 term=4",
		"leader-lost replica=0 term=3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// Untagged events (shard 0, the process bus) form their own stream alongside
// tagged ones.
func TestSeqLossUntaggedStream(t *testing.T) {
	evs := []obs.Event{
		mkEvent(0, 1), mkEvent(0, 2), mkEvent(0, 5), // process bus lost 3,4
		mkEvent(3, 1), mkEvent(3, 2),
	}
	if lost, gaps := seqLoss(evs); lost != 2 || gaps != 1 {
		t.Fatalf("lost=%d gaps=%d, want 2/1", lost, gaps)
	}
}
