// Command sbtap tails or summarizes a JSONL event file produced by the
// -trace flag of sbemu/sbexperiments (or sbsim's -trace-out): the offline
// half of the observability pipeline. By default it reads the whole file (or
// stdin when no file is named) and prints an event census plus the Section
// 5.3 / Table 2 phase breakdown of every recovery span it contains.
//
// Usage:
//
//	sbtap trace.jsonl            # summarize
//	sbtap -spans trace.jsonl     # also list each recovery span
//	sbtap -f trace.jsonl         # follow: render events as they are appended
//	sbemu -fail-path -trace /dev/stdout | sbtap
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sharebackup/internal/obs"
)

func main() {
	var (
		follow = flag.Bool("f", false, "follow the file: render events human-readably as they are appended")
		spans  = flag.Bool("spans", false, "list every recovery span with its phase breakdown")
	)
	flag.Parse()

	var (
		in   io.Reader = os.Stdin
		name           = "stdin"
	)
	if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file, got %d", flag.NArg()))
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	if *follow {
		if err := tail(in); err != nil {
			fatal(err)
		}
		return
	}

	evs, err := obs.ReadJSONL(in)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	if len(evs) == 0 {
		fmt.Printf("%s: no events\n", name)
		return
	}
	fmt.Print(obs.KindCounts(evs).String())

	col := obs.NewSpanCollector()
	col.AddEvents(evs)
	all := col.Breakdown("")
	if all.N() == 0 {
		fmt.Println("no completed recovery spans")
		return
	}
	fmt.Print(all.Table(fmt.Sprintf("recovery phase breakdown — all kinds (%d recoveries)", all.N())).String())
	for _, kind := range []string{"node", "link"} {
		if b := col.Breakdown(kind); b.N() > 0 {
			fmt.Print(b.Table(fmt.Sprintf("recovery phase breakdown — %s failures (%d recoveries)", kind, b.N())).String())
		}
	}
	if *spans {
		for _, sp := range col.Spans() {
			status := "complete"
			if !sp.Complete {
				status = "incomplete"
			}
			fmt.Printf("span %d (%s, %s): detection=%v report=%v reconfig=%v total=%v (%d events)\n",
				sp.ID, sp.Kind, status, sp.Detection, sp.Report, sp.Reconfig, sp.Total, len(sp.Events))
		}
	}
}

// tail renders events as they arrive, polling past EOF so a live trace file
// can be watched while the producer is still running.
func tail(in io.Reader) error {
	r := bufio.NewReader(in)
	fileLike := isFile(in)
	var buf []byte
	emit := func() {
		line := bytes.TrimSpace(buf)
		buf = buf[:0]
		if len(line) == 0 {
			return
		}
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err == nil {
			fmt.Println(ev.String())
		}
	}
	for {
		chunk, err := r.ReadBytes('\n')
		buf = append(buf, chunk...)
		if bytes.HasSuffix(buf, []byte("\n")) {
			emit()
		}
		switch {
		case err == io.EOF && fileLike:
			// The producer may still be appending: poll for more.
			time.Sleep(200 * time.Millisecond)
		case err == io.EOF:
			emit() // pipe closed, flush any final unterminated line
			return nil
		case err != nil:
			return err
		}
	}
}

func isFile(r io.Reader) bool {
	f, ok := r.(*os.File)
	if !ok {
		return false
	}
	info, err := f.Stat()
	return err == nil && info.Mode().IsRegular()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbtap:", err)
	os.Exit(1)
}
