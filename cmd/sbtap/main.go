// Command sbtap tails or summarizes a JSONL event file produced by the
// -trace flag of sbemu/sbexperiments (or sbsim's -trace-out): the offline
// half of the observability pipeline. By default it reads the whole file (or
// stdin when no file is named) and prints an event census plus the Section
// 5.3 / Table 2 phase breakdown of every recovery span it contains.
//
// Usage:
//
//	sbtap trace.jsonl            # summarize
//	sbtap -spans trace.jsonl     # also list each recovery span
//	sbtap -hist trace.jsonl      # phase-latency histograms with quantiles
//	sbtap -f trace.jsonl         # follow: render events as they are appended
//	sbemu -fail-path -trace /dev/stdout | sbtap
//
// Multi-process traces (one JSONL file per process, as written by
// sbemu -ctlnet -trace-dir) are merged with -stitch: clock-sync events align
// the processes' independent epochs, and spans sharing a trace ID are linked
// into one causal tree per recovery with per-hop phase attribution:
//
//	sbtap -stitch dir/controller.jsonl dir/agent-*.jsonl dir/cs-*.jsonl
//
// -strict makes sbtap exit non-zero when the trace shows integrity problems:
// sequence gaps (events lost to a bounded sink) or, with -stitch,
// unstitchable references (spans whose parent is missing from the file set,
// processes with no clock-sync path to the reference).
//
// sbtap also reads benchmark trajectory files (the BENCH_*.json written by
// sbbench): it lists the gated metrics, and -hist renders every histogram
// snapshot found in the detail section (FCT, flow rate, link utilization,
// recompute work per pass) as ASCII bar charts.
//
// -ts renders the windowed metric history a debug server's /timeseriesz
// endpoint serves (or a saved JSON dump of it) as terminal sparklines:
//
//	sbtap -ts http://127.0.0.1:6060/timeseriesz
//	sbtap -ts dump.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sharebackup/internal/bench"
	"sharebackup/internal/obs"
)

func main() {
	var (
		follow = flag.Bool("f", false, "follow the file: render events human-readably as they are appended")
		spans  = flag.Bool("spans", false, "list every recovery span with its phase breakdown")
		hist   = flag.Bool("hist", false, "render recovery phase latencies as bucketed histograms with p50/p90/p99")
		stitch = flag.Bool("stitch", false, "merge several per-process trace files into cross-process recovery timelines (clock-offset aligned)")
		strict = flag.Bool("strict", false, "exit non-zero on sequence gaps or (with -stitch) unstitchable trace references")
		ts     = flag.Bool("ts", false, "render a /timeseriesz JSON dump (file or http URL) as terminal sparklines")
	)
	flag.Parse()

	if *ts {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-ts needs exactly one argument: a /timeseriesz JSON file or URL"))
		}
		out, err := timeSeriesReport(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	if *stitch {
		if flag.NArg() == 0 {
			fatal(fmt.Errorf("-stitch needs at least one trace file"))
		}
		os.Exit(stitchFiles(flag.Args(), *strict))
	}

	var (
		in   io.Reader = os.Stdin
		name           = "stdin"
	)
	if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file, got %d (use -stitch to merge per-process traces)", flag.NArg()))
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	if *follow {
		if err := tail(in); err != nil {
			fatal(err)
		}
		return
	}

	data, err := io.ReadAll(in)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	// A bench trajectory file is one pretty-printed JSON object with a
	// metrics map — structurally distinct from a JSONL event stream (one
	// object per line, no metrics field), so sniffing cannot misfire.
	if bf, ok := parseBenchFile(data); ok {
		fmt.Print(renderBenchFile(name, bf, *hist))
		return
	}
	evs, err := obs.ReadJSONL(bytes.NewReader(data))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	if len(evs) == 0 {
		fmt.Printf("%s: no events\n", name)
		return
	}
	exitCode := 0
	fmt.Print(obs.KindCounts(evs).String())
	fmt.Print(controlPlaneSummary(evs))
	if shards := shardCount(evs); shards > 1 {
		fmt.Printf("trace interleaves %d sweep shards (see the shard field; sequence numbers are per shard)\n", shards)
	}
	if lost, gaps := seqLoss(evs); lost > 0 {
		fmt.Printf("WARNING: %d events missing from the stream (%d sequence gaps) — a bounded sink dropped them (see obs.ring_dropped_events on /varz)\n",
			lost, gaps)
		if *strict {
			exitCode = 1
		}
	}

	if *hist {
		fmt.Print(phaseHistograms(evs))
	}

	shards, shardSpans := collectSpans(evs)
	all := breakdown(shardSpans, "")
	if all.N() == 0 {
		fmt.Println("no completed recovery spans")
		os.Exit(exitCode)
	}
	fmt.Print(all.Table(fmt.Sprintf("recovery phase breakdown — all kinds (%d recoveries)", all.N())).String())
	for _, kind := range []string{"node", "link"} {
		if b := breakdown(shardSpans, kind); b.N() > 0 {
			fmt.Print(b.Table(fmt.Sprintf("recovery phase breakdown — %s failures (%d recoveries)", kind, b.N())).String())
		}
	}
	if *spans {
		for _, ss := range shardSpans {
			status := "complete"
			if !ss.span.Complete {
				status = "incomplete"
			}
			tag := ""
			if len(shards) > 1 || ss.shard != 0 {
				tag = fmt.Sprintf("shard %d ", ss.shard)
			}
			fmt.Printf("%sspan %d (%s, %s): detection=%v report=%v reconfig=%v total=%v (%d events)\n",
				tag, ss.span.ID, ss.span.Kind, status,
				ss.span.Detection, ss.span.Report, ss.span.Reconfig, ss.span.Total, len(ss.span.Events))
		}
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// stitchFiles merges per-process trace files into cross-process recovery
// timelines and renders them. The exit code is non-zero only under strict
// when the file set shows integrity problems: sequence gaps inside any file,
// or unstitchable references across the set.
func stitchFiles(paths []string, strict bool) int {
	procs := make([]obs.ProcTrace, 0, len(paths))
	bad := false
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		evs, err := obs.ReadJSONL(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		name := strings.TrimSuffix(filepath.Base(path), ".jsonl")
		if lost, gaps := seqLoss(evs); lost > 0 {
			fmt.Printf("WARNING: %s: %d events missing from the stream (%d sequence gaps)\n", name, lost, gaps)
			bad = true
		}
		procs = append(procs, obs.ProcTrace{Name: name, Events: evs})
	}

	res, err := obs.Stitch(procs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stitched %d processes, reference clock %q\n", len(procs), res.Reference)
	names := make([]string, 0, len(res.Offsets))
	for n := range res.Offsets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-20s epoch shift %v\n", n, res.Offsets[n])
	}
	if len(res.Traces) == 0 {
		fmt.Println("no recovery traces found")
	}
	for _, tr := range res.Traces {
		fmt.Printf("\ntrace %016x:\n%s", tr.Trace, tr.Render())
	}
	for _, u := range res.Unstitchable {
		fmt.Printf("UNSTITCHABLE: %s\n", u)
		bad = true
	}
	if strict && bad {
		return 1
	}
	return 0
}

// parseBenchFile reports whether data is a bench trajectory file. Multi-line
// JSONL fails the whole-input unmarshal (trailing data); a single JSONL event
// parses but has no metrics map.
func parseBenchFile(data []byte) (*bench.File, bool) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return nil, false
	}
	var f bench.File
	if err := json.Unmarshal(data, &f); err != nil || len(f.Metrics) == 0 {
		return nil, false
	}
	return &f, true
}

// renderBenchFile lists the gated metrics; with hist it also renders every
// histogram snapshot in the detail tree, titled by its JSON path.
func renderBenchFile(name string, f *bench.File, hist bool) string {
	var out bytes.Buffer
	fmt.Fprintf(&out, "%s: benchmark trajectory (%s, go=%s, sha=%s)\n",
		name, f.Meta.TimestampUTC, f.Meta.GoVersion, f.Meta.GitSHA)
	names := make([]string, 0, len(f.Metrics))
	for n := range f.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := f.Metrics[n]
		better := m.Better
		if better == "" {
			better = "lower"
		}
		fmt.Fprintf(&out, "  %-34s %14.6g %-10s better=%s\n", n, m.Value, m.Unit, better)
	}
	if len(f.Detail) > 0 {
		var v interface{}
		if err := json.Unmarshal(f.Detail, &v); err == nil {
			out.WriteString(renderKACurve(v))
			if hist {
				out.WriteString(renderDetailHists("detail", v))
			}
		}
	}
	return out.String()
}

// renderKACurve renders the fleet keep-alive throughput curve a ctlplane
// trajectory embeds in its detail (the ka_curve array from `sbbench
// -ctlplane`): one bar per agent count, scaled to the fastest point, with
// the server goroutine count alongside — flat goroutines as agents grow is
// the multiplexed-reader contract made visible.
func renderKACurve(v interface{}) string {
	m, ok := v.(map[string]interface{})
	if !ok {
		return ""
	}
	arr, ok := m["ka_curve"].([]interface{})
	if !ok || len(arr) == 0 {
		return ""
	}
	type point struct {
		agents, conns, goros int
		kps                  float64
	}
	var pts []point
	var max float64
	for _, e := range arr {
		pm, ok := e.(map[string]interface{})
		if !ok {
			return ""
		}
		num := func(key string) float64 {
			f, _ := pm[key].(float64)
			return f
		}
		p := point{
			agents: int(num("agents")),
			conns:  int(num("conns")),
			goros:  int(num("server_goroutines")),
			kps:    num("ka_per_sec"),
		}
		if p.agents == 0 {
			return ""
		}
		if p.kps > max {
			max = p.kps
		}
		pts = append(pts, p)
	}
	if max <= 0 {
		return ""
	}
	var out bytes.Buffer
	fmt.Fprintf(&out, "keep-alive throughput vs fleet size (%d points):\n", len(pts))
	const width = 40
	for _, p := range pts {
		n := int(p.kps / max * width)
		if n < 1 {
			n = 1
		}
		fmt.Fprintf(&out, "  %6d agents |%-*s| %9.0f ka/s  (%d conns, %d server goroutines)\n",
			p.agents, width, strings.Repeat("#", n), p.kps, p.conns, p.goros)
	}
	return out.String()
}

// renderDetailHists walks the decoded detail tree and renders every node
// that round-trips into a non-empty obs.HistogramSnapshot.
func renderDetailHists(path string, v interface{}) string {
	switch t := v.(type) {
	case map[string]interface{}:
		if s, ok := asHistogram(t); ok {
			return s.Render(path, 40)
		}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var out bytes.Buffer
		for _, k := range keys {
			out.WriteString(renderDetailHists(path+"."+k, t[k]))
		}
		return out.String()
	case []interface{}:
		var out bytes.Buffer
		for i, e := range t {
			out.WriteString(renderDetailHists(fmt.Sprintf("%s[%d]", path, i), e))
		}
		return out.String()
	}
	return ""
}

// asHistogram recognizes a histogram snapshot by shape: the count and
// buckets keys must be present and the whole node must round-trip into
// obs.HistogramSnapshot (phase summaries carry count but no buckets, so
// they don't false-positive).
func asHistogram(m map[string]interface{}) (obs.HistogramSnapshot, bool) {
	if _, ok := m["count"]; !ok {
		return obs.HistogramSnapshot{}, false
	}
	if _, ok := m["buckets"]; !ok {
		return obs.HistogramSnapshot{}, false
	}
	raw, err := json.Marshal(m)
	if err != nil {
		return obs.HistogramSnapshot{}, false
	}
	var s obs.HistogramSnapshot
	if err := json.Unmarshal(raw, &s); err != nil || s.Count <= 0 || len(s.Buckets) == 0 {
		return obs.HistogramSnapshot{}, false
	}
	return s, true
}

// controlPlaneSummary renders the replicated-controller life events in a
// trace — replica elections, stepdowns, and agent failovers — as a timeline,
// so a leader change mid-storm is visible in the default summary without
// reaching for -stitch. Empty when the trace has no such events (the common
// single-controller case).
func controlPlaneSummary(evs []obs.Event) string {
	var b bytes.Buffer
	var elections, stepdowns, failovers int
	maxTerm := int32(0)
	for _, ev := range evs {
		switch ev.Kind {
		case obs.KindLeaderElected:
			elections++
			fmt.Fprintf(&b, "  %12v  leader-elected  replica=%d term=%d\n", ev.T, ev.Switch, ev.Count)
		case obs.KindLeaderLost:
			stepdowns++
			fmt.Fprintf(&b, "  %12v  leader-lost     replica=%d term=%d\n", ev.T, ev.Switch, ev.Count)
		case obs.KindFailover:
			failovers++
			fmt.Fprintf(&b, "  %12v  agent-failover  switch=%d -> %s (connection %d)\n", ev.T, ev.Switch, ev.Detail, ev.Count)
			continue
		default:
			continue
		}
		if ev.Count > maxTerm {
			maxTerm = ev.Count
		}
	}
	if b.Len() == 0 {
		return ""
	}
	head := fmt.Sprintf("control plane: %d elections, %d stepdowns, %d agent failovers (max term %d)\n",
		elections, stepdowns, failovers, maxTerm)
	return head + b.String()
}

// shardSpan ties a recovery span back to the sweep shard it ran on.
type shardSpan struct {
	shard uint64
	span  *obs.Span
}

// collectSpans groups events into recovery spans, de-interleaving sweep
// shards first: span IDs are per-bus counters, and every sweep worker runs
// on its own private bus, so a shared trace file reuses the same span IDs
// across shards. Collecting per shard tag (0 = the process bus) keeps each
// worker's recoveries separate instead of merging them into one mangled
// span. Returns the sorted shard tags and all spans in (shard, first-seen)
// order.
func collectSpans(evs []obs.Event) ([]uint64, []shardSpan) {
	cols := make(map[uint64]*obs.SpanCollector)
	var shards []uint64
	for _, ev := range evs {
		col := cols[ev.Shard]
		if col == nil {
			col = obs.NewSpanCollector()
			cols[ev.Shard] = col
			shards = append(shards, ev.Shard)
		}
		col.AddEvents([]obs.Event{ev})
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i] < shards[j] })
	var out []shardSpan
	for _, sh := range shards {
		for _, sp := range cols[sh].Spans() {
			out = append(out, shardSpan{shard: sh, span: sp})
		}
	}
	return shards, out
}

// breakdown aggregates completed spans across every shard (kind "" = all).
func breakdown(spans []shardSpan, kind string) *obs.Breakdown {
	b := &obs.Breakdown{Kind: kind}
	for _, ss := range spans {
		sp := ss.span
		if !sp.Complete || (kind != "" && sp.Kind != kind) {
			continue
		}
		b.Add(sp.Detection, sp.Report, sp.Reconfig, sp.Total)
	}
	return b
}

// shardCount returns the number of distinct sweep shards in the trace
// (untagged events count as one source when present alongside tagged ones).
func shardCount(evs []obs.Event) int {
	shards := make(map[uint64]bool)
	for _, ev := range evs {
		shards[ev.Shard] = true
	}
	return len(shards)
}

// seqLoss detects event loss from holes in the bus-assigned sequence
// numbers: a JSONL file written through a bounded sink (a full ring, a slow
// /events client) silently misses events, but their Seqs never lie. Returns
// the number of missing events and the number of distinct gaps.
//
// A trace can interleave several sequence streams: sweep workers run on
// private buses whose Seqs each start at 1, shard-tagged into the shared
// file. Gap detection therefore groups by the events' shard tag (0 = the
// process bus) — without the grouping every interleaved shard would read as
// a forest of spurious gaps. Traces from buses that predate Seq assignment
// (all-zero) report no loss.
func seqLoss(evs []obs.Event) (lost, gaps int) {
	streams := make(map[uint64][]uint64)
	for _, ev := range evs {
		if ev.Seq == 0 {
			continue
		}
		key := ev.Shard
		if ev.Kind == obs.KindSweepShardDone {
			// Progress events carry the shard tag of the shard that
			// finished but are emitted (and sequence-numbered) on the
			// sweep's shared bus, not the worker's private one.
			key = 0
		}
		streams[key] = append(streams[key], ev.Seq)
	}
	for _, seqs := range streams {
		if len(seqs) < 2 {
			continue
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for i := 1; i < len(seqs); i++ {
			if d := seqs[i] - seqs[i-1]; d > 1 {
				lost += int(d - 1)
				gaps++
			}
		}
	}
	return lost, gaps
}

// phaseHistograms aggregates the recovery phase latencies (and individual
// circuit reconfigurations) into log-bucketed histograms — the offline twin
// of the /varz quantiles, computed from a trace file instead of a live
// registry.
func phaseHistograms(evs []obs.Event) string {
	phases := []struct {
		name string
		get  func(obs.Event) time.Duration
	}{
		{"detection", func(e obs.Event) time.Duration { return e.Detection }},
		{"report", func(e obs.Event) time.Duration { return e.Report }},
		{"reconfig", func(e obs.Event) time.Duration { return e.Reconfig }},
		{"total", func(e obs.Event) time.Duration { return e.Total }},
	}
	var out bytes.Buffer
	for _, ph := range phases {
		h := &obs.Histogram{}
		for _, ev := range evs {
			if ev.Kind == obs.KindRecoveryComplete {
				h.Record(ph.get(ev).Nanoseconds())
			}
		}
		if h.Count() > 0 {
			out.WriteString(h.Snapshot().Render("recovery "+ph.name+" latency (ns)", 40))
		}
	}
	h := &obs.Histogram{}
	for _, ev := range evs {
		if ev.Kind == obs.KindCircuitReconfigured {
			h.Record(ev.Reconfig.Nanoseconds())
		}
	}
	if h.Count() > 0 {
		out.WriteString(h.Snapshot().Render("per-circuit reconfiguration latency (ns)", 40))
	}
	if out.Len() == 0 {
		return "no recovery events to histogram\n"
	}
	return out.String()
}

// tail renders events as they arrive, polling past EOF so a live trace file
// can be watched while the producer is still running.
func tail(in io.Reader) error {
	r := bufio.NewReader(in)
	fileLike := isFile(in)
	var buf []byte
	emit := func() {
		line := bytes.TrimSpace(buf)
		buf = buf[:0]
		if len(line) == 0 {
			return
		}
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err == nil {
			fmt.Println(ev.String())
		}
	}
	for {
		chunk, err := r.ReadBytes('\n')
		buf = append(buf, chunk...)
		if bytes.HasSuffix(buf, []byte("\n")) {
			emit()
		}
		switch {
		case err == io.EOF && fileLike:
			// The producer may still be appending: poll for more.
			time.Sleep(200 * time.Millisecond)
		case err == io.EOF:
			emit() // pipe closed, flush any final unterminated line
			return nil
		case err != nil:
			return err
		}
	}
}

func isFile(r io.Reader) bool {
	f, ok := r.(*os.File)
	if !ok {
		return false
	}
	info, err := f.Stat()
	return err == nil && info.Mode().IsRegular()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbtap:", err)
	os.Exit(1)
}
