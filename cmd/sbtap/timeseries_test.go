package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sharebackup/internal/obs/tsdb"
)

func TestSparkline(t *testing.T) {
	// A ramp must hit the lowest glyph first and the highest last.
	got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 60)
	if []rune(got)[0] != '▁' || []rune(got)[7] != '█' {
		t.Fatalf("ramp = %q", got)
	}
	// A flat series renders at the lowest level, not mid-scale.
	if got := sparkline([]float64{5, 5, 5}, 60); got != "▁▁▁" {
		t.Fatalf("flat = %q", got)
	}
	// Width trims from the old end.
	if got := sparkline([]float64{9, 0, 9}, 2); len([]rune(got)) != 2 || []rune(got)[1] != '█' {
		t.Fatalf("trimmed = %q", got)
	}
}

func TestRenderTimeSeries(t *testing.T) {
	series := []tsdb.SeriesData{
		{Name: "recovery.count", Kind: tsdb.KindCounterDelta, Points: []tsdb.Point{
			{TMS: 0, V: 0}, {TMS: 1000, V: 3}, {TMS: 2000, V: 1},
		}},
		{Name: "idle.gauge", Kind: tsdb.KindGauge, Points: []tsdb.Point{
			{TMS: 0, V: 0}, {TMS: 1000, V: 0},
		}},
	}
	out := renderTimeSeries("dump.json", series)
	if !strings.Contains(out, "2 series") {
		t.Fatalf("header: %q", out)
	}
	if !strings.Contains(out, "recovery.count") || !strings.Contains(out, "[counter-delta]") {
		t.Fatalf("series row missing:\n%s", out)
	}
	if !strings.Contains(out, "min=0 max=3 last=1 (3 pts)") {
		t.Fatalf("stats missing:\n%s", out)
	}
	// A series flat at zero is noise and is hidden.
	if strings.Contains(out, "idle.gauge") {
		t.Fatalf("flat-zero series shown:\n%s", out)
	}
	// ...unless everything is flat, in which case say so.
	out = renderTimeSeries("dump.json", series[1:])
	if !strings.Contains(out, "all series empty or zero") {
		t.Fatalf("all-flat dump unmarked:\n%s", out)
	}
}

func TestTimeSeriesReportFromFile(t *testing.T) {
	series := []tsdb.SeriesData{{
		Name: "x", Kind: tsdb.KindGauge,
		Points: []tsdb.Point{{TMS: 0, V: 1}, {TMS: 1000, V: 2}},
	}}
	data, err := json.Marshal(series)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ts.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := timeSeriesReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 series") || !strings.Contains(out, "x") {
		t.Fatalf("report:\n%s", out)
	}

	// A single-series dump (?metric=NAME shape) is tolerated.
	one, _ := json.Marshal(series[0])
	if err := os.WriteFile(path, one, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := timeSeriesReport(path); err != nil {
		t.Fatalf("single-series dump: %v", err)
	}

	// Garbage is a clear error, not a zero-series report.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := timeSeriesReport(path); err == nil {
		t.Fatal("garbage accepted")
	}
}
