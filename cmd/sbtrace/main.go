// Command sbtrace generates, inspects, and converts coflow traces in the
// coflow-benchmark format the paper's failure study replays.
//
// Usage:
//
//	sbtrace -gen -racks 150 -coflows 526 -duration 3600 -seed 1 > trace.txt
//	sbtrace -inspect trace.txt
//	sbtrace -inspect trace.txt -window 300
package main

import (
	"flag"
	"fmt"
	"os"

	"sharebackup/internal/coflow"
	"sharebackup/internal/metrics"
)

func main() {
	var (
		gen      = flag.Bool("gen", false, "generate a synthetic trace to stdout")
		racks    = flag.Int("racks", 150, "rack count (generation)")
		coflows  = flag.Int("coflows", 526, "coflow count (generation)")
		duration = flag.Float64("duration", 3600, "arrival horizon in seconds (generation)")
		seed     = flag.Int64("seed", 1, "generation seed")
		inspect  = flag.String("inspect", "", "trace file to summarize")
		window   = flag.Float64("window", 0, "also report per-window counts at this window size (seconds)")
	)
	flag.Parse()

	switch {
	case *gen:
		tr, err := coflow.Generate(coflow.GenConfig{
			Racks: *racks, NumCoflows: *coflows, Duration: *duration, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		if err := tr.Format(os.Stdout); err != nil {
			fatal(err)
		}
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := coflow.Parse(f)
		if err != nil {
			fatal(err)
		}
		summarize(tr, *window)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func summarize(tr *coflow.Trace, window float64) {
	widths := make([]float64, len(tr.Coflows))
	bytes := make([]float64, len(tr.Coflows))
	for i := range tr.Coflows {
		widths[i] = float64(tr.Coflows[i].Width())
		bytes[i] = tr.Coflows[i].TotalBytes()
	}
	ws, bs := metrics.Summarize(widths), metrics.Summarize(bytes)
	fmt.Printf("racks: %d\ncoflows: %d\nflows: %d\nduration: %.1fs\n",
		tr.NumRacks, len(tr.Coflows), tr.TotalFlows(), tr.Duration())
	fmt.Printf("width:  median %.0f  p90 %.0f  p99 %.0f  max %.0f\n", ws.Median, ws.P90, ws.P99, ws.Max)
	fmt.Printf("bytes:  median %.3g  p90 %.3g  p99 %.3g  max %.3g\n", bs.Median, bs.P90, bs.P99, bs.Max)

	if window > 0 {
		parts, err := tr.Partition(window)
		if err != nil {
			fatal(err)
		}
		tbl := &metrics.Table{
			Title:   fmt.Sprintf("per-%gs-window coflow counts", window),
			Headers: []string{"window", "coflows", "flows"},
		}
		for i, p := range parts {
			tbl.AddRow(i, len(p.Coflows), p.TotalFlows())
		}
		fmt.Print(tbl.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbtrace:", err)
	os.Exit(1)
}
