package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"sharebackup/internal/bench"
)

// runGate invokes the CLI entry point with a laptop-scale configuration.
func runGate(t *testing.T, dir string, extra ...string) (int, string) {
	t.Helper()
	args := append([]string{
		"-recovery", filepath.Join(dir, "BENCH_recovery.json"),
		"-dataplane", filepath.Join(dir, "BENCH_dataplane.json"),
		"-sweep", filepath.Join(dir, "BENCH_sweep.json"),
		"-routing", filepath.Join(dir, "BENCH_routing.json"),
		"-obs", filepath.Join(dir, "BENCH_obs.json"),
		// Every gate gets an explicit temp path: an omitted flag would fall
		// back to the repo-root default and rewrite a committed baseline
		// from a smoke-scale test run.
		"-ctlplane", filepath.Join(dir, "BENCH_ctlplane.json"),
		"-k", "4", "-trials", "2", "-smoke",
	}, extra...)
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String() + errb.String()
}

func TestTrajectoryGate(t *testing.T) {
	dir := t.TempDir()

	// First run: no baseline, must pass and write both files.
	code, out := runGate(t, dir)
	if code != 0 {
		t.Fatalf("first run exit=%d:\n%s", code, out)
	}
	recPath := filepath.Join(dir, "BENCH_recovery.json")
	rec, err := bench.Read(recPath)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Meta.TimestampUTC == "" || rec.Meta.GoVersion == "" {
		t.Fatalf("BENCH file not stamped: %+v", rec.Meta)
	}
	if len(rec.Metrics) == 0 || len(rec.Detail) == 0 {
		t.Fatalf("BENCH file missing metrics/detail: %+v", rec)
	}
	if _, err := bench.Read(filepath.Join(dir, "BENCH_dataplane.json")); err != nil {
		t.Fatal(err)
	}
	sw, err := bench.Read(filepath.Join(dir, "BENCH_sweep.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := sw.Metrics["sweep.deterministic"].Value; got != 1 {
		t.Fatalf("sweep.deterministic = %v, want 1", got)
	}
	rt, err := bench.Read(filepath.Join(dir, "BENCH_routing.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Metrics["routing.pathfor_allocs_op"].Value; got != 0 {
		t.Fatalf("routing.pathfor_allocs_op = %v, want 0", got)
	}
	if got := rt.Metrics["routing.speedup_vs_fresh"].Value; got < 1 {
		t.Fatalf("routing.speedup_vs_fresh = %v, want >= 1", got)
	}
	ob, err := bench.Read(filepath.Join(dir, "BENCH_obs.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"obs.emit_nosink_ns_op", "obs.emit_nosink_allocs_op",
		"obs.emit_ring_ns_event", "obs.emit_ring_allocs_event",
		"obs.jsonl_bytes_event", "obs.tsdb_sample_ns_op",
		"obs.export_ns_op", "obs.promtext_ns_op",
	} {
		if _, ok := ob.Metrics[name]; !ok {
			t.Fatalf("BENCH_obs.json missing %s: have %v", name, ob.Metrics)
		}
	}
	if got := ob.Metrics["obs.emit_nosink_allocs_op"].Value; got != 0 {
		t.Fatalf("obs.emit_nosink_allocs_op = %v, want 0", got)
	}

	// Second run against its own output: recovery latencies are
	// deterministic, so the gate stays green.
	code, out = runGate(t, dir, "-no-write")
	if code != 0 {
		t.Fatalf("steady-state run exit=%d:\n%s", code, out)
	}

	// Inject a regression: pretend the baseline was twice as fast as what
	// the benchmark will measure. The gate must exit 1.
	for name, m := range rec.Metrics {
		m.Value /= 2
		rec.Metrics[name] = m
	}
	if err := bench.Write(recPath, rec); err != nil {
		t.Fatal(err)
	}
	code, out = runGate(t, dir, "-no-write")
	if code != 1 {
		t.Fatalf("injected regression exit=%d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("regression not reported:\n%s", out)
	}
}

func TestBenchFailureExitsTwo(t *testing.T) {
	dir := t.TempDir()
	// k must be even and >= 4; k=3 makes the harness fail.
	var out, errb bytes.Buffer
	code := run([]string{
		"-recovery", filepath.Join(dir, "r.json"),
		"-dataplane", "",
		"-sweep", "",
		"-k", "3", "-trials", "1",
	}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit=%d, want 2\n%s%s", code, out.String(), errb.String())
	}
}
