// Command sbbench is the benchmark trajectory gate: it runs the repo's
// benchmark suite (control-plane recovery latency, data-plane fluid
// simulation, sweep-engine throughput and determinism, routing-core lookup
// cost, observability-layer self-overhead), stamps the results
// with provenance (git SHA, UTC timestamp,
// toolchain, host), compares them against the committed BENCH_*.json files
// from the previous run, and exits non-zero when a metric regressed beyond
// its tolerance — so performance changes are a visible diff, never silent
// drift.
//
// Usage:
//
//	sbbench                          # run both benches, gate, update files
//	sbbench -no-write                # gate only, leave BENCH_*.json alone
//	sbbench -recovery "" -k 8        # data-plane bench only
//	sbbench -tolerance 0.25          # override the default gate threshold
//
// Exit status: 0 clean, 1 regression detected, 2 benchmark failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"sharebackup"
	"sharebackup/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sbbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		recoveryPath  = fs.String("recovery", "BENCH_recovery.json", "recovery benchmark trajectory file (empty skips)")
		dataplanePath = fs.String("dataplane", "BENCH_dataplane.json", "data-plane benchmark trajectory file (empty skips)")
		sweepPath     = fs.String("sweep", "BENCH_sweep.json", "sweep-engine benchmark trajectory file (empty skips)")
		routingPath   = fs.String("routing", "BENCH_routing.json", "routing-core benchmark trajectory file (empty skips)")
		obsPath       = fs.String("obs", "BENCH_obs.json", "observability-overhead benchmark trajectory file (empty skips)")
		ctlplanePath  = fs.String("ctlplane", "BENCH_ctlplane.json", "replicated-controller consensus benchmark trajectory file (empty skips)")
		k             = fs.Int("k", 8, "fat-tree parameter")
		n             = fs.Int("n", 1, "backup switches per failure group")
		trials        = fs.Int("trials", 32, "failovers per kind for the recovery benchmark")
		tolerance     = fs.Float64("tolerance", 0.10, "default allowed relative regression for metrics without their own tolerance")
		noWrite       = fs.Bool("no-write", false, "gate against the prior files without updating them")
		smoke         = fs.Bool("smoke", false, "shrink the data-plane storm comparison to CI scale (storm metrics reported but not gated)")
		workers       = fs.Int("workers", 0, "simulator worker-pool bound for the data-plane benches (0 = GOMAXPROCS); results are bit-identical for any value")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	meta := bench.Stamp()
	meta.Workers = *workers
	if meta.Workers <= 0 {
		meta.Workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(stdout, "sbbench: %s %s/%s sha=%s workers=%d\n", meta.GoVersion, meta.GOOS, meta.GOARCH, short(meta.GitSHA), meta.Workers)

	status := 0
	gate := func(path, name string, make func() (*bench.File, string, error)) {
		if path == "" || status == 2 {
			return
		}
		path = resolveRepoPath(path)
		file, summary, err := make()
		if err != nil {
			fmt.Fprintf(stderr, "sbbench: %s: %v\n", name, err)
			status = 2
			return
		}
		file.Meta = meta
		regs, err := bench.Compare(path, file, *tolerance)
		if err != nil {
			fmt.Fprintf(stderr, "sbbench: %s: comparing against %s: %v\n", name, path, err)
			status = 2
			return
		}
		fmt.Fprintf(stdout, "%s: %s\n", name, summary)
		if len(regs) == 0 {
			fmt.Fprintf(stdout, "%s: no regressions against %s\n", name, path)
		} else {
			status = 1
			fmt.Fprintf(stdout, "%s: %d REGRESSION(S) against %s:\n", name, len(regs), path)
			for _, r := range regs {
				fmt.Fprintf(stdout, "  %s\n", r)
			}
		}
		if !*noWrite {
			if err := bench.Write(path, file); err != nil {
				fmt.Fprintf(stderr, "sbbench: %s: %v\n", name, err)
				status = 2
				return
			}
			fmt.Fprintf(stdout, "%s: wrote %s\n", name, path)
		}
	}

	gate(*recoveryPath, "recovery", func() (*bench.File, string, error) {
		res, err := sharebackup.RecoveryBench(*k, *n, *trials)
		if err != nil {
			return nil, "", err
		}
		f := &bench.File{Metrics: res.GateMetrics()}
		if err := f.SetDetail(res); err != nil {
			return nil, "", err
		}
		return f, fmt.Sprintf("%d techs, %d recoveries each", len(res.Techs), res.Techs[0].Recoveries), nil
	})
	gate(*dataplanePath, "dataplane", func() (*bench.File, string, error) {
		res, err := sharebackup.DataplaneBench(sharebackup.DataplaneBenchConfig{K: *k, Smoke: *smoke, Workers: *workers})
		if err != nil {
			return nil, "", err
		}
		f := &bench.File{Metrics: res.GateMetrics()}
		if err := f.SetDetail(res); err != nil {
			return nil, "", err
		}
		summary := fmt.Sprintf("%d flows, fct p50=%dµs p99=%dµs, wall %.0fms, %.0f events/s, %.1f allocs/event",
			res.Flows, res.FCTUS.P50, res.FCTUS.P99, res.WallMS, res.EventsPerSec, res.AllocsPerEvent)
		if s := res.Storm; s != nil {
			mode := ""
			if s.Smoke {
				mode = " (smoke, ungated)"
			}
			summary += fmt.Sprintf("; storm k=%d %d flows: %.1fx work, %.1fx wall, %.0f events/s%s",
				s.K, s.Flows, s.WorkRatio, s.WallSpeedup, s.EventsPerSec, mode)
		}
		if s := res.StormK48; s != nil {
			mode := ""
			if s.Smoke {
				mode = " (smoke, ungated)"
			}
			summary += fmt.Sprintf("; scale k=%d %d flows: %.0f events/s, %.2fx at %d workers%s",
				s.K, s.Flows, s.EventsPerSec, s.ParSpeedup, s.Workers, mode)
		}
		return f, summary, nil
	})
	gate(*sweepPath, "sweep", func() (*bench.File, string, error) {
		res, err := sharebackup.SweepBench(sharebackup.SweepBenchConfig{K: *k})
		if err != nil {
			return nil, "", err
		}
		if !res.Deterministic {
			return nil, "", fmt.Errorf("sweep results differ across worker counts: %s != %s",
				res.Fingerprint1, res.FingerprintN)
		}
		f := &bench.File{Metrics: res.GateMetrics()}
		if err := f.SetDetail(res); err != nil {
			return nil, "", err
		}
		return f, fmt.Sprintf("%d shards, %.0f trials/s at 1 worker, %.2fx at %d workers, deterministic",
			res.Shards, res.TrialsPerSec1, res.Speedup, res.Workers), nil
	})

	gate(*routingPath, "routing", func() (*bench.File, string, error) {
		res, err := sharebackup.RoutingBench(sharebackup.RoutingBenchConfig{Smoke: *smoke})
		if err != nil {
			return nil, "", err
		}
		f := &bench.File{Metrics: res.GateMetrics()}
		if err := f.SetDetail(res); err != nil {
			return nil, "", err
		}
		return f, fmt.Sprintf("k=%d, %d pairs / %d interned paths, pathfor %.0fns %.2f allocs/op (fresh %.0fns, %.0fx), storm %.0f lookups/s",
			res.K, res.WarmedPairs, res.InternedPaths, res.PathForNSOp, res.PathForAllocsOp,
			res.FreshNSOp, res.SpeedupVsFresh, res.StormLookupsPerSec), nil
	})

	gate(*obsPath, "obs", func() (*bench.File, string, error) {
		res, err := sharebackup.ObsBench(sharebackup.ObsBenchConfig{Smoke: *smoke})
		if err != nil {
			return nil, "", err
		}
		f := &bench.File{Metrics: res.GateMetrics()}
		if err := f.SetDetail(res); err != nil {
			return nil, "", err
		}
		return f, fmt.Sprintf("emit no-sink %.1fns %.2f allocs/ev, ring %.0fns %.2f allocs/ev, jsonl %.0fns %.0fB/ev, tsdb sample %.0fns/%d series, promtext %.0fns",
			res.EmitNoSinkNSOp, res.EmitNoSinkAllocsOp, res.EmitRingNSEvent, res.EmitRingAllocsOp,
			res.EmitJSONLNSEvent, res.JSONLBytesEvent, res.TSDBSampleNSOp, res.TSDBSeries, res.PromTextNSOp), nil
	})

	gate(*ctlplanePath, "ctlplane", func() (*bench.File, string, error) {
		res, err := sharebackup.CtlplaneBench(sharebackup.CtlplaneBenchConfig{Smoke: *smoke})
		if err != nil {
			return nil, "", err
		}
		f := &bench.File{Metrics: res.GateMetrics()}
		if err := f.SetDetail(res); err != nil {
			return nil, "", err
		}
		curve := ""
		for _, p := range res.KACurve {
			curve += fmt.Sprintf(" %dk=%.0fka/s(g%d)", p.Agents/1000, p.KAPerSec, p.ServerGoroutines)
		}
		return f, fmt.Sprintf("%d replicas, first election %.1fms, failover %.1fms, commit %.0fµs seq %.0f/s, pipelined x%d %.0f/s, snapshot %.0fµs/%dB; storm %d recoveries/%d rounds = %.1fx; fleet%s",
			res.Replicas, res.FirstElectionMS, res.FailoverMS, res.CommitNSOp/1e3, res.CommitsPerSec,
			res.PipelineDepth, res.PipelinedPerSec, res.SnapshotNSOp/1e3, res.SnapshotBytes,
			res.StormRecoveries, res.StormRounds, res.StormBatchRatio, curve), nil
	})

	switch status {
	case 0:
		fmt.Fprintln(stdout, "sbbench: ok")
	case 1:
		fmt.Fprintln(stdout, "sbbench: FAIL — benchmark trajectory regressed")
	}
	return status
}

// resolveRepoPath anchors a relative trajectory-file path at the repo root
// (the nearest ancestor of the working directory containing go.mod), so
// `go test ./cmd/sbbench` or a `go run` from a subdirectory gates against —
// and rewrites — the committed BENCH_*.json files instead of scattering
// fresh baselines wherever the process happened to start. Absolute paths
// (what the tests pass) are untouched, and without a go.mod ancestor the
// path stays relative to the working directory.
func resolveRepoPath(path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	dir, err := os.Getwd()
	if err != nil {
		return path
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, path)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return path
		}
		dir = parent
	}
}

func short(sha string) string {
	if sha == "" {
		return "?"
	}
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
