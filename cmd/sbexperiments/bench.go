package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sharebackup"
	"sharebackup/internal/metrics"
	"sharebackup/internal/obs"
)

// benchResult is the machine-readable benchmark output (BENCH_recovery.json):
// per-phase order statistics over many recoveries, per circuit technology and
// recovery kind. All latencies are microseconds, the unit of the paper's
// Section 5.3 budget.
type benchResult struct {
	Experiment string      `json:"experiment"`
	K          int         `json:"k"`
	N          int         `json:"n"`
	Trials     int         `json:"trials_per_kind"`
	Techs      []benchTech `json:"techs"`
}

type benchTech struct {
	Tech       string                        `json:"tech"`
	Recoveries int                           `json:"recoveries"`
	PhasesUS   map[string]metrics.Summary    `json:"phases_us"`
	Kinds      map[string]benchKindBreakdown `json:"kinds"`
}

type benchKindBreakdown struct {
	Recoveries int                        `json:"recoveries"`
	PhasesUS   map[string]metrics.Summary `json:"phases_us"`
}

// runBenchJSON drives many node and link failovers per circuit technology,
// collects their recovery spans on a private event bus, and writes the phase
// breakdown percentiles to path. Detection latency is varied by shifting the
// failure time against the last heartbeat, as real failures land at arbitrary
// probe phases.
func runBenchJSON(k, n, trials int, path string) error {
	if k == 0 {
		k = 8
	}
	res := benchResult{Experiment: "recovery-latency", K: k, N: n, Trials: trials}
	for _, tech := range []sharebackup.Technology{sharebackup.Crosspoint, sharebackup.MEMS2D} {
		bus := &obs.Bus{}
		col := obs.NewSpanCollector()
		bus.Attach(col)
		for i := 0; i < trials; i++ {
			pod := i % k
			// Node failover: one agg switch per trial, failure time phased
			// against its heartbeat.
			sys, err := sharebackup.New(sharebackup.Config{K: k, N: n, Tech: tech, Obs: bus})
			if err != nil {
				return err
			}
			probe := sys.Controller.Config().ProbeInterval
			victim := sys.Network.AggGroup(pod).Slots()[i%(k/2)]
			sys.Controller.Heartbeat(victim, 0)
			at := probe + time.Duration(i%7)*probe/8
			if _, err := sys.FailNode(victim, at); err != nil {
				return err
			}
			// Link failover: fresh system so every trial starts with a full
			// backup pool.
			sys, err = sharebackup.New(sharebackup.Config{K: k, N: n, Tech: tech, Obs: bus})
			if err != nil {
				return err
			}
			// Edge slot 0's up-port k/2 reaches agg slot 0's down-port 0
			// (rotation j=0) in every pod.
			edge := sys.Network.EdgeGroup(pod).Slots()[0]
			agg := sys.Network.AggGroup(pod).Slots()[0]
			if _, err := sys.FailLink(
				sharebackup.EndPoint{Switch: edge, Port: k / 2},
				sharebackup.EndPoint{Switch: agg, Port: 0},
				at,
			); err != nil {
				return err
			}
		}
		bt := benchTech{
			Tech:     tech.String(),
			PhasesUS: col.Breakdown("").Summaries(),
			Kinds:    make(map[string]benchKindBreakdown),
		}
		bt.Recoveries = col.Breakdown("").N()
		for _, kind := range []string{"node", "link"} {
			b := col.Breakdown(kind)
			bt.Kinds[kind] = benchKindBreakdown{Recoveries: b.N(), PhasesUS: b.Summaries()}
		}
		res.Techs = append(res.Techs, bt)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&res); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d techs, %d recoveries each)\n", path, len(res.Techs), res.Techs[0].Recoveries)
	return nil
}
