package main

import (
	"fmt"

	"sharebackup"
	"sharebackup/internal/bench"
	"sharebackup/internal/obs"
)

// runBenchJSON drives the shared recovery benchmark harness and writes the
// phase breakdown percentiles to path, stamped with provenance (git SHA,
// timestamp, toolchain) and the flat metric map the sbbench trajectory gate
// compares across commits. Trials shard across workers; traceSink, when
// non-nil, receives every trial's events shard-tagged.
func runBenchJSON(k, n, trials, workers int, path string, traceSink obs.Sink) error {
	res, err := sharebackup.RunRecoveryBench(sharebackup.RecoveryBenchConfig{
		K: k, N: n, Trials: trials, Workers: workers, TraceSink: traceSink,
	})
	if err != nil {
		return err
	}
	file := &bench.File{Meta: bench.Stamp(), Metrics: res.GateMetrics()}
	if err := file.SetDetail(res); err != nil {
		return err
	}
	if err := bench.Write(path, file); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d techs, %d recoveries each)\n", path, len(res.Techs), res.Techs[0].Recoveries)
	return nil
}
