// Command sbexperiments regenerates every table and figure of the paper
// (see EXPERIMENTS.md for the index). Each experiment prints the rows or
// series the paper reports.
//
// Usage:
//
//	sbexperiments [-run all|fig1a|fig1b|fig1c|table2|table3|fig5|capacity|latency|tablesize]
//	              [-k N] [-n N] [-seed S] [-full] [-workers N]
//	              [-trace FILE] [-events] [-json FILE]
//
// -trace writes every structured control-plane event as JSONL (summarize
// with sbtap); -events logs them human-readably to stderr. -json runs the
// recovery-latency benchmark harness and writes per-phase percentiles to the
// named file (conventionally BENCH_recovery.json).
//
// -full runs the paper-scale configurations (k=16 failure study); the
// default is a laptop-scale run with the same shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sharebackup"
	"sharebackup/internal/fluid"
	"sharebackup/internal/metrics"
	"sharebackup/internal/obs"
	"sharebackup/internal/obs/debughttp"
	"sharebackup/internal/obs/prof"
	"sharebackup/internal/obs/tsdb"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment to run (all, fig1a, fig1b, fig1c, table2, table3, fig5, capacity, latency, tablesize)")
		k          = flag.Int("k", 0, "fat-tree parameter override (0 = experiment default)")
		n          = flag.Int("n", 1, "backup switches per failure group")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		full       = flag.Bool("full", false, "run paper-scale configurations (slower)")
		trace      = flag.String("trace", "", "write structured events as JSONL to this file (summarize with sbtap)")
		events     = flag.Bool("events", false, "log structured events human-readably to stderr")
		jsonPath   = flag.String("json", "", "run the recovery benchmark and write phase percentiles to this file (e.g. BENCH_recovery.json)")
		trials     = flag.Int("trials", 32, "failovers per kind for the -json benchmark")
		workers    = flag.Int("workers", 0, "sweep worker pool size for fig1a/fig1b/fig1c and the -json benchmark (0 = GOMAXPROCS; results are identical for any value)")
		debugAddr  = flag.String("debug-addr", "", "serve live introspection (pprof, /varz, /events, /metricsz) on this address, e.g. 127.0.0.1:6060")
		sloBudget  = flag.Duration("slo-budget", 0, "recovery-time SLO budget; breaches trip the watchdog (0 disables)")
		flightRec  = flag.Bool("flight-recorder", false, "keep an always-on event ring and dump a diagnostic bundle on anomalies")
		profileDir = flag.String("profile-dir", "", "continuous profiler: rotating phase-labeled CPU/heap bundles in this directory (default $SHAREBACKUP_PROF_DIR; empty disables)")
	)
	flag.Parse()

	obs.Default.MeterOverhead(obs.DefaultRegistry)
	// One windowed metric store serves /timeseriesz and upgrades the SLO
	// watchdog's burn rate to a wall-clock window.
	tstore := tsdb.New(tsdb.Config{})
	tstore.Start()
	defer tstore.Close()
	var profiler *prof.Profiler
	if dir := prof.ResolveDir(*profileDir); dir != "" {
		p, err := prof.Start(prof.Config{Dir: dir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbexperiments:", err)
			os.Exit(1)
		}
		profiler = p
		defer p.Close()
		fmt.Fprintf(os.Stderr, "sbexperiments: continuous profiler writing bundles to %s\n", dir)
	}

	if *debugAddr != "" {
		// Every fluid.Simulator the experiments build from here on samples
		// data-plane telemetry into the registry /varz serves.
		fluid.SetDefaultTelemetry(fluid.NewTelemetry(obs.DefaultRegistry))
		srv, err := debughttp.Start(*debugAddr, debughttp.Config{TSDB: tstore})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbexperiments:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sbexperiments: debug server at http://%s/\n", srv.Addr())
	}

	var traceSink obs.Sink
	if *trace != "" {
		sink, done, err := obs.TraceSinkToFile(nil, *trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbexperiments:", err)
			os.Exit(1)
		}
		traceSink = sink
		defer func() {
			if err := done(); err != nil {
				fmt.Fprintln(os.Stderr, "sbexperiments:", err)
			}
		}()
	}
	if *events {
		defer obs.EventsToLogf(nil, func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})()
	}
	if *sloBudget > 0 {
		w := obs.NewSLOWatchdog(obs.SLOConfig{Budget: *sloBudget, Registry: obs.DefaultRegistry, BurnSource: tstore})
		obs.Default.Attach(w)
		defer obs.Default.Detach(w)
	}
	if *flightRec {
		fc := obs.FlightConfig{
			SLOBudget:             *sloBudget,
			KeepAliveGapThreshold: 3,
			DropBurstThreshold:    1024,
		}
		if profiler != nil {
			fc.Profile = profiler
		}
		fr := obs.NewFlightRecorder(fc)
		fr.Attach(obs.Default)
		defer func() {
			obs.Default.Detach(fr)
			fr.Close()
		}()
	}
	if *jsonPath != "" {
		if err := runBenchJSON(*k, *n, *trials, *workers, *jsonPath, traceSink); err != nil {
			fmt.Fprintf(os.Stderr, "sbexperiments: bench: %v\n", err)
			os.Exit(1)
		}
		if *run == "all" {
			return
		}
	}

	experiments := map[string]func() error{
		"fig1a":      func() error { return runFig1(true, *k, *seed, *full, *workers) },
		"fig1b":      func() error { return runFig1(false, *k, *seed, *full, *workers) },
		"fig1c":      func() error { return runFig1c(*k, *seed, *full, *workers) },
		"table2":     func() error { return runTable2(*k, *n) },
		"table3":     func() error { return runTable3(*k, *seed) },
		"fig5":       runFig5,
		"capacity":   func() error { return runCapacity(*k, *n) },
		"latency":    func() error { return runLatency(*k) },
		"tablesize":  runTableSize,
		"extensions": func() error { return runExtensions(*k, *seed) },
		"transient":  func() error { return runTransient(*k, *seed) },
	}
	order := []string{"fig1a", "fig1b", "fig1c", "table2", "fig5", "table3", "capacity", "latency", "tablesize", "extensions", "transient"}

	selected := strings.Split(*run, ",")
	if *run == "all" {
		selected = order
	}
	for _, name := range selected {
		f, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "sbexperiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("===== %s =====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "sbexperiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func runFig1(nodes bool, k int, seed int64, full bool, workers int) error {
	cfg := sharebackup.Fig1Config{K: k, Seed: seed, Workers: workers}
	if cfg.K == 0 {
		if full {
			cfg.K = 16
		} else {
			cfg.K = 8
		}
	}
	var (
		res *sharebackup.Fig1Result
		err error
	)
	name, kind := "Figure 1(a)", "node"
	if nodes {
		res, err = sharebackup.Fig1a(cfg)
	} else {
		name, kind = "Figure 1(b)", "link"
		res, err = sharebackup.Fig1b(cfg)
	}
	if err != nil {
		return err
	}
	flows, coflows := res.Series(kind + " failure rate")
	out, err := metrics.RenderSeries(
		fmt.Sprintf("%s — %% of flows and coflows affected by %s failures (k=%d)", name, kind, cfg.K),
		flows, coflows)
	if err != nil {
		return err
	}
	fmt.Print(out)
	plot := &metrics.Plot{Title: name + " (curves)"}
	if chart, err := plot.Render(coflows, flows); err == nil {
		fmt.Print(chart)
	}
	fmt.Printf("single %s failure: %.2f%% of flows, %.2f%% of coflows affected (magnification %.1fx)\n",
		kind, res.SingleFlowPct, res.SingleCoflowPct,
		res.SingleCoflowPct/res.SingleFlowPct)
	return nil
}

func runFig1c(k int, seed int64, full bool, workers int) error {
	cfg := sharebackup.Fig1cConfig{K: k, Seed: seed, Workers: workers}
	if cfg.K == 0 {
		if full {
			// Paper scale: k=16, one failure per 5-minute window.
			cfg.K = 16
			cfg.Coflows = 40
			cfg.Windows = 12
			cfg.Scenarios = 24
		} else {
			cfg.K = 8
		}
	}
	res, err := sharebackup.Fig1c(cfg)
	if err != nil {
		return err
	}
	tbl := &metrics.Table{
		Title: fmt.Sprintf("Figure 1(c) — CCT slowdown under a single failure (k=%d, CDF points over affected coflows)",
			cfg.K),
		Headers: []string{"architecture", "p50", "p75", "p90", "p99", "max", "affected", "disconnected"},
	}
	curves := make(map[string]*metrics.CDF)
	for _, a := range res {
		cdf := a.CDF()
		tbl.AddRow(a.Name,
			cdf.Inverse(0.50), cdf.Inverse(0.75), cdf.Inverse(0.90), cdf.Inverse(0.99), cdf.Inverse(1),
			len(a.Slowdowns), a.Disconnected)
		if cdf.N() > 0 {
			curves[a.Name] = cdf
		}
	}
	fmt.Print(tbl.String())
	if chart, err := metrics.PlotCDF("CCT slowdown CDF (x = slowdown, y = %% of affected coflows)", 24, false, curves); err == nil {
		fmt.Print(chart)
	}
	return nil
}

func runTable2(k, n int) error {
	if k == 0 {
		k = 48
	}
	tbl, err := sharebackup.Table2(k, n)
	if err != nil {
		return err
	}
	fmt.Print(tbl.String())
	return nil
}

func runTable3(k int, seed int64) error {
	if k == 0 {
		k = 8
	}
	rows, err := sharebackup.Table3(k, seed)
	if err != nil {
		return err
	}
	tbl := &metrics.Table{
		Title:   fmt.Sprintf("Table 3 — measured performance characteristics (k=%d, one agg failure, all-to-all)", k),
		Headers: []string{"architecture", "no bw loss?", "no dilation?", "no upstream repair?", "throughput", "baseline", "max hops"},
	}
	check := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		tbl.AddRow(r.Arch, check(r.NoBandwidthLoss), check(r.NoPathDilation), check(r.NoUpstreamRepair),
			r.Throughput, r.BaselineThroughput, r.MaxHops)
	}
	fmt.Print(tbl.String())
	return nil
}

func runFig5() error {
	series, err := sharebackup.Fig5(nil, nil)
	if err != nil {
		return err
	}
	out, err := metrics.RenderSeries("Figure 5 — additional cost relative to fat-tree", series...)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func runCapacity(k, n int) error {
	if k == 0 {
		k = 8
	}
	res, err := sharebackup.Capacity(k, n)
	if err != nil {
		return err
	}
	tbl := &metrics.Table{
		Title:   "Section 5.1 — capacity to handle failures (measured)",
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("k", res.K)
	tbl.AddRow("n (backups per group)", res.N)
	tbl.AddRow("failure group size", res.GroupSize)
	tbl.AddRow("tolerated concurrent switch failures / group", res.ToleratedSwitchFailures)
	tbl.AddRow("link failures absorbed per faulty switch", res.LinkFailuresHandled)
	tbl.AddRow("backup ratio n/(k/2)", res.BackupRatio)
	tbl.AddRow("switch failure rate (paper)", res.SwitchFailureRate)
	tbl.AddRow("P[group exceeds n failures]", res.PGroupOverflow)
	fmt.Print(tbl.String())
	return nil
}

func runLatency(k int) error {
	if k == 0 {
		k = 8
	}
	rows, err := sharebackup.RecoveryLatency(k)
	if err != nil {
		return err
	}
	tbl := &metrics.Table{
		Title:   "Section 5.3 — recovery latency comparison",
		Headers: []string{"scheme", "detection", "comm", "reconfig/rule", "total"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Scheme, r.Detection.String(), r.Comm.String(), r.Reconfig.String(), r.Total.String())
	}
	fmt.Print(tbl.String())
	return nil
}

func runExtensions(k int, seed int64) error {
	if k == 0 {
		k = 8
	}
	rows, err := sharebackup.ExtensionStudy(k, seed)
	if err != nil {
		return err
	}
	fmt.Print(sharebackup.RenderExtensionStudy(rows).String())

	augs, err := sharebackup.AugmentationStudy(k)
	if err != nil {
		return err
	}
	tbl := &metrics.Table{
		Title:   "Section 6 — activating idle backups (measured)",
		Headers: []string{"pod", "fabric links added", "host bandwidth added", "failover still works?"},
	}
	for _, a := range augs {
		ok := "yes"
		if !a.SurvivedFailover || !a.InvariantsHeldAfter {
			ok = "no"
		}
		tbl.AddRow(a.Pod, a.FabricLinksAdded, a.HostBandwidthAdded, ok)
	}
	fmt.Print(tbl.String())
	return nil
}

func runTransient(k int, seed int64) error {
	rows, err := sharebackup.TransientStudy(sharebackup.TransientConfig{K: k, Seed: seed})
	if err != nil {
		return err
	}
	tbl := &metrics.Table{
		Title:   "Transient study (beyond the paper) — recovery window applied mid-transfer, all-to-all, one agg failure",
		Headers: []string{"scheme", "recovery gap", "mean slowdown", "max slowdown", "disconnected"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Scheme, r.Gap.String(), r.MeanSlowdown, r.MaxSlowdown, r.Disconnected)
	}
	fmt.Print(tbl.String())
	return nil
}

func runTableSize() error {
	rows, err := sharebackup.TableSizes([]int{8, 16, 32, 48, 64})
	if err != nil {
		return err
	}
	tbl := &metrics.Table{
		Title:   "Section 4.3 — VLAN-combined failure-group table sizes",
		Headers: []string{"k", "hosts", "in-bound", "out-bound", "total entries"},
	}
	for _, r := range rows {
		tbl.AddRow(r.K, r.Hosts, r.Inbound, r.Outbound, r.Total)
	}
	fmt.Print(tbl.String())
	return nil
}
