// Command sbemu traces a packet through the physical ShareBackup network —
// a traceroute over the live circuit state and preloaded impersonation
// tables. It can fail switches along the way and re-trace, showing that the
// logical path survives while the physical switches change (Section 4.3).
//
// Usage:
//
//	sbemu -k 6 -n 1 -src 0/0/0 -dst 3/1/2
//	sbemu -k 6 -n 1 -src 0/0/0 -dst 3/1/2 -fail-path
//	sbemu -fail-path -trace trace.jsonl   # then: sbtap trace.jsonl
//	sbemu -fail-path -events              # human-readable event log on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sharebackup"
	"sharebackup/internal/emu"
	"sharebackup/internal/obs"
	"sharebackup/internal/obs/debughttp"
	"sharebackup/internal/sbnet"
	"sharebackup/internal/topo"
)

func main() {
	var (
		k         = flag.Int("k", 6, "fat-tree parameter")
		n         = flag.Int("n", 1, "backup switches per failure group")
		srcStr    = flag.String("src", "0/0/0", "source host as pod/rack/pos")
		dstStr    = flag.String("dst", "1/0/0", "destination host as pod/rack/pos")
		failPath  = flag.Bool("fail-path", false, "fail every switch on the path, recover, and re-trace")
		trace     = flag.String("trace", "", "write structured events as JSONL to this file (summarize with sbtap)")
		events    = flag.Bool("events", false, "log structured events human-readably to stderr")
		debugAddr = flag.String("debug-addr", "", "serve live introspection (pprof, /varz, /events) on this address, e.g. 127.0.0.1:6060")
	)
	flag.Parse()

	if *debugAddr != "" {
		srv, err := debughttp.Start(*debugAddr, debughttp.Config{})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sbemu: debug server at http://%s/\n", srv.Addr())
	}

	if *trace != "" {
		done, err := obs.TraceToFile(nil, *trace)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := done(); err != nil {
				fatal(err)
			}
		}()
	}
	if *events {
		defer obs.EventsToLogf(nil, func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})()
	}

	src, err := parseHost(*srcStr)
	if err != nil {
		fatal(err)
	}
	dst, err := parseHost(*dstStr)
	if err != nil {
		fatal(err)
	}

	sys, err := sharebackup.New(sharebackup.Config{K: *k, N: *n, Metrics: obs.DefaultRegistry})
	if err != nil {
		fatal(err)
	}
	em, err := emu.New(sys.Network)
	if err != nil {
		fatal(err)
	}

	walk, err := em.Deliver(src, dst)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace %s -> %s:\n", *srcStr, *dstStr)
	printWalk(sys, walk)

	if !*failPath {
		return
	}
	fmt.Println("\nfailing every switch on the path...")
	for _, h := range walk {
		if h.Switch == sbnet.NoSwitch {
			continue
		}
		if sys.Network.Switch(h.Switch).Role != sbnet.RoleActive {
			continue
		}
		rec, err := sys.FailNode(h.Switch, time.Millisecond)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %s -> %s (%v)\n",
			sys.Network.Name(rec.Failed[0]), sys.Network.Name(rec.Backup[0]), rec.Total())
	}
	walk2, err := em.Deliver(src, dst)
	if err != nil {
		fatal(fmt.Errorf("delivery after failover: %w", err))
	}
	fmt.Println("\nre-trace through the backups:")
	printWalk(sys, walk2)
	if em.Fingerprint(walk).Equal(em.Fingerprint(walk2)) {
		fmt.Println("\nlogical path identical; only the physical switches changed")
	} else {
		fatal(fmt.Errorf("logical path changed — impersonation broken"))
	}
}

func printWalk(sys *sharebackup.System, walk []emu.Hop) {
	for i, h := range walk {
		if h.Host != nil {
			fmt.Printf("  %2d. host %d/%d/%d\n", i, h.Host.Pod, h.Host.Rack, h.Host.Pos)
			continue
		}
		sw := sys.Network.Switch(h.Switch)
		fmt.Printf("  %2d. %-8s (%s slot %d, physical member %d)\n",
			i, sys.Network.Name(h.Switch), kindName(sw.Kind), h.Slot, sw.Member)
	}
}

func kindName(k topo.Kind) string { return k.String() }

func parseHost(s string) (emu.Host, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return emu.Host{}, fmt.Errorf("sbemu: host %q must be pod/rack/pos", s)
	}
	var vals [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return emu.Host{}, fmt.Errorf("sbemu: host %q: %w", s, err)
		}
		vals[i] = v
	}
	return emu.Host{Pod: vals[0], Rack: vals[1], Pos: vals[2]}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbemu:", err)
	os.Exit(1)
}
