// Command sbemu traces a packet through the physical ShareBackup network —
// a traceroute over the live circuit state and preloaded impersonation
// tables. It can fail switches along the way and re-trace, showing that the
// logical path survives while the physical switches change (Section 4.3).
//
// Usage:
//
//	sbemu -k 6 -n 1 -src 0/0/0 -dst 3/1/2
//	sbemu -k 6 -n 1 -src 0/0/0 -dst 3/1/2 -fail-path
//	sbemu -fail-path -trace trace.jsonl   # then: sbtap trace.jsonl
//	sbemu -fail-path -events              # human-readable event log on stderr
//
// -ctlnet switches to the distributed control-plane emulation: a real ctlnet
// controller server, switch agents, and circuit-switch services talking over
// loopback TCP, each process-in-miniature writing its own trace file into
// -trace-dir. It injects one link failure per agent and prints the files to
// stitch:
//
//	sbemu -ctlnet -trace-dir /tmp/traces -slo-budget 50us -flight-recorder
//	sbtap -stitch /tmp/traces/*.jsonl
//
// -cluster N replicates the controller: N complete replicas (network model,
// controller, server, consensus node) elect a leader over loopback TCP, the
// agents keep-alive against it, and sbemu kills the leader in the middle of
// the failure injections — the survivors elect a replacement and the
// remaining recoveries complete against it. The stitched traces show the
// agents' failover hops:
//
//	sbemu -ctlnet -cluster 3 -agents 4 -trace-dir /tmp/traces
//	sbtap -stitch /tmp/traces/*.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sharebackup"
	"sharebackup/internal/ctlnet"
	"sharebackup/internal/emu"
	"sharebackup/internal/obs"
	"sharebackup/internal/obs/debughttp"
	"sharebackup/internal/obs/prof"
	"sharebackup/internal/obs/tsdb"
	"sharebackup/internal/sbnet"
	"sharebackup/internal/topo"
)

func main() {
	var (
		k         = flag.Int("k", 6, "fat-tree parameter")
		n         = flag.Int("n", 1, "backup switches per failure group")
		srcStr    = flag.String("src", "0/0/0", "source host as pod/rack/pos")
		dstStr    = flag.String("dst", "1/0/0", "destination host as pod/rack/pos")
		failPath  = flag.Bool("fail-path", false, "fail every switch on the path, recover, and re-trace")
		trace     = flag.String("trace", "", "write structured events as JSONL to this file (summarize with sbtap)")
		events    = flag.Bool("events", false, "log structured events human-readably to stderr")
		debugAddr = flag.String("debug-addr", "", "serve live introspection (pprof, /varz, /events, /metricsz) on this address, e.g. 127.0.0.1:6060")

		ctlnetMode = flag.Bool("ctlnet", false, "run the multi-process control-plane emulation over loopback TCP instead of a packet trace")
		traceDir   = flag.String("trace-dir", "", "ctlnet mode: directory for per-process trace files (stitch with sbtap -stitch)")
		numAgents  = flag.Int("agents", 2, "ctlnet mode: number of switch agents")
		numCS      = flag.Int("cs", 1, "ctlnet mode: number of circuit-switch services")
		cluster    = flag.Int("cluster", 0, "ctlnet mode: run this many controller replicas with leader election and kill the leader mid-storm (0 = single controller)")
		sloBudget  = flag.Duration("slo-budget", 0, "recovery-time SLO budget; breaches trip the watchdog (0 disables)")
		flightRec  = flag.Bool("flight-recorder", false, "keep an always-on event ring and dump a diagnostic bundle on anomalies")
		profileDir = flag.String("profile-dir", "", "continuous profiler: rotating phase-labeled CPU/heap bundles in this directory (default $SHAREBACKUP_PROF_DIR; empty disables)")
		kaBatch    = flag.Bool("ka-batch", false, "run the fleet-scale keep-alive demo: -agents batched agents through one multiplexed server, printing sustained ingest and server goroutine count")
	)
	flag.Parse()

	obs.Default.MeterOverhead(obs.DefaultRegistry)
	// One windowed metric store serves /timeseriesz and upgrades the SLO
	// watchdog's burn rate to a wall-clock window.
	tstore := tsdb.New(tsdb.Config{})
	tstore.Start()
	defer tstore.Close()
	var profiler *prof.Profiler
	if dir := prof.ResolveDir(*profileDir); dir != "" {
		p, err := prof.Start(prof.Config{Dir: dir})
		if err != nil {
			fatal(err)
		}
		profiler = p
		defer p.Close()
		fmt.Fprintf(os.Stderr, "sbemu: continuous profiler writing bundles to %s\n", dir)
	}

	if *kaBatch {
		runFleetDemo(*numAgents)
		return
	}
	if *ctlnetMode {
		if *cluster > 0 {
			runCtlnetCluster(*k, *n, *numAgents, *numCS, *cluster, *traceDir)
			return
		}
		runCtlnet(*k, *n, *numAgents, *numCS, *traceDir, *sloBudget, *flightRec)
		return
	}
	if *cluster > 0 {
		fatal(fmt.Errorf("-cluster requires -ctlnet"))
	}

	if *debugAddr != "" {
		srv, err := debughttp.Start(*debugAddr, debughttp.Config{TSDB: tstore})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sbemu: debug server at http://%s/\n", srv.Addr())
	}

	if *trace != "" {
		done, err := obs.TraceToFile(nil, *trace)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := done(); err != nil {
				fatal(err)
			}
		}()
	}
	if *events {
		defer obs.EventsToLogf(nil, func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})()
	}
	if *sloBudget > 0 {
		w := obs.NewSLOWatchdog(obs.SLOConfig{Budget: *sloBudget, Registry: obs.DefaultRegistry, BurnSource: tstore})
		obs.Default.Attach(w)
		defer obs.Default.Detach(w)
	}
	if *flightRec {
		fc := obs.FlightConfig{
			SLOBudget:             *sloBudget,
			KeepAliveGapThreshold: 3,
			DropBurstThreshold:    1024,
		}
		if profiler != nil {
			fc.Profile = profiler
		}
		fr := obs.NewFlightRecorder(fc)
		fr.Attach(obs.Default)
		defer func() {
			obs.Default.Detach(fr)
			fr.Close()
		}()
	}

	src, err := parseHost(*srcStr)
	if err != nil {
		fatal(err)
	}
	dst, err := parseHost(*dstStr)
	if err != nil {
		fatal(err)
	}

	sys, err := sharebackup.New(sharebackup.Config{K: *k, N: *n, Metrics: obs.DefaultRegistry})
	if err != nil {
		fatal(err)
	}
	em, err := emu.New(sys.Network)
	if err != nil {
		fatal(err)
	}

	walk, err := em.Deliver(src, dst)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace %s -> %s:\n", *srcStr, *dstStr)
	printWalk(sys, walk)

	if !*failPath {
		return
	}
	fmt.Println("\nfailing every switch on the path...")
	for _, h := range walk {
		if h.Switch == sbnet.NoSwitch {
			continue
		}
		if sys.Network.Switch(h.Switch).Role != sbnet.RoleActive {
			continue
		}
		rec, err := sys.FailNode(h.Switch, time.Millisecond)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %s -> %s (%v)\n",
			sys.Network.Name(rec.Failed[0]), sys.Network.Name(rec.Backup[0]), rec.Total())
	}
	walk2, err := em.Deliver(src, dst)
	if err != nil {
		fatal(fmt.Errorf("delivery after failover: %w", err))
	}
	fmt.Println("\nre-trace through the backups:")
	printWalk(sys, walk2)
	if em.Fingerprint(walk).Equal(em.Fingerprint(walk2)) {
		fmt.Println("\nlogical path identical; only the physical switches changed")
	} else {
		fatal(fmt.Errorf("logical path changed — impersonation broken"))
	}
}

// runCtlnet drives the distributed control-plane emulation: a real ctlnet
// controller server, switch agents, and circuit-switch services over loopback
// TCP, one trace file per process. One link failure is injected per agent,
// then the per-process files are listed for stitching.
// runFleetDemo drives the fleet-scale keep-alive path: agents are grouped
// onto shared connections sending batched keep-alive frames, the server reads
// them through its multiplexed pollers, and the sustained ingest rate plus
// the (fleet-size-independent) server goroutine count are printed.
func runFleetDemo(agents int) {
	if agents <= 0 {
		fatal(fmt.Errorf("-ka-batch requires -agents > 0"))
	}
	fmt.Printf("fleet demo: %d agents, batched keep-alives over grouped connections...\n", agents)
	res, err := ctlnet.RunFleet(ctlnet.FleetConfig{Agents: agents})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d agents on %d conns (group size %d): %.0f keep-alives/s sustained\n",
		res.Agents, res.Conns, res.GroupSize, res.KAPerSec)
	fmt.Printf("server goroutines: %d (independent of fleet size); batched frames: %d; wire errors: %d\n",
		res.ServerGoroutines, res.Batches, res.WireErrors)
}

func runCtlnet(k, n, agents, cs int, traceDir string, budget time.Duration, flight bool) {
	if traceDir == "" {
		dir, err := os.MkdirTemp("", "sbemu-ctlnet-")
		if err != nil {
			fatal(err)
		}
		traceDir = dir
	}
	em, err := ctlnet.NewEmulation(ctlnet.EmulationConfig{
		K:              k,
		N:              n,
		NumAgents:      agents,
		NumCS:          cs,
		TraceDir:       traceDir,
		SLOBudget:      budget,
		FlightRecorder: flight,
		Registry:       obs.DefaultRegistry,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ctlnet emulation up: controller %s, %d agents, %d circuit switches\n",
		em.Server.Addr(), len(em.Agents), len(em.CS))

	mon, err := ctlnet.Subscribe(em.Server.Addr())
	if err != nil {
		fatal(err)
	}
	defer mon.Close()

	if !em.WaitClockSync(5 * time.Second) {
		fatal(fmt.Errorf("agents did not complete clock sync"))
	}
	for i := range em.Agents {
		if err := em.FailLink(i, time.Millisecond); err != nil {
			fatal(err)
		}
		select {
		case _, ok := <-mon.Events:
			if !ok {
				fatal(fmt.Errorf("event monitor closed: %v", mon.Err()))
			}
		case <-time.After(5 * time.Second):
			fatal(fmt.Errorf("no recovery event for agent %d within 5s", i))
		}
	}
	fmt.Printf("injected %d link failures; all recovered\n", len(em.Agents))
	if w := em.Watchdog; w != nil {
		fmt.Printf("slo watchdog: %d recoveries, %d breaches, burn rate %.2f (budget %v)\n",
			w.Recoveries(), w.Breaches(), w.BurnRate(), budget)
	}
	files := em.TraceFiles()
	if err := em.Close(); err != nil {
		fatal(err)
	}
	if f := em.Flight; f != nil {
		for _, d := range f.Dumps() {
			fmt.Printf("flight-recorder bundle: %s\n", d)
		}
	}
	fmt.Println("per-process traces:")
	for _, f := range files {
		fmt.Printf("  %s\n", f)
	}
	fmt.Printf("stitch them: sbtap -stitch %s\n", filepath.Join(traceDir, "*.jsonl"))
}

// runCtlnetCluster drives the replicated-controller emulation: replicas
// controller replicas elect a leader, the agents report against it, and the
// leader is killed after the first recovery — the rest complete against the
// replacement the survivors elect, with the agents' failover hops traced.
func runCtlnetCluster(k, n, agents, cs, replicas int, traceDir string) {
	if traceDir == "" {
		dir, err := os.MkdirTemp("", "sbemu-ctlnet-")
		if err != nil {
			fatal(err)
		}
		traceDir = dir
	}
	em, err := ctlnet.NewClusterEmulation(ctlnet.ClusterConfig{
		EmulationConfig: ctlnet.EmulationConfig{
			K:         k,
			N:         n,
			NumAgents: agents,
			NumCS:     cs,
			TraceDir:  traceDir,
			// Agents legitimately pause heartbeats while chasing the new
			// leader; don't let the survivors misread that as node death.
			MissThreshold: 25,
			Registry:      obs.DefaultRegistry,
		},
		Replicas:  replicas,
		TickEvery: 5 * time.Millisecond,
	})
	if err != nil {
		fatal(err)
	}
	ld, err := em.Leader(10 * time.Second)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ctlnet cluster up: %d replicas, leader controller-%d (%s), %d agents, %d circuit switches\n",
		len(em.Replicas), ld.ID, ld.Server.Addr(), len(em.Agents), len(em.CS))

	// Watch recoveries from a survivor: the leader is about to die.
	var surv *ctlnet.Replica
	for _, r := range em.Replicas {
		if r != ld {
			surv = r
			break
		}
	}
	if surv == nil {
		fatal(fmt.Errorf("need at least 2 replicas to kill the leader, have %d", replicas))
	}
	mon, err := ctlnet.Subscribe(surv.Server.Addr())
	if err != nil {
		fatal(err)
	}
	defer mon.Close()

	if !em.WaitClockSync(5 * time.Second) {
		fatal(fmt.Errorf("agents did not complete clock sync"))
	}

	waitEvent := func(i int) {
		select {
		case _, ok := <-mon.Events:
			if !ok {
				fatal(fmt.Errorf("event monitor closed: %v", mon.Err()))
			}
		case <-time.After(10 * time.Second):
			fatal(fmt.Errorf("no recovery event for agent %d within 10s", i))
		}
	}
	if err := em.FailLink(0, time.Millisecond); err != nil {
		fatal(err)
	}
	waitEvent(0)
	fmt.Printf("agent %d recovered on leader controller-%d; killing the leader\n", em.Agents[0].ID, ld.ID)

	killed, err := em.KillLeader(5 * time.Second)
	if err != nil {
		fatal(err)
	}
	// Inject the remaining failures NOW, while the survivors are still
	// electing: the agents' reports straddle the leader change, so their
	// redirect-and-redial lands inside the report span and the stitched
	// trees show the failover hop. (FailLink blocks until the report is
	// acked by whoever wins.)
	for i := 1; i < len(em.Agents); i++ {
		if err := em.FailLink(i, time.Millisecond); err != nil {
			fatal(err)
		}
		waitEvent(i)
	}
	newLd, err := em.Leader(30 * time.Second)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("controller-%d killed; controller-%d elected (term %d)\n",
		killed.ID, newLd.ID, newLd.Node.Term())
	fmt.Printf("injected %d link failures; all recovered (%d through the failover)\n",
		len(em.Agents), len(em.Agents)-1)

	files := em.TraceFiles()
	if err := em.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("per-process traces:")
	for _, f := range files {
		fmt.Printf("  %s\n", f)
	}
	fmt.Printf("stitch them (failover hops included): sbtap -stitch %s\n", filepath.Join(traceDir, "*.jsonl"))
}

func printWalk(sys *sharebackup.System, walk []emu.Hop) {
	for i, h := range walk {
		if h.Host != nil {
			fmt.Printf("  %2d. host %d/%d/%d\n", i, h.Host.Pod, h.Host.Rack, h.Host.Pos)
			continue
		}
		sw := sys.Network.Switch(h.Switch)
		fmt.Printf("  %2d. %-8s (%s slot %d, physical member %d)\n",
			i, sys.Network.Name(h.Switch), kindName(sw.Kind), h.Slot, sw.Member)
	}
}

func kindName(k topo.Kind) string { return k.String() }

func parseHost(s string) (emu.Host, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return emu.Host{}, fmt.Errorf("sbemu: host %q must be pod/rack/pos", s)
	}
	var vals [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return emu.Host{}, fmt.Errorf("sbemu: host %q: %w", s, err)
		}
		vals[i] = v
	}
	return emu.Host{Pod: vals[0], Rack: vals[1], Pos: vals[2]}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbemu:", err)
	os.Exit(1)
}
