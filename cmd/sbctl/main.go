// Command sbctl runs the live control-plane demo: a ShareBackup controller
// server on a loopback TCP socket, one keep-alive agent per active switch,
// and a monitor subscription. It then kills a switch (stops its heartbeats)
// and reports the measured wall-clock failover, and injects a link failure
// report to show the replace-both-ends path.
//
// Usage:
//
//	sbctl [-k 4] [-n 1] [-interval 5ms] [-addr 127.0.0.1:0]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sharebackup"
	"sharebackup/internal/controller"
	"sharebackup/internal/ctlnet"
	"sharebackup/internal/sbnet"
)

func main() {
	var (
		k        = flag.Int("k", 4, "fat-tree parameter")
		n        = flag.Int("n", 1, "backup switches per failure group")
		interval = flag.Duration("interval", 5*time.Millisecond, "keep-alive interval")
		addr     = flag.String("addr", "127.0.0.1:0", "controller listen address")
	)
	flag.Parse()

	sys, err := sharebackup.New(sharebackup.Config{
		K: *k, N: *n,
		Controller: controller.Config{ProbeInterval: *interval},
	})
	if err != nil {
		fatal(err)
	}
	srv, err := ctlnet.NewServer(*addr, sys.Controller, ctlnet.ServerConfig{
		Interval:      *interval,
		MissThreshold: 3,
		CheckEvery:    *interval / 2,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	fmt.Printf("controller listening on %s (k=%d, n=%d, %d switches, %d circuit switches)\n",
		srv.Addr(), *k, *n, sys.Network.NumSwitches(), sys.Network.NumCircuitSwitches())

	mon, err := ctlnet.Subscribe(srv.Addr())
	if err != nil {
		fatal(err)
	}
	defer mon.Close()

	// One agent per active switch.
	var agents []*ctlnet.Agent
	for _, g := range sys.Network.Groups() {
		for _, id := range g.Slots() {
			a, err := ctlnet.Dial(srv.Addr(), id, *interval)
			if err != nil {
				fatal(err)
			}
			agents = append(agents, a)
		}
	}
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	fmt.Printf("%d switch agents connected, heartbeating every %v\n", len(agents), *interval)
	time.Sleep(4 * *interval)

	// Demo 1: node failure. Stop an agent's heartbeats and wait.
	victim := agents[0]
	fmt.Printf("\n--- killing switch %s (heartbeats stop) ---\n", sys.Network.Name(victim.ID))
	t0 := time.Now()
	victim.StopHeartbeats()
	ev := <-mon.Events
	fmt.Printf("recovered in %v (wall clock %v): %s -> %s\n",
		ev.Latency, time.Since(t0), names(sys, ev.Failed), names(sys, ev.Backup))
	mustInvariants(sys)

	// Demo 2: link failure. An agent reports a broken link to its
	// aggregation neighbor; both ends are replaced.
	edge := sys.Network.EdgeGroup(1).Slots()[0]
	agg := sys.Network.AggGroup(1).Slots()[0]
	var reporter *ctlnet.Agent
	for _, a := range agents {
		if a.ID == edge {
			reporter = a
		}
	}
	fmt.Printf("\n--- link failure between %s and %s reported ---\n",
		sys.Network.Name(edge), sys.Network.Name(agg))
	if err := reporter.ReportLinkFailure(*k/2, agg, 0); err != nil {
		fatal(err)
	}
	ev = <-mon.Events
	fmt.Printf("recovered in %v: replaced %s with %s\n",
		ev.Latency, names(sys, ev.Failed), names(sys, ev.Backup))
	mustInvariants(sys)

	// Offline diagnosis of the link failure (Section 4.2).
	results, err := sys.Controller.RunDiagnosis()
	if err != nil {
		fatal(err)
	}
	fmt.Println("\n--- offline diagnosis ---")
	for _, r := range results {
		verdict := "faulty, sent to repair"
		if r.Exonerated {
			verdict = "healthy, returned to backup pool"
		}
		fmt.Printf("%s port %d: %s (probed %d partner interfaces)\n",
			sys.Network.Name(r.Suspect.Switch), r.Suspect.Port, verdict, len(r.Partners))
	}
	mustInvariants(sys)
	fmt.Println("\nall invariants hold; demo complete")
}

func names(sys *sharebackup.System, ids []sbnet.SwitchID) string {
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += "+"
		}
		out += sys.Network.Name(id)
	}
	return out
}

func mustInvariants(sys *sharebackup.System) {
	if err := sys.Network.CheckInvariants(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbctl:", err)
	os.Exit(1)
}
