// Command sbsim runs the paper's failure study (Section 2.2) with full
// control over the workload: the Figure 1(a)/(b) affected-percentage sweeps
// and the Figure 1(c) CCT-slowdown study, on either a synthetic coflow trace
// or a real coflow-benchmark file.
//
// Usage:
//
//	sbsim -study affected -kind node -k 16 -rates 0.01,0.05,0.1
//	sbsim -study affected -kind link -trace FB2010-1Hr-150-0.txt
//	sbsim -study cct -k 8 -coflows 40 -scenarios 16
//
// -trace-out FILE writes structured control-plane events as JSONL (summarize
// with sbtap; -trace is the coflow trace input, hence the longer name here);
// -events logs them human-readably to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sharebackup"
	"sharebackup/internal/coflow"
	"sharebackup/internal/fluid"
	"sharebackup/internal/metrics"
	"sharebackup/internal/obs"
	"sharebackup/internal/obs/debughttp"
	"sharebackup/internal/obs/prof"
	"sharebackup/internal/obs/tsdb"
)

func main() {
	var (
		study      = flag.String("study", "affected", "study to run: affected (Fig 1a/b) or cct (Fig 1c)")
		kind       = flag.String("kind", "node", "failure kind for the affected study: node or link")
		k          = flag.Int("k", 16, "fat-tree parameter")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		ratesStr   = flag.String("rates", "", "comma-separated failure rates (default experiment sweep)")
		trials     = flag.Int("trials", 3, "failure samples per rate")
		tracePath  = flag.String("trace", "", "coflow-benchmark trace file (default: synthetic trace)")
		coflows    = flag.Int("coflows", 30, "coflows per window (cct study)")
		scenarios  = flag.Int("scenarios", 12, "single-failure scenarios (cct study)")
		window     = flag.Float64("window", 300, "trace window seconds (cct study)")
		windows    = flag.Int("windows", 1, "number of trace windows; scenarios spread round-robin (cct study)")
		traceOut   = flag.String("trace-out", "", "write structured events as JSONL to this file (summarize with sbtap)")
		events     = flag.Bool("events", false, "log structured events human-readably to stderr")
		debugAddr  = flag.String("debug-addr", "", "serve live introspection (pprof, /varz, /events, /metricsz) on this address, e.g. 127.0.0.1:6060")
		sloBudget  = flag.Duration("slo-budget", 0, "recovery-time SLO budget; breaches trip the watchdog (0 disables)")
		flightRec  = flag.Bool("flight-recorder", false, "keep an always-on event ring and dump a diagnostic bundle on anomalies")
		profileDir = flag.String("profile-dir", "", "continuous profiler: rotating phase-labeled CPU/heap bundles in this directory (default $SHAREBACKUP_PROF_DIR; empty disables)")
	)
	flag.Parse()

	obs.Default.MeterOverhead(obs.DefaultRegistry)
	// One windowed metric store serves /timeseriesz and upgrades the SLO
	// watchdog's burn rate to a wall-clock window.
	tstore := tsdb.New(tsdb.Config{})
	tstore.Start()
	defer tstore.Close()
	var profiler *prof.Profiler
	if dir := prof.ResolveDir(*profileDir); dir != "" {
		p, err := prof.Start(prof.Config{Dir: dir})
		if err != nil {
			fatal(err)
		}
		profiler = p
		defer p.Close()
		fmt.Fprintf(os.Stderr, "sbsim: continuous profiler writing bundles to %s\n", dir)
	}

	if *debugAddr != "" {
		// Every fluid.Simulator the studies build from here on samples
		// data-plane telemetry into the registry /varz serves.
		fluid.SetDefaultTelemetry(fluid.NewTelemetry(obs.DefaultRegistry))
		srv, err := debughttp.Start(*debugAddr, debughttp.Config{TSDB: tstore})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sbsim: debug server at http://%s/\n", srv.Addr())
	}

	if *traceOut != "" {
		done, err := obs.TraceToFile(nil, *traceOut)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := done(); err != nil {
				fatal(err)
			}
		}()
	}
	if *events {
		defer obs.EventsToLogf(nil, func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})()
	}
	if *sloBudget > 0 {
		w := obs.NewSLOWatchdog(obs.SLOConfig{Budget: *sloBudget, Registry: obs.DefaultRegistry, BurnSource: tstore})
		obs.Default.Attach(w)
		defer obs.Default.Detach(w)
	}
	if *flightRec {
		fc := obs.FlightConfig{
			SLOBudget:             *sloBudget,
			KeepAliveGapThreshold: 3,
			DropBurstThreshold:    1024,
		}
		if profiler != nil {
			fc.Profile = profiler
		}
		fr := obs.NewFlightRecorder(fc)
		fr.Attach(obs.Default)
		defer func() {
			obs.Default.Detach(fr)
			fr.Close()
		}()
	}

	var trace *coflow.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		trace, err = coflow.Parse(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *tracePath, err))
		}
		fmt.Printf("loaded trace: %d racks, %d coflows, %d flows, %.0fs\n",
			trace.NumRacks, len(trace.Coflows), trace.TotalFlows(), trace.Duration())
	}

	switch *study {
	case "affected":
		var rates []float64
		for _, s := range strings.Split(*ratesStr, ",") {
			if s == "" {
				continue
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				fatal(fmt.Errorf("bad rate %q: %w", s, err))
			}
			rates = append(rates, v)
		}
		cfg := sharebackup.Fig1Config{K: *k, Seed: *seed, Rates: rates, Trials: *trials, Trace: trace}
		var (
			res *sharebackup.Fig1Result
			err error
		)
		if *kind == "node" {
			res, err = sharebackup.Fig1a(cfg)
		} else {
			res, err = sharebackup.Fig1b(cfg)
		}
		if err != nil {
			fatal(err)
		}
		flows, cfs := res.Series(*kind + " failure rate")
		out, err := metrics.RenderSeries(
			fmt.Sprintf("affected flows/coflows vs %s failure rate (k=%d)", *kind, *k), flows, cfs)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		fmt.Printf("single %s failure: %.2f%% flows, %.2f%% coflows\n",
			*kind, res.SingleFlowPct, res.SingleCoflowPct)

	case "cct":
		res, err := sharebackup.Fig1c(sharebackup.Fig1cConfig{
			K: *k, Seed: *seed, Coflows: *coflows, Scenarios: *scenarios,
			Window: *window, Windows: *windows,
		})
		if err != nil {
			fatal(err)
		}
		for _, a := range res {
			cdf := a.CDF()
			fmt.Printf("%-12s affected=%d disconnected=%d\n", a.Name, len(a.Slowdowns), a.Disconnected)
			if cdf.N() == 0 {
				continue
			}
			for _, pt := range cdf.Points(10) {
				fmt.Printf("  slowdown <= %8.3f : %5.1f%%\n", pt[0], 100*pt[1])
			}
		}

	default:
		fatal(fmt.Errorf("unknown study %q", *study))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbsim:", err)
	os.Exit(1)
}
