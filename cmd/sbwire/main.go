// Command sbwire prints the deployment wiring manifest of a ShareBackup pod
// — the operational form of Figure 3: every physical cable between hosts,
// packet switches (including backups), circuit switches, cores, and the
// diagnosis side-port rings.
//
// Usage:
//
//	sbwire -k 6 -n 1 -pod 0
//	sbwire -k 6 -n 1 -pod 0 -verify   # just check counts and port uniqueness
package main

import (
	"flag"
	"fmt"
	"os"

	"sharebackup"
)

func main() {
	var (
		k      = flag.Int("k", 6, "fat-tree parameter")
		n      = flag.Int("n", 1, "backup switches per failure group")
		pod    = flag.Int("pod", 0, "pod to print")
		verify = flag.Bool("verify", false, "verify the manifest instead of printing it")
	)
	flag.Parse()

	sys, err := sharebackup.New(sharebackup.Config{K: *k, N: *n})
	if err != nil {
		fatal(err)
	}
	if *verify {
		for p := 0; p < *k; p++ {
			if err := sys.Network.VerifyWiring(p); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("all %d pods verified: %d cables each, every port wired exactly once\n",
			*k, sys.Network.ExpectedCablesPerPod())
		return
	}
	cables, err := sys.Network.WiringManifest(*pod)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# ShareBackup wiring manifest: k=%d n=%d pod=%d (%d cables)\n", *k, *n, *pod, len(cables))
	if err := sharebackup.WriteWiring(os.Stdout, cables); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbwire:", err)
	os.Exit(1)
}
