package sharebackup

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"sharebackup/internal/coflow"
	"sharebackup/internal/failure"
	"sharebackup/internal/fluid"
	"sharebackup/internal/metrics"
	"sharebackup/internal/routing"
	"sharebackup/internal/sweep"
	"sharebackup/internal/topo"
)

// Fig1cConfig parameterizes the Figure 1(c) reproduction: the CDF of coflow
// completion time (CCT) slowdown under a single node or link failure, for
// fat-tree with global-optimal rerouting, F10 with local rerouting, and
// ShareBackup with hardware replacement.
type Fig1cConfig struct {
	// K is the fat-tree parameter. Default 8 (a 32-rack study that runs
	// in seconds); pass 16 for the paper's scale.
	K int
	// Seed drives workload generation, ECMP hashing and scenario
	// sampling.
	Seed int64
	// Window is the trace window length in seconds (the paper uses
	// 5-minute partitions). Default 300.
	Window float64
	// Coflows is the number of coflows in the window. Default 30.
	Coflows int
	// Scenarios is the number of single-failure scenarios to run (half
	// node failures, half link failures). Default 12.
	Scenarios int
	// Oversub is the edge oversubscription ratio. Default 10.
	Oversub float64
	// Windows is the number of trace windows (the paper partitions its
	// one-hour trace into 5-minute windows and runs one failure per
	// window). Scenarios are spread round-robin over the windows.
	// Default 1.
	Windows int
	// Workers sizes the sweep worker pool the window baselines and
	// scenario replays are sharded over (0 = GOMAXPROCS). The replays are
	// deterministic functions of their inputs, so results are identical
	// for any worker count.
	Workers int
}

func (c *Fig1cConfig) setDefaults() {
	if c.K == 0 {
		c.K = 8
	}
	if c.Window == 0 {
		c.Window = 300
	}
	if c.Coflows == 0 {
		c.Coflows = 30
	}
	if c.Scenarios == 0 {
		c.Scenarios = 12
	}
	if c.Oversub == 0 {
		c.Oversub = 10
	}
	if c.Windows == 0 {
		c.Windows = 1
	}
}

// ArchSlowdowns is one architecture's curve in Figure 1(c).
type ArchSlowdowns struct {
	Name string
	// Slowdowns holds CCT-with-failure / CCT-without-failure for every
	// affected coflow across all scenarios.
	Slowdowns []float64
	// Disconnected counts affected coflows that could not complete at
	// all under the architecture's recovery scheme (infinite slowdown;
	// excluded from Slowdowns).
	Disconnected int
}

// CDF returns the slowdown distribution.
func (a *ArchSlowdowns) CDF() *metrics.CDF { return metrics.NewCDF(a.Slowdowns) }

// rerouteScheme is how an architecture reacts to a failure.
type rerouteScheme int

const (
	schemeGlobalOptimal rerouteScheme = iota // fat-tree baseline
	schemeF10Local                           // F10 local 3-hop rerouting
	schemeShareBackup                        // hardware replacement
)

// Fig1c runs the CCT-slowdown study and returns one entry per architecture:
// fat-tree (global-optimal rerouting), F10 (local rerouting), and
// ShareBackup.
func Fig1c(cfg Fig1cConfig) ([]ArchSlowdowns, error) {
	cfg.setDefaults()

	// Topologies: fat-tree for the fat-tree and ShareBackup runs
	// (ShareBackup's logical topology IS the fat-tree, restored exactly
	// after replacement), AB fat-tree for F10.
	ft, err := topo.NewFatTree(topo.Config{
		K: cfg.K, HostsPerEdge: 1, HostCapacity: cfg.Oversub * float64(cfg.K/2),
	})
	if err != nil {
		return nil, err
	}
	f10, err := topo.NewFatTree(topo.Config{
		K: cfg.K, HostsPerEdge: 1, HostCapacity: cfg.Oversub * float64(cfg.K/2), AB: true,
	})
	if err != nil {
		return nil, err
	}

	// One long trace partitioned into windows, exactly as the paper
	// treats its one-hour trace.
	full, err := coflow.Generate(coflow.GenConfig{
		Racks:      ft.NumHosts(),
		NumCoflows: cfg.Coflows * cfg.Windows,
		Duration:   cfg.Window * float64(cfg.Windows),
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	windows, err := full.Partition(cfg.Window)
	if err != nil {
		return nil, err
	}
	// Drop empty windows (possible at small coflow counts).
	kept := windows[:0]
	for _, w := range windows {
		if len(w.Coflows) > 0 {
			kept = append(kept, w)
		}
	}
	windows = kept
	if len(windows) == 0 {
		return nil, fmt.Errorf("sharebackup: Fig1c: empty trace")
	}

	// Failure scenarios: single node (agg/core) and single link failures,
	// sampled uniformly. Scenarios are shared across architectures (the
	// same element index is failed in ft and f10 — node/link IDs are
	// structurally aligned between the two builds).
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	inj := failure.NewInjector(ft, cfg.Seed+1)
	nodeCands := inj.ReroutableSwitches()
	linkCands := inj.FabricLinks()
	var scenarios []failure.Scenario
	for i := 0; i < cfg.Scenarios; i++ {
		if i%2 == 0 {
			scenarios = append(scenarios, failure.Scenario{
				Node: nodeCands[rng.Intn(len(nodeCands))], Link: topo.NoLink, Repair: cfg.Window,
			})
		} else {
			scenarios = append(scenarios, failure.Scenario{
				Node: topo.None, Link: linkCands[rng.Intn(len(linkCands))], Repair: cfg.Window,
			})
		}
	}

	type arch struct {
		name   string
		ft     *topo.FatTree
		scheme rerouteScheme
	}
	archs := []arch{
		{"fat-tree", ft, schemeGlobalOptimal},
		{"F10", f10, schemeF10Local},
		{"ShareBackup", ft, schemeShareBackup},
	}
	// Only windows a scenario actually lands on need a baseline.
	usedWindows := len(windows)
	if cfg.Scenarios < usedWindows {
		usedWindows = cfg.Scenarios
	}

	var out []ArchSlowdowns
	for _, a := range archs {
		// Phase 1: per-window routed flows and no-failure baselines, one
		// sweep shard per window. The shards are deterministic (the only
		// randomness, ECMP hashing, is keyed by cfg.Seed), so the sweep's
		// substream seeds are unused.
		type winPrep struct {
			flows    []flowRef
			baseline []float64
		}
		preps, err := sweep.Run(context.Background(), sweep.Config{
			Name: "fig1c-" + a.name + "-baseline", Shards: usedWindows,
			Seed: cfg.Seed, Workers: cfg.Workers,
		}, func(_ context.Context, sh sweep.Shard) (winPrep, error) {
			wi := sh.Index
			flows, err := routeTrace(a.ft, windows[wi], cfg.Seed)
			if err != nil {
				return winPrep{}, err
			}
			baseline, err := simulateCCT(a.ft, windows[wi], flows, nil)
			if err != nil {
				return winPrep{}, fmt.Errorf("sharebackup: %s window %d baseline: %w", a.name, wi, err)
			}
			return winPrep{flows: flows, baseline: baseline}, nil
		})
		if err != nil {
			return nil, err
		}

		// Phase 2: one sweep shard per failure scenario, replaying the
		// window's coflows under the architecture's recovery scheme.
		type scenarioOut struct {
			Slowdowns    []float64
			Disconnected int
		}
		outs, err := sweep.Run(context.Background(), sweep.Config{
			Name: "fig1c-" + a.name + "-scenarios", Shards: len(scenarios),
			Seed: cfg.Seed, Workers: cfg.Workers,
		}, func(_ context.Context, sh sweep.Shard) (scenarioOut, error) {
			si := sh.Index
			wi := si % len(windows)
			tr := windows[wi]
			flows, baseline := preps[wi].flows, preps[wi].baseline
			blocked := scenarios[si].Blocked()
			rerouted, disconnected := applyScheme(a.ft, flows, blocked, a.scheme)
			cct, err := simulateCCT(a.ft, tr, rerouted, blocked)
			if err != nil {
				return scenarioOut{}, fmt.Errorf("sharebackup: %s scenario: %w", a.name, err)
			}
			var so scenarioOut
			for ci := range tr.Coflows {
				if !coflowAffected(flows, ci, blocked) {
					continue
				}
				if disconnected[ci] || math.IsInf(cct[ci], 1) {
					so.Disconnected++
					continue
				}
				if baseline[ci] > 0 {
					so.Slowdowns = append(so.Slowdowns, cct[ci]/baseline[ci])
				}
			}
			return so, nil
		})
		if err != nil {
			return nil, err
		}
		res := ArchSlowdowns{Name: a.name}
		for _, so := range outs {
			res.Slowdowns = append(res.Slowdowns, so.Slowdowns...)
			res.Disconnected += so.Disconnected
		}
		out = append(out, res)
	}
	return out, nil
}

// applyScheme produces each flow's post-failure path under the
// architecture's recovery scheme, plus the set of coflows with at least one
// unroutable flow.
func applyScheme(ft *topo.FatTree, flows []flowRef, blocked *topo.Blocked, scheme rerouteScheme) ([]flowRef, map[int]bool) {
	disconnected := make(map[int]bool)
	if scheme == schemeShareBackup {
		// Replacement restores the exact logical topology: every flow
		// keeps its path, at full capacity. (The sub-second recovery
		// window is negligible against 5-minute coflows; the latency
		// experiment quantifies it separately.)
		return flows, disconnected
	}
	out := make([]flowRef, len(flows))
	load := routing.NewLinkLoad(ft.Topology)
	var scratch routing.Scratch // one avoid set for the whole storm
	for _, f := range flows {
		if blocked.PathOK(f.path) {
			load.Add(f.path, 1)
		}
	}
	for i, f := range flows {
		out[i] = f
		if blocked.PathOK(f.path) {
			continue
		}
		src := hostIndexOf(ft, f.path.Nodes[0])
		dst := hostIndexOf(ft, f.path.Nodes[len(f.path.Nodes)-1])
		var np topo.Path
		var ok bool
		switch scheme {
		case schemeGlobalOptimal:
			np, ok = routing.GlobalOptimalReroute(ft, src, dst, blocked, load)
		case schemeF10Local:
			np, ok = routing.F10LocalReroute(ft, f.path, blocked, &scratch)
			if !ok {
				// F10 falls back to pushback (upstream) rerouting
				// when no local detour exists.
				np, ok = routing.GlobalOptimalReroute(ft, src, dst, blocked, load)
			}
		}
		if !ok {
			out[i].path = topo.Path{} // stalled: disconnected
			disconnected[f.coflow] = true
			continue
		}
		out[i].path = np
		load.Add(np, 1)
	}
	return out, disconnected
}

// hostIndexOf maps a host node back to its global host index.
func hostIndexOf(ft *topo.FatTree, id topo.NodeID) int {
	return ft.Node(id).Index
}

// coflowAffected reports whether any of the coflow's original paths crosses
// the failure.
func coflowAffected(flows []flowRef, ci int, blocked *topo.Blocked) bool {
	for _, f := range flows {
		if f.coflow == ci && !blocked.PathOK(f.path) {
			return true
		}
	}
	return false
}

// simulateCCT runs the fluid simulator over the routed flows and returns
// each coflow's completion time (max flow lifetime). Coflows whose flows
// cannot all finish get +Inf.
func simulateCCT(ft *topo.FatTree, tr *coflow.Trace, flows []flowRef, blocked *topo.Blocked) ([]float64, error) {
	sim := fluid.New(ft.Topology)
	// Flow IDs are dense over the routed flow list; byte sizes come from
	// re-walking the trace in the same order as routeTrace.
	type meta struct {
		coflow  int
		arrival float64
	}
	metas := make([]meta, 0, len(flows))
	racks := ft.NumHosts()
	idx := 0
	for ci := range tr.Coflows {
		c := &tr.Coflows[ci]
		for _, f := range c.Flows {
			if f.Src%racks == f.Dst%racks {
				continue
			}
			if idx >= len(flows) {
				return nil, fmt.Errorf("sharebackup: flow list shorter than trace")
			}
			if err := sim.AddFlow(fluid.FlowID(idx), f.Bytes, c.Arrival, flows[idx].path); err != nil {
				return nil, err
			}
			metas = append(metas, meta{coflow: ci, arrival: c.Arrival})
			idx++
		}
	}
	if idx != len(flows) {
		return nil, fmt.Errorf("sharebackup: flow list longer than trace")
	}
	_ = blocked // capacity of failed elements is expressed via the paths
	horizon := tr.Duration() + 1
	// Run in bounded steps so stalled flows do not spin RunToCompletion.
	if err := sim.Run(horizon); err != nil {
		return nil, err
	}
	for iter := 0; sim.ActiveCount() > 0 || sim.PendingCount() > 0; iter++ {
		if iter > 10000 {
			break // only permanently stalled flows remain
		}
		allStalled := true
		for i := range metas {
			f := sim.Flow(fluid.FlowID(i))
			if !f.Done() && !f.Stalled() {
				allStalled = false
				break
			}
		}
		if allStalled && sim.PendingCount() == 0 {
			break
		}
		horizon *= 2
		if err := sim.Run(horizon); err != nil {
			return nil, err
		}
	}
	cct := make([]float64, len(tr.Coflows))
	for i, m := range metas {
		f := sim.Flow(fluid.FlowID(i))
		if !f.Done() {
			cct[m.coflow] = math.Inf(1)
			continue
		}
		if life := f.Finish() - m.arrival; life > cct[m.coflow] {
			cct[m.coflow] = life
		}
	}
	return cct, nil
}
