package sharebackup

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"sharebackup/internal/coflow"
)

func TestSystemFailNode(t *testing.T) {
	sys, err := New(Config{K: 4, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	victim := sys.Network.EdgeGroup(0).Slots()[0]
	rec, err := sys.FailNode(victim, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Backup) != 1 {
		t.Fatalf("recovery = %+v", rec)
	}
	if rec.Total() <= 0 {
		t.Error("zero recovery latency")
	}
}

func TestSystemFailLink(t *testing.T) {
	sys, err := New(Config{K: 4, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	edge := sys.Network.EdgeGroup(0).Slots()[0]
	agg := sys.Network.AggGroup(0).Slots()[0]
	rec, err := sys.FailLink(
		EndPoint{Switch: edge, Port: 2},
		EndPoint{Switch: agg, Port: 0},
		time.Millisecond,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Failed) != 2 {
		t.Fatalf("link recovery replaced %d switches, want 2", len(rec.Failed))
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := New(Config{K: 5, N: 1}); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := New(Config{K: 60, N: 1, Tech: MEMS2D}); err == nil {
		t.Error("MEMS port limit ignored")
	}
}

func TestFig1aShape(t *testing.T) {
	res, err := Fig1a(Fig1Config{K: 8, Seed: 3, Trials: 2, Rates: []float64{0.01, 0.05, 0.1, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	// Coflow impact dominates flow impact at every rate (the paper's
	// central observation).
	for i := range res.Rates {
		if res.CoflowPct[i] <= res.FlowPct[i] {
			t.Errorf("rate %v: coflow%% %v <= flow%% %v", res.Rates[i], res.CoflowPct[i], res.FlowPct[i])
		}
		if res.FlowPct[i] < 0 || res.CoflowPct[i] > 100 {
			t.Errorf("rate %v: percentages out of range", res.Rates[i])
		}
	}
	// Both curves increase with failure rate.
	for i := 1; i < len(res.Rates); i++ {
		if res.CoflowPct[i] < res.CoflowPct[i-1] {
			t.Errorf("coflow curve not increasing at %v", res.Rates[i])
		}
	}
	// Magnification is substantial (the paper reports 3.3x to 90x; exact
	// values depend on the trace, but order-of-magnitude must hold at the
	// low-rate end).
	if res.Magnification[0] < 2 {
		t.Errorf("magnification at lowest rate = %v, want >= 2", res.Magnification[0])
	}
	// A single node failure must hit a visible share of coflows.
	if res.SingleCoflowPct <= res.SingleFlowPct || res.SingleCoflowPct < 1 {
		t.Errorf("single failure: coflow%% = %v, flow%% = %v", res.SingleCoflowPct, res.SingleFlowPct)
	}
	// Series rendering.
	f, c := res.Series("failure rate")
	if f.Len() != len(res.Rates) || c.Len() != len(res.Rates) {
		t.Error("series length mismatch")
	}
}

func TestFig1bLinkFailures(t *testing.T) {
	res, err := Fig1b(Fig1Config{K: 8, Seed: 3, Trials: 2, Rates: []float64{0.01, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rates {
		if res.CoflowPct[i] <= res.FlowPct[i] {
			t.Errorf("rate %v: no coflow magnification for link failures", res.Rates[i])
		}
	}
	if res.SingleCoflowPct <= 0 {
		t.Error("single link failure affected nothing")
	}
}

func TestFig1WithExternalTrace(t *testing.T) {
	// The paper replays a coflow-benchmark file; exercise the same path:
	// generate -> serialize -> parse -> run, including the rack remap
	// (150 trace racks onto a 32-rack k=8 fabric).
	gen, err := coflow.Generate(coflow.GenConfig{Racks: 150, NumCoflows: 60, Duration: 600, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gen.Format(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := coflow.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fig1a(Fig1Config{K: 8, Seed: 11, Trials: 2, Rates: []float64{0.05}, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoflowPct[0] <= res.FlowPct[0] || res.CoflowPct[0] <= 0 {
		t.Errorf("external trace run: flow%%=%v coflow%%=%v", res.FlowPct[0], res.CoflowPct[0])
	}
}

func TestFig1NodeVsLinkSingleImpact(t *testing.T) {
	// The paper: a single node failure (29.6% of coflows) hurts more than
	// a single link failure (17%). Directionally, node > link.
	na, err := Fig1a(Fig1Config{K: 8, Seed: 5, Trials: 4, Rates: []float64{0.01}})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Fig1b(Fig1Config{K: 8, Seed: 5, Trials: 4, Rates: []float64{0.01}})
	if err != nil {
		t.Fatal(err)
	}
	if na.SingleCoflowPct <= nb.SingleCoflowPct {
		t.Errorf("single node %v%% <= single link %v%%; node failures should hit more coflows",
			na.SingleCoflowPct, nb.SingleCoflowPct)
	}
}

func TestFig1cShareBackupHasNoSlowdown(t *testing.T) {
	res, err := Fig1c(Fig1cConfig{K: 4, Seed: 2, Coflows: 12, Scenarios: 6, Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("architectures = %d", len(res))
	}
	byName := map[string]ArchSlowdowns{}
	for _, a := range res {
		byName[a.Name] = a
	}
	sb := byName["ShareBackup"]
	for _, s := range sb.Slowdowns {
		if math.Abs(s-1) > 1e-6 {
			t.Errorf("ShareBackup slowdown = %v, want exactly 1", s)
		}
	}
	if sb.Disconnected != 0 {
		t.Errorf("ShareBackup disconnected %d coflows", sb.Disconnected)
	}
	// Rerouting suffers: at least one affected coflow slows down under
	// each rerouting scheme.
	for _, name := range []string{"fat-tree", "F10"} {
		a := byName[name]
		if len(a.Slowdowns) == 0 {
			t.Fatalf("%s: no affected coflows measured", name)
		}
		worst := 0.0
		for _, s := range a.Slowdowns {
			if s > worst {
				worst = s
			}
			if s < 1-1e-6 {
				// Rerouting can occasionally speed up an
				// unaffected competitor, but an affected
				// coflow must not finish faster than baseline
				// by more than numerical noise... it can,
				// when a competing coflow is slowed even
				// more. Only sanity-check positivity here.
				if s <= 0 {
					t.Errorf("%s: non-positive slowdown %v", name, s)
				}
			}
		}
		if worst <= 1+1e-9 {
			t.Errorf("%s: max slowdown %v; rerouting should hurt some coflow", name, worst)
		}
	}
}

func TestFig1cMultiWindow(t *testing.T) {
	res, err := Fig1c(Fig1cConfig{K: 4, Seed: 4, Coflows: 6, Scenarios: 6, Window: 60, Windows: 3})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ArchSlowdowns{}
	for _, a := range res {
		byName[a.Name] = a
	}
	sb := byName["ShareBackup"]
	if len(sb.Slowdowns) == 0 {
		t.Fatal("multi-window run measured nothing")
	}
	for _, s := range sb.Slowdowns {
		if math.Abs(s-1) > 1e-6 {
			t.Errorf("ShareBackup slowdown %v in multi-window run", s)
		}
	}
}

func TestTable3Checkmarks(t *testing.T) {
	rows, err := Table3(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][3]bool{ // bandwidth, dilation, upstream
		"ShareBackup": {true, true, true},
		"Fat-tree":    {false, true, false},
		"F10":         {false, false, true},
	}
	for _, r := range rows {
		w, ok := want[r.Arch]
		if !ok {
			t.Fatalf("unexpected architecture %q", r.Arch)
		}
		if r.NoBandwidthLoss != w[0] {
			t.Errorf("%s: NoBandwidthLoss = %v (throughput %v vs %v), want %v",
				r.Arch, r.NoBandwidthLoss, r.Throughput, r.BaselineThroughput, w[0])
		}
		if r.NoPathDilation != w[1] {
			t.Errorf("%s: NoPathDilation = %v (max hops %d), want %v", r.Arch, r.NoPathDilation, r.MaxHops, w[1])
		}
		if r.NoUpstreamRepair != w[2] {
			t.Errorf("%s: NoUpstreamRepair = %v, want %v", r.Arch, r.NoUpstreamRepair, w[2])
		}
	}
}

func TestCapacityMeasured(t *testing.T) {
	res, err := Capacity(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.ToleratedSwitchFailures != 2 {
		t.Errorf("tolerated = %d, want n=2", res.ToleratedSwitchFailures)
	}
	if res.LinkFailuresHandled != 4 {
		t.Errorf("link failures handled = %d, want k/2=4", res.LinkFailuresHandled)
	}
	if math.Abs(res.BackupRatio-0.5) > 1e-9 {
		t.Errorf("backup ratio = %v, want 0.5", res.BackupRatio)
	}
	if res.PGroupOverflow > 1e-5 {
		t.Errorf("overflow probability = %v, want negligible", res.PGroupOverflow)
	}
}

func TestRecoveryLatencyComparison(t *testing.T) {
	rows, err := RecoveryLatency(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sbX, sbM, reroute *LatencyRow
	for i := range rows {
		switch {
		case strings.Contains(rows[i].Scheme, "crosspoint"):
			sbX = &rows[i]
		case strings.Contains(rows[i].Scheme, "MEMS"):
			sbM = &rows[i]
		default:
			reroute = &rows[i]
		}
	}
	if sbX == nil || sbM == nil || reroute == nil {
		t.Fatalf("missing schemes in %+v", rows)
	}
	if sbX.Reconfig != 70*time.Nanosecond || sbM.Reconfig != 40*time.Microsecond {
		t.Errorf("reconfig delays = %v, %v", sbX.Reconfig, sbM.Reconfig)
	}
	// Section 5.3's claim: ShareBackup recovers as fast as local
	// rerouting (here faster: circuit reset + sub-ms comms beat a ~1ms
	// rule update).
	if sbX.Total > reroute.Total {
		t.Errorf("ShareBackup(crosspoint) %v slower than rerouting %v", sbX.Total, reroute.Total)
	}
	if sbM.Total > reroute.Total {
		t.Errorf("ShareBackup(MEMS) %v slower than rerouting %v", sbM.Total, reroute.Total)
	}
}

func TestTableSizes(t *testing.T) {
	rows, err := TableSizes([]int{4, 16, 48, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Inbound != r.K/2 {
			t.Errorf("k=%d: inbound = %d, want k/2", r.K, r.Inbound)
		}
		if r.Outbound != r.K*r.K/4 {
			t.Errorf("k=%d: outbound = %d, want k^2/4", r.K, r.Outbound)
		}
	}
	last := rows[len(rows)-1]
	if last.K != 64 || last.Total != 1056 || last.Hosts != 65536 {
		t.Errorf("k=64 row = %+v, want 1056 entries for 65536 hosts", last)
	}
}

func TestTable2Rendering(t *testing.T) {
	tbl, err := Table2(48, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"ShareBackup(n=1)", "AspenTree", "1:1Backup", "E-DC", "O-DC"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	series, err := Fig5(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 price points x (2 ShareBackup n values + Aspen + 1:1).
	if len(series) != 8 {
		t.Fatalf("series = %d, want 8", len(series))
	}
	for _, s := range series {
		if s.Len() != 8 {
			t.Errorf("%s: %d points", s.Name, s.Len())
		}
	}
	// ShareBackup(n=1) E-DC ends below 7% at k=64 and is far below Aspen.
	var sb1, aspen *float64
	for _, s := range series {
		last := s.Y[s.Len()-1]
		switch s.Name {
		case "ShareBackup(n=1) E-DC":
			sb1 = &last
		case "AspenTree E-DC":
			aspen = &last
		}
	}
	if sb1 == nil || aspen == nil {
		t.Fatal("expected series missing")
	}
	if *sb1 > 0.07 {
		t.Errorf("ShareBackup(n=1) E-DC at k=64 = %v, want < 7%%", *sb1)
	}
	if *aspen < 5*(*sb1) {
		t.Errorf("Aspen (%v) not clearly above ShareBackup (%v)", *aspen, *sb1)
	}
}
