module sharebackup

go 1.22
