package sharebackup

import (
	"path/filepath"
	"reflect"
	"testing"
)

// These tests pin the experiment harness entry points the paper's failure
// study rests on — series shapes, the coflow-magnification property, and
// determinism — at laptop scale, so refactors of the workload or failure
// machinery can't silently bend the figures.

func fig1TestConfig() Fig1Config {
	return Fig1Config{K: 4, Seed: 7, Rates: []float64{0.05, 0.1, 0.2}, Trials: 2}
}

func checkFig1Result(t *testing.T, res *Fig1Result, rates int) {
	t.Helper()
	if len(res.Rates) != rates || len(res.FlowPct) != rates ||
		len(res.CoflowPct) != rates || len(res.Magnification) != rates {
		t.Fatalf("series lengths: rates=%d flow=%d coflow=%d mag=%d, want %d each",
			len(res.Rates), len(res.FlowPct), len(res.CoflowPct), len(res.Magnification), rates)
	}
	for i := range res.Rates {
		if res.FlowPct[i] < 0 || res.FlowPct[i] > 100 || res.CoflowPct[i] < 0 || res.CoflowPct[i] > 100 {
			t.Fatalf("rate %v: percentages out of range: flows=%v coflows=%v",
				res.Rates[i], res.FlowPct[i], res.CoflowPct[i])
		}
		// A coflow is affected when ANY of its flows is — the paper's
		// magnification argument. Equality holds only in degenerate
		// one-flow coflows.
		if res.CoflowPct[i] < res.FlowPct[i] {
			t.Fatalf("rate %v: coflow%% (%v) < flow%% (%v) breaks the magnification property",
				res.Rates[i], res.CoflowPct[i], res.FlowPct[i])
		}
	}
	if res.SingleCoflowPct < res.SingleFlowPct {
		t.Fatalf("single failure: coflow%% (%v) < flow%% (%v)", res.SingleCoflowPct, res.SingleFlowPct)
	}
	if res.SingleFlowPct <= 0 {
		t.Fatal("single failure affected no flows — failure injection broken")
	}
	flows, coflows := res.Series("x")
	if len(flows.Y) != rates || len(coflows.Y) != rates {
		t.Fatalf("Series lengths: %d/%d, want %d", len(flows.Y), len(coflows.Y), rates)
	}
}

func TestFig1aSmall(t *testing.T) {
	res, err := Fig1a(fig1TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkFig1Result(t, res, 3)

	// Same seed, same result: the harness must be deterministic.
	again, err := Fig1a(fig1TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.FlowPct {
		if res.FlowPct[i] != again.FlowPct[i] || res.CoflowPct[i] != again.CoflowPct[i] {
			t.Fatalf("rate %v not deterministic: %v/%v vs %v/%v", res.Rates[i],
				res.FlowPct[i], res.CoflowPct[i], again.FlowPct[i], again.CoflowPct[i])
		}
	}
}

func TestFig1bSmall(t *testing.T) {
	res, err := Fig1b(fig1TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkFig1Result(t, res, 3)
}

func TestTransientStudySmall(t *testing.T) {
	rows, err := TransientStudy(TransientConfig{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d schemes, want 3 (ShareBackup, fat-tree, F10)", len(rows))
	}
	byScheme := make(map[string]TransientRow, len(rows))
	for _, r := range rows {
		byScheme[r.Scheme] = r
		if r.MeanSlowdown < 1 || r.MaxSlowdown < r.MeanSlowdown {
			t.Fatalf("%s: implausible slowdowns mean=%v max=%v", r.Scheme, r.MeanSlowdown, r.MaxSlowdown)
		}
	}
	sb, ok := byScheme["ShareBackup"]
	if !ok {
		t.Fatalf("no ShareBackup row in %v", rows)
	}
	if sb.Disconnected != 0 {
		t.Fatalf("ShareBackup disconnected %d flows — full recovery broken", sb.Disconnected)
	}
	// ShareBackup's gap is circuit reconfiguration (sub-ms); rerouting
	// schemes wait out detection plus table updates. The ordering is the
	// point of the paper.
	for _, r := range rows {
		if r.Scheme == "ShareBackup" {
			continue
		}
		if sb.Gap >= r.Gap {
			t.Fatalf("ShareBackup gap %v not shorter than %s gap %v", sb.Gap, r.Scheme, r.Gap)
		}
		if sb.MeanSlowdown > r.MeanSlowdown+1e-9 {
			t.Fatalf("ShareBackup mean slowdown %v worse than %s %v", sb.MeanSlowdown, r.Scheme, r.MeanSlowdown)
		}
	}
	// Restoring full capacity, the slowdown should stay within a few
	// permille of 1.0 at these flow sizes.
	if sb.MeanSlowdown > 1.05 {
		t.Fatalf("ShareBackup mean slowdown %v, want ≈1.0", sb.MeanSlowdown)
	}
}

// The sweep engine's contract surfaced at the experiment level: Fig1a merges
// to the same result for any worker count, and a checkpointed run resumes to
// the identical result.
func TestFig1aWorkerCountInvariance(t *testing.T) {
	var want *Fig1Result
	for _, workers := range []int{1, 4, 0} {
		cfg := fig1TestConfig()
		cfg.Workers = workers
		res, err := Fig1a(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = res
		} else if !reflect.DeepEqual(res, want) {
			t.Fatalf("workers=%d: result differs from workers=1:\n%+v\nvs\n%+v", workers, res, want)
		}
	}
}

func TestFig1aCheckpointResume(t *testing.T) {
	ref, err := Fig1a(fig1TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fig1TestConfig()
	cfg.Checkpoint = filepath.Join(t.TempDir(), "fig1a.jsonl")
	if _, err := Fig1a(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	res, err := Fig1a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatalf("resumed result differs:\n%+v\nvs\n%+v", res, ref)
	}
}
