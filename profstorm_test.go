package sharebackup

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sharebackup/internal/obs"
	"sharebackup/internal/obs/prof"
)

// TestProfiledStormCarriesPhaseLabels is the acceptance test for the
// continuous profiler: drive a failure/repair storm while a profiler
// captures, then parse the cut CPU window and require samples tagged with
// the Table 2 recovery phases (prof.Do sites in the controller). CPU
// sampling is statistical at 100Hz, so the storm retries with growing
// durations before declaring the labels broken.
func TestProfiledStormCarriesPhaseLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU-burning storm")
	}
	for attempt, storm := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second} {
		dir := t.TempDir()
		p, err := prof.Start(prof.Config{Dir: dir, Window: time.Hour, Registry: obs.NewRegistry()})
		if err != nil {
			if strings.Contains(err.Error(), "cpu profil") {
				t.Skipf("CPU profiler unavailable: %v", err)
			}
			t.Fatal(err)
		}

		sys, err := New(Config{K: 8, N: 1})
		if err != nil {
			p.Close()
			t.Fatal(err)
		}
		deadline := time.Now().Add(storm)
		cycles := 0
		for time.Now().Before(deadline) {
			// Failover swaps the slot's physical occupant, so re-resolve
			// the active switch each cycle.
			victim := sys.Network.EdgeGroup(0).Slots()[0]
			if _, err := sys.FailNode(victim, time.Millisecond); err != nil {
				p.Close()
				t.Fatalf("cycle %d: fail: %v", cycles, err)
			}
			if err := sys.Controller.RepairSwitch(victim); err != nil {
				p.Close()
				t.Fatalf("cycle %d: repair: %v", cycles, err)
			}
			cycles++
		}

		grab := filepath.Join(dir, "storm")
		err = p.GrabInto(grab)
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(grab, "cpu.pprof"))
		if err != nil {
			t.Fatal(err)
		}
		attr, err := prof.PhaseAttribution(data)
		if err != nil {
			t.Fatalf("attribution parse: %v", err)
		}
		labeled := int64(0)
		for _, phase := range []string{prof.PhaseDetect, prof.PhaseNotify, prof.PhaseReconfig, prof.PhaseRevert} {
			labeled += attr.Phases[phase].Samples
		}
		if labeled > 0 {
			t.Logf("%d cycles, %d/%d samples phase-labeled: %v",
				cycles, labeled, attr.TotalSamples, attr.Phases)
			return
		}
		t.Logf("attempt %d: %d cycles, %d samples, none labeled (%v); retrying with a longer storm",
			attempt, cycles, attr.TotalSamples, attr.Phases)
	}
	t.Fatal("no recovery-phase-labeled CPU samples after 3 storms")
}
