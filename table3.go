package sharebackup

import (
	"fmt"

	"sharebackup/internal/fluid"
	"sharebackup/internal/routing"
	"sharebackup/internal/topo"
)

// Table3Row is one architecture's measured entry for Table 3.
type Table3Row struct {
	Arch string
	// NoBandwidthLoss: delivered aggregate throughput under a single
	// failure equals the failure-free baseline.
	NoBandwidthLoss bool
	// NoPathDilation: no flow runs on a path longer than its shortest.
	NoPathDilation bool
	// NoUpstreamRepair: every repair decision happens adjacent to the
	// failure (or no routing change at all).
	NoUpstreamRepair bool

	// The measurements behind the checkmarks.
	Throughput         float64 // aggregate steady-state rate under failure
	BaselineThroughput float64
	MaxHops            int
	ShortestHops       int
}

// Table3 measures the paper's qualitative Table 3 on a k-ary fat-tree with
// one aggregation-switch failure under a saturating all-to-all workload of
// long-lived flows (every ordered rack pair), so that any capacity removed
// from the fabric shows up as lost aggregate throughput.
func Table3(k int, seed int64) ([]Table3Row, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("sharebackup: Table3: k=%d must be even and >= 4", k)
	}
	ft, err := rackFatTree(k, false)
	if err != nil {
		return nil, err
	}
	f10, err := rackFatTree(k, true)
	if err != nil {
		return nil, err
	}

	// Fail the first aggregation switch of pod 0 in both topologies.
	fail := func(t *topo.FatTree) *topo.Blocked {
		b := topo.NewBlocked()
		b.BlockNode(t.Agg(0, 0))
		return b
	}

	type arch struct {
		name   string
		ft     *topo.FatTree
		scheme rerouteScheme
	}
	var rows []Table3Row
	for _, a := range []arch{
		{"ShareBackup", ft, schemeShareBackup},
		{"Fat-tree", ft, schemeGlobalOptimal},
		{"F10", f10, schemeF10Local},
	} {
		flows, err := allToAllFlows(a.ft, seed)
		if err != nil {
			return nil, err
		}
		baseline, _, err := steadyThroughput(a.ft, flows)
		if err != nil {
			return nil, err
		}
		blocked := fail(a.ft)
		rerouted, _ := applyScheme(a.ft, flows, blocked, a.scheme)
		// Under ShareBackup the failed hardware is replaced, so the
		// effective topology is whole; for the rerouting schemes the
		// blocked element's capacity is unusable because no path may
		// traverse it.
		got, maxHops, err := steadyThroughput(a.ft, rerouted)
		if err != nil {
			return nil, err
		}
		row := Table3Row{
			Arch:               a.name,
			Throughput:         got,
			BaselineThroughput: baseline,
			MaxHops:            maxHops,
			ShortestHops:       6,
			NoBandwidthLoss:    got >= baseline*(1-1e-9),
			NoPathDilation:     maxHops <= 6,
			NoUpstreamRepair:   !hasUpstreamRepair(flows, rerouted, blocked),
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// allToAllFlows builds one long-lived flow for every ordered rack pair — a
// demand that saturates the fabric, so delivered throughput tracks available
// capacity.
func allToAllFlows(ft *topo.FatTree, seed int64) ([]flowRef, error) {
	racks := ft.NumHosts()
	ecmp := &routing.ECMP{FT: ft, Seed: uint64(seed)}
	flows := make([]flowRef, 0, racks*(racks-1))
	id := uint64(0)
	for src := 0; src < racks; src++ {
		for dst := 0; dst < racks; dst++ {
			if src == dst {
				continue
			}
			id++
			p, err := ecmp.PathFor(src, dst, id)
			if err != nil {
				return nil, err
			}
			flows = append(flows, flowRef{coflow: src, path: p})
		}
	}
	return flows, nil
}

// steadyThroughput computes the aggregate max-min rate of the flow set and
// the maximum hop count in use. Stalled (disconnected) flows contribute
// zero.
func steadyThroughput(ft *topo.FatTree, flows []flowRef) (total float64, maxHops int, err error) {
	sim := fluid.New(ft.Topology)
	for i, f := range flows {
		if err := sim.AddFlow(fluid.FlowID(i), 1e15, 0, f.path); err != nil {
			return 0, 0, err
		}
		if h := f.path.Hops(); h > maxHops {
			maxHops = h
		}
	}
	if err := sim.Run(0); err != nil {
		return 0, 0, err
	}
	for i := range flows {
		total += sim.Flow(fluid.FlowID(i)).Rate()
	}
	return total, maxHops, nil
}

// hasUpstreamRepair reports whether any rerouted flow changed its path at a
// point not adjacent to the failure: the node where old and new paths
// diverge should be the node immediately upstream of the failed element for
// a local repair.
func hasUpstreamRepair(before, after []flowRef, blocked *topo.Blocked) bool {
	for i := range before {
		old, new_ := before[i].path, after[i].path
		if old.Hops() == 0 || new_.Hops() == 0 {
			continue
		}
		if samePath(old, new_) {
			continue
		}
		// Find the divergence point.
		d := 0
		for d < len(old.Nodes) && d < len(new_.Nodes) && old.Nodes[d] == new_.Nodes[d] {
			d++
		}
		if d == 0 {
			return true // diverged at the source host: maximally upstream
		}
		// Local repair means the element right after the last common
		// node on the OLD path is the failed one.
		lastCommon := d - 1
		adjacent := false
		if lastCommon < len(old.Links) && blocked.LinkBlocked(old.Links[lastCommon]) {
			adjacent = true
		}
		if lastCommon+1 < len(old.Nodes) && blocked.NodeBlocked(old.Nodes[lastCommon+1]) {
			adjacent = true
		}
		if !adjacent {
			return true
		}
	}
	return false
}

func samePath(a, b topo.Path) bool {
	if len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return false
		}
	}
	return true
}
