package groups

import (
	"math"
	"testing"

	"sharebackup/internal/failure"
	"sharebackup/internal/topo"
)

func fatTree(t *testing.T, k int) *topo.FatTree {
	t.Helper()
	ft, err := topo.NewFatTree(topo.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestFatTreePlan(t *testing.T) {
	ft := fatTree(t, 8)
	plan, err := FatTreePlan(ft, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(plan.Groups), 5*8/2; got != want {
		t.Fatalf("groups = %d, want %d (5k/2)", got, want)
	}
	if err := plan.Validate(ft.Topology); err != nil {
		t.Fatalf("fat-tree plan invalid: %v", err)
	}
	for i := range plan.Groups {
		g := &plan.Groups[i]
		if g.Size() != 4 {
			t.Errorf("group %d size = %d, want k/2", i, g.Size())
		}
		if g.CircuitPortsNeeded() != 4+1+2 {
			t.Errorf("group %d circuit ports = %d, want k/2+n+2", i, g.CircuitPortsNeeded())
		}
	}
	if got, want := plan.TotalBackups(), 20; got != want {
		t.Errorf("total backups = %d, want 5kn/2 = %d", got, want)
	}
	if math.Abs(plan.BackupRatio()-0.25) > 1e-9 {
		t.Errorf("backup ratio = %v, want n/(k/2)", plan.BackupRatio())
	}
	// Core groups partition cores by index mod k/2.
	coreGroups := plan.Groups[16:]
	for gi := range coreGroups {
		for _, m := range coreGroups[gi].Members {
			if ft.Node(m).Kind != topo.KindCore {
				t.Fatalf("core group %d contains non-core %v", gi, m)
			}
			if ft.Node(m).Index%4 != gi {
				t.Errorf("core group %d contains C%d", gi, ft.Node(m).Index)
			}
		}
	}
	if _, err := FatTreePlan(ft, -1); err == nil {
		t.Error("negative n accepted")
	}
}

func TestByDegreePlanJellyfish(t *testing.T) {
	jf, err := topo.NewJellyfish(topo.JellyfishConfig{Switches: 30, Ports: 8, NetDegree: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ByDegreePlan(jf.Topology, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(jf.Topology); err != nil {
		t.Fatalf("degree plan invalid: %v", err)
	}
	for i := range plan.Groups {
		if plan.Groups[i].Size() > 8 {
			t.Errorf("group %d exceeds maxSize: %d", i, plan.Groups[i].Size())
		}
	}
	if plan.TotalSwitches() != 30 {
		t.Errorf("plan covers %d switches, want 30", plan.TotalSwitches())
	}
}

func TestByDegreePlanValidation(t *testing.T) {
	ft := fatTree(t, 4)
	if _, err := ByDegreePlan(ft.Topology, 0, 1); err == nil {
		t.Error("maxSize 0 accepted")
	}
	if _, err := ByDegreePlan(ft.Topology, 4, -1); err == nil {
		t.Error("negative n accepted")
	}
}

func TestPlanValidateCatchesDefects(t *testing.T) {
	ft := fatTree(t, 4)
	plan, err := FatTreePlan(ft, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate membership.
	bad := *plan
	bad.Groups = append([]Group(nil), plan.Groups...)
	bad.Groups[0].Members = append(bad.Groups[0].Members, bad.Groups[1].Members[0])
	if err := bad.Validate(ft.Topology); err == nil {
		t.Error("duplicate membership accepted")
	}
	// Missing coverage.
	short, err := FatTreePlan(ft, 1)
	if err != nil {
		t.Fatal(err)
	}
	short.Groups = short.Groups[1:]
	if err := short.Validate(ft.Topology); err == nil {
		t.Error("uncovered switch accepted")
	}
	// Port mismatch.
	wrong, err := FatTreePlan(ft, 1)
	if err != nil {
		t.Fatal(err)
	}
	wrong.Groups[0].Ports = 99
	if err := wrong.Validate(ft.Topology); err == nil {
		t.Error("port mismatch accepted")
	}
	// Host in a group.
	hostPlan, err := FatTreePlan(ft, 1)
	if err != nil {
		t.Fatal(err)
	}
	hostPlan.Groups[0].Members[0] = ft.Host(0)
	if err := hostPlan.Validate(ft.Topology); err == nil {
		t.Error("host member accepted")
	}
}

func TestOverflowProbabilityAndExpectedUnprotected(t *testing.T) {
	g := Group{Members: make([]topo.NodeID, 24), Backups: 1}
	p := g.OverflowProbability(failure.SwitchFailureRate)
	if p <= 0 || p > 1e-4 {
		t.Errorf("overflow probability = %v", p)
	}
	g2 := Group{Members: make([]topo.NodeID, 24), Backups: 4}
	if g2.OverflowProbability(failure.SwitchFailureRate) >= p {
		t.Error("more backups did not reduce overflow probability")
	}
	plan := Plan{Groups: []Group{g, g2}}
	e := plan.ExpectedUnprotectedFailures(failure.SwitchFailureRate)
	if e < p || e > 2*p {
		t.Errorf("expected unprotected = %v, want within [p, 2p]", e)
	}
}

func TestAllocateNonUniform(t *testing.T) {
	ft := fatTree(t, 4)
	plan, err := FatTreePlan(ft, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Coverage criticality: edge switches carry single-homed hosts, so
	// edge groups must receive more backups than core groups when the
	// budget is scarce.
	budget := len(plan.Groups) + 8
	if err := AllocateNonUniform(ft.Topology, plan, budget, 1, CoverageCriticality); err != nil {
		t.Fatal(err)
	}
	total := 0
	edgeBackups, coreBackups := 0, 0
	for i := range plan.Groups {
		total += plan.Groups[i].Backups
		if plan.Groups[i].Backups < 1 {
			t.Errorf("group %d below minimum", i)
		}
		switch ft.Node(plan.Groups[i].Members[0]).Kind {
		case topo.KindEdge:
			edgeBackups += plan.Groups[i].Backups
		case topo.KindCore:
			coreBackups += plan.Groups[i].Backups
		}
	}
	if total != budget {
		t.Errorf("allocated %d, budget %d", total, budget)
	}
	// 4 edge groups vs 2 core groups: compare per-group averages.
	if float64(edgeBackups)/4 <= float64(coreBackups)/2 {
		t.Errorf("edge groups (%d over 4) not favored over core groups (%d over 2)",
			edgeBackups, coreBackups)
	}

	// The non-uniform plan must protect better than uniform at equal
	// budget when criticality tracks actual risk. Check plan-level
	// robustness arithmetic runs.
	if e := plan.ExpectedUnprotectedFailures(failure.SwitchFailureRate); e < 0 || e > 1 {
		t.Errorf("expected unprotected = %v", e)
	}

	if err := AllocateNonUniform(ft.Topology, plan, 2, 1, DegreeCriticality); err == nil {
		t.Error("impossible budget accepted")
	}
	if err := AllocateNonUniform(ft.Topology, plan, -1, 0, DegreeCriticality); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestAllocateGreedy(t *testing.T) {
	ft := fatTree(t, 4)
	plan, err := FatTreePlan(ft, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := failure.SwitchFailureRate

	// Budget = one per group: greedy must cover every group before
	// doubling anywhere (first-backup gains dwarf second-backup gains at
	// realistic failure rates).
	if err := AllocateGreedy(ft.Topology, plan, len(plan.Groups), p, CoverageCriticality); err != nil {
		t.Fatal(err)
	}
	for i := range plan.Groups {
		if plan.Groups[i].Backups != 1 {
			t.Fatalf("group %d got %d backups; greedy must cover all groups first", i, plan.Groups[i].Backups)
		}
	}

	// Extra budget goes to the most critical (edge) groups.
	plan2, err := FatTreePlan(ft, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := AllocateGreedy(ft.Topology, plan2, len(plan2.Groups)+3, p, CoverageCriticality); err != nil {
		t.Fatal(err)
	}
	for i := range plan2.Groups {
		if plan2.Groups[i].Backups > 1 {
			if ft.Node(plan2.Groups[i].Members[0]).Kind != topo.KindEdge {
				t.Errorf("extra backup went to a %v group, want edge",
					ft.Node(plan2.Groups[i].Members[0]).Kind)
			}
		}
	}
	if plan2.TotalBackups() != len(plan2.Groups)+3 {
		t.Errorf("allocated %d, want %d", plan2.TotalBackups(), len(plan2.Groups)+3)
	}

	if err := AllocateGreedy(ft.Topology, plan, -1, p, DegreeCriticality); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestDegreeCriticality(t *testing.T) {
	ft := fatTree(t, 4)
	if DegreeCriticality(ft.Topology, ft.Edge(0, 0)) != 4 {
		t.Error("degree criticality wrong")
	}
	// Edge switches with single-homed hosts are more critical than cores
	// under coverage criticality.
	if CoverageCriticality(ft.Topology, ft.Edge(0, 0)) <= CoverageCriticality(ft.Topology, ft.Core(0)) {
		t.Error("coverage criticality does not favor edge switches")
	}
}
