// Package groups generalizes ShareBackup's failure-group planning beyond the
// fat-tree, following the paper's conclusion: "Sharable backup is readily
// applicable to [symmetric] networks, with different plans for partitioning
// failure groups. Non-uniform failure groups should also be explored ... so
// we can have more backup on critical devices and less backup on unimportant
// ones."
//
// A Plan partitions a topology's switches into groups that can physically
// share backups (same port count, wired to a common set of circuit switches)
// and assigns each group a backup budget. The package provides the fat-tree
// plan the paper builds, a degree-homogeneous plan for unstructured networks
// such as Jellyfish, a criticality-weighted non-uniform allocator, and the
// analytics (overflow probability, hardware overhead) to compare plans.
package groups

import (
	"fmt"
	"math"
	"sort"

	"sharebackup/internal/failure"
	"sharebackup/internal/topo"
)

// Group is one failure group of a plan.
type Group struct {
	// Members are the switches sharing this group's backups.
	Members []topo.NodeID
	// Backups is the group's backup budget (the paper's n).
	Backups int
	// Ports is the member port count; every member and backup must match
	// so they can wire to the same circuit switches.
	Ports int
}

// Size returns the number of member switches.
func (g *Group) Size() int { return len(g.Members) }

// CircuitPortsNeeded returns the per-side port count of the group's circuit
// switches: size + backups + 2 side ports (Section 3).
func (g *Group) CircuitPortsNeeded() int { return g.Size() + g.Backups + 2 }

// OverflowProbability returns P[more than Backups members down] under
// independent failures with per-switch unavailability p.
func (g *Group) OverflowProbability(p float64) float64 {
	return failure.BinomialTail(g.Size(), g.Backups, p)
}

// Plan is a failure-group partition of a topology's switches.
type Plan struct {
	Groups []Group
}

// TotalBackups sums the backup budgets.
func (p *Plan) TotalBackups() int {
	n := 0
	for i := range p.Groups {
		n += p.Groups[i].Backups
	}
	return n
}

// TotalSwitches sums the member counts.
func (p *Plan) TotalSwitches() int {
	n := 0
	for i := range p.Groups {
		n += p.Groups[i].Size()
	}
	return n
}

// BackupRatio returns total backups over total switches.
func (p *Plan) BackupRatio() float64 {
	s := p.TotalSwitches()
	if s == 0 {
		return 0
	}
	return float64(p.TotalBackups()) / float64(s)
}

// ExpectedUnprotectedFailures returns the expected number of groups whose
// concurrent failures exceed their budget, under unavailability p — the
// plan-level robustness metric used to compare allocations.
func (p *Plan) ExpectedUnprotectedFailures(unavail float64) float64 {
	sum := 0.0
	for i := range p.Groups {
		sum += p.Groups[i].OverflowProbability(unavail)
	}
	return sum
}

// Validate checks the plan is a partition with homogeneous port counts.
func (p *Plan) Validate(t *topo.Topology) error {
	seen := make(map[topo.NodeID]bool)
	for gi := range p.Groups {
		g := &p.Groups[gi]
		if g.Size() == 0 {
			return fmt.Errorf("groups: group %d is empty", gi)
		}
		if g.Backups < 0 {
			return fmt.Errorf("groups: group %d has negative backups", gi)
		}
		for _, m := range g.Members {
			if !t.Node(m).Kind.IsSwitch() {
				return fmt.Errorf("groups: group %d member %d is not a switch", gi, m)
			}
			if seen[m] {
				return fmt.Errorf("groups: switch %d in two groups", m)
			}
			seen[m] = true
			if d := t.Degree(m); d != g.Ports {
				return fmt.Errorf("groups: group %d member %d has %d ports, group declares %d",
					gi, m, d, g.Ports)
			}
		}
	}
	for _, id := range t.SwitchIDs() {
		if !seen[id] {
			return fmt.Errorf("groups: switch %d not covered by the plan", id)
		}
	}
	return nil
}

// FatTreePlan builds the paper's plan for a fat-tree: k edge groups, k agg
// groups, and k/2 core groups of k/2 switches each, n backups per group.
func FatTreePlan(ft *topo.FatTree, n int) (*Plan, error) {
	if n < 0 {
		return nil, fmt.Errorf("groups: n=%d must be non-negative", n)
	}
	k := ft.K()
	half := k / 2
	var plan Plan
	for pod := 0; pod < k; pod++ {
		g := Group{Backups: n, Ports: k}
		for j := 0; j < half; j++ {
			g.Members = append(g.Members, ft.Edge(pod, j))
		}
		plan.Groups = append(plan.Groups, g)
	}
	for pod := 0; pod < k; pod++ {
		g := Group{Backups: n, Ports: k}
		for j := 0; j < half; j++ {
			g.Members = append(g.Members, ft.Agg(pod, j))
		}
		plan.Groups = append(plan.Groups, g)
	}
	for t := 0; t < half; t++ {
		g := Group{Backups: n, Ports: k}
		for s := 0; s < half; s++ {
			g.Members = append(g.Members, ft.Core(s*half+t))
		}
		plan.Groups = append(plan.Groups, g)
	}
	return &plan, nil
}

// ByDegreePlan partitions an arbitrary topology's switches into groups of at
// most maxSize switches with identical port counts (a physical requirement:
// group members share circuit switches port-for-port), assigning n backups
// per group. This is the uniform plan for unstructured networks.
func ByDegreePlan(t *topo.Topology, maxSize, n int) (*Plan, error) {
	if maxSize < 1 {
		return nil, fmt.Errorf("groups: maxSize=%d must be positive", maxSize)
	}
	if n < 0 {
		return nil, fmt.Errorf("groups: n=%d must be non-negative", n)
	}
	byDegree := make(map[int][]topo.NodeID)
	for _, id := range t.SwitchIDs() {
		d := t.Degree(id)
		byDegree[d] = append(byDegree[d], id)
	}
	degrees := make([]int, 0, len(byDegree))
	for d := range byDegree {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	var plan Plan
	for _, d := range degrees {
		members := byDegree[d]
		for start := 0; start < len(members); start += maxSize {
			end := start + maxSize
			if end > len(members) {
				end = len(members)
			}
			plan.Groups = append(plan.Groups, Group{
				Members: append([]topo.NodeID(nil), members[start:end]...),
				Backups: n,
				Ports:   d,
			})
		}
	}
	return &plan, nil
}

// Criticality scores a switch's importance; more critical switches deserve
// more backup (the paper's non-uniform direction).
type Criticality func(t *topo.Topology, sw topo.NodeID) float64

// DegreeCriticality scores by port count — a proxy for traffic carried.
func DegreeCriticality(t *topo.Topology, sw topo.NodeID) float64 {
	return float64(t.Degree(sw))
}

// CoverageCriticality scores by how many hosts lose all connectivity if the
// switch dies: the size of the host set whose only switch neighbor it is.
// Single-homed racks make their edge switch maximally critical.
func CoverageCriticality(t *topo.Topology, sw topo.NodeID) float64 {
	cut := 0
	for _, lid := range t.LinksOf(sw) {
		h := t.Link(lid).Other(sw)
		if t.Node(h).Kind != topo.KindHost {
			continue
		}
		if t.Degree(h) == 1 {
			cut++
		}
	}
	return float64(cut) + 1 // +1 so fabric switches are not zero
}

// AllocateGreedy distributes a total backup budget over a plan's groups by
// repeatedly giving the next backup to the group with the largest marginal
// reduction in criticality-weighted risk (criticality x overflow
// probability). Unlike proportional allocation it never leaves a
// high-overflow group uncovered to over-provision a critical one, so at any
// budget it is at least as good as uniform under the weighted-risk metric.
// It mutates the plan's Backups fields.
func AllocateGreedy(t *topo.Topology, plan *Plan, budget int, unavail float64, score Criticality) error {
	if budget < 0 {
		return fmt.Errorf("groups: negative budget")
	}
	crit := make([]float64, len(plan.Groups))
	for i := range plan.Groups {
		plan.Groups[i].Backups = 0
		for _, m := range plan.Groups[i].Members {
			crit[i] += score(t, m)
		}
		if crit[i] <= 0 {
			crit[i] = 1
		}
	}
	gain := func(i int) float64 {
		g := &plan.Groups[i]
		return crit[i] * (failure.BinomialTail(g.Size(), g.Backups, unavail) -
			failure.BinomialTail(g.Size(), g.Backups+1, unavail))
	}
	for b := 0; b < budget; b++ {
		best, bestGain := -1, -1.0
		for i := range plan.Groups {
			if g := gain(i); g > bestGain {
				best, bestGain = i, g
			}
		}
		plan.Groups[best].Backups++
	}
	return nil
}

// AllocateNonUniform distributes a total backup budget over a plan's groups
// proportionally to their summed member criticality (largest-remainder
// rounding), mutating the plan's Backups fields. Every group receives at
// least minPerGroup.
func AllocateNonUniform(t *topo.Topology, plan *Plan, budget, minPerGroup int, score Criticality) error {
	if budget < 0 || minPerGroup < 0 {
		return fmt.Errorf("groups: negative budget or minimum")
	}
	if minPerGroup*len(plan.Groups) > budget {
		return fmt.Errorf("groups: budget %d cannot cover minimum %d x %d groups",
			budget, minPerGroup, len(plan.Groups))
	}
	weights := make([]float64, len(plan.Groups))
	total := 0.0
	for i := range plan.Groups {
		for _, m := range plan.Groups[i].Members {
			weights[i] += score(t, m)
		}
		total += weights[i]
	}
	spare := budget - minPerGroup*len(plan.Groups)
	type frac struct {
		idx  int
		frac float64
	}
	var fracs []frac
	assigned := 0
	for i := range plan.Groups {
		share := 0.0
		if total > 0 {
			share = float64(spare) * weights[i] / total
		}
		whole := int(math.Floor(share))
		plan.Groups[i].Backups = minPerGroup + whole
		assigned += whole
		fracs = append(fracs, frac{idx: i, frac: share - float64(whole)})
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].frac > fracs[b].frac })
	for i := 0; i < spare-assigned; i++ {
		plan.Groups[fracs[i%len(fracs)].idx].Backups++
	}
	return nil
}
