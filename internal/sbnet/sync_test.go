package sbnet

import (
	"testing"

	"sharebackup/internal/circuit"
)

func TestAuthoritativeConfigMatchesLiveState(t *testing.T) {
	net := newNet(t, 6, 1)
	// After a few replacements, the authoritative config of every circuit
	// switch must equal its live configuration.
	if _, _, err := net.Replace(net.EdgeGroup(0).Slots()[1]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.Replace(net.AggGroup(0).Slots()[2]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.Replace(net.CoreGroup(2).Slots()[0]); err != nil {
		t.Fatal(err)
	}
	for pod := 0; pod < 6; pod++ {
		for j := 0; j < 3; j++ {
			for layer := 1; layer <= 3; layer++ {
				want, err := net.AuthoritativeConfig(layer, pod, j)
				if err != nil {
					t.Fatal(err)
				}
				cs := net.SideRing(layer, pod)[j]
				for a, b := range want {
					if got := cs.BOf(a); got != b {
						t.Fatalf("%s: A%d -> B%d, authoritative says %d", cs.Name(), a, got, b)
					}
				}
			}
		}
	}
}

func TestSyncCircuitRepairsScramble(t *testing.T) {
	net := newNet(t, 4, 1)
	cs := net.CS3(1, 0)
	// Scramble the crossbar.
	if _, err := cs.Apply([]circuit.Change{{A: 0, B: 1}, {A: 1, B: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := net.CheckInvariants(); err == nil {
		t.Fatal("scramble undetected")
	}
	if _, err := net.SyncCircuit(3, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("invariants after sync: %v", err)
	}
}

func TestSyncCircuitValidation(t *testing.T) {
	net := newNet(t, 4, 1)
	if _, err := net.AuthoritativeConfig(0, 0, 0); err == nil {
		t.Error("layer 0 accepted")
	}
	if _, err := net.AuthoritativeConfig(4, 0, 0); err == nil {
		t.Error("layer 4 accepted")
	}
	if _, err := net.AuthoritativeConfig(1, 9, 0); err == nil {
		t.Error("pod out of range accepted")
	}
	if _, err := net.AuthoritativeConfig(1, 0, 9); err == nil {
		t.Error("index out of range accepted")
	}
	if _, err := net.SyncCircuit(1, -1, 0); err == nil {
		t.Error("negative pod accepted")
	}
}

func TestTotalReconfigsAccounting(t *testing.T) {
	net := newNet(t, 4, 1)
	base := net.TotalReconfigs()
	if base == 0 {
		t.Fatal("initial configuration performed no reconfigurations")
	}
	// An edge replacement touches 2 circuit switches per j (CS1 and CS2),
	// k/2 of each.
	if _, _, err := net.Replace(net.EdgeGroup(0).Slots()[0]); err != nil {
		t.Fatal(err)
	}
	if got := net.TotalReconfigs() - base; got != 4 {
		t.Errorf("edge replacement cost %d reconfiguration events, want 2*(k/2)=4", got)
	}
	// A core replacement touches CS3 in every pod.
	base = net.TotalReconfigs()
	if _, _, err := net.Replace(net.CoreGroup(0).Slots()[0]); err != nil {
		t.Fatal(err)
	}
	if got := net.TotalReconfigs() - base; got != 4 {
		t.Errorf("core replacement cost %d reconfiguration events, want k=4", got)
	}
}
