package sbnet

import (
	"fmt"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/topo"
)

// This file implements the paper's third open question (Section 6): "when
// backup switches are idle, they can be activated to add bandwidth to the
// network."
//
// Under the paper's wiring the only circuit endpoints that are free while
// the network is healthy are the backup switches' own ports: every active
// switch port already carries a circuit. The capacity that can be added
// without disturbing live circuits is therefore the k/2 parallel links
// between an idle backup edge switch and an idle backup aggregation switch
// of the same pod (their layer-2 circuit-switch ports are both unconnected).
// That fabric is real — it shows up as extra edge-agg capacity — but it is
// unreachable by hosts under two-level routing, because hosts can only reach
// switches occupying logical slots. AddedHostBandwidth quantifies this
// honestly, and the ablation bench records both numbers; making the extra
// capacity host-reachable requires extra switch ports, which is exactly why
// the paper leaves it as future work.

// Augmentation describes one activated backup pair.
type Augmentation struct {
	Pod      int
	EdgeSw   SwitchID
	AggSw    SwitchID
	Circuits int // k/2 parallel links
}

// ActivateIdleBackups connects a free backup edge switch and a free backup
// aggregation switch of the pod through all k/2 layer-2 circuit switches,
// adding k/2 fabric links. It returns the augmentation descriptor. Fault
// tolerance is preserved: an augmented backup remains eligible for failover,
// and a replacement that claims it atomically steals its circuits back.
func (n *Network) ActivateIdleBackups(pod int) (*Augmentation, error) {
	if pod < 0 || pod >= n.cfg.K {
		return nil, fmt.Errorf("sbnet: ActivateIdleBackups: pod %d out of range", pod)
	}
	edgeB := n.firstUnaugmentedBackup(n.EdgeGroup(pod))
	aggB := n.firstUnaugmentedBackup(n.AggGroup(pod))
	if edgeB == NoSwitch || aggB == NoSwitch {
		return nil, fmt.Errorf("sbnet: pod %d has no idle unaugmented backup pair", pod)
	}
	em, am := n.switches[edgeB].Member, n.switches[aggB].Member
	for j := 0; j < n.half; j++ {
		if _, err := n.cs2[pod][j].Apply([]circuit.Change{{A: am, B: em}}); err != nil {
			return nil, fmt.Errorf("sbnet: augmenting pod %d: %w", pod, err)
		}
	}
	if n.augmentOf == nil {
		n.augmentOf = make(map[SwitchID]SwitchID)
	}
	n.augmentOf[edgeB] = aggB
	n.augmentOf[aggB] = edgeB
	return &Augmentation{Pod: pod, EdgeSw: edgeB, AggSw: aggB, Circuits: n.half}, nil
}

// DeactivateIdleBackups tears down an augmentation explicitly (failover
// does it implicitly by stealing the ports).
func (n *Network) DeactivateIdleBackups(a *Augmentation) (time.Duration, error) {
	if a == nil {
		return 0, fmt.Errorf("sbnet: DeactivateIdleBackups: nil augmentation")
	}
	if n.augmentOf[a.EdgeSw] != a.AggSw {
		return 0, fmt.Errorf("sbnet: augmentation %+v is not active", a)
	}
	am := n.switches[a.AggSw].Member
	var max time.Duration
	for j := 0; j < n.half; j++ {
		// Tearing the A-side (agg backup) port down drops the circuit
		// to the edge backup as well.
		d, err := n.cs2[a.Pod][j].Apply([]circuit.Change{{A: am, B: circuit.Unconnected}})
		if err != nil {
			return max, err
		}
		if d > max {
			max = d
		}
	}
	delete(n.augmentOf, a.EdgeSw)
	delete(n.augmentOf, a.AggSw)
	return max, nil
}

// AugmentedPartner returns the switch an augmented backup is circuited to,
// or NoSwitch.
func (n *Network) AugmentedPartner(id SwitchID) SwitchID {
	p, ok := n.augmentOf[id]
	if !ok {
		return NoSwitch
	}
	return p
}

// AddedFabricCapacity returns the raw edge-agg capacity (in links) an
// augmentation contributes.
func (a *Augmentation) AddedFabricCapacity() int { return a.Circuits }

// AddedHostBandwidth returns the host-reachable bandwidth the augmentation
// adds under two-level routing: zero, because neither backup occupies a
// logical slot, so no host's packets are ever forwarded to them. This is the
// measured answer to the paper's open question within the prototype wiring.
func (a *Augmentation) AddedHostBandwidth() float64 { return 0 }

// firstUnaugmentedBackup returns the group's first free backup not already
// part of an augmentation.
func (n *Network) firstUnaugmentedBackup(g *Group) SwitchID {
	for _, id := range g.Members {
		if n.switches[id].Role == RoleBackup {
			if _, aug := n.augmentOf[id]; !aug {
				return id
			}
		}
	}
	return NoSwitch
}

// clearAugmentation drops augmentation bookkeeping for a switch whose
// circuits were just stolen by a failover, along with its partner's (the
// partner's circuits died with the shared links).
func (n *Network) clearAugmentation(id SwitchID) {
	if p, ok := n.augmentOf[id]; ok {
		delete(n.augmentOf, id)
		delete(n.augmentOf, p)
	}
}

// checkAugmented validates an augmented backup's circuits: CS2 ports
// circuited to the partner on every layer-2 circuit switch, everything else
// unconnected.
func (n *Network) checkAugmented(id SwitchID) error {
	sw := &n.switches[id]
	g := &n.groups[sw.Group]
	partner := n.augmentOf[id]
	pm := n.switches[partner].Member
	for j := 0; j < n.half; j++ {
		cs := n.cs2[g.Pod][j]
		switch sw.Kind {
		case topo.KindEdge:
			if got := cs.AOf(sw.Member); got != pm {
				return fmt.Errorf("sbnet: augmented %s on %s circuits to A-port %d, want partner %d",
					n.Name(id), cs.Name(), got, pm)
			}
			if n.cs1[g.Pod][j].BOf(sw.Member) != circuit.Unconnected {
				return fmt.Errorf("sbnet: augmented %s has a host circuit", n.Name(id))
			}
		case topo.KindAgg:
			if got := cs.BOf(sw.Member); got != pm {
				return fmt.Errorf("sbnet: augmented %s on %s circuits to B-port %d, want partner %d",
					n.Name(id), cs.Name(), got, pm)
			}
			if n.cs3[g.Pod][j].AOf(sw.Member) != circuit.Unconnected {
				return fmt.Errorf("sbnet: augmented %s has a core circuit", n.Name(id))
			}
		default:
			return fmt.Errorf("sbnet: augmentation on unexpected kind %v", sw.Kind)
		}
	}
	return nil
}
