package sbnet

import (
	"fmt"
	"time"

	"sharebackup/internal/circuit"
)

// AuthoritativeConfig computes the circuit configuration a given circuit
// switch should hold under the current slot occupancy, as an A-side -> B-side
// port map (circuit.Unconnected for free ports). This is the state the
// controller pushes to a rebooted circuit switch (Section 5.1: "a rebooted
// circuit switch can get up-to-date circuit configurations from the
// controller").
func (n *Network) AuthoritativeConfig(layer, pod, j int) ([]int, error) {
	if pod < 0 || pod >= n.cfg.K || j < 0 || j >= n.half {
		return nil, fmt.Errorf("sbnet: AuthoritativeConfig(%d, %d, %d): out of range", layer, pod, j)
	}
	cfg := make([]int, n.psz)
	for i := range cfg {
		cfg[i] = circuit.Unconnected
	}
	switch layer {
	case 1:
		eg := n.EdgeGroup(pod)
		for s := 0; s < n.half; s++ {
			cfg[n.memberOf(eg.slots[s])] = s
		}
	case 2:
		eg, ag := n.EdgeGroup(pod), n.AggGroup(pod)
		for s := 0; s < n.half; s++ {
			aggM := n.memberOf(ag.slots[(s+j)%n.half])
			cfg[aggM] = n.memberOf(eg.slots[s])
		}
	case 3:
		ag, cg := n.AggGroup(pod), n.CoreGroup(j)
		for s := 0; s < n.half; s++ {
			cfg[n.memberOf(cg.slots[s])] = n.memberOf(ag.slots[s])
		}
	default:
		return nil, fmt.Errorf("sbnet: AuthoritativeConfig: layer %d out of range", layer)
	}
	return cfg, nil
}

// SyncCircuit reapplies the authoritative configuration to one circuit
// switch (after a reboot, or to recover from a wedged configuration) and
// returns the reconfiguration delay.
func (n *Network) SyncCircuit(layer, pod, j int) (time.Duration, error) {
	cfg, err := n.AuthoritativeConfig(layer, pod, j)
	if err != nil {
		return 0, err
	}
	var cs *circuit.Switch
	switch layer {
	case 1:
		cs = n.cs1[pod][j]
	case 2:
		cs = n.cs2[pod][j]
	case 3:
		cs = n.cs3[pod][j]
	}
	return cs.Restore(cfg)
}
