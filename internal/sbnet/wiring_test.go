package sbnet

import (
	"bytes"
	"strings"
	"testing"
)

func TestWiringManifestCounts(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{4, 0}, {4, 1}, {6, 1}, {8, 2}} {
		net := newNet(t, tc.k, tc.n)
		for pod := 0; pod < tc.k; pod++ {
			if err := net.VerifyWiring(pod); err != nil {
				t.Fatalf("k=%d n=%d pod %d: %v", tc.k, tc.n, pod, err)
			}
		}
	}
}

func TestWiringManifestContents(t *testing.T) {
	net := newNet(t, 4, 1)
	cables, err := net.WiringManifest(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWiring(&buf, cables); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Spot checks from the structure: host 0 of rack 0 lands on CS1,1,0's
	// B-port 0; the backup edge switch's down-port 0 lands on CS1,1,0's
	// A-port 2 (member index k/2 for n=1); the side ring closes.
	for _, want := range []string{
		"host[1/0/0]",
		"CS1,1,0:B0",
		"BS1,1,0:down0",
		"CS1,1,0:A2",
		"BS2,1,0:up1",
		"CS3,1,1:B2",
		"CS2,1,1:side1",
		"CS2,1,0:side0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("manifest missing %q", want)
		}
	}
	// Cores attach with their pod-facing ports.
	if !strings.Contains(out, "C0:pod1") {
		t.Error("manifest missing core pod port")
	}
	// Wiring must not change with circuit reconfiguration.
	if _, _, err := net.Replace(net.EdgeGroup(1).Slots()[0]); err != nil {
		t.Fatal(err)
	}
	cables2, err := net.WiringManifest(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cables2) != len(cables) {
		t.Fatal("manifest size changed after failover")
	}
	for i := range cables {
		if cables[i] != cables2[i] {
			t.Fatalf("cable %d changed after failover: %v -> %v", i, cables[i], cables2[i])
		}
	}
}

func TestWiringManifestValidation(t *testing.T) {
	net := newNet(t, 4, 1)
	if _, err := net.WiringManifest(-1); err == nil {
		t.Error("negative pod accepted")
	}
	if _, err := net.WiringManifest(4); err == nil {
		t.Error("out-of-range pod accepted")
	}
}
