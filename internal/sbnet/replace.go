package sbnet

import (
	"fmt"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/obs"
	"sharebackup/internal/topo"
)

// ErrNoBackup is returned by Replace when the failure group has no free
// backup switch; the failure exceeds the group's capacity n (Section 5.1).
var ErrNoBackup = fmt.Errorf("sbnet: no free backup switch in failure group")

// Replace fails over the given active switch to the first free backup in its
// failure group: the backup takes over the failed switch's logical slot, all
// circuit switches carrying the failed switch's links are reconfigured to
// the backup, and the failed switch goes offline with every circuit torn
// down. It returns the backup chosen and the recovery reconfiguration
// latency (circuit switches reconfigure in parallel, so the latency is one
// technology delay regardless of how many are touched).
func (n *Network) Replace(failed SwitchID) (SwitchID, time.Duration, error) {
	free := n.FreeBackups(n.switches[failed].Group)
	if len(free) == 0 {
		return NoSwitch, 0, fmt.Errorf("%w %d (switch %s)", ErrNoBackup, n.switches[failed].Group, n.Name(failed))
	}
	d, err := n.ReplaceWith(failed, free[0])
	return free[0], d, err
}

// ReplaceWith is Replace with an explicit backup choice.
func (n *Network) ReplaceWith(failed, backup SwitchID) (time.Duration, error) {
	fs := &n.switches[failed]
	bs := &n.switches[backup]
	if fs.Role != RoleActive {
		return 0, fmt.Errorf("sbnet: ReplaceWith: %s is %v, not active", n.Name(failed), fs.Role)
	}
	if bs.Role != RoleBackup {
		return 0, fmt.Errorf("sbnet: ReplaceWith: %s is %v, not a free backup", n.Name(backup), bs.Role)
	}
	if fs.Group != bs.Group {
		return 0, fmt.Errorf("sbnet: ReplaceWith: %s and %s are in different failure groups",
			n.Name(failed), n.Name(backup))
	}
	g := &n.groups[fs.Group]
	slot := fs.Slot
	mB := bs.Member

	var max time.Duration
	touched := 0
	apply := func(cs *circuit.Switch, changes ...circuit.Change) error {
		d, err := cs.Apply(changes)
		if err != nil {
			return fmt.Errorf("sbnet: reconfiguring %s: %w", cs.Name(), err)
		}
		touched++
		if d > max {
			max = d
		}
		return nil
	}

	switch g.Kind {
	case topo.KindEdge:
		pod := g.Pod
		agg := n.AggGroup(pod)
		for j := 0; j < n.half; j++ {
			// Hosts of rack `slot` move to the backup's down-port j.
			if err := apply(n.cs1[pod][j], circuit.Change{A: mB, B: slot}); err != nil {
				return max, err
			}
			// The rotational partner: logical agg slot (slot+j) mod k/2.
			aggM := n.switches[agg.slots[(slot+j)%n.half]].Member
			if err := apply(n.cs2[pod][j], circuit.Change{A: aggM, B: mB}); err != nil {
				return max, err
			}
		}
	case topo.KindAgg:
		pod := g.Pod
		edge := n.EdgeGroup(pod)
		for j := 0; j < n.half; j++ {
			// Inverse of the rotation: logical edge slot (slot-j) mod k/2.
			edgeM := n.switches[edge.slots[((slot-j)%n.half+n.half)%n.half]].Member
			if err := apply(n.cs2[pod][j], circuit.Change{A: mB, B: edgeM}); err != nil {
				return max, err
			}
			// Core partner of up-port t: slot `slot` of core group t.
			coreM := n.switches[n.CoreGroup(j).slots[slot]].Member
			if err := apply(n.cs3[pod][j], circuit.Change{A: coreM, B: mB}); err != nil {
				return max, err
			}
		}
	case topo.KindCore:
		t := g.Index
		for pod := 0; pod < n.cfg.K; pod++ {
			aggM := n.switches[n.AggGroup(pod).slots[slot]].Member
			if err := apply(n.cs3[pod][t], circuit.Change{A: mB, B: aggM}); err != nil {
				return max, err
			}
		}
	default:
		return 0, fmt.Errorf("sbnet: ReplaceWith: unexpected group kind %v", g.Kind)
	}

	g.slots[slot] = backup
	bs.Slot, bs.Role = slot, RoleActive
	fs.Slot, fs.Role = -1, RoleOffline
	// If the backup was augmenting the fabric (extension.go), the
	// reconfiguration above stole its circuits; drop the bookkeeping for
	// it and its partner.
	n.clearAugmentation(backup)
	if n.bus.Enabled() {
		// The network has no clock of its own (T = -1); the active span
		// set by the control plane ties the event into its recovery
		// timeline, and the bus sequence number orders it.
		ev := obs.NewEvent(obs.KindCircuitReconfigured, -1)
		ev.Span = n.bus.ActiveSpan()
		ev.Switch = int32(failed)
		ev.Backup = int32(backup)
		ev.Count = int32(touched)
		ev.Reconfig = max
		n.bus.Emit(ev)
	}
	return max, nil
}

// Release returns an offline switch to the backup pool: the paper keeps a
// repaired or exonerated switch as a backup rather than switching back
// (Section 4.2), saving reconfiguration and avoiding disruption. The
// switch's ground-truth health is restored.
func (n *Network) Release(id SwitchID) error {
	sw := &n.switches[id]
	if sw.Role != RoleOffline {
		return fmt.Errorf("sbnet: Release: %s is %v, not offline", n.Name(id), sw.Role)
	}
	sw.Role = RoleBackup
	sw.Healthy = true
	for p := range sw.PortHealthy {
		sw.PortHealthy[p] = true
	}
	return nil
}

// InjectNodeFailure marks the switch's ground truth unhealthy. It does not
// change roles; recovery is the controller's job.
func (n *Network) InjectNodeFailure(id SwitchID) {
	n.switches[id].Healthy = false
}

// InjectPortFailure marks one interface's ground truth unhealthy.
func (n *Network) InjectPortFailure(id SwitchID, port int) error {
	sw := &n.switches[id]
	if port < 0 || port >= len(sw.PortHealthy) {
		return fmt.Errorf("sbnet: InjectPortFailure: %s has no port %d", n.Name(id), port)
	}
	sw.PortHealthy[port] = false
	return nil
}

// InterfaceUp reports the ground-truth health of one interface: the node
// must be healthy and the specific port must be healthy. Diagnosis probes
// consult this oracle through circuit paths.
func (n *Network) InterfaceUp(id SwitchID, port int) bool {
	sw := &n.switches[id]
	return sw.Healthy && port >= 0 && port < len(sw.PortHealthy) && sw.PortHealthy[port]
}
