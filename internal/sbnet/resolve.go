package sbnet

import (
	"fmt"

	"sharebackup/internal/circuit"
	"sharebackup/internal/topo"
)

// memberOf returns the member index of a physical switch, panicking on the
// sentinel; callers resolve occupancy before asking.
func (n *Network) memberOf(id SwitchID) int { return int(n.switches[id].Member) }

// EdgeServingRack resolves, from the layer-1 circuit configurations, which
// physical switch currently serves the hosts of rack `rack` in `pod`. It
// returns NoSwitch if any of the rack's host circuits is missing, and an
// error if the circuits disagree with each other.
func (n *Network) EdgeServingRack(pod, rack int) (SwitchID, error) {
	g := n.EdgeGroup(pod)
	serving := NoSwitch
	for j := 0; j < n.half; j++ {
		a := n.cs1[pod][j].AOf(rack)
		if a == circuit.Unconnected {
			return NoSwitch, nil
		}
		if a >= len(g.Members) {
			return NoSwitch, fmt.Errorf("sbnet: CS1,%d,%d circuits rack %d to non-member port %d", pod, j, rack, a)
		}
		id := g.Members[a]
		if serving == NoSwitch {
			serving = id
		} else if serving != id {
			return NoSwitch, fmt.Errorf("sbnet: rack %d in pod %d is split between %s and %s",
				rack, pod, n.Name(serving), n.Name(id))
		}
	}
	return serving, nil
}

// CheckInvariants validates the whole network:
//
//  1. every logical slot of every group is occupied by exactly one active,
//     in-group switch, and roles/slots are mutually consistent;
//  2. the circuit configurations realize exactly the fat-tree logical
//     topology under the current occupancy (hosts reach their slot's
//     occupant; logical edge s reaches logical agg (s+j) mod k/2 on CS2_j;
//     logical agg s reaches logical core slot s on CS3_t);
//  3. backup and offline switches have no circuits anywhere.
//
// It returns nil when the architecture is sound.
func (n *Network) CheckInvariants() error {
	// (1) Occupancy and roles.
	for gi := range n.groups {
		g := &n.groups[gi]
		seen := make(map[SwitchID]bool)
		for slot, id := range g.slots {
			if id == NoSwitch {
				return fmt.Errorf("sbnet: group %d slot %d unoccupied", g.ID, slot)
			}
			sw := &n.switches[id]
			if sw.Group != g.ID {
				return fmt.Errorf("sbnet: group %d slot %d occupied by foreign switch %s", g.ID, slot, n.Name(id))
			}
			if sw.Role != RoleActive || sw.Slot != slot {
				return fmt.Errorf("sbnet: group %d slot %d occupant %s has role=%v slot=%d",
					g.ID, slot, n.Name(id), sw.Role, sw.Slot)
			}
			if seen[id] {
				return fmt.Errorf("sbnet: switch %s occupies two slots", n.Name(id))
			}
			seen[id] = true
		}
		for _, id := range g.Members {
			sw := &n.switches[id]
			if sw.Role == RoleActive && !seen[id] {
				return fmt.Errorf("sbnet: switch %s is active but occupies no slot", n.Name(id))
			}
			if sw.Role != RoleActive && sw.Slot != -1 {
				return fmt.Errorf("sbnet: non-active switch %s has slot %d", n.Name(id), sw.Slot)
			}
		}
	}

	// (2) Circuit configurations realize the logical topology.
	for pod := 0; pod < n.cfg.K; pod++ {
		eg, ag := n.EdgeGroup(pod), n.AggGroup(pod)
		for j := 0; j < n.half; j++ {
			cs := n.cs1[pod][j]
			if err := cs.Validate(); err != nil {
				return err
			}
			for s := 0; s < n.half; s++ {
				want := n.memberOf(eg.slots[s])
				if got := cs.AOf(s); got != want {
					return fmt.Errorf("sbnet: %s: rack %d circuits to A-port %d, want member %d (%s)",
						cs.Name(), s, got, want, n.Name(eg.slots[s]))
				}
			}
			cs2 := n.cs2[pod][j]
			if err := cs2.Validate(); err != nil {
				return err
			}
			for s := 0; s < n.half; s++ {
				edgeM := n.memberOf(eg.slots[s])
				wantAgg := n.memberOf(ag.slots[(s+j)%n.half])
				if got := cs2.AOf(edgeM); got != wantAgg {
					return fmt.Errorf("sbnet: %s: logical edge %d (member %d) circuits to A-port %d, want %d",
						cs2.Name(), s, edgeM, got, wantAgg)
				}
			}
			cs3 := n.cs3[pod][j]
			if err := cs3.Validate(); err != nil {
				return err
			}
			cg := n.CoreGroup(j)
			for s := 0; s < n.half; s++ {
				aggM := n.memberOf(ag.slots[s])
				wantCore := n.memberOf(cg.slots[s])
				if got := cs3.AOf(aggM); got != wantCore {
					return fmt.Errorf("sbnet: %s: logical agg %d (member %d) circuits to A-port %d, want %d",
						cs3.Name(), s, aggM, got, wantCore)
				}
			}
		}
	}

	// (3) Backups and offline switches are fully unconnected — except
	// augmented backups (extension.go), whose circuits must point at
	// their partner and nothing else.
	for id := range n.switches {
		sw := &n.switches[id]
		if sw.Role == RoleActive {
			continue
		}
		if _, aug := n.augmentOf[SwitchID(id)]; aug {
			if err := n.checkAugmented(SwitchID(id)); err != nil {
				return err
			}
			continue
		}
		if err := n.checkUnconnected(SwitchID(id)); err != nil {
			return err
		}
	}
	return nil
}

// checkUnconnected verifies a non-active switch has no circuits on any
// circuit switch it is wired to.
func (n *Network) checkUnconnected(id SwitchID) error {
	sw := &n.switches[id]
	g := &n.groups[sw.Group]
	m := sw.Member
	fail := func(cs *circuit.Switch) error {
		return fmt.Errorf("sbnet: %v switch %s still has a circuit on %s", sw.Role, n.Name(id), cs.Name())
	}
	switch sw.Kind {
	case topo.KindEdge:
		for j := 0; j < n.half; j++ {
			if n.cs1[g.Pod][j].BOf(m) != circuit.Unconnected {
				return fail(n.cs1[g.Pod][j])
			}
			if n.cs2[g.Pod][j].AOf(m) != circuit.Unconnected {
				return fail(n.cs2[g.Pod][j])
			}
		}
	case topo.KindAgg:
		for j := 0; j < n.half; j++ {
			if n.cs2[g.Pod][j].BOf(m) != circuit.Unconnected {
				return fail(n.cs2[g.Pod][j])
			}
			if n.cs3[g.Pod][j].AOf(m) != circuit.Unconnected {
				return fail(n.cs3[g.Pod][j])
			}
		}
	case topo.KindCore:
		for pod := 0; pod < n.cfg.K; pod++ {
			if n.cs3[pod][g.Index].BOf(m) != circuit.Unconnected {
				return fail(n.cs3[pod][g.Index])
			}
		}
	}
	return nil
}

// LogicalFatTree builds the logical topology the current circuit
// configuration realizes, as a plain fat-tree. Because ShareBackup restores
// exact positions, this is invariant under any sequence of successful
// replacements — the property behind "no bandwidth loss, no path dilation"
// in Table 3.
func (n *Network) LogicalFatTree(hostsPerEdge int, linkCap, hostCap float64) (*topo.FatTree, error) {
	if err := n.CheckInvariants(); err != nil {
		return nil, err
	}
	return topo.NewFatTree(topo.Config{
		K: n.cfg.K, HostsPerEdge: hostsPerEdge,
		LinkCapacity: linkCap, HostCapacity: hostCap,
	})
}

// BackupRatio returns n / (k/2), the paper's robustness headroom metric
// (4.17% for k=48, n=1).
func (n *Network) BackupRatio() float64 {
	return float64(n.cfg.N) / float64(n.half)
}
