package sbnet

import (
	"fmt"
	"io"
	"sort"
)

// This file produces the deployment wiring manifest of a ShareBackup pod —
// the operational form of Figure 3. The paper argues packaging is practical:
// "It is straightforward to package the backup switches and the circuit
// switches into the original fat-tree Pods with simple changes of wiring."
// The manifest enumerates every physical cable so a deployment (or a test)
// can verify the static wiring independent of circuit configurations.

// Cable is one physical cable of the wiring manifest. Circuit-switch ports
// are named "<cs>:A<port>" / "<cs>:B<port>"; packet-switch ports are
// "<switch>:down<j>" / "<switch>:up<j>" / "<switch>:pod<p>"; hosts are
// "host[pod/rack/pos]"; side-ring ports are "<cs>:side0" / "<cs>:side1".
type Cable struct {
	From string
	To   string
}

// WiringManifest enumerates every static cable of one pod (plus the core
// attachments of the pod's layer-3 circuit switches): host-to-CS1 cables,
// packet-switch-to-CS cables for all members including backups, core-to-CS3
// cables, and the side-port rings used by offline diagnosis. The manifest
// depends only on the architecture parameters, never on circuit
// configuration — wiring is fixed at deployment time.
func (n *Network) WiringManifest(pod int) ([]Cable, error) {
	if pod < 0 || pod >= n.cfg.K {
		return nil, fmt.Errorf("sbnet: WiringManifest: pod %d out of range", pod)
	}
	var cables []Cable
	add := func(from, to string) { cables = append(cables, Cable{From: from, To: to}) }

	eg, ag := n.EdgeGroup(pod), n.AggGroup(pod)
	for j := 0; j < n.half; j++ {
		cs1 := n.cs1[pod][j]
		cs2 := n.cs2[pod][j]
		cs3 := n.cs3[pod][j]
		// Hosts: host j of rack s on CS1's B-port s.
		for s := 0; s < n.half; s++ {
			add(fmt.Sprintf("host[%d/%d/%d]", pod, s, j), fmt.Sprintf("%s:B%d", cs1.Name(), s))
		}
		// Edge members: down-port j to CS1 A-port m, up-port j to CS2
		// B-port m.
		for m, id := range eg.Members {
			add(fmt.Sprintf("%s:down%d", n.Name(id), j), fmt.Sprintf("%s:A%d", cs1.Name(), m))
			add(fmt.Sprintf("%s:up%d", n.Name(id), j), fmt.Sprintf("%s:B%d", cs2.Name(), m))
		}
		// Agg members: down-port j to CS2 A-port m, up-port j to CS3
		// B-port m.
		for m, id := range ag.Members {
			add(fmt.Sprintf("%s:down%d", n.Name(id), j), fmt.Sprintf("%s:A%d", cs2.Name(), m))
			add(fmt.Sprintf("%s:up%d", n.Name(id), j), fmt.Sprintf("%s:B%d", cs3.Name(), m))
		}
		// Core group j members: pod-facing port to CS3 A-port m.
		for m, id := range n.CoreGroup(j).Members {
			add(fmt.Sprintf("%s:pod%d", n.Name(id), pod), fmt.Sprintf("%s:A%d", cs3.Name(), m))
		}
	}
	// Side-port rings per layer (Figure 4): CS_j side1 <-> CS_{j+1} side0.
	for layer := 1; layer <= 3; layer++ {
		ring := n.SideRing(layer, pod)
		for j := range ring {
			next := ring[(j+1)%len(ring)]
			add(fmt.Sprintf("%s:side1", ring[j].Name()), fmt.Sprintf("%s:side0", next.Name()))
		}
	}
	sort.Slice(cables, func(i, j int) bool {
		if cables[i].From != cables[j].From {
			return cables[i].From < cables[j].From
		}
		return cables[i].To < cables[j].To
	})
	return cables, nil
}

// ExpectedCablesPerPod returns the manifest size the architecture predicts:
// per each of the k/2 circuit switches in each of the 3 layers —
// (k/2 + n) member cables plus k/2 attachments on the other side (hosts for
// layer 1, agg members arrive via their own row for layer 2, cores for
// layer 3) — plus 3 side rings of k/2 cables. Used by tests to pin the
// manifest against the cost model's accounting.
func (n *Network) ExpectedCablesPerPod() int {
	half, gsz := n.half, n.gsz
	perJ := half + gsz + // layer 1: hosts + edge down-ports (incl. backups)
		gsz + gsz + // layer 2: edge up-ports + agg down-ports
		gsz + gsz // layer 3: agg up-ports + core pod-ports (incl. backup cores)
	return half*perJ + 3*half
}

// WriteWiring renders the manifest as "from -> to" lines.
func WriteWiring(w io.Writer, cables []Cable) error {
	for _, c := range cables {
		if _, err := fmt.Fprintf(w, "%-24s -> %s\n", c.From, c.To); err != nil {
			return err
		}
	}
	return nil
}

// VerifyWiring cross-checks a manifest: every endpoint appears exactly once
// (physical ports hold one cable), and the counts match
// ExpectedCablesPerPod.
func (n *Network) VerifyWiring(pod int) error {
	cables, err := n.WiringManifest(pod)
	if err != nil {
		return err
	}
	if got, want := len(cables), n.ExpectedCablesPerPod(); got != want {
		return fmt.Errorf("sbnet: pod %d manifest has %d cables, architecture predicts %d", pod, got, want)
	}
	seen := make(map[string]string, 2*len(cables))
	for _, c := range cables {
		for _, ep := range []string{c.From, c.To} {
			if prev, dup := seen[ep]; dup {
				return fmt.Errorf("sbnet: port %s wired twice (%s and %s)", ep, prev, c.From+"->"+c.To)
			}
			seen[ep] = c.From + "->" + c.To
		}
	}
	return nil
}
