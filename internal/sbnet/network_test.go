package sbnet

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/topo"
)

func newNet(t *testing.T, k, n int) *Network {
	t.Helper()
	net, err := New(Config{K: k, N: n, Tech: circuit.Crosspoint})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{K: 3, N: 1}); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := New(Config{K: 2, N: 1}); err == nil {
		t.Error("k=2 accepted")
	}
	if _, err := New(Config{K: 4, N: -1}); err == nil {
		t.Error("negative n accepted")
	}
	// Section 5.3: k/2 + n + 2 <= 32 for 2D MEMS. k=58, n=1 fits exactly;
	// k=60 does not.
	if _, err := New(Config{K: 58, N: 1, Tech: circuit.MEMS2D}); err != nil {
		t.Errorf("k=58 n=1 should fit 32-port MEMS: %v", err)
	}
	if _, err := New(Config{K: 60, N: 1, Tech: circuit.MEMS2D}); err == nil {
		t.Error("k=60 n=1 exceeds 32-port MEMS but was accepted")
	}
}

func TestConstructionCounts(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{4, 0}, {4, 1}, {6, 1}, {8, 2}} {
		net := newNet(t, tc.k, tc.n)
		half := tc.k / 2
		gsz := half + tc.n
		if got, want := net.NumGroups(), 5*tc.k/2; got != want {
			t.Errorf("k=%d n=%d: groups = %d, want %d (5k/2)", tc.k, tc.n, got, want)
		}
		// Table 2 accounting: 5/4 k^2 regular switches + 5/2 k n backups.
		wantSwitches := 2*tc.k*gsz + half*gsz
		if got := net.NumSwitches(); got != wantSwitches {
			t.Errorf("k=%d n=%d: switches = %d, want %d", tc.k, tc.n, got, wantSwitches)
		}
		if got, want := net.NumCircuitSwitches(), 3*tc.k*half; got != want {
			t.Errorf("k=%d n=%d: circuit switches = %d, want %d (3k/2 per pod)", tc.k, tc.n, got, want)
		}
		if err := net.CheckInvariants(); err != nil {
			t.Errorf("k=%d n=%d: fresh network violates invariants: %v", tc.k, tc.n, err)
		}
		backups := 0
		for _, g := range net.Groups() {
			backups += len(net.FreeBackups(g.ID))
		}
		if want := 5 * tc.k / 2 * tc.n; backups != want {
			t.Errorf("k=%d n=%d: free backups = %d, want %d (5kn/2)", tc.k, tc.n, backups, want)
		}
	}
}

func TestNames(t *testing.T) {
	net := newNet(t, 6, 1)
	eg := net.EdgeGroup(1)
	if got := net.Name(eg.Members[0]); got != "E1,0" {
		t.Errorf("edge name = %q", got)
	}
	if got := net.Name(eg.Members[3]); got != "BS1,1,0" {
		t.Errorf("edge backup name = %q", got)
	}
	ag := net.AggGroup(2)
	if got := net.Name(ag.Members[2]); got != "A2,2" {
		t.Errorf("agg name = %q", got)
	}
	cg := net.CoreGroup(1)
	// Core group t=1 member s is C_{s*k/2 + t}: member 2 -> C7.
	if got := net.Name(cg.Members[2]); got != "C7" {
		t.Errorf("core name = %q", got)
	}
	if got := net.Name(cg.Members[3]); got != "BS3,1,0" {
		t.Errorf("core backup name = %q", got)
	}
}

func TestGroupOfCore(t *testing.T) {
	net := newNet(t, 6, 1)
	// C7 = slot 2 of group t=1 (7 = 2*3 + 1).
	g, slot := net.GroupOfCore(7)
	if g.Index != 1 || slot != 2 {
		t.Errorf("GroupOfCore(7) = group %d slot %d, want group 1 slot 2", g.Index, slot)
	}
	if name := net.Name(g.slots[slot]); name != "C7" {
		t.Errorf("occupant of C7's slot = %s", name)
	}
}

func TestReplaceEdge(t *testing.T) {
	net := newNet(t, 6, 1)
	eg := net.EdgeGroup(2)
	failed := eg.Members[1] // E2,1
	backup, d, err := net.Replace(failed)
	if err != nil {
		t.Fatal(err)
	}
	if net.Name(backup) != "BS1,2,0" {
		t.Errorf("chose backup %s", net.Name(backup))
	}
	if d != 70*time.Nanosecond {
		t.Errorf("recovery reconfiguration delay = %v, want one crosspoint delay", d)
	}
	if got := net.Switch(failed).Role; got != RoleOffline {
		t.Errorf("failed switch role = %v", got)
	}
	if sw := net.Switch(backup); sw.Role != RoleActive || sw.Slot != 1 {
		t.Errorf("backup switch role=%v slot=%d", sw.Role, sw.Slot)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("invariants after edge replacement: %v", err)
	}
	// The hosts of rack 1 are now served by the backup.
	serving, err := net.EdgeServingRack(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if serving != backup {
		t.Errorf("rack 1 served by %s, want %s", net.Name(serving), net.Name(backup))
	}
	if len(net.FreeBackups(eg.ID)) != 0 {
		t.Error("backup pool should be exhausted")
	}
}

func TestReplaceAgg(t *testing.T) {
	net := newNet(t, 6, 2)
	ag := net.AggGroup(0)
	failed := ag.Members[2] // A0,2
	backup, _, err := net.Replace(failed)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("invariants after agg replacement: %v", err)
	}
	if net.ActiveAt(ag.ID, 2) != backup {
		t.Error("slot 2 not taken over by backup")
	}
}

func TestReplaceCore(t *testing.T) {
	net := newNet(t, 6, 1)
	g, slot := net.GroupOfCore(4) // C4: group t=1, slot 1
	failed := g.slots[slot]
	backup, _, err := net.Replace(failed)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("invariants after core replacement: %v", err)
	}
	if net.ActiveAt(g.ID, slot) != backup {
		t.Error("core slot not taken over")
	}
	// Core replacement must touch CS3 in every pod: each CS3[pod][1] has
	// one extra reconfiguration beyond the initial one.
	for pod := 0; pod < 6; pod++ {
		if got := net.CS3(pod, 1).Reconfigs(); got != 2 {
			t.Errorf("CS3[%d][1] reconfigs = %d, want 2", pod, got)
		}
		if got := net.CS3(pod, 0).Reconfigs(); got != 1 {
			t.Errorf("CS3[%d][0] reconfigs = %d, want 1 (untouched)", pod, got)
		}
	}
}

func TestReplaceErrors(t *testing.T) {
	net := newNet(t, 4, 1)
	eg := net.EdgeGroup(0)
	ag := net.AggGroup(0)
	// Backup is not active: cannot be "failed over from".
	if _, err := net.ReplaceWith(eg.Members[2], eg.Members[2]); err == nil {
		t.Error("replacing a backup accepted")
	}
	// Target must be a free backup.
	if _, err := net.ReplaceWith(eg.Members[0], eg.Members[1]); err == nil {
		t.Error("active switch used as backup")
	}
	// Cross-group replacement is physically impossible.
	if _, err := net.ReplaceWith(eg.Members[0], ag.Members[2]); err == nil {
		t.Error("cross-group replacement accepted")
	}
}

func TestCapacityExhaustionAndRelease(t *testing.T) {
	// Section 5.1: a failure group tolerates n concurrent failures; the
	// n+1-th finds no backup. Releasing a repaired switch restores
	// capacity.
	net := newNet(t, 8, 2)
	g := net.AggGroup(3)
	var replaced []SwitchID
	for i := 0; i < 2; i++ {
		failed := g.slots[i]
		if _, _, err := net.Replace(failed); err != nil {
			t.Fatalf("failure %d: %v", i, err)
		}
		replaced = append(replaced, failed)
	}
	if _, _, err := net.Replace(g.slots[2]); !errors.Is(err, ErrNoBackup) {
		t.Fatalf("3rd concurrent failure: err = %v, want ErrNoBackup", err)
	}
	// Repair one switch: it becomes a backup (not active) and the next
	// failure can be recovered.
	if err := net.Release(replaced[0]); err != nil {
		t.Fatal(err)
	}
	if got := net.Switch(replaced[0]).Role; got != RoleBackup {
		t.Errorf("released switch role = %v, want backup", got)
	}
	b, _, err := net.Replace(g.slots[2])
	if err != nil {
		t.Fatal(err)
	}
	if b != replaced[0] {
		t.Errorf("recovery used %s, want the repaired switch", net.Name(b))
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := net.Release(g.slots[0]); err == nil {
		t.Error("releasing an active switch accepted")
	}
}

func TestLinkFailureReplacesBothEnds(t *testing.T) {
	// Section 4.1: for fast recovery both sides of a failed link are
	// replaced, consuming one backup in each group.
	net := newNet(t, 6, 1)
	edge := net.EdgeGroup(4).slots[0]
	agg := net.AggGroup(4).slots[2]
	if _, _, err := net.Replace(edge); err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.Replace(agg); err != nil {
		t.Fatal(err)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("invariants after double replacement: %v", err)
	}
	if len(net.FreeBackups(net.EdgeGroup(4).ID)) != 0 || len(net.FreeBackups(net.AggGroup(4).ID)) != 0 {
		t.Error("both groups should have consumed their backup")
	}
}

func TestEdgeServingRackSplitDetection(t *testing.T) {
	net := newNet(t, 4, 1)
	// Manually wedge one CS1 so rack 0's circuits disagree.
	if _, err := net.CS1(0, 1).Connect(2, 0); err != nil { // A=backup member, B=rack 0
		t.Fatal(err)
	}
	if _, err := net.EdgeServingRack(0, 0); err == nil {
		t.Error("split rack not detected")
	}
}

func TestInterfaceHealthOracle(t *testing.T) {
	net := newNet(t, 4, 1)
	id := net.EdgeGroup(0).Members[0]
	if !net.InterfaceUp(id, 0) {
		t.Error("fresh interface down")
	}
	if err := net.InjectPortFailure(id, 3); err != nil {
		t.Fatal(err)
	}
	if net.InterfaceUp(id, 3) {
		t.Error("failed port reported up")
	}
	if !net.InterfaceUp(id, 0) {
		t.Error("unrelated port reported down")
	}
	net.InjectNodeFailure(id)
	if net.InterfaceUp(id, 0) {
		t.Error("port on failed node reported up")
	}
	if err := net.InjectPortFailure(id, 99); err == nil {
		t.Error("out-of-range port accepted")
	}
}

func TestLogicalFatTreeInvariant(t *testing.T) {
	// Table 3's "no bandwidth loss / no path dilation" rests on the
	// logical topology being invariant under replacement.
	net := newNet(t, 4, 1)
	before, err := net.LogicalFatTree(1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, failed := range []SwitchID{
		net.EdgeGroup(0).slots[0],
		net.AggGroup(2).slots[1],
		net.CoreGroup(1).slots[0],
	} {
		if _, _, err := net.Replace(failed); err != nil {
			t.Fatal(err)
		}
	}
	after, err := net.LogicalFatTree(1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if before.NumNodes() != after.NumNodes() || before.NumLinks() != after.NumLinks() {
		t.Fatal("logical topology changed size after replacements")
	}
	for i := range before.Links {
		if before.Links[i] != after.Links[i] {
			t.Fatalf("logical link %d changed after replacements", i)
		}
	}
}

func TestBackupRatio(t *testing.T) {
	net := newNet(t, 48, 1)
	if got := net.BackupRatio(); got < 0.0416 || got > 0.0417 {
		t.Errorf("backup ratio k=48 n=1 = %v, want ~4.17%%", got)
	}
}

func TestRandomReplacementStress(t *testing.T) {
	// Drive random failures and repairs across every group kind and check
	// full invariants after each step. This is the architecture's core
	// safety property.
	rng := rand.New(rand.NewSource(7))
	net := newNet(t, 6, 2)
	var offline []SwitchID
	for step := 0; step < 300; step++ {
		if len(offline) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(offline))
			if err := net.Release(offline[i]); err != nil {
				t.Fatalf("step %d release: %v", step, err)
			}
			offline = append(offline[:i], offline[i+1:]...)
		} else {
			g := &net.Groups()[rng.Intn(net.NumGroups())]
			victim := g.slots[rng.Intn(len(g.slots))]
			_, _, err := net.Replace(victim)
			if errors.Is(err, ErrNoBackup) {
				continue // group exhausted; acceptable
			}
			if err != nil {
				t.Fatalf("step %d replace: %v", step, err)
			}
			offline = append(offline, victim)
		}
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("step %d: invariants violated: %v", step, err)
		}
	}
}

func TestSideRing(t *testing.T) {
	net := newNet(t, 4, 1)
	for layer := 1; layer <= 3; layer++ {
		ring := net.SideRing(layer, 0)
		if len(ring) != 2 {
			t.Errorf("layer %d ring has %d switches, want k/2", layer, len(ring))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SideRing(0, 0) did not panic")
		}
	}()
	net.SideRing(0, 0)
}

func TestKindOfGroups(t *testing.T) {
	net := newNet(t, 4, 0)
	if net.EdgeGroup(0).Kind != topo.KindEdge {
		t.Error("edge group kind wrong")
	}
	if net.AggGroup(0).Kind != topo.KindAgg {
		t.Error("agg group kind wrong")
	}
	if net.CoreGroup(0).Kind != topo.KindCore {
		t.Error("core group kind wrong")
	}
	// With n=0 there are no backups; any replacement must fail.
	if _, _, err := net.Replace(net.EdgeGroup(0).slots[0]); !errors.Is(err, ErrNoBackup) {
		t.Errorf("n=0 replacement err = %v, want ErrNoBackup", err)
	}
}
