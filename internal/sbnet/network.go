// Package sbnet builds the ShareBackup physical architecture of Section 3 of
// the paper: a k-ary fat-tree whose packet switches are clustered into
// failure groups of k/2 switches sharing n backup switches, with small
// circuit switches inserted between every adjacent pair of layers (and
// between hosts and edge switches) so that a backup switch can be brought
// online to take over any failed switch's exact physical position.
//
// The package distinguishes logical positions from physical switches. A
// failure group has k/2 logical slots — the fat-tree positions E_{i,j},
// A_{i,j}, C_j — and k/2+n physical switches. Each slot is occupied by
// exactly one active physical switch; the remainder are backups or offline.
// Circuit-switch configurations encode the occupancy, and because repaired
// switches stay in the backup pool (Section 4.2), the mapping drifts over
// time while the logical topology never changes.
package sbnet

import (
	"fmt"

	"sharebackup/internal/circuit"
	"sharebackup/internal/obs"
	"sharebackup/internal/topo"
)

// SwitchID identifies a physical packet switch (regular or backup) in the
// network. IDs are dense and index internal tables.
type SwitchID int32

// NoSwitch is the sentinel for "no switch".
const NoSwitch SwitchID = -1

// GroupID identifies a failure group.
type GroupID int32

// Role is the current role of a physical switch.
type Role uint8

const (
	// RoleActive means the switch occupies a logical slot and carries
	// traffic.
	RoleActive Role = iota
	// RoleBackup means the switch is a hot standby with routing state
	// preloaded and all circuit-switch ports unconnected.
	RoleBackup
	// RoleOffline means the switch is failed, under diagnosis, or in
	// repair, and is unavailable for failover.
	RoleOffline
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleActive:
		return "active"
	case RoleBackup:
		return "backup"
	case RoleOffline:
		return "offline"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// PhysSwitch is a physical packet switch.
type PhysSwitch struct {
	ID    SwitchID
	Kind  topo.Kind // KindEdge, KindAgg or KindCore
	Group GroupID
	// Member is the switch's fixed index within its failure group
	// (0..k/2+n-1). It determines which circuit-switch ports the switch
	// is hard-wired to; it never changes.
	Member int
	// Slot is the logical slot the switch currently occupies, or -1 when
	// it is not active.
	Slot int
	Role Role
	// Healthy is the ground-truth node health used by failure injection
	// and diagnosis oracles. The controller cannot read it directly; it
	// learns health through keep-alives and probes.
	Healthy bool
	// PortHealthy is per-interface ground truth, indexed by port number:
	// edge/agg switches have k/2 down ports then k/2 up ports; core
	// switches have k pod-facing ports.
	PortHealthy []bool
}

// Name renders a stable human-readable name: the original fat-tree notation
// for initially active switches and the paper's BS notation for backups.
func (n *Network) Name(id SwitchID) string {
	sw := &n.switches[id]
	g := &n.groups[sw.Group]
	if sw.Member < n.half {
		switch sw.Kind {
		case topo.KindEdge:
			return fmt.Sprintf("E%d,%d", g.Pod, sw.Member)
		case topo.KindAgg:
			return fmt.Sprintf("A%d,%d", g.Pod, sw.Member)
		case topo.KindCore:
			return fmt.Sprintf("C%d", sw.Member*n.half+g.Index)
		}
	}
	layer := map[topo.Kind]int{topo.KindEdge: 1, topo.KindAgg: 2, topo.KindCore: 3}[sw.Kind]
	return fmt.Sprintf("BS%d,%d,%d", layer, g.Index, sw.Member-n.half)
}

// Group is a failure group: k/2 logical slots shared among k/2+n physical
// switches and n backups.
type Group struct {
	ID   GroupID
	Kind topo.Kind
	// Pod is the pod the group lives in for edge and aggregation groups,
	// and -1 for core groups.
	Pod int
	// Index identifies the group within its layer: the pod number for
	// edge/agg groups, the core column t (cores C_j with j mod k/2 == t)
	// for core groups.
	Index int
	// Members lists the group's physical switches in member-index order.
	Members []SwitchID
	// slots maps logical slot -> active physical switch.
	slots []SwitchID
}

// Slots returns a copy of the slot occupancy (logical slot -> physical
// switch).
func (g *Group) Slots() []SwitchID { return append([]SwitchID(nil), g.slots...) }

// Config parameterizes a ShareBackup network.
type Config struct {
	// K is the fat-tree parameter (even, >= 4).
	K int
	// N is the number of backup switches per failure group (>= 0).
	N int
	// Tech is the circuit-switch technology; it bounds scalability via
	// k/2 + n + 2 <= Tech.PortLimit() (Section 5.3).
	Tech circuit.Technology
}

// Network is a built ShareBackup network.
type Network struct {
	cfg  Config
	half int // k/2
	gsz  int // switches per group: k/2 + n
	psz  int // circuit-switch ports per side: k/2 + n + 2

	switches []PhysSwitch
	groups   []Group

	// Circuit switches: cs1[pod][j] between hosts and edge switches,
	// cs2[pod][j] between edge and aggregation, cs3[pod][t] between
	// aggregation and the t-th core failure group.
	cs1 [][]*circuit.Switch
	cs2 [][]*circuit.Switch
	cs3 [][]*circuit.Switch

	// augmentOf tracks idle-backup augmentations (extension.go): each
	// augmented backup maps to its circuited partner.
	augmentOf map[SwitchID]SwitchID

	// bus, when set, receives circuit-reconfiguration events for switch
	// replacement operations. Nil-safe: the zero Network emits nothing
	// and pays one nil check per replacement.
	bus *obs.Bus
}

// SetObserver attaches an event bus for switch-replacement events. A nil
// bus disables emission.
func (n *Network) SetObserver(bus *obs.Bus) { n.bus = bus }

// New builds a ShareBackup network with straight-through initial circuit
// configurations: physical switch m occupies logical slot m for m < k/2, and
// members k/2..k/2+n-1 are backups with unconnected ports.
func New(cfg Config) (*Network, error) {
	if cfg.K < 4 || cfg.K%2 != 0 {
		return nil, fmt.Errorf("sbnet: k=%d must be even and >= 4", cfg.K)
	}
	if cfg.N < 0 {
		return nil, fmt.Errorf("sbnet: n=%d must be non-negative", cfg.N)
	}
	half := cfg.K / 2
	psz := half + cfg.N + 2
	if limit := cfg.Tech.PortLimit(); psz > limit {
		return nil, fmt.Errorf("sbnet: k/2+n+2 = %d exceeds %v port limit %d (Section 5.3 scalability bound)",
			psz, cfg.Tech, limit)
	}
	n := &Network{cfg: cfg, half: half, gsz: half + cfg.N, psz: psz}

	// Failure groups: k edge groups, k agg groups, k/2 core groups.
	addGroup := func(kind topo.Kind, pod, index int) GroupID {
		id := GroupID(len(n.groups))
		n.groups = append(n.groups, Group{ID: id, Kind: kind, Pod: pod, Index: index})
		return id
	}
	for pod := 0; pod < cfg.K; pod++ {
		addGroup(topo.KindEdge, pod, pod)
	}
	for pod := 0; pod < cfg.K; pod++ {
		addGroup(topo.KindAgg, pod, pod)
	}
	for t := 0; t < half; t++ {
		addGroup(topo.KindCore, -1, t)
	}

	// Physical switches, group by group.
	for gi := range n.groups {
		g := &n.groups[gi]
		g.slots = make([]SwitchID, half)
		ports := cfg.K // edge/agg: k/2 down + k/2 up; core: k pod ports
		for m := 0; m < n.gsz; m++ {
			id := SwitchID(len(n.switches))
			sw := PhysSwitch{
				ID: id, Kind: g.Kind, Group: g.ID, Member: m,
				Slot: -1, Role: RoleBackup, Healthy: true,
				PortHealthy: make([]bool, ports),
			}
			for p := range sw.PortHealthy {
				sw.PortHealthy[p] = true
			}
			if m < half {
				sw.Slot = m
				sw.Role = RoleActive
				g.slots[m] = id
			}
			n.switches = append(n.switches, sw)
			g.Members = append(g.Members, id)
		}
	}

	// Circuit switches and their initial configurations.
	var err error
	mk := func(layer int, pod, j int) *circuit.Switch {
		s, e := circuit.New(fmt.Sprintf("CS%d,%d,%d", layer, pod, j), cfg.Tech, psz)
		if e != nil && err == nil {
			err = e
		}
		return s
	}
	n.cs1 = make([][]*circuit.Switch, cfg.K)
	n.cs2 = make([][]*circuit.Switch, cfg.K)
	n.cs3 = make([][]*circuit.Switch, cfg.K)
	for pod := 0; pod < cfg.K; pod++ {
		n.cs1[pod] = make([]*circuit.Switch, half)
		n.cs2[pod] = make([]*circuit.Switch, half)
		n.cs3[pod] = make([]*circuit.Switch, half)
		for j := 0; j < half; j++ {
			n.cs1[pod][j] = mk(1, pod, j)
			n.cs2[pod][j] = mk(2, pod, j)
			n.cs3[pod][j] = mk(3, pod, j)
		}
	}
	if err != nil {
		return nil, err
	}

	for pod := 0; pod < cfg.K; pod++ {
		for j := 0; j < half; j++ {
			// CS1: host j of rack s (B-port s) <-> edge member s
			// (A-port s): straight-through.
			var c1 []circuit.Change
			for s := 0; s < half; s++ {
				c1 = append(c1, circuit.Change{A: s, B: s})
			}
			if _, e := n.cs1[pod][j].Apply(c1); e != nil {
				return nil, e
			}
			// CS2: edge member s's up-port j (B-port s) <-> agg
			// member (s+j) mod k/2's down-port j (A-port): the
			// rotational wiring that realizes the full edge-agg
			// bipartite graph.
			var c2 []circuit.Change
			for s := 0; s < half; s++ {
				c2 = append(c2, circuit.Change{A: (s + j) % half, B: s})
			}
			if _, e := n.cs2[pod][j].Apply(c2); e != nil {
				return nil, e
			}
			// CS3 (t=j): agg member s's up-port t (B-port s) <->
			// core group t member s's pod port (A-port s):
			// straight-through, realizing A_{i,s} <-> C_{s*k/2+t}.
			var c3 []circuit.Change
			for s := 0; s < half; s++ {
				c3 = append(c3, circuit.Change{A: s, B: s})
			}
			if _, e := n.cs3[pod][j].Apply(c3); e != nil {
				return nil, e
			}
		}
	}
	return n, nil
}

// Cfg returns the network's configuration.
func (n *Network) Cfg() Config { return n.cfg }

// K returns the fat-tree parameter.
func (n *Network) K() int { return n.cfg.K }

// NBackups returns the per-group backup count n.
func (n *Network) NBackups() int { return n.cfg.N }

// NumSwitches returns the number of physical packet switches, including
// backups.
func (n *Network) NumSwitches() int { return len(n.switches) }

// NumGroups returns the number of failure groups (5k/2).
func (n *Network) NumGroups() int { return len(n.groups) }

// NumCircuitSwitches returns the number of circuit switches (3k/2 per pod).
func (n *Network) NumCircuitSwitches() int { return 3 * n.cfg.K * n.half }

// Switch returns the physical switch record.
func (n *Network) Switch(id SwitchID) *PhysSwitch { return &n.switches[id] }

// Group returns a failure group.
func (n *Network) Group(id GroupID) *Group { return &n.groups[id] }

// Groups returns all failure groups.
func (n *Network) Groups() []Group { return n.groups }

// EdgeGroup returns the edge failure group of a pod.
func (n *Network) EdgeGroup(pod int) *Group { return &n.groups[pod] }

// AggGroup returns the aggregation failure group of a pod.
func (n *Network) AggGroup(pod int) *Group { return &n.groups[n.cfg.K+pod] }

// CoreGroup returns the t-th core failure group (cores C_j with
// j mod k/2 == t).
func (n *Network) CoreGroup(t int) *Group { return &n.groups[2*n.cfg.K+t] }

// GroupOfCore returns the failure group of core C_j and its logical slot
// within the group.
func (n *Network) GroupOfCore(j int) (*Group, int) {
	return n.CoreGroup(j % n.half), j / n.half
}

// ActiveAt returns the physical switch occupying the given logical slot.
func (n *Network) ActiveAt(g GroupID, slot int) SwitchID { return n.groups[g].slots[slot] }

// FreeBackups returns the group's physical switches currently in RoleBackup.
func (n *Network) FreeBackups(g GroupID) []SwitchID {
	var out []SwitchID
	for _, id := range n.groups[g].Members {
		if n.switches[id].Role == RoleBackup {
			out = append(out, id)
		}
	}
	return out
}

// CS1 returns the layer-1 circuit switch CS_{1,pod,j} (hosts <-> edge).
func (n *Network) CS1(pod, j int) *circuit.Switch { return n.cs1[pod][j] }

// CS2 returns the layer-2 circuit switch CS_{2,pod,j} (edge <-> agg).
func (n *Network) CS2(pod, j int) *circuit.Switch { return n.cs2[pod][j] }

// CS3 returns the layer-3 circuit switch CS_{3,pod,t} (agg <-> core group t).
func (n *Network) CS3(pod, t int) *circuit.Switch { return n.cs3[pod][t] }

// SideRing returns the circuit switches of one layer in one pod in ring
// order; their side ports chain them for offline failure diagnosis (Fig 4).
// Layer must be 1, 2 or 3.
func (n *Network) SideRing(layer, pod int) []*circuit.Switch {
	switch layer {
	case 1:
		return n.cs1[pod]
	case 2:
		return n.cs2[pod]
	case 3:
		return n.cs3[pod]
	}
	panic(fmt.Sprintf("sbnet: SideRing: layer %d out of range", layer))
}

// TotalReconfigs sums reconfiguration events over all circuit switches.
func (n *Network) TotalReconfigs() int {
	sum := 0
	for pod := 0; pod < n.cfg.K; pod++ {
		for j := 0; j < n.half; j++ {
			sum += n.cs1[pod][j].Reconfigs() + n.cs2[pod][j].Reconfigs() + n.cs3[pod][j].Reconfigs()
		}
	}
	return sum
}
