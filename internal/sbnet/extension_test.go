package sbnet

import (
	"testing"

	"sharebackup/internal/circuit"
)

func TestActivateIdleBackups(t *testing.T) {
	net := newNet(t, 6, 1)
	aug, err := net.ActivateIdleBackups(0)
	if err != nil {
		t.Fatal(err)
	}
	if aug.Circuits != 3 {
		t.Errorf("circuits = %d, want k/2", aug.Circuits)
	}
	if aug.AddedFabricCapacity() != 3 {
		t.Errorf("fabric capacity = %d", aug.AddedFabricCapacity())
	}
	// The honest finding: none of it is host-reachable under two-level
	// routing.
	if aug.AddedHostBandwidth() != 0 {
		t.Errorf("host bandwidth = %v, want 0", aug.AddedHostBandwidth())
	}
	if net.AugmentedPartner(aug.EdgeSw) != aug.AggSw || net.AugmentedPartner(aug.AggSw) != aug.EdgeSw {
		t.Error("partner bookkeeping wrong")
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("invariants with augmentation: %v", err)
	}
	// Circuits actually exist on every layer-2 circuit switch.
	em := net.Switch(aug.EdgeSw).Member
	am := net.Switch(aug.AggSw).Member
	for j := 0; j < 3; j++ {
		if net.CS2(0, j).AOf(em) != am {
			t.Errorf("CS2[0][%d] missing augmentation circuit", j)
		}
	}
	// A second activation in the same pod has no free pair (n=1).
	if _, err := net.ActivateIdleBackups(0); err == nil {
		t.Error("second augmentation with exhausted backups accepted")
	}
	// Other pods unaffected.
	if _, err := net.ActivateIdleBackups(1); err != nil {
		t.Errorf("pod 1 augmentation failed: %v", err)
	}
	if _, err := net.ActivateIdleBackups(99); err == nil {
		t.Error("out-of-range pod accepted")
	}
}

func TestDeactivateIdleBackups(t *testing.T) {
	net := newNet(t, 6, 1)
	aug, err := net.ActivateIdleBackups(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.DeactivateIdleBackups(aug); err != nil {
		t.Fatal(err)
	}
	if net.AugmentedPartner(aug.EdgeSw) != NoSwitch {
		t.Error("partner bookkeeping not cleared")
	}
	em := net.Switch(aug.EdgeSw).Member
	for j := 0; j < 3; j++ {
		if net.CS2(2, j).AOf(em) != circuit.Unconnected {
			t.Errorf("CS2[2][%d] still has the augmentation circuit", j)
		}
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Double deactivation rejected.
	if _, err := net.DeactivateIdleBackups(aug); err == nil {
		t.Error("double deactivation accepted")
	}
	if _, err := net.DeactivateIdleBackups(nil); err == nil {
		t.Error("nil augmentation accepted")
	}
}

// TestFailoverStealsAugmentation is the guaranteed-fault-tolerance property:
// an augmented backup is still usable for recovery, and claiming it
// atomically tears the augmentation down.
func TestFailoverStealsAugmentation(t *testing.T) {
	net := newNet(t, 6, 1)
	aug, err := net.ActivateIdleBackups(0)
	if err != nil {
		t.Fatal(err)
	}
	// Fail an active aggregation switch; the only backup is the
	// augmented one.
	victim := net.AggGroup(0).Slots()[1]
	backup, _, err := net.Replace(victim)
	if err != nil {
		t.Fatalf("failover with augmented backup: %v", err)
	}
	if backup != aug.AggSw {
		t.Fatalf("failover used %s, want the augmented backup", net.Name(backup))
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("invariants after stealing augmentation: %v", err)
	}
	if net.AugmentedPartner(aug.EdgeSw) != NoSwitch || net.AugmentedPartner(aug.AggSw) != NoSwitch {
		t.Error("augmentation bookkeeping survived the steal")
	}
	// The partner edge backup is fully unconnected again and still
	// usable for an edge failover.
	edgeVictim := net.EdgeGroup(0).Slots()[0]
	if _, _, err := net.Replace(edgeVictim); err != nil {
		t.Fatalf("edge failover after steal: %v", err)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFailoverElsewhereKeepsAugmentation(t *testing.T) {
	net := newNet(t, 6, 2)
	aug, err := net.ActivateIdleBackups(1)
	if err != nil {
		t.Fatal(err)
	}
	// A replacement in the same pod using the OTHER backup must leave the
	// augmentation intact.
	victim := net.AggGroup(1).Slots()[0]
	free := net.FreeBackups(net.AggGroup(1).ID)
	var other SwitchID = NoSwitch
	for _, id := range free {
		if id != aug.AggSw {
			other = id
		}
	}
	if other == NoSwitch {
		t.Fatal("no unaugmented backup available")
	}
	if _, err := net.ReplaceWith(victim, other); err != nil {
		t.Fatal(err)
	}
	if net.AugmentedPartner(aug.EdgeSw) != aug.AggSw {
		t.Error("augmentation lost although its backup was not used")
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Core replacements never touch pod augmentations.
	if _, _, err := net.Replace(net.CoreGroup(0).Slots()[0]); err != nil {
		t.Fatal(err)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
