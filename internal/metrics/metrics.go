// Package metrics provides the small statistics and rendering toolkit the
// experiment harness uses: empirical CDFs, percentiles, and fixed-width
// tables/series matching the rows the paper's figures report.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds basic order statistics of a sample.
type Summary struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Summarize computes order statistics of xs. It returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
		Median: quantileSorted(s, 0.5),
		P90:    quantileSorted(s, 0.9),
		P99:    quantileSorted(s, 0.99),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	xs []float64 // sorted
}

// NewCDF builds an empirical CDF over the sample.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{xs: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.xs) }

// At returns P[X <= x].
func (c *CDF) At(x float64) float64 {
	if len(c.xs) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.xs))
}

// Inverse returns the smallest sample value v with P[X <= v] >= p.
func (c *CDF) Inverse(p float64) float64 {
	if len(c.xs) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.xs[0]
	}
	idx := int(math.Ceil(p*float64(len(c.xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.xs) {
		idx = len(c.xs) - 1
	}
	return c.xs[idx]
}

// Points returns up to n evenly spaced (x, P[X<=x]) points suitable for
// plotting the CDF curve.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.xs) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.xs) {
		n = len(c.xs)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * len(c.xs) / n
		if idx > len(c.xs) {
			idx = len(c.xs)
		}
		x := c.xs[idx-1]
		out = append(out, [2]float64{x, float64(idx) / float64(len(c.xs))})
	}
	return out
}

// Series is a named sequence of (x, y) points — one curve of a figure.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	XLabel string
	YLabel string
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Table renders aligned columns — the textual stand-in for the paper's
// tables and figure data.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with enough precision to be meaningful.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// RenderSeries renders one or more series sharing an x-axis as a table with
// one column per series. All series must have identical X values.
func RenderSeries(title string, series ...*Series) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("metrics: RenderSeries: no series")
	}
	n := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() != n {
			return "", fmt.Errorf("metrics: RenderSeries: series %q has %d points, want %d", s.Name, s.Len(), n)
		}
		for i := range s.X {
			if s.X[i] != series[0].X[i] {
				return "", fmt.Errorf("metrics: RenderSeries: series %q x-axis mismatch at %d", s.Name, i)
			}
		}
	}
	tbl := &Table{Title: title}
	xl := series[0].XLabel
	if xl == "" {
		xl = "x"
	}
	tbl.Headers = append(tbl.Headers, xl)
	for _, s := range series {
		tbl.Headers = append(tbl.Headers, s.Name)
	}
	for i := 0; i < n; i++ {
		cells := make([]interface{}, 0, len(series)+1)
		cells = append(cells, series[0].X[i])
		for _, s := range series {
			cells = append(cells, s.Y[i])
		}
		tbl.AddRow(cells...)
	}
	return tbl.String(), nil
}

// Ratio returns a/b, or NaN when b is zero — the safe division used for
// slowdowns and relative costs.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
