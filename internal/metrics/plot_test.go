package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestPlotRender(t *testing.T) {
	a := &Series{Name: "coflows", XLabel: "rate"}
	b := &Series{Name: "flows"}
	for i := 0; i <= 10; i++ {
		x := float64(i) / 10
		a.Add(x, 100*(1-math.Pow(1-x, 8)))
		b.Add(x, 100*x)
	}
	p := &Plot{Title: "Figure 1(a)"}
	out, err := p.Render(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1(a)", "* coflows", "o flows", "(rate)", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// The first line of the grid carries the y max (100).
	if !strings.Contains(out, "100 |") {
		t.Errorf("plot missing y-axis max:\n%s", out)
	}
}

func TestPlotLogScale(t *testing.T) {
	s := &Series{Name: "slowdown", XLabel: "percentile"}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i), math.Pow(10, float64(i)/25)) // 10^0 .. 10^4
	}
	p := &Plot{Title: "log", Log: true}
	out, err := p.Render(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "10000 |") {
		t.Errorf("log plot top label wrong:\n%s", out)
	}
}

func TestPlotRejectsEmpty(t *testing.T) {
	p := &Plot{}
	if _, err := p.Render(); err == nil {
		t.Error("no series accepted")
	}
	s := &Series{Name: "nan"}
	s.Add(math.NaN(), math.NaN())
	if _, err := p.Render(s); err == nil {
		t.Error("all-NaN series accepted")
	}
	lp := &Plot{Log: true}
	z := &Series{Name: "zero"}
	z.Add(1, 0)
	if _, err := lp.Render(z); err == nil {
		t.Error("log plot of non-positive values accepted")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	s := &Series{Name: "flat"}
	s.Add(1, 5)
	s.Add(2, 5)
	p := &Plot{}
	if _, err := p.Render(s); err != nil {
		t.Fatalf("constant series: %v", err)
	}
}

func TestPlotCDF(t *testing.T) {
	curves := map[string]*CDF{
		"fat-tree":    NewCDF([]float64{1, 1.2, 2, 5, 40}),
		"ShareBackup": NewCDF([]float64{1, 1, 1, 1, 1}),
	}
	out, err := PlotCDF("Figure 1(c)", 10, false, curves)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fat-tree") || !strings.Contains(out, "ShareBackup") {
		t.Errorf("CDF plot missing curves:\n%s", out)
	}
	if _, err := PlotCDF("empty", 5, false, nil); err == nil {
		t.Error("empty curve map accepted")
	}
	if _, err := PlotCDF("empty", 5, false, map[string]*CDF{"e": NewCDF(nil)}); err == nil {
		t.Error("empty CDFs accepted")
	}
}
