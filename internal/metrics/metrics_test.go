package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty Summarize.N = %d", empty.N)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {-1, 1}, {2, 10},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) != NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Inverse(0.5); got != 2 {
		t.Errorf("Inverse(0.5) = %v, want 2", got)
	}
	if got := c.Inverse(0); got != 1 {
		t.Errorf("Inverse(0) = %v, want 1", got)
	}
	if got := c.Inverse(1); got != 4 {
		t.Errorf("Inverse(1) = %v, want 4", got)
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.At(1)) || !math.IsNaN(c.Inverse(0.5)) {
		t.Error("empty CDF should return NaN")
	}
	if c.Points(5) != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestCDFPoints(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	c := NewCDF(xs)
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("Points(10) returned %d points", len(pts))
	}
	if pts[len(pts)-1][1] != 1 {
		t.Errorf("last point probability = %v, want 1", pts[len(pts)-1][1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] <= pts[i-1][1] {
			t.Errorf("Points not monotone at %d: %v -> %v", i, pts[i-1], pts[i])
		}
	}
	// Requesting more points than samples clamps.
	if got := len(NewCDF([]float64{1, 2}).Points(10)); got != 2 {
		t.Errorf("clamped Points = %d, want 2", got)
	}
}

func TestCDFPropertyMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		// CDF is monotone and hits 1 at the max.
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return c.At(sorted[len(sorted)-1]) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantilePropertyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		q := rng.Float64()
		v := Quantile(xs, q)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return v >= lo && v <= hi
	}
	for i := 0; i < 200; i++ {
		if !f() {
			t.Fatalf("quantile outside sample range on iteration %d", i)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "Demo", Headers: []string{"arch", "cost"}}
	tbl.AddRow("fat-tree", 12773376.0)
	tbl.AddRow("sharebackup", 0.0672)
	out := tbl.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "fat-tree") {
		t.Errorf("rendered table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Errorf("table has %d lines:\n%s", len(lines), out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3, "3"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "Inf"},
		{1234.56, "1234.6"},
		{1.5, "1.500"},
		{0.0672, "0.0672"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	a := &Series{Name: "ShareBackup", XLabel: "k"}
	b := &Series{Name: "AspenTree"}
	for _, k := range []float64{8, 16, 24} {
		a.Add(k, k/100)
		b.Add(k, k/10)
	}
	out, err := RenderSeries("Figure 5", a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 5", "ShareBackup", "AspenTree", "k"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered series missing %q:\n%s", want, out)
		}
	}
	// Mismatched series must be rejected.
	c := &Series{Name: "short"}
	c.Add(8, 1)
	if _, err := RenderSeries("bad", a, c); err == nil {
		t.Error("mismatched series length accepted")
	}
	d := &Series{Name: "shifted"}
	d.Add(9, 1)
	d.Add(16, 2)
	d.Add(24, 3)
	if _, err := RenderSeries("bad", a, d); err == nil {
		t.Error("mismatched series x-axis accepted")
	}
	if _, err := RenderSeries("empty"); err == nil {
		t.Error("empty series list accepted")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3); got != 2 {
		t.Errorf("Ratio = %v", got)
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("Ratio by zero should be NaN")
	}
}
