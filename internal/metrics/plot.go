package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders one or more series as an ASCII line chart — the harness's
// stand-in for the paper's figures. Each series is drawn with its own glyph;
// the y-axis is linear (use LogPlot for slowdown-style data).
type Plot struct {
	Title  string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	Log    bool
}

var plotGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the series. All series may have different x values; the
// x-axis spans their union.
func (p *Plot) Render(series ...*Series) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("metrics: Plot: no series")
	}
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if p.Log && y <= 0 {
				continue
			}
			total++
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			yv := y
			if p.Log {
				yv = math.Log10(y)
			}
			ymin, ymax = math.Min(ymin, yv), math.Max(ymax, yv)
		}
	}
	if total == 0 {
		return "", fmt.Errorf("metrics: Plot: no plottable points")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) || (p.Log && y <= 0) {
				continue
			}
			yv := y
			if p.Log {
				yv = math.Log10(y)
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round((yv-ymin)/(ymax-ymin)*float64(height-1)))
			if grid[row][col] == ' ' || grid[row][col] == glyph {
				grid[row][col] = glyph
			} else {
				grid[row][col] = '?' // overlapping series
			}
		}
	}

	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title)
		b.WriteByte('\n')
	}
	yLabel := func(v float64) string {
		if p.Log {
			return FormatFloat(math.Pow(10, v))
		}
		return FormatFloat(v)
	}
	top, bottom := yLabel(ymax), yLabel(ymin)
	labelW := len(top)
	if len(bottom) > labelW {
		labelW = len(bottom)
	}
	for r := 0; r < height; r++ {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%*s |", labelW, top)
		case height - 1:
			fmt.Fprintf(&b, "%*s |", labelW, bottom)
		default:
			fmt.Fprintf(&b, "%*s |", labelW, "")
		}
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%*s +%s\n", labelW, "", strings.Repeat("-", width))
	xl := series[0].XLabel
	if xl == "" {
		xl = "x"
	}
	fmt.Fprintf(&b, "%*s  %s%*s%s  (%s)\n", labelW, "",
		FormatFloat(xmin), width-len(FormatFloat(xmin))-len(FormatFloat(xmax)), "", FormatFloat(xmax), xl)
	for si, s := range series {
		fmt.Fprintf(&b, "%*s  %c %s\n", labelW, "", plotGlyphs[si%len(plotGlyphs)], s.Name)
	}
	return b.String(), nil
}

// PlotCDF renders one or more CDFs as curves on a shared chart, sampling
// each at up to `points` positions.
func PlotCDF(title string, points int, log bool, curves map[string]*CDF) (string, error) {
	if len(curves) == 0 {
		return "", fmt.Errorf("metrics: PlotCDF: no curves")
	}
	var series []*Series
	names := make([]string, 0, len(curves))
	for name := range curves {
		names = append(names, name)
	}
	// Deterministic ordering.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		c := curves[name]
		s := &Series{Name: name, XLabel: "value"}
		for _, pt := range c.Points(points) {
			s.Add(pt[0], 100*pt[1])
		}
		if s.Len() > 0 {
			series = append(series, s)
		}
	}
	if len(series) == 0 {
		return "", fmt.Errorf("metrics: PlotCDF: all curves empty")
	}
	p := &Plot{Title: title, Log: log}
	return p.Render(series...)
}
