// Package emu emulates packet forwarding over the *physical* ShareBackup
// network: packets traverse the actual circuit-switch state and are forwarded
// by whatever physical packet switch currently occupies each logical slot,
// using the preloaded failure-group tables of Section 4.3. It is the
// end-to-end proof of live impersonation: after any sequence of failovers,
// every packet must still be delivered on a shortest path, through the
// backup switches now holding the failed switches' slots.
//
// Port semantics. Physical switch ports are wired to circuit switches by
// index (a switch's j-th down/up port connects to the j-th circuit switch of
// the adjacent layer), while routing tables speak in logical fat-tree port
// numbers (routing.Port). Straight-through wiring makes the two coincide for
// host-edge, agg-core and core-pod ports; the rotational edge-agg wiring
// makes the translation slot-dependent: the switch occupying edge slot s
// reaches logical aggregation switch a through physical up-port (a-s) mod
// k/2, and the switch occupying agg slot a reaches logical edge e through
// physical down-port (a-e) mod k/2. The emulator applies exactly this
// translation, which is the port-indirection component of impersonation: the
// (TCAM) table contents stay common across the failure group, and the slot
// assignment fixes the rotation.
package emu

import (
	"fmt"

	"sharebackup/internal/circuit"
	"sharebackup/internal/routing"
	"sharebackup/internal/sbnet"
	"sharebackup/internal/topo"
)

// Host identifies a physical host: position `Pos` of rack `Rack` in `Pod`.
type Host struct {
	Pod  int
	Rack int
	Pos  int
}

// Addr returns the host's fat-tree address.
func (h Host) Addr(k int) (routing.Addr, error) {
	return routing.HostAddr(k, h.Pod, h.Rack, h.Pos)
}

// Hop is one step of a packet walk for tracing and assertions.
type Hop struct {
	// Where the packet is: a physical packet switch, or a host at the
	// ends of the walk.
	Switch sbnet.SwitchID // NoSwitch for host hops
	Host   *Host          // nil for switch hops
	// Slot is the logical slot the switch occupies (duplicated for
	// convenience in assertions).
	Slot int
}

// Emulator forwards packets over a ShareBackup network's physical state.
type Emulator struct {
	net  *sbnet.Network
	half int
	vlan []*routing.VLANTable // per pod, preloaded into every edge-group switch
	agg  []routing.Table      // per pod, preloaded into every agg-group switch
	core routing.Table        // preloaded into every core-group switch
}

// New builds an emulator with the Section 4.3 preloaded tables.
func New(net *sbnet.Network) (*Emulator, error) {
	k := net.K()
	e := &Emulator{net: net, half: k / 2}
	ct, err := routing.BuildCoreTable(k)
	if err != nil {
		return nil, err
	}
	e.core = ct
	for pod := 0; pod < k; pod++ {
		vt, err := routing.BuildVLANTable(k, pod)
		if err != nil {
			return nil, err
		}
		e.vlan = append(e.vlan, vt)
		at, err := routing.BuildAggTable(k, pod)
		if err != nil {
			return nil, err
		}
		e.agg = append(e.agg, at)
	}
	return e, nil
}

// Deliver walks a packet from src to dst through the physical network and
// returns the hops taken. The source host tags the packet with its rack's
// VLAN ID (the logical edge index); switches strip the tag on the way up.
func (e *Emulator) Deliver(src, dst Host) ([]Hop, error) {
	k := e.net.K()
	if err := e.checkHost(src); err != nil {
		return nil, err
	}
	if err := e.checkHost(dst); err != nil {
		return nil, err
	}
	dstAddr, err := dst.Addr(k)
	if err != nil {
		return nil, err
	}
	walk := []Hop{{Switch: sbnet.NoSwitch, Host: &src, Slot: -1}}

	// Host NIC -> CS1[pod][pos] B-port rack -> serving edge switch.
	cur, err := e.edgeFromHost(src)
	if err != nil {
		return nil, err
	}
	vlan := src.Rack
	tagged := true

	const maxHops = 8
	for hop := 0; hop < maxHops; hop++ {
		sw := e.net.Switch(cur)
		if sw.Role != sbnet.RoleActive {
			return walk, fmt.Errorf("emu: packet reached non-active switch %s", e.net.Name(cur))
		}
		walk = append(walk, Hop{Switch: cur, Slot: sw.Slot})
		switch sw.Kind {
		case topo.KindEdge:
			v := routing.Untagged
			if tagged {
				v = vlan
			}
			pod := e.net.Group(sw.Group).Pod
			port, ok := e.vlan[pod].Lookup(v, dstAddr)
			if !ok {
				return walk, fmt.Errorf("emu: %s: no route to %v (vlan %d)", e.net.Name(cur), dstAddr, v)
			}
			if int(port) < e.half {
				// Host port: delivery through CS1.
				h, err := e.hostFromEdge(cur, int(port))
				if err != nil {
					return walk, err
				}
				walk = append(walk, Hop{Switch: sbnet.NoSwitch, Host: &h, Slot: -1})
				if h != dst {
					return walk, fmt.Errorf("emu: delivered to %+v, want %+v", h, dst)
				}
				return walk, nil
			}
			// Logical agg target a; physical up-port (a - slot) mod k/2.
			a := int(port) - e.half
			j := ((a-sw.Slot)%e.half + e.half) % e.half
			next, err := e.aggFromEdge(cur, j)
			if err != nil {
				return walk, err
			}
			cur = next
			tagged = false
		case topo.KindAgg:
			pod := e.net.Group(sw.Group).Pod
			port, ok := e.agg[pod].Lookup(dstAddr)
			if !ok {
				return walk, fmt.Errorf("emu: %s: no route to %v", e.net.Name(cur), dstAddr)
			}
			if int(port) < e.half {
				// Logical edge target; physical down-port
				// (slot - e) mod k/2.
				ed := int(port)
				j := ((sw.Slot-ed)%e.half + e.half) % e.half
				next, err := e.edgeFromAgg(cur, j)
				if err != nil {
					return walk, err
				}
				cur = next
				continue
			}
			t := int(port) - e.half
			next, err := e.coreFromAgg(cur, t)
			if err != nil {
				return walk, err
			}
			cur = next
		case topo.KindCore:
			port, ok := e.core.Lookup(dstAddr)
			if !ok {
				return walk, fmt.Errorf("emu: %s: no route to %v", e.net.Name(cur), dstAddr)
			}
			next, err := e.aggFromCore(cur, int(port))
			if err != nil {
				return walk, err
			}
			cur = next
		}
	}
	return walk, fmt.Errorf("emu: packet exceeded %d hops", maxHops)
}

func (e *Emulator) checkHost(h Host) error {
	k := e.net.K()
	if h.Pod < 0 || h.Pod >= k || h.Rack < 0 || h.Rack >= e.half || h.Pos < 0 || h.Pos >= e.half {
		return fmt.Errorf("emu: host %+v out of range for k=%d", h, k)
	}
	return nil
}

// edgeFromHost resolves the physical switch serving the host through
// CS_{1,pod,pos}.
func (e *Emulator) edgeFromHost(h Host) (sbnet.SwitchID, error) {
	cs := e.net.CS1(h.Pod, h.Pos)
	m := cs.AOf(h.Rack)
	if m == circuit.Unconnected {
		return sbnet.NoSwitch, fmt.Errorf("emu: host %+v has no circuit on %s", h, cs.Name())
	}
	return e.net.EdgeGroup(h.Pod).Members[m], nil
}

// hostFromEdge resolves the host behind an edge switch's down-port.
func (e *Emulator) hostFromEdge(id sbnet.SwitchID, port int) (Host, error) {
	sw := e.net.Switch(id)
	pod := e.net.Group(sw.Group).Pod
	cs := e.net.CS1(pod, port)
	rack := cs.BOf(sw.Member)
	if rack == circuit.Unconnected {
		return Host{}, fmt.Errorf("emu: %s down-port %d has no circuit", e.net.Name(id), port)
	}
	return Host{Pod: pod, Rack: rack, Pos: port}, nil
}

// aggFromEdge crosses CS_{2,pod,j} upward from an edge switch.
func (e *Emulator) aggFromEdge(id sbnet.SwitchID, j int) (sbnet.SwitchID, error) {
	sw := e.net.Switch(id)
	pod := e.net.Group(sw.Group).Pod
	cs := e.net.CS2(pod, j)
	aggM := cs.AOf(sw.Member)
	if aggM == circuit.Unconnected {
		return sbnet.NoSwitch, fmt.Errorf("emu: %s up-port %d has no circuit on %s", e.net.Name(id), j, cs.Name())
	}
	return e.net.AggGroup(pod).Members[aggM], nil
}

// edgeFromAgg crosses CS_{2,pod,j} downward from an aggregation switch.
func (e *Emulator) edgeFromAgg(id sbnet.SwitchID, j int) (sbnet.SwitchID, error) {
	sw := e.net.Switch(id)
	pod := e.net.Group(sw.Group).Pod
	cs := e.net.CS2(pod, j)
	edgeM := cs.BOf(sw.Member)
	if edgeM == circuit.Unconnected {
		return sbnet.NoSwitch, fmt.Errorf("emu: %s down-port %d has no circuit on %s", e.net.Name(id), j, cs.Name())
	}
	return e.net.EdgeGroup(pod).Members[edgeM], nil
}

// coreFromAgg crosses CS_{3,pod,t} upward from an aggregation switch.
func (e *Emulator) coreFromAgg(id sbnet.SwitchID, t int) (sbnet.SwitchID, error) {
	sw := e.net.Switch(id)
	pod := e.net.Group(sw.Group).Pod
	cs := e.net.CS3(pod, t)
	coreM := cs.AOf(sw.Member)
	if coreM == circuit.Unconnected {
		return sbnet.NoSwitch, fmt.Errorf("emu: %s up-port %d has no circuit on %s", e.net.Name(id), t, cs.Name())
	}
	return e.net.CoreGroup(t).Members[coreM], nil
}

// aggFromCore crosses CS_{3,pod,t} downward from a core switch into `pod`.
func (e *Emulator) aggFromCore(id sbnet.SwitchID, pod int) (sbnet.SwitchID, error) {
	sw := e.net.Switch(id)
	t := e.net.Group(sw.Group).Index
	cs := e.net.CS3(pod, t)
	aggM := cs.BOf(sw.Member)
	if aggM == circuit.Unconnected {
		return sbnet.NoSwitch, fmt.Errorf("emu: %s pod-port %d has no circuit on %s", e.net.Name(id), pod, cs.Name())
	}
	return e.net.AggGroup(pod).Members[aggM], nil
}

// PathFingerprint is the logical identity of a packet walk: the (failure
// group, slot) pair of every packet-switch hop. It is invariant under
// failover — the physical switches change, the logical path must not.
type PathFingerprint struct {
	Kinds  []topo.Kind
	Groups []sbnet.GroupID
	Slots  []int
}

// Fingerprint summarizes the logical path of a walk.
func (e *Emulator) Fingerprint(walk []Hop) PathFingerprint {
	var fp PathFingerprint
	for _, h := range walk {
		if h.Switch == sbnet.NoSwitch {
			continue
		}
		sw := e.net.Switch(h.Switch)
		fp.Kinds = append(fp.Kinds, sw.Kind)
		fp.Groups = append(fp.Groups, sw.Group)
		fp.Slots = append(fp.Slots, h.Slot)
	}
	return fp
}

// Equal reports whether two fingerprints denote the same logical path.
func (a PathFingerprint) Equal(b PathFingerprint) bool {
	if len(a.Kinds) != len(b.Kinds) {
		return false
	}
	for i := range a.Kinds {
		if a.Kinds[i] != b.Kinds[i] || a.Groups[i] != b.Groups[i] || a.Slots[i] != b.Slots[i] {
			return false
		}
	}
	return true
}
