package emu

import (
	"math/rand"
	"testing"

	"sharebackup/internal/circuit"
	"sharebackup/internal/sbnet"
	"sharebackup/internal/topo"
)

func newEmu(t *testing.T, k, n int) (*Emulator, *sbnet.Network) {
	t.Helper()
	net, err := sbnet.New(sbnet.Config{K: k, N: n, Tech: circuit.Crosspoint})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	return e, net
}

func allHosts(k int) []Host {
	half := k / 2
	var out []Host
	for pod := 0; pod < k; pod++ {
		for rack := 0; rack < half; rack++ {
			for pos := 0; pos < half; pos++ {
				out = append(out, Host{Pod: pod, Rack: rack, Pos: pos})
			}
		}
	}
	return out
}

func wantSwitchHops(src, dst Host) int {
	switch {
	case src.Pod == dst.Pod && src.Rack == dst.Rack:
		return 1 // edge only
	case src.Pod == dst.Pod:
		return 3 // edge, agg, edge
	default:
		return 5 // edge, agg, core, agg, edge
	}
}

func TestDeliverAllPairsFreshNetwork(t *testing.T) {
	e, _ := newEmu(t, 4, 1)
	hosts := allHosts(4)
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			walk, err := e.Deliver(src, dst)
			if err != nil {
				t.Fatalf("Deliver(%+v, %+v): %v (walk %+v)", src, dst, err, walk)
			}
			fp := e.Fingerprint(walk)
			if got, want := len(fp.Kinds), wantSwitchHops(src, dst); got != want {
				t.Errorf("Deliver(%+v, %+v): %d switch hops, want %d", src, dst, got, want)
			}
		}
	}
}

func TestDeliverSameHostDifferentPositions(t *testing.T) {
	e, _ := newEmu(t, 6, 1)
	walk, err := e.Deliver(Host{Pod: 2, Rack: 1, Pos: 0}, Host{Pod: 2, Rack: 1, Pos: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Same rack: host, edge, host.
	if len(walk) != 3 {
		t.Errorf("same-rack walk = %d hops, want 3", len(walk))
	}
}

// TestImpersonationAfterFailover is the end-to-end Section 4.3 check: after
// replacing switches at every layer, every packet still delivers along the
// SAME logical path, now through the backup switches.
func TestImpersonationAfterFailover(t *testing.T) {
	e, net := newEmu(t, 4, 1)
	src := Host{Pod: 0, Rack: 0, Pos: 0}
	dst := Host{Pod: 2, Rack: 1, Pos: 1}
	before, err := e.Deliver(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	fpBefore := e.Fingerprint(before)

	// Fail every switch on the path: the source edge, the first agg, the
	// core, and the destination edge.
	var replaced []sbnet.SwitchID
	for _, h := range before {
		if h.Switch == sbnet.NoSwitch {
			continue
		}
		if net.Switch(h.Switch).Role != sbnet.RoleActive {
			continue // already replaced (shouldn't happen)
		}
		backup, _, err := net.Replace(h.Switch)
		if err != nil {
			t.Fatalf("replacing %s: %v", net.Name(h.Switch), err)
		}
		replaced = append(replaced, backup)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	after, err := e.Deliver(src, dst)
	if err != nil {
		t.Fatalf("delivery after full-path failover: %v", err)
	}
	fpAfter := e.Fingerprint(after)
	if !fpBefore.Equal(fpAfter) {
		t.Fatalf("logical path changed after failover:\nbefore %+v\nafter  %+v", fpBefore, fpAfter)
	}
	// The physical switches must now be the backups.
	usedBackup := 0
	for _, h := range after {
		if h.Switch == sbnet.NoSwitch {
			continue
		}
		for _, b := range replaced {
			if h.Switch == b {
				usedBackup++
			}
		}
	}
	if usedBackup != len(replaced) {
		t.Errorf("walk used %d of %d backups", usedBackup, len(replaced))
	}
}

// TestAllPairsAfterRandomChurn replaces and repairs switches randomly, then
// re-verifies full-mesh delivery with unchanged logical fingerprints.
func TestAllPairsAfterRandomChurn(t *testing.T) {
	e, net := newEmu(t, 4, 2)
	hosts := allHosts(4)

	// Record fingerprints on the fresh network.
	type pair struct{ a, b int }
	fps := make(map[pair]PathFingerprint)
	for i := range hosts {
		for j := range hosts {
			if i == j {
				continue
			}
			walk, err := e.Deliver(hosts[i], hosts[j])
			if err != nil {
				t.Fatal(err)
			}
			fps[pair{i, j}] = e.Fingerprint(walk)
		}
	}

	rng := rand.New(rand.NewSource(13))
	var offline []sbnet.SwitchID
	for step := 0; step < 60; step++ {
		if len(offline) > 0 && rng.Intn(2) == 0 {
			i := rng.Intn(len(offline))
			if err := net.Release(offline[i]); err != nil {
				t.Fatal(err)
			}
			offline = append(offline[:i], offline[i+1:]...)
			continue
		}
		g := net.Groups()[rng.Intn(net.NumGroups())]
		victim := g.Slots()[rng.Intn(len(g.Slots()))]
		if _, _, err := net.Replace(victim); err != nil {
			continue // pool exhausted; fine
		}
		offline = append(offline, victim)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	for i := range hosts {
		for j := range hosts {
			if i == j {
				continue
			}
			walk, err := e.Deliver(hosts[i], hosts[j])
			if err != nil {
				t.Fatalf("after churn, Deliver(%+v, %+v): %v", hosts[i], hosts[j], err)
			}
			if !fps[pair{i, j}].Equal(e.Fingerprint(walk)) {
				t.Fatalf("after churn, logical path changed for %+v -> %+v", hosts[i], hosts[j])
			}
		}
	}
}

func TestDeliverValidation(t *testing.T) {
	e, _ := newEmu(t, 4, 1)
	if _, err := e.Deliver(Host{Pod: 9, Rack: 0, Pos: 0}, Host{Pod: 0, Rack: 0, Pos: 1}); err == nil {
		t.Error("out-of-range src accepted")
	}
	if _, err := e.Deliver(Host{Pod: 0, Rack: 0, Pos: 0}, Host{Pod: 0, Rack: 5, Pos: 0}); err == nil {
		t.Error("out-of-range dst accepted")
	}
}

func TestFingerprintEqual(t *testing.T) {
	a := PathFingerprint{Kinds: []topo.Kind{topo.KindEdge}, Groups: []sbnet.GroupID{0}, Slots: []int{1}}
	b := PathFingerprint{Kinds: []topo.Kind{topo.KindEdge}, Groups: []sbnet.GroupID{0}, Slots: []int{1}}
	if !a.Equal(b) {
		t.Error("identical fingerprints unequal")
	}
	c := PathFingerprint{Kinds: []topo.Kind{topo.KindEdge}, Groups: []sbnet.GroupID{1}, Slots: []int{1}}
	if a.Equal(c) {
		t.Error("different groups equal")
	}
	d := PathFingerprint{}
	if a.Equal(d) {
		t.Error("different lengths equal")
	}
}
