package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickSnapshotRestoreIdentity: for any sequence of random operations,
// Snapshot followed by more operations followed by Restore reproduces the
// snapshot exactly.
func TestQuickSnapshotRestoreIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(14)
		s, err := New("q", Crosspoint, n)
		if err != nil {
			return false
		}
		mutate := func(steps int) bool {
			for i := 0; i < steps; i++ {
				switch r.Intn(2) {
				case 0:
					if _, err := s.Connect(r.Intn(n), r.Intn(n)); err != nil {
						return false
					}
				case 1:
					if _, err := s.DisconnectA(r.Intn(n)); err != nil {
						return false
					}
				}
			}
			return true
		}
		if !mutate(1 + r.Intn(20)) {
			return false
		}
		snap := s.Snapshot()
		if !mutate(1 + r.Intn(20)) {
			return false
		}
		if _, err := s.Restore(snap); err != nil {
			return false
		}
		for a := 0; a < n; a++ {
			if s.BOf(a) != snap[a] {
				return false
			}
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickApplyIsIdempotent: applying the same batch twice leaves the same
// configuration (the controller may re-send reconfiguration requests after a
// timeout; the crossbar must converge).
func TestQuickApplyIsIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(12)
		s, err := New("q", Crosspoint, n)
		if err != nil {
			return false
		}
		// A valid batch: distinct A ports, distinct B ports.
		perm := r.Perm(n)
		count := 1 + r.Intn(n-1)
		var batch []Change
		for i := 0; i < count; i++ {
			batch = append(batch, Change{A: i, B: perm[i]})
		}
		if _, err := s.Apply(batch); err != nil {
			return false
		}
		first := s.Snapshot()
		if _, err := s.Apply(batch); err != nil {
			return false
		}
		second := s.Snapshot()
		for i := range first {
			if first[i] != second[i] {
				return false
			}
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
