package circuit

import (
	"math/rand"
	"testing"
	"time"
)

func newSwitch(t *testing.T, n int) *Switch {
	t.Helper()
	s, err := New("cs", Crosspoint, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", Crosspoint, 0); err == nil {
		t.Error("zero ports accepted")
	}
	if _, err := New("x", Crosspoint, -3); err == nil {
		t.Error("negative ports accepted")
	}
	if _, err := New("x", MEMS2D, 33); err == nil {
		t.Error("MEMS switch beyond 32 ports accepted")
	}
	if _, err := New("x", MEMS2D, 32); err != nil {
		t.Errorf("32-port MEMS rejected: %v", err)
	}
	if _, err := New("x", Crosspoint, 256); err != nil {
		t.Errorf("256-port crosspoint rejected: %v", err)
	}
	if _, err := New("x", Crosspoint, 257); err == nil {
		t.Error("crosspoint beyond 256 ports accepted")
	}
}

func TestTechnologyConstants(t *testing.T) {
	if Crosspoint.ReconfigDelay() != 70*time.Nanosecond {
		t.Errorf("crosspoint delay = %v, want 70ns", Crosspoint.ReconfigDelay())
	}
	if MEMS2D.ReconfigDelay() != 40*time.Microsecond {
		t.Errorf("MEMS delay = %v, want 40µs", MEMS2D.ReconfigDelay())
	}
	if Crosspoint.String() != "crosspoint" || MEMS2D.String() != "2D-MEMS" {
		t.Error("technology names wrong")
	}
}

func TestConnectDisconnect(t *testing.T) {
	s := newSwitch(t, 8)
	if _, err := s.Connect(2, 5); err != nil {
		t.Fatal(err)
	}
	if s.BOf(2) != 5 || s.AOf(5) != 2 {
		t.Errorf("circuit not established: BOf(2)=%d AOf(5)=%d", s.BOf(2), s.AOf(5))
	}
	if s.BOf(0) != Unconnected {
		t.Error("untouched port connected")
	}
	if _, err := s.DisconnectA(2); err != nil {
		t.Fatal(err)
	}
	if s.BOf(2) != Unconnected || s.AOf(5) != Unconnected {
		t.Error("circuit not torn down")
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConnectStealsPorts(t *testing.T) {
	// Reconnecting a port atomically moves the circuit — this is exactly
	// the failover operation: B-side port of a host moves from the failed
	// switch's A-port to the backup's A-port.
	s := newSwitch(t, 8)
	if _, err := s.Connect(0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Connect(1, 3); err != nil { // B3 moves from A0 to A1
		t.Fatal(err)
	}
	if s.BOf(0) != Unconnected {
		t.Errorf("old circuit survived: BOf(0)=%d", s.BOf(0))
	}
	if s.BOf(1) != 3 || s.AOf(3) != 1 {
		t.Error("new circuit not established")
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestApplyBatchAtomicSwap(t *testing.T) {
	s := newSwitch(t, 4)
	if _, err := s.Apply([]Change{{0, 0}, {1, 1}}); err != nil {
		t.Fatal(err)
	}
	// Swap both circuits in one batch: A0<->B1, A1<->B0.
	if _, err := s.Apply([]Change{{0, 1}, {1, 0}}); err != nil {
		t.Fatalf("atomic swap rejected: %v", err)
	}
	if s.BOf(0) != 1 || s.BOf(1) != 0 {
		t.Errorf("swap not applied: %v %v", s.BOf(0), s.BOf(1))
	}
	if s.Reconfigs() != 2 {
		t.Errorf("reconfigs = %d, want 2", s.Reconfigs())
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestApplyErrors(t *testing.T) {
	s := newSwitch(t, 4)
	if _, err := s.Apply([]Change{{A: -1, B: 0}}); err == nil {
		t.Error("negative A port accepted")
	}
	if _, err := s.Apply([]Change{{A: 0, B: 4}}); err == nil {
		t.Error("out-of-range B port accepted")
	}
	if _, err := s.Apply([]Change{{0, 1}, {0, 2}}); err == nil {
		t.Error("duplicate A port in batch accepted")
	}
	if _, err := s.Apply([]Change{{0, 1}, {1, 1}}); err == nil {
		t.Error("duplicate B port in batch accepted")
	}
	if s.Reconfigs() != 0 {
		t.Errorf("failed batches counted as reconfigs: %d", s.Reconfigs())
	}
}

func TestFailedSwitchRejectsReconfiguration(t *testing.T) {
	s := newSwitch(t, 4)
	if _, err := s.Connect(0, 0); err != nil {
		t.Fatal(err)
	}
	s.Fail()
	if !s.Failed() {
		t.Error("Failed() = false after Fail()")
	}
	if _, err := s.Connect(1, 1); err == nil {
		t.Error("failed switch accepted reconfiguration")
	}
	// Configuration memory survives the failure.
	if s.BOf(0) != 0 {
		t.Error("failure erased circuits")
	}
	s.Repair()
	if _, err := s.Connect(1, 1); err != nil {
		t.Errorf("repaired switch rejected reconfiguration: %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := newSwitch(t, 6)
	for i := 0; i < 4; i++ {
		if _, err := s.Connect(i, i); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	// Scramble.
	if _, err := s.Apply([]Change{{0, 3}, {3, 0}, {1, Unconnected}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if s.BOf(i) != i {
			t.Errorf("after restore, BOf(%d) = %d, want %d", i, s.BOf(i), i)
		}
	}
	if s.BOf(4) != Unconnected {
		t.Error("restore connected a port that was free in the snapshot")
	}
	if _, err := s.Restore([]int{0}); err == nil {
		t.Error("short snapshot accepted")
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReconfigDelayAccounting(t *testing.T) {
	s, err := New("m", MEMS2D, 8)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := s.Connect(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != 40*time.Microsecond {
		t.Errorf("per-event delay = %v, want 40µs", d1)
	}
	if _, err := s.Connect(1, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalDelay(); got != 80*time.Microsecond {
		t.Errorf("total delay = %v, want 80µs", got)
	}
}

func TestCircuits(t *testing.T) {
	s := newSwitch(t, 5)
	if got := s.Circuits(); got != nil {
		t.Errorf("fresh switch has circuits: %v", got)
	}
	if _, err := s.Apply([]Change{{0, 4}, {2, 1}}); err != nil {
		t.Fatal(err)
	}
	got := s.Circuits()
	if len(got) != 2 || got[0] != (Change{0, 4}) || got[1] != (Change{2, 1}) {
		t.Errorf("Circuits = %v", got)
	}
}

// TestMatchingInvariantRandomOps drives a switch with random operations and
// checks the one-to-one matching invariant after every step.
func TestMatchingInvariantRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := newSwitch(t, 16)
	for i := 0; i < 2000; i++ {
		switch rng.Intn(3) {
		case 0:
			_, err := s.Connect(rng.Intn(16), rng.Intn(16))
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		case 1:
			if _, err := s.DisconnectA(rng.Intn(16)); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		case 2:
			batch := []Change{
				{A: rng.Intn(8), B: rng.Intn(16)},
				{A: 8 + rng.Intn(8), B: Unconnected},
			}
			if _, err := s.Apply(batch); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("op %d broke the matching: %v", i, err)
		}
		// No two A ports share a B port.
		seen := make(map[int]int)
		for a := 0; a < 16; a++ {
			b := s.BOf(a)
			if b == Unconnected {
				continue
			}
			if prev, dup := seen[b]; dup {
				t.Fatalf("op %d: B%d claimed by A%d and A%d", i, b, prev, a)
			}
			seen[b] = a
		}
	}
}
