// Package circuit models the small physical-layer circuit switches
// ShareBackup inserts between adjacent layers of packet switches (and between
// hosts and edge switches). A circuit switch is a crossbar: it joins ports on
// its A side to ports on its B side, one-to-one, and can be reconfigured at
// run time. Reconfiguration latency and port scale follow the two
// implementation technologies the paper prices: electrical crosspoint
// switches (XFabric, NSDI'16) and 2D MEMS optical switches.
package circuit

import (
	"fmt"
	"time"
)

// Technology selects the physical implementation of a circuit switch.
type Technology uint8

const (
	// Crosspoint is an electrical crosspoint switch: 70 ns
	// reconfiguration, scales to 256 ports, $3 per port.
	Crosspoint Technology = iota
	// MEMS2D is a 2D MEMS optical switch: 40 µs reconfiguration, scales
	// to 32 ports, $10 per port.
	MEMS2D
)

// String names the technology.
func (t Technology) String() string {
	switch t {
	case Crosspoint:
		return "crosspoint"
	case MEMS2D:
		return "2D-MEMS"
	default:
		return fmt.Sprintf("technology(%d)", uint8(t))
	}
}

// ReconfigDelay returns the circuit reconfiguration latency of the
// technology (Section 5.3 of the paper).
func (t Technology) ReconfigDelay() time.Duration {
	switch t {
	case Crosspoint:
		return 70 * time.Nanosecond
	case MEMS2D:
		return 40 * time.Microsecond
	default:
		return 0
	}
}

// PortLimit returns the maximum port count per side the technology scales
// to. ShareBackup's scalability bound is k/2 + n + 2 <= PortLimit.
func (t Technology) PortLimit() int {
	switch t {
	case Crosspoint:
		return 256
	case MEMS2D:
		return 32
	default:
		return 0
	}
}

// Unconnected marks a port with no internal circuit.
const Unconnected = -1

// Switch is an N-by-N circuit switch. A-side ports face one set of devices
// (e.g. packet switches of a failure group), B-side ports face another
// (e.g. hosts, or the layer below). Each port carries at most one circuit.
//
// Switch is not safe for concurrent use; the controller serializes access.
type Switch struct {
	name string
	tech Technology
	n    int

	aToB []int
	bToA []int

	failed     bool
	reconfigs  int           // number of reconfiguration events applied
	busyUntil  time.Duration // simulated-clock watermark (optional use)
	totalDelay time.Duration // cumulative reconfiguration latency
}

// New creates an n-port-per-side circuit switch with all ports unconnected.
func New(name string, tech Technology, n int) (*Switch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("circuit: switch %q: port count %d must be positive", name, n)
	}
	if limit := tech.PortLimit(); n > limit {
		return nil, fmt.Errorf("circuit: switch %q: %d ports exceeds %v limit of %d", name, n, tech, limit)
	}
	s := &Switch{name: name, tech: tech, n: n, aToB: make([]int, n), bToA: make([]int, n)}
	for i := 0; i < n; i++ {
		s.aToB[i] = Unconnected
		s.bToA[i] = Unconnected
	}
	return s, nil
}

// Name returns the switch's name.
func (s *Switch) Name() string { return s.name }

// Technology returns the implementation technology.
func (s *Switch) Technology() Technology { return s.tech }

// Ports returns the number of ports per side.
func (s *Switch) Ports() int { return s.n }

// Reconfigs returns the number of reconfiguration events applied so far.
func (s *Switch) Reconfigs() int { return s.reconfigs }

// TotalDelay returns the cumulative reconfiguration latency incurred.
func (s *Switch) TotalDelay() time.Duration { return s.totalDelay }

// Failed reports whether the switch is failed.
func (s *Switch) Failed() bool { return s.failed }

// Fail marks the switch failed. A failed switch keeps its circuits (light
// stops passing, but the configuration memory survives) and rejects
// reconfiguration until repaired.
func (s *Switch) Fail() { s.failed = true }

// Repair clears the failed state. Per Section 5.1, a rebooted circuit switch
// re-learns its configuration from the controller; callers are expected to
// follow Repair with an Apply of the authoritative configuration.
func (s *Switch) Repair() { s.failed = false }

// BOf returns the B-side port the A-side port a is circuited to, or
// Unconnected.
func (s *Switch) BOf(a int) int { return s.aToB[a] }

// AOf returns the A-side port the B-side port b is circuited to, or
// Unconnected.
func (s *Switch) AOf(b int) int { return s.bToA[b] }

func (s *Switch) checkPort(side string, p int) error {
	if p < 0 || p >= s.n {
		return fmt.Errorf("circuit: switch %q: %s-side port %d out of range [0,%d)", s.name, side, p, s.n)
	}
	return nil
}

// Change is one circuit assignment in a reconfiguration: connect A-side port
// A to B-side port B. Use B == Unconnected to tear down A's circuit only.
type Change struct {
	A int
	B int
}

// Apply atomically applies a batch of changes as a single reconfiguration
// event and returns the reconfiguration latency incurred (one technology
// delay regardless of batch size: crossbars reset all circuits in one
// operation). Ports being newly connected must be free or freed within the
// same batch; Apply first tears down every circuit touching a port named in
// the batch, then makes the new connections.
func (s *Switch) Apply(changes []Change) (time.Duration, error) {
	if s.failed {
		return 0, fmt.Errorf("circuit: switch %q: reconfiguration while failed", s.name)
	}
	for _, c := range changes {
		if err := s.checkPort("A", c.A); err != nil {
			return 0, err
		}
		if c.B != Unconnected {
			if err := s.checkPort("B", c.B); err != nil {
				return 0, err
			}
		}
	}
	// Reject two changes claiming the same port.
	seenA := make(map[int]bool, len(changes))
	seenB := make(map[int]bool, len(changes))
	for _, c := range changes {
		if seenA[c.A] {
			return 0, fmt.Errorf("circuit: switch %q: duplicate A-side port %d in batch", s.name, c.A)
		}
		seenA[c.A] = true
		if c.B != Unconnected {
			if seenB[c.B] {
				return 0, fmt.Errorf("circuit: switch %q: duplicate B-side port %d in batch", s.name, c.B)
			}
			seenB[c.B] = true
		}
	}
	// Tear down circuits touching any named port.
	for _, c := range changes {
		if old := s.aToB[c.A]; old != Unconnected {
			s.aToB[c.A] = Unconnected
			s.bToA[old] = Unconnected
		}
		if c.B != Unconnected {
			if old := s.bToA[c.B]; old != Unconnected {
				s.bToA[c.B] = Unconnected
				s.aToB[old] = Unconnected
			}
		}
	}
	// Make the new circuits.
	for _, c := range changes {
		if c.B == Unconnected {
			continue
		}
		s.aToB[c.A] = c.B
		s.bToA[c.B] = c.A
	}
	s.reconfigs++
	d := s.tech.ReconfigDelay()
	s.totalDelay += d
	return d, nil
}

// Connect is shorthand for a single-circuit Apply.
func (s *Switch) Connect(a, b int) (time.Duration, error) {
	return s.Apply([]Change{{A: a, B: b}})
}

// DisconnectA tears down the circuit on A-side port a, if any.
func (s *Switch) DisconnectA(a int) (time.Duration, error) {
	return s.Apply([]Change{{A: a, B: Unconnected}})
}

// Snapshot captures the current configuration for later Restore — the
// diagnosis engine uses this to try probe configurations and roll back.
func (s *Switch) Snapshot() []int {
	return append([]int(nil), s.aToB...)
}

// Restore applies a previously captured Snapshot as one reconfiguration
// event.
func (s *Switch) Restore(snap []int) (time.Duration, error) {
	if len(snap) != s.n {
		return 0, fmt.Errorf("circuit: switch %q: snapshot has %d ports, want %d", s.name, len(snap), s.n)
	}
	changes := make([]Change, 0, s.n)
	for a, b := range snap {
		changes = append(changes, Change{A: a, B: b})
	}
	return s.Apply(changes)
}

// Validate checks the internal A<->B mapping is a consistent partial
// matching. It returns nil for healthy state; a non-nil error indicates a
// bug in this package.
func (s *Switch) Validate() error {
	for a, b := range s.aToB {
		if b == Unconnected {
			continue
		}
		if b < 0 || b >= s.n {
			return fmt.Errorf("circuit: switch %q: A%d maps to out-of-range B%d", s.name, a, b)
		}
		if s.bToA[b] != a {
			return fmt.Errorf("circuit: switch %q: A%d->B%d but B%d->A%d", s.name, a, b, b, s.bToA[b])
		}
	}
	for b, a := range s.bToA {
		if a == Unconnected {
			continue
		}
		if s.aToB[a] != b {
			return fmt.Errorf("circuit: switch %q: B%d->A%d but A%d->B%d", s.name, b, a, a, s.aToB[a])
		}
	}
	return nil
}

// Circuits returns every live (A, B) circuit pair in A-port order.
func (s *Switch) Circuits() []Change {
	var out []Change
	for a, b := range s.aToB {
		if b != Unconnected {
			out = append(out, Change{A: a, B: b})
		}
	}
	return out
}
