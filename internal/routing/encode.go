package routing

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Binary serialization for the VLAN-combined failure-group table, used by
// the control plane to preload routing state into every switch of a failure
// group (Section 4.3: the backup switches are hot standbys because the
// combined table is already in their TCAM). The format is versioned and
// fixed-width:
//
//	u8  version (1)
//	u16 k, u16 pod
//	u16 inbound count, then per entry: u8 hostByte, u16 port
//	u16 vlan count, then per vlan: u16 vlanID, u16 entry count,
//	    then per entry: u8 hostByte, u16 port
//
// Prefix entries never occur in edge tables, so only suffix entries are
// encoded; the decoder rejects tables that would lose information.

const vlanTableVersion = 1

// MarshalBinary encodes the table.
func (vt *VLANTable) MarshalBinary() ([]byte, error) {
	if len(vt.Inbound.Prefixes) != 0 {
		return nil, fmt.Errorf("routing: combined table with prefix entries is not encodable")
	}
	var b []byte
	b = append(b, vlanTableVersion)
	b = binary.BigEndian.AppendUint16(b, uint16(vt.K))
	b = binary.BigEndian.AppendUint16(b, uint16(vt.Pod))
	b = binary.BigEndian.AppendUint16(b, uint16(len(vt.Inbound.Suffixes)))
	for _, e := range vt.Inbound.Suffixes {
		b = append(b, e.HostByte)
		b = binary.BigEndian.AppendUint16(b, uint16(e.Port))
	}
	vlans := make([]int, 0, len(vt.Outbound))
	for v := range vt.Outbound {
		vlans = append(vlans, v)
	}
	sort.Ints(vlans)
	b = binary.BigEndian.AppendUint16(b, uint16(len(vlans)))
	for _, v := range vlans {
		t := vt.Outbound[v]
		if len(t.Prefixes) != 0 {
			return nil, fmt.Errorf("routing: vlan %d out-bound table has prefix entries", v)
		}
		b = binary.BigEndian.AppendUint16(b, uint16(v))
		b = binary.BigEndian.AppendUint16(b, uint16(len(t.Suffixes)))
		for _, e := range t.Suffixes {
			b = append(b, e.HostByte)
			b = binary.BigEndian.AppendUint16(b, uint16(e.Port))
		}
	}
	return b, nil
}

// UnmarshalVLANTable decodes a table produced by MarshalBinary.
func UnmarshalVLANTable(b []byte) (*VLANTable, error) {
	r := reader{b: b}
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	if v != vlanTableVersion {
		return nil, fmt.Errorf("routing: unsupported table version %d", v)
	}
	k, err := r.u16()
	if err != nil {
		return nil, err
	}
	pod, err := r.u16()
	if err != nil {
		return nil, err
	}
	vt := &VLANTable{K: int(k), Pod: int(pod), Outbound: make(map[int]Table)}
	inCount, err := r.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(inCount); i++ {
		e, err := r.suffix()
		if err != nil {
			return nil, err
		}
		vt.Inbound.Suffixes = append(vt.Inbound.Suffixes, e)
	}
	vlanCount, err := r.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(vlanCount); i++ {
		vlan, err := r.u16()
		if err != nil {
			return nil, err
		}
		n, err := r.u16()
		if err != nil {
			return nil, err
		}
		var t Table
		for j := 0; j < int(n); j++ {
			e, err := r.suffix()
			if err != nil {
				return nil, err
			}
			t.Suffixes = append(t.Suffixes, e)
		}
		vt.Outbound[int(vlan)] = t
	}
	if !r.done() {
		return nil, fmt.Errorf("routing: %d trailing bytes after table", r.remaining())
	}
	return vt, nil
}

type reader struct {
	b   []byte
	pos int
}

func (r *reader) u8() (byte, error) {
	if r.pos+1 > len(r.b) {
		return 0, fmt.Errorf("routing: truncated table")
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.pos+2 > len(r.b) {
		return 0, fmt.Errorf("routing: truncated table")
	}
	v := binary.BigEndian.Uint16(r.b[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) suffix() (SuffixEntry, error) {
	hb, err := r.u8()
	if err != nil {
		return SuffixEntry{}, err
	}
	port, err := r.u16()
	if err != nil {
		return SuffixEntry{}, err
	}
	return SuffixEntry{HostByte: hb, Port: Port(port)}, nil
}

func (r *reader) done() bool     { return r.pos == len(r.b) }
func (r *reader) remaining() int { return len(r.b) - r.pos }
