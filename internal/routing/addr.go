// Package routing implements the routing machinery ShareBackup relies on and
// compares against:
//
//   - the fat-tree Two-Level Routing tables of Al-Fares et al. (prefix
//     entries downward, suffix entries upward), including the VLAN-combined
//     failure-group table of Section 4.3 that lets a backup switch
//     impersonate any switch in its group with preloaded state;
//   - ECMP flow-to-path assignment used by the failure study;
//   - the two rerouting baselines of Figure 1(c): fat-tree global-optimal
//     rerouting and F10-style local rerouting with 3-hop detours.
package routing

import "fmt"

// Addr is a fat-tree address in the 10.pod.switch.id scheme of Al-Fares et
// al.:
//
//	hosts:        10.pod.edge.(2 + position)
//	pod switches: 10.pod.switch.1   (edge: switch in [0,k/2), agg: [k/2,k))
//	core:         10.k.(j/(k/2)+1).(j%(k/2)+1)
type Addr struct {
	A, B, C, D uint8
}

// String renders dotted-quad notation.
func (a Addr) String() string { return fmt.Sprintf("%d.%d.%d.%d", a.A, a.B, a.C, a.D) }

// HostAddr returns the address of the host at `position` under edge switch
// E_{pod,edge} in a k-ary fat-tree.
func HostAddr(k, pod, edge, position int) (Addr, error) {
	if err := checkK(k); err != nil {
		return Addr{}, err
	}
	half := k / 2
	if pod < 0 || pod >= k || edge < 0 || edge >= half || position < 0 || position >= half {
		return Addr{}, fmt.Errorf("routing: HostAddr(k=%d, pod=%d, edge=%d, pos=%d) out of range", k, pod, edge, position)
	}
	return Addr{10, uint8(pod), uint8(edge), uint8(2 + position)}, nil
}

// EdgeAddr returns the address of edge switch E_{pod,j}.
func EdgeAddr(k, pod, j int) (Addr, error) {
	if err := checkK(k); err != nil {
		return Addr{}, err
	}
	if pod < 0 || pod >= k || j < 0 || j >= k/2 {
		return Addr{}, fmt.Errorf("routing: EdgeAddr(k=%d, pod=%d, j=%d) out of range", k, pod, j)
	}
	return Addr{10, uint8(pod), uint8(j), 1}, nil
}

// AggAddr returns the address of aggregation switch A_{pod,j}.
func AggAddr(k, pod, j int) (Addr, error) {
	if err := checkK(k); err != nil {
		return Addr{}, err
	}
	if pod < 0 || pod >= k || j < 0 || j >= k/2 {
		return Addr{}, fmt.Errorf("routing: AggAddr(k=%d, pod=%d, j=%d) out of range", k, pod, j)
	}
	return Addr{10, uint8(pod), uint8(k/2 + j), 1}, nil
}

// CoreAddr returns the address of core switch C_j.
func CoreAddr(k, j int) (Addr, error) {
	if err := checkK(k); err != nil {
		return Addr{}, err
	}
	half := k / 2
	if j < 0 || j >= half*half {
		return Addr{}, fmt.Errorf("routing: CoreAddr(k=%d, j=%d) out of range", k, j)
	}
	return Addr{10, uint8(k), uint8(j/half + 1), uint8(j%half + 1)}, nil
}

// IsHost reports whether the address is a host address in a k-ary fat-tree.
func (a Addr) IsHost(k int) bool {
	return a.A == 10 && int(a.B) < k && int(a.C) < k/2 && int(a.D) >= 2 && int(a.D) < 2+k/2
}

// HostPod returns the pod of a host address.
func (a Addr) HostPod() int { return int(a.B) }

// HostEdge returns the edge-switch index of a host address.
func (a Addr) HostEdge() int { return int(a.C) }

// HostPosition returns the position of the host under its edge switch.
func (a Addr) HostPosition() int { return int(a.D) - 2 }

func checkK(k int) error {
	if k < 4 || k%2 != 0 || k > 254 {
		return fmt.Errorf("routing: k=%d must be even, >= 4, and addressable (<= 254)", k)
	}
	return nil
}
