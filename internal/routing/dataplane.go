package routing

import (
	"fmt"

	"sharebackup/internal/topo"
)

// DataPlane simulates packet forwarding over a fat-tree using the two-level
// tables, verifying that the VLAN-combined failure-group tables of Section
// 4.3 forward every packet exactly as the per-switch originals do.
type DataPlane struct {
	ft   *topo.FatTree
	agg  []Table      // per pod (shared by the pod's agg switches)
	core Table        // shared by all core switches
	vlan []*VLANTable // per pod (shared by the pod's edge switches)
}

// NewDataPlane builds forwarding state for ft. The fat-tree must have at
// most k/2 hosts per edge so every host is addressable.
func NewDataPlane(ft *topo.FatTree) (*DataPlane, error) {
	k := ft.K()
	if ft.Cfg.HostsPerEdge > k/2 {
		return nil, fmt.Errorf("routing: %d hosts per edge not addressable (max k/2 = %d)", ft.Cfg.HostsPerEdge, k/2)
	}
	dp := &DataPlane{ft: ft}
	core, err := BuildCoreTable(k)
	if err != nil {
		return nil, err
	}
	dp.core = core
	for pod := 0; pod < k; pod++ {
		at, err := BuildAggTable(k, pod)
		if err != nil {
			return nil, err
		}
		dp.agg = append(dp.agg, at)
		vt, err := BuildVLANTable(k, pod)
		if err != nil {
			return nil, err
		}
		dp.vlan = append(dp.vlan, vt)
	}
	return dp, nil
}

// HostAddrOf returns the fat-tree address of a host by global index.
func (dp *DataPlane) HostAddrOf(host int) (Addr, error) {
	e := dp.ft.Node(dp.ft.EdgeOfHost(host))
	per := dp.ft.Cfg.HostsPerEdge
	return HostAddr(dp.ft.K(), e.Pod, e.Index, host%per)
}

// Deliver forwards a packet from srcHost to dstHost hop by hop through the
// routing tables and returns the node walk taken (starting at the source
// host, ending at the destination host). It exercises exactly the lookups a
// real switch would perform: the source host tags the packet with its edge
// switch's VLAN ID; edge switches use the combined table; aggregation and
// core switches use their shared tables.
func (dp *DataPlane) Deliver(srcHost, dstHost int) ([]topo.NodeID, error) {
	ft := dp.ft
	k := ft.K()
	half := k / 2
	dst, err := dp.HostAddrOf(dstHost)
	if err != nil {
		return nil, err
	}
	srcEdge := ft.Node(ft.EdgeOfHost(srcHost))
	vlan := srcEdge.Index

	walk := []topo.NodeID{ft.Host(srcHost)}
	cur := srcEdge.ID
	tagged := true
	const maxHops = 10
	for hop := 0; hop < maxHops; hop++ {
		walk = append(walk, cur)
		node := ft.Node(cur)
		switch node.Kind {
		case topo.KindEdge:
			v := Untagged
			if tagged {
				v = vlan
			}
			port, ok := dp.vlan[node.Pod].Lookup(v, dst)
			if !ok {
				return walk, fmt.Errorf("routing: %s: no route to %v (vlan %d)", node.Name(), dst, v)
			}
			if int(port) < half {
				// Host port: delivery.
				hostIdx := (node.Pod*half+node.Index)*ft.Cfg.HostsPerEdge + int(port)
				if int(port) >= ft.Cfg.HostsPerEdge {
					return walk, fmt.Errorf("routing: %s: delivery to unpopulated host port %d", node.Name(), port)
				}
				walk = append(walk, ft.Host(hostIdx))
				if hostIdx != dstHost {
					return walk, fmt.Errorf("routing: delivered to host %d, want %d", hostIdx, dstHost)
				}
				return walk, nil
			}
			cur = ft.Agg(node.Pod, int(port)-half)
			tagged = false // aggregation switches strip the tag
		case topo.KindAgg:
			port, ok := dp.agg[node.Pod].Lookup(dst)
			if !ok {
				return walk, fmt.Errorf("routing: %s: no route to %v", node.Name(), dst)
			}
			if int(port) < half {
				cur = ft.Edge(node.Pod, int(port))
			} else {
				cores := ft.CoreIndicesOfAgg(node.Pod, node.Index)
				cur = ft.Core(cores[int(port)-half])
			}
		case topo.KindCore:
			port, ok := dp.core.Lookup(dst)
			if !ok {
				return walk, fmt.Errorf("routing: %s: no route to %v", node.Name(), dst)
			}
			cur = ft.AggOfCoreInPod(node.Index, int(port))
		default:
			return walk, fmt.Errorf("routing: packet stranded at %s", node.Name())
		}
	}
	return walk, fmt.Errorf("routing: packet looped beyond %d hops", maxHops)
}
