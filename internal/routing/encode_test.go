package routing

import "testing"

func TestVLANTableMarshalRoundTrip(t *testing.T) {
	for _, k := range []int{4, 8, 16, 64} {
		vt, err := BuildVLANTable(k, 2%k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := vt.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalVLANTable(b)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if back.K != vt.K || back.Pod != vt.Pod || back.Size() != vt.Size() {
			t.Fatalf("k=%d: shape changed: %d/%d/%d vs %d/%d/%d",
				k, back.K, back.Pod, back.Size(), vt.K, vt.Pod, vt.Size())
		}
		// Every lookup must survive the round trip.
		for vlan := -1; vlan < k/2; vlan++ {
			for pod := 0; pod < k; pod += 3 {
				for sub := 0; sub < k/2; sub += 2 {
					for h := 0; h < k/2; h += 2 {
						dst := Addr{10, uint8(pod), uint8(sub), uint8(2 + h)}
						p1, ok1 := vt.Lookup(vlan, dst)
						p2, ok2 := back.Lookup(vlan, dst)
						if p1 != p2 || ok1 != ok2 {
							t.Fatalf("k=%d vlan %d dst %v: (%v,%v) vs (%v,%v)",
								k, vlan, dst, p1, ok1, p2, ok2)
						}
					}
				}
			}
		}
	}
}

func TestUnmarshalVLANTableErrors(t *testing.T) {
	vt, err := BuildVLANTable(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := vt.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad version": append([]byte{99}, b[1:]...),
		"truncated":   b[:len(b)-3],
		"trailing":    append(append([]byte{}, b...), 0xFF),
	}
	for name, in := range cases {
		if _, err := UnmarshalVLANTable(in); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Prefix entries are not encodable.
	vt.Inbound.Prefixes = append(vt.Inbound.Prefixes, PrefixEntry{Pod: 0, Sub: 0, Port: 1})
	if _, err := vt.MarshalBinary(); err == nil {
		t.Error("table with prefixes encoded")
	}
}
