package routing

import (
	"testing"

	"sharebackup/internal/topo"
)

func newFT(t *testing.T, k int) *topo.FatTree {
	t.Helper()
	ft, err := topo.NewFatTree(topo.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestECMPDeterministicAndSpreading(t *testing.T) {
	ft := newFT(t, 8)
	e := &ECMP{FT: ft, Seed: 1}
	src, dst := 0, ft.NumHosts()-1
	p1, err := e.PathFor(src, dst, 42)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.PathFor(src, dst, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Links {
		if p1.Links[i] != p2.Links[i] {
			t.Fatal("ECMP not deterministic for the same flow ID")
		}
	}
	// Different flow IDs must spread over multiple paths.
	seen := make(map[topo.NodeID]bool)
	for id := uint64(0); id < 64; id++ {
		p, err := e.PathFor(src, dst, id)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range p.Nodes {
			if ft.Node(n).Kind == topo.KindCore {
				seen[n] = true
			}
		}
	}
	if len(seen) < 8 {
		t.Errorf("64 flows hashed onto only %d cores; poor spreading", len(seen))
	}
}

func TestLinkLoad(t *testing.T) {
	ft := newFT(t, 4)
	paths, err := ft.ECMPPaths(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	ll := NewLinkLoad(ft.Topology)
	ll.Add(paths[0], 3)
	ll.Add(paths[1], 1)
	// paths[0] and paths[1] share the access link and (for k=4) the
	// edge-agg hop, so the maximum on paths[0] includes both loads.
	if got := ll.MaxOn(paths[0]); got != 4 {
		t.Errorf("MaxOn = %d, want 4 on the shared links", got)
	}
	if got := ll.MaxOnInterior(paths[0]); got != 4 {
		t.Errorf("MaxOnInterior = %d, want 4 (shared edge-agg hop)", got)
	}
	// Access links are shared by both paths.
	if got := ll.SumOn(paths[0]); got <= 3*paths[0].Hops()-3 {
		t.Logf("SumOn = %d", got) // sanity only; exact value depends on overlap
	}
	ll.Add(paths[0], -3)
	if got := ll.MaxOn(paths[0]); got != 1 {
		t.Errorf("MaxOn after removal = %d, want 1 on shared links", got)
	}
}

func TestGlobalOptimalReroute(t *testing.T) {
	ft := newFT(t, 4)
	src, dst := 0, 4 // pods 0 and 1
	load := NewLinkLoad(ft.Topology)

	// Fail core C0; the reroute must avoid it and stay at 6 hops.
	blocked := topo.NewBlocked()
	blocked.BlockNode(ft.Core(0))
	p, ok := GlobalOptimalReroute(ft, src, dst, blocked, load)
	if !ok {
		t.Fatal("no surviving path")
	}
	if p.Hops() != 6 {
		t.Errorf("global-optimal reroute dilated the path: %d hops", p.Hops())
	}
	if p.Contains(ft.Core(0)) {
		t.Error("reroute still uses the failed core")
	}

	// Load sensitivity: pre-load the path through core 1; reroute should
	// prefer an empty one.
	paths, _ := ft.ECMPPaths(src, dst)
	var loaded topo.Path
	for _, q := range paths {
		if q.Contains(ft.Core(1)) {
			loaded = q
		}
	}
	load.Add(loaded, 10)
	p2, ok := GlobalOptimalReroute(ft, src, dst, blocked, load)
	if !ok {
		t.Fatal("no surviving path")
	}
	if p2.Contains(ft.Core(1)) {
		t.Error("reroute chose the congested core despite alternatives")
	}

	// Fail the destination edge switch: nothing survives.
	blocked2 := topo.NewBlocked()
	blocked2.BlockNode(ft.EdgeOfHost(dst))
	if _, ok := GlobalOptimalReroute(ft, src, dst, blocked2, load); ok {
		t.Error("reroute claimed success with the destination edge dead")
	}
}

func TestF10LocalRerouteDstPodAgg(t *testing.T) {
	ft := newFT(t, 4)
	paths, err := ft.ECMPPaths(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	orig := paths[0]
	// Fail the destination-pod aggregation switch on the path (node index
	// 4 of [host, edge, agg, core, agg', edge', host']).
	dstAgg := orig.Nodes[4]
	if ft.Node(dstAgg).Kind != topo.KindAgg {
		t.Fatalf("node 4 is %v, want agg", ft.Node(dstAgg).Kind)
	}
	blocked := topo.NewBlocked()
	blocked.BlockNode(dstAgg)
	p, ok := F10LocalReroute(ft, orig, blocked, nil)
	if !ok {
		t.Fatal("no local detour found")
	}
	if p.Contains(dstAgg) {
		t.Error("detour still uses the failed agg")
	}
	// Local rerouting keeps the original prefix up to the failure and
	// pays extra hops: the detour is strictly longer than the original.
	if p.Hops() <= orig.Hops() {
		t.Errorf("local detour has %d hops, original %d; F10 detours must dilate", p.Hops(), orig.Hops())
	}
	for i := 0; i < 4; i++ {
		if p.Nodes[i] != orig.Nodes[i] {
			t.Errorf("local reroute changed the path upstream of the failure at index %d", i)
		}
	}
}

func TestF10LocalRerouteLink(t *testing.T) {
	ft := newFT(t, 4)
	paths, err := ft.ECMPPaths(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	orig := paths[0]
	// Fail the agg'->edge' link in the destination pod (link index 4).
	blocked := topo.NewBlocked()
	blocked.BlockLink(orig.Links[4])
	p, ok := F10LocalReroute(ft, orig, blocked, nil)
	if !ok {
		t.Fatal("no local detour found")
	}
	if p.ContainsLink(orig.Links[4]) {
		t.Error("detour still uses the failed link")
	}
	if p.Hops() != orig.Hops()+2 {
		t.Errorf("detour hops = %d, want %d (+2 local bounce)", p.Hops(), orig.Hops()+2)
	}
	// Path must remain well-formed.
	for i, lid := range p.Links {
		l := ft.Link(lid)
		if !(l.A == p.Nodes[i] && l.B == p.Nodes[i+1]) && !(l.B == p.Nodes[i] && l.A == p.Nodes[i+1]) {
			t.Fatalf("spliced path malformed at hop %d", i)
		}
	}
}

func TestF10LocalRerouteCleanPath(t *testing.T) {
	ft := newFT(t, 4)
	paths, _ := ft.ECMPPaths(0, 4)
	p, ok := F10LocalReroute(ft, paths[0], topo.NewBlocked(), nil)
	if !ok {
		t.Fatal("clean path rejected")
	}
	if p.Hops() != paths[0].Hops() {
		t.Error("clean path modified")
	}
}

func TestF10LocalRerouteUnrecoverable(t *testing.T) {
	ft := newFT(t, 4)
	paths, _ := ft.ECMPPaths(0, 1) // same edge: [host, edge, host]
	blocked := topo.NewBlocked()
	blocked.BlockNode(ft.EdgeOfHost(0))
	if _, ok := F10LocalReroute(ft, paths[0], blocked, nil); ok {
		t.Error("detour claimed around a failed edge switch for its own hosts")
	}
}

func TestF10LocalRerouteSrcSideFailure(t *testing.T) {
	ft := newFT(t, 8)
	paths, err := ft.ECMPPaths(0, ft.NumHosts()-1)
	if err != nil {
		t.Fatal(err)
	}
	orig := paths[0]
	// Fail the source-side agg (node 2).
	blocked := topo.NewBlocked()
	blocked.BlockNode(orig.Nodes[2])
	p, ok := F10LocalReroute(ft, orig, blocked, nil)
	if !ok {
		t.Fatal("no detour for source-side agg failure")
	}
	if p.Contains(orig.Nodes[2]) {
		t.Error("detour uses the failed agg")
	}
	// The source edge makes a local decision; the path still starts the
	// same way.
	if p.Nodes[0] != orig.Nodes[0] || p.Nodes[1] != orig.Nodes[1] {
		t.Error("detour changed the path before the decision point")
	}
}
