package routing

import (
	"testing"

	"sharebackup/internal/topo"
)

// TestPathForZeroAlloc enforces the hot-path contract: once a pair's paths
// are interned, PathFor is an allocation-free table lookup.
func TestPathForZeroAlloc(t *testing.T) {
	ft, err := topo.NewFatTree(topo.Config{K: 16, HostsPerEdge: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := &ECMP{FT: ft, Seed: 3}
	n := ft.NumHosts()
	// Warm: intern every pair the measurement loop touches.
	for d := 1; d < n; d++ {
		if _, err := e.PathFor(0, d, uint64(d)); err != nil {
			t.Fatal(err)
		}
	}
	var sink topo.Path
	allocs := testing.AllocsPerRun(200, func() {
		for d := 1; d < n; d++ {
			p, err := e.PathFor(0, d, uint64(d))
			if err != nil {
				t.Fatal(err)
			}
			sink = p
		}
	})
	if allocs != 0 {
		t.Fatalf("PathFor allocated %.2f times per warm run, want 0", allocs)
	}
	_ = sink
}

// TestRerouteScratchReuse checks F10LocalReroute with a shared Scratch gives
// identical results to the nil-scratch (allocating) form.
func TestRerouteScratchReuse(t *testing.T) {
	ft, err := topo.NewFatTree(topo.Config{K: 8, HostsPerEdge: 1})
	if err != nil {
		t.Fatal(err)
	}
	var scratch Scratch
	for dst := 1; dst < ft.NumHosts(); dst++ {
		paths, err := ft.PathStore().Paths(0, dst)
		if err != nil {
			t.Fatal(err)
		}
		orig := paths[len(paths)-1]
		if orig.Hops() < 4 {
			continue
		}
		blocked := topo.NewBlocked()
		blocked.BlockNode(orig.Nodes[2]) // an interior switch
		pShared, okShared := F10LocalReroute(ft, orig, blocked, &scratch)
		pNil, okNil := F10LocalReroute(ft, orig, blocked, nil)
		if okShared != okNil {
			t.Fatalf("dst %d: scratch ok=%v, nil ok=%v", dst, okShared, okNil)
		}
		if !okShared {
			continue
		}
		if len(pShared.Links) != len(pNil.Links) {
			t.Fatalf("dst %d: scratch and nil reroutes differ in length", dst)
		}
		for i := range pShared.Links {
			if pShared.Links[i] != pNil.Links[i] {
				t.Fatalf("dst %d: scratch and nil reroutes diverge at link %d", dst, i)
			}
		}
	}
}

// TestLinkLoadReset checks Reset zeroes in place without reallocating.
func TestLinkLoadReset(t *testing.T) {
	ft, err := topo.NewFatTree(topo.Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	ll := NewLinkLoad(ft.Topology)
	paths, err := ft.PathStore().Paths(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	ll.Add(paths[0], 3)
	if ll.MaxOn(paths[0]) != 3 {
		t.Fatal("Add did not register")
	}
	ll.Reset()
	for i, v := range ll {
		if v != 0 {
			t.Fatalf("Reset left load %d on link %d", v, i)
		}
	}
	if len(ll) != ft.NumLinks() {
		t.Fatal("Reset changed length")
	}
}
