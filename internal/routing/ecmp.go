package routing

import (
	"fmt"

	"sharebackup/internal/topo"
)

// ECMP assigns flows to equal-cost paths by flow hash, the baseline routing
// of the paper's failure study (Section 2.2: "Fat-tree and F10 both use ECMP
// routing").
type ECMP struct {
	FT   *topo.FatTree
	Seed uint64
}

// hash64 mixes a flow identifier with the seed (splitmix64 finalizer). ECMP
// in practice hashes the five-tuple; here the caller supplies a stable flow
// ID.
func (e *ECMP) hash64(flowID uint64) uint64 {
	x := flowID + 0x9e3779b97f4a7c15 + e.Seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PathFor returns the ECMP path for the flow between two hosts (by global
// host index). Paths come from the topology's interned PathStore: after a
// pair's first lookup the call is an allocation-free table lookup returning
// an immutable shared path (clone before mutating).
func (e *ECMP) PathFor(src, dst int, flowID uint64) (topo.Path, error) {
	paths, err := e.FT.PathStore().Paths(src, dst)
	if err != nil {
		return topo.Path{}, err
	}
	return paths[e.hash64(flowID)%uint64(len(paths))], nil
}

// LinkLoad counts flows assigned per link; the rerouting strategies use it
// to pick the least congested alternative.
type LinkLoad []int

// NewLinkLoad returns a zeroed load vector sized for t.
func NewLinkLoad(t *topo.Topology) LinkLoad { return make(LinkLoad, t.NumLinks()) }

// Reset zeroes the vector in place so one allocation serves many trials.
func (ll LinkLoad) Reset() {
	for i := range ll {
		ll[i] = 0
	}
}

// Add applies delta flows along every link of p.
func (ll LinkLoad) Add(p topo.Path, delta int) {
	for _, l := range p.Links {
		ll[l] += delta
	}
}

// MaxOn returns the highest per-link flow count along p.
func (ll LinkLoad) MaxOn(p topo.Path) int {
	max := 0
	for _, l := range p.Links {
		if ll[l] > max {
			max = ll[l]
		}
	}
	return max
}

// SumOn returns the total flow count along p.
func (ll LinkLoad) SumOn(p topo.Path) int {
	sum := 0
	for _, l := range p.Links {
		sum += ll[l]
	}
	return sum
}

// MaxOnInterior returns the highest per-link flow count along p excluding
// its first and last links. For host-to-host paths those are the access
// links every alternative shares, so only the interior distinguishes
// candidate paths.
func (ll LinkLoad) MaxOnInterior(p topo.Path) int {
	max := 0
	for i, l := range p.Links {
		if i == 0 || i == len(p.Links)-1 {
			continue
		}
		if ll[l] > max {
			max = ll[l]
		}
	}
	return max
}

// Scratch holds reusable per-worker state for the reroute strategies so a
// reroute storm does not allocate an avoid-set per broken flow. The zero
// value is ready to use; a Scratch must not be shared between goroutines.
type Scratch struct {
	avoid *topo.Blocked
}

// avoidSet returns the scratch's avoid set primed with a copy of blocked.
// A nil receiver falls back to a fresh allocation.
func (s *Scratch) avoidSet(blocked *topo.Blocked) *topo.Blocked {
	if s == nil {
		b := topo.NewBlocked()
		b.CopyFrom(blocked)
		return b
	}
	if s.avoid == nil {
		s.avoid = topo.NewBlocked()
	}
	s.avoid.CopyFrom(blocked)
	return s.avoid
}

// GlobalOptimalReroute is the fat-tree baseline of Figure 1(c): when a
// flow's path is broken, the (idealized, globally informed) routing picks
// the surviving equal-cost path with the lowest load. There is no path
// dilation, but the flow competes for the remaining bandwidth, and the
// repair happens upstream (the source edge switch changes the whole path).
// ok is false when no equal-cost path survives — e.g. the destination's
// edge switch is down.
func GlobalOptimalReroute(ft *topo.FatTree, src, dst int, blocked *topo.Blocked, load LinkLoad) (topo.Path, bool) {
	paths, err := ft.PathStore().Paths(src, dst)
	if err != nil {
		return topo.Path{}, false
	}
	best := -1
	bestLoad := 0
	for i, p := range paths {
		if !blocked.PathOK(p) {
			continue
		}
		l := load.MaxOnInterior(p)
		if best < 0 || l < bestLoad {
			best, bestLoad = i, l
		}
	}
	if best < 0 {
		return topo.Path{}, false
	}
	return paths[best], true
}

// F10LocalReroute is the F10 baseline of Figure 1(c): the switch adjacent to
// the failure repairs the path locally, splicing in a detour around the
// failed element while keeping the rest of the original path. Local repair
// is fast and requires no upstream notification, but the detour is longer
// (typically +2 hops) and concentrates load near the failure — the paper
// measures F10's CCT suffering more than fat-tree's for exactly this reason.
// ok is false when no local detour exists. scratch may be nil; passing one
// reuses its avoid set across calls.
func F10LocalReroute(ft *topo.FatTree, orig topo.Path, blocked *topo.Blocked, scratch *Scratch) (topo.Path, bool) {
	p := orig.Clone()
	// A path may cross several failed elements (or the detour may be
	// broken too); repair iteratively with a small bound.
	for iter := 0; iter < 4; iter++ {
		idx, isNode := firstBroken(p, blocked)
		if idx < 0 {
			return p, true
		}
		var ok bool
		p, ok = spliceDetour(ft, p, idx, isNode, blocked, scratch)
		if !ok {
			return topo.Path{}, false
		}
	}
	// Still broken after the iteration bound.
	if idx, _ := firstBroken(p, blocked); idx >= 0 {
		return topo.Path{}, false
	}
	return p, true
}

// firstBroken locates the first failed element on p. It returns the index of
// the failed node in p.Nodes (isNode=true), or the index of the failed
// link's upstream node (isNode=false). idx = -1 means the path is clean.
func firstBroken(p topo.Path, blocked *topo.Blocked) (idx int, isNode bool) {
	if blocked == nil {
		return -1, false
	}
	for i, n := range p.Nodes {
		if blocked.NodeBlocked(n) {
			return i, true
		}
		if i < len(p.Links) && blocked.LinkBlocked(p.Links[i]) {
			return i, false
		}
	}
	return -1, false
}

// spliceDetour replaces the failed element after/at position idx with a
// local detour: a shortest path from the node immediately upstream of the
// failure to the node immediately downstream, avoiding every blocked element
// and every node already used earlier on the path (no loops).
func spliceDetour(ft *topo.FatTree, p topo.Path, idx int, isNode bool, blocked *topo.Blocked, scratch *Scratch) (topo.Path, bool) {
	var uIdx, wIdx int // indices into p.Nodes: detour endpoints
	if isNode {
		uIdx, wIdx = idx-1, idx+1
	} else {
		uIdx, wIdx = idx, idx+1
	}
	if uIdx < 0 || wIdx >= len(p.Nodes) {
		// The failure touches an endpoint (host or its access link):
		// nothing local routing can do.
		return topo.Path{}, false
	}
	// Forbid revisiting upstream nodes (and the failed downstream
	// remainder's duplicates are impossible since fat-tree paths are
	// simple).
	avoid := scratch.avoidSet(blocked)
	for i := 0; i < uIdx; i++ {
		avoid.BlockNode(p.Nodes[i])
	}
	detour, ok := ft.ShortestPath(p.Nodes[uIdx], p.Nodes[wIdx], avoid)
	if !ok {
		return topo.Path{}, false
	}
	out := topo.Path{
		Nodes: append(append([]topo.NodeID(nil), p.Nodes[:uIdx]...), detour.Nodes...),
		Links: append(append([]topo.LinkID(nil), p.Links[:uIdx]...), detour.Links...),
	}
	out.Nodes = append(out.Nodes, p.Nodes[wIdx+1:]...)
	out.Links = append(out.Links, p.Links[wIdx:]...)
	if len(out.Links) != len(out.Nodes)-1 {
		// Defensive: a malformed splice would corrupt the simulation.
		panic(fmt.Sprintf("routing: spliced path invariant broken: %d nodes, %d links", len(out.Nodes), len(out.Links)))
	}
	return out, true
}
