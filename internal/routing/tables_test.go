package routing

import (
	"testing"

	"sharebackup/internal/topo"
)

func TestAddrConstruction(t *testing.T) {
	h, err := HostAddr(4, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h != (Addr{10, 1, 0, 3}) {
		t.Errorf("HostAddr = %v", h)
	}
	if h.String() != "10.1.0.3" {
		t.Errorf("String = %q", h.String())
	}
	if !h.IsHost(4) {
		t.Error("host address not recognized")
	}
	if h.HostPod() != 1 || h.HostEdge() != 0 || h.HostPosition() != 1 {
		t.Error("host address decomposition wrong")
	}
	e, err := EdgeAddr(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e != (Addr{10, 2, 1, 1}) {
		t.Errorf("EdgeAddr = %v", e)
	}
	if e.IsHost(4) {
		t.Error("edge address recognized as host")
	}
	a, err := AggAddr(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != (Addr{10, 2, 3, 1}) {
		t.Errorf("AggAddr = %v", a)
	}
	c, err := CoreAddr(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c != (Addr{10, 4, 2, 2}) {
		t.Errorf("CoreAddr = %v", c)
	}
}

func TestAddrValidation(t *testing.T) {
	if _, err := HostAddr(4, 4, 0, 0); err == nil {
		t.Error("pod out of range accepted")
	}
	if _, err := HostAddr(4, 0, 2, 0); err == nil {
		t.Error("edge out of range accepted")
	}
	if _, err := HostAddr(4, 0, 0, 2); err == nil {
		t.Error("position out of range accepted")
	}
	if _, err := HostAddr(3, 0, 0, 0); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := CoreAddr(4, 4); err == nil {
		t.Error("core index out of range accepted")
	}
	if _, err := EdgeAddr(256, 0, 0); err == nil {
		t.Error("unaddressable k accepted")
	}
}

func TestTableLookupPrecedence(t *testing.T) {
	tb := Table{
		Prefixes: []PrefixEntry{
			{Pod: 1, Sub: 0, Port: 7},
			{Pod: 1, Sub: -1, Port: 8},
		},
		Suffixes: []SuffixEntry{{HostByte: 2, Port: 9}},
	}
	if p, ok := tb.Lookup(Addr{10, 1, 0, 2}); !ok || p != 7 {
		t.Errorf("/24 match = %v, %v; want 7", p, ok)
	}
	if p, ok := tb.Lookup(Addr{10, 1, 1, 2}); !ok || p != 8 {
		t.Errorf("/16 match = %v, %v; want 8", p, ok)
	}
	if p, ok := tb.Lookup(Addr{10, 2, 1, 2}); !ok || p != 9 {
		t.Errorf("suffix match = %v, %v; want 9", p, ok)
	}
	if _, ok := tb.Lookup(Addr{10, 2, 1, 5}); ok {
		t.Error("unmatched address resolved")
	}
}

func TestEdgeTableShape(t *testing.T) {
	in, out, err := BuildEdgeTable(8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Size() != 4 || out.Size() != 4 {
		t.Errorf("edge table sizes = %d, %d; want k/2 each", in.Size(), out.Size())
	}
	// In-bound entries deliver host byte 2+h to down-port h.
	for h := 0; h < 4; h++ {
		p, ok := in.Lookup(Addr{10, 5, 3, uint8(2 + h)})
		if !ok || int(p) != h {
			t.Errorf("inbound host %d -> port %v", h, p)
		}
	}
	// Out-bound entries use up-ports [k/2, k), phase-shifted by j.
	for h := 0; h < 4; h++ {
		p, ok := out.Lookup(Addr{10, 5, 3, uint8(2 + h)})
		if !ok || int(p) != 4+(h+1)%4 {
			t.Errorf("outbound host %d -> port %v, want %d", h, p, 4+(h+1)%4)
		}
	}
	// In-bound tables are identical across the pod's edges; out-bound
	// tables differ (Section 4.3).
	in2, out2, err := BuildEdgeTable(8, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Suffixes {
		if in.Suffixes[i] != in2.Suffixes[i] {
			t.Error("inbound tables differ across edges in a pod")
		}
	}
	same := true
	for i := range out.Suffixes {
		if out.Suffixes[i] != out2.Suffixes[i] {
			same = false
		}
	}
	if same {
		t.Error("outbound tables identical across edges; load spreading lost")
	}
}

func TestAggAndCoreTables(t *testing.T) {
	at, err := BuildAggTable(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if at.Size() != 8 { // k/2 prefixes + k/2 suffixes
		t.Errorf("agg table size = %d, want k", at.Size())
	}
	// In-pod traffic goes down to the right edge.
	for e := 0; e < 4; e++ {
		p, ok := at.Lookup(Addr{10, 3, uint8(e), 2})
		if !ok || int(p) != e {
			t.Errorf("agg in-pod lookup edge %d -> %v", e, p)
		}
	}
	// Out-of-pod traffic goes up.
	p, ok := at.Lookup(Addr{10, 5, 0, 3})
	if !ok || int(p) < 4 {
		t.Errorf("agg out-of-pod lookup -> %v, want an up-port", p)
	}

	ct, err := BuildCoreTable(8)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Size() != 8 {
		t.Errorf("core table size = %d, want k", ct.Size())
	}
	for pod := 0; pod < 8; pod++ {
		p, ok := ct.Lookup(Addr{10, uint8(pod), 1, 2})
		if !ok || int(p) != pod {
			t.Errorf("core lookup pod %d -> %v", pod, p)
		}
	}
}

func TestVLANTableSize(t *testing.T) {
	// Section 4.3: the combined table has k/2 in-bound and k^2/4 out-bound
	// entries; 1056 total for k=64.
	for _, tc := range []struct{ k, want int }{
		{4, 2 + 4},
		{8, 4 + 16},
		{16, 8 + 64},
		{64, 32 + 1024}, // = 1056
	} {
		vt, err := BuildVLANTable(tc.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := vt.Size(); got != tc.want {
			t.Errorf("k=%d: combined table size = %d, want %d", tc.k, got, tc.want)
		}
	}
}

func TestVLANTableLookup(t *testing.T) {
	vt, err := BuildVLANTable(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	dstOther := Addr{10, 2, 0, 2} // host in another pod
	// Tagged packets from edge 0's hosts use edge 0's out-bound entries.
	p0, ok := vt.Lookup(0, dstOther)
	if !ok || int(p0) < 2 {
		t.Fatalf("vlan 0 lookup = %v, %v", p0, ok)
	}
	p1, ok := vt.Lookup(1, dstOther)
	if !ok {
		t.Fatal("vlan 1 lookup failed")
	}
	if p0 == p1 {
		t.Error("different VLANs chose the same up-port; per-edge spreading lost")
	}
	// Untagged (in-bound) packets are delivered to host ports.
	pin, ok := vt.Lookup(Untagged, Addr{10, 1, 0, 3})
	if !ok || int(pin) != 1 {
		t.Errorf("untagged lookup = %v, want host port 1", pin)
	}
	// Same-subnet tagged traffic is delivered locally, not bounced up.
	ploc, ok := vt.Lookup(0, Addr{10, 1, 0, 2})
	if !ok || int(ploc) != 0 {
		t.Errorf("local tagged lookup = %v, want host port 0", ploc)
	}
	if _, ok := vt.Lookup(99, dstOther); ok {
		t.Error("unknown VLAN resolved")
	}
}

func TestDataPlaneDeliversAllPairs(t *testing.T) {
	ft, err := topo.NewFatTree(topo.Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDataPlane(ft)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < ft.NumHosts(); src++ {
		for dst := 0; dst < ft.NumHosts(); dst++ {
			if src == dst {
				continue
			}
			walk, err := dp.Deliver(src, dst)
			if err != nil {
				t.Fatalf("Deliver(%d, %d): %v (walk %v)", src, dst, err, walk)
			}
			// Walk length: same edge 3, same pod 5, inter-pod 7 nodes.
			srcE, dstE := ft.EdgeOfHost(src), ft.EdgeOfHost(dst)
			want := 7
			if srcE == dstE {
				want = 3
			} else if ft.Node(srcE).Pod == ft.Node(dstE).Pod {
				want = 5
			}
			if len(walk) != want {
				t.Errorf("Deliver(%d, %d): walk %v has %d nodes, want %d", src, dst, walk, len(walk), want)
			}
		}
	}
}

func TestDataPlaneABFatTree(t *testing.T) {
	ft, err := topo.NewFatTree(topo.Config{K: 4, AB: true})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDataPlane(ft)
	if err != nil {
		t.Fatal(err)
	}
	for _, dst := range []int{1, 2, 5, 9, 15} {
		if _, err := dp.Deliver(0, dst); err != nil {
			t.Errorf("AB Deliver(0, %d): %v", dst, err)
		}
	}
}

func TestDataPlaneRackLevel(t *testing.T) {
	ft, err := topo.NewFatTree(topo.Config{K: 8, HostsPerEdge: 1, HostCapacity: 40})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDataPlane(ft)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dp.Deliver(0, ft.NumHosts()-1); err != nil {
		t.Fatal(err)
	}
	// Too many hosts per edge cannot be addressed.
	big, err := topo.NewFatTree(topo.Config{K: 4, HostsPerEdge: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDataPlane(big); err == nil {
		t.Error("unaddressable host density accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, _, err := BuildEdgeTable(4, 4, 0); err == nil {
		t.Error("edge table pod out of range accepted")
	}
	if _, _, err := BuildEdgeTable(4, 0, 2); err == nil {
		t.Error("edge table j out of range accepted")
	}
	if _, err := BuildAggTable(4, -1); err == nil {
		t.Error("agg table pod out of range accepted")
	}
	if _, err := BuildCoreTable(3); err == nil {
		t.Error("odd k core table accepted")
	}
	if _, err := BuildVLANTable(4, 9); err == nil {
		t.Error("vlan table pod out of range accepted")
	}
}
