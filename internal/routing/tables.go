package routing

import "fmt"

// Port is a forwarding-table action: which switch port the packet leaves on.
//
// Port numbering convention (matching the wiring in internal/sbnet):
//
//	edge switch:  ports [0, k/2) face hosts (port h = host position h),
//	              ports [k/2, k) face aggregation switches
//	              (port k/2 + j = the pod's j-th aggregation switch).
//	agg switch:   ports [0, k/2) face edge switches (port e = E_{pod,e}),
//	              ports [k/2, k) face cores (port k/2 + t = the t-th core
//	              the switch connects to, i.e. C_{s*k/2+t} for A_{pod,s}).
//	core switch:  port p faces pod p.
type Port int

// PrefixEntry matches destination addresses downward. Sub == -1 matches the
// whole pod (/16, used by core switches); otherwise the entry matches one
// edge subnet 10.Pod.Sub.0/24.
type PrefixEntry struct {
	Pod  int
	Sub  int // -1 for /16 pod prefix
	Port Port
}

// SuffixEntry matches on the host byte (0.0.0.D/8), the upward half of
// two-level routing.
type SuffixEntry struct {
	HostByte uint8
	Port     Port
}

// Table is a two-level routing table: longest-prefix entries consulted
// first, then suffix entries.
type Table struct {
	Prefixes []PrefixEntry
	Suffixes []SuffixEntry
}

// Lookup resolves the output port for dst. Precedence: /24 prefix, /16
// prefix, suffix. ok is false when nothing matches.
func (t *Table) Lookup(dst Addr) (Port, bool) {
	pod, sub := int(dst.B), int(dst.C)
	for _, e := range t.Prefixes {
		if e.Sub >= 0 && e.Pod == pod && e.Sub == sub {
			return e.Port, true
		}
	}
	for _, e := range t.Prefixes {
		if e.Sub < 0 && e.Pod == pod {
			return e.Port, true
		}
	}
	for _, e := range t.Suffixes {
		if e.HostByte == dst.D {
			return e.Port, true
		}
	}
	return 0, false
}

// Size returns the number of entries.
func (t *Table) Size() int { return len(t.Prefixes) + len(t.Suffixes) }

// BuildEdgeTable builds the two-level table of edge switch E_{pod,j} in a
// k-ary fat-tree:
//
//   - in-bound: k/2 entries delivering the switch's own /24 to host ports,
//     expressed as suffix-on-host-byte entries (identical for every edge
//     switch in the pod — the paper's observation in Section 4.3);
//   - out-bound: k/2 suffix entries spreading traffic over the k/2 up-ports,
//     phase-shifted by j so different edges prefer different aggregation
//     switches. These differ per edge switch.
//
// The in-bound entries apply to packets arriving from aggregation switches
// (which already routed on the /24 prefix), the out-bound entries to packets
// arriving from hosts; the VLAN-combined table below makes that distinction
// explicit.
func BuildEdgeTable(k, pod, j int) (inbound, outbound Table, err error) {
	if err := checkK(k); err != nil {
		return Table{}, Table{}, err
	}
	half := k / 2
	if pod < 0 || pod >= k || j < 0 || j >= half {
		return Table{}, Table{}, fmt.Errorf("routing: BuildEdgeTable(k=%d, pod=%d, j=%d) out of range", k, pod, j)
	}
	for h := 0; h < half; h++ {
		inbound.Suffixes = append(inbound.Suffixes, SuffixEntry{HostByte: uint8(2 + h), Port: Port(h)})
		outbound.Suffixes = append(outbound.Suffixes, SuffixEntry{
			HostByte: uint8(2 + h),
			Port:     Port(half + (h+j)%half),
		})
	}
	return inbound, outbound, nil
}

// BuildAggTable builds the two-level table of an aggregation switch in
// `pod`: k/2 prefix entries routing each edge subnet downward plus k/2
// suffix entries spreading out-of-pod traffic over the up-ports. Every
// aggregation switch in a pod has the same table (Section 4.3), which is
// what makes agg-layer impersonation free.
func BuildAggTable(k, pod int) (Table, error) {
	if err := checkK(k); err != nil {
		return Table{}, err
	}
	if pod < 0 || pod >= k {
		return Table{}, fmt.Errorf("routing: BuildAggTable(k=%d, pod=%d) out of range", k, pod)
	}
	half := k / 2
	var t Table
	for e := 0; e < half; e++ {
		t.Prefixes = append(t.Prefixes, PrefixEntry{Pod: pod, Sub: e, Port: Port(e)})
	}
	for h := 0; h < half; h++ {
		t.Suffixes = append(t.Suffixes, SuffixEntry{HostByte: uint8(2 + h), Port: Port(half + h%half)})
	}
	return t, nil
}

// BuildCoreTable builds the table of a core switch: k pod prefixes, one per
// downward port. Every core switch has the same table.
func BuildCoreTable(k int) (Table, error) {
	if err := checkK(k); err != nil {
		return Table{}, err
	}
	var t Table
	for p := 0; p < k; p++ {
		t.Prefixes = append(t.Prefixes, PrefixEntry{Pod: p, Sub: -1, Port: Port(p)})
	}
	return t, nil
}

// Untagged is the VLAN value of packets arriving without a tag (from
// aggregation switches, i.e. in-bound traffic).
const Untagged = -1

// VLANTable is the combined failure-group table of Section 4.3: the
// in-bound suffix entries shared by every edge switch of the pod plus every
// edge switch's out-bound entries tagged with that switch's VLAN ID. Hosts
// tag out-going packets with the VLAN ID of their edge switch, so whichever
// physical switch (regular or backup) currently serves them finds the right
// out-bound entries by tag. Preloading this one table into every switch of
// the failure group makes each of them a hot standby for all the others.
type VLANTable struct {
	K        int
	Pod      int
	Inbound  Table
	Outbound map[int]Table // VLAN ID (edge index) -> that edge's out-bound table
}

// BuildVLANTable combines the pod's k/2 edge tables.
func BuildVLANTable(k, pod int) (*VLANTable, error) {
	if err := checkK(k); err != nil {
		return nil, err
	}
	if pod < 0 || pod >= k {
		return nil, fmt.Errorf("routing: BuildVLANTable(k=%d, pod=%d) out of range", k, pod)
	}
	half := k / 2
	vt := &VLANTable{K: k, Pod: pod, Outbound: make(map[int]Table, half)}
	for j := 0; j < half; j++ {
		in, out, err := BuildEdgeTable(k, pod, j)
		if err != nil {
			return nil, err
		}
		if j == 0 {
			vt.Inbound = in
		}
		vt.Outbound[j] = out
	}
	return vt, nil
}

// Lookup resolves the output port for a packet carrying the given VLAN tag.
// Untagged packets use the in-bound entries; tagged packets use the tagging
// edge switch's out-bound entries. A tagged packet whose destination lies in
// the tagging switch's own subnet is delivered locally through the in-bound
// entries — the combined-table equivalent of the terminating /24 prefix in
// the original two-level tables.
func (vt *VLANTable) Lookup(vlan int, dst Addr) (Port, bool) {
	if vlan == Untagged || (int(dst.B) == vt.Pod && int(dst.C) == vlan) {
		return vt.Inbound.Lookup(dst)
	}
	t, ok := vt.Outbound[vlan]
	if !ok {
		return 0, false
	}
	return t.Lookup(dst)
}

// Size returns the total number of entries: k/2 in-bound + (k/2)^2
// out-bound. For k=64 this is 1056, within commodity TCAM capacity
// (Section 4.3).
func (vt *VLANTable) Size() int {
	n := vt.Inbound.Size()
	for _, t := range vt.Outbound {
		n += t.Size()
	}
	return n
}
