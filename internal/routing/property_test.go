package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sharebackup/internal/topo"
)

// TestPerSwitchVsCombinedEquivalence is the core Section 4.3 claim: for
// every (source edge, destination) pair, the VLAN-combined failure-group
// table resolves the same forwarding decision as the source edge switch's
// own two-level table — so preloading the combined table into every switch
// of the group makes each a drop-in impersonator.
func TestPerSwitchVsCombinedEquivalence(t *testing.T) {
	k := 8
	for pod := 0; pod < k; pod++ {
		vt, err := BuildVLANTable(k, pod)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < k/2; j++ {
			in, out, err := BuildEdgeTable(k, pod, j)
			if err != nil {
				t.Fatal(err)
			}
			// Out-bound: tagged lookups match the edge's own table
			// for every non-local destination.
			for dpod := 0; dpod < k; dpod++ {
				for dsub := 0; dsub < k/2; dsub++ {
					for h := 0; h < k/2; h++ {
						dst := Addr{10, uint8(dpod), uint8(dsub), uint8(2 + h)}
						local := dpod == pod && dsub == j
						got, gok := vt.Lookup(j, dst)
						var want Port
						var wok bool
						if local {
							want, wok = in.Lookup(dst)
						} else {
							want, wok = out.Lookup(dst)
						}
						if gok != wok || got != want {
							t.Fatalf("pod %d edge %d dst %v: combined (%v,%v) != own (%v,%v)",
								pod, j, dst, got, gok, want, wok)
						}
					}
				}
			}
			// In-bound: untagged lookups match the shared in-bound
			// entries.
			for h := 0; h < k/2; h++ {
				dst := Addr{10, uint8(pod), uint8(j), uint8(2 + h)}
				got, gok := vt.Lookup(Untagged, dst)
				want, wok := in.Lookup(dst)
				if gok != wok || got != want {
					t.Fatalf("inbound mismatch at pod %d edge %d host %d", pod, j, h)
				}
			}
		}
	}
}

// TestQuickDeliveryMatchesECMPStructure: routed walks always have the
// structural length ECMP paths have, for random host pairs and ks.
func TestQuickDeliveryMatchesECMPStructure(t *testing.T) {
	for _, k := range []int{4, 6, 8} {
		ft, err := topo.NewFatTree(topo.Config{K: k})
		if err != nil {
			t.Fatal(err)
		}
		dp, err := NewDataPlane(ft)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		for i := 0; i < 150; i++ {
			src := rng.Intn(ft.NumHosts())
			dst := rng.Intn(ft.NumHosts())
			if src == dst {
				continue
			}
			walk, err := dp.Deliver(src, dst)
			if err != nil {
				t.Fatalf("k=%d Deliver(%d,%d): %v", k, src, dst, err)
			}
			paths, err := ft.ECMPPaths(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(walk)-1 != paths[0].Hops() {
				t.Fatalf("k=%d Deliver(%d,%d): %d hops, ECMP structure says %d",
					k, src, dst, len(walk)-1, paths[0].Hops())
			}
		}
	}
}

// TestQuickF10DetourProperties: for random single failures on random paths,
// a successful F10 local detour (a) avoids the failure, (b) keeps the
// original prefix up to the repair point, and (c) never shortens the path.
func TestQuickF10DetourProperties(t *testing.T) {
	ft, err := topo.NewFatTree(topo.Config{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := r.Intn(ft.NumHosts())
		dst := r.Intn(ft.NumHosts())
		if src == dst {
			return true
		}
		paths, err := ft.ECMPPaths(src, dst)
		if err != nil {
			return false
		}
		orig := paths[r.Intn(len(paths))]
		blocked := topo.NewBlocked()
		// Fail a random interior element of the path.
		if r.Intn(2) == 0 && orig.Hops() > 2 {
			idx := 1 + r.Intn(len(orig.Nodes)-2)
			if ft.Node(orig.Nodes[idx]).Kind == topo.KindHost {
				return true
			}
			blocked.BlockNode(orig.Nodes[idx])
		} else {
			blocked.BlockLink(orig.Links[r.Intn(len(orig.Links))])
		}
		np, ok := F10LocalReroute(ft, orig, blocked, nil)
		if !ok {
			return true // some failures have no local detour
		}
		if !blocked.PathOK(np) {
			return false
		}
		if np.Hops() < orig.Hops() {
			return false
		}
		if np.Nodes[0] != orig.Nodes[0] || np.Nodes[len(np.Nodes)-1] != orig.Nodes[len(orig.Nodes)-1] {
			return false
		}
		// Well-formed splice.
		for i, lid := range np.Links {
			l := ft.Link(lid)
			if !(l.A == np.Nodes[i] && l.B == np.Nodes[i+1]) && !(l.B == np.Nodes[i] && l.A == np.Nodes[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickGlobalOptimalNeverDilates: global-optimal rerouting always
// returns an equal-cost path when one survives.
func TestQuickGlobalOptimalNeverDilates(t *testing.T) {
	ft, err := topo.NewFatTree(topo.Config{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	load := NewLinkLoad(ft.Topology)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := r.Intn(ft.NumHosts())
		dst := r.Intn(ft.NumHosts())
		if src == dst {
			return true
		}
		blocked := topo.NewBlocked()
		blocked.BlockNode(ft.Agg(r.Intn(6), r.Intn(3)))
		blocked.BlockNode(ft.Core(r.Intn(9)))
		np, ok := GlobalOptimalReroute(ft, src, dst, blocked, load)
		if !ok {
			// Only possible if every equal-cost path is dead,
			// which two blocked fabric nodes cannot do in k=6
			// unless src/dst share the blocked elements' pod
			// structure; verify against the ECMP set.
			paths, _ := ft.ECMPPaths(src, dst)
			for _, p := range paths {
				if blocked.PathOK(p) {
					return false
				}
			}
			return true
		}
		paths, _ := ft.ECMPPaths(src, dst)
		return np.Hops() == paths[0].Hops() && blocked.PathOK(np)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
