package detect

import (
	"testing"
	"time"
)

func TestHealthyLinkNeverDeclared(t *testing.T) {
	m, err := NewMonitor(Config{}, func(CheckKind) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if _, down := m.Advance(time.Second); down {
		t.Fatal("healthy link declared down")
	}
	if m.Down() {
		t.Fatal("Down() true on healthy link")
	}
}

func TestDetectionAfterMissThreshold(t *testing.T) {
	healthy := true
	m, err := NewMonitor(Config{Interval: time.Millisecond, MissThreshold: 3},
		func(CheckKind) bool { return healthy })
	if err != nil {
		t.Fatal(err)
	}
	if _, down := m.Advance(5 * time.Millisecond); down {
		t.Fatal("early declaration")
	}
	healthy = false // fault at t=5ms
	ev, down := m.Advance(20 * time.Millisecond)
	if !down {
		t.Fatal("fault not detected")
	}
	// Probes at 6, 7, 8 ms miss; declared at the 3rd miss.
	if ev.At != 8*time.Millisecond {
		t.Errorf("declared at %v, want 8ms", ev.At)
	}
	if ev.Latency != 3*time.Millisecond {
		t.Errorf("latency = %v, want 3 intervals", ev.Latency)
	}
	if ev.Latency > (Config{Interval: time.Millisecond, MissThreshold: 3}).WorstCaseLatency() {
		t.Error("latency exceeds worst case")
	}
	// Declared-down monitors stay down and emit nothing further.
	if _, again := m.Advance(30 * time.Millisecond); again {
		t.Error("second declaration")
	}
	if !m.Down() {
		t.Error("Down() false after declaration")
	}
	m.Reset()
	healthy = true
	if _, down := m.Advance(40 * time.Millisecond); down {
		t.Error("declared down after reset on healthy link")
	}
}

func TestTransientMissesDoNotDeclare(t *testing.T) {
	probe := 0
	m, err := NewMonitor(Config{Interval: time.Millisecond, MissThreshold: 3},
		func(CheckKind) bool {
			// Every third probe round drops (transient loss).
			return probe%3 != 0
		})
	if err != nil {
		t.Fatal(err)
	}
	for now := time.Millisecond; now <= 50*time.Millisecond; now += time.Millisecond {
		probe++
		if _, down := m.Advance(now); down {
			t.Fatal("transient losses declared a failure")
		}
	}
}

func TestFirstFailingCheckReported(t *testing.T) {
	// Only the forwarding engine is broken (interface and framing fine) —
	// the classic gray failure F10's multi-check probing catches.
	m, err := NewMonitor(Config{}, func(k CheckKind) bool { return k != CheckForwarding })
	if err != nil {
		t.Fatal(err)
	}
	ev, down := m.Advance(10 * time.Millisecond)
	if !down {
		t.Fatal("gray failure undetected")
	}
	if ev.Kind != CheckForwarding {
		t.Errorf("reported %v, want forwarding-engine", ev.Kind)
	}
}

func TestLinkMonitorBothSidesReport(t *testing.T) {
	// The paper: "the switches on both sides of the failed link are
	// replaced. Both of the switches notify the network controller."
	lm, err := NewLinkMonitor(Config{Interval: time.Millisecond, MissThreshold: 2},
		func(CheckKind) bool { return false },
		func(k CheckKind) bool { return k == CheckInterface }, // B's interface sees light, framing dead
	)
	if err != nil {
		t.Fatal(err)
	}
	evA, evB, downA, downB := lm.Advance(10 * time.Millisecond)
	if !downA || !downB {
		t.Fatalf("both sides must detect: %v %v", downA, downB)
	}
	if evA.Kind != CheckInterface {
		t.Errorf("A reported %v, want the first check probed", evA.Kind)
	}
	if evB.Kind != CheckDataLink {
		t.Errorf("B reported %v, want data-link (interface is fine)", evB.Kind)
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(Config{}, nil); err == nil {
		t.Error("nil oracle accepted")
	}
	if _, err := NewMonitor(Config{Interval: -time.Second}, func(CheckKind) bool { return true }); err == nil {
		t.Error("negative interval accepted")
	}
	if _, err := NewLinkMonitor(Config{}, nil, func(CheckKind) bool { return true }); err == nil {
		t.Error("nil oracle in link monitor accepted")
	}
}

func TestCheckKindString(t *testing.T) {
	if CheckInterface.String() != "interface" || CheckDataLink.String() != "data-link" ||
		CheckForwarding.String() != "forwarding-engine" {
		t.Error("check names wrong")
	}
}
