// Package detect models the rapid failure detection ShareBackup adopts from
// F10 (Section 4.1): the two endpoints of every link continuously exchange
// test packets that exercise three things — the physical interface, the data
// link, and the peer's forwarding engine. A monitor declares the link down
// after a configurable number of consecutively missed probes, and reports
// which check failed first, feeding the controller's link-failure path.
//
// Time is virtual (time.Duration since an epoch), like the controller's, so
// detection latency is exact and deterministic in tests and experiments.
package detect

import (
	"fmt"
	"time"

	"sharebackup/internal/obs"
)

// CheckKind is one of F10's three probe targets.
type CheckKind uint8

const (
	// CheckInterface tests the physical interface (light/levels).
	CheckInterface CheckKind = iota
	// CheckDataLink tests framing across the link.
	CheckDataLink
	// CheckForwarding tests the peer's forwarding engine (a probe that
	// must be forwarded back).
	CheckForwarding
	numChecks
)

// String names the check.
func (c CheckKind) String() string {
	switch c {
	case CheckInterface:
		return "interface"
	case CheckDataLink:
		return "data-link"
	case CheckForwarding:
		return "forwarding-engine"
	default:
		return fmt.Sprintf("check(%d)", uint8(c))
	}
}

// Oracle reports the ground truth of one check at probe time. True means
// the probe succeeds.
type Oracle func(kind CheckKind) bool

// Config tunes a monitor.
type Config struct {
	// Interval is the probing interval. The paper assumes the same
	// interval as F10/Aspen; default 1 ms.
	Interval time.Duration
	// MissThreshold is how many consecutive misses of any single check
	// declare the link down. Default 3.
	MissThreshold int
}

func (c *Config) setDefaults() {
	if c.Interval == 0 {
		c.Interval = time.Millisecond
	}
	if c.MissThreshold == 0 {
		c.MissThreshold = 3
	}
}

// Event is a detection verdict.
type Event struct {
	// Kind is the first check that crossed the miss threshold.
	Kind CheckKind
	// At is when the link was declared down.
	At time.Duration
	// Latency is At minus the time of the first missed probe — the
	// detection delay the recovery latency budget pays.
	Latency time.Duration
}

// Monitor watches one link endpoint.
type Monitor struct {
	cfg    Config
	oracle Oracle

	misses    [numChecks]int
	firstMiss [numChecks]time.Duration
	down      bool
	lastProbe time.Duration

	// bus, when set via SetObserver, receives probe-missed events for
	// every missed check and a failure-declared event naming the first
	// check that crossed the threshold.
	bus      *obs.Bus
	sw, port int32
}

// SetObserver attaches an event bus and names the monitored endpoint
// (switch ID and port) for the emitted events. A nil bus disables emission.
func (m *Monitor) SetObserver(bus *obs.Bus, sw, port int) {
	m.bus = bus
	m.sw, m.port = int32(sw), int32(port)
}

// NewMonitor builds a monitor over the oracle.
func NewMonitor(cfg Config, oracle Oracle) (*Monitor, error) {
	if oracle == nil {
		return nil, fmt.Errorf("detect: nil oracle")
	}
	cfg.setDefaults()
	if cfg.Interval <= 0 || cfg.MissThreshold <= 0 {
		return nil, fmt.Errorf("detect: interval %v and threshold %d must be positive", cfg.Interval, cfg.MissThreshold)
	}
	return &Monitor{cfg: cfg, oracle: oracle, sw: obs.None, port: obs.None}, nil
}

// Down reports whether the monitor has declared the link down.
func (m *Monitor) Down() bool { return m.down }

// Config returns the effective configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Advance drives the monitor's probe loop from its last probe time through
// `now`, returning a detection event if the miss threshold was crossed.
// After declaring down, the monitor stays down until Reset.
func (m *Monitor) Advance(now time.Duration) (Event, bool) {
	if m.down {
		return Event{}, false
	}
	for t := m.lastProbe + m.cfg.Interval; t <= now; t += m.cfg.Interval {
		m.lastProbe = t
		for k := CheckKind(0); k < numChecks; k++ {
			if m.oracle(k) {
				m.misses[k] = 0
				continue
			}
			if m.misses[k] == 0 {
				m.firstMiss[k] = t
			}
			m.misses[k]++
			if m.bus.Enabled() {
				ev := obs.NewEvent(obs.KindProbeMissed, t)
				ev.Switch = m.sw
				ev.Port = m.port
				ev.Check = k.String()
				ev.Count = int32(m.misses[k])
				ev.Span = m.bus.ActiveSpan()
				m.bus.Emit(ev)
			}
			if m.misses[k] >= m.cfg.MissThreshold {
				m.down = true
				latency := t - m.firstMiss[k] + m.cfg.Interval
				if m.bus.Enabled() {
					ev := obs.NewEvent(obs.KindFailureDeclared, t)
					ev.Switch = m.sw
					ev.Port = m.port
					ev.Check = k.String()
					ev.Detection = latency
					ev.Detail = "link"
					ev.Span = m.bus.ActiveSpan()
					m.bus.Emit(ev)
				}
				return Event{
					Kind:    k,
					At:      t,
					Latency: latency,
				}, true
			}
		}
	}
	return Event{}, false
}

// Reset clears state after the link is repaired or the switch replaced.
func (m *Monitor) Reset() {
	m.down = false
	for k := range m.misses {
		m.misses[k] = 0
	}
}

// WorstCaseLatency returns the maximum detection latency the configuration
// permits: MissThreshold probe intervals (plus one interval of phase).
func (c Config) WorstCaseLatency() time.Duration {
	cfg := c
	cfg.setDefaults()
	return time.Duration(cfg.MissThreshold+1) * cfg.Interval
}

// LinkMonitor pairs the two endpoint monitors of a link, mirroring the
// paper: "switches and hosts keep sending packets to each other"; when a
// link fails, both sides detect it and both report to the controller.
type LinkMonitor struct {
	A, B *Monitor
}

// NewLinkMonitor builds the pair. Each side gets its own oracle: a fault in
// one side's interface breaks both directions, but the sides may observe
// different first-failing checks.
func NewLinkMonitor(cfg Config, a, b Oracle) (*LinkMonitor, error) {
	ma, err := NewMonitor(cfg, a)
	if err != nil {
		return nil, err
	}
	mb, err := NewMonitor(cfg, b)
	if err != nil {
		return nil, err
	}
	return &LinkMonitor{A: ma, B: mb}, nil
}

// Advance drives both sides and returns their events, if any.
func (lm *LinkMonitor) Advance(now time.Duration) (evA, evB Event, downA, downB bool) {
	evA, downA = lm.A.Advance(now)
	evB, downB = lm.B.Advance(now)
	return
}
