package bench

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func file(metrics map[string]Metric) *File {
	return &File{Meta: Stamp(), Metrics: metrics}
}

func TestStamp(t *testing.T) {
	m := Stamp()
	if m.TimestampUTC == "" || m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" {
		t.Fatalf("incomplete stamp: %+v", m)
	}
}

func TestGateNoRegression(t *testing.T) {
	old := file(map[string]Metric{
		"fct_p99_us": {Value: 100, Unit: "us"},
		"throughput": {Value: 50, Better: "higher"},
	})
	cur := file(map[string]Metric{
		"fct_p99_us": {Value: 105, Unit: "us"}, // 5% worse, under 10% tolerance
		"throughput": {Value: 60, Better: "higher"},
	})
	if regs := Gate(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestGateInjectedRegression(t *testing.T) {
	old := file(map[string]Metric{
		"fct_p99_us": {Value: 100, Unit: "us"},
		"throughput": {Value: 50, Better: "higher"},
	})
	cur := file(map[string]Metric{
		"fct_p99_us": {Value: 130, Unit: "us"}, // 30% worse
		"throughput": {Value: 30, Better: "higher"},
	})
	regs := Gate(old, cur, 0.10)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	// Sorted by name.
	if regs[0].Name != "fct_p99_us" || regs[1].Name != "throughput" {
		t.Fatalf("regressions = %v", regs)
	}
	if regs[0].Change < 0.29 || regs[0].Change > 0.31 {
		t.Fatalf("fct change = %v, want ≈0.30", regs[0].Change)
	}
	// "higher is better" dropping 50 -> 30 is a 40% regression.
	if regs[1].Change < 0.39 || regs[1].Change > 0.41 {
		t.Fatalf("throughput change = %v, want ≈0.40", regs[1].Change)
	}
	if !strings.Contains(regs[0].String(), "fct_p99_us") {
		t.Fatalf("unhelpful regression string: %q", regs[0])
	}
}

func TestGatePerMetricTolerance(t *testing.T) {
	old := file(map[string]Metric{
		"noisy": {Value: 100, Tolerance: 0.5},
	})
	cur := file(map[string]Metric{"noisy": {Value: 140}})
	if regs := Gate(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("per-metric tolerance not honoured: %v", regs)
	}
	cur.Metrics["noisy"] = Metric{Value: 160}
	if regs := Gate(old, cur, 0.10); len(regs) != 1 {
		t.Fatalf("60%% change should trip 50%% tolerance: %v", regs)
	}
}

func TestGateIgnoresNewAndRemovedMetrics(t *testing.T) {
	old := file(map[string]Metric{"gone": {Value: 10}, "zero": {Value: 0}})
	cur := file(map[string]Metric{"new": {Value: 99}, "zero": {Value: 5}})
	if regs := Gate(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("metric set changes flagged as regressions: %v", regs)
	}
}

func TestReadWriteRoundTripAndCompare(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")

	// First run: no prior file, no regressions.
	cur := file(map[string]Metric{"total_p99_us": {Value: 3200, Unit: "us"}})
	if err := cur.SetDetail(map[string]int{"trials": 32}); err != nil {
		t.Fatal(err)
	}
	regs, err := Compare(path, cur, 0.10)
	if err != nil || regs != nil {
		t.Fatalf("first run: regs=%v err=%v", regs, err)
	}
	if err := Write(path, cur); err != nil {
		t.Fatal(err)
	}

	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics["total_p99_us"].Value != 3200 || got.Meta.GoVersion != cur.Meta.GoVersion {
		t.Fatalf("round trip lost data: %+v", got)
	}
	var detail map[string]int
	if err := json.Unmarshal(got.Detail, &detail); err != nil || detail["trials"] != 32 {
		t.Fatalf("detail round trip: %v %v", detail, err)
	}

	// Second run regresses 50%: the gate must trip.
	next := file(map[string]Metric{"total_p99_us": {Value: 4800, Unit: "us"}})
	regs, err = Compare(path, next, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Name != "total_p99_us" {
		t.Fatalf("gate missed the injected regression: %v", regs)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := Write(path, file(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file did not error from Read")
	}
}
