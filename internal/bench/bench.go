// Package bench is the benchmark trajectory gate: it stamps benchmark
// results with their provenance (git SHA, timestamp, toolchain, host),
// persists them as a JSON file (conventionally BENCH_*.json, committed to
// the repo), and compares a fresh run against the prior file so a
// performance regression fails loudly instead of silently drifting across
// commits.
//
// The file format separates the gated surface from the raw data: Metrics is
// a flat name → {value, unit, better, tolerance} map the gate understands,
// Detail carries the full benchmark-specific structure for humans and
// plotting.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Meta records where and when a benchmark ran.
type Meta struct {
	GitSHA       string `json:"git_sha,omitempty"`
	Dirty        bool   `json:"git_dirty,omitempty"`
	TimestampUTC string `json:"timestamp_utc"`
	GoVersion    string `json:"go_version"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	Host         string `json:"host,omitempty"`
	// Workers is the simulator worker-pool bound the run used (0 =
	// unstamped / not applicable). Results are deterministic across worker
	// counts, but wall-clock metrics are not — a baseline stamped at one
	// pool size gates fairly only against runs at the same size, so the
	// count travels with the file.
	Workers int `json:"workers,omitempty"`
}

// Stamp collects the current provenance. The git fields are best-effort:
// outside a work tree (or without a git binary) they stay empty rather than
// failing the benchmark.
func Stamp() Meta {
	m := Meta{
		TimestampUTC: time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
	}
	if host, err := os.Hostname(); err == nil {
		m.Host = host
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		m.GitSHA = strings.TrimSpace(string(out))
		if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
			m.Dirty = len(strings.TrimSpace(string(st))) > 0
		}
	}
	return m
}

// Metric is one gated number.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// Better is the improvement direction: "lower" (default) or "higher".
	Better string `json:"better,omitempty"`
	// Tolerance is the allowed relative change in the worse direction
	// before the gate trips (0.1 = 10%). 0 falls back to the gate's
	// default.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// File is one persisted benchmark run.
type File struct {
	Meta    Meta              `json:"meta"`
	Metrics map[string]Metric `json:"metrics"`
	Detail  json.RawMessage   `json:"detail,omitempty"`
}

// SetDetail marshals v into the Detail field.
func (f *File) SetDetail(v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding detail: %w", err)
	}
	f.Detail = data
	return nil
}

// Read loads a persisted run.
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &f, nil
}

// Write persists f as indented JSON.
func Write(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Regression is one metric that got worse beyond its tolerance.
type Regression struct {
	Name      string
	Old, New  float64
	Unit      string
	Change    float64 // relative change in the worse direction, e.g. 0.3 = 30% worse
	Tolerance float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %g -> %g %s (%+.1f%% worse, tolerance %.1f%%)",
		r.Name, r.Old, r.New, r.Unit, 100*r.Change, 100*r.Tolerance)
}

// Gate compares a fresh run against the prior one and returns every metric
// that regressed beyond its tolerance (the prior file's Tolerance when set,
// else defaultTol). Metrics present on only one side are ignored: adding a
// benchmark must not fail the gate, and removing one is a code-review
// matter, not a perf regression. Old values of zero are skipped (no
// meaningful relative change).
func Gate(old, cur *File, defaultTol float64) []Regression {
	var regs []Regression
	for name, o := range old.Metrics {
		n, ok := cur.Metrics[name]
		if !ok || o.Value == 0 {
			continue
		}
		tol := o.Tolerance
		if tol == 0 {
			tol = defaultTol
		}
		// Relative change in the worse direction.
		change := (n.Value - o.Value) / o.Value
		if o.Better == "higher" {
			change = -change
		}
		if change > tol {
			regs = append(regs, Regression{
				Name: name, Old: o.Value, New: n.Value, Unit: o.Unit,
				Change: change, Tolerance: tol,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Name < regs[j].Name })
	return regs
}

// Compare runs the gate against the persisted prior run at path. A missing
// prior file is a first run, not a regression: it returns (nil, nil).
func Compare(path string, cur *File, defaultTol float64) ([]Regression, error) {
	old, err := Read(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return Gate(old, cur, defaultTol), nil
}
