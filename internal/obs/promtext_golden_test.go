package obs

import (
	"strings"
	"testing"
)

// TestPromTextGolden pins the Prometheus text exposition (format 0.0.4)
// byte-for-byte: sorted families, # TYPE lines, summary quantiles, and the
// histogram _sum/_count samples scrapers aggregate on. Histogram values stay
// below the first log-linear split so the quantiles are exact and the golden
// text is stable across bucket-layout changes.
func TestPromTextGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("recovery.count").Add(3)
	reg.Counter("obs.emit_events").Add(12)
	reg.Gauge("slo.budget_ns").Set(50000)
	h := reg.Histogram("recovery.total_ns")
	for _, v := range []int64{1, 2, 2, 3, 7} {
		h.Record(v)
	}

	want := strings.Join([]string{
		"# TYPE obs_emit_events counter",
		"obs_emit_events 12",
		"# TYPE recovery_count counter",
		"recovery_count 3",
		"# TYPE slo_budget_ns gauge",
		"slo_budget_ns 50000",
		"# TYPE recovery_total_ns summary",
		`recovery_total_ns{quantile="0.5"} 2`,
		`recovery_total_ns{quantile="0.9"} 7`,
		`recovery_total_ns{quantile="0.99"} 7`,
		"recovery_total_ns_sum 15",
		"recovery_total_ns_count 5",
		"",
	}, "\n")
	if got := reg.PromText(); got != want {
		t.Fatalf("PromText drifted from exposition format 0.0.4 golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPromTextNameSanitization pins the metric-name mapping into the
// exposition charset: dots to underscores, leading digits escaped.
func TestPromTextNameSanitization(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.b-c/d").Inc()
	reg.Counter("0weird").Inc()
	got := reg.PromText()
	for _, line := range []string{"a_b_c_d 1", "_0weird 1"} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, got)
		}
	}
}
