package obs

// Race-detector exercise of the event bus: concurrent emitters, span
// begin/end, registry updates, and sink attach/detach all running at once.
// The Makefile runs this package under `go test -race`.

import (
	"sync"
	"testing"
	"time"
)

func TestBusConcurrentEmittersAndAttachDetach(t *testing.T) {
	b := &Bus{}
	ring := NewRing(256)
	b.Attach(ring)

	const (
		emitters = 8
		perEmit  = 200
	)
	var wg sync.WaitGroup

	// Concurrent emitters.
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perEmit; i++ {
				if !b.Enabled() {
					continue
				}
				ev := NewEvent(KindProbeMissed, time.Duration(i))
				ev.Switch = int32(g)
				ev.Count = int32(i)
				b.Emit(ev)
			}
		}(g)
	}

	// Concurrent span context churn (control planes serialize recoveries,
	// but the slot itself must be race-free).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perEmit; i++ {
			id := b.BeginSpan()
			_ = b.ActiveSpan()
			_ = id
			b.EndSpan()
		}
	}()

	// Concurrent sink attach/detach.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			extra := NewRing(16)
			b.Attach(extra)
			b.Detach(extra)
		}
	}()

	wg.Wait()
	// The permanently attached ring must have seen a consistent stream:
	// strictly increasing sequence numbers.
	evs := ring.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("sequence numbers out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	if ring.Total() == 0 {
		t.Fatal("no events delivered")
	}
}

func TestRegistryConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared.counter")
			gg := r.Gauge("shared.gauge")
			for i := 0; i < 1000; i++ {
				c.Inc()
				gg.Add(1)
				gg.Add(-1)
			}
		}()
	}
	// Snapshot concurrently with the updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("shared.gauge").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}
