package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sharebackup/internal/metrics"
)

// Span is one recovery timeline: every event that carried the same span ID,
// plus the phase breakdown lifted from its recovery-complete event.
type Span struct {
	ID     uint64
	Kind   string // "node" or "link" (from the recovery-complete Detail)
	Events []Event

	// Complete is true once the span's recovery-complete event arrived.
	Complete bool
	// Phase breakdown (Section 5.3 / Table 2 of the reproduction):
	// Detection is failure-to-noticed, Report the switch-to-controller and
	// controller-to-circuit-switch communication, Reconfig the circuit
	// reconfiguration latency.
	Detection, Report, Reconfig, Total time.Duration
}

// PhaseSum returns Detection + Report + Reconfig; for a well-formed span it
// equals Total.
func (s *Span) PhaseSum() time.Duration { return s.Detection + s.Report + s.Reconfig }

// SpanCollector is a sink that groups events into recovery spans and
// accumulates the per-phase latency samples. Attach it to a bus (alone or
// alongside other sinks), run the workload, then read Spans/Breakdown.
type SpanCollector struct {
	mu    sync.Mutex
	spans map[uint64]*Span
	order []uint64
}

// NewSpanCollector builds an empty collector.
func NewSpanCollector() *SpanCollector {
	return &SpanCollector{spans: make(map[uint64]*Span)}
}

// Event implements Sink.
func (c *SpanCollector) Event(ev Event) {
	if ev.Span == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.add(ev)
}

func (c *SpanCollector) add(ev Event) {
	sp := c.spans[ev.Span]
	if sp == nil {
		sp = &Span{ID: ev.Span}
		c.spans[ev.Span] = sp
		c.order = append(c.order, ev.Span)
	}
	sp.Events = append(sp.Events, ev)
	if ev.Kind == KindRecoveryComplete {
		sp.Complete = true
		sp.Kind = ev.Detail
		sp.Detection = ev.Detection
		sp.Report = ev.Report
		sp.Reconfig = ev.Reconfig
		sp.Total = ev.Total
	}
}

// AddEvents replays decoded events (e.g. from ReadJSONL) into the collector.
func (c *SpanCollector) AddEvents(evs []Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ev := range evs {
		if ev.Span != 0 {
			c.add(ev)
		}
	}
}

// Spans returns all spans in first-seen order.
func (c *SpanCollector) Spans() []*Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Span, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.spans[id])
	}
	return out
}

// Breakdown aggregates the completed spans' phase samples. kind filters by
// recovery kind ("node", "link"); the empty string aggregates all.
func (c *SpanCollector) Breakdown(kind string) *Breakdown {
	b := &Breakdown{Kind: kind}
	for _, sp := range c.Spans() {
		if !sp.Complete || (kind != "" && sp.Kind != kind) {
			continue
		}
		b.Add(sp.Detection, sp.Report, sp.Reconfig, sp.Total)
	}
	return b
}

// Breakdown holds per-phase latency samples in microseconds, the unit of the
// paper's Section 5.3 budget.
type Breakdown struct {
	Kind                               string
	Detection, Report, Reconfig, Total []float64
}

// Add appends one recovery's phases.
func (b *Breakdown) Add(detection, report, reconfig, total time.Duration) {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	b.Detection = append(b.Detection, us(detection))
	b.Report = append(b.Report, us(report))
	b.Reconfig = append(b.Reconfig, us(reconfig))
	b.Total = append(b.Total, us(total))
}

// N returns the number of recoveries aggregated.
func (b *Breakdown) N() int { return len(b.Total) }

// PhaseNames lists the phases in budget order.
var PhaseNames = []string{"detection", "report", "reconfig", "total"}

// Phase returns the samples of one named phase.
func (b *Breakdown) Phase(name string) ([]float64, error) {
	switch name {
	case "detection":
		return b.Detection, nil
	case "report":
		return b.Report, nil
	case "reconfig":
		return b.Reconfig, nil
	case "total":
		return b.Total, nil
	}
	return nil, fmt.Errorf("obs: unknown phase %q", name)
}

// Summaries computes the order statistics of every phase (microseconds).
func (b *Breakdown) Summaries() map[string]metrics.Summary {
	out := make(map[string]metrics.Summary, len(PhaseNames))
	for _, name := range PhaseNames {
		xs, _ := b.Phase(name)
		out[name] = metrics.Summarize(xs)
	}
	return out
}

// Table renders the phase breakdown as an aligned table (values in µs),
// phases in budget order.
func (b *Breakdown) Table(title string) *metrics.Table {
	tbl := &metrics.Table{
		Title:   title,
		Headers: []string{"phase", "n", "min(µs)", "mean(µs)", "p50(µs)", "p90(µs)", "p99(µs)", "max(µs)"},
	}
	sums := b.Summaries()
	for _, name := range PhaseNames {
		s := sums[name]
		tbl.AddRow(name, s.N, s.Min, s.Mean, s.Median, s.P90, s.P99, s.Max)
	}
	return tbl
}

// KindCounts tallies events by kind, rendered in kind order — the sbtap
// overview table.
func KindCounts(evs []Event) *metrics.Table {
	counts := make(map[Kind]int)
	for _, ev := range evs {
		counts[ev.Kind]++
	}
	kinds := make([]Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	tbl := &metrics.Table{Title: "events by kind", Headers: []string{"kind", "count"}}
	for _, k := range kinds {
		tbl.AddRow(k.String(), counts[k])
	}
	return tbl
}
