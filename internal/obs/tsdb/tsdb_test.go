package tsdb

import (
	"sync"
	"testing"
	"time"

	"sharebackup/internal/obs"
)

// sampleAt drives one synchronous sample at a fixed offset from a fixed epoch
// so tests are deterministic regardless of wall clock.
func sampleAt(s *Store, off time.Duration) {
	s.Sample(time.UnixMilli(1_000_000).Add(off))
}

func TestGaugeSeriesAndRingWindowing(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("test.level")
	s := New(Config{Registry: reg, Window: 4})
	defer s.Close()

	for i := 0; i < 6; i++ {
		g.Set(int64(10 * i))
		sampleAt(s, time.Duration(i)*time.Second)
	}
	sd, ok := s.Series("test.level", 0)
	if !ok {
		t.Fatal("series missing")
	}
	if sd.Kind != KindGauge {
		t.Fatalf("kind = %q, want %q", sd.Kind, KindGauge)
	}
	// Ring of 4 keeps the newest 4 of 6 samples, oldest first.
	if len(sd.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(sd.Points))
	}
	for i, want := range []float64{20, 30, 40, 50} {
		if sd.Points[i].V != want {
			t.Errorf("point %d = %g, want %g", i, sd.Points[i].V, want)
		}
		if i > 0 && sd.Points[i].TMS <= sd.Points[i-1].TMS {
			t.Errorf("points not oldest-first: %v", sd.Points)
		}
	}
	// lastN trims from the old end.
	sd, _ = s.Series("test.level", 2)
	if len(sd.Points) != 2 || sd.Points[1].V != 50 {
		t.Fatalf("lastN: %v", sd.Points)
	}
}

func TestCounterBaselineDeltaAndReset(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("test.events")
	c.Add(100) // pre-existing count before the store ever samples
	s := New(Config{Registry: reg, Window: 16})
	defer s.Close()

	sampleAt(s, 0) // first observation: baseline, not a spike
	c.Add(7)
	sampleAt(s, time.Second)
	sampleAt(s, 2*time.Second) // no movement
	c.Add(-50)                 // a restart-style reset must not go negative
	sampleAt(s, 3*time.Second)
	c.Add(3)
	sampleAt(s, 4*time.Second)

	sd, ok := s.Series("test.events", 0)
	if !ok || sd.Kind != KindCounterDelta {
		t.Fatalf("series %+v ok=%v", sd, ok)
	}
	want := []float64{0, 7, 0, 0, 3}
	if len(sd.Points) != len(want) {
		t.Fatalf("got %d points, want %d", len(sd.Points), len(want))
	}
	for i, w := range want {
		if sd.Points[i].V != w {
			t.Errorf("delta[%d] = %g, want %g", i, sd.Points[i].V, w)
		}
	}
}

func TestHistogramQuantileAndCountSeries(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("test.lat")
	s := New(Config{Registry: reg, Window: 16})
	defer s.Close()

	for i := 1; i <= 10; i++ {
		h.Record(int64(i))
	}
	sampleAt(s, 0)
	h.Record(11)
	sampleAt(s, time.Second)

	for _, name := range []string{"test.lat.p50", "test.lat.p90", "test.lat.p99"} {
		sd, ok := s.Series(name, 0)
		if !ok {
			t.Fatalf("missing quantile series %s (have %v)", name, s.Names())
		}
		if sd.Kind != KindQuantile || len(sd.Points) != 2 {
			t.Fatalf("%s: %+v", name, sd)
		}
	}
	cnt, ok := s.Series("test.lat.count", 0)
	if !ok || cnt.Kind != KindCounterDelta {
		t.Fatalf("count series %+v ok=%v", cnt, ok)
	}
	if cnt.Points[0].V != 0 || cnt.Points[1].V != 1 {
		t.Fatalf("count deltas = %v, want [0 1]", cnt.Points)
	}
}

func TestCounterDeltaWindow(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("test.hits")
	g := reg.Gauge("test.level")
	s := New(Config{Registry: reg, Window: 64})
	defer s.Close()

	g.Set(1)
	for i := 0; i < 10; i++ {
		c.Add(2)
		sampleAt(s, time.Duration(i)*time.Second)
	}
	// First sample is the baseline (delta 0); 9 deltas of 2 follow. A 4s
	// window back from the newest sample covers the last 4 deltas.
	if d, ok := s.CounterDelta("test.hits", 4*time.Second); !ok || d != 8 {
		t.Fatalf("windowed delta = %g ok=%v, want 8", d, ok)
	}
	// A window wider than the buffer sums everything but the baseline.
	if d, ok := s.CounterDelta("test.hits", time.Hour); !ok || d != 18 {
		t.Fatalf("full-window delta = %g ok=%v, want 18", d, ok)
	}
	if _, ok := s.CounterDelta("no.such.series", time.Minute); ok {
		t.Fatal("unknown series should report !ok")
	}
	if _, ok := s.CounterDelta("test.level", time.Minute); ok {
		t.Fatal("gauge series must not satisfy CounterDelta")
	}
}

func TestSLOWatchdogBurnSource(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg, Window: 64})
	defer s.Close()
	w := obs.NewSLOWatchdog(obs.SLOConfig{
		Budget:     time.Millisecond,
		Registry:   reg,
		BurnSource: s,
		BurnWindow: time.Minute,
	})

	// Two breaching and two healthy recoveries, sampled as they happen so
	// the store's slo.* series have wall-clock history.
	ev := func(total time.Duration, span uint64) obs.Event {
		return obs.Event{Kind: obs.KindRecoveryComplete, Total: total, Trace: 1, Span: span}
	}
	sampleAt(s, 0)
	w.Event(ev(2*time.Millisecond, 1))
	sampleAt(s, time.Second)
	w.Event(ev(2*time.Millisecond, 2))
	sampleAt(s, 2*time.Second)
	w.Event(ev(time.Microsecond, 3))
	sampleAt(s, 3*time.Second)
	w.Event(ev(time.Microsecond, 4))
	sampleAt(s, 4*time.Second)
	// One more event makes the watchdog consult the source now that the
	// sampler has seen all four recoveries (2 breaches / 4 recoveries).
	w.Event(ev(time.Microsecond, 5))

	if got := w.BurnRate(); got != 0.5 {
		t.Fatalf("windowed burn rate = %g, want 0.5", got)
	}
}

func TestCloseIdempotentAndStartOnce(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry(), Interval: time.Millisecond})
	s.Start()
	s.Start()
	s.Close()
	s.Close()
}

func TestSelfOverheadCounters(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	defer s.Close()
	sampleAt(s, 0)
	sampleAt(s, time.Second)
	if got := reg.Counter("tsdb.samples").Value(); got != 2 {
		t.Fatalf("tsdb.samples = %d, want 2", got)
	}
	if reg.Counter("tsdb.sample_cpu_ns").Value() <= 0 {
		t.Fatal("tsdb.sample_cpu_ns not metered")
	}
	// The meter counters themselves become series on the next sample.
	sampleAt(s, 2*time.Second)
	if _, ok := s.Series("tsdb.samples", 0); !ok {
		t.Fatal("store does not sample its own overhead counters")
	}
}

// TestConcurrentExportAndSampling is the race hammer: metric writers,
// Export/PromText readers, and the store's sampling goroutine all run
// concurrently. Run with -race (the Makefile race target covers this
// package) to prove the export path and the sampler are data-race free.
func TestConcurrentExportAndSampling(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg, Interval: time.Millisecond, Window: 32})
	s.Start()
	defer s.Close()

	const goroutines = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := reg.Counter("hammer.count")
			g := reg.Gauge("hammer.level")
			h := reg.Histogram("hammer.lat")
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(n))
				h.Record(int64(n % 1000))
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = reg.Export(false)
				_ = reg.PromText()
				_, _ = s.Series("hammer.count", 8)
				_ = s.All(4)
				_, _ = s.CounterDelta("hammer.count", time.Second)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	if _, ok := s.Series("hammer.count", 0); !ok {
		t.Fatal("sampler never saw the hammer counter")
	}
}
