// Package tsdb is a bounded in-memory windowed time-series store: it samples
// an obs.Registry export on an interval into fixed-size per-series rings —
// counter deltas, gauge levels, histogram quantiles — so the recent history
// of every metric is queryable (debughttp /timeseriesz, sbtap -ts, the SLO
// watchdog's windowed burn rate) without any external collector. Memory is
// strictly bounded: series × window points, regardless of uptime.
package tsdb

import (
	"sort"
	"sync"
	"time"

	"sharebackup/internal/obs"
)

// Series kinds.
const (
	KindCounterDelta = "counter-delta" // per-interval increase of a counter
	KindGauge        = "gauge"         // sampled level
	KindQuantile     = "quantile"      // sampled histogram order statistic
)

// Config tunes a Store.
type Config struct {
	// Registry is the metrics source sampled each interval. Nil means
	// obs.DefaultRegistry.
	Registry *obs.Registry
	// Interval is the sampling period of Start's goroutine. Default 1s.
	Interval time.Duration
	// Window is how many points each series ring retains. Default 600
	// (10 minutes at the default interval).
	Window int
}

// Point is one sample: wall-clock milliseconds and a value.
type Point struct {
	TMS int64   `json:"t_ms"`
	V   float64 `json:"v"`
}

// SeriesData is the JSON shape of one series range query — what
// /timeseriesz serves and sbtap -ts renders.
type SeriesData struct {
	Name       string  `json:"name"`
	Kind       string  `json:"kind"`
	IntervalMS int64   `json:"interval_ms"`
	Points     []Point `json:"points"`
}

// ring is a fixed-capacity point buffer.
type ring struct {
	kind string
	pts  []Point
	next int
	full bool
}

func (r *ring) add(p Point) {
	r.pts[r.next] = p
	r.next++
	if r.next == len(r.pts) {
		r.next = 0
		r.full = true
	}
}

// points returns the buffered points oldest first, optionally only the last n.
func (r *ring) points(lastN int) []Point {
	var out []Point
	if r.full {
		out = make([]Point, 0, len(r.pts))
		out = append(out, r.pts[r.next:]...)
		out = append(out, r.pts[:r.next]...)
	} else {
		out = append([]Point(nil), r.pts[:r.next]...)
	}
	if lastN > 0 && len(out) > lastN {
		out = out[len(out)-lastN:]
	}
	return out
}

// Store samples a registry into bounded per-series rings. Counters become
// per-interval deltas (the first observation of a counter sets its baseline
// and records 0, so a long-lived counter joining mid-flight doesn't spike
// the series). Gauges record levels. Histograms contribute quantile series
// (name.p50/.p90/.p99) plus a name.count delta series. The store meters its
// own sampling CPU (tsdb.samples, tsdb.sample_cpu_ns) — observability that
// doesn't measure its own tax can't be budgeted.
//
// Store implements obs.CounterDeltaSource, which is how the SLO watchdog's
// burn rate becomes a windowed rate over wall time instead of a count over
// the last N recoveries.
type Store struct {
	cfg Config

	mSamples  *obs.Counter // tsdb.samples
	mSampleNS *obs.Counter // tsdb.sample_cpu_ns

	mu     sync.Mutex
	series map[string]*ring
	base   map[string]int64 // cumulative counter baselines

	startOnce sync.Once
	quit      chan struct{}
	wg        sync.WaitGroup
}

// New builds a store (sampling does not start until Start).
func New(cfg Config) *Store {
	if cfg.Registry == nil {
		cfg.Registry = obs.DefaultRegistry
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 600
	}
	return &Store{
		cfg:       cfg,
		mSamples:  cfg.Registry.Counter("tsdb.samples"),
		mSampleNS: cfg.Registry.Counter("tsdb.sample_cpu_ns"),
		series:    make(map[string]*ring),
		base:      make(map[string]int64),
		quit:      make(chan struct{}),
	}
}

// Start launches the sampling goroutine. Idempotent.
func (s *Store) Start() {
	s.startOnce.Do(func() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			tick := time.NewTicker(s.cfg.Interval)
			defer tick.Stop()
			for {
				select {
				case <-s.quit:
					return
				case now := <-tick.C:
					s.Sample(now)
				}
			}
		}()
	})
}

// Close stops the sampling goroutine (safe if Start was never called).
func (s *Store) Close() {
	select {
	case <-s.quit:
		return
	default:
	}
	close(s.quit)
	s.wg.Wait()
}

// Sample takes one sample of the registry at the given wall time. Exposed so
// tests and synchronous callers can drive the store without the goroutine.
func (s *Store) Sample(now time.Time) {
	t0 := time.Now()
	ex := s.cfg.Registry.Export(false)
	tms := now.UnixMilli()

	s.mu.Lock()
	for name, v := range ex.Counters {
		s.recordCounterLocked(name, tms, v)
	}
	for name, v := range ex.Gauges {
		s.recordLocked(name, KindGauge, tms, float64(v))
	}
	for name, h := range ex.Histograms {
		s.recordLocked(name+".p50", KindQuantile, tms, float64(h.P50))
		s.recordLocked(name+".p90", KindQuantile, tms, float64(h.P90))
		s.recordLocked(name+".p99", KindQuantile, tms, float64(h.P99))
		s.recordCounterLocked(name+".count", tms, h.Count)
	}
	s.mu.Unlock()

	s.mSampleNS.Add(time.Since(t0).Nanoseconds())
	s.mSamples.Inc()
}

func (s *Store) recordCounterLocked(name string, tms int64, v int64) {
	last, seen := s.base[name]
	s.base[name] = v
	delta := v - last
	if !seen || delta < 0 {
		// First observation (baseline) or a reset: record no increase.
		delta = 0
	}
	s.recordLocked(name, KindCounterDelta, tms, float64(delta))
}

func (s *Store) recordLocked(name, kind string, tms int64, v float64) {
	r := s.series[name]
	if r == nil {
		r = &ring{kind: kind, pts: make([]Point, s.cfg.Window)}
		s.series[name] = r
	}
	r.add(Point{TMS: tms, V: v})
}

// Names returns all series names, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.series))
	for name := range s.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Kinds returns (name, kind) for every series, sorted by name — the
// /timeseriesz index body.
func (s *Store) Kinds() []SeriesData {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesData, 0, len(s.series))
	for name, r := range s.series {
		out = append(out, SeriesData{Name: name, Kind: r.kind, IntervalMS: s.cfg.Interval.Milliseconds()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Series returns the last n points of one series (all buffered points when
// n <= 0). ok is false for unknown series.
func (s *Store) Series(name string, n int) (SeriesData, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.series[name]
	if r == nil {
		return SeriesData{}, false
	}
	return SeriesData{
		Name:       name,
		Kind:       r.kind,
		IntervalMS: s.cfg.Interval.Milliseconds(),
		Points:     r.points(n),
	}, true
}

// All returns every series (last n points each), sorted by name.
func (s *Store) All(n int) []SeriesData {
	names := s.Names()
	out := make([]SeriesData, 0, len(names))
	for _, name := range names {
		if sd, ok := s.Series(name, n); ok {
			out = append(out, sd)
		}
	}
	return out
}

// CounterDelta implements obs.CounterDeltaSource: the summed increase of a
// counter-delta series over the trailing window, measured back from the
// newest sample. ok is false when the series is unknown, not a counter, or
// empty.
func (s *Store) CounterDelta(name string, window time.Duration) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.series[name]
	if r == nil || r.kind != KindCounterDelta {
		return 0, false
	}
	pts := r.points(0)
	if len(pts) == 0 {
		return 0, false
	}
	cut := pts[len(pts)-1].TMS - window.Milliseconds()
	var sum float64
	for _, p := range pts {
		if p.TMS > cut {
			sum += p.V
		}
	}
	return sum, true
}
