package obs

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketLayout(t *testing.T) {
	// Every bucket's [low, high] range must be consistent with histIndex,
	// and bucket boundaries must tile the value axis without gaps.
	for i := 0; i < histBuckets; i++ {
		low, high := histBucketLow(i), histBucketHigh(i)
		if low > high {
			t.Fatalf("bucket %d: low %d > high %d", i, low, high)
		}
		if got := histIndex(low); got != i {
			t.Fatalf("histIndex(low=%d) = %d, want %d", low, got, i)
		}
		if high != math.MaxInt64 {
			if got := histIndex(high); got != i {
				t.Fatalf("histIndex(high=%d) = %d, want %d", high, got, i)
			}
			if next := histBucketLow(i + 1); next != high+1 {
				t.Fatalf("bucket %d high %d, bucket %d low %d: gap", i, high, i+1, next)
			}
		}
	}
	if histIndex(math.MaxInt64) != histBuckets-1 {
		t.Fatalf("MaxInt64 maps to %d, want last bucket %d", histIndex(math.MaxInt64), histBuckets-1)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1..1000: quantiles must land within one sub-bucket (6.25%) of exact.
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %d/%d, want 1/1000", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("mean = %v, want 500.5", got)
	}
	for _, tc := range []struct {
		q     float64
		exact float64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}, {1, 1000}, {0, 1}} {
		got := float64(h.Quantile(tc.q))
		if relErr := math.Abs(got-tc.exact) / tc.exact; relErr > 1.0/histSubCount {
			t.Errorf("q=%v: got %v, exact %v (rel err %.3f > %.3f)",
				tc.q, got, tc.exact, relErr, 1.0/histSubCount)
		}
	}
}

func TestHistogramNegativeAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Record(5)
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 || nilH.Mean() != 0 {
		t.Fatal("nil histogram not inert")
	}
	nilH.Merge(&Histogram{})

	h := &Histogram{}
	h.Record(-17) // clamps to 0
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative record: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for v := int64(1); v <= 100; v++ {
		a.Record(v)
	}
	for v := int64(1001); v <= 1100; v++ {
		b.Record(v)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if a.Min() != 1 || a.Max() != 1100 {
		t.Fatalf("merged min/max = %d/%d, want 1/1100", a.Min(), a.Max())
	}
	if got := a.Quantile(0.5); got < 90 || got > 115 {
		t.Fatalf("merged p50 = %d, want ~100", got)
	}
	wantSum := int64(100*101/2) + int64(1100*1101/2-1000*1001/2)
	if a.Sum() != wantSum {
		t.Fatalf("merged sum = %d, want %d", a.Sum(), wantSum)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	const goroutines, per = 8, 2000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	if total != goroutines*per {
		t.Fatalf("bucket total = %d, want %d", total, goroutines*per)
	}
}

func TestRegistryHistogramAndExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-1)
	h := r.Histogram("fluid.fct_us")
	if h != r.Histogram("fluid.fct_us") {
		t.Fatal("same-name histogram handles differ")
	}
	for v := int64(0); v < 100; v++ {
		h.Record(v)
	}
	ex := r.Export(true)
	if ex.Counters["c"] != 3 || ex.Gauges["g"] != -1 {
		t.Fatalf("export counters/gauges wrong: %+v", ex)
	}
	hs, ok := ex.Histograms["fluid.fct_us"]
	if !ok || hs.Count != 100 || len(hs.Buckets) == 0 {
		t.Fatalf("export histogram wrong: %+v", hs)
	}
	if ex2 := r.Export(false); ex2.Histograms["fluid.fct_us"].Buckets != nil {
		t.Fatal("Export(false) kept buckets")
	}

	snap := r.Snapshot()
	for _, want := range []string{"c 3", "g -1", "fluid.fct_us.count 100", "fluid.fct_us.p50 ", "fluid.fct_us.max 99"} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}

	var nilR *Registry
	nilR.Histogram("x").Record(1)
	if nilR.Export(true).Counters == nil {
		t.Fatal("nil registry export has nil maps")
	}
}

func TestHistogramSnapshotRender(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v <= 64; v++ {
		h.Record(v)
	}
	out := h.Snapshot().Render("fct (µs)", 20)
	if !strings.Contains(out, "fct (µs)") || !strings.Contains(out, "#") || !strings.Contains(out, "p99=") {
		t.Fatalf("render missing pieces:\n%s", out)
	}
	empty := (&Histogram{}).Snapshot().Render("empty", 20)
	if !strings.Contains(empty, "n=0") {
		t.Fatalf("empty render: %q", empty)
	}
}

func TestRingCountsDrops(t *testing.T) {
	r := NewRing(4)
	reg := NewRegistry()
	ctr := reg.Counter("obs.ring_dropped_events")
	r.CountDropsIn(ctr)
	for i := 0; i < 10; i++ {
		r.Event(NewEvent(KindLog, 0))
	}
	// Capacity 4, 10 writes: the first 4 fill, the next 6 each evict one.
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	if got := ctr.Value(); got != 6 {
		t.Fatalf("registry drop counter = %d, want 6", got)
	}
	if r.Total() != 10 || len(r.Events()) != 4 {
		t.Fatalf("total=%d events=%d", r.Total(), len(r.Events()))
	}
}
