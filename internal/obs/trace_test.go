package obs

import (
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"
)

func mustOpenFile(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestReadJSONLTruncatedTail(t *testing.T) {
	var sb strings.Builder
	sink := NewJSONLSink(&sb)
	for i := 0; i < 3; i++ {
		ev := NewEvent(KindLog, time.Duration(i))
		ev.Detail = "line"
		sink.Event(ev)
	}
	full := sb.String()

	// A producer killed mid-write leaves an unterminated, unparseable tail:
	// the intact prefix must still be readable.
	cut := full[:len(full)-7]
	evs, err := ReadJSONL(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("truncated tail not tolerated: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("read %d events from truncated stream, want 2", len(evs))
	}

	// Corruption on a newline-TERMINATED line is not crash truncation and
	// must still error.
	lines := strings.SplitAfter(full, "\n")
	corrupt := lines[0] + "{bad json}\n" + lines[2]
	if _, err := ReadJSONL(strings.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt terminated line accepted")
	}

	// An empty trailing newline (clean shutdown) reads everything.
	evs, err = ReadJSONL(strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("read %d events, want 3", len(evs))
	}
}

// TestHistogramMergeSnapshotProperty shards random observations across
// several histograms, merges their snapshots into one, and checks the result
// is indistinguishable (count, sum, min, max, quantiles, buckets) from a
// single histogram that recorded everything.
func TestHistogramMergeSnapshotProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nShards := 1 + rng.Intn(5)
		shards := make([]*Histogram, nShards)
		for i := range shards {
			shards[i] = &Histogram{}
		}
		var whole Histogram
		n := rng.Intn(2000)
		for i := 0; i < n; i++ {
			var v int64
			switch rng.Intn(3) {
			case 0:
				v = int64(rng.Intn(16)) // unit buckets
			case 1:
				v = int64(rng.Intn(1_000_000))
			default:
				v = int64(rng.Uint64() >> rng.Intn(40)) // heavy tail
				if v < 0 {
					v = -v
				}
			}
			shards[rng.Intn(nShards)].Record(v)
			whole.Record(v)
		}

		var merged Histogram
		for _, sh := range shards {
			merged.MergeSnapshot(sh.Snapshot())
		}
		got, want := merged.Snapshot(), whole.Snapshot()
		if got.Count != want.Count || got.Sum != want.Sum || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("trial %d: merged {count %d sum %d min %d max %d} != whole {count %d sum %d min %d max %d}",
				trial, got.Count, got.Sum, got.Min, got.Max, want.Count, want.Sum, want.Min, want.Max)
		}
		if got.P50 != want.P50 || got.P90 != want.P90 || got.P99 != want.P99 {
			t.Fatalf("trial %d: merged quantiles (%d %d %d) != whole (%d %d %d)",
				trial, got.P50, got.P90, got.P99, want.P50, want.P90, want.P99)
		}
		if len(got.Buckets) != len(want.Buckets) {
			t.Fatalf("trial %d: merged %d buckets != whole %d", trial, len(got.Buckets), len(want.Buckets))
		}
		for i := range got.Buckets {
			if got.Buckets[i] != want.Buckets[i] {
				t.Fatalf("trial %d: bucket %d: %+v != %+v", trial, i, got.Buckets[i], want.Buckets[i])
			}
		}
	}
}

func completeEvent(trace, span uint64, total time.Duration) Event {
	ev := NewEvent(KindRecoveryComplete, 0)
	ev.Trace = trace
	ev.Span = span
	ev.Total = total
	return ev
}

func TestSLOWatchdog(t *testing.T) {
	reg := NewRegistry()
	var breached []Event
	w := NewSLOWatchdog(SLOConfig{
		Budget:   10 * time.Millisecond,
		Window:   4,
		Registry: reg,
		OnBreach: func(ev Event) { breached = append(breached, ev) },
	})

	w.Event(completeEvent(1, 1, 5*time.Millisecond))  // ok
	w.Event(completeEvent(1, 1, 99*time.Millisecond)) // wall mirror of the same recovery: ignored
	w.Event(completeEvent(2, 2, 20*time.Millisecond)) // breach
	w.Event(completeEvent(2, 2, 20*time.Millisecond)) // mirror again
	w.Event(NewEvent(KindLog, 0))                     // unrelated kinds ignored

	if got := w.Recoveries(); got != 2 {
		t.Errorf("recoveries = %d, want 2", got)
	}
	if got := w.Breaches(); got != 1 {
		t.Errorf("breaches = %d, want 1", got)
	}
	if got := w.BurnRate(); got != 0.5 {
		t.Errorf("burn rate = %v, want 0.5", got)
	}
	if len(breached) != 1 || breached[0].Trace != 2 {
		t.Errorf("OnBreach calls = %+v, want one for trace 2", breached)
	}
	if got := reg.Gauge("slo.budget_ns").Value(); got != int64(10*time.Millisecond) {
		t.Errorf("slo.budget_ns = %d", got)
	}
	if got := reg.Histogram("slo.recovery_total_ns").Count(); got != 2 {
		t.Errorf("slo.recovery_total_ns count = %d, want 2", got)
	}

	// Untraced events (trace 0) never dedup against each other.
	w.Event(completeEvent(0, 0, time.Millisecond))
	w.Event(completeEvent(0, 0, time.Millisecond))
	if got := w.Recoveries(); got != 4 {
		t.Errorf("recoveries after untraced pair = %d, want 4", got)
	}
}

func TestFlightRecorderTriggerWritesBundle(t *testing.T) {
	reg := NewRegistry()
	bus := &Bus{}
	bus.SetProc("test-proc")
	fr := NewFlightRecorder(FlightConfig{
		Dir:       t.TempDir(),
		SLOBudget: time.Millisecond,
		Registry:  reg,
	})
	fr.Attach(bus)
	defer fr.Close()

	for i := 0; i < 10; i++ {
		bus.Emit(NewEvent(KindLog, time.Duration(i)))
	}
	bus.Emit(completeEvent(7, 7, 5*time.Millisecond)) // over budget

	if !fr.WaitDump(1, 5*time.Second) {
		t.Fatal("no bundle written")
	}
	bundle := fr.Dumps()[0]
	if !strings.Contains(bundle, "slo-breach") {
		t.Errorf("bundle %s not named for trigger", bundle)
	}
	evs, err := ReadJSONL(mustOpenFile(t, bundle+"/events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 11 {
		t.Errorf("bundle holds %d events, want 11", len(evs))
	}
	if got := reg.Counter("flight.dumps").Value(); got != 1 {
		t.Errorf("flight.dumps = %d, want 1", got)
	}

	// A second breach inside the cooldown must not write another bundle.
	bus.Emit(completeEvent(8, 8, 5*time.Millisecond))
	time.Sleep(20 * time.Millisecond)
	if got := len(fr.Dumps()); got != 1 {
		t.Errorf("cooldown violated: %d bundles", got)
	}
}

func TestPromText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("slo.breaches").Add(3)
	reg.Gauge("ctlnet.connections").Set(7)
	h := reg.Histogram("recovery.total_ns")
	h.Record(100)
	h.Record(200)
	text := reg.PromText()
	for _, want := range []string{
		"# TYPE slo_breaches counter\nslo_breaches 3\n",
		"# TYPE ctlnet_connections gauge\nctlnet_connections 7\n",
		"# TYPE recovery_total_ns summary\n",
		"recovery_total_ns{quantile=\"0.5\"}",
		"recovery_total_ns_sum 300\n",
		"recovery_total_ns_count 2\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("PromText missing %q:\n%s", want, text)
		}
	}
}
