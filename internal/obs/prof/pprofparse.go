package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Attribution aggregates a CPU profile's samples by the sb_phase goroutine
// label — the bundle's answer to "which recovery phase burned the CPU".
// Values are in the profile's units: sample counts and (for the standard
// CPU profile sample_type) nanoseconds of CPU.
type Attribution struct {
	TotalSamples     int64               `json:"total_samples"`
	TotalCPUNS       int64               `json:"total_cpu_ns"`
	Phases           map[string]PhaseCPU `json:"phases,omitempty"`
	UnlabeledSamples int64               `json:"unlabeled_samples"`
	UnlabeledCPUNS   int64               `json:"unlabeled_cpu_ns"`
	Err              string              `json:"error,omitempty"`
}

// PhaseCPU is one phase's share of the profile.
type PhaseCPU struct {
	Samples int64 `json:"samples"`
	CPUNS   int64 `json:"cpu_ns"`
}

// PhaseAttribution parses a (gzipped) pprof CPU profile and sums its samples
// by the LabelKey goroutine label. The parser is a minimal hand-rolled
// protobuf scanner — it reads only the fields attribution needs (samples,
// their values and string labels, and the string table), which keeps the
// repo dependency-free.
func PhaseAttribution(data []byte) (*Attribution, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		data = raw
	}

	// Pass 1: collect the string table and raw samples. The string table
	// may appear after the samples in the encoding, so label strings are
	// resolved in a second pass.
	var strtab []string
	type rawSample struct {
		values []int64
		labels [][2]int64 // (key string index, str string index)
	}
	var samples []rawSample

	p := data
	for len(p) > 0 {
		field, wire, rest, err := readTag(p)
		if err != nil {
			return nil, err
		}
		p = rest
		switch {
		case field == 2 && wire == 2: // Profile.sample
			msg, rest, err := readBytes(p)
			if err != nil {
				return nil, err
			}
			p = rest
			s, err := parseSample(msg)
			if err != nil {
				return nil, err
			}
			samples = append(samples, rawSample{values: s.values, labels: s.labels})
		case field == 6 && wire == 2: // Profile.string_table
			msg, rest, err := readBytes(p)
			if err != nil {
				return nil, err
			}
			p = rest
			strtab = append(strtab, string(msg))
		default:
			rest, err := skipField(p, wire)
			if err != nil {
				return nil, err
			}
			p = rest
		}
	}

	str := func(i int64) string {
		if i >= 0 && int(i) < len(strtab) {
			return strtab[i]
		}
		return ""
	}

	// Pass 2: aggregate. values[0] is the sample count; values[1], when
	// present (the CPU profile's cpu/nanoseconds sample type), is CPU ns.
	attr := &Attribution{Phases: map[string]PhaseCPU{}}
	for _, s := range samples {
		if len(s.values) == 0 {
			continue
		}
		count := s.values[0]
		ns := count
		if len(s.values) > 1 {
			ns = s.values[1]
		}
		attr.TotalSamples += count
		attr.TotalCPUNS += ns
		phase := ""
		for _, l := range s.labels {
			if str(l[0]) == LabelKey {
				phase = str(l[1])
				break
			}
		}
		if phase == "" {
			attr.UnlabeledSamples += count
			attr.UnlabeledCPUNS += ns
			continue
		}
		pc := attr.Phases[phase]
		pc.Samples += count
		pc.CPUNS += ns
		attr.Phases[phase] = pc
	}
	if len(attr.Phases) == 0 {
		attr.Phases = nil
	}
	return attr, nil
}

type parsedSample struct {
	values []int64
	labels [][2]int64
}

func parseSample(p []byte) (parsedSample, error) {
	var s parsedSample
	for len(p) > 0 {
		field, wire, rest, err := readTag(p)
		if err != nil {
			return s, err
		}
		p = rest
		switch {
		case field == 2 && wire == 0: // Sample.value, unpacked
			v, rest, err := readVarint(p)
			if err != nil {
				return s, err
			}
			p = rest
			s.values = append(s.values, int64(v))
		case field == 2 && wire == 2: // Sample.value, packed
			msg, rest, err := readBytes(p)
			if err != nil {
				return s, err
			}
			p = rest
			for len(msg) > 0 {
				v, r2, err := readVarint(msg)
				if err != nil {
					return s, err
				}
				msg = r2
				s.values = append(s.values, int64(v))
			}
		case field == 3 && wire == 2: // Sample.label
			msg, rest, err := readBytes(p)
			if err != nil {
				return s, err
			}
			p = rest
			key, strIdx, err := parseLabel(msg)
			if err != nil {
				return s, err
			}
			s.labels = append(s.labels, [2]int64{key, strIdx})
		default:
			rest, err := skipField(p, wire)
			if err != nil {
				return s, err
			}
			p = rest
		}
	}
	return s, nil
}

func parseLabel(p []byte) (key, str int64, err error) {
	for len(p) > 0 {
		field, wire, rest, err := readTag(p)
		if err != nil {
			return 0, 0, err
		}
		p = rest
		switch {
		case field == 1 && wire == 0: // Label.key
			v, rest, err := readVarint(p)
			if err != nil {
				return 0, 0, err
			}
			p = rest
			key = int64(v)
		case field == 2 && wire == 0: // Label.str
			v, rest, err := readVarint(p)
			if err != nil {
				return 0, 0, err
			}
			p = rest
			str = int64(v)
		default:
			rest, err := skipField(p, wire)
			if err != nil {
				return 0, 0, err
			}
			p = rest
		}
	}
	return key, str, nil
}

func readTag(p []byte) (field int, wire int, rest []byte, err error) {
	v, rest, err := readVarint(p)
	if err != nil {
		return 0, 0, nil, err
	}
	return int(v >> 3), int(v & 7), rest, nil
}

func readVarint(p []byte) (uint64, []byte, error) {
	var v uint64
	for i := 0; i < len(p) && i < 10; i++ {
		v |= uint64(p[i]&0x7f) << (7 * i)
		if p[i]&0x80 == 0 {
			return v, p[i+1:], nil
		}
	}
	return 0, nil, fmt.Errorf("prof: truncated varint in profile")
}

func readBytes(p []byte) ([]byte, []byte, error) {
	n, rest, err := readVarint(p)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("prof: truncated field in profile (%d bytes promised, %d left)", n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

func skipField(p []byte, wire int) ([]byte, error) {
	switch wire {
	case 0: // varint
		_, rest, err := readVarint(p)
		return rest, err
	case 1: // fixed64
		if len(p) < 8 {
			return nil, fmt.Errorf("prof: truncated fixed64 in profile")
		}
		return p[8:], nil
	case 2: // length-delimited
		_, rest, err := readBytes(p)
		return rest, err
	case 5: // fixed32
		if len(p) < 4 {
			return nil, fmt.Errorf("prof: truncated fixed32 in profile")
		}
		return p[4:], nil
	default:
		return nil, fmt.Errorf("prof: unsupported wire type %d in profile", wire)
	}
}
