package prof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"sharebackup/internal/obs"
)

// Config tunes a Profiler.
type Config struct {
	// Dir is where profile bundles are written (created on demand).
	Dir string
	// Window is how long each CPU profile window captures before it is cut
	// into a bundle. Default 10s.
	Window time.Duration
	// MaxBundles bounds the rotating bundle set; older bundles are removed
	// once the count exceeds it. Default 8.
	MaxBundles int
	// Registry receives the profiler's self-overhead counters
	// (prof.windows, prof.write_ns, prof.bundle_bytes, prof.flight_grabs,
	// prof.errors). Nil means obs.DefaultRegistry.
	Registry *obs.Registry
}

// Profiler continuously captures CPU profile windows. Every Window it cuts
// the in-flight capture into a bundle directory (cpu.pprof, heap.pprof,
// goroutines.txt, attribution.json, meta.json) under Dir and restarts the
// capture, rotating old bundles out. While capturing, prof.Do phase sites
// tag their samples, and the bundled attribution.json pre-aggregates CPU by
// phase so "which recovery phase burned the CPU" is answerable without
// tooling.
//
// Only one CPU profile can run per process (a Go runtime restriction), so
// Start fails if something else — another Profiler, go test -cpuprofile —
// already holds it.
type Profiler struct {
	cfg Config

	mWindows *obs.Counter // prof.windows: CPU windows cut into bundles
	mWriteNS *obs.Counter // prof.write_ns: CPU spent writing bundles (self-overhead)
	mBytes   *obs.Counter // prof.bundle_bytes: bytes written into bundles
	mGrabs   *obs.Counter // prof.flight_grabs: windows grabbed by flight dumps
	mErrors  *obs.Counter // prof.errors: failed restarts/writes

	mu        sync.Mutex
	buf       bytes.Buffer // in-flight CPU profile
	capturing bool
	winStart  time.Time
	seq       int
	bundles   []string // bundle dirs, oldest first
	closed    bool

	quit chan struct{}
	wg   sync.WaitGroup
}

// Start builds a profiler, begins the first CPU window, and starts the
// window-cutting goroutine.
func Start(cfg Config) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("prof: Config.Dir is required")
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Second
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.DefaultRegistry
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	p := &Profiler{
		cfg:      cfg,
		mWindows: cfg.Registry.Counter("prof.windows"),
		mWriteNS: cfg.Registry.Counter("prof.write_ns"),
		mBytes:   cfg.Registry.Counter("prof.bundle_bytes"),
		mGrabs:   cfg.Registry.Counter("prof.flight_grabs"),
		mErrors:  cfg.Registry.Counter("prof.errors"),
		quit:     make(chan struct{}),
	}
	p.mu.Lock()
	err := p.startWindowLocked()
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}
	p.wg.Add(1)
	go p.loop()
	return p, nil
}

// startWindowLocked begins a fresh CPU capture into p.buf. Caller holds p.mu.
func (p *Profiler) startWindowLocked() error {
	p.buf.Reset()
	if err := pprof.StartCPUProfile(&p.buf); err != nil {
		return fmt.Errorf("prof: start cpu profile: %w", err)
	}
	p.capturing = true
	p.winStart = time.Now()
	active.Add(1)
	return nil
}

// cutWindow stops the in-flight capture, returns its bytes and start time,
// and restarts the next window. Returns nil data when nothing was capturing.
func (p *Profiler) cutWindow(restart bool) ([]byte, time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.capturing {
		// A previous restart failed (someone else grabbed the CPU
		// profiler); retry so the profiler self-heals when it's released.
		if restart {
			if err := p.startWindowLocked(); err != nil {
				p.mErrors.Inc()
			}
		}
		return nil, time.Time{}
	}
	pprof.StopCPUProfile()
	p.capturing = false
	active.Add(-1)
	data := make([]byte, p.buf.Len())
	copy(data, p.buf.Bytes())
	start := p.winStart
	if restart {
		if err := p.startWindowLocked(); err != nil {
			p.mErrors.Inc()
		}
	}
	return data, start
}

func (p *Profiler) loop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case <-time.After(p.cfg.Window):
			if data, start := p.cutWindow(true); data != nil {
				p.writeBundle(data, start)
			}
		}
	}
}

// bundleMeta is the bundle's meta.json shape.
type bundleMeta struct {
	Seq         int       `json:"seq"`
	WindowStart time.Time `json:"window_start"`
	WrittenAt   time.Time `json:"written_at"`
	WindowMS    int64     `json:"window_ms"`
	CPUBytes    int       `json:"cpu_profile_bytes"`
}

func (p *Profiler) writeBundle(cpu []byte, start time.Time) {
	t0 := time.Now()
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.mu.Unlock()

	dir := filepath.Join(p.cfg.Dir, fmt.Sprintf("profbundle-%03d", seq))
	if err := p.writeBundleFiles(dir, cpu, start, seq); err != nil {
		p.mErrors.Inc()
		return
	}
	p.mWindows.Inc()
	p.mWriteNS.Add(time.Since(t0).Nanoseconds())

	p.mu.Lock()
	p.bundles = append(p.bundles, dir)
	var evict []string
	for len(p.bundles) > p.cfg.MaxBundles {
		evict = append(evict, p.bundles[0])
		p.bundles = p.bundles[1:]
	}
	p.mu.Unlock()
	for _, old := range evict {
		os.RemoveAll(old)
	}
}

func (p *Profiler) writeBundleFiles(dir string, cpu []byte, start time.Time, seq int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := p.writeFile(filepath.Join(dir, "cpu.pprof"), cpu); err != nil {
		return err
	}

	var heap bytes.Buffer
	if err := pprof.WriteHeapProfile(&heap); err == nil {
		if err := p.writeFile(filepath.Join(dir, "heap.pprof"), heap.Bytes()); err != nil {
			return err
		}
	}

	var gor bytes.Buffer
	if prof := pprof.Lookup("goroutine"); prof != nil {
		if err := prof.WriteTo(&gor, 1); err == nil {
			if err := p.writeFile(filepath.Join(dir, "goroutines.txt"), gor.Bytes()); err != nil {
				return err
			}
		}
	}

	// Pre-aggregate CPU by recovery phase so the bundle answers the
	// attribution question directly.
	attr, err := PhaseAttribution(cpu)
	if err != nil {
		attr = &Attribution{Err: err.Error()}
	}
	ab, err := json.MarshalIndent(attr, "", "  ")
	if err != nil {
		return err
	}
	if err := p.writeFile(filepath.Join(dir, "attribution.json"), ab); err != nil {
		return err
	}

	meta := bundleMeta{
		Seq:         seq,
		WindowStart: start.UTC(),
		WrittenAt:   time.Now().UTC(),
		WindowMS:    p.cfg.Window.Milliseconds(),
		CPUBytes:    len(cpu),
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return p.writeFile(filepath.Join(dir, "meta.json"), mb)
}

func (p *Profiler) writeFile(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	p.mBytes.Add(int64(len(data)))
	return nil
}

// GrabInto cuts the in-flight CPU window into dir as cpu.pprof plus
// attribution.json and restarts capture — the flight-recorder hook
// (obs.ProfileGrabber): an anomaly dump carries the profile of the moments
// leading up to the anomaly in the same bundle.
func (p *Profiler) GrabInto(dir string) error {
	data, _ := p.cutWindow(true)
	if data == nil {
		return fmt.Errorf("prof: no CPU window in flight")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := p.writeFile(filepath.Join(dir, "cpu.pprof"), data); err != nil {
		return err
	}
	attr, err := PhaseAttribution(data)
	if err != nil {
		attr = &Attribution{Err: err.Error()}
	}
	ab, err := json.MarshalIndent(attr, "", "  ")
	if err != nil {
		return err
	}
	if err := p.writeFile(filepath.Join(dir, "attribution.json"), ab); err != nil {
		return err
	}
	p.mGrabs.Inc()
	return nil
}

// Bundles returns the bundle directories currently on disk, oldest first.
func (p *Profiler) Bundles() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.bundles...)
}

// WaitBundles blocks until at least n bundles exist or the timeout expires,
// reporting success — bundle writing rides the window goroutine.
func (p *Profiler) WaitBundles(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		done := len(p.bundles) >= n
		p.mu.Unlock()
		if done {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close stops the window goroutine and cuts the final in-flight window into
// a last bundle. Idempotent.
func (p *Profiler) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.quit)
	p.wg.Wait()
	if data, start := p.cutWindow(false); data != nil {
		p.writeBundle(data, start)
	}
}
