// Package prof is the repo's continuous profiler: it captures periodic CPU
// profile windows plus heap and goroutine snapshots into rotating on-disk
// bundles, and tags recovery-phase work with pprof goroutine labels so a
// profile answers "which recovery phase burned the CPU" at the same Table 2
// granularity the span system decomposes (detect / notify / reconfig /
// revert), plus the fluid engine's storm recomputation.
//
// The labeling entry point, Do, is designed for zero-allocation hot paths:
// when no profiler is capturing, it is one atomic load and a direct call —
// no label set, no context, no closure dispatch through pprof.
package prof

import (
	"context"
	"os"
	"runtime/pprof"
	"sync/atomic"
)

// LabelKey is the pprof goroutine-label key phase tags are recorded under.
const LabelKey = "sb_phase"

// Phase values for Do. The first four are the paper's Table 2 recovery
// phases; PhaseStormRecompute tags the fluid engine's incremental max-min
// recomputation, the data-plane hot loop under failure storms.
const (
	PhaseDetect         = "detect"
	PhaseNotify         = "notify"
	PhaseReconfig       = "reconfig"
	PhaseRevert         = "revert"
	PhaseStormRecompute = "storm-recompute"
)

// active counts capturing profilers process-wide. Do consults it so phase
// sites pay one atomic load when nothing is profiling.
var active atomic.Int32

// Active reports whether any profiler is currently capturing a CPU window.
// Hot paths that cannot afford even pprof.Do's label bookkeeping gate on it
// before constructing closures.
func Active() bool { return active.Load() != 0 }

// Do runs f. While a profiler is capturing, f's CPU samples are tagged with
// the given phase under LabelKey; otherwise f is called directly with no
// overhead beyond one atomic load.
func Do(phase string, f func()) {
	if active.Load() == 0 {
		f()
		return
	}
	pprof.Do(context.Background(), pprof.Labels(LabelKey, phase), func(context.Context) { f() })
}

// ResolveDir resolves the profiler bundle directory the way the CLIs expose
// it: the -profile-dir flag value when set, else the SHAREBACKUP_PROF_DIR
// environment variable. Empty means the profiler stays off.
func ResolveDir(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	return os.Getenv("SHAREBACKUP_PROF_DIR")
}
