package prof

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sharebackup/internal/obs"
)

// burnCPU spins for roughly d so the 100Hz CPU sampler has something to see.
func burnCPU(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 1
	for time.Now().Before(deadline) {
		for i := 0; i < 10000; i++ {
			x = x*31 + i
		}
	}
	_ = x
}

// startOrSkip starts a profiler, skipping the test when the process-wide CPU
// profiler is already held (go test -cpuprofile, a parallel package, ...).
func startOrSkip(t *testing.T, cfg Config) *Profiler {
	t.Helper()
	p, err := Start(cfg)
	if err != nil {
		if strings.Contains(err.Error(), "cpu profil") {
			t.Skipf("CPU profiler unavailable: %v", err)
		}
		t.Fatal(err)
	}
	return p
}

func TestDoInactiveIsDirectCall(t *testing.T) {
	if Active() {
		t.Fatal("profiler active at test start")
	}
	ran := false
	Do(PhaseDetect, func() { ran = true })
	if !ran {
		t.Fatal("Do did not run f while inactive")
	}
}

func TestResolveDir(t *testing.T) {
	t.Setenv("SHAREBACKUP_PROF_DIR", "/env/dir")
	if got := ResolveDir("/flag/dir"); got != "/flag/dir" {
		t.Fatalf("flag should win: got %q", got)
	}
	if got := ResolveDir(""); got != "/env/dir" {
		t.Fatalf("env fallback: got %q", got)
	}
	t.Setenv("SHAREBACKUP_PROF_DIR", "")
	if got := ResolveDir(""); got != "" {
		t.Fatalf("empty means off: got %q", got)
	}
}

func TestStartRequiresDir(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Fatal("Start without Dir should fail")
	}
}

func TestProfilerBundlesAndRotation(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	p := startOrSkip(t, Config{Dir: dir, Window: 30 * time.Millisecond, MaxBundles: 2, Registry: reg})
	defer p.Close()

	if !Active() {
		t.Fatal("Active() false while profiler capturing")
	}
	// Rotation caps Bundles() at MaxBundles, so wait on the windows counter
	// to see that more than MaxBundles windows were actually cut.
	windows := reg.Counter("prof.windows")
	for deadline := time.Now().Add(10 * time.Second); windows.Value() < 3; {
		if time.Now().After(deadline) {
			t.Fatalf("wanted 3 windows cut, have %d", windows.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Close()
	if Active() {
		t.Fatal("Active() true after Close")
	}

	bundles := p.Bundles()
	if len(bundles) > 2 {
		t.Fatalf("rotation kept %d bundles, MaxBundles=2", len(bundles))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(bundles) {
		t.Fatalf("on-disk bundles %d != tracked %d (rotation left stragglers)", len(ents), len(bundles))
	}

	last := bundles[len(bundles)-1]
	for _, f := range []string{"cpu.pprof", "heap.pprof", "goroutines.txt", "attribution.json", "meta.json"} {
		if _, err := os.Stat(filepath.Join(last, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
	mb, err := os.ReadFile(filepath.Join(last, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	var meta bundleMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		t.Fatalf("meta.json: %v", err)
	}
	if meta.Seq == 0 || meta.WindowMS != 30 || meta.CPUBytes <= 0 {
		t.Fatalf("bad meta: %+v", meta)
	}

	if reg.Counter("prof.windows").Value() < 3 {
		t.Errorf("prof.windows = %d, want >= 3", reg.Counter("prof.windows").Value())
	}
	if reg.Counter("prof.bundle_bytes").Value() <= 0 {
		t.Error("prof.bundle_bytes not counted")
	}
}

func TestGrabIntoFlightHook(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	p := startOrSkip(t, Config{Dir: dir, Window: time.Hour, Registry: reg})
	defer p.Close()

	burnCPU(20 * time.Millisecond)
	grab := filepath.Join(t.TempDir(), "dump")
	if err := p.GrabInto(grab); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"cpu.pprof", "attribution.json"} {
		if _, err := os.Stat(filepath.Join(grab, f)); err != nil {
			t.Errorf("grab missing %s: %v", f, err)
		}
	}
	if got := reg.Counter("prof.flight_grabs").Value(); got != 1 {
		t.Errorf("prof.flight_grabs = %d, want 1", got)
	}
	// The grab restarted capture, so a second grab also succeeds.
	if err := p.GrabInto(filepath.Join(t.TempDir(), "dump2")); err != nil {
		t.Fatalf("second grab after restart: %v", err)
	}
}

func TestPhaseAttributionRejectsGarbage(t *testing.T) {
	if _, err := PhaseAttribution([]byte("not a profile at all")); err == nil {
		t.Fatal("garbage input should not parse")
	}
}

// TestDoLabelsAppearInProfile is the acceptance test for phase labeling: CPU
// burned inside Do(PhaseReconfig, ...) while a profiler captures must show up
// in the bundle's attribution under that phase. Sampling is statistical, so
// the burn retries with growing durations before giving up.
func TestDoLabelsAppearInProfile(t *testing.T) {
	for attempt, burn := range []time.Duration{300 * time.Millisecond, 600 * time.Millisecond, 1200 * time.Millisecond} {
		dir := t.TempDir()
		p := startOrSkip(t, Config{Dir: dir, Window: time.Hour, Registry: obs.NewRegistry()})
		Do(PhaseReconfig, func() { burnCPU(burn) })
		grab := filepath.Join(dir, "grab")
		if err := p.GrabInto(grab); err != nil {
			p.Close()
			t.Fatal(err)
		}
		p.Close()
		data, err := os.ReadFile(filepath.Join(grab, "cpu.pprof"))
		if err != nil {
			t.Fatal(err)
		}
		attr, err := PhaseAttribution(data)
		if err != nil {
			t.Fatalf("attribution parse: %v", err)
		}
		if ph, ok := attr.Phases[PhaseReconfig]; ok && ph.Samples > 0 && ph.CPUNS > 0 {
			// attribution.json must agree with the raw parse.
			ab, err := os.ReadFile(filepath.Join(grab, "attribution.json"))
			if err != nil {
				t.Fatal(err)
			}
			var onDisk Attribution
			if err := json.Unmarshal(ab, &onDisk); err != nil {
				t.Fatal(err)
			}
			if onDisk.Phases[PhaseReconfig].Samples != ph.Samples {
				t.Fatalf("attribution.json %+v disagrees with parse %+v", onDisk.Phases[PhaseReconfig], ph)
			}
			return
		}
		t.Logf("attempt %d: %d total samples, phases %v; retrying with longer burn", attempt, attr.TotalSamples, attr.Phases)
	}
	t.Fatal("no reconfig-labeled samples after 3 attempts")
}
