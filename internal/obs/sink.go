package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

func sprintf(format string, args ...interface{}) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}

// Sink receives events. The bus serializes calls: Event is never invoked
// concurrently for sinks attached to the same bus.
type Sink interface {
	Event(Event)
}

// JSONLSink writes one JSON object per event, newline-delimited — the
// format sbtap summarizes. Encoding errors are remembered (first one wins)
// and subsequent events dropped.
type JSONLSink struct {
	cw  countWriter
	enc *json.Encoder

	mu  sync.Mutex
	err error
}

// countWriter forwards to w, tallying bytes (and mirroring them into an
// optional counter) so the sink's serialization cost — bytes per event — is
// measurable. Writes are serialized by the owning sink's mutex.
type countWriter struct {
	w     io.Writer
	bytes int64
	ctr   *Counter
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.bytes += int64(n)
	c.ctr.Add(int64(n))
	return n, err
}

// NewJSONLSink builds a sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{}
	s.cw.w = w
	s.enc = json.NewEncoder(&s.cw)
	return s
}

// CountBytesIn mirrors every byte this sink writes into c (typically
// Registry.Counter("obs.sink_jsonl_bytes")), putting the trace stream's
// serialization volume on the /varz surface. A nil counter detaches.
func (s *JSONLSink) CountBytesIn(c *Counter) {
	s.mu.Lock()
	s.cw.ctr = c
	s.mu.Unlock()
}

// Bytes returns the total bytes written so far.
func (s *JSONLSink) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cw.bytes
}

// Event implements Sink.
func (s *JSONLSink) Event(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Err returns the first write/encode error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadJSONL decodes a JSONL event stream (as written by JSONLSink).
//
// A truncated final line — the signature a crashed or killed producer
// leaves, since JSONLSink writes whole lines — is tolerated and dropped,
// mirroring the sweep checkpoint's truncated-tail tolerance: flight-recorder
// bundles and crash-cut trace files stay readable. Corruption anywhere
// before the unterminated tail still errors.
func ReadJSONL(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var out []Event
	for {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return out, fmt.Errorf("obs: reading event %d: %w", len(out)+1, err)
		}
		atEOF := err == io.EOF
		terminated := !atEOF // ReadBytes returns io.EOF only for data without the delimiter
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var ev Event
			if uerr := json.Unmarshal(trimmed, &ev); uerr != nil {
				if !terminated {
					return out, nil // truncated final line from a killed producer
				}
				return out, fmt.Errorf("obs: reading event %d: %w", len(out)+1, uerr)
			}
			out = append(out, ev)
		}
		if atEOF {
			return out, nil
		}
	}
}

// LogfSink renders each event human-readably through a printf-style
// function (e.g. log.Printf or a test's t.Logf).
type LogfSink struct {
	logf func(format string, args ...interface{})
}

// NewLogfSink builds a sink over logf.
func NewLogfSink(logf func(format string, args ...interface{})) *LogfSink {
	return &LogfSink{logf: logf}
}

// Event implements Sink.
func (s *LogfSink) Event(ev Event) { s.logf("%s", ev.String()) }

// ShardTagger forwards events to Dst with the sweep-shard tag stamped on.
// Sweep workers attach one to their private bus (alongside the worker's own
// sinks) so events from many concurrent shards can share one destination
// sink — a trace file, a ring — and still be told apart afterwards. Dst must
// itself be safe for concurrent use when several shard buses share it
// (JSONLSink and Ring both are).
type ShardTagger struct {
	// Shard is the 1-based tag (sweep.Shard.ID()).
	Shard uint64
	// Dst receives every tagged event.
	Dst Sink
}

// Event implements Sink.
func (t *ShardTagger) Event(ev Event) {
	ev.Shard = t.Shard
	t.Dst.Event(ev)
}

// Ring is a fixed-capacity in-memory event buffer: it keeps the most recent
// Cap events. Older events are evicted silently from the buffer's point of
// view, but never silently from the operator's: every eviction increments
// Dropped and, when one is attached via CountDropsIn, a registry counter —
// so /varz and sbtap can report how much of the stream was lost.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrap    bool
	total   uint64
	dropped uint64
	dropCtr *Counter
}

// NewRing builds a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]Event, capacity)}
}

// CountDropsIn mirrors every future eviction into c (typically
// Registry.Counter("obs.ring_dropped_events")), exposing event loss on the
// /varz surface. A nil counter detaches.
func (r *Ring) CountDropsIn(c *Counter) {
	r.mu.Lock()
	r.dropCtr = c
	r.mu.Unlock()
}

// Event implements Sink.
func (r *Ring) Event(ev Event) {
	r.mu.Lock()
	if r.wrap {
		// The slot being overwritten still held an unread event.
		r.dropped++
		r.dropCtr.Inc()
	}
	r.buf[r.next] = ev
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrap = true
	}
	r.mu.Unlock()
}

// Total returns how many events were ever recorded (including evicted ones).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many buffered events were evicted unread.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the buffered events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrap {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Find returns the buffered events of one kind, oldest first.
func (r *Ring) Find(kind Kind) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}
