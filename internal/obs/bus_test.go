package obs

import (
	"strings"
	"testing"
	"time"
)

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	if b.Enabled() {
		t.Fatal("nil bus reports enabled")
	}
	b.Emit(NewEvent(KindLog, 0)) // must not panic
	b.Attach(NewRing(4))
	b.Detach(nil)
	if id := b.BeginSpan(); id != 0 {
		t.Fatalf("nil bus BeginSpan = %d, want 0", id)
	}
	b.EndSpan()
	if b.ActiveSpan() != 0 {
		t.Fatal("nil bus has active span")
	}
	b.Logf(0, false, "ignored %d", 1)
}

func TestEmitDeliversToAllSinksInOrder(t *testing.T) {
	b := &Bus{}
	if b.Enabled() {
		t.Fatal("fresh bus reports enabled")
	}
	r1, r2 := NewRing(16), NewRing(16)
	b.Attach(r1)
	b.Attach(r2)
	if !b.Enabled() {
		t.Fatal("bus with sinks reports disabled")
	}
	for i := 0; i < 5; i++ {
		ev := NewEvent(KindProbeMissed, time.Duration(i)*time.Millisecond)
		ev.Switch = int32(i)
		b.Emit(ev)
	}
	for _, r := range []*Ring{r1, r2} {
		evs := r.Events()
		if len(evs) != 5 {
			t.Fatalf("ring got %d events, want 5", len(evs))
		}
		for i, ev := range evs {
			if ev.Switch != int32(i) {
				t.Fatalf("event %d has switch %d", i, ev.Switch)
			}
			if ev.Seq == 0 {
				t.Fatalf("event %d has no sequence number", i)
			}
			if i > 0 && ev.Seq <= evs[i-1].Seq {
				t.Fatalf("sequence numbers not increasing: %d then %d", evs[i-1].Seq, ev.Seq)
			}
		}
	}
}

func TestDetachStopsDelivery(t *testing.T) {
	b := &Bus{}
	r := NewRing(16)
	b.Attach(r)
	b.Emit(NewEvent(KindLog, 0))
	b.Detach(r)
	if b.Enabled() {
		t.Fatal("bus still enabled after detaching only sink")
	}
	b.Emit(NewEvent(KindLog, 0))
	if got := r.Total(); got != 1 {
		t.Fatalf("ring saw %d events, want 1", got)
	}
}

func TestAttachIsIdempotent(t *testing.T) {
	b := &Bus{}
	r := NewRing(16)
	b.Attach(r)
	b.Attach(r)
	b.Emit(NewEvent(KindLog, 0))
	if got := r.Total(); got != 1 {
		t.Fatalf("double-attached ring saw %d events, want 1", got)
	}
}

func TestSpanContext(t *testing.T) {
	b := &Bus{}
	id := b.BeginSpan()
	if id == 0 {
		t.Fatal("BeginSpan returned 0")
	}
	if got := b.ActiveSpan(); got != id {
		t.Fatalf("ActiveSpan = %d, want %d", got, id)
	}
	b.EndSpan()
	if got := b.ActiveSpan(); got != 0 {
		t.Fatalf("ActiveSpan after EndSpan = %d, want 0", got)
	}
	if id2 := b.BeginSpan(); id2 == id {
		t.Fatal("span IDs not unique")
	}
}

func TestLogfFormatsOnlyWhenEnabled(t *testing.T) {
	b := &Bus{}
	b.Logf(0, false, "dropped")
	r := NewRing(4)
	b.Attach(r)
	b.Logf(time.Second, true, "hello %d", 7)
	evs := r.Find(KindLog)
	if len(evs) != 1 {
		t.Fatalf("got %d log events, want 1", len(evs))
	}
	if evs[0].Detail != "hello 7" || !evs[0].Wall || evs[0].T != time.Second {
		t.Fatalf("unexpected log event %+v", evs[0])
	}
}

func TestRingWrap(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		ev := NewEvent(KindLog, time.Duration(i))
		ev.Count = int32(i)
		r.Event(ev)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(evs))
	}
	for i, want := range []int32{2, 3, 4} {
		if evs[i].Count != want {
			t.Fatalf("ring[%d].Count = %d, want %d", i, evs[i].Count, want)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
}

func TestEventString(t *testing.T) {
	ev := NewEvent(KindRecoveryComplete, 730*time.Microsecond)
	ev.Span = 3
	ev.Switch = 12
	ev.Backup = 15
	ev.Detail = "node"
	ev.Detection, ev.Report, ev.Reconfig = 500*time.Microsecond, 200*time.Microsecond, 30*time.Microsecond
	ev.Total = ev.Detection + ev.Report + ev.Reconfig
	s := ev.String()
	for _, want := range []string{"recovery-complete", "span=3", "switch=12", "backup=15", "total=730µs", "node"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}
