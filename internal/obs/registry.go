package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Increment it from
// any goroutine without locks; hold the *Counter (from Registry.Counter) at
// wire-up time so the hot path never touches the registry map.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable level (queue depths, backups in use).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the level by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry names counters and gauges and renders text snapshots. Lookup
// (get-or-create) takes a lock; the returned handles are lock-free, so
// components resolve their handles once at construction time.
// All methods are nil-safe.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// DefaultRegistry is the process-wide registry, the metrics analogue of the
// Default bus: the commands point their -debug-addr /varz at it and thread
// it into the systems and simulators they build.
var DefaultRegistry = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Export is a point-in-time copy of every metric in a registry — the JSON
// body debughttp's /varz serves. Histogram values carry their quantiles.
type Export struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Export snapshots the registry. Histogram bucket detail is included when
// buckets is true; quantiles and order statistics always are.
func (r *Registry) Export(buckets bool) Export {
	out := Export{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.Unlock()
	for name, c := range counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		s := h.Snapshot()
		if !buckets {
			s.Buckets = nil
		}
		out.Histograms[name] = s
	}
	return out
}

// promName sanitizes a registry metric name into the Prometheus exposition
// charset [a-zA-Z0-9_:], mapping everything else (the registry's dots) to _.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PromText renders the registry in the Prometheus text exposition format
// (version 0.0.4) — the /metricsz body, scrapeable by any Prometheus-style
// collector. Counters and gauges become single samples with # TYPE lines;
// histograms are rendered as summaries (quantile-labeled samples plus _sum
// and _count), since the log-linear buckets carry their quantiles exactly.
func (r *Registry) PromText() string {
	if r == nil {
		return ""
	}
	ex := r.Export(false)
	var b strings.Builder
	sortedKeys := func(n int, iter func(func(string))) []string {
		keys := make([]string, 0, n)
		iter(func(k string) { keys = append(keys, k) })
		sort.Strings(keys)
		return keys
	}
	for _, name := range sortedKeys(len(ex.Counters), func(f func(string)) {
		for k := range ex.Counters {
			f(k)
		}
	}) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, ex.Counters[name])
	}
	for _, name := range sortedKeys(len(ex.Gauges), func(f func(string)) {
		for k := range ex.Gauges {
			f(k)
		}
	}) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, ex.Gauges[name])
	}
	for _, name := range sortedKeys(len(ex.Histograms), func(f func(string)) {
		for k := range ex.Histograms {
			f(k)
		}
	}) {
		h := ex.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s summary\n", pn)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %d\n", pn, h.P50)
		fmt.Fprintf(&b, "%s{quantile=\"0.9\"} %d\n", pn, h.P90)
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %d\n", pn, h.P99)
		fmt.Fprintf(&b, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}
	return b.String()
}

// Snapshot renders every metric as "name value" lines, sorted by name — the
// /varz-style text dump the ctlnet server serves. Histograms contribute one
// line per order statistic (name.count, name.p50, name.p90, name.p99,
// name.max), keeping the two-field line format.
func (r *Registry) Snapshot() string {
	if r == nil {
		return ""
	}
	ex := r.Export(false)
	lines := make([]string, 0, len(ex.Counters)+len(ex.Gauges)+5*len(ex.Histograms))
	for name, v := range ex.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range ex.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range ex.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s.count %d", name, h.Count),
			fmt.Sprintf("%s.p50 %d", name, h.P50),
			fmt.Sprintf("%s.p90 %d", name, h.P90),
			fmt.Sprintf("%s.p99 %d", name, h.P99),
			fmt.Sprintf("%s.max %d", name, h.Max),
		)
	}
	sort.Strings(lines)
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
