package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Increment it from
// any goroutine without locks; hold the *Counter (from Registry.Counter) at
// wire-up time so the hot path never touches the registry map.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable level (queue depths, backups in use).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the level by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry names counters and gauges and renders text snapshots. Lookup
// (get-or-create) takes a lock; the returned handles are lock-free, so
// components resolve their handles once at construction time.
// All methods are nil-safe.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot renders every metric as "name value" lines, sorted by name — the
// /varz-style text dump the ctlnet server serves.
func (r *Registry) Snapshot() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, g.Value()))
	}
	r.mu.Unlock()
	sort.Strings(lines)
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
