package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// FlightConfig tunes a FlightRecorder.
type FlightConfig struct {
	// Dir is where dump bundles are written (created on demand). Empty
	// resolves through DefaultFlightDir: the SHAREBACKUP_FLIGHT_DIR
	// environment variable, else "flight-dumps" under the working
	// directory.
	Dir string
	// RingSize is the number of recent events kept for dumps. Default 4096.
	RingSize int
	// SLOBudget triggers a dump when a recovery-complete event's Total
	// exceeds it. 0 disables the trigger (an SLOWatchdog's OnBreach can
	// still call Trigger explicitly).
	SLOBudget time.Duration
	// KeepAliveGapThreshold triggers a dump when a probe-missed event
	// reports this many consecutive misses of one check — the keep-alive
	// gap that precedes a failure declaration. 0 disables.
	KeepAliveGapThreshold int
	// DropBurstThreshold triggers a dump when the recorder's own ring
	// evicts this many unread events between two trigger checks — the
	// signature of an event storm outrunning every sink. 0 disables.
	DropBurstThreshold int
	// Cooldown is the minimum wall-clock spacing between dumps, so a storm
	// of anomalies produces one bundle, not thousands. Default 1s.
	Cooldown time.Duration
	// Registry is snapshotted into every bundle (varz.json) and receives
	// the recorder's own counters (flight.dumps, flight.trigger_errors).
	// Nil means DefaultRegistry.
	Registry *Registry
	// Profile, when set, is asked to cut its in-flight CPU profile window
	// into every dump bundle (cpu.pprof + attribution.json) — the
	// continuous profiler's prof.Profiler implements it. An anomaly dump
	// then carries the CPU profile of the moments leading up to the
	// anomaly. Grab failures are counted, not fatal.
	Profile ProfileGrabber
	// Bus, when set via Attach, also receives a flight-dump event per
	// bundle so the dump itself lands in the trace.
	bus *Bus
}

// ProfileGrabber cuts a continuous profiler's in-flight CPU window into a
// directory. It is an interface (implemented by prof.Profiler) so obs does
// not import its own subpackage.
type ProfileGrabber interface {
	GrabInto(dir string) error
}

// FlightRecorder is the always-on black box of a control-plane process: a
// cheap ring of recent events plus anomaly triggers that dump a bundled
// snapshot — recent events, metrics export, goroutine profile — to disk the
// moment something crosses a threshold, while the process keeps running.
//
// The trigger path runs inside the bus' serialized sink dispatch, so it
// only inspects the event and enqueues; bundle writing happens on a
// background goroutine that must never touch the triggering bus' lock.
type FlightRecorder struct {
	cfg  FlightConfig
	ring *Ring

	mDumps  *Counter
	mErrors *Counter

	lastDrops atomic.Uint64
	evCount   atomic.Uint64

	reqs chan dumpReq
	quit chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	lastDump time.Time
	dumpSeq  int
	dumps    []string // bundle dirs written, oldest first
}

type dumpReq struct {
	reason  string
	trigger Event
}

// DefaultFlightDir resolves the flight-recorder dump directory: the
// SHAREBACKUP_FLIGHT_DIR environment variable when set (how CI collects
// bundles as workflow artifacts), else fallback, else "flight-dumps".
func DefaultFlightDir(fallback string) string {
	if dir := os.Getenv("SHAREBACKUP_FLIGHT_DIR"); dir != "" {
		return dir
	}
	if fallback != "" {
		return fallback
	}
	return "flight-dumps"
}

// NewFlightRecorder builds a recorder and starts its dump goroutine. Attach
// it to a bus; Close detaches nothing (the caller owns attachment) but
// stops the goroutine after draining pending dumps.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Dir == "" {
		cfg.Dir = DefaultFlightDir("")
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = DefaultRegistry
	}
	r := &FlightRecorder{
		cfg:     cfg,
		ring:    NewRing(cfg.RingSize),
		mDumps:  cfg.Registry.Counter("flight.dumps"),
		mErrors: cfg.Registry.Counter("flight.trigger_errors"),
		reqs:    make(chan dumpReq, 4),
		quit:    make(chan struct{}),
	}
	r.ring.CountDropsIn(cfg.Registry.Counter("obs.ring_dropped_events"))
	r.wg.Add(1)
	go r.dumpLoop()
	return r
}

// Attach hooks the recorder onto bus (as a sink) and remembers the bus so
// each bundle is announced with a flight-dump event.
func (r *FlightRecorder) Attach(bus *Bus) {
	r.cfg.bus = bus
	bus.Attach(r)
}

// Event implements Sink: record into the ring, then evaluate triggers.
func (r *FlightRecorder) Event(ev Event) {
	r.ring.Event(ev)
	switch {
	case r.cfg.SLOBudget > 0 && ev.Kind == KindRecoveryComplete && ev.Total > r.cfg.SLOBudget:
		r.Trigger("slo-breach", ev)
	case r.cfg.KeepAliveGapThreshold > 0 && ev.Kind == KindProbeMissed && int(ev.Count) >= r.cfg.KeepAliveGapThreshold:
		r.Trigger("keepalive-gap", ev)
	}
	// Sample ring-drop bursts every 256 events so the common path stays a
	// ring append plus two compares.
	if r.cfg.DropBurstThreshold > 0 && r.evCount.Add(1)%256 == 0 {
		drops := r.ring.Dropped()
		if last := r.lastDrops.Swap(drops); drops-last >= uint64(r.cfg.DropBurstThreshold) {
			r.Trigger("ring-drop-burst", ev)
		}
	}
}

// Trigger requests a dump bundle for the given reason. Non-blocking: if the
// dump queue is full or the cooldown has not elapsed, the request is
// dropped (counted in flight.trigger_errors).
func (r *FlightRecorder) Trigger(reason string, ev Event) {
	select {
	case r.reqs <- dumpReq{reason: reason, trigger: ev}:
	default:
		r.mErrors.Inc()
	}
}

func (r *FlightRecorder) dumpLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.quit:
			// Drain anything enqueued before Close.
			for {
				select {
				case req := <-r.reqs:
					r.dump(req)
				default:
					return
				}
			}
		case req := <-r.reqs:
			r.dump(req)
		}
	}
}

func (r *FlightRecorder) dump(req dumpReq) {
	r.mu.Lock()
	now := time.Now()
	if !r.lastDump.IsZero() && now.Sub(r.lastDump) < r.cfg.Cooldown {
		r.mu.Unlock()
		return
	}
	r.lastDump = now
	r.dumpSeq++
	seq := r.dumpSeq
	r.mu.Unlock()

	dir := filepath.Join(r.cfg.Dir, fmt.Sprintf("flightdump-%03d-%s", seq, req.reason))
	if err := r.writeBundle(dir, req); err != nil {
		r.mErrors.Inc()
		return
	}
	r.mDumps.Inc()
	r.mu.Lock()
	r.dumps = append(r.dumps, dir)
	r.mu.Unlock()
	if bus := r.cfg.bus; bus.Enabled() {
		ev := NewEvent(KindFlightDump, req.trigger.T)
		ev.Wall = req.trigger.Wall
		ev.Detail = req.reason + " -> " + dir
		bus.Emit(ev)
	}
}

// flightMeta is the bundle's meta.json shape.
type flightMeta struct {
	Reason    string    `json:"reason"`
	Trigger   Event     `json:"trigger"`
	WrittenAt time.Time `json:"written_at"`
	Proc      string    `json:"proc,omitempty"`
	Events    int       `json:"events"`
	Dropped   uint64    `json:"ring_dropped"`
}

func (r *FlightRecorder) writeBundle(dir string, req dumpReq) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	evs := r.ring.Events()

	ef, err := os.Create(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(ef)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			ef.Close()
			return err
		}
	}
	if err := ef.Close(); err != nil {
		return err
	}

	vz, err := json.MarshalIndent(r.cfg.Registry.Export(true), "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "varz.json"), vz, 0o644); err != nil {
		return err
	}

	gf, err := os.Create(filepath.Join(dir, "goroutines.txt"))
	if err != nil {
		return err
	}
	if p := pprof.Lookup("goroutine"); p != nil {
		if err := p.WriteTo(gf, 1); err != nil {
			gf.Close()
			return err
		}
	}
	if err := gf.Close(); err != nil {
		return err
	}

	if r.cfg.Profile != nil {
		if err := r.cfg.Profile.GrabInto(dir); err != nil {
			r.mErrors.Inc()
		}
	}

	meta := flightMeta{
		Reason:    req.reason,
		Trigger:   req.trigger,
		WrittenAt: time.Now().UTC(),
		Proc:      r.cfg.bus.Proc(),
		Events:    len(evs),
		Dropped:   r.ring.Dropped(),
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "meta.json"), mb, 0o644)
}

// Dumps returns the bundle directories written so far, oldest first.
func (r *FlightRecorder) Dumps() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.dumps...)
}

// WaitDump blocks until at least n bundles exist or the timeout expires,
// reporting success — dump writing is asynchronous, so tests and shutdown
// paths need a rendezvous.
func (r *FlightRecorder) WaitDump(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		r.mu.Lock()
		done := len(r.dumps) >= n
		r.mu.Unlock()
		if done {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close stops the dump goroutine after draining pending requests. It does
// not detach the recorder from any bus — do that first.
func (r *FlightRecorder) Close() {
	close(r.quit)
	r.wg.Wait()
}
