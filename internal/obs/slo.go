package obs

import (
	"sync"
	"time"
)

// SLOConfig tunes an SLOWatchdog.
type SLOConfig struct {
	// Budget is the recovery-latency SLO: a recovery whose Total exceeds it
	// is a breach. 0 disables breach detection (the watchdog still
	// histograms totals).
	Budget time.Duration
	// Window is the sliding window (in recoveries) the burn rate is
	// computed over. Default 64.
	Window int
	// Registry receives the watchdog's counters and gauges
	// (slo.recoveries, slo.breaches, slo.burn_rate_ppm, slo.budget_ns,
	// histogram slo.recovery_total_ns). Nil means DefaultRegistry.
	Registry *Registry
	// OnBreach, if set, is called (outside the watchdog's lock, on the
	// emitting goroutine) with each breaching recovery-complete event —
	// the flight-recorder trigger hook.
	OnBreach func(Event)
	// BurnSource, when set, supplies windowed counter deltas — typically a
	// tsdb.Store sampling this registry — and the burn-rate gauge becomes
	// breaches/recoveries over BurnWindow of wall time instead of over the
	// last Window recoveries: a quiet period then decays the burn rate
	// even though no new recoveries arrive to rotate the window.
	BurnSource CounterDeltaSource
	// BurnWindow is the wall-clock window BurnSource deltas are computed
	// over. Default 60s.
	BurnWindow time.Duration
}

// CounterDeltaSource reports how much a named counter increased over a
// trailing wall-clock window. It is an interface (implemented by
// tsdb.Store) so obs does not import its own subpackage.
type CounterDeltaSource interface {
	CounterDelta(name string, window time.Duration) (delta float64, ok bool)
}

// SLOWatchdog is a sink that audits every completed recovery against a
// latency budget: SPIDER's argument made operational — a recovery-delay
// guarantee is only a guarantee if it is continuously measured and alerted
// on, not benchmarked once. It keeps cumulative breach counters, a sliding
// burn-rate gauge (breached fraction of the last Window recoveries, in
// ppm), and a histogram of recovery totals, all surfaced through the
// registry (/varz, /metricsz).
//
// Recoveries driven through the TCP control plane are emitted twice on one
// bus — the controller's virtual-time span and the server's wall-clock
// mirror of the same recovery, sharing trace and span IDs — so the watchdog
// deduplicates by (trace, span) and audits each recovery once.
type SLOWatchdog struct {
	cfg SLOConfig

	mRecoveries *Counter
	mBreaches   *Counter
	gBurnPPM    *Gauge
	gBudget     *Gauge
	hTotal      *Histogram

	mu        sync.Mutex
	window    []bool // ring of breach outcomes
	next      int
	filled    bool
	lastTrace uint64
	lastSpan  uint64
}

// NewSLOWatchdog builds a watchdog; attach it to a bus to start auditing.
func NewSLOWatchdog(cfg SLOConfig) *SLOWatchdog {
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.BurnWindow <= 0 {
		cfg.BurnWindow = 60 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = DefaultRegistry
	}
	w := &SLOWatchdog{
		cfg:         cfg,
		mRecoveries: cfg.Registry.Counter("slo.recoveries"),
		mBreaches:   cfg.Registry.Counter("slo.breaches"),
		gBurnPPM:    cfg.Registry.Gauge("slo.burn_rate_ppm"),
		gBudget:     cfg.Registry.Gauge("slo.budget_ns"),
		hTotal:      cfg.Registry.Histogram("slo.recovery_total_ns"),
		window:      make([]bool, cfg.Window),
	}
	w.gBudget.Set(int64(cfg.Budget))
	return w
}

// Event implements Sink.
func (w *SLOWatchdog) Event(ev Event) {
	if ev.Kind != KindRecoveryComplete {
		return
	}
	breach := w.cfg.Budget > 0 && ev.Total > w.cfg.Budget
	w.mu.Lock()
	if ev.Trace != 0 && ev.Trace == w.lastTrace && ev.Span == w.lastSpan {
		w.mu.Unlock()
		return // wall-clock mirror of the recovery just audited
	}
	w.lastTrace, w.lastSpan = ev.Trace, ev.Span
	w.window[w.next] = breach
	w.next++
	if w.next == len(w.window) {
		w.next = 0
		w.filled = true
	}
	n := len(w.window)
	if !w.filled {
		n = w.next
	}
	breached := 0
	for i := 0; i < n; i++ {
		if w.window[i] {
			breached++
		}
	}
	w.mu.Unlock()

	w.mRecoveries.Inc()
	w.hTotal.Record(ev.Total.Nanoseconds())
	if n > 0 {
		w.gBurnPPM.Set(int64(float64(breached) / float64(n) * 1e6))
	}
	// A time-series source upgrades the burn rate from "fraction of the
	// last n recoveries" to "fraction over the last BurnWindow of wall
	// time"; the count-window value above remains the fallback until the
	// sampler has seen both counters.
	if w.cfg.BurnSource != nil {
		br, okB := w.cfg.BurnSource.CounterDelta("slo.breaches", w.cfg.BurnWindow)
		rc, okR := w.cfg.BurnSource.CounterDelta("slo.recoveries", w.cfg.BurnWindow)
		if okB && okR && rc > 0 {
			w.gBurnPPM.Set(int64(br / rc * 1e6))
		}
	}
	if breach {
		w.mBreaches.Inc()
		if w.cfg.OnBreach != nil {
			w.cfg.OnBreach(ev)
		}
	}
}

// Breaches returns the cumulative breach count.
func (w *SLOWatchdog) Breaches() int64 { return w.mBreaches.Value() }

// Recoveries returns the cumulative audited-recovery count.
func (w *SLOWatchdog) Recoveries() int64 { return w.mRecoveries.Value() }

// BurnRate returns the breached fraction of the sliding window [0, 1].
func (w *SLOWatchdog) BurnRate() float64 {
	return float64(w.gBurnPPM.Value()) / 1e6
}
