package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ProcTrace is one process' event stream, as read from its JSONL trace
// file. Name is a fallback label (typically the file basename) used when
// the events carry no Proc field of their own.
type ProcTrace struct {
	Name   string
	Events []Event
}

// StitchedSpan is one process-local span placed in a cross-process trace.
type StitchedSpan struct {
	Proc     string
	Span     *Span
	Parent   *StitchedSpan // nil for the trace root (or an orphan)
	Children []*StitchedSpan
	// Start is the span's earliest event time shifted into the reference
	// epoch (clock-offset corrected).
	Start time.Duration
	// Orphan marks a span whose Parent reference did not resolve to any
	// span in the stitched file set.
	Orphan bool
}

// StitchedTrace is one causal recovery across processes: every span that
// carried the same trace ID, linked parent to child.
type StitchedTrace struct {
	Trace uint64
	Roots []*StitchedSpan
	Spans []*StitchedSpan // all spans, roots first, then children in DFS order
}

// StitchResult is the outcome of merging per-process trace files.
type StitchResult struct {
	// Reference is the process whose epoch the merged timeline uses.
	Reference string
	// Offsets maps each process to the shift (added to its timestamps)
	// into the reference epoch, estimated from clock-sync events.
	Offsets map[string]time.Duration
	// Procs lists every process seen, sorted.
	Procs []string
	// Traces holds the stitched cross-process traces, ordered by first
	// event time.
	Traces []*StitchedTrace
	// Unstitchable collects integrity problems: parent references naming
	// spans absent from the file set, and processes with no clock-sync
	// path to the reference (their timestamps could not be aligned).
	Unstitchable []string
	// Events is the merged, offset-corrected event stream (all processes),
	// ordered by adjusted time.
	Events []Event
}

type procSpanKey struct {
	proc string
	span uint64
}

// Stitch merges per-process trace files into cross-process traces: it
// estimates each process' clock offset to a reference epoch from the
// keep-alive clock-sync events (KindClockSync), shifts every timestamp
// accordingly, then links spans across processes via their trace IDs and
// (proc-qualified) parent references.
func Stitch(procs []ProcTrace) (*StitchResult, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("obs: nothing to stitch")
	}
	// Resolve process names: prefer the events' own Proc stamp.
	events := make(map[string][]Event, len(procs))
	var names []string
	for _, pt := range procs {
		for _, ev := range pt.Events {
			name := ev.Proc
			if name == "" {
				name = pt.Name
			}
			if _, ok := events[name]; !ok {
				names = append(names, name)
			}
			events[name] = append(events[name], ev)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("obs: no events to stitch")
	}
	sort.Strings(names)

	res := &StitchResult{
		Offsets: make(map[string]time.Duration, len(names)),
		Procs:   names,
	}
	res.alignClocks(events)
	res.mergeEvents(events)
	res.linkSpans(events)
	return res, nil
}

// alignClocks picks the reference process and solves per-process offsets
// from the clock-sync edges. Each KindClockSync event emitted by process M
// about remote R (Detail) asserts t_M ≈ t_R + Offset; edges are combined by
// median and propagated breadth-first from the reference.
func (res *StitchResult) alignClocks(events map[string][]Event) {
	type edge struct {
		from, to string // offset maps `to` timestamps into `from` epoch
		offsets  []time.Duration
	}
	edges := make(map[[2]string]*edge)
	measurers := make(map[string]map[string]bool)
	for proc, evs := range events {
		for _, ev := range evs {
			if ev.Kind != KindClockSync || ev.Detail == "" {
				continue
			}
			key := [2]string{proc, ev.Detail}
			e := edges[key]
			if e == nil {
				e = &edge{from: proc, to: ev.Detail}
				edges[key] = e
			}
			e.offsets = append(e.offsets, ev.Offset)
			if measurers[ev.Detail] == nil {
				measurers[ev.Detail] = make(map[string]bool)
			}
			measurers[ev.Detail][proc] = true
		}
	}
	// Reference: the process the most distinct peers sync against — the
	// control plane's hub (the controller: every agent measures it) — not
	// merely the one with the most sync events. Fall back to the first
	// process.
	ref := res.Procs[0]
	best := -1
	for _, p := range res.Procs {
		if n := len(measurers[p]); n > best {
			ref, best = p, n
		}
	}
	res.Reference = ref
	res.Offsets[ref] = 0

	median := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)/2]
	}
	// BFS over the offset graph. shift[p] satisfies t_ref = t_p + shift[p].
	// Edge (M, R, O) gives t_M = t_R + O, so shift[R] = shift[M] + O and
	// shift[M] = shift[R] - O.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			o := median(e.offsets)
			if sm, ok := res.Offsets[e.from]; ok {
				if _, ok := res.Offsets[e.to]; !ok {
					res.Offsets[e.to] = sm + o
					changed = true
				}
			} else if st, ok := res.Offsets[e.to]; ok {
				res.Offsets[e.from] = st - o
				changed = true
			}
		}
	}
	for _, p := range res.Procs {
		if _, ok := res.Offsets[p]; !ok {
			if len(res.Procs) > 1 {
				res.Unstitchable = append(res.Unstitchable,
					fmt.Sprintf("proc %s has no clock-sync path to reference %s; its timestamps are unaligned", p, ref))
			}
			res.Offsets[p] = 0
		}
	}
}

// mergeEvents builds the single offset-corrected timeline.
func (res *StitchResult) mergeEvents(events map[string][]Event) {
	for proc, evs := range events {
		shift := res.Offsets[proc]
		for _, ev := range evs {
			if ev.Proc == "" {
				ev.Proc = proc
			}
			ev.T += shift
			res.Events = append(res.Events, ev)
		}
	}
	sort.SliceStable(res.Events, func(i, j int) bool { return res.Events[i].T < res.Events[j].T })
}

// linkSpans groups span-tagged events by trace ID and links parents.
func (res *StitchResult) linkSpans(events map[string][]Event) {
	spans := make(map[procSpanKey]*StitchedSpan)
	traceOf := make(map[uint64]*StitchedTrace)
	var traceOrder []uint64
	for proc, evs := range events {
		shift := res.Offsets[proc]
		for _, ev := range evs {
			if ev.Span == 0 || ev.Trace == 0 {
				continue
			}
			key := procSpanKey{proc, ev.Span}
			ss := spans[key]
			if ss == nil {
				ss = &StitchedSpan{Proc: proc, Span: &Span{ID: ev.Span}, Start: ev.T + shift}
				spans[key] = ss
				tr := traceOf[ev.Trace]
				if tr == nil {
					tr = &StitchedTrace{Trace: ev.Trace}
					traceOf[ev.Trace] = tr
					traceOrder = append(traceOrder, ev.Trace)
				}
				tr.Spans = append(tr.Spans, ss)
			}
			if t := ev.T + shift; t < ss.Start {
				ss.Start = t
			}
			sp := ss.Span
			sp.Events = append(sp.Events, ev)
			if ev.Kind == KindRecoveryComplete {
				sp.Complete = true
				sp.Kind = ev.Detail
				sp.Detection = ev.Detection
				sp.Report = ev.Report
				sp.Reconfig = ev.Reconfig
				sp.Total = ev.Total
			}
		}
	}
	// Link parents. A parent reference names (ParentProc, Parent); an
	// empty ParentProc means "same process".
	for key, ss := range spans {
		ev := ss.Span.Events[0]
		if ev.Parent == 0 {
			continue
		}
		pproc := ev.ParentProc
		if pproc == "" {
			pproc = key.proc
		}
		parent := spans[procSpanKey{pproc, ev.Parent}]
		if parent == nil {
			ss.Orphan = true
			res.Unstitchable = append(res.Unstitchable,
				fmt.Sprintf("trace %x: span %s/%d references missing parent %s/%d",
					ev.Trace, key.proc, key.span, pproc, ev.Parent))
			continue
		}
		ss.Parent = parent
		parent.Children = append(parent.Children, ss)
	}
	// Order each trace: roots (and orphans) by start time, children DFS.
	for _, id := range traceOrder {
		tr := traceOf[id]
		sort.Slice(tr.Spans, func(i, j int) bool { return tr.Spans[i].Start < tr.Spans[j].Start })
		for _, ss := range tr.Spans {
			sort.Slice(ss.Children, func(i, j int) bool { return ss.Children[i].Start < ss.Children[j].Start })
			if ss.Parent == nil {
				tr.Roots = append(tr.Roots, ss)
			}
		}
		ordered := make([]*StitchedSpan, 0, len(tr.Spans))
		var walk func(*StitchedSpan)
		walk = func(ss *StitchedSpan) {
			ordered = append(ordered, ss)
			for _, c := range ss.Children {
				walk(c)
			}
		}
		for _, r := range tr.Roots {
			walk(r)
		}
		tr.Spans = ordered
		res.Traces = append(res.Traces, tr)
	}
	sort.Slice(res.Traces, func(i, j int) bool {
		si, sj := res.Traces[i], res.Traces[j]
		ti, tj := time.Duration(-1), time.Duration(-1)
		if len(si.Spans) > 0 {
			ti = si.Spans[0].Start
		}
		if len(sj.Spans) > 0 {
			tj = sj.Spans[0].Start
		}
		return ti < tj
	})
}

// PhaseAttribution maps each Table-2 phase to the process (hop) that spent
// it, for one stitched trace: detection on the reporting agent (or the
// controller's detector for node failures), report and reconfiguration on
// the controller span, with per-circuit-switch reconfiguration under the
// circuit-switch agents' spans.
type PhaseAttribution struct {
	Phase string
	Proc  string
	Value time.Duration
}

// Attribution extracts the per-hop phase breakdown of a stitched trace.
func (tr *StitchedTrace) Attribution() []PhaseAttribution {
	var out []PhaseAttribution
	for _, ss := range tr.Spans {
		for _, ev := range ss.Span.Events {
			switch ev.Kind {
			case KindFailureDeclared:
				if ev.Detection > 0 {
					out = append(out, PhaseAttribution{"detection", ss.Proc, ev.Detection})
				}
			case KindRecoveryComplete:
				out = append(out, PhaseAttribution{"report", ss.Proc, ev.Report})
				out = append(out, PhaseAttribution{"reconfig", ss.Proc, ev.Reconfig})
				out = append(out, PhaseAttribution{"total", ss.Proc, ev.Total})
			case KindCircuitReconfigured:
				if ev.Proc != "" && ss.Proc == ev.Proc && ev.Reconfig > 0 {
					out = append(out, PhaseAttribution{"reconfig", ss.Proc, ev.Reconfig})
				}
			}
		}
	}
	return out
}

// Render draws the stitched trace as an indented span tree with per-hop
// phases — the sbtap -stitch view.
func (tr *StitchedTrace) Render() string {
	var b strings.Builder
	kind := ""
	for _, ss := range tr.Spans {
		if ss.Span.Kind != "" {
			kind = ss.Span.Kind
			break
		}
	}
	fmt.Fprintf(&b, "trace %x (%s recovery, %d spans)\n", tr.Trace, orUnknown(kind), len(tr.Spans))
	depth := make(map[*StitchedSpan]int)
	for _, ss := range tr.Spans {
		d := 0
		if ss.Parent != nil {
			d = depth[ss.Parent] + 1
		}
		depth[ss] = d
		indent := strings.Repeat("  ", d+1)
		status := ""
		if ss.Orphan {
			status = " ORPHAN(missing parent)"
		}
		fmt.Fprintf(&b, "%s%s/span %d @ %v (%d events)%s\n", indent, ss.Proc, ss.Span.ID, ss.Start, len(ss.Span.Events), status)
		for _, ev := range ss.Span.Events {
			switch ev.Kind {
			case KindFailureDeclared:
				fmt.Fprintf(&b, "%s  failure-declared detection=%v\n", indent, ev.Detection)
			case KindRecoveryComplete:
				fmt.Fprintf(&b, "%s  recovery-complete detection=%v report=%v reconfig=%v total=%v\n",
					indent, ev.Detection, ev.Report, ev.Reconfig, ev.Total)
			case KindCircuitReconfigured:
				fmt.Fprintf(&b, "%s  circuit-reconfigured reconfig=%v\n", indent, ev.Reconfig)
			case KindFailover:
				fmt.Fprintf(&b, "%s  failover -> %s (connection %d)\n", indent, ev.Detail, ev.Count)
			case KindLeaderElected:
				fmt.Fprintf(&b, "%s  leader-elected replica=%d term=%d\n", indent, ev.Switch, ev.Count)
			case KindLeaderLost:
				fmt.Fprintf(&b, "%s  leader-lost replica=%d term=%d\n", indent, ev.Switch, ev.Count)
			}
		}
	}
	if attr := tr.Attribution(); len(attr) > 0 {
		b.WriteString("  hop attribution:")
		for _, a := range attr {
			if a.Phase == "total" {
				continue
			}
			fmt.Fprintf(&b, " %s[%s]=%v", a.Phase, a.Proc, a.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}
