package obs

import (
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Bus fans events out to attached sinks. All methods are safe for concurrent
// use and safe on a nil *Bus (no-ops), so components can hold an optional
// bus without guards.
//
// Sink delivery is serialized: Emit holds one mutex while invoking sinks, so
// a sink never sees two events concurrently and events from concurrent
// emitters arrive in a single total order (their Seq numbers). With no sink
// attached, Emit is one atomic load and a branch — callers should still
// guard event *construction* with Enabled() so the no-sink path allocates
// nothing.
type Bus struct {
	sinks atomic.Pointer[[]Sink]
	mu    sync.Mutex // serializes sink delivery and sink-list mutation

	// meter, when set via MeterOverhead, accumulates the bus' own dispatch
	// cost (events delivered, ns spent in sinks) so the observability tax
	// is itself observable and budgetable.
	meter atomic.Pointer[busMeter]

	seq   atomic.Uint64 // event sequence numbers
	spans atomic.Uint64 // span ID allocator
	cur   atomic.Uint64 // active span (single-writer control planes)

	// proc names this bus' process for stitched multi-process traces;
	// stamped onto every emitted event that doesn't carry one already.
	proc atomic.Pointer[string]
	// ctx is the active trace context: the trace ID the current span
	// belongs to plus the (possibly remote) parent span it descends from.
	// Set by SetRemoteParent before BeginSpan (cross-process causality) or
	// allocated fresh by BeginSpan; cleared by EndSpan.
	ctx atomic.Pointer[TraceContext]
}

// TraceContext identifies a position in a cross-process trace: the trace ID
// and the span (qualified by its owning process) that new work descends
// from. It is what the ctlnet wire frames carry.
type TraceContext struct {
	Trace uint64
	Span  uint64
	Proc  string
}

// traceSeed randomizes trace IDs per process so traces originating in
// different processes never collide; overridable for deterministic tests.
var (
	traceSeed atomic.Uint64
	traceCtr  atomic.Uint64
)

func init() {
	traceSeed.Store(uint64(time.Now().UnixNano())*0x9e3779b97f4a7c15 ^ uint64(os.Getpid())<<32)
}

// SetTraceIDSeed fixes the process' trace-ID seed (deterministic tests).
func SetTraceIDSeed(seed uint64) { traceSeed.Store(seed) }

// NewTraceID allocates a process-unique, cross-process-collision-resistant
// trace ID (never 0).
func NewTraceID() uint64 {
	id := traceSeed.Load() ^ traceCtr.Add(1)*0x9e3779b97f4a7c15
	if id == 0 {
		id = 1
	}
	return id
}

// Default is the process-wide bus. sharebackup.New wires it into every
// System it builds, so attaching a sink here (e.g. via the -trace flag of
// the commands) observes all control planes without plumbing.
var Default = &Bus{}

// Enabled reports whether any sink is attached. Emit sites use it to skip
// event construction entirely on the no-sink path.
func (b *Bus) Enabled() bool {
	if b == nil {
		return false
	}
	s := b.sinks.Load()
	return s != nil && len(*s) > 0
}

// Emit delivers the event to every attached sink, stamping its Seq, the
// bus' process name, and — for span-tagged events — the active trace
// context. It is a no-op (and allocation-free) when no sink is attached.
func (b *Bus) Emit(ev Event) {
	if b == nil {
		return
	}
	s := b.sinks.Load()
	if s == nil || len(*s) == 0 {
		return
	}
	m := b.meter.Load()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	ev.Seq = b.seq.Add(1)
	if ev.Proc == "" {
		if p := b.proc.Load(); p != nil {
			ev.Proc = *p
		}
	}
	if ev.Span != 0 && ev.Trace == 0 {
		if ctx := b.ctx.Load(); ctx != nil {
			ev.Trace = ctx.Trace
			ev.Parent = ctx.Span
			ev.ParentProc = ctx.Proc
		}
	}
	b.mu.Lock()
	// Reload under the lock: Detach may have run since the fast-path check.
	if s := b.sinks.Load(); s != nil {
		for _, sink := range *s {
			sink.Event(ev)
		}
	}
	b.mu.Unlock()
	if m != nil {
		m.ns.Add(time.Since(t0).Nanoseconds())
		m.events.Inc()
	}
}

// busMeter holds the resolved self-overhead counters.
type busMeter struct {
	events *Counter // obs.emit_events
	ns     *Counter // obs.emit_ns
}

// MeterOverhead starts metering the bus' sink-dispatch cost into reg:
// obs.emit_events counts delivered events, obs.emit_ns their cumulative
// dispatch nanoseconds (stamping + every sink's Event call). The no-sink
// fast path is never metered — it stays one atomic load. A nil reg stops
// metering.
func (b *Bus) MeterOverhead(reg *Registry) {
	if b == nil {
		return
	}
	if reg == nil {
		b.meter.Store(nil)
		return
	}
	b.meter.Store(&busMeter{
		events: reg.Counter("obs.emit_events"),
		ns:     reg.Counter("obs.emit_ns"),
	})
}

// Attach adds a sink. The same sink value can only be attached once; a
// second Attach of it is a no-op.
func (b *Bus) Attach(s Sink) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var cur []Sink
	if p := b.sinks.Load(); p != nil {
		cur = *p
	}
	for _, have := range cur {
		if have == s {
			return
		}
	}
	next := make([]Sink, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = s
	b.sinks.Store(&next)
}

// Detach removes a previously attached sink.
func (b *Bus) Detach(s Sink) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.sinks.Load()
	if p == nil {
		return
	}
	next := make([]Sink, 0, len(*p))
	for _, have := range *p {
		if have != s {
			next = append(next, have)
		}
	}
	b.sinks.Store(&next)
}

// BeginSpan allocates a recovery span ID and marks it active, so emitters
// below the control plane (e.g. sbnet circuit reconfigurations) can tag
// their events via ActiveSpan. Recoveries are serialized in both control
// planes (the virtual-time controller is single-threaded; the TCP server
// holds its mutex across recovery calls), so a single active-span slot
// suffices; concurrent emitters outside a recovery simply read 0.
func (b *Bus) BeginSpan() uint64 {
	if b == nil {
		return 0
	}
	id := b.spans.Add(1)
	b.cur.Store(id)
	// Join the remote parent's trace when one was staged via
	// SetRemoteParent; otherwise this span roots a fresh trace.
	if b.ctx.Load() == nil {
		b.ctx.Store(&TraceContext{Trace: NewTraceID()})
	}
	return id
}

// EndSpan clears the active span and its trace context.
func (b *Bus) EndSpan() {
	if b != nil {
		b.cur.Store(0)
		b.ctx.Store(nil)
	}
}

// ActiveSpan returns the span opened by the innermost BeginSpan, or 0.
func (b *Bus) ActiveSpan() uint64 {
	if b == nil {
		return 0
	}
	return b.cur.Load()
}

// SetProc names this bus' process; every emitted event is stamped with it
// (unless the event already carries one). Call once at wire-up.
func (b *Bus) SetProc(name string) {
	if b != nil {
		b.proc.Store(&name)
	}
}

// Proc returns the process name set via SetProc ("" when unset).
func (b *Bus) Proc() string {
	if b == nil {
		return ""
	}
	if p := b.proc.Load(); p != nil {
		return *p
	}
	return ""
}

// SetRemoteParent stages an incoming cross-process trace context: the next
// BeginSpan joins ctx.Trace as a child of ctx.Span/ctx.Proc instead of
// rooting a fresh trace. A zero-trace context is ignored. Recoveries are
// serialized per bus (see BeginSpan), so one staged slot suffices.
func (b *Bus) SetRemoteParent(ctx TraceContext) {
	if b == nil || ctx.Trace == 0 {
		return
	}
	c := ctx
	b.ctx.Store(&c)
}

// ActiveTrace returns the trace ID of the active span (0 outside spans).
func (b *Bus) ActiveTrace() uint64 {
	if b == nil {
		return 0
	}
	if ctx := b.ctx.Load(); ctx != nil {
		return ctx.Trace
	}
	return 0
}

// ActiveContext returns the context a request made inside the current span
// should carry on the wire: the active trace plus this bus' span and
// process as the parent. Zero outside spans.
func (b *Bus) ActiveContext() TraceContext {
	if b == nil {
		return TraceContext{}
	}
	ctx := b.ctx.Load()
	if ctx == nil {
		return TraceContext{}
	}
	return TraceContext{Trace: ctx.Trace, Span: b.cur.Load(), Proc: b.Proc()}
}

// Logf emits a KindLog event carrying the formatted line. It is the
// serialization point for ad-hoc diagnostics: concurrent callers are ordered
// by the bus' sink lock. Formatting is skipped when no sink is attached.
func (b *Bus) Logf(t time.Duration, wall bool, format string, args ...interface{}) {
	if !b.Enabled() {
		return
	}
	ev := NewEvent(KindLog, t)
	ev.Wall = wall
	ev.Detail = sprintf(format, args...)
	b.Emit(ev)
}
