package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Bus fans events out to attached sinks. All methods are safe for concurrent
// use and safe on a nil *Bus (no-ops), so components can hold an optional
// bus without guards.
//
// Sink delivery is serialized: Emit holds one mutex while invoking sinks, so
// a sink never sees two events concurrently and events from concurrent
// emitters arrive in a single total order (their Seq numbers). With no sink
// attached, Emit is one atomic load and a branch — callers should still
// guard event *construction* with Enabled() so the no-sink path allocates
// nothing.
type Bus struct {
	sinks atomic.Pointer[[]Sink]
	mu    sync.Mutex // serializes sink delivery and sink-list mutation

	seq   atomic.Uint64 // event sequence numbers
	spans atomic.Uint64 // span ID allocator
	cur   atomic.Uint64 // active span (single-writer control planes)
}

// Default is the process-wide bus. sharebackup.New wires it into every
// System it builds, so attaching a sink here (e.g. via the -trace flag of
// the commands) observes all control planes without plumbing.
var Default = &Bus{}

// Enabled reports whether any sink is attached. Emit sites use it to skip
// event construction entirely on the no-sink path.
func (b *Bus) Enabled() bool {
	if b == nil {
		return false
	}
	s := b.sinks.Load()
	return s != nil && len(*s) > 0
}

// Emit delivers the event to every attached sink, stamping its Seq. It is a
// no-op (and allocation-free) when no sink is attached.
func (b *Bus) Emit(ev Event) {
	if b == nil {
		return
	}
	s := b.sinks.Load()
	if s == nil || len(*s) == 0 {
		return
	}
	ev.Seq = b.seq.Add(1)
	b.mu.Lock()
	// Reload under the lock: Detach may have run since the fast-path check.
	if s := b.sinks.Load(); s != nil {
		for _, sink := range *s {
			sink.Event(ev)
		}
	}
	b.mu.Unlock()
}

// Attach adds a sink. The same sink value can only be attached once; a
// second Attach of it is a no-op.
func (b *Bus) Attach(s Sink) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var cur []Sink
	if p := b.sinks.Load(); p != nil {
		cur = *p
	}
	for _, have := range cur {
		if have == s {
			return
		}
	}
	next := make([]Sink, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = s
	b.sinks.Store(&next)
}

// Detach removes a previously attached sink.
func (b *Bus) Detach(s Sink) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.sinks.Load()
	if p == nil {
		return
	}
	next := make([]Sink, 0, len(*p))
	for _, have := range *p {
		if have != s {
			next = append(next, have)
		}
	}
	b.sinks.Store(&next)
}

// BeginSpan allocates a recovery span ID and marks it active, so emitters
// below the control plane (e.g. sbnet circuit reconfigurations) can tag
// their events via ActiveSpan. Recoveries are serialized in both control
// planes (the virtual-time controller is single-threaded; the TCP server
// holds its mutex across recovery calls), so a single active-span slot
// suffices; concurrent emitters outside a recovery simply read 0.
func (b *Bus) BeginSpan() uint64 {
	if b == nil {
		return 0
	}
	id := b.spans.Add(1)
	b.cur.Store(id)
	return id
}

// EndSpan clears the active span.
func (b *Bus) EndSpan() {
	if b != nil {
		b.cur.Store(0)
	}
}

// ActiveSpan returns the span opened by the innermost BeginSpan, or 0.
func (b *Bus) ActiveSpan() uint64 {
	if b == nil {
		return 0
	}
	return b.cur.Load()
}

// Logf emits a KindLog event carrying the formatted line. It is the
// serialization point for ad-hoc diagnostics: concurrent callers are ordered
// by the bus' sink lock. Formatting is skipped when no sink is attached.
func (b *Bus) Logf(t time.Duration, wall bool, format string, args ...interface{}) {
	if !b.Enabled() {
		return
	}
	ev := NewEvent(KindLog, t)
	ev.Wall = wall
	ev.Detail = sprintf(format, args...)
	b.Emit(ev)
}
