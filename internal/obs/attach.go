package obs

import (
	"fmt"
	"os"
)

// TraceToFile attaches a JSONL sink writing to path on bus (Default when
// nil) and returns a cleanup function that detaches the sink, flushes, and
// closes the file. It is the implementation of the commands' -trace flag.
func TraceToFile(bus *Bus, path string) (func() error, error) {
	_, done, err := TraceSinkToFile(bus, path)
	return done, err
}

// TraceSinkToFile is TraceToFile exposing the underlying sink, so callers
// can additionally hand it to sweep workers (wrapped in ShardTagger) and
// have shard-tagged events land in the same trace file as the bus' own.
func TraceSinkToFile(bus *Bus, path string) (*JSONLSink, func() error, error) {
	if bus == nil {
		bus = Default
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: trace file: %w", err)
	}
	sink := NewJSONLSink(f)
	bus.Attach(sink)
	return sink, func() error {
		bus.Detach(sink)
		if err := sink.Err(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

// EventsToLogf attaches a human-readable sink on bus (Default when nil) and
// returns a detach function. It is the implementation of the commands'
// -events flag.
func EventsToLogf(bus *Bus, logf func(format string, args ...interface{})) func() {
	if bus == nil {
		bus = Default
	}
	sink := NewLogfSink(logf)
	bus.Attach(sink)
	return func() { bus.Detach(sink) }
}
