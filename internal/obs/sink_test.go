package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	b := &Bus{}
	b.Attach(sink)

	want := NewEvent(KindRecoveryComplete, 730*time.Microsecond)
	want.Span = 9
	want.Switch = 4
	want.Backup = 7
	want.Port = 2
	want.Detail = "node"
	want.Check = "forwarding-engine"
	want.Count = 8
	want.Wall = true
	want.Detection = 500 * time.Microsecond
	want.Report = 200 * time.Microsecond
	want.Reconfig = 30 * time.Microsecond
	want.Total = 730 * time.Microsecond
	b.Emit(want)
	b.Emit(NewEvent(KindProbeMissed, time.Millisecond))
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("decoded %d events, want 2", len(evs))
	}
	got := evs[0]
	want.Seq = got.Seq // assigned by the bus
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if evs[1].Kind != KindProbeMissed || evs[1].Switch != None {
		t.Fatalf("second event decoded as %+v", evs[1])
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"no-such-kind","t_ns":0}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestLogfSinkRenders(t *testing.T) {
	var lines []string
	sink := NewLogfSink(func(format string, args ...interface{}) {
		lines = append(lines, sprintf(format, args...))
	})
	ev := NewEvent(KindBackupAssigned, time.Millisecond)
	ev.Switch = 3
	ev.Backup = 5
	sink.Event(ev)
	if len(lines) != 1 || !strings.Contains(lines[0], "backup-assigned") || !strings.Contains(lines[0], "backup=5") {
		t.Fatalf("logf sink rendered %q", lines)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(3)
	r.Counter("a.count").Inc()
	r.Gauge("m.level").Set(-2)
	snap := r.Snapshot()
	want := "a.count 1\nm.level -2\nz.count 3\n"
	if snap != want {
		t.Fatalf("snapshot = %q, want %q", snap, want)
	}
	// Same-name handles alias the same metric.
	r.Counter("a.count").Inc()
	if got := r.Counter("a.count").Value(); got != 2 {
		t.Fatalf("aliased counter = %d, want 2", got)
	}
}

func TestNilRegistryHandles(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	if r.Snapshot() != "" {
		t.Fatal("nil registry snapshot not empty")
	}
	var c *Counter
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatal("nil counter has value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has value")
	}
}
