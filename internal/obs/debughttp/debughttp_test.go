package debughttp

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sharebackup/internal/obs"
)

// testServer mounts the debug handler on an httptest server over a private
// bus and registry, pre-populated with one counter, one gauge, one histogram
// and three bus events.
func testServer(t *testing.T) (*httptest.Server, *obs.Registry, *obs.Bus) {
	t.Helper()
	reg := obs.NewRegistry()
	bus := &obs.Bus{}
	reg.Counter("controller.failovers").Add(7)
	reg.Gauge("fluid.active_flows").Set(3)
	h := reg.Histogram("fluid.fct_us")
	for v := int64(1); v <= 100; v++ {
		h.Record(v * 10)
	}
	s := newServer(Config{Registry: reg, Bus: bus, Backlog: 16})
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	for i := 0; i < 3; i++ {
		ev := obs.NewEvent(obs.KindFailureDeclared, time.Duration(i)*time.Millisecond)
		ev.Switch = int32(i)
		bus.Emit(ev)
	}
	return ts, reg, bus
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexAndHealthz(t *testing.T) {
	ts, _, _ := testServer(t)
	code, body := get(t, ts.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "/varz") {
		t.Fatalf("index: code=%d body=%q", code, body)
	}
	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz: code=%d body=%q", code, body)
	}
	if code, _ := get(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path: code=%d, want 404", code)
	}
}

func TestVarzJSON(t *testing.T) {
	ts, _, _ := testServer(t)
	code, body := get(t, ts.URL+"/varz")
	if code != http.StatusOK {
		t.Fatalf("varz: code=%d", code)
	}
	var ex obs.Export
	if err := json.Unmarshal([]byte(body), &ex); err != nil {
		t.Fatalf("varz: not JSON: %v\n%s", err, body)
	}
	if ex.Counters["controller.failovers"] != 7 {
		t.Fatalf("varz counter = %d, want 7", ex.Counters["controller.failovers"])
	}
	if ex.Gauges["fluid.active_flows"] != 3 {
		t.Fatalf("varz gauge = %d, want 3", ex.Gauges["fluid.active_flows"])
	}
	h, ok := ex.Histograms["fluid.fct_us"]
	if !ok {
		t.Fatalf("varz: no fluid.fct_us histogram\n%s", body)
	}
	if h.Count != 100 || h.Min != 10 || h.Max != 1000 {
		t.Fatalf("histogram summary = %+v", h)
	}
	// Samples are 10..1000; p50 ≈ 500 within the 1/16 bucket error.
	if h.P50 < 450 || h.P50 > 550 {
		t.Fatalf("p50 = %d, want ≈500", h.P50)
	}
	if h.P99 < 900 || h.P99 > 1000 {
		t.Fatalf("p99 = %d, want ≈990", h.P99)
	}
	if len(h.Buckets) != 0 {
		t.Fatalf("buckets included without ?buckets=1: %d", len(h.Buckets))
	}

	_, body = get(t, ts.URL+"/varz?buckets=1")
	if err := json.Unmarshal([]byte(body), &ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Histograms["fluid.fct_us"].Buckets) == 0 {
		t.Fatal("?buckets=1 did not include bucket detail")
	}
}

func TestVarzText(t *testing.T) {
	ts, _, _ := testServer(t)
	code, body := get(t, ts.URL+"/varz?format=text")
	if code != http.StatusOK {
		t.Fatalf("varz text: code=%d", code)
	}
	if !strings.Contains(body, "controller.failovers 7\n") {
		t.Fatalf("varz text missing counter line:\n%s", body)
	}
	if !strings.Contains(body, "fluid.fct_us.count 100\n") {
		t.Fatalf("varz text missing histogram count line:\n%s", body)
	}
}

func TestEventsReplayJSONL(t *testing.T) {
	ts, _, _ := testServer(t)
	code, body := get(t, ts.URL+"/events?replay=1&n=3")
	if code != http.StatusOK {
		t.Fatalf("events: code=%d", code)
	}
	evs, err := obs.ReadJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("events: bad JSONL: %v\n%s", err, body)
	}
	if len(evs) != 3 {
		t.Fatalf("events: got %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Kind != obs.KindFailureDeclared || ev.Switch != int32(i) {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

func TestEventsReplaySSE(t *testing.T) {
	ts, _, _ := testServer(t)
	code, body := get(t, ts.URL+"/events?replay=1&n=2&sse=1")
	if code != http.StatusOK {
		t.Fatalf("events sse: code=%d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n\n")
	if len(lines) != 2 {
		t.Fatalf("sse: got %d frames, want 2:\n%s", len(lines), body)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "data: ") {
			t.Fatalf("sse frame %q lacks data: prefix", l)
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(l, "data: ")), &ev); err != nil {
			t.Fatalf("sse frame not JSON: %v", err)
		}
	}
}

func TestEventsLiveStream(t *testing.T) {
	ts, _, bus := testServer(t)
	resp, err := http.Get(ts.URL + "/events?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The client sink attaches only once the handler runs; keep emitting
	// until both events come back.
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			case <-tick.C:
				ev := obs.NewEvent(obs.KindBackupAssigned, time.Duration(i))
				bus.Emit(ev)
			}
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	var got []obs.Event
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("live stream line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	done <- struct{}{}
	if len(got) != 2 {
		t.Fatalf("live stream: got %d events, want 2", len(got))
	}
	for _, ev := range got {
		if ev.Kind != obs.KindBackupAssigned {
			t.Fatalf("live stream event kind = %v", ev.Kind)
		}
	}
}

func TestEventsBadN(t *testing.T) {
	ts, _, _ := testServer(t)
	if code, _ := get(t, ts.URL+"/events?n=x"); code != http.StatusBadRequest {
		t.Fatalf("bad n: code=%d, want 400", code)
	}
}

func TestPprofIndex(t *testing.T) {
	ts, _, _ := testServer(t)
	code, body := get(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: code=%d", code)
	}
}

func TestStartAndClose(t *testing.T) {
	reg := obs.NewRegistry()
	bus := &obs.Bus{}
	s, err := Start("127.0.0.1:0", Config{Registry: reg, Bus: bus})
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz over real listener: code=%d body=%q", code, body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}

// TestRingDropsSurfaceInVarz pins the satellite: overflowing the backlog
// ring shows up as obs.ring_dropped_events on /varz.
func TestRingDropsSurfaceInVarz(t *testing.T) {
	reg := obs.NewRegistry()
	bus := &obs.Bus{}
	s := newServer(Config{Registry: reg, Bus: bus, Backlog: 4})
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	for i := 0; i < 10; i++ {
		bus.Emit(obs.NewEvent(obs.KindLog, time.Duration(i)))
	}
	_, body := get(t, ts.URL+"/varz")
	var ex obs.Export
	if err := json.Unmarshal([]byte(body), &ex); err != nil {
		t.Fatal(err)
	}
	if got := ex.Counters["obs.ring_dropped_events"]; got != 6 {
		t.Fatalf("ring_dropped_events = %d, want 6", got)
	}
}
