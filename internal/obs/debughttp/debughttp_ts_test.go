package debughttp

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sharebackup/internal/obs"
	"sharebackup/internal/obs/tsdb"
)

// tsTestServer mounts the handler over a caller-driven tsdb store (sampled
// synchronously, no goroutine) and an isolated flight directory.
func tsTestServer(t *testing.T) (*httptest.Server, *tsdb.Store, *obs.Registry, string) {
	t.Helper()
	reg := obs.NewRegistry()
	store := tsdb.New(tsdb.Config{Registry: reg, Window: 16})
	t.Cleanup(store.Close)
	flightDir := filepath.Join(t.TempDir(), "flight")
	s := newServer(Config{Registry: reg, Bus: &obs.Bus{}, TSDB: store, FlightDir: flightDir})
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	return ts, store, reg, flightDir
}

func TestTimeSeriesEndpoint(t *testing.T) {
	ts, store, reg, _ := tsTestServer(t)
	c := reg.Counter("recovery.count")
	for i := 0; i < 5; i++ {
		c.Add(2)
		store.Sample(time.UnixMilli(1_000_000).Add(time.Duration(i) * time.Second))
	}

	// Bare path: index of (name, kind) with no points.
	code, body := get(t, ts.URL+"/timeseriesz")
	if code != http.StatusOK {
		t.Fatalf("index: code=%d body=%q", code, body)
	}
	var index []tsdb.SeriesData
	if err := json.Unmarshal([]byte(body), &index); err != nil {
		t.Fatalf("index not JSON: %v", err)
	}
	found := false
	for _, sd := range index {
		if sd.Name == "recovery.count" {
			found = true
			if sd.Kind != tsdb.KindCounterDelta {
				t.Errorf("kind = %q", sd.Kind)
			}
			if len(sd.Points) != 0 {
				t.Errorf("index should carry no points, got %d", len(sd.Points))
			}
		}
	}
	if !found {
		t.Fatalf("recovery.count missing from index: %s", body)
	}

	// One series, point-limited.
	code, body = get(t, ts.URL+"/timeseriesz?metric=recovery.count&n=2")
	if code != http.StatusOK {
		t.Fatalf("metric: code=%d", code)
	}
	var one tsdb.SeriesData
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Points) != 2 || one.Points[1].V != 2 {
		t.Fatalf("limited series: %+v", one)
	}

	// Every series with points.
	code, body = get(t, ts.URL+"/timeseriesz?all=1")
	var all []tsdb.SeriesData
	if code != http.StatusOK || json.Unmarshal([]byte(body), &all) != nil || len(all) == 0 {
		t.Fatalf("all: code=%d body=%q", code, body)
	}

	// Unknown series is a 404; bad n is a 400.
	if code, _ := get(t, ts.URL+"/timeseriesz?metric=nope"); code != http.StatusNotFound {
		t.Errorf("unknown metric: code=%d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/timeseriesz?n=potato"); code != http.StatusBadRequest {
		t.Errorf("bad n: code=%d, want 400", code)
	}
}

func TestFlightzEndpoint(t *testing.T) {
	ts, _, _, flightDir := tsTestServer(t)

	// No flight dir yet: an empty list, not an error.
	code, body := get(t, ts.URL+"/flightz")
	if code != http.StatusOK {
		t.Fatalf("empty: code=%d", code)
	}
	var bundles []flightBundle
	if err := json.Unmarshal([]byte(body), &bundles); err != nil || len(bundles) != 0 {
		t.Fatalf("empty listing: %q err=%v", body, err)
	}

	// Fake two dump bundles, one with a meta.json trigger reason.
	for _, name := range []string{"flightdump-001", "flightdump-002"} {
		dir := filepath.Join(flightDir, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "events.jsonl"), []byte("{}\n{}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	meta := []byte(`{"reason": "slo-breach"}`)
	if err := os.WriteFile(filepath.Join(flightDir, "flightdump-002", "meta.json"), meta, 0o644); err != nil {
		t.Fatal(err)
	}
	// A stray file in the flight dir must not become a bundle.
	if err := os.WriteFile(filepath.Join(flightDir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	code, body = get(t, ts.URL+"/flightz")
	if code != http.StatusOK {
		t.Fatalf("listing: code=%d", code)
	}
	if err := json.Unmarshal([]byte(body), &bundles); err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 2 {
		t.Fatalf("got %d bundles, want 2: %s", len(bundles), body)
	}
	if bundles[0].Name != "flightdump-001" || bundles[1].Name != "flightdump-002" {
		t.Fatalf("order: %+v", bundles)
	}
	if bundles[0].Trigger != "" || bundles[1].Trigger != "slo-breach" {
		t.Fatalf("triggers: %+v", bundles)
	}
	if bundles[0].Bytes != 6 || len(bundles[0].Files) != 1 {
		t.Fatalf("sizes: %+v", bundles[0])
	}
	if bundles[1].Bytes != int64(6+len(meta)) || len(bundles[1].Files) != 2 {
		t.Fatalf("sizes with meta: %+v", bundles[1])
	}
	if bundles[1].ModTime.IsZero() {
		t.Error("mtime not populated")
	}
}

func TestIndexMentionsNewEndpoints(t *testing.T) {
	ts, _, _, _ := tsTestServer(t)
	_, body := get(t, ts.URL+"/")
	for _, want := range []string{"/timeseriesz", "/flightz"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %s:\n%s", want, body)
		}
	}
}
