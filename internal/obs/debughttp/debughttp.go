// Package debughttp is the live half of the observability pipeline: an
// opt-in HTTP introspection server that exposes the process' runtime state
// while a simulation or control plane is running. Endpoints:
//
//	/            index of everything below
//	/healthz     liveness probe ("ok")
//	/varz        JSON snapshot of an obs.Registry — counters, gauges, and
//	             histogram quantiles; ?buckets=1 adds bucket detail,
//	             ?format=text serves the classic sorted "name value" dump
//	/metricsz    the same registry in Prometheus text exposition format
//	             (counters, gauges, histograms-as-summaries)
//	/events      the live event bus as JSONL; ?sse=1 (or an
//	             Accept: text/event-stream header) switches to
//	             server-sent events; ?replay=1 first replays the buffered
//	             backlog; ?n=N closes after N events
//	/debug/pprof the standard net/http/pprof profiling surface
//
// The server observes without being load-bearing: it attaches one ring sink
// (whose evictions are counted in the registry as
// obs.ring_dropped_events) plus one per-/events-client sink, and slow
// clients lose events rather than stalling the bus (drops are counted in
// debughttp.events_dropped).
package debughttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"sharebackup/internal/obs"
)

// Config wires the server's data sources.
type Config struct {
	// Registry backs /varz. Nil means obs.DefaultRegistry.
	Registry *obs.Registry
	// Bus backs /events. Nil means obs.Default.
	Bus *obs.Bus
	// Backlog is the replay ring capacity for /events?replay=1.
	// 0 means 1024.
	Backlog int
}

func (c *Config) setDefaults() {
	if c.Registry == nil {
		c.Registry = obs.DefaultRegistry
	}
	if c.Bus == nil {
		c.Bus = obs.Default
	}
	if c.Backlog == 0 {
		c.Backlog = 1024
	}
}

// Server is a running introspection server. Close detaches its sinks and
// stops the listener.
type Server struct {
	cfg  Config
	lis  net.Listener
	http *http.Server
	ring *obs.Ring
}

// newServer attaches the backlog ring but does not listen — the seam that
// lets tests mount handler() on an httptest server.
func newServer(cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{cfg: cfg}
	s.ring = obs.NewRing(cfg.Backlog)
	s.ring.CountDropsIn(cfg.Registry.Counter("obs.ring_dropped_events"))
	cfg.Bus.Attach(s.ring)
	return s
}

// Start listens on addr (e.g. "127.0.0.1:6060", or ":0" for an ephemeral
// port) and serves the introspection surface until Close.
func Start(addr string, cfg Config) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debughttp: %w", err)
	}
	s := newServer(cfg)
	s.lis = lis
	s.http = &http.Server{Handler: s.handler()}
	go s.http.Serve(lis) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// Addr returns the server's listen address (host:port).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close detaches the backlog sink and stops the listener. In-flight /events
// streams end when their clients disconnect.
func (s *Server) Close() error {
	s.cfg.Bus.Detach(s.ring)
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

// handler builds the route table. Split out (and exercised via
// httptest) so the HTTP surface is testable without a real listener.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveIndex)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/varz", s.serveVarz)
	mux.HandleFunc("/metricsz", s.serveMetricsz)
	mux.HandleFunc("/events", s.serveEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `sharebackup debug server
  /healthz            liveness
  /varz               metrics snapshot (JSON; ?format=text, ?buckets=1)
  /metricsz           Prometheus text exposition of the same registry
  /events             live event stream (JSONL; ?sse=1, ?replay=1, ?n=N)
  /debug/pprof/       profiling
`)
}

func (s *Server) serveMetricsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.cfg.Registry.PromText())
}

func (s *Server) serveVarz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.cfg.Registry.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.cfg.Registry.Export(r.URL.Query().Get("buckets") == "1")) //nolint:errcheck
}

// chanSink forwards bus events into a buffered channel, dropping (and
// counting) when the client cannot keep up — the bus must never block on a
// slow HTTP reader.
type chanSink struct {
	ch      chan obs.Event
	dropped *obs.Counter
}

func (c *chanSink) Event(ev obs.Event) {
	select {
	case c.ch <- ev:
	default:
		c.dropped.Inc()
	}
}

func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sse := q.Get("sse") == "1" || r.Header.Get("Accept") == "text/event-stream"
	limit := -1
	if ns := q.Get("n"); ns != "" {
		n, err := strconv.Atoi(ns)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		limit = n
	}
	flusher, _ := w.(http.Flusher)
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/jsonl")
	}
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		// Push the headers out now: a client tailing a quiet bus should
		// see the stream open immediately, not on the first event.
		flusher.Flush()
	}

	write := func(ev obs.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	sent := 0
	if q.Get("replay") == "1" {
		for _, ev := range s.ring.Events() {
			if limit >= 0 && sent >= limit {
				return
			}
			if !write(ev) {
				return
			}
			sent++
		}
	}
	if limit >= 0 && sent >= limit {
		return
	}

	sink := &chanSink{
		ch:      make(chan obs.Event, 256),
		dropped: s.cfg.Registry.Counter("debughttp.events_dropped"),
	}
	s.cfg.Bus.Attach(sink)
	defer s.cfg.Bus.Detach(sink)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sink.ch:
			if !write(ev) {
				return
			}
			sent++
			if limit >= 0 && sent >= limit {
				return
			}
		}
	}
}
