// Package debughttp is the live half of the observability pipeline: an
// opt-in HTTP introspection server that exposes the process' runtime state
// while a simulation or control plane is running. Endpoints:
//
//	/            index of everything below
//	/healthz     liveness probe ("ok")
//	/varz        JSON snapshot of an obs.Registry — counters, gauges, and
//	             histogram quantiles; ?buckets=1 adds bucket detail,
//	             ?format=text serves the classic sorted "name value" dump
//	/metricsz    the same registry in Prometheus text exposition format
//	             (counters, gauges, histograms-as-summaries)
//	/events      the live event bus as JSONL; ?sse=1 (or an
//	             Accept: text/event-stream header) switches to
//	             server-sent events; ?replay=1 first replays the buffered
//	             backlog; ?n=N closes after N events
//	/timeseriesz windowed metric history from the embedded tsdb store:
//	             the bare path lists series (name, kind); ?metric=NAME
//	             returns one series; ?all=1 returns every series; ?n=N
//	             limits to the last N points
//	/flightz     JSON listing of flight-recorder dump bundles on disk
//	             (name, trigger, size, mtime, files)
//	/debug/pprof the standard net/http/pprof profiling surface
//
// The server observes without being load-bearing: it attaches one ring sink
// (whose evictions are counted in the registry as
// obs.ring_dropped_events) plus one per-/events-client sink, and slow
// clients lose events rather than stalling the bus (drops are counted in
// debughttp.events_dropped).
package debughttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"sharebackup/internal/obs"
	"sharebackup/internal/obs/tsdb"
)

// Config wires the server's data sources.
type Config struct {
	// Registry backs /varz. Nil means obs.DefaultRegistry.
	Registry *obs.Registry
	// Bus backs /events. Nil means obs.Default.
	Bus *obs.Bus
	// Backlog is the replay ring capacity for /events?replay=1.
	// 0 means 1024.
	Backlog int
	// TSDB backs /timeseriesz. Nil means the server builds its own store
	// over Registry (1s interval) and owns its lifecycle: Start begins
	// sampling, Close stops it. A caller-provided store is only read —
	// the caller keeps Start/Close.
	TSDB *tsdb.Store
	// FlightDir is the directory /flightz lists flight-recorder bundles
	// from. Empty resolves through obs.DefaultFlightDir (so a process
	// using the default flight dir needs no extra wiring).
	FlightDir string
}

func (c *Config) setDefaults() {
	if c.Registry == nil {
		c.Registry = obs.DefaultRegistry
	}
	if c.Bus == nil {
		c.Bus = obs.Default
	}
	if c.Backlog == 0 {
		c.Backlog = 1024
	}
	if c.FlightDir == "" {
		c.FlightDir = obs.DefaultFlightDir("")
	}
}

// Server is a running introspection server. Close detaches its sinks and
// stops the listener.
type Server struct {
	cfg    Config
	lis    net.Listener
	http   *http.Server
	ring   *obs.Ring
	ownsTS bool // the server built cfg.TSDB and drives its lifecycle
}

// newServer attaches the backlog ring but does not listen — the seam that
// lets tests mount handler() on an httptest server.
func newServer(cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{cfg: cfg}
	if s.cfg.TSDB == nil {
		s.cfg.TSDB = tsdb.New(tsdb.Config{Registry: s.cfg.Registry})
		s.ownsTS = true
	}
	s.ring = obs.NewRing(cfg.Backlog)
	s.ring.CountDropsIn(cfg.Registry.Counter("obs.ring_dropped_events"))
	cfg.Bus.Attach(s.ring)
	return s
}

// Start listens on addr (e.g. "127.0.0.1:6060", or ":0" for an ephemeral
// port) and serves the introspection surface until Close.
func Start(addr string, cfg Config) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debughttp: %w", err)
	}
	s := newServer(cfg)
	if s.ownsTS {
		s.cfg.TSDB.Start()
	}
	s.lis = lis
	s.http = &http.Server{Handler: s.handler()}
	go s.http.Serve(lis) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// Addr returns the server's listen address (host:port).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close detaches the backlog sink and stops the listener. In-flight /events
// streams end when their clients disconnect.
func (s *Server) Close() error {
	s.cfg.Bus.Detach(s.ring)
	if s.ownsTS {
		s.cfg.TSDB.Close()
	}
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

// handler builds the route table. Split out (and exercised via
// httptest) so the HTTP surface is testable without a real listener.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveIndex)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/varz", s.serveVarz)
	mux.HandleFunc("/metricsz", s.serveMetricsz)
	mux.HandleFunc("/events", s.serveEvents)
	mux.HandleFunc("/timeseriesz", s.serveTimeSeries)
	mux.HandleFunc("/flightz", s.serveFlightz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `sharebackup debug server
  /healthz            liveness
  /varz               metrics snapshot (JSON; ?format=text, ?buckets=1)
  /metricsz           Prometheus text exposition of the same registry
  /events             live event stream (JSONL; ?sse=1, ?replay=1, ?n=N)
  /timeseriesz        windowed metric history (?metric=NAME, ?all=1, ?n=N)
  /flightz            flight-recorder dump bundles on disk
  /debug/pprof/       profiling
`)
}

func (s *Server) serveMetricsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.cfg.Registry.PromText())
}

func (s *Server) serveVarz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.cfg.Registry.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.cfg.Registry.Export(r.URL.Query().Get("buckets") == "1")) //nolint:errcheck
}

// serveTimeSeries serves the embedded tsdb store. The bare path is an index
// ([]{name, kind, interval_ms}); ?metric=NAME returns that series,
// ?all=1 every series, ?n=N limits each to the last N points.
func (s *Server) serveTimeSeries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n := 0
	if ns := q.Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	switch {
	case q.Get("metric") != "":
		sd, ok := s.cfg.TSDB.Series(q.Get("metric"), n)
		if !ok {
			http.Error(w, "unknown series", http.StatusNotFound)
			return
		}
		enc.Encode(sd) //nolint:errcheck
	case q.Get("all") == "1":
		enc.Encode(s.cfg.TSDB.All(n)) //nolint:errcheck
	default:
		enc.Encode(s.cfg.TSDB.Kinds()) //nolint:errcheck
	}
}

// flightBundle is one /flightz entry: a flight-recorder dump directory.
type flightBundle struct {
	Name    string       `json:"name"`
	Trigger string       `json:"trigger,omitempty"`
	Bytes   int64        `json:"bytes"`
	ModTime time.Time    `json:"mtime"`
	Files   []flightFile `json:"files,omitempty"`
}

type flightFile struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
}

// serveFlightz lists flight-recorder bundles under the configured flight
// directory so dumps are discoverable without shelling into the box. A
// missing directory is an empty list, not an error — the recorder creates
// it lazily on the first dump.
func (s *Server) serveFlightz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	bundles := []flightBundle{}
	entries, err := os.ReadDir(s.cfg.FlightDir)
	if err == nil {
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			dir := filepath.Join(s.cfg.FlightDir, e.Name())
			b := flightBundle{Name: e.Name()}
			if info, err := e.Info(); err == nil {
				b.ModTime = info.ModTime().UTC()
			}
			files, err := os.ReadDir(dir)
			if err != nil {
				continue
			}
			for _, f := range files {
				info, err := f.Info()
				if err != nil || f.IsDir() {
					continue
				}
				b.Files = append(b.Files, flightFile{Name: f.Name(), Bytes: info.Size()})
				b.Bytes += info.Size()
			}
			// The trigger reason lives in the bundle's meta.json.
			if mb, err := os.ReadFile(filepath.Join(dir, "meta.json")); err == nil {
				var meta struct {
					Reason string `json:"reason"`
				}
				if json.Unmarshal(mb, &meta) == nil {
					b.Trigger = meta.Reason
				}
			}
			bundles = append(bundles, b)
		}
	}
	sort.Slice(bundles, func(i, j int) bool { return bundles[i].Name < bundles[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(bundles) //nolint:errcheck
}

// chanSink forwards bus events into a buffered channel, dropping (and
// counting) when the client cannot keep up — the bus must never block on a
// slow HTTP reader.
type chanSink struct {
	ch      chan obs.Event
	dropped *obs.Counter
}

func (c *chanSink) Event(ev obs.Event) {
	select {
	case c.ch <- ev:
	default:
		c.dropped.Inc()
	}
}

func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sse := q.Get("sse") == "1" || r.Header.Get("Accept") == "text/event-stream"
	limit := -1
	if ns := q.Get("n"); ns != "" {
		n, err := strconv.Atoi(ns)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		limit = n
	}
	flusher, _ := w.(http.Flusher)
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/jsonl")
	}
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		// Push the headers out now: a client tailing a quiet bus should
		// see the stream open immediately, not on the first event.
		flusher.Flush()
	}

	write := func(ev obs.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	sent := 0
	if q.Get("replay") == "1" {
		for _, ev := range s.ring.Events() {
			if limit >= 0 && sent >= limit {
				return
			}
			if !write(ev) {
				return
			}
			sent++
		}
	}
	if limit >= 0 && sent >= limit {
		return
	}

	sink := &chanSink{
		ch:      make(chan obs.Event, 256),
		dropped: s.cfg.Registry.Counter("debughttp.events_dropped"),
	}
	s.cfg.Bus.Attach(sink)
	defer s.cfg.Bus.Detach(sink)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sink.ch:
			if !write(ev) {
				return
			}
			sent++
			if limit >= 0 && sent >= limit {
				return
			}
		}
	}
}
