package obs

import (
	"strings"
	"testing"
	"time"
)

// syntheticTraces builds a three-process recovery with deliberately skewed
// epochs: the agent's clock runs 10ms ahead of the controller's and the
// circuit switch's 5ms behind it.
//
//	controller epoch = 0 (reference)
//	agent epoch      = controller - 10ms  => t_agent = t_controller + 10ms
//	cs epoch         = controller + 5ms   => t_cs    = t_controller - 5ms
func syntheticTraces() []ProcTrace {
	const trace = uint64(0xabc)

	sync := func(remote string, off time.Duration, t time.Duration) Event {
		ev := NewEvent(KindClockSync, t)
		ev.Detail = remote
		ev.Offset = off
		ev.RTT = 100 * time.Microsecond
		return ev
	}

	// Agent: measures the controller at offset +10ms, roots the trace.
	agentFail := NewEvent(KindFailureDeclared, 12*time.Millisecond) // 2ms controller time
	agentFail.Span = 1
	agentFail.Trace = trace
	agentFail.Detection = 3 * time.Millisecond
	agentFail.Detail = "link"
	agent := ProcTrace{Name: "agent-5", Events: []Event{
		sync("controller", 10*time.Millisecond, 11*time.Millisecond),
		agentFail,
	}}

	// Controller: measures the cs at offset +5ms, recovery span child of
	// the agent's.
	ctlDone := NewEvent(KindRecoveryComplete, 4*time.Millisecond)
	ctlDone.Span = 9
	ctlDone.Trace = trace
	ctlDone.Parent = 1
	ctlDone.ParentProc = "agent-5"
	ctlDone.Detail = "link"
	ctlDone.Detection = 3 * time.Millisecond
	ctlDone.Report = 500 * time.Microsecond
	ctlDone.Reconfig = 30 * time.Microsecond
	ctlDone.Total = ctlDone.Detection + ctlDone.Report + ctlDone.Reconfig
	ctl := ProcTrace{Name: "controller", Events: []Event{
		sync("cs-0", 5*time.Millisecond, time.Millisecond),
		ctlDone,
	}}

	// Circuit switch: reconfiguration span child of the controller's.
	csEv := NewEvent(KindCircuitReconfigured, 3500*time.Microsecond-5*time.Millisecond) // 3.5ms controller time in cs epoch
	csEv.Span = 2
	csEv.Trace = trace
	csEv.Parent = 9
	csEv.ParentProc = "controller"
	csEv.Reconfig = 30 * time.Microsecond
	cs := ProcTrace{Name: "cs-0", Events: []Event{csEv}}

	return []ProcTrace{agent, ctl, cs}
}

func TestStitchAlignsEpochsAndLinksSpans(t *testing.T) {
	procs := syntheticTraces()
	// Stamp Proc from the file-level name, as real per-process buses do.
	for i := range procs {
		for j := range procs[i].Events {
			procs[i].Events[j].Proc = procs[i].Name
		}
	}
	res, err := Stitch(procs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reference != "controller" {
		t.Fatalf("reference = %q", res.Reference)
	}
	if len(res.Unstitchable) != 0 {
		t.Fatalf("unstitchable: %v", res.Unstitchable)
	}
	if got := res.Offsets["agent-5"]; got != -10*time.Millisecond {
		t.Errorf("agent shift = %v, want -10ms", got)
	}
	if got := res.Offsets["cs-0"]; got != 5*time.Millisecond {
		t.Errorf("cs shift = %v, want +5ms", got)
	}
	if len(res.Traces) != 1 {
		t.Fatalf("traces = %d", len(res.Traces))
	}
	tr := res.Traces[0]
	if len(tr.Roots) != 1 || tr.Roots[0].Proc != "agent-5" {
		t.Fatalf("root = %+v", tr.Roots)
	}
	// Corrected starts: agent fail at 2ms, controller at 4ms, cs at -1.5ms+5ms=... cs
	// event T = -1.5ms, +5ms shift = 3.5ms controller time.
	byProc := map[string]*StitchedSpan{}
	for _, ss := range tr.Spans {
		byProc[ss.Proc] = ss
	}
	if got := byProc["agent-5"].Start; got != 2*time.Millisecond {
		t.Errorf("agent span start = %v, want 2ms", got)
	}
	if got := byProc["cs-0"].Start; got != 3500*time.Microsecond {
		t.Errorf("cs span start = %v, want 3.5ms", got)
	}
	if byProc["controller"].Parent != byProc["agent-5"] {
		t.Error("controller span not child of agent span")
	}
	if byProc["cs-0"].Parent != byProc["controller"] {
		t.Error("cs span not child of controller span")
	}
	// The merged event stream is offset-corrected and time-ordered.
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].T < res.Events[i-1].T {
			t.Fatalf("merged events out of order at %d", i)
		}
	}
	// Rendering names every hop.
	out := tr.Render()
	for _, want := range []string{"agent-5", "controller", "cs-0", "detection=3ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestStitchReportsUnstitchable(t *testing.T) {
	procs := syntheticTraces()
	// Drop the circuit switch's file: the controller's sync edge to it
	// remains (harmless), but also orphan the controller's parent by
	// dropping the agent file — parent references must be diagnosed.
	orphan := procs[1:2] // controller only
	res, err := Stitch(orphan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unstitchable) == 0 {
		t.Fatal("missing parent not diagnosed")
	}
	found := false
	for _, u := range res.Unstitchable {
		if strings.Contains(u, "missing parent agent-5/1") {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics = %v, want missing parent agent-5/1", res.Unstitchable)
	}
	// The orphaned span still renders, flagged.
	if len(res.Traces) != 1 || !res.Traces[0].Spans[0].Orphan {
		t.Error("orphan span not flagged")
	}

	// A process with no clock-sync path is reported too.
	disconnected := []ProcTrace{procs[0], {Name: "island", Events: []Event{NewEvent(KindLog, 0)}}}
	res, err = Stitch(disconnected)
	if err != nil {
		t.Fatal(err)
	}
	foundIsland := false
	for _, u := range res.Unstitchable {
		if strings.Contains(u, "island") && strings.Contains(u, "no clock-sync path") {
			foundIsland = true
		}
	}
	if !foundIsland {
		t.Errorf("diagnostics = %v, want island unaligned", res.Unstitchable)
	}
}
