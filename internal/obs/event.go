// Package obs is the control plane's observability subsystem: a typed event
// bus with pluggable sinks (JSONL, human-readable log, in-memory ring), spans
// that group events into per-recovery timelines with the Section 5.3 phase
// breakdown (detection / report / reconfiguration / total), and an atomic
// counter/gauge registry with a text ("varz") snapshot.
//
// The virtual-time controller, the TCP control plane, the link detectors,
// and the physical network all emit through one Bus. Emission is
// zero-allocation-cheap when no sink is attached: every emit site guards
// event construction with Bus.Enabled(), which is a single atomic load.
package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Kind enumerates the control-plane event taxonomy.
type Kind uint8

const (
	// KindProbeMissed is one missed keep-alive/probe check (detect.Monitor).
	KindProbeMissed Kind = iota
	// KindFailureDeclared is a node or link declared failed (threshold
	// crossed); Check names the first failing probe check when known.
	KindFailureDeclared
	// KindBackupAssigned is a backup switch chosen for a failed switch.
	KindBackupAssigned
	// KindCircuitReconfigured is one switch-replacement circuit
	// reconfiguration (sbnet.ReplaceWith); Count is the number of circuit
	// switches touched, Reconfig the parallel reconfiguration latency.
	KindCircuitReconfigured
	// KindTablesPreloaded is a failure-group table pushed to a switch
	// agent (Section 4.3 hot-standby provisioning); Count is bytes.
	KindTablesPreloaded
	// KindRecoveryComplete closes a recovery span; it carries the full
	// phase breakdown (Detection, Report, Reconfig, Total).
	KindRecoveryComplete
	// KindDiagnosisStarted opens an offline-diagnosis round; Count is the
	// number of queued link-failure suspects.
	KindDiagnosisStarted
	// KindDiagnosisFinished closes a diagnosis round; Count is the number
	// of exonerated switches.
	KindDiagnosisFinished
	// KindCircuitSwitchHalted is the Section 5.1 halt: a circuit switch
	// exceeded the link-failure report threshold and recovery is suspended
	// for human intervention.
	KindCircuitSwitchHalted
	// KindLog is a free-form diagnostic line (the ctlnet server routes its
	// Logf output here so sinks serialize it).
	KindLog
	// KindSweepShardDone is one completed shard of an experiment sweep
	// (internal/sweep); Count is the running number of completed shards,
	// Detail the sweep name, and Shard the 1-based shard tag.
	KindSweepShardDone
	// KindClockSync is one clock-offset measurement between two processes:
	// the emitting (measuring) process probed the remote process named in
	// Detail over its control connection. Offset maps the remote epoch into
	// the local one (t_local ≈ t_remote + Offset), RTT is the probe round
	// trip. Stitchers (sbtap -stitch) use these to align per-process trace
	// files onto one timeline.
	KindClockSync
	// KindFlightDump is a flight-recorder snapshot written to disk; Detail
	// is the trigger reason and the bundle directory.
	KindFlightDump
	// KindLeaderElected marks a ctlplane replica winning an election; Switch
	// carries the replica ID and Count the term.
	KindLeaderElected
	// KindLeaderLost marks a ctlplane replica stepping down from leadership
	// (higher term observed, or quorum unreachable); Switch carries the
	// replica ID and Count the term it stepped down in.
	KindLeaderLost
	// KindFailover marks a ctlnet agent redirecting an in-flight request to
	// a different replica after its leader died or answered not-leader;
	// Detail names the new target, Count the retry attempt.
	KindFailover
	numKinds
)

var kindNames = [numKinds]string{
	"probe-missed",
	"failure-declared",
	"backup-assigned",
	"circuit-reconfigured",
	"tables-preloaded",
	"recovery-complete",
	"diagnosis-started",
	"diagnosis-finished",
	"circuit-switch-halted",
	"log",
	"sweep-shard-done",
	"clock-sync",
	"flight-dump",
	"leader-elected",
	"leader-lost",
	"failover",
}

// String names the kind ("probe-missed", "recovery-complete", ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// None is the sentinel for "no switch / no port" in event fields.
const None int32 = -1

// Event is one control-plane event. Fields not meaningful for a kind are
// left at their zero value (None for switch/port fields — use NewEvent).
// Timestamps are durations since an epoch: the virtual clock's origin for
// the simulated controller, or server start for the wall-clock control
// plane (Wall reports which).
type Event struct {
	Kind Kind
	// Seq is a bus-assigned monotonically increasing sequence number; it
	// orders events from emitters that have no clock of their own.
	Seq uint64
	// T is the event timestamp since the epoch; negative means unknown
	// (the emitter has no clock, e.g. sbnet circuit reconfigurations).
	T    time.Duration
	Wall bool
	// Span groups the events of one recovery; 0 means no span.
	Span uint64
	// Shard is the 1-based sweep-shard tag (sweep.Shard.ID()); 0 means the
	// event was not emitted from a sweep worker. Shards run private buses
	// whose Seq streams interleave in a shared trace; the tag lets readers
	// (sbtap) de-interleave them.
	Shard uint64

	// Trace groups the spans of one causal recovery across processes: the
	// switch agent that reported, the controller that recovered, and the
	// circuit-switch agents that reconfigured all stamp the same trace ID
	// (carried in the ctlnet wire frames). 0 means untraced.
	Trace uint64
	// Parent is the span this span descends from (0 for a trace root).
	// Span IDs are per-bus counters, so cross-process parents are
	// qualified by ParentProc.
	Parent uint64
	// ParentProc names the process owning the Parent span; empty means the
	// parent span lives on the same bus (same process).
	ParentProc string
	// Proc names the emitting process ("controller", "agent-12", "cs-0");
	// stamped by the bus (Bus.SetProc) so stitched multi-process traces can
	// tell span ID spaces apart. Empty on single-process traces.
	Proc string

	Switch   int32 // subject switch ID (None when n/a)
	Peer     int32 // link peer switch ID
	Backup   int32 // chosen backup switch ID
	Port     int32
	PeerPort int32

	// Count is a kind-specific cardinality: circuit switches touched,
	// table bytes pushed, diagnosis suspects, exonerations.
	Count int32
	// Check names the first failing probe check (detect.CheckKind).
	Check string
	// Detail is free-form context: recovery kind ("node"/"link"), halt
	// reason, log line.
	Detail string

	// Phase breakdown, set on KindRecoveryComplete (and Detection on
	// KindFailureDeclared, Reconfig on KindCircuitReconfigured).
	Detection time.Duration
	Report    time.Duration
	Reconfig  time.Duration
	Total     time.Duration

	// Clock-sync payload (KindClockSync): Offset maps the remote epoch
	// (process named in Detail) into the emitter's epoch, RTT is the probe
	// round trip bounding the estimate's error.
	Offset time.Duration
	RTT    time.Duration
}

// NewEvent returns an Event of the given kind at time t with all switch and
// port fields set to None.
func NewEvent(kind Kind, t time.Duration) Event {
	return Event{Kind: kind, T: t, Switch: None, Peer: None, Backup: None, Port: None, PeerPort: None}
}

// String renders the event human-readably, one line.
func (e Event) String() string {
	var b strings.Builder
	if e.T >= 0 {
		fmt.Fprintf(&b, "[%12v] ", e.T)
	} else {
		b.WriteString("[           -] ")
	}
	b.WriteString(e.Kind.String())
	if e.Proc != "" {
		fmt.Fprintf(&b, " proc=%s", e.Proc)
	}
	if e.Span != 0 {
		fmt.Fprintf(&b, " span=%d", e.Span)
	}
	if e.Trace != 0 {
		fmt.Fprintf(&b, " trace=%x", e.Trace)
	}
	if e.Parent != 0 {
		if e.ParentProc != "" {
			fmt.Fprintf(&b, " parent=%s/%d", e.ParentProc, e.Parent)
		} else {
			fmt.Fprintf(&b, " parent=%d", e.Parent)
		}
	}
	if e.Shard != 0 {
		fmt.Fprintf(&b, " shard=%d", e.Shard)
	}
	if e.Switch != None {
		fmt.Fprintf(&b, " switch=%d", e.Switch)
	}
	if e.Port != None {
		fmt.Fprintf(&b, " port=%d", e.Port)
	}
	if e.Peer != None {
		fmt.Fprintf(&b, " peer=%d", e.Peer)
	}
	if e.PeerPort != None {
		fmt.Fprintf(&b, " peer_port=%d", e.PeerPort)
	}
	if e.Backup != None {
		fmt.Fprintf(&b, " backup=%d", e.Backup)
	}
	if e.Count != 0 {
		fmt.Fprintf(&b, " count=%d", e.Count)
	}
	if e.Check != "" {
		fmt.Fprintf(&b, " check=%s", e.Check)
	}
	if e.Kind == KindRecoveryComplete {
		fmt.Fprintf(&b, " detection=%v report=%v reconfig=%v total=%v",
			e.Detection, e.Report, e.Reconfig, e.Total)
	} else {
		if e.Detection != 0 {
			fmt.Fprintf(&b, " detection=%v", e.Detection)
		}
		if e.Reconfig != 0 {
			fmt.Fprintf(&b, " reconfig=%v", e.Reconfig)
		}
	}
	if e.Kind == KindClockSync {
		fmt.Fprintf(&b, " offset=%v rtt=%v", e.Offset, e.RTT)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// eventJSON is the stable JSONL wire form of an Event.
type eventJSON struct {
	Kind       string `json:"kind"`
	Seq        uint64 `json:"seq,omitempty"`
	TNs        int64  `json:"t_ns"`
	Wall       bool   `json:"wall,omitempty"`
	Span       uint64 `json:"span,omitempty"`
	Shard      uint64 `json:"shard,omitempty"`
	Trace      uint64 `json:"trace,omitempty"`
	Parent     uint64 `json:"parent,omitempty"`
	ParentProc string `json:"parent_proc,omitempty"`
	Proc       string `json:"proc,omitempty"`
	Switch     int32  `json:"switch"`
	Peer       int32  `json:"peer"`
	Backup     int32  `json:"backup"`
	Port       int32  `json:"port"`
	PeerPort   int32  `json:"peer_port"`
	Count      int32  `json:"count,omitempty"`
	Check      string `json:"check,omitempty"`
	Detail     string `json:"detail,omitempty"`
	DetNs      int64  `json:"detection_ns,omitempty"`
	RepNs      int64  `json:"report_ns,omitempty"`
	RecNs      int64  `json:"reconfig_ns,omitempty"`
	TotNs      int64  `json:"total_ns,omitempty"`
	OffNs      int64  `json:"offset_ns,omitempty"`
	RTTNs      int64  `json:"rtt_ns,omitempty"`
}

// MarshalJSON renders the event in the JSONL wire form.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Kind: e.Kind.String(), Seq: e.Seq, TNs: int64(e.T), Wall: e.Wall, Span: e.Span, Shard: e.Shard,
		Trace: e.Trace, Parent: e.Parent, ParentProc: e.ParentProc, Proc: e.Proc,
		Switch: e.Switch, Peer: e.Peer, Backup: e.Backup, Port: e.Port, PeerPort: e.PeerPort,
		Count: e.Count, Check: e.Check, Detail: e.Detail,
		DetNs: int64(e.Detection), RepNs: int64(e.Report), RecNs: int64(e.Reconfig), TotNs: int64(e.Total),
		OffNs: int64(e.Offset), RTTNs: int64(e.RTT),
	})
}

// UnmarshalJSON parses the JSONL wire form.
func (e *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	kind, err := ParseKind(j.Kind)
	if err != nil {
		return err
	}
	*e = Event{
		Kind: kind, Seq: j.Seq, T: time.Duration(j.TNs), Wall: j.Wall, Span: j.Span, Shard: j.Shard,
		Trace: j.Trace, Parent: j.Parent, ParentProc: j.ParentProc, Proc: j.Proc,
		Switch: j.Switch, Peer: j.Peer, Backup: j.Backup, Port: j.Port, PeerPort: j.PeerPort,
		Count: j.Count, Check: j.Check, Detail: j.Detail,
		Detection: time.Duration(j.DetNs), Report: time.Duration(j.RepNs),
		Reconfig: time.Duration(j.RecNs), Total: time.Duration(j.TotNs),
		Offset: time.Duration(j.OffNs), RTT: time.Duration(j.RTTNs),
	}
	return nil
}
