package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
)

// Histogram is a lock-free log-linear (HDR-style) histogram of non-negative
// int64 values. Buckets are laid out as histSubCount linear sub-buckets per
// power of two, so the relative quantile error is bounded by
// 1/histSubCount (6.25%) while the value range covers all of int64.
//
// Record is a few atomic adds — safe from any goroutine, cheap enough for
// data-plane sampling — and all methods are nil-safe, so components can hold
// an optional *Histogram (from Registry.Histogram) without guards, exactly
// like Counter and Gauge.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
	min   atomic.Int64 // stored as -min so zero value means "unset"

	buckets [histBuckets]atomic.Uint64
}

const (
	// histSubBits sets the sub-bucket resolution: 2^histSubBits linear
	// sub-buckets per octave.
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	// histBuckets covers [0, 2^63): histSubCount unit buckets for values
	// below histSubCount, then histSubCount sub-buckets for each of the
	// remaining 63-histSubBits octaves.
	histBuckets = histSubCount + (63-histSubBits)*histSubCount
)

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	// exp is the MSB position (>= histSubBits); the sub-bucket is the
	// histSubBits bits below it.
	exp := 63 - bits.LeadingZeros64(uint64(v))
	sub := int(v>>(uint(exp-histSubBits))) - histSubCount
	return histSubCount + (exp-histSubBits)*histSubCount + sub
}

// histBucketLow returns the smallest value mapping to bucket i.
func histBucketLow(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	b := (i - histSubCount) / histSubCount
	sub := (i - histSubCount) % histSubCount
	return int64(histSubCount+sub) << uint(b)
}

// histBucketHigh returns the largest value mapping to bucket i.
func histBucketHigh(i int) int64 {
	if i+1 >= histBuckets {
		return math.MaxInt64
	}
	return histBucketLow(i+1) - 1
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load() // -min, 0 when unset
		if (cur != 0 && -cur <= v) || h.min.CompareAndSwap(cur, -v-1) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Merge adds every observation of o into h (o is read atomically but not
// snapshotted; merging a live histogram gives a consistent-enough view).
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if v := o.max.Load(); v > 0 || o.count.Load() > 0 {
		for {
			cur := h.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
	}
	if om := o.min.Load(); om != 0 {
		v := -om - 1
		for {
			cur := h.min.Load()
			if (cur != 0 && -cur-1 <= v) || h.min.CompareAndSwap(cur, om) {
				break
			}
		}
	}
}

// MergeSnapshot folds a point-in-time snapshot — the JSON form another
// process exported over /varz or a flight-recorder bundle — into h, so
// per-process or per-shard distributions combine into one. Bucket
// boundaries are universal (histIndex is pure), so merging snapshots is
// bucket-exact: merge-then-snapshot equals having recorded every
// observation into a single histogram, up to intra-bucket placement (which
// snapshots don't expose; count, sum, min, max, and every quantile agree).
func (h *Histogram) MergeSnapshot(s HistogramSnapshot) {
	if h == nil || s.Count == 0 {
		return
	}
	for _, bk := range s.Buckets {
		if bk.Count == 0 {
			continue
		}
		low := bk.Low
		if low < 0 {
			low = 0
		}
		h.buckets[histIndex(low)].Add(bk.Count)
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for {
		cur := h.max.Load()
		if s.Max <= cur || h.max.CompareAndSwap(cur, s.Max) {
			break
		}
	}
	for {
		cur := h.min.Load() // -min-1, 0 when unset
		if (cur != 0 && -cur-1 <= s.Min) || h.min.CompareAndSwap(cur, -s.Min-1) {
			break
		}
	}
}

// Quantile returns (approximately, within one bucket) the q-quantile of the
// recorded values, q in [0, 1]. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		n := int64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		seen += n
		if seen >= rank {
			// Clamp the bucket answer into the observed range so p0/p100
			// are exact.
			v := histBucketHigh(i)
			if mx := h.max.Load(); v > mx {
				v = mx
			}
			if mn := h.Min(); v < mn {
				v = mn
			}
			return v
		}
	}
	return h.max.Load()
}

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	m := h.min.Load()
	if m == 0 {
		return 0
	}
	return -m - 1
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// HistogramBucket is one non-empty bucket of a snapshot: Count observations
// in [Low, High].
type HistogramBucket struct {
	Low   int64  `json:"low"`
	High  int64  `json:"high"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, the JSON shape
// /varz serves.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Mean    float64           `json:"mean"`
	P50     int64             `json:"p50"`
	P90     int64             `json:"p90"`
	P99     int64             `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. Buckets holds only the
// non-empty buckets, in increasing value order.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{
				Low: histBucketLow(i), High: histBucketHigh(i), Count: n,
			})
		}
	}
	return s
}

// Render draws the snapshot as an ASCII bar chart with one row per non-empty
// bucket plus a quantile footer — the sbtap -hist view.
func (s HistogramSnapshot) Render(title string, width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (n=%d, mean=%.1f, min=%d, max=%d)\n", title, s.Count, s.Mean, s.Min, s.Max)
	if s.Count == 0 {
		return b.String()
	}
	var peak uint64
	for _, bk := range s.Buckets {
		if bk.Count > peak {
			peak = bk.Count
		}
	}
	for _, bk := range s.Buckets {
		bar := int(float64(width) * float64(bk.Count) / float64(peak))
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  [%12d, %12d]  %-*s %d\n", bk.Low, bk.High, width, strings.Repeat("#", bar), bk.Count)
	}
	fmt.Fprintf(&b, "  p50=%d p90=%d p99=%d\n", s.P50, s.P90, s.P99)
	return b.String()
}
