package obs

import (
	"strings"
	"testing"
	"time"
)

// emitRecovery pushes a minimal recovery span onto the bus.
func emitRecovery(b *Bus, kind string, det, rep, rec time.Duration) {
	span := b.BeginSpan()
	fd := NewEvent(KindFailureDeclared, 0)
	fd.Span = span
	fd.Detection = det
	b.Emit(fd)
	cr := NewEvent(KindCircuitReconfigured, -1)
	cr.Span = span
	cr.Reconfig = rec
	b.Emit(cr)
	done := NewEvent(KindRecoveryComplete, det+rep+rec)
	done.Span = span
	done.Detail = kind
	done.Detection, done.Report, done.Reconfig = det, rep, rec
	done.Total = det + rep + rec
	b.Emit(done)
	b.EndSpan()
}

func TestSpanCollectorGroupsAndComputesBreakdown(t *testing.T) {
	b := &Bus{}
	c := NewSpanCollector()
	b.Attach(c)

	emitRecovery(b, "node", 3*time.Millisecond, 200*time.Microsecond, 70*time.Nanosecond)
	emitRecovery(b, "link", time.Millisecond, 200*time.Microsecond, 40*time.Microsecond)

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	for _, sp := range spans {
		if !sp.Complete {
			t.Fatalf("span %d incomplete", sp.ID)
		}
		if len(sp.Events) != 3 {
			t.Fatalf("span %d has %d events, want 3", sp.ID, len(sp.Events))
		}
		if sp.PhaseSum() != sp.Total {
			t.Fatalf("span %d phases sum to %v, total %v", sp.ID, sp.PhaseSum(), sp.Total)
		}
	}
	if spans[0].Kind != "node" || spans[1].Kind != "link" {
		t.Fatalf("span kinds = %q, %q", spans[0].Kind, spans[1].Kind)
	}

	all := c.Breakdown("")
	if all.N() != 2 {
		t.Fatalf("breakdown N = %d, want 2", all.N())
	}
	nodes := c.Breakdown("node")
	if nodes.N() != 1 {
		t.Fatalf("node breakdown N = %d, want 1", nodes.N())
	}
	sums := nodes.Summaries()
	if got, want := sums["detection"].Mean, 3000.0; got != want {
		t.Fatalf("node detection mean = %v µs, want %v", got, want)
	}
	if got, want := sums["total"].Mean, 3200.07; got != want {
		t.Fatalf("node total mean = %v µs, want %v", got, want)
	}

	tbl := all.Table("phase breakdown").String()
	for _, phase := range PhaseNames {
		if !strings.Contains(tbl, phase) {
			t.Fatalf("breakdown table missing phase %q:\n%s", phase, tbl)
		}
	}
}

func TestSpanCollectorIgnoresSpanlessEvents(t *testing.T) {
	c := NewSpanCollector()
	c.Event(NewEvent(KindLog, 0)) // Span == 0
	if len(c.Spans()) != 0 {
		t.Fatal("spanless event created a span")
	}
}

func TestAddEventsReplaysDecodedStream(t *testing.T) {
	b := &Bus{}
	ring := NewRing(64)
	b.Attach(ring)
	emitRecovery(b, "node", time.Millisecond, 200*time.Microsecond, 70*time.Nanosecond)

	c := NewSpanCollector()
	c.AddEvents(ring.Events())
	spans := c.Spans()
	if len(spans) != 1 || !spans[0].Complete {
		t.Fatalf("replay produced %d spans (complete=%v)", len(spans), len(spans) == 1 && spans[0].Complete)
	}
}

func TestKindCounts(t *testing.T) {
	evs := []Event{
		NewEvent(KindProbeMissed, 0),
		NewEvent(KindProbeMissed, 0),
		NewEvent(KindRecoveryComplete, 0),
	}
	tbl := KindCounts(evs).String()
	if !strings.Contains(tbl, "probe-missed") || !strings.Contains(tbl, "recovery-complete") {
		t.Fatalf("kind counts table missing kinds:\n%s", tbl)
	}
}
