package ctlplane

import (
	"bytes"
	"fmt"
	"testing"
)

// fuzzRun drives a 5-replica cluster through `steps` randomized operations
// (ticks, selective delivery, message drops, link cuts, heals) from a seeded
// PRNG, checking two safety properties after every step:
//
//   - Election safety: at most one replica is ever leader in a given term.
//   - Log safety: every pair of applied logs is prefix-consistent.
//
// Fully deterministic for a given (seed, steps): same ops, same interleaving,
// same verdict — which is what makes the shrink loop meaningful.
func fuzzRun(seed uint64, steps int) error {
	ids := []int{0, 1, 2, 3, 4}
	c := newCluster(ids, seed)

	rng := seed*0x9e3779b97f4a7c15 + 1
	next := func(n uint64) uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return (z ^ (z >> 31)) % n
	}

	// leaderOfTerm records the unique leader observed in each term.
	leaderOfTerm := make(map[uint64]int)
	proposed := 0

	check := func(step int) error {
		for id, r := range c.nodes {
			if r.State() != Leader {
				continue
			}
			term := r.Term()
			if prev, ok := leaderOfTerm[term]; ok && prev != id {
				return fmt.Errorf("step %d: two leaders in term %d: replica %d and replica %d", step, term, prev, id)
			}
			leaderOfTerm[term] = id
		}
		// Applied logs must be prefix-consistent across replicas.
		for a, la := range c.applied {
			for b, lb := range c.applied {
				if a >= b {
					continue
				}
				n := len(la)
				if len(lb) < n {
					n = len(lb)
				}
				for i := 0; i < n; i++ {
					if la[i].Index != lb[i].Index || la[i].Term != lb[i].Term || !bytes.Equal(la[i].Data, lb[i].Data) {
						return fmt.Errorf("step %d: applied logs diverge at position %d (replica %d vs %d)", step, i, a, b)
					}
				}
			}
		}
		return nil
	}

	for step := 0; step < steps; step++ {
		switch next(100) {
		case 0, 1, 2, 3: // cut one directed link
			a := ids[next(uint64(len(ids)))]
			b := ids[next(uint64(len(ids)))]
			if a != b {
				c.cutLink(a, b)
			}
		case 4, 5: // heal everything
			c.heal()
		case 6, 7, 8: // drop one random in-flight message
			if len(c.inflight) > 0 {
				i := int(next(uint64(len(c.inflight))))
				c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
			}
		case 9, 10: // leader proposes
			if l := c.leader(); l != nil {
				proposed++
				l.Propose([]byte(fmt.Sprintf("p-%d", proposed)))
				c.pump()
			}
		default:
			if next(2) == 0 {
				// Tick one random node and collect its output.
				c.nodes[ids[next(uint64(len(ids)))]].Tick()
				c.pump()
			} else if len(c.inflight) > 0 {
				// Deliver one random in-flight message (respecting cuts).
				i := int(next(uint64(len(c.inflight))))
				m := c.inflight[i]
				c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
				if !c.cut[m.From][m.To] {
					c.nodes[m.To].Step(m)
					c.pump()
				}
			}
		}
		if err := check(step); err != nil {
			return err
		}
	}
	return nil
}

// TestElectionSafetyUnderPartitionFuzz is the satellite property test: no
// seed may ever produce two leaders in one term or divergent applied logs.
// On failure it shrinks deterministically — binary search for the shortest
// failing prefix of the same seeded op stream — so the reproducer printed is
// minimal.
func TestElectionSafetyUnderPartitionFuzz(t *testing.T) {
	seeds := 30
	steps := 2000
	if testing.Short() {
		seeds = 8
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		if err := fuzzRun(seed, steps); err != nil {
			// Deterministic shrink: smallest step count that still fails.
			lo, hi := 1, steps
			for lo < hi {
				mid := (lo + hi) / 2
				if fuzzRun(seed, mid) != nil {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			minErr := fuzzRun(seed, lo)
			t.Fatalf("election safety violated (seed=%d): %v\nminimal reproducer: fuzzRun(seed=%d, steps=%d): %v",
				seed, err, seed, lo, minErr)
		}
	}
}

// TestFuzzRunIsDeterministic pins the harness property the shrinker relies
// on: identical (seed, steps) must take an identical path. We compare the
// full cluster fingerprint (terms, states, applied logs) across two runs.
func TestFuzzRunIsDeterministic(t *testing.T) {
	fingerprint := func(seed uint64) string {
		ids := []int{0, 1, 2, 3, 4}
		_ = ids
		var buf bytes.Buffer
		c := newCluster([]int{0, 1, 2, 3, 4}, seed)
		for i := 0; i < 50; i++ {
			c.tickAll()
		}
		for id := 0; id < 5; id++ {
			r := c.nodes[id]
			fmt.Fprintf(&buf, "%d:%v/%d/%d;", id, r.State(), r.Term(), r.Commit())
		}
		return buf.String()
	}
	a, b := fingerprint(11), fingerprint(11)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if c := fingerprint(12); c == a {
		t.Fatalf("different seeds produced identical fingerprints: %s", a)
	}
}
