package ctlplane

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxConsensusFrame bounds one consensus wire frame. Snapshots ride inside
// frames, so this is generous; the replicated commands themselves are tiny.
const maxConsensusFrame = 16 << 20

// TCPTransport is a loopback/LAN mesh transport for a replica: it listens
// for consensus frames from peers and lazily dials outbound connections.
// Sends are best-effort — a peer that is down costs one failed dial and the
// message is dropped (Raft retries by tick).
type TCPTransport struct {
	self  int
	addrs map[int]string // peer ID → address
	node  func(m Message)

	ln       net.Listener
	mu       sync.Mutex
	conn     map[int]net.Conn
	accepted map[net.Conn]struct{}

	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewTCPTransport starts a transport for replica self, listening on
// addrs[self] and delivering inbound messages to deliver. addrs maps every
// replica ID to its consensus address.
func NewTCPTransport(self int, addrs map[int]string, deliver func(m Message)) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("ctlplane: transport listen: %w", err)
	}
	t := &TCPTransport{
		self:     self,
		addrs:    addrs,
		node:     deliver,
		ln:       ln,
		conn:     make(map[int]net.Conn),
		accepted: make(map[net.Conn]struct{}),
		quit:     make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// SetPeers replaces the peer address map. Used when replicas bind ":0"
// listeners first and exchange bound addresses afterwards.
func (t *TCPTransport) SetPeers(addrs map[int]string) {
	t.mu.Lock()
	t.addrs = addrs
	t.mu.Unlock()
}

// Send implements Transport.
func (t *TCPTransport) Send(m Message) {
	buf, err := json.Marshal(m)
	if err != nil {
		return
	}
	frame := make([]byte, 4+len(buf))
	binary.BigEndian.PutUint32(frame, uint32(len(buf)))
	copy(frame[4:], buf)

	t.mu.Lock()
	c := t.conn[m.To]
	if c == nil {
		addr, ok := t.addrs[m.To]
		if !ok {
			t.mu.Unlock()
			return
		}
		c, err = net.Dial("tcp", addr)
		if err != nil {
			t.mu.Unlock()
			return
		}
		t.conn[m.To] = c
	}
	_, err = c.Write(frame)
	if err != nil {
		c.Close()
		delete(t.conn, m.To)
	}
	t.mu.Unlock()
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		t.accepted[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.accepted, c)
		t.mu.Unlock()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxConsensusFrame {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		var m Message
		if err := json.Unmarshal(buf, &m); err != nil {
			return
		}
		select {
		case <-t.quit:
			return
		default:
		}
		t.node(m)
	}
}

// Close shuts the transport down: the listener, every connection, and the
// read loops. Safe to call more than once.
func (t *TCPTransport) Close() {
	t.closeOnce.Do(func() { close(t.quit) })
	t.ln.Close()
	t.mu.Lock()
	for id, c := range t.conn {
		c.Close()
		delete(t.conn, id)
	}
	for c := range t.accepted {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
}
