package ctlplane

import (
	"encoding/json"
	"fmt"
)

// CmdKind enumerates the replicated controller state mutations.
type CmdKind uint8

const (
	// CmdRecoverNode replaces a dead switch with a backup.
	CmdRecoverNode CmdKind = 1
	// CmdRecoverLink replaces both endpoints of a failed link.
	CmdRecoverLink CmdKind = 2
	// CmdBatch folds several independent commands into one log entry, so a
	// failure storm commits N recoveries in one consensus round instead of
	// N. Sub holds the encoded sub-commands; the apply hook runs them in
	// order, which keeps the batch exactly as deterministic as the same
	// commands appended individually — order is defined by the log entry,
	// not by which proposer won a race.
	CmdBatch CmdKind = 3
)

// Command is one controller state mutation carried through the replicated
// log. Every replica applies the identical command to its own controller +
// network copy, so detection math inputs (At, LastSeen, Detection) ride in
// the command rather than being re-derived from replica-local clocks — the
// apply is deterministic by construction.
//
// ctlplane deliberately knows nothing about the controller: fields are plain
// integers (switch IDs, ports, nanosecond timestamps) and the ctlnet layer
// owns their semantics.
type Command struct {
	Kind CmdKind `json:"kind"`

	// CmdRecoverNode: the dead switch and its last heartbeat (ns on the
	// leader's epoch) for the detection-latency breakdown.
	Switch     int32 `json:"switch,omitempty"`
	LastSeenNS int64 `json:"last_seen_ns,omitempty"`

	// CmdRecoverLink: the two reported endpoints.
	ASwitch int32 `json:"a_switch,omitempty"`
	APort   int32 `json:"a_port,omitempty"`
	BSwitch int32 `json:"b_switch,omitempty"`
	BPort   int32 `json:"b_port,omitempty"`

	// AtNS is when the leader acted; DetectionNS the measured detection
	// latency (link reports carry the agent's own measurement).
	AtNS        int64 `json:"at_ns"`
	DetectionNS int64 `json:"detection_ns,omitempty"`

	// Originating trace context: the reporting agent's span, so every
	// replica's recovery span joins the agent's trace.
	Trace uint64 `json:"trace,omitempty"`
	Span  uint64 `json:"span,omitempty"`
	Proc  string `json:"proc,omitempty"`

	// CmdBatch: the encoded sub-commands, applied in order.
	Sub [][]byte `json:"sub,omitempty"`
}

// BatchResult is the per-sub-command outcome of applying a CmdBatch entry.
// The apply hook returns []BatchResult (one per Sub, in order) and the batch
// proposer fans the results back to the callers whose proposals were folded.
type BatchResult struct {
	Val any
	Err error
}

// EncodeBatch folds already-encoded commands into one CmdBatch log entry.
func EncodeBatch(subs [][]byte) []byte {
	return Command{Kind: CmdBatch, Sub: subs}.Encode()
}

// Encode serializes the command for the log.
func (c Command) Encode() []byte {
	b, err := json.Marshal(c)
	if err != nil {
		// Command has no unmarshalable fields; this cannot happen.
		panic(fmt.Sprintf("ctlplane: encode command: %v", err))
	}
	return b
}

// DecodeCommand parses a log entry's payload.
func DecodeCommand(data []byte) (Command, error) {
	var c Command
	if err := json.Unmarshal(data, &c); err != nil {
		return Command{}, fmt.Errorf("ctlplane: decode command: %w", err)
	}
	if c.Kind != CmdRecoverNode && c.Kind != CmdRecoverLink && c.Kind != CmdBatch {
		return Command{}, fmt.Errorf("ctlplane: unknown command kind %d", c.Kind)
	}
	return c, nil
}

// ReplayLog is the replay-based snapshot format: the ordered list of every
// command applied so far. Restoring replays the tail past the restorer's
// own applied prefix — valid because the log-prefix property guarantees the
// prefixes agree and the controller state machine is deterministic.
type ReplayLog struct {
	Commands [][]byte `json:"commands"`
}

// EncodeReplayLog serializes a replay snapshot.
func EncodeReplayLog(cmds [][]byte) []byte {
	b, err := json.Marshal(ReplayLog{Commands: cmds})
	if err != nil {
		panic(fmt.Sprintf("ctlplane: encode replay log: %v", err))
	}
	return b
}

// DecodeReplayLog parses a replay snapshot.
func DecodeReplayLog(data []byte) (ReplayLog, error) {
	var r ReplayLog
	if err := json.Unmarshal(data, &r); err != nil {
		return ReplayLog{}, fmt.Errorf("ctlplane: decode replay log: %w", err)
	}
	return r, nil
}
