package ctlplane

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// liveCluster wires N Nodes over loopback TCP transports, each applying
// committed commands into a per-replica ordered list.
type liveCluster struct {
	nodes      []*Node
	transports []*TCPTransport

	mu      sync.Mutex
	applied [][]string
}

func newLiveCluster(t *testing.T, n int) *liveCluster {
	t.Helper()
	lc := &liveCluster{applied: make([][]string, n)}
	peers := make([]int, n)
	addrs := make(map[int]string, n)
	// Bind listeners first so every transport knows every address.
	transports := make([]*TCPTransport, n)
	var inboxMu sync.Mutex
	inboxes := make([]func(Message), n)
	deliver := func(m Message) {
		inboxMu.Lock()
		f := inboxes[m.To]
		inboxMu.Unlock()
		if f != nil {
			f(m)
		}
	}
	for i := 0; i < n; i++ {
		peers[i] = i
		i := i
		addrs[i] = "127.0.0.1:0"
		tr, err := NewTCPTransport(i, map[int]string{i: "127.0.0.1:0"}, deliver)
		if err != nil {
			t.Fatalf("transport %d: %v", i, err)
		}
		transports[i] = tr
		addrs[i] = tr.Addr()
	}
	// Transports were built with only their own address; now that every
	// listener is bound, hand each the full peer map.
	for i := 0; i < n; i++ {
		transports[i].SetPeers(addrs)
	}
	lc.transports = transports
	for i := 0; i < n; i++ {
		i := i
		node := NewNode(NodeConfig{
			Raft:      RaftConfig{ID: i, Peers: peers, Seed: uint64(i) + 101},
			TickEvery: 5 * time.Millisecond,
			Transport: transports[i],
			Apply: func(data []byte) (any, error) {
				lc.mu.Lock()
				lc.applied[i] = append(lc.applied[i], string(data))
				n := len(lc.applied[i])
				lc.mu.Unlock()
				return n, nil
			},
			Snapshot: func() []byte {
				lc.mu.Lock()
				defer lc.mu.Unlock()
				cmds := make([][]byte, len(lc.applied[i]))
				for j, s := range lc.applied[i] {
					cmds[j] = []byte(s)
				}
				return EncodeReplayLog(cmds)
			},
			Restore: func(data []byte) error {
				rl, err := DecodeReplayLog(data)
				if err != nil {
					return err
				}
				lc.mu.Lock()
				defer lc.mu.Unlock()
				for j := len(lc.applied[i]); j < len(rl.Commands); j++ {
					lc.applied[i] = append(lc.applied[i], string(rl.Commands[j]))
				}
				return nil
			},
		})
		lc.nodes = append(lc.nodes, node)
		inboxMu.Lock()
		inboxes[i] = node.Deliver
		inboxMu.Unlock()
	}
	t.Cleanup(func() {
		for _, n := range lc.nodes {
			n.Stop()
		}
		for _, tr := range lc.transports {
			tr.Close()
		}
	})
	return lc
}

func (lc *liveCluster) waitLeader(t *testing.T, exclude int, timeout time.Duration) *Node {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, n := range lc.nodes {
			if n.ID() != exclude && n.IsLeader() {
				return n
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no leader within %v", timeout)
	return nil
}

func (lc *liveCluster) appliedOn(id int) []string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]string(nil), lc.applied[id]...)
}

func TestLiveClusterReplicatesProposals(t *testing.T) {
	lc := newLiveCluster(t, 3)
	ld := lc.waitLeader(t, -1, 5*time.Second)
	for i := 0; i < 4; i++ {
		res, err := ld.Propose([]byte(fmt.Sprintf("op-%d", i)), 2*time.Second)
		if err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		if got := res.(int); got != i+1 {
			t.Fatalf("propose %d apply result = %d, want %d", i, got, i+1)
		}
	}
	// Followers converge within a few heartbeats.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for id := range lc.nodes {
			if len(lc.appliedOn(id)) != 4 {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for id := range lc.nodes {
		got := lc.appliedOn(id)
		if len(got) != 4 || got[0] != "op-0" || got[3] != "op-3" {
			t.Fatalf("replica %d applied %v", id, got)
		}
	}
}

func TestLiveClusterFailsOverOnLeaderDeath(t *testing.T) {
	lc := newLiveCluster(t, 3)
	ld := lc.waitLeader(t, -1, 5*time.Second)
	if _, err := ld.Propose([]byte("before"), 2*time.Second); err != nil {
		t.Fatalf("propose before kill: %v", err)
	}
	// Kill the leader: stop its consensus loop and sever its transport.
	ld.Stop()
	lc.transports[ld.ID()].Close()

	newLd := lc.waitLeader(t, ld.ID(), 10*time.Second)
	if newLd.ID() == ld.ID() {
		t.Fatal("dead leader still leading")
	}
	// Retry window: the new leader may briefly not have quorum confidence.
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if _, err = newLd.Propose([]byte("after"), 2*time.Second); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("propose on new leader: %v", err)
	}
	got := lc.appliedOn(newLd.ID())
	if len(got) != 2 || got[0] != "before" || got[1] != "after" {
		t.Fatalf("new leader applied %v, want [before after]", got)
	}
	// A non-leader replica refuses proposals with a redirect hint.
	for _, n := range lc.nodes {
		if n.ID() == ld.ID() || n.ID() == newLd.ID() {
			continue
		}
		if _, err := n.Propose([]byte("x"), 500*time.Millisecond); err == nil {
			t.Fatal("follower accepted a proposal")
		}
	}
}

func TestRebootstrapFromSurvivorSnapshot(t *testing.T) {
	lc := newLiveCluster(t, 3)
	ld := lc.waitLeader(t, -1, 5*time.Second)
	for i := 0; i < 3; i++ {
		if _, err := ld.Propose([]byte(fmt.Sprintf("s-%d", i)), 2*time.Second); err != nil {
			t.Fatalf("propose: %v", err)
		}
	}
	snap, err := ld.TakeSnapshot(2 * time.Second)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if snap.LastIndex == 0 {
		t.Fatal("snapshot has no applied state")
	}

	// Operator rebootstrap: a brand-new single-replica cluster seeded from
	// the survivor's snapshot resumes service with the full applied state.
	var rebooted []string
	var mu sync.Mutex
	node := NewNode(NodeConfig{
		Raft:      RaftConfig{ID: 9, Peers: []int{9}, Seed: 55, Restore: &snap},
		TickEvery: 5 * time.Millisecond,
		Apply: func(data []byte) (any, error) {
			mu.Lock()
			rebooted = append(rebooted, string(data))
			mu.Unlock()
			return nil, nil
		},
		Restore: func(data []byte) error {
			rl, err := DecodeReplayLog(data)
			if err != nil {
				return err
			}
			mu.Lock()
			for _, c := range rl.Commands {
				rebooted = append(rebooted, string(c))
			}
			mu.Unlock()
			return nil
		},
		Snapshot: func() []byte { return nil },
	})
	defer node.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !node.IsLeader() {
		time.Sleep(5 * time.Millisecond)
	}
	if !node.IsLeader() {
		t.Fatal("rebootstrapped replica did not become leader")
	}
	if _, err := node.Propose([]byte("post-reboot"), 2*time.Second); err != nil {
		t.Fatalf("propose after rebootstrap: %v", err)
	}
	mu.Lock()
	got := append([]string(nil), rebooted...)
	mu.Unlock()
	want := []string{"s-0", "s-1", "s-2", "post-reboot"}
	if len(got) != len(want) {
		t.Fatalf("rebootstrapped state = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rebootstrapped state = %v, want %v", got, want)
		}
	}
}
