// Package ctlplane is the replicated controller cluster of Section 5.1: a
// dependency-free Raft-style consensus core that elects a leader among
// controller replicas, replicates controller state mutations (failure
// recoveries, backup assignments, circuit reconfigurations) through an
// ordered log, and ships snapshots to lagging replicas — so any replica can
// answer a failure report the instant it becomes leader.
//
// The package splits consensus into two layers. Raft (this file) is a pure,
// deterministic step machine: no goroutines, no clocks, no sockets — time is
// logical ticks, I/O is Step(msg) in and Ready() out. That purity is what
// makes the election-safety property test (randomized partition/heal fuzzing
// with deterministic shrinking) possible. Node (node.go) drives a Raft with
// real timers and a Transport, and the ctlnet cluster wiring applies
// committed commands to each replica's controller.
package ctlplane

import "fmt"

// State is a replica's role in the current term.
type State uint8

const (
	// Follower replicas accept log entries from the leader and vote.
	Follower State = iota
	// Candidate replicas are running an election for the current term.
	Candidate
	// Leader replicas accept proposals and drive replication.
	Leader
)

// String names the state ("follower", "candidate", "leader").
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Entry is one replicated log record.
type Entry struct {
	Term  uint64 `json:"term"`
	Index uint64 `json:"index"`
	Data  []byte `json:"data,omitempty"`
}

// MsgType enumerates the consensus wire messages.
type MsgType uint8

const (
	// MsgVoteReq asks a peer for its vote in a new term.
	MsgVoteReq MsgType = iota + 1
	// MsgVoteResp answers a vote request.
	MsgVoteResp
	// MsgApp replicates log entries (empty = heartbeat).
	MsgApp
	// MsgAppResp acknowledges (or rejects) an append.
	MsgAppResp
	// MsgSnap installs a snapshot on a follower whose log is too far behind.
	MsgSnap
	// MsgSnapResp acknowledges a snapshot install.
	MsgSnapResp
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgVoteReq:
		return "vote-req"
	case MsgVoteResp:
		return "vote-resp"
	case MsgApp:
		return "app"
	case MsgAppResp:
		return "app-resp"
	case MsgSnap:
		return "snap"
	case MsgSnapResp:
		return "snap-resp"
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Message is one consensus protocol message. A single struct keeps the wire
// codec and the fuzz harness simple; unused fields stay zero.
type Message struct {
	Type MsgType `json:"type"`
	From int     `json:"from"`
	To   int     `json:"to"`
	Term uint64  `json:"term"`

	// MsgVoteReq: the candidate's log position.
	LastLogIndex uint64 `json:"last_log_index,omitempty"`
	LastLogTerm  uint64 `json:"last_log_term,omitempty"`
	// MsgVoteResp.
	Granted bool `json:"granted,omitempty"`

	// MsgApp: the entries and their anchor.
	PrevIndex uint64  `json:"prev_index,omitempty"`
	PrevTerm  uint64  `json:"prev_term,omitempty"`
	Entries   []Entry `json:"entries,omitempty"`
	Commit    uint64  `json:"commit,omitempty"`
	// MsgAppResp / MsgSnapResp.
	Success    bool   `json:"success,omitempty"`
	MatchIndex uint64 `json:"match_index,omitempty"`

	// MsgSnap: the snapshot replacing the follower's log prefix.
	SnapIndex uint64 `json:"snap_index,omitempty"`
	SnapTerm  uint64 `json:"snap_term,omitempty"`
	SnapData  []byte `json:"snap_data,omitempty"`
}

// Snapshot is a compacted log prefix: the state machine's serialized state
// as of LastIndex.
type Snapshot struct {
	LastIndex uint64
	LastTerm  uint64
	Data      []byte
}

// RaftConfig parameterizes one consensus core.
type RaftConfig struct {
	// ID is this replica's identity; Peers lists every cluster member
	// (including ID).
	ID    int
	Peers []int
	// ElectionTicks is the base election timeout in ticks; each election
	// waits a randomized timeout in [ElectionTicks, 2*ElectionTicks).
	// Default 10.
	ElectionTicks int
	// HeartbeatTicks is the leader's heartbeat period in ticks. Default 2.
	HeartbeatTicks int
	// MaxAppEntries bounds entries per MsgApp. Default 64.
	MaxAppEntries int
	// Seed seeds the private PRNG behind the randomized election timeouts,
	// keeping a given configuration's behaviour reproducible. 0 derives a
	// seed from ID.
	Seed uint64
	// Restore, when non-nil, starts the replica from an existing snapshot
	// (operator rebootstrap after quorum loss, or rejoining from backup).
	Restore *Snapshot
}

func (c *RaftConfig) setDefaults() {
	if c.ElectionTicks == 0 {
		c.ElectionTicks = 10
	}
	if c.HeartbeatTicks == 0 {
		c.HeartbeatTicks = 2
	}
	if c.MaxAppEntries == 0 {
		c.MaxAppEntries = 64
	}
	if c.Seed == 0 {
		c.Seed = uint64(c.ID)*0x9e3779b97f4a7c15 + 1
	}
}

// Ready is the output of one or more Step/Tick/Propose calls, drained by the
// driver: messages to send, newly committed entries to apply, and (at most)
// one snapshot to install before applying Committed.
type Ready struct {
	Messages  []Message
	Committed []Entry
	// Snapshot, when non-nil, must be restored into the state machine
	// BEFORE applying Committed: it replaces all state up to its LastIndex.
	Snapshot *Snapshot
}

// Raft is the pure consensus core. It is not safe for concurrent use; the
// Node driver serializes all access on one goroutine.
type Raft struct {
	cfg   RaftConfig
	state State
	term  uint64
	// votedFor is the candidate granted this replica's vote in term
	// (-1 none).
	votedFor int
	// leader is the known leader of the current term (-1 unknown).
	leader int
	votes  map[int]bool

	// log holds entries (snapIndex+1 ..); snapIndex/snapTerm anchor the
	// compacted prefix, snapData is the retained snapshot for lagging peers.
	log       []Entry
	snapIndex uint64
	snapTerm  uint64
	snapData  []byte

	commit  uint64
	applied uint64

	next  map[int]uint64
	match map[int]uint64
	// ackElapsed counts ticks since each follower last answered; the leader
	// steps down when it cannot reach a quorum for 2*ElectionTicks — the
	// quorum-loss halt that prevents split-brain writes.
	ackElapsed map[int]int

	electionElapsed  int
	heartbeatElapsed int
	timeoutTarget    int
	rng              uint64

	// pending Ready output.
	msgs        []Message
	pendingSnap *Snapshot
}

// NewRaft builds a consensus core.
func NewRaft(cfg RaftConfig) *Raft {
	cfg.setDefaults()
	r := &Raft{
		cfg:      cfg,
		votedFor: -1,
		leader:   -1,
		rng:      cfg.Seed,
	}
	if cfg.Restore != nil {
		r.snapIndex = cfg.Restore.LastIndex
		r.snapTerm = cfg.Restore.LastTerm
		r.snapData = cfg.Restore.Data
		r.commit = cfg.Restore.LastIndex
		r.applied = cfg.Restore.LastIndex
		r.term = cfg.Restore.LastTerm
	}
	r.resetTimeout()
	return r
}

// splitmix64 advances the private PRNG.
func (r *Raft) rand() uint64 {
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *Raft) resetTimeout() {
	r.electionElapsed = 0
	r.timeoutTarget = r.cfg.ElectionTicks + int(r.rand()%uint64(r.cfg.ElectionTicks))
}

// ID returns this replica's identity.
func (r *Raft) ID() int { return r.cfg.ID }

// State returns the replica's current role.
func (r *Raft) State() State { return r.state }

// Term returns the current term.
func (r *Raft) Term() uint64 { return r.term }

// Leader returns the known leader of the current term, -1 if unknown.
func (r *Raft) Leader() int { return r.leader }

// Commit returns the commit index.
func (r *Raft) Commit() uint64 { return r.commit }

// LastIndex returns the index of the last log entry.
func (r *Raft) LastIndex() uint64 { return r.snapIndex + uint64(len(r.log)) }

// LogBytes approximates retained log size for the compaction heuristic and
// the replica gauges.
func (r *Raft) LogBytes() int {
	n := 0
	for i := range r.log {
		n += len(r.log[i].Data) + 16
	}
	return n
}

func (r *Raft) lastTerm() uint64 {
	if len(r.log) == 0 {
		return r.snapTerm
	}
	return r.log[len(r.log)-1].Term
}

// entryTerm returns the term of the entry at index (0 for index 0), and
// whether the index is still in reach (not compacted away, not beyond the
// log).
func (r *Raft) entryTerm(index uint64) (uint64, bool) {
	if index == r.snapIndex {
		return r.snapTerm, true
	}
	if index < r.snapIndex || index > r.LastIndex() {
		return 0, false
	}
	return r.log[index-r.snapIndex-1].Term, true
}

func (r *Raft) quorum() int { return len(r.cfg.Peers)/2 + 1 }

func (r *Raft) send(m Message) {
	m.From = r.cfg.ID
	m.Term = r.term
	r.msgs = append(r.msgs, m)
}

// Tick advances logical time by one unit: election timeouts for followers
// and candidates, heartbeats and the quorum-loss check for leaders.
func (r *Raft) Tick() {
	switch r.state {
	case Follower, Candidate:
		r.electionElapsed++
		if r.electionElapsed >= r.timeoutTarget {
			r.campaign()
		}
	case Leader:
		r.heartbeatElapsed++
		reached := 1 // self
		for _, p := range r.cfg.Peers {
			if p == r.cfg.ID {
				continue
			}
			r.ackElapsed[p]++
			if r.ackElapsed[p] < 2*r.cfg.ElectionTicks {
				reached++
			}
		}
		if reached < r.quorum() {
			// Quorum lost: step down rather than keep accepting writes
			// that can never commit (and could split-brain with a new
			// leader elected on the other side of a partition).
			r.becomeFollower(r.term, -1)
			return
		}
		if r.heartbeatElapsed >= r.cfg.HeartbeatTicks {
			r.heartbeatElapsed = 0
			r.broadcastApp()
		}
	}
}

func (r *Raft) campaign() {
	r.state = Candidate
	r.term++
	r.votedFor = r.cfg.ID
	r.leader = -1
	r.votes = map[int]bool{r.cfg.ID: true}
	r.resetTimeout()
	if len(r.cfg.Peers) == 1 {
		r.becomeLeader()
		return
	}
	for _, p := range r.cfg.Peers {
		if p == r.cfg.ID {
			continue
		}
		r.send(Message{
			Type: MsgVoteReq, To: p,
			LastLogIndex: r.LastIndex(), LastLogTerm: r.lastTerm(),
		})
	}
}

func (r *Raft) becomeFollower(term uint64, leader int) {
	if term > r.term {
		r.term = term
		r.votedFor = -1
	}
	r.state = Follower
	r.leader = leader
	r.votes = nil
	r.resetTimeout()
}

func (r *Raft) becomeLeader() {
	r.state = Leader
	r.leader = r.cfg.ID
	r.heartbeatElapsed = 0
	r.next = make(map[int]uint64, len(r.cfg.Peers))
	r.match = make(map[int]uint64, len(r.cfg.Peers))
	r.ackElapsed = make(map[int]int, len(r.cfg.Peers))
	for _, p := range r.cfg.Peers {
		r.next[p] = r.LastIndex() + 1
		r.match[p] = 0
	}
	r.match[r.cfg.ID] = r.LastIndex()
	r.broadcastApp()
}

// Propose appends data to the log if this replica is the leader, returning
// the entry's (index, term). ok is false on non-leaders.
func (r *Raft) Propose(data []byte) (index, term uint64, ok bool) {
	if r.state != Leader {
		return 0, 0, false
	}
	e := Entry{Term: r.term, Index: r.LastIndex() + 1, Data: data}
	r.log = append(r.log, e)
	r.match[r.cfg.ID] = e.Index
	if len(r.cfg.Peers) == 1 {
		r.advanceCommit()
	} else {
		r.broadcastApp()
	}
	return e.Index, e.Term, true
}

func (r *Raft) broadcastApp() {
	for _, p := range r.cfg.Peers {
		if p != r.cfg.ID {
			r.sendApp(p)
		}
	}
}

// sendApp sends the next batch of entries (or a heartbeat, or a snapshot if
// the follower's position was compacted away) to one follower.
func (r *Raft) sendApp(to int) {
	next := r.next[to]
	if next <= r.snapIndex {
		r.send(Message{
			Type: MsgSnap, To: to,
			SnapIndex: r.snapIndex, SnapTerm: r.snapTerm, SnapData: r.snapData,
		})
		return
	}
	prev := next - 1
	prevTerm, ok := r.entryTerm(prev)
	if !ok {
		return
	}
	var entries []Entry
	if next <= r.LastIndex() {
		from := next - r.snapIndex - 1
		n := uint64(len(r.log)) - from
		if n > uint64(r.cfg.MaxAppEntries) {
			n = uint64(r.cfg.MaxAppEntries)
		}
		entries = r.log[from : from+n]
	}
	r.send(Message{
		Type: MsgApp, To: to,
		PrevIndex: prev, PrevTerm: prevTerm,
		Entries: entries, Commit: r.commit,
	})
	if len(entries) > 0 {
		// Optimistic pipelining: assume the batch lands and advance next
		// past it, so a burst of proposals streams each entry once instead
		// of re-sending the whole unacknowledged window on every propose
		// (which grows O(n²) bytes and can delay heartbeats behind the
		// backlog until the leader misreads its quorum as unreachable).
		// A lost batch heals through the usual rejection path: the next
		// heartbeat's PrevIndex won't match, the follower nacks with its
		// hint, and next backs off.
		r.next[to] = entries[len(entries)-1].Index + 1
	}
}

// Step feeds one incoming message into the core.
func (r *Raft) Step(m Message) {
	if m.Term > r.term {
		leader := -1
		if m.Type == MsgApp || m.Type == MsgSnap {
			leader = m.From
		}
		r.becomeFollower(m.Term, leader)
	}
	switch m.Type {
	case MsgVoteReq:
		r.stepVoteReq(m)
	case MsgVoteResp:
		r.stepVoteResp(m)
	case MsgApp:
		r.stepApp(m)
	case MsgAppResp:
		r.stepAppResp(m)
	case MsgSnap:
		r.stepSnap(m)
	case MsgSnapResp:
		r.stepSnapResp(m)
	}
}

func (r *Raft) stepVoteReq(m Message) {
	grant := false
	if m.Term >= r.term && (r.votedFor == -1 || r.votedFor == m.From) {
		// Election restriction: only vote for candidates whose log is at
		// least as up to date as ours.
		upToDate := m.LastLogTerm > r.lastTerm() ||
			(m.LastLogTerm == r.lastTerm() && m.LastLogIndex >= r.LastIndex())
		if upToDate {
			grant = true
			r.votedFor = m.From
			r.resetTimeout()
		}
	}
	r.send(Message{Type: MsgVoteResp, To: m.From, Granted: grant})
}

func (r *Raft) stepVoteResp(m Message) {
	if r.state != Candidate || m.Term != r.term || !m.Granted {
		return
	}
	r.votes[m.From] = true
	if len(r.votes) >= r.quorum() {
		r.becomeLeader()
	}
}

func (r *Raft) stepApp(m Message) {
	if m.Term < r.term {
		r.send(Message{Type: MsgAppResp, To: m.From, Success: false, MatchIndex: r.LastIndex()})
		return
	}
	// A current-term append asserts leadership.
	r.state = Follower
	r.leader = m.From
	r.resetTimeout()

	prevTerm, reachable := r.entryTerm(m.PrevIndex)
	if m.PrevIndex < r.snapIndex {
		// The anchor predates our snapshot: everything up to snapIndex is
		// already committed and applied; skip the overlap.
		trimmed := false
		for i := range m.Entries {
			if m.Entries[i].Index == r.snapIndex+1 {
				m.Entries = m.Entries[i:]
				m.PrevIndex = r.snapIndex
				m.PrevTerm = r.snapTerm
				prevTerm, reachable = r.snapTerm, true
				trimmed = true
				break
			}
		}
		if !trimmed {
			// Entirely inside the snapshot: ack our position.
			r.send(Message{Type: MsgAppResp, To: m.From, Success: true, MatchIndex: r.snapIndex})
			return
		}
	}
	if !reachable || prevTerm != m.PrevTerm {
		r.send(Message{Type: MsgAppResp, To: m.From, Success: false, MatchIndex: r.LastIndex()})
		return
	}
	// Append, truncating any conflicting suffix.
	for _, e := range m.Entries {
		if have, ok := r.entryTerm(e.Index); ok && e.Index <= r.LastIndex() {
			if have == e.Term {
				continue
			}
			r.log = r.log[:e.Index-r.snapIndex-1]
		}
		r.log = append(r.log, e)
	}
	matched := m.PrevIndex + uint64(len(m.Entries))
	if m.Commit > r.commit {
		c := m.Commit
		if c > matched {
			c = matched
		}
		if c > r.commit {
			r.commit = c
		}
	}
	r.send(Message{Type: MsgAppResp, To: m.From, Success: true, MatchIndex: matched})
}

func (r *Raft) stepAppResp(m Message) {
	if r.state != Leader || m.Term != r.term {
		return
	}
	r.ackElapsed[m.From] = 0
	if m.Success {
		if m.MatchIndex > r.match[m.From] {
			r.match[m.From] = m.MatchIndex
		}
		if m.MatchIndex+1 > r.next[m.From] {
			r.next[m.From] = m.MatchIndex + 1
		}
		r.advanceCommit()
		if r.next[m.From] <= r.LastIndex() {
			r.sendApp(m.From)
		}
		return
	}
	// Rejection: back off to the follower's hint and retry.
	hint := m.MatchIndex + 1
	if hint < r.next[m.From] {
		r.next[m.From] = hint
	} else if r.next[m.From] > 1 {
		r.next[m.From]--
	}
	r.sendApp(m.From)
}

func (r *Raft) stepSnap(m Message) {
	if m.Term < r.term {
		r.send(Message{Type: MsgSnapResp, To: m.From, MatchIndex: r.LastIndex()})
		return
	}
	r.state = Follower
	r.leader = m.From
	r.resetTimeout()
	if m.SnapIndex <= r.snapIndex {
		// Already have it.
		r.send(Message{Type: MsgSnapResp, To: m.From, Success: true, MatchIndex: r.LastIndex()})
		return
	}
	snap := &Snapshot{LastIndex: m.SnapIndex, LastTerm: m.SnapTerm, Data: m.SnapData}
	r.log = nil
	r.snapIndex = m.SnapIndex
	r.snapTerm = m.SnapTerm
	r.snapData = m.SnapData
	r.commit = m.SnapIndex
	r.applied = m.SnapIndex
	r.pendingSnap = snap
	r.send(Message{Type: MsgSnapResp, To: m.From, Success: true, MatchIndex: m.SnapIndex})
}

func (r *Raft) stepSnapResp(m Message) {
	if r.state != Leader || m.Term != r.term {
		return
	}
	r.ackElapsed[m.From] = 0
	if m.MatchIndex > r.match[m.From] {
		r.match[m.From] = m.MatchIndex
	}
	if m.MatchIndex+1 > r.next[m.From] {
		r.next[m.From] = m.MatchIndex + 1
	}
	if r.next[m.From] <= r.LastIndex() {
		r.sendApp(m.From)
	}
}

// advanceCommit moves the commit index to the highest current-term entry
// replicated on a quorum.
func (r *Raft) advanceCommit() {
	for idx := r.LastIndex(); idx > r.commit; idx-- {
		t, ok := r.entryTerm(idx)
		if !ok || t != r.term {
			// Only current-term entries commit by counting (Raft §5.4.2);
			// older ones commit transitively.
			continue
		}
		n := 0
		for _, p := range r.cfg.Peers {
			if r.match[p] >= idx {
				n++
			}
		}
		if n >= r.quorum() {
			r.commit = idx
			break
		}
	}
}

// Compact discards the log prefix up to index, retaining data as the
// snapshot sent to followers that have fallen behind the remaining log.
// index must be applied already.
func (r *Raft) Compact(index uint64, data []byte) error {
	if index <= r.snapIndex {
		return nil
	}
	if index > r.applied {
		return fmt.Errorf("ctlplane: compact index %d beyond applied %d", index, r.applied)
	}
	t, ok := r.entryTerm(index)
	if !ok {
		return fmt.Errorf("ctlplane: compact index %d unreachable", index)
	}
	r.log = append([]Entry(nil), r.log[index-r.snapIndex:]...)
	r.snapIndex = index
	r.snapTerm = t
	r.snapData = data
	return nil
}

// HasReady reports whether Ready would return any work.
func (r *Raft) HasReady() bool {
	return len(r.msgs) > 0 || r.commit > r.applied || r.pendingSnap != nil
}

// Ready drains the core's pending output: outgoing messages, a snapshot to
// install (if any), and newly committed entries. The caller must install the
// snapshot first, then apply Committed in order; Ready advances the applied
// index, so each committed entry is returned exactly once.
func (r *Raft) Ready() Ready {
	rd := Ready{Messages: r.msgs, Snapshot: r.pendingSnap}
	r.msgs = nil
	r.pendingSnap = nil
	if r.commit > r.applied {
		from := r.applied - r.snapIndex
		to := r.commit - r.snapIndex
		rd.Committed = append([]Entry(nil), r.log[from:to]...)
		r.applied = r.commit
	}
	return rd
}

// CurrentSnapshot returns the replica's retained snapshot (the compacted
// prefix), for operator-style rebootstrap after quorum loss. The bool
// reports whether a snapshot exists.
func (r *Raft) CurrentSnapshot() (Snapshot, bool) {
	if r.snapIndex == 0 && r.snapData == nil {
		return Snapshot{}, false
	}
	return Snapshot{LastIndex: r.snapIndex, LastTerm: r.snapTerm, Data: r.snapData}, true
}
