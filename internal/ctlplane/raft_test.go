package ctlplane

import (
	"fmt"
	"testing"
)

// cluster is a deterministic in-memory harness: N Raft cores, a message
// pool, and explicit tick/deliver control. No goroutines, no clocks — every
// test run with the same seed takes the same path.
type cluster struct {
	nodes map[int]*Raft
	// inflight holds undelivered messages in send order.
	inflight []Message
	// cut[a][b] drops messages a→b (asymmetric cuts are allowed).
	cut map[int]map[int]bool
	// applied collects each node's applied entries, in order.
	applied map[int][]Entry
	// restored records the last snapshot each node installed.
	restored map[int]*Snapshot
}

func newCluster(ids []int, seed uint64) *cluster {
	c := &cluster{
		nodes:    make(map[int]*Raft),
		cut:      make(map[int]map[int]bool),
		applied:  make(map[int][]Entry),
		restored: make(map[int]*Snapshot),
	}
	for _, id := range ids {
		c.nodes[id] = NewRaft(RaftConfig{
			ID: id, Peers: ids,
			ElectionTicks: 10, HeartbeatTicks: 2,
			Seed: seed + uint64(id)*977,
		})
	}
	return c
}

// pump drains Ready output into the in-flight pool and applies commits.
func (c *cluster) pump() {
	for id, r := range c.nodes {
		for r.HasReady() {
			rd := r.Ready()
			c.inflight = append(c.inflight, rd.Messages...)
			if rd.Snapshot != nil {
				c.restored[id] = rd.Snapshot
				// Replay semantics: snapshot replaces the applied list.
				c.applied[id] = nil
			}
			c.applied[id] = append(c.applied[id], rd.Committed...)
		}
	}
}

// deliverAll repeatedly delivers every in-flight message (respecting cuts)
// until the network is quiet.
func (c *cluster) deliverAll() {
	c.pump()
	for len(c.inflight) > 0 {
		msgs := c.inflight
		c.inflight = nil
		for _, m := range msgs {
			if c.cut[m.From][m.To] {
				continue
			}
			if n, ok := c.nodes[m.To]; ok {
				n.Step(m)
			}
		}
		c.pump()
	}
}

// tickAll advances every node one tick and settles the network.
func (c *cluster) tickAll() {
	for _, r := range c.nodes {
		r.Tick()
	}
	c.deliverAll()
}

// tickUntilLeader ticks until some node is leader, failing after limit.
func (c *cluster) tickUntilLeader(t *testing.T, limit int) *Raft {
	t.Helper()
	for i := 0; i < limit; i++ {
		c.tickAll()
		if l := c.leader(); l != nil {
			return l
		}
	}
	t.Fatalf("no leader elected in %d ticks", limit)
	return nil
}

func (c *cluster) leader() *Raft {
	for _, r := range c.nodes {
		if r.State() == Leader {
			return r
		}
	}
	return nil
}

// isolate cuts all traffic to and from id.
func (c *cluster) isolate(id int) {
	for other := range c.nodes {
		if other == id {
			continue
		}
		c.cutLink(id, other)
		c.cutLink(other, id)
	}
}

func (c *cluster) cutLink(a, b int) {
	if c.cut[a] == nil {
		c.cut[a] = make(map[int]bool)
	}
	c.cut[a][b] = true
}

func (c *cluster) heal() { c.cut = make(map[int]map[int]bool) }

func TestElectionElectsSingleLeader(t *testing.T) {
	c := newCluster([]int{0, 1, 2}, 1)
	ld := c.tickUntilLeader(t, 100)
	n := 0
	for _, r := range c.nodes {
		if r.State() == Leader {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("want exactly 1 leader, got %d", n)
	}
	// Followers learn the leader's identity from its heartbeats.
	c.tickAll()
	for id, r := range c.nodes {
		if r.Leader() != ld.ID() {
			t.Errorf("node %d thinks leader is %d, want %d", id, r.Leader(), ld.ID())
		}
	}
}

func TestReplicationCommitsOnAllReplicas(t *testing.T) {
	c := newCluster([]int{0, 1, 2}, 2)
	ld := c.tickUntilLeader(t, 100)
	for i := 0; i < 5; i++ {
		if _, _, ok := ld.Propose([]byte(fmt.Sprintf("cmd-%d", i))); !ok {
			t.Fatalf("propose %d rejected", i)
		}
	}
	c.deliverAll()
	// The commit-index broadcast rides the next heartbeat (every 2 ticks).
	c.tickAll()
	c.tickAll()
	for id := range c.nodes {
		got := c.applied[id]
		if len(got) != 5 {
			t.Fatalf("node %d applied %d entries, want 5", id, len(got))
		}
		for i, e := range got {
			if want := fmt.Sprintf("cmd-%d", i); string(e.Data) != want {
				t.Errorf("node %d entry %d = %q, want %q", id, i, e.Data, want)
			}
		}
	}
}

func TestCommitRequiresQuorum(t *testing.T) {
	c := newCluster([]int{0, 1, 2}, 3)
	ld := c.tickUntilLeader(t, 100)
	// Cut the leader off from both followers, then propose.
	c.isolate(ld.ID())
	idx, _, ok := ld.Propose([]byte("orphan"))
	if !ok {
		t.Fatal("propose rejected")
	}
	for i := 0; i < 5; i++ {
		c.tickAll()
	}
	if ld.Commit() >= idx {
		t.Fatalf("entry committed without quorum (commit=%d, entry=%d)", ld.Commit(), idx)
	}
}

func TestLeaderStepsDownOnQuorumLoss(t *testing.T) {
	c := newCluster([]int{0, 1, 2}, 4)
	ld := c.tickUntilLeader(t, 100)
	c.isolate(ld.ID())
	// The isolated leader must step down within ~2 election timeouts — the
	// split-brain guard: it stops accepting proposals it could never commit.
	for i := 0; i < 60 && ld.State() == Leader; i++ {
		c.tickAll()
	}
	if ld.State() == Leader {
		t.Fatal("isolated leader never stepped down")
	}
	if _, _, ok := ld.Propose([]byte("x")); ok {
		t.Fatal("stepped-down leader accepted a proposal")
	}
	// The healthy majority elects a replacement.
	var other *Raft
	for _, r := range c.nodes {
		if r.ID() != ld.ID() {
			other = r
			break
		}
	}
	for i := 0; i < 200 && c.leader() == nil; i++ {
		c.tickAll()
	}
	if l := c.leader(); l == nil || l.ID() == ld.ID() {
		t.Fatalf("majority did not elect a new leader (got %v)", l)
	}
	_ = other
}

func TestNewLeaderPreservesCommittedEntries(t *testing.T) {
	c := newCluster([]int{0, 1, 2}, 5)
	ld := c.tickUntilLeader(t, 100)
	for i := 0; i < 3; i++ {
		ld.Propose([]byte(fmt.Sprintf("keep-%d", i)))
	}
	c.deliverAll()
	c.tickAll()
	// Kill the leader; the new leader must carry the committed entries.
	c.isolate(ld.ID())
	var newLd *Raft
	for i := 0; i < 300; i++ {
		c.tickAll()
		for _, r := range c.nodes {
			if r.ID() != ld.ID() && r.State() == Leader {
				newLd = r
			}
		}
		if newLd != nil {
			break
		}
	}
	if newLd == nil {
		t.Fatal("no new leader after old leader isolated")
	}
	newLd.Propose([]byte("after"))
	c.deliverAll()
	c.tickAll()
	got := c.applied[newLd.ID()]
	if len(got) != 4 {
		t.Fatalf("new leader applied %d entries, want 4: %v", len(got), got)
	}
	for i := 0; i < 3; i++ {
		if want := fmt.Sprintf("keep-%d", i); string(got[i].Data) != want {
			t.Errorf("entry %d = %q, want %q", i, got[i].Data, want)
		}
	}
	if string(got[3].Data) != "after" {
		t.Errorf("entry 3 = %q, want %q", got[3].Data, "after")
	}
}

func TestSnapshotInstallOnLaggingReplica(t *testing.T) {
	c := newCluster([]int{0, 1, 2}, 6)
	ld := c.tickUntilLeader(t, 100)
	// Isolate one follower, then commit and compact past its position.
	var lag int
	for id := range c.nodes {
		if id != ld.ID() {
			lag = id
			break
		}
	}
	c.isolate(lag)
	for i := 0; i < 8; i++ {
		ld.Propose([]byte(fmt.Sprintf("e-%d", i)))
		c.tickAll()
	}
	c.deliverAll()
	// Leader compacts everything applied; followers behind the snapshot
	// index must be caught up by snapshot install.
	if err := ld.Compact(ld.Commit(), []byte("snap-state")); err != nil {
		t.Fatalf("compact: %v", err)
	}
	c.heal()
	for i := 0; i < 100; i++ {
		c.tickAll()
		if c.nodes[lag].LastIndex() >= ld.Commit() {
			break
		}
	}
	snap := c.restored[lag]
	if snap == nil {
		t.Fatal("lagging replica never installed a snapshot")
	}
	if string(snap.Data) != "snap-state" {
		t.Fatalf("installed snapshot data = %q, want %q", snap.Data, "snap-state")
	}
	// And it keeps up with post-snapshot entries.
	ld.Propose([]byte("tail"))
	c.deliverAll()
	c.tickAll()
	c.tickAll()
	got := c.applied[lag]
	if len(got) == 0 || string(got[len(got)-1].Data) != "tail" {
		t.Fatalf("lagging replica did not apply post-snapshot entry: %v", got)
	}
}

func TestRestoreFromSnapshotBootstrapsLog(t *testing.T) {
	// Operator rebootstrap: start a fresh single-replica cluster from a
	// survivor's snapshot; it must lead and extend the log past the
	// snapshot index.
	r := NewRaft(RaftConfig{
		ID: 7, Peers: []int{7}, Seed: 9,
		Restore: &Snapshot{LastIndex: 42, LastTerm: 3, Data: []byte("survivor")},
	})
	for i := 0; i < 40 && r.State() != Leader; i++ {
		r.Tick()
	}
	if r.State() != Leader {
		t.Fatal("single restored replica did not elect itself")
	}
	idx, _, ok := r.Propose([]byte("resumed"))
	if !ok || idx != 43 {
		t.Fatalf("propose after restore: idx=%d ok=%v, want idx=43", idx, ok)
	}
	rd := r.Ready()
	if len(rd.Committed) != 1 || string(rd.Committed[0].Data) != "resumed" {
		t.Fatalf("restored replica commit = %+v", rd.Committed)
	}
	snap, ok := r.CurrentSnapshot()
	if !ok || string(snap.Data) != "survivor" {
		t.Fatalf("CurrentSnapshot = %+v ok=%v", snap, ok)
	}
}
