package ctlplane

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sharebackup/internal/obs"
)

// ErrNotLeader is returned by Propose on a replica that is not the cluster
// leader. Callers (the ctlnet server) surface it as a redirect.
var ErrNotLeader = errors.New("ctlplane: not leader")

// ErrLostLeadership is returned for proposals that were accepted into the
// log but whose commit was preempted by a leadership change.
var ErrLostLeadership = errors.New("ctlplane: lost leadership before commit")

// ErrStopped is returned when the node has shut down.
var ErrStopped = errors.New("ctlplane: node stopped")

// Transport delivers consensus messages between replicas. Send is
// best-effort: consensus tolerates loss (retries ride the tick loop), so a
// failed send is dropped, not retried by the transport.
type Transport interface {
	Send(m Message)
}

// NodeConfig parameterizes a live replica driver.
type NodeConfig struct {
	Raft RaftConfig
	// TickEvery is the wall-clock length of one logical tick. Default 25ms
	// (election timeout ≈ 250–500ms with the default ElectionTicks).
	TickEvery time.Duration
	// Transport sends consensus messages to peers; incoming messages are
	// fed through Node.Deliver.
	Transport Transport
	// Apply applies one committed command to the replica's state machine,
	// in log order. Its result resolves the leader's matching Propose call.
	// Deterministic across replicas by construction (same log, same state).
	Apply func(data []byte) (any, error)
	// Restore rebuilds the state machine from a snapshot (lagging-replica
	// install, or RaftConfig.Restore rebootstrap). May be nil if snapshots
	// are never shipped.
	Restore func(data []byte) error
	// Snapshot serializes the state machine for log compaction. May be nil
	// to disable compaction.
	Snapshot func() []byte
	// CompactEvery compacts the log after this many applied entries.
	// Default 1024. Ignored when Snapshot is nil.
	CompactEvery uint64

	// Bus receives leader-elected / leader-lost events (nil-safe); Now
	// supplies their timestamps on the process epoch (nil → node start).
	Bus *obs.Bus
	Now func() time.Duration
	// Metrics resolves the replica gauges (nil → private registry).
	Metrics *obs.Registry
	// Logf receives diagnostic lines (nil → silent).
	Logf func(format string, args ...any)
}

type proposeReq struct {
	data []byte
	ch   chan proposeResult
}

type proposeResult struct {
	val any
	err error
}

type waiter struct {
	term uint64
	ch   chan proposeResult
}

// Node drives one Raft core with real time and a Transport, applying
// committed entries to the replica's state machine. All consensus state is
// confined to the run goroutine; the exported surface is channel-fed and
// safe for concurrent use.
type Node struct {
	cfg  NodeConfig
	raft *Raft

	inbox    chan Message
	proposes chan proposeReq
	snapshot chan chan Snapshot
	quit     chan struct{}
	done     chan struct{}

	// Observed role, readable without touching the run goroutine.
	isLeader atomic.Bool
	leader   atomic.Int64 // current known leader ID, -1 unknown
	term     atomic.Uint64

	waiters      map[uint64]waiter
	sinceCompact uint64

	gTerm     *obs.Gauge
	gIsLeader *obs.Gauge
	gCommit   *obs.Gauge
	gLogBytes *obs.Gauge
	cElected  *obs.Counter
	cStepdown *obs.Counter

	stopOnce sync.Once
}

// NewNode builds and starts a replica driver.
func NewNode(cfg NodeConfig) *Node {
	if cfg.TickEvery == 0 {
		cfg.TickEvery = 25 * time.Millisecond
	}
	if cfg.CompactEvery == 0 {
		cfg.CompactEvery = 1024
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Now == nil {
		start := time.Now()
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	n := &Node{
		cfg:      cfg,
		raft:     NewRaft(cfg.Raft),
		inbox:    make(chan Message, 1024),
		proposes: make(chan proposeReq, 64),
		snapshot: make(chan chan Snapshot),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		waiters:  make(map[uint64]waiter),
	}
	n.leader.Store(-1)
	label := fmt.Sprintf("ctlplane.replica%d.", cfg.Raft.ID)
	n.gTerm = reg.Gauge(label + "term")
	n.gIsLeader = reg.Gauge(label + "is_leader")
	n.gCommit = reg.Gauge(label + "commit_index")
	n.gLogBytes = reg.Gauge(label + "log_bytes")
	n.cElected = reg.Counter(label + "elections_won")
	n.cStepdown = reg.Counter(label + "stepdowns")
	if cfg.Raft.Restore != nil && cfg.Restore != nil {
		if err := cfg.Restore(cfg.Raft.Restore.Data); err != nil {
			cfg.Logf("ctlplane: replica %d restore: %v", cfg.Raft.ID, err)
		}
	}
	go n.run()
	return n
}

// ID returns the replica's identity.
func (n *Node) ID() int { return n.cfg.Raft.ID }

// IsLeader reports whether this replica currently believes it is the leader.
func (n *Node) IsLeader() bool { return n.isLeader.Load() }

// LeaderID returns the last known leader's replica ID, -1 if unknown.
func (n *Node) LeaderID() int { return int(n.leader.Load()) }

// Term returns the replica's current term.
func (n *Node) Term() uint64 { return n.term.Load() }

// Deliver feeds one incoming consensus message into the replica. Never
// blocks: messages are dropped if the replica is saturated or stopped
// (consensus retries via ticks).
func (n *Node) Deliver(m Message) {
	select {
	case n.inbox <- m:
	case <-n.done:
	default:
	}
}

// Propose replicates one command through the log and, once committed and
// applied locally, returns Apply's result. Fails fast with ErrNotLeader on
// non-leaders and ErrLostLeadership when an election preempts the commit.
func (n *Node) Propose(data []byte, timeout time.Duration) (any, error) {
	req := proposeReq{data: data, ch: make(chan proposeResult, 1)}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case n.proposes <- req:
	case <-n.done:
		return nil, ErrStopped
	case <-t.C:
		return nil, fmt.Errorf("ctlplane: propose enqueue timed out after %v", timeout)
	}
	select {
	case res := <-req.ch:
		return res.val, res.err
	case <-n.done:
		return nil, ErrStopped
	case <-t.C:
		return nil, fmt.Errorf("ctlplane: propose timed out after %v", timeout)
	}
}

// TakeSnapshot returns a snapshot of the replica's applied state (the
// operator handle for quorum-loss rebootstrap: feed it to a fresh cluster
// via RaftConfig.Restore). Runs on the consensus goroutine so the state
// machine is quiescent.
func (n *Node) TakeSnapshot(timeout time.Duration) (Snapshot, error) {
	if n.cfg.Snapshot == nil {
		return Snapshot{}, errors.New("ctlplane: no snapshot hook configured")
	}
	ch := make(chan Snapshot, 1)
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case n.snapshot <- ch:
	case <-n.done:
		return Snapshot{}, ErrStopped
	case <-t.C:
		return Snapshot{}, fmt.Errorf("ctlplane: snapshot request timed out after %v", timeout)
	}
	select {
	case snap := <-ch:
		return snap, nil
	case <-n.done:
		return Snapshot{}, ErrStopped
	case <-t.C:
		return Snapshot{}, fmt.Errorf("ctlplane: snapshot timed out after %v", timeout)
	}
}

// Stop shuts the replica down. Pending proposals fail with ErrStopped. A
// stopped replica no longer reports leadership: it can neither replicate
// nor serve, and pollers (cluster directories, emulation harnesses) must
// not route to it.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.quit) })
	<-n.done
	n.isLeader.Store(false)
}

func (n *Node) run() {
	defer close(n.done)
	ticker := time.NewTicker(n.cfg.TickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.quit:
			n.failWaiters(ErrStopped)
			return
		case <-ticker.C:
			n.raft.Tick()
		case m := <-n.inbox:
			n.raft.Step(m)
			// Drain any burst without waiting for the next loop turn.
			for drained := 0; drained < 256; drained++ {
				select {
				case m := <-n.inbox:
					n.raft.Step(m)
				default:
					drained = 256
				}
			}
		case req := <-n.proposes:
			n.handlePropose(req)
		case ch := <-n.snapshot:
			ch <- Snapshot{
				LastIndex: n.raft.applied,
				LastTerm:  n.raft.term,
				Data:      n.cfg.Snapshot(),
			}
		}
		n.processReady()
	}
}

func (n *Node) handlePropose(req proposeReq) {
	index, term, ok := n.raft.Propose(req.data)
	if !ok {
		req.ch <- proposeResult{err: fmt.Errorf("%w (leader=%d)", ErrNotLeader, n.raft.Leader())}
		return
	}
	n.waiters[index] = waiter{term: term, ch: req.ch}
}

func (n *Node) failWaiters(err error) {
	for idx, w := range n.waiters {
		w.ch <- proposeResult{err: err}
		delete(n.waiters, idx)
	}
}

func (n *Node) processReady() {
	wasLeader := n.isLeader.Load()
	prevTerm := n.term.Load()
	for n.raft.HasReady() {
		rd := n.raft.Ready()
		for _, m := range rd.Messages {
			if n.cfg.Transport != nil {
				n.cfg.Transport.Send(m)
			}
		}
		if rd.Snapshot != nil && n.cfg.Restore != nil {
			if err := n.cfg.Restore(rd.Snapshot.Data); err != nil {
				n.cfg.Logf("ctlplane: replica %d snapshot restore: %v", n.raft.ID(), err)
			} else {
				n.cfg.Logf("ctlplane: replica %d installed snapshot at index %d", n.raft.ID(), rd.Snapshot.LastIndex)
			}
		}
		for _, e := range rd.Committed {
			var res proposeResult
			if n.cfg.Apply != nil && len(e.Data) > 0 {
				res.val, res.err = n.cfg.Apply(e.Data)
			}
			if w, ok := n.waiters[e.Index]; ok {
				delete(n.waiters, e.Index)
				if w.term == e.Term {
					w.ch <- res
				} else {
					w.ch <- proposeResult{err: ErrLostLeadership}
				}
			}
			n.sinceCompact++
		}
		if n.cfg.Snapshot != nil && n.sinceCompact >= n.cfg.CompactEvery {
			n.sinceCompact = 0
			if err := n.raft.Compact(n.raft.applied, n.cfg.Snapshot()); err != nil {
				n.cfg.Logf("ctlplane: replica %d compact: %v", n.raft.ID(), err)
			}
		}
	}

	// Publish role transitions.
	isLeader := n.raft.State() == Leader
	term := n.raft.Term()
	n.isLeader.Store(isLeader)
	n.leader.Store(int64(n.raft.Leader()))
	n.term.Store(term)
	n.gTerm.Set(int64(term))
	n.gCommit.Set(int64(n.raft.Commit()))
	n.gLogBytes.Set(int64(n.raft.LogBytes()))
	if isLeader {
		n.gIsLeader.Set(1)
	} else {
		n.gIsLeader.Set(0)
	}
	if isLeader && (!wasLeader || term != prevTerm) {
		n.cElected.Inc()
		n.cfg.Logf("ctlplane: replica %d elected leader of term %d", n.raft.ID(), term)
		n.emitRole(obs.KindLeaderElected, term)
	}
	if wasLeader && !isLeader {
		n.cStepdown.Inc()
		n.failWaiters(ErrLostLeadership)
		n.cfg.Logf("ctlplane: replica %d lost leadership (term %d)", n.raft.ID(), term)
		n.emitRole(obs.KindLeaderLost, term)
	}
}

func (n *Node) emitRole(kind obs.Kind, term uint64) {
	if !n.cfg.Bus.Enabled() {
		return
	}
	ev := obs.NewEvent(kind, n.cfg.Now())
	ev.Wall = true
	ev.Switch = int32(n.raft.ID())
	ev.Count = int32(term)
	n.cfg.Bus.Emit(ev)
}
