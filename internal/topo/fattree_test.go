package topo

import "testing"

func TestFatTreeCounts(t *testing.T) {
	for _, k := range []int{4, 6, 8, 16} {
		ft, err := NewFatTree(Config{K: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		half := k / 2
		wantEdges := k * half
		wantAggs := k * half
		wantCores := half * half
		wantHosts := k * half * half
		if got := len(ft.NodesOfKind(KindEdge)); got != wantEdges {
			t.Errorf("k=%d: edge switches = %d, want %d", k, got, wantEdges)
		}
		if got := len(ft.NodesOfKind(KindAgg)); got != wantAggs {
			t.Errorf("k=%d: agg switches = %d, want %d", k, got, wantAggs)
		}
		if got := ft.NumCores(); got != wantCores {
			t.Errorf("k=%d: cores = %d, want %d", k, got, wantCores)
		}
		if got := ft.NumHosts(); got != wantHosts {
			t.Errorf("k=%d: hosts = %d, want %d (k^3/4)", k, got, wantHosts)
		}
		// Switch-switch links: edge-agg k*(k/2)^2 plus agg-core k*(k/2)^2,
		// i.e. k^3/2 total (the cable count in Table 2's fat-tree row).
		if got, want := len(ft.SwitchLinkIDs()), k*k*k/2; got != want {
			t.Errorf("k=%d: switch links = %d, want %d (k^3/2)", k, got, want)
		}
	}
}

func TestFatTreeDegrees(t *testing.T) {
	ft, err := NewFatTree(Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	k := 8
	for _, n := range ft.Nodes {
		var want int
		switch n.Kind {
		case KindEdge, KindAgg:
			want = k // k/2 down + k/2 up
		case KindCore:
			want = k // one per pod
		case KindHost:
			want = 1
		}
		if got := ft.Degree(n.ID); got != want {
			t.Errorf("%s: degree = %d, want %d", n.Name(), got, want)
		}
	}
}

func TestFatTreeStructure(t *testing.T) {
	ft, err := NewFatTree(Config{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	half := 3
	// Every edge switch connects to every agg switch in its pod and to no
	// switch outside it.
	for pod := 0; pod < 6; pod++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				if ft.LinkBetween(ft.Edge(pod, e), ft.Agg(pod, a)) == NoLink {
					t.Errorf("E%d,%d not linked to A%d,%d", pod, e, pod, a)
				}
			}
			other := (pod + 1) % 6
			if ft.LinkBetween(ft.Edge(pod, e), ft.Agg(other, 0)) != NoLink {
				t.Errorf("E%d,%d linked to a foreign pod's agg", pod, e)
			}
		}
	}
	// A_{i,s} connects exactly to cores [s*k/2, (s+1)*k/2).
	for pod := 0; pod < 6; pod++ {
		for s := 0; s < half; s++ {
			for c := 0; c < ft.NumCores(); c++ {
				linked := ft.LinkBetween(ft.Agg(pod, s), ft.Core(c)) != NoLink
				want := c/half == s
				if linked != want {
					t.Errorf("A%d,%d <-> C%d: linked=%v, want %v", pod, s, c, linked, want)
				}
			}
		}
	}
	// AggOfCoreInPod agrees with the link structure.
	for c := 0; c < ft.NumCores(); c++ {
		for pod := 0; pod < 6; pod++ {
			a := ft.AggOfCoreInPod(c, pod)
			if ft.LinkBetween(a, ft.Core(c)) == NoLink {
				t.Errorf("AggOfCoreInPod(%d, %d) = %s has no link to C%d", c, pod, ft.Node(a).Name(), c)
			}
		}
	}
}

func TestFatTreeHostsOfEdge(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for pod := 0; pod < 4; pod++ {
		for j := 0; j < 2; j++ {
			for _, h := range ft.HostsOfEdge(pod, j) {
				if seen[h] {
					t.Errorf("host %d listed under two edges", h)
				}
				seen[h] = true
				if ft.EdgeOfHost(h) != ft.Edge(pod, j) {
					t.Errorf("EdgeOfHost(%d) != E%d,%d", h, pod, j)
				}
				if ft.LinkBetween(ft.Host(h), ft.Edge(pod, j)) == NoLink {
					t.Errorf("host %d has no link to its edge switch", h)
				}
			}
		}
	}
	if len(seen) != ft.NumHosts() {
		t.Errorf("HostsOfEdge covered %d hosts, want %d", len(seen), ft.NumHosts())
	}
}

func TestFatTreeRackLevelConfig(t *testing.T) {
	// The paper's failure-study configuration: rack-level endpoints with
	// 10:1 oversubscription at the edge.
	k := 8
	over := 10.0
	hostCap := over * float64(k/2)
	ft, err := NewFatTree(Config{K: k, HostsPerEdge: 1, HostCapacity: hostCap})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ft.NumHosts(), k*k/2; got != want {
		t.Fatalf("rack endpoints = %d, want %d (one per edge switch)", got, want)
	}
	h0 := ft.Host(0)
	l := ft.Link(ft.LinksOf(h0)[0])
	if l.Capacity != hostCap {
		t.Errorf("rack access capacity = %v, want %v", l.Capacity, hostCap)
	}
	// Uplink capacity of an edge switch is (k/2) * 1; the access link is
	// 10x that, i.e. the edge is 10:1 oversubscribed.
	if got := l.Capacity / (float64(k / 2)); got != over {
		t.Errorf("oversubscription = %v, want %v", got, over)
	}
}

func TestABFatTreeWiring(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4, AB: true})
	if err != nil {
		t.Fatal(err)
	}
	half := 2
	// Type A (even) pods use canonical wiring, type B (odd) pods the
	// transposed pattern; every core still has exactly one link per pod.
	for c := 0; c < ft.NumCores(); c++ {
		x, y := c/half, c%half
		for pod := 0; pod < 4; pod++ {
			wantAgg := x
			if pod%2 == 1 {
				wantAgg = y
			}
			for s := 0; s < half; s++ {
				linked := ft.LinkBetween(ft.Agg(pod, s), ft.Core(c)) != NoLink
				if linked != (s == wantAgg) {
					t.Errorf("AB pod %d: A%d,%d <-> C%d linked=%v, want %v", pod, pod, s, c, linked, s == wantAgg)
				}
			}
		}
		if got := ft.Degree(ft.Core(c)); got != 4 {
			t.Errorf("AB core C%d degree = %d, want k", c, got)
		}
	}
}

func TestFatTreeConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 3},
		{K: 0},
		{K: 5},
		{K: 4, HostsPerEdge: -1},
		{K: 4, LinkCapacity: -1},
		{K: 4, HostCapacity: -0.5},
	}
	for _, cfg := range bad {
		if _, err := NewFatTree(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

func TestFatTreeDeterministicIDs(t *testing.T) {
	a, err := NewFatTree(Config{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFatTree(Config{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumLinks() != b.NumLinks() {
		t.Fatal("two builds differ in size")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs between builds: %+v vs %+v", i, a.Nodes[i], b.Nodes[i])
		}
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs between builds", i)
		}
	}
}
