package topo

import (
	"math/rand"
	"sync"
	"testing"
)

func pathsEqual(a, b Path) bool {
	if len(a.Nodes) != len(b.Nodes) || len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return false
		}
	}
	return true
}

// TestPathStoreDifferential is the exactness contract: for every wiring and a
// randomized sample of host pairs, the interned paths must be bit-identical —
// same order, same node and link sequences — to a fresh ECMPPaths enumeration.
func TestPathStoreDifferential(t *testing.T) {
	for _, tc := range []struct {
		k  int
		ab bool
	}{
		{4, false}, {4, true}, {8, false}, {8, true}, {16, false}, {16, true},
	} {
		ft, err := NewFatTree(Config{K: tc.k, AB: tc.ab})
		if err != nil {
			t.Fatal(err)
		}
		ps := ft.PathStore()
		n := ft.NumHosts()
		r := rand.New(rand.NewSource(int64(tc.k) + 100))
		// All pairs at k=4; a random sample at larger k.
		trials := n * (n - 1)
		if tc.k > 4 {
			trials = 500
		}
		for trial := 0; trial < trials; trial++ {
			var src, dst int
			if tc.k == 4 {
				src, dst = trial/(n-1), trial%(n-1)
				if dst >= src {
					dst++
				}
			} else {
				src, dst = r.Intn(n), r.Intn(n)
				if src == dst {
					continue
				}
			}
			fresh, err := ft.ECMPPaths(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			cached, err := ps.Paths(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(fresh) != len(cached) {
				t.Fatalf("k=%d ab=%v pair (%d,%d): %d cached paths, want %d",
					tc.k, tc.ab, src, dst, len(cached), len(fresh))
			}
			for i := range fresh {
				if !pathsEqual(fresh[i], cached[i]) {
					t.Fatalf("k=%d ab=%v pair (%d,%d) path %d differs:\ncached %v\nfresh  %v",
						tc.k, tc.ab, src, dst, i, cached[i], fresh[i])
				}
			}
		}
	}
}

// TestPathStoreIDs checks that PathIDs round-trip through Path and are a pure
// function of the pair, independent of build order.
func TestPathStoreIDs(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	ps := NewPathStore(ft)
	ids, err := ps.IDs(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := ps.Paths(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(paths) {
		t.Fatalf("%d ids, %d paths", len(ids), len(paths))
	}
	for i, id := range ids {
		p, err := ps.Path(id)
		if err != nil {
			t.Fatal(err)
		}
		if !pathsEqual(p, paths[i]) {
			t.Fatalf("id %#x resolves to the wrong path", uint64(id))
		}
	}
	// A second store queried in a different order yields identical IDs.
	ps2 := NewPathStore(ft)
	if _, err := ps2.Paths(3, 7); err != nil {
		t.Fatal(err)
	}
	ids2, err := ps2.IDs(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if ids[i] != ids2[i] {
			t.Fatalf("PathID depends on build order: %#x vs %#x", uint64(ids[i]), uint64(ids2[i]))
		}
	}
	// Path on an unbuilt pair builds it.
	ps3 := NewPathStore(ft)
	if _, err := ps3.Path(ids[0]); err != nil {
		t.Fatal(err)
	}
	// Out-of-range IDs fail cleanly.
	if _, err := ps3.Path(PathID(1) << 60); err == nil {
		t.Fatal("expected error for out-of-range pair index")
	}
	if _, err := ps3.Path(ids[0] | 0xffff); err == nil {
		t.Fatal("expected error for out-of-range rank")
	}
}

// TestPathStoreErrors checks lookups fail with the same errors as ECMPPaths.
func TestPathStoreErrors(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	ps := ft.PathStore()
	for _, pair := range [][2]int{{3, 3}, {-1, 0}, {0, ft.NumHosts()}} {
		_, freshErr := ft.ECMPPaths(pair[0], pair[1])
		_, cachedErr := ps.Paths(pair[0], pair[1])
		if freshErr == nil || cachedErr == nil {
			t.Fatalf("pair %v: expected errors, got fresh=%v cached=%v", pair, freshErr, cachedErr)
		}
		if freshErr.Error() != cachedErr.Error() {
			t.Fatalf("pair %v: error mismatch:\nfresh  %v\ncached %v", pair, freshErr, cachedErr)
		}
	}
}

// TestPathStoreStats checks the pair/path counters and that FatTree.PathStore
// returns one shared instance.
func TestPathStoreStats(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	ps := ft.PathStore()
	if ps != ft.PathStore() {
		t.Fatal("FatTree.PathStore is not a stable singleton")
	}
	if st := ps.Stats(); st.Pairs != 0 || st.Paths != 0 {
		t.Fatalf("fresh store stats = %+v, want zero", st)
	}
	p1, err := ps.Paths(0, 15) // inter-pod: (k/2)^2 = 4 paths
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Paths(0, 15); err != nil { // repeat: no new pair
		t.Fatal(err)
	}
	st := ps.Stats()
	if st.Pairs != 1 || st.Paths != len(p1) {
		t.Fatalf("stats = %+v, want {1 %d}", st, len(p1))
	}
}

// TestInternedPathInvariants covers topo.Path behavior on interned storage:
// Clone independence and membership queries.
func TestInternedPathInvariants(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := ft.PathStore().Paths(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	p := paths[0]
	for _, n := range p.Nodes {
		if !p.Contains(n) {
			t.Fatalf("interned path misses its own node %d", n)
		}
	}
	for _, l := range p.Links {
		if !p.ContainsLink(l) {
			t.Fatalf("interned path misses its own link %d", l)
		}
	}
	if p.Contains(None) || p.ContainsLink(NoLink) {
		t.Fatal("interned path contains sentinels")
	}
	clone := p.Clone()
	clone.Nodes[0] = None
	clone.Links[0] = NoLink
	again, err := ft.PathStore().Paths(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Nodes[0] == None || again[0].Links[0] == NoLink {
		t.Fatal("mutating a clone corrupted interned storage")
	}
	// Appending to a returned path must not clobber the neighboring
	// interned path (full-capacity subslices).
	grown := append(paths[0].Nodes, None)
	_ = grown
	if fresh, _ := ft.ECMPPaths(0, 15); !pathsEqual(fresh[1], paths[1]) {
		t.Fatal("append on one interned path clobbered its neighbor")
	}
}

// TestPathStoreConcurrent proves sweep workers can share one store: many
// goroutines hammer overlapping pairs while the store builds lazily. Run
// under -race this is the data-race proof required by the interning contract.
func TestPathStoreConcurrent(t *testing.T) {
	ft, err := NewFatTree(Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	ps := ft.PathStore()
	n := ft.NumHosts()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				src, dst := r.Intn(n), r.Intn(n)
				if src == dst {
					continue
				}
				paths, err := ps.Paths(src, dst)
				if err != nil {
					errs <- err
					return
				}
				// Read through the shared storage.
				for _, p := range paths {
					if p.Nodes[0] != ft.Host(src) || p.Nodes[len(p.Nodes)-1] != ft.Host(dst) {
						t.Errorf("pair (%d,%d): wrong endpoints", src, dst)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
