package topo

import "fmt"

// Path is a loop-free walk through the topology. Nodes has one more element
// than Links; Links[i] joins Nodes[i] and Nodes[i+1].
type Path struct {
	Nodes []NodeID
	Links []LinkID
}

// Hops returns the number of links on the path.
func (p Path) Hops() int { return len(p.Links) }

// Contains reports whether the path traverses node n.
func (p Path) Contains(n NodeID) bool {
	for _, v := range p.Nodes {
		if v == n {
			return true
		}
	}
	return false
}

// ContainsLink reports whether the path traverses link l.
func (p Path) ContainsLink(l LinkID) bool {
	for _, v := range p.Links {
		if v == l {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	return Path{Nodes: append([]NodeID(nil), p.Nodes...), Links: append([]LinkID(nil), p.Links...)}
}

// buildPath converts a node walk into a Path, resolving link IDs.
func buildPath(t *Topology, nodes ...NodeID) (Path, error) {
	p := Path{Nodes: nodes, Links: make([]LinkID, 0, len(nodes)-1)}
	for i := 0; i+1 < len(nodes); i++ {
		l := t.LinkBetween(nodes[i], nodes[i+1])
		if l == NoLink {
			return Path{}, fmt.Errorf("topo: no link between %s and %s",
				t.Node(nodes[i]).Name(), t.Node(nodes[i+1]).Name())
		}
		p.Links = append(p.Links, l)
	}
	return p, nil
}

// ECMPPaths enumerates all equal-cost shortest paths between two distinct
// hosts, identified by global host index. The paths follow the up-down
// structure of the Clos network: same edge -> 2 hops, same pod -> 4 hops via
// any shared aggregation switch, different pods -> 6 hops via any
// (aggregation, core) pair reachable from the source edge.
//
// Every call re-enumerates and allocates fresh paths; hot paths should use
// the interned PathStore (FatTree.PathStore), which returns bit-identical
// paths without allocating.
func (ft *FatTree) ECMPPaths(srcHost, dstHost int) ([]Path, error) {
	if srcHost == dstHost {
		return nil, fmt.Errorf("topo: ECMPPaths: src and dst are the same host %d", srcHost)
	}
	if srcHost < 0 || srcHost >= len(ft.hosts) || dstHost < 0 || dstHost >= len(ft.hosts) {
		return nil, fmt.Errorf("topo: ECMPPaths(%d, %d): host index out of range", srcHost, dstHost)
	}
	s, d := ft.hosts[srcHost], ft.hosts[dstHost]
	es, ed := ft.hostEdge[srcHost], ft.hostEdge[dstHost]

	if es == ed {
		p, err := buildPath(ft.Topology, s, es, d)
		if err != nil {
			return nil, err
		}
		return []Path{p}, nil
	}

	sn, dn := ft.Node(es), ft.Node(ed)
	half := ft.Cfg.K / 2
	if sn.Pod == dn.Pod {
		paths := make([]Path, 0, half)
		for a := 0; a < half; a++ {
			p, err := buildPath(ft.Topology, s, es, ft.agg[sn.Pod][a], ed, d)
			if err != nil {
				return nil, err
			}
			paths = append(paths, p)
		}
		return paths, nil
	}

	paths := make([]Path, 0, half*half)
	for a := 0; a < half; a++ {
		up := ft.agg[sn.Pod][a]
		for _, c := range ft.CoreIndicesOfAgg(sn.Pod, a) {
			down := ft.AggOfCoreInPod(c, dn.Pod)
			p, err := buildPath(ft.Topology, s, es, up, ft.core[c], down, ed, d)
			if err != nil {
				return nil, err
			}
			paths = append(paths, p)
		}
	}
	return paths, nil
}

// bitset is a growable bit vector over a dense non-negative index space.
type bitset []uint64

func (b bitset) get(i int) bool {
	w := i >> 6
	// The uint cast folds negative indices (NodeID None / NoLink sentinels)
	// into the out-of-range branch: they are simply never blocked.
	return uint(w) < uint(len(b)) && b[w]&(1<<(uint(i)&63)) != 0
}

func (b *bitset) set(i int) {
	if i < 0 {
		panic(fmt.Sprintf("topo: bitset: negative index %d", i))
	}
	w := i >> 6
	for w >= len(*b) {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

func (b bitset) clear(i int) {
	w := i >> 6
	if uint(w) < uint(len(b)) {
		b[w] &^= 1 << (uint(i) & 63)
	}
}

func (b bitset) reset() {
	for i := range b {
		b[i] = 0
	}
}

// Blocked reports which topology elements are unavailable to a path search.
// The sets are bitsets over the dense NodeID/LinkID spaces, so membership
// tests are branch-and-mask instead of map lookups and a set can be Reset
// and reused across trials without reallocating. A nil *Blocked blocks
// nothing and is valid for every query method.
type Blocked struct {
	nodes bitset
	links bitset
}

// NewBlocked returns an empty Blocked set.
func NewBlocked() *Blocked { return &Blocked{} }

// BlockNode marks a node (and implicitly all its links) unusable.
func (b *Blocked) BlockNode(n NodeID) { b.nodes.set(int(n)) }

// BlockLink marks a link unusable.
func (b *Blocked) BlockLink(l LinkID) { b.links.set(int(l)) }

// UnblockNode clears a node block.
func (b *Blocked) UnblockNode(n NodeID) { b.nodes.clear(int(n)) }

// UnblockLink clears a link block.
func (b *Blocked) UnblockLink(l LinkID) { b.links.clear(int(l)) }

// NodeBlocked reports whether node n is blocked.
func (b *Blocked) NodeBlocked(n NodeID) bool { return b != nil && b.nodes.get(int(n)) }

// LinkBlocked reports whether link l is blocked.
func (b *Blocked) LinkBlocked(l LinkID) bool { return b != nil && b.links.get(int(l)) }

// Reset clears every block, keeping the backing storage for reuse.
func (b *Blocked) Reset() {
	b.nodes.reset()
	b.links.reset()
}

// CopyFrom makes b an exact copy of src (nil src clears b), reusing b's
// storage. It replaces the per-element copy loops reroute scratch sets used
// to need with two word-level copies.
func (b *Blocked) CopyFrom(src *Blocked) {
	if src == nil {
		b.nodes = b.nodes[:0]
		b.links = b.links[:0]
		return
	}
	b.nodes = append(b.nodes[:0], src.nodes...)
	b.links = append(b.links[:0], src.links...)
}

// PathOK reports whether p avoids every blocked node and link.
func (b *Blocked) PathOK(p Path) bool {
	if b == nil {
		return true
	}
	for _, n := range p.Nodes {
		if b.nodes.get(int(n)) {
			return false
		}
	}
	for _, l := range p.Links {
		if b.links.get(int(l)) {
			return false
		}
	}
	return true
}

// bfsScratch is the pooled per-search state of ShortestPath. Visited marks
// are epoch stamps, so reusing the scratch costs one counter increment
// instead of clearing the arrays.
type bfsScratch struct {
	prevNode []NodeID
	prevLink []LinkID
	seen     []uint32
	epoch    uint32
	queue    []NodeID
}

// getBFSScratch checks a scratch out of the topology's pool, sized for the
// current node count and with a fresh epoch.
func (t *Topology) getBFSScratch() *bfsScratch {
	s, _ := t.bfsPool.Get().(*bfsScratch)
	if s == nil {
		s = &bfsScratch{}
	}
	if len(s.seen) < len(t.Nodes) {
		s.prevNode = make([]NodeID, len(t.Nodes))
		s.prevLink = make([]LinkID, len(t.Nodes))
		s.seen = make([]uint32, len(t.Nodes))
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could alias the new epoch
		for i := range s.seen {
			s.seen[i] = 0
		}
		s.epoch = 1
	}
	s.queue = s.queue[:0]
	return s
}

// ShortestPath runs a breadth-first search from a to z avoiding blocked
// elements. Endpoints themselves must not be blocked. It returns ok=false if
// z is unreachable. The search scratch is pooled per topology; only the
// returned path allocates.
func (t *Topology) ShortestPath(a, z NodeID, blocked *Blocked) (Path, bool) {
	if blocked.NodeBlocked(a) || blocked.NodeBlocked(z) {
		return Path{}, false
	}
	if a == z {
		return Path{Nodes: []NodeID{a}}, true
	}
	s := t.getBFSScratch()
	defer t.bfsPool.Put(s)
	s.seen[a] = s.epoch
	s.queue = append(s.queue, a)
	for qi := 0; qi < len(s.queue); qi++ {
		cur := s.queue[qi]
		for _, lid := range t.adj[cur] {
			if blocked.LinkBlocked(lid) {
				continue
			}
			next := t.Links[lid].Other(cur)
			if s.seen[next] == s.epoch || blocked.NodeBlocked(next) {
				continue
			}
			s.seen[next] = s.epoch
			s.prevNode[next] = cur
			s.prevLink[next] = lid
			if next == z {
				return tracePath(s.prevNode, s.prevLink, a, z), true
			}
			s.queue = append(s.queue, next)
		}
	}
	return Path{}, false
}

// tracePath reconstructs the found path into exact-size fresh slices (the
// result escapes to the caller; the scratch does not).
func tracePath(prevNode []NodeID, prevLink []LinkID, a, z NodeID) Path {
	n := 1
	for cur := z; cur != a; cur = prevNode[cur] {
		n++
	}
	nodes := make([]NodeID, n)
	links := make([]LinkID, n-1)
	nodes[0] = a
	i := n - 1
	for cur := z; cur != a; cur = prevNode[cur] {
		nodes[i] = cur
		links[i-1] = prevLink[cur]
		i--
	}
	return Path{Nodes: nodes, Links: links}
}

// Connected reports whether z is reachable from a avoiding blocked elements.
func (t *Topology) Connected(a, z NodeID, blocked *Blocked) bool {
	_, ok := t.ShortestPath(a, z, blocked)
	return ok
}
