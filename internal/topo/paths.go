package topo

import "fmt"

// Path is a loop-free walk through the topology. Nodes has one more element
// than Links; Links[i] joins Nodes[i] and Nodes[i+1].
type Path struct {
	Nodes []NodeID
	Links []LinkID
}

// Hops returns the number of links on the path.
func (p Path) Hops() int { return len(p.Links) }

// Contains reports whether the path traverses node n.
func (p Path) Contains(n NodeID) bool {
	for _, v := range p.Nodes {
		if v == n {
			return true
		}
	}
	return false
}

// ContainsLink reports whether the path traverses link l.
func (p Path) ContainsLink(l LinkID) bool {
	for _, v := range p.Links {
		if v == l {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	return Path{Nodes: append([]NodeID(nil), p.Nodes...), Links: append([]LinkID(nil), p.Links...)}
}

// buildPath converts a node walk into a Path, resolving link IDs.
func buildPath(t *Topology, nodes ...NodeID) (Path, error) {
	p := Path{Nodes: nodes, Links: make([]LinkID, 0, len(nodes)-1)}
	for i := 0; i+1 < len(nodes); i++ {
		l := t.LinkBetween(nodes[i], nodes[i+1])
		if l == NoLink {
			return Path{}, fmt.Errorf("topo: no link between %s and %s",
				t.Node(nodes[i]).Name(), t.Node(nodes[i+1]).Name())
		}
		p.Links = append(p.Links, l)
	}
	return p, nil
}

// ECMPPaths enumerates all equal-cost shortest paths between two distinct
// hosts, identified by global host index. The paths follow the up-down
// structure of the Clos network: same edge -> 2 hops, same pod -> 4 hops via
// any shared aggregation switch, different pods -> 6 hops via any
// (aggregation, core) pair reachable from the source edge.
func (ft *FatTree) ECMPPaths(srcHost, dstHost int) ([]Path, error) {
	if srcHost == dstHost {
		return nil, fmt.Errorf("topo: ECMPPaths: src and dst are the same host %d", srcHost)
	}
	if srcHost < 0 || srcHost >= len(ft.hosts) || dstHost < 0 || dstHost >= len(ft.hosts) {
		return nil, fmt.Errorf("topo: ECMPPaths(%d, %d): host index out of range", srcHost, dstHost)
	}
	s, d := ft.hosts[srcHost], ft.hosts[dstHost]
	es, ed := ft.hostEdge[srcHost], ft.hostEdge[dstHost]

	if es == ed {
		p, err := buildPath(ft.Topology, s, es, d)
		if err != nil {
			return nil, err
		}
		return []Path{p}, nil
	}

	sn, dn := ft.Node(es), ft.Node(ed)
	half := ft.Cfg.K / 2
	if sn.Pod == dn.Pod {
		paths := make([]Path, 0, half)
		for a := 0; a < half; a++ {
			p, err := buildPath(ft.Topology, s, es, ft.agg[sn.Pod][a], ed, d)
			if err != nil {
				return nil, err
			}
			paths = append(paths, p)
		}
		return paths, nil
	}

	paths := make([]Path, 0, half*half)
	for a := 0; a < half; a++ {
		up := ft.agg[sn.Pod][a]
		for _, c := range ft.CoreIndicesOfAgg(sn.Pod, a) {
			down := ft.AggOfCoreInPod(c, dn.Pod)
			p, err := buildPath(ft.Topology, s, es, up, ft.core[c], down, ed, d)
			if err != nil {
				return nil, err
			}
			paths = append(paths, p)
		}
	}
	return paths, nil
}

// Blocked reports which topology elements are unavailable to a path search.
type Blocked struct {
	Nodes map[NodeID]bool
	Links map[LinkID]bool
}

// NewBlocked returns an empty Blocked set.
func NewBlocked() *Blocked {
	return &Blocked{Nodes: make(map[NodeID]bool), Links: make(map[LinkID]bool)}
}

// BlockNode marks a node (and implicitly all its links) unusable.
func (b *Blocked) BlockNode(n NodeID) { b.Nodes[n] = true }

// BlockLink marks a link unusable.
func (b *Blocked) BlockLink(l LinkID) { b.Links[l] = true }

// PathOK reports whether p avoids every blocked node and link.
func (b *Blocked) PathOK(p Path) bool {
	if b == nil {
		return true
	}
	for _, n := range p.Nodes {
		if b.Nodes[n] {
			return false
		}
	}
	for _, l := range p.Links {
		if b.Links[l] {
			return false
		}
	}
	return true
}

// ShortestPath runs a breadth-first search from a to z avoiding blocked
// elements. Endpoints themselves must not be blocked. It returns ok=false if
// z is unreachable.
func (t *Topology) ShortestPath(a, z NodeID, blocked *Blocked) (Path, bool) {
	if blocked != nil && (blocked.Nodes[a] || blocked.Nodes[z]) {
		return Path{}, false
	}
	if a == z {
		return Path{Nodes: []NodeID{a}}, true
	}
	prevNode := make([]NodeID, len(t.Nodes))
	prevLink := make([]LinkID, len(t.Nodes))
	seen := make([]bool, len(t.Nodes))
	for i := range prevNode {
		prevNode[i] = None
		prevLink[i] = NoLink
	}
	queue := []NodeID{a}
	seen[a] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, lid := range t.adj[cur] {
			if blocked != nil && blocked.Links[lid] {
				continue
			}
			next := t.Links[lid].Other(cur)
			if seen[next] || (blocked != nil && blocked.Nodes[next]) {
				continue
			}
			seen[next] = true
			prevNode[next] = cur
			prevLink[next] = lid
			if next == z {
				return tracePath(prevNode, prevLink, a, z), true
			}
			queue = append(queue, next)
		}
	}
	return Path{}, false
}

func tracePath(prevNode []NodeID, prevLink []LinkID, a, z NodeID) Path {
	var nodes []NodeID
	var links []LinkID
	for cur := z; cur != a; cur = prevNode[cur] {
		nodes = append(nodes, cur)
		links = append(links, prevLink[cur])
	}
	nodes = append(nodes, a)
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return Path{Nodes: nodes, Links: links}
}

// Connected reports whether z is reachable from a avoiding blocked elements.
func (t *Topology) Connected(a, z NodeID, blocked *Blocked) bool {
	_, ok := t.ShortestPath(a, z, blocked)
	return ok
}
