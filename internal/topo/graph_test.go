package topo

import "testing"

func TestAddLinkErrors(t *testing.T) {
	var g Topology
	a := g.AddNode(KindEdge, 0, 0)
	b := g.AddNode(KindAgg, 0, 0)

	if _, err := g.AddLink(a, a, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddLink(a, 99, 1); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := g.AddLink(a, b, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := g.AddLink(a, b, -2); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := g.AddLink(a, b, 1); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	if _, err := g.AddLink(b, a, 1); err == nil {
		t.Error("duplicate link (reversed order) accepted")
	}
}

func TestLinkBetweenAndOther(t *testing.T) {
	var g Topology
	a := g.AddNode(KindEdge, 0, 0)
	b := g.AddNode(KindAgg, 0, 0)
	c := g.AddNode(KindCore, -1, 0)
	ab, err := g.AddLink(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.LinkBetween(a, b); got != ab {
		t.Errorf("LinkBetween(a,b) = %d, want %d", got, ab)
	}
	if got := g.LinkBetween(b, a); got != ab {
		t.Errorf("LinkBetween(b,a) = %d, want %d", got, ab)
	}
	if got := g.LinkBetween(a, c); got != NoLink {
		t.Errorf("LinkBetween(a,c) = %d, want NoLink", got)
	}
	if got := g.LinkBetween(a, 1000); got != NoLink {
		t.Errorf("LinkBetween out of range = %d, want NoLink", got)
	}
	l := g.Link(ab)
	if l.Other(a) != b || l.Other(b) != a {
		t.Error("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	l.Other(c)
}

func TestNeighborsAndDegree(t *testing.T) {
	var g Topology
	a := g.AddNode(KindEdge, 0, 0)
	b := g.AddNode(KindAgg, 0, 0)
	c := g.AddNode(KindAgg, 0, 1)
	mustLink(t, &g, a, b)
	mustLink(t, &g, a, c)
	if g.Degree(a) != 2 || g.Degree(b) != 1 {
		t.Errorf("degrees = %d, %d; want 2, 1", g.Degree(a), g.Degree(b))
	}
	nbrs := g.Neighbors(nil, a)
	if len(nbrs) != 2 {
		t.Fatalf("Neighbors(a) = %v, want 2 entries", nbrs)
	}
	seen := map[NodeID]bool{nbrs[0]: true, nbrs[1]: true}
	if !seen[b] || !seen[c] {
		t.Errorf("Neighbors(a) = %v, want {b, c}", nbrs)
	}
}

func TestNodesOfKindAndSwitchIDs(t *testing.T) {
	var g Topology
	e := g.AddNode(KindEdge, 0, 0)
	h := g.AddNode(KindHost, 0, 0)
	a := g.AddNode(KindAgg, 0, 0)
	mustLink(t, &g, h, e)
	mustLink(t, &g, e, a)

	if got := g.NodesOfKind(KindHost); len(got) != 1 || got[0] != h {
		t.Errorf("NodesOfKind(host) = %v", got)
	}
	sw := g.SwitchIDs()
	if len(sw) != 2 {
		t.Fatalf("SwitchIDs = %v, want 2 switches", sw)
	}
	sl := g.SwitchLinkIDs()
	if len(sl) != 1 {
		t.Fatalf("SwitchLinkIDs = %v, want exactly the edge-agg link", sl)
	}
	if l := g.Link(sl[0]); l.A != e && l.B != e {
		t.Errorf("switch link %v does not touch the edge switch", l)
	}
}

func TestKindHelpers(t *testing.T) {
	cases := []struct {
		k    Kind
		str  string
		swch bool
	}{
		{KindHost, "host", false},
		{KindEdge, "edge", true},
		{KindAgg, "agg", true},
		{KindCore, "core", true},
	}
	for _, c := range cases {
		if c.k.String() != c.str {
			t.Errorf("%v.String() = %q, want %q", c.k, c.k.String(), c.str)
		}
		if c.k.IsSwitch() != c.swch {
			t.Errorf("%v.IsSwitch() = %v, want %v", c.k, c.k.IsSwitch(), c.swch)
		}
	}
}

func TestNodeName(t *testing.T) {
	cases := []struct {
		n    Node
		want string
	}{
		{Node{Kind: KindHost, Index: 7}, "H7"},
		{Node{Kind: KindEdge, Pod: 1, Index: 0}, "E1,0"},
		{Node{Kind: KindAgg, Pod: 3, Index: 2}, "A3,2"},
		{Node{Kind: KindCore, Index: 5}, "C5"},
	}
	for _, c := range cases {
		if got := c.n.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func mustLink(t *testing.T, g *Topology, a, b NodeID) LinkID {
	t.Helper()
	id, err := g.AddLink(a, b, 1)
	if err != nil {
		t.Fatalf("AddLink(%d, %d): %v", a, b, err)
	}
	return id
}
