package topo

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PathID identifies one interned ECMP path within a PathStore. The encoding
// is (ordered host-pair index << pathRankBits) | rank, where rank is the
// path's position in the pair's ECMP enumeration order — so IDs are a pure
// function of the topology and the lookup arguments, independent of the
// order in which pairs were first requested (or which goroutine built them).
type PathID uint64

// pathRankBits is the low-bit budget for the per-pair path rank. A k-ary
// fat-tree has at most (k/2)^2 equal-cost paths per pair, so 16 bits cover
// every k up to 512.
const pathRankBits = 16

// PathStore interns the ECMP path sets of a fat-tree: each ordered host
// pair's equal-cost paths are enumerated once, stored in shared backing
// slabs, and handed out as immutable views. Lookups after the first are
// lock-free and allocation-free — the hot-path contract ECMP routing and the
// reroute strategies rely on during failure sweeps.
//
// Interning exploits fat-tree symmetry: the interior of every path (source
// edge switch through the agg/core pattern to the destination edge switch)
// depends only on the (src-edge, dst-edge) class, not on which hosts under
// those edges are talking. The store enumerates each class once and stamps
// per-pair paths from the class's interior plus the pair's two access links,
// so the expensive graph walk runs once per class rather than once per pair
// (and never at lookup time).
//
// Exactness contract: Paths(src, dst) returns paths bit-identical — same
// order, same node and link sequences — to a fresh FatTree.ECMPPaths
// enumeration. pathstore_test.go enforces this differentially across
// topology sizes and wirings.
//
// The returned paths alias interned storage and must not be mutated; use
// Path.Clone for a private copy. A single store may be shared by any number
// of goroutines.
type PathStore struct {
	ft       *FatTree
	numHosts int

	// pairs[src*numHosts+dst] holds the pair's interned paths once built.
	// Reads are lock-free atomic loads; builds double-check under mu.
	pairs []atomic.Pointer[pairEntry]

	mu      sync.Mutex
	classes map[classKey]*classEntry

	builtPairs    atomic.Int64
	internedPaths atomic.Int64
}

// classKey identifies an edge-pair equivalence class.
type classKey struct{ es, ed NodeID }

// classEntry is the host-independent interior of one class: every equal-cost
// src-edge → ... → dst-edge segment, in ECMPPaths enumeration order. All
// segments of a class have equal length (the paths are equal-cost).
type classEntry struct {
	nodes [][]NodeID
	links [][]LinkID
}

// pairEntry is one ordered host pair's interned path set.
type pairEntry struct {
	paths []Path
	ids   []PathID
}

// NewPathStore returns an empty store over ft. Paths are built lazily on
// first lookup; FatTree.PathStore returns a per-topology shared instance.
func NewPathStore(ft *FatTree) *PathStore {
	n := ft.NumHosts()
	return &PathStore{
		ft:       ft,
		numHosts: n,
		pairs:    make([]atomic.Pointer[pairEntry], n*n),
		classes:  make(map[classKey]*classEntry),
	}
}

// checkHostPair validates a host-pair lookup with the exact errors
// ECMPPaths produces, so interned and fresh enumeration are interchangeable.
func (ps *PathStore) checkHostPair(srcHost, dstHost int) error {
	if srcHost == dstHost {
		return fmt.Errorf("topo: ECMPPaths: src and dst are the same host %d", srcHost)
	}
	if srcHost < 0 || srcHost >= ps.numHosts || dstHost < 0 || dstHost >= ps.numHosts {
		return fmt.Errorf("topo: ECMPPaths(%d, %d): host index out of range", srcHost, dstHost)
	}
	return nil
}

// Paths returns the interned ECMP path set for the ordered host pair,
// bit-identical to FatTree.ECMPPaths. The slice and the paths it holds are
// shared and immutable. After the pair's first lookup the call is
// allocation-free.
func (ps *PathStore) Paths(srcHost, dstHost int) ([]Path, error) {
	e, err := ps.entry(srcHost, dstHost)
	if err != nil {
		return nil, err
	}
	return e.paths, nil
}

// IDs returns the pair's path identifiers, parallel to Paths.
func (ps *PathStore) IDs(srcHost, dstHost int) ([]PathID, error) {
	e, err := ps.entry(srcHost, dstHost)
	if err != nil {
		return nil, err
	}
	return e.ids, nil
}

// Path resolves an interned path by ID (building its pair if needed).
func (ps *PathStore) Path(id PathID) (Path, error) {
	idx := int(id >> pathRankBits)
	rank := int(id & (1<<pathRankBits - 1))
	if idx < 0 || idx >= len(ps.pairs) {
		return Path{}, fmt.Errorf("topo: PathID %#x: pair index out of range", uint64(id))
	}
	e, err := ps.entry(idx/ps.numHosts, idx%ps.numHosts)
	if err != nil {
		return Path{}, err
	}
	if rank >= len(e.paths) {
		return Path{}, fmt.Errorf("topo: PathID %#x: rank %d out of range (%d paths)", uint64(id), rank, len(e.paths))
	}
	return e.paths[rank], nil
}

func (ps *PathStore) entry(srcHost, dstHost int) (*pairEntry, error) {
	if err := ps.checkHostPair(srcHost, dstHost); err != nil {
		return nil, err
	}
	idx := srcHost*ps.numHosts + dstHost
	if e := ps.pairs[idx].Load(); e != nil {
		return e, nil
	}
	return ps.build(idx, srcHost, dstHost)
}

// build materializes one pair's path set under the store lock: resolve the
// pair's class interior (enumerating it on the class's first appearance),
// then stamp the pair's endpoints and access links into fresh slabs.
func (ps *PathStore) build(idx, srcHost, dstHost int) (*pairEntry, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if e := ps.pairs[idx].Load(); e != nil {
		return e, nil
	}
	ft := ps.ft
	es, ed := ft.hostEdge[srcHost], ft.hostEdge[dstHost]
	cls, err := ps.class(es, ed, srcHost, dstHost)
	if err != nil {
		return nil, err
	}
	m := len(cls.nodes)
	if m == 0 || m >= 1<<pathRankBits {
		return nil, fmt.Errorf("topo: PathStore: %d paths for pair (%d, %d) outside the PathID rank range", m, srcHost, dstHost)
	}
	s, d := ft.hosts[srcHost], ft.hosts[dstHost]
	sl, dl := ft.LinkBetween(s, es), ft.LinkBetween(d, ed)
	if sl == NoLink || dl == NoLink {
		return nil, fmt.Errorf("topo: PathStore: host (%d, %d) missing access link", srcHost, dstHost)
	}
	// One slab per pair; each path gets a full-capacity subslice so an
	// (erroneous) append on a returned path cannot clobber its neighbor.
	nn, nl := len(cls.nodes[0])+2, len(cls.links[0])+2
	nodesSlab := make([]NodeID, m*nn)
	linksSlab := make([]LinkID, m*nl)
	e := &pairEntry{paths: make([]Path, m), ids: make([]PathID, m)}
	for i := 0; i < m; i++ {
		nv := nodesSlab[i*nn : (i+1)*nn : (i+1)*nn]
		lv := linksSlab[i*nl : (i+1)*nl : (i+1)*nl]
		nv[0] = s
		copy(nv[1:], cls.nodes[i])
		nv[nn-1] = d
		lv[0] = sl
		copy(lv[1:], cls.links[i])
		lv[nl-1] = dl
		e.paths[i] = Path{Nodes: nv, Links: lv}
		e.ids[i] = PathID(uint64(idx)<<pathRankBits | uint64(i))
	}
	ps.builtPairs.Add(1)
	ps.internedPaths.Add(int64(m))
	ps.pairs[idx].Store(e)
	return e, nil
}

// class resolves the (es, ed) interior, enumerating it from the requesting
// pair's fresh ECMPPaths on first use — stripping the pair-specific endpoints
// leaves exactly the class-invariant interior, so exactness holds by
// construction rather than by a parallel reimplementation of the wiring
// rules. Callers hold ps.mu.
func (ps *PathStore) class(es, ed NodeID, srcHost, dstHost int) (*classEntry, error) {
	key := classKey{es, ed}
	if c, ok := ps.classes[key]; ok {
		return c, nil
	}
	fresh, err := ps.ft.ECMPPaths(srcHost, dstHost)
	if err != nil {
		return nil, err
	}
	c := &classEntry{nodes: make([][]NodeID, len(fresh)), links: make([][]LinkID, len(fresh))}
	for i, p := range fresh {
		c.nodes[i] = p.Nodes[1 : len(p.Nodes)-1]
		c.links[i] = p.Links[1 : len(p.Links)-1]
	}
	ps.classes[key] = c
	return c, nil
}

// PathStoreStats summarizes a store's interned state.
type PathStoreStats struct {
	// Pairs is the number of ordered host pairs materialized so far.
	Pairs int
	// Paths is the total number of interned paths across those pairs.
	Paths int
}

// Stats reports how much of the pair space has been materialized.
func (ps *PathStore) Stats() PathStoreStats {
	return PathStoreStats{
		Pairs: int(ps.builtPairs.Load()),
		Paths: int(ps.internedPaths.Load()),
	}
}
