package topo

import "testing"

func TestECMPPathCounts(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 2 hosts per edge, 2 edges per pod, 4 hosts per pod.
	cases := []struct {
		src, dst  int
		wantPaths int
		wantHops  int
	}{
		{0, 1, 1, 2},  // same edge
		{0, 2, 2, 4},  // same pod, different edge: k/2 agg choices
		{0, 4, 4, 6},  // different pod: (k/2)^2 core choices
		{1, 15, 4, 6}, // different pod, far corner
	}
	for _, c := range cases {
		paths, err := ft.ECMPPaths(c.src, c.dst)
		if err != nil {
			t.Fatalf("ECMPPaths(%d, %d): %v", c.src, c.dst, err)
		}
		if len(paths) != c.wantPaths {
			t.Errorf("ECMPPaths(%d, %d): %d paths, want %d", c.src, c.dst, len(paths), c.wantPaths)
		}
		for _, p := range paths {
			if p.Hops() != c.wantHops {
				t.Errorf("ECMPPaths(%d, %d): path with %d hops, want %d", c.src, c.dst, p.Hops(), c.wantHops)
			}
			if p.Nodes[0] != ft.Host(c.src) || p.Nodes[len(p.Nodes)-1] != ft.Host(c.dst) {
				t.Errorf("ECMPPaths(%d, %d): path endpoints wrong", c.src, c.dst)
			}
		}
	}
}

func TestECMPPathsDistinct(t *testing.T) {
	ft, err := NewFatTree(Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := ft.ECMPPaths(0, ft.NumHosts()-1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 16; len(paths) != want { // (k/2)^2
		t.Fatalf("paths = %d, want %d", len(paths), want)
	}
	// All inter-pod paths must route through distinct cores.
	cores := make(map[NodeID]bool)
	for _, p := range paths {
		var core NodeID = None
		for _, n := range p.Nodes {
			if ft.Node(n).Kind == KindCore {
				core = n
			}
		}
		if core == None {
			t.Fatal("inter-pod path without a core hop")
		}
		if cores[core] {
			t.Errorf("core %s appears on two ECMP paths", ft.Node(core).Name())
		}
		cores[core] = true
	}
}

func TestECMPPathsErrors(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ft.ECMPPaths(0, 0); err == nil {
		t.Error("same-host path accepted")
	}
	if _, err := ft.ECMPPaths(-1, 3); err == nil {
		t.Error("negative host index accepted")
	}
	if _, err := ft.ECMPPaths(0, ft.NumHosts()); err == nil {
		t.Error("out-of-range host index accepted")
	}
}

func TestECMPPathsABFatTree(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4, AB: true})
	if err != nil {
		t.Fatal(err)
	}
	// The AB wiring must still provide (k/2)^2 valid 6-hop inter-pod paths.
	for _, dst := range []int{4, 8, 12} {
		paths, err := ft.ECMPPaths(0, dst)
		if err != nil {
			t.Fatalf("ECMPPaths(0, %d): %v", dst, err)
		}
		if len(paths) != 4 {
			t.Errorf("AB ECMPPaths(0, %d) = %d paths, want 4", dst, len(paths))
		}
		for _, p := range paths {
			if p.Hops() != 6 {
				t.Errorf("AB inter-pod path hops = %d, want 6", p.Hops())
			}
		}
	}
}

func TestShortestPathBasics(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := ft.Host(0), ft.Host(15)
	p, ok := ft.ShortestPath(src, dst, nil)
	if !ok {
		t.Fatal("no path found in a healthy fat-tree")
	}
	if p.Hops() != 6 {
		t.Errorf("shortest inter-pod path = %d hops, want 6", p.Hops())
	}
	if p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst {
		t.Error("path endpoints wrong")
	}
	// Links must actually join consecutive nodes.
	for i, lid := range p.Links {
		l := ft.Link(lid)
		if !(l.A == p.Nodes[i] && l.B == p.Nodes[i+1]) && !(l.B == p.Nodes[i] && l.A == p.Nodes[i+1]) {
			t.Errorf("link %d does not join nodes %d and %d", lid, p.Nodes[i], p.Nodes[i+1])
		}
	}
	same, ok := ft.ShortestPath(src, src, nil)
	if !ok || same.Hops() != 0 {
		t.Error("path to self should be the trivial path")
	}
}

func TestShortestPathAvoidsBlocked(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := ft.Host(0), ft.Host(4) // pods 0 and 1

	// Block every core except C0: paths must use C0.
	b := NewBlocked()
	for c := 1; c < ft.NumCores(); c++ {
		b.BlockNode(ft.Core(c))
	}
	p, ok := ft.ShortestPath(src, dst, b)
	if !ok {
		t.Fatal("unreachable with one core alive")
	}
	if !p.Contains(ft.Core(0)) {
		t.Error("path does not use the only live core")
	}

	// Block all cores: inter-pod traffic is cut.
	b.BlockNode(ft.Core(0))
	if _, ok := ft.ShortestPath(src, dst, b); ok {
		t.Error("path found with all cores dead")
	}
	if ft.Connected(src, dst, b) {
		t.Error("Connected=true with all cores dead")
	}

	// Intra-pod traffic still flows.
	if !ft.Connected(src, ft.Host(2), b) {
		t.Error("intra-pod traffic should survive core failures")
	}
}

func TestShortestPathBlockedLink(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := ft.Host(0), ft.Host(1) // same edge
	b := NewBlocked()
	b.BlockLink(ft.LinksOf(src)[0]) // cut the host's access link
	if _, ok := ft.ShortestPath(src, dst, b); ok {
		t.Error("path found across a blocked access link")
	}
	// Blocking an endpoint makes everything unreachable.
	b2 := NewBlocked()
	b2.BlockNode(src)
	if _, ok := ft.ShortestPath(src, dst, b2); ok {
		t.Error("path found from a blocked endpoint")
	}
}

func TestBlockedPathOK(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := ft.ECMPPaths(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := paths[0]
	if !(*Blocked)(nil).PathOK(p) {
		t.Error("nil Blocked should allow all paths")
	}
	b := NewBlocked()
	if !b.PathOK(p) {
		t.Error("empty Blocked rejected a path")
	}
	b.BlockNode(p.Nodes[2])
	if b.PathOK(p) {
		t.Error("path through a blocked node accepted")
	}
	b2 := NewBlocked()
	b2.BlockLink(p.Links[1])
	if b2.PathOK(p) {
		t.Error("path through a blocked link accepted")
	}
}

func TestPathHelpers(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := ft.ECMPPaths(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	p := paths[0]
	if !p.Contains(p.Nodes[3]) {
		t.Error("Contains missed an on-path node")
	}
	if p.Contains(ft.Host(7)) {
		t.Error("Contains matched an off-path node")
	}
	if !p.ContainsLink(p.Links[0]) {
		t.Error("ContainsLink missed an on-path link")
	}
	clone := p.Clone()
	clone.Nodes[0] = None
	clone.Links[0] = NoLink
	if p.Nodes[0] == None || p.Links[0] == NoLink {
		t.Error("Clone shares backing arrays with the original")
	}
}
