package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// unionFind is the reference connectivity oracle for BFS properties.
type unionFind struct{ parent []int }

func newUF(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) { u.parent[u.find(a)] = u.find(b) }

// TestQuickShortestPathMatchesReachability: on random graphs with random
// blocked sets, ShortestPath succeeds exactly when the endpoints are in the
// same component of the surviving graph, and any returned path is valid and
// avoids blocked elements.
func TestQuickShortestPathMatchesReachability(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(14)
		g := &Topology{}
		for i := 0; i < n; i++ {
			g.AddNode(KindEdge, 0, i)
		}
		// Random edge set.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					if _, err := g.AddLink(NodeID(i), NodeID(j), 1); err != nil {
						return false
					}
				}
			}
		}
		blocked := NewBlocked()
		for i := 0; i < n; i++ {
			if r.Intn(5) == 0 {
				blocked.BlockNode(NodeID(i))
			}
		}
		for _, l := range g.Links {
			if r.Intn(5) == 0 {
				blocked.BlockLink(l.ID)
			}
		}
		// Reference connectivity over surviving elements.
		uf := newUF(n)
		for _, l := range g.Links {
			if blocked.LinkBlocked(l.ID) || blocked.NodeBlocked(l.A) || blocked.NodeBlocked(l.B) {
				continue
			}
			uf.union(int(l.A), int(l.B))
		}
		a, z := NodeID(r.Intn(n)), NodeID(r.Intn(n))
		p, ok := g.ShortestPath(a, z, blocked)
		wantOK := !blocked.NodeBlocked(a) && !blocked.NodeBlocked(z) && uf.find(int(a)) == uf.find(int(z))
		if ok != wantOK {
			return false
		}
		if !ok {
			return true
		}
		// Path validity.
		if p.Nodes[0] != a || p.Nodes[len(p.Nodes)-1] != z {
			return false
		}
		if !blocked.PathOK(p) {
			return false
		}
		for i, lid := range p.Links {
			l := g.Link(lid)
			if !(l.A == p.Nodes[i] && l.B == p.Nodes[i+1]) && !(l.B == p.Nodes[i] && l.A == p.Nodes[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickECMPPathsAreValidAndShortest: for random fat-tree host pairs,
// every enumerated ECMP path is simple, valid, and no longer than the BFS
// shortest path.
func TestQuickECMPPathsAreValidAndShortest(t *testing.T) {
	ft, err := NewFatTree(Config{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		src := rng.Intn(ft.NumHosts())
		dst := rng.Intn(ft.NumHosts())
		if src == dst {
			return true
		}
		paths, err := ft.ECMPPaths(src, dst)
		if err != nil || len(paths) == 0 {
			return false
		}
		ref, ok := ft.ShortestPath(ft.Host(src), ft.Host(dst), nil)
		if !ok {
			return false
		}
		for _, p := range paths {
			if p.Hops() != ref.Hops() {
				return false
			}
			seen := make(map[NodeID]bool)
			for _, nd := range p.Nodes {
				if seen[nd] {
					return false // loop
				}
				seen[nd] = true
			}
		}
		return true
	}
	for i := 0; i < 300; i++ {
		if !f() {
			t.Fatalf("ECMP property failed at iteration %d", i)
		}
	}
}

// TestQuickFatTreeSingleFailureKeepsFabricConnected: failing any single
// aggregation or core switch never disconnects any host pair (the redundancy
// rerouting relies on).
func TestQuickFatTreeSingleFailureKeepsFabricConnected(t *testing.T) {
	ft, err := NewFatTree(Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	var cands []NodeID
	for _, nd := range ft.Nodes {
		if nd.Kind == KindAgg || nd.Kind == KindCore {
			cands = append(cands, nd.ID)
		}
	}
	for _, victim := range cands {
		b := NewBlocked()
		b.BlockNode(victim)
		for src := 0; src < ft.NumHosts(); src += 5 {
			for dst := 0; dst < ft.NumHosts(); dst += 3 {
				if src == dst {
					continue
				}
				if !ft.Connected(ft.Host(src), ft.Host(dst), b) {
					t.Fatalf("failing %s disconnected hosts %d and %d",
						ft.Node(victim).Name(), src, dst)
				}
			}
		}
	}
}
