package topo

import (
	"fmt"
	"math/rand"
)

// JellyfishConfig describes a Jellyfish network (Singla et al., NSDI'12):
// N switches of K ports each, R of them wired into a random regular graph,
// the remaining K-R facing hosts. The paper's conclusion names Jellyfish as
// the unstructured target for non-uniform failure groups.
type JellyfishConfig struct {
	// Switches is the number of switches (N).
	Switches int
	// Ports is the switch port count (K).
	Ports int
	// NetDegree is the number of ports per switch wired to other switches
	// (R); the rest face hosts.
	NetDegree int
	// LinkCapacity defaults to 1.
	LinkCapacity float64
	// HostCapacity defaults to LinkCapacity.
	HostCapacity float64
	// Seed drives the random wiring.
	Seed int64
}

func (c *JellyfishConfig) setDefaults() error {
	if c.Switches < 2 {
		return fmt.Errorf("topo: jellyfish needs >= 2 switches, got %d", c.Switches)
	}
	if c.NetDegree < 1 || c.NetDegree >= c.Switches {
		return fmt.Errorf("topo: jellyfish net degree %d out of range [1, %d)", c.NetDegree, c.Switches)
	}
	if c.Ports < c.NetDegree {
		return fmt.Errorf("topo: jellyfish ports %d < net degree %d", c.Ports, c.NetDegree)
	}
	if c.Switches*c.NetDegree%2 != 0 {
		return fmt.Errorf("topo: jellyfish switches*degree = %d*%d must be even", c.Switches, c.NetDegree)
	}
	if c.LinkCapacity == 0 {
		c.LinkCapacity = 1
	}
	if c.LinkCapacity < 0 {
		return fmt.Errorf("topo: LinkCapacity=%v must be positive", c.LinkCapacity)
	}
	if c.HostCapacity == 0 {
		c.HostCapacity = c.LinkCapacity
	}
	if c.HostCapacity < 0 {
		return fmt.Errorf("topo: HostCapacity=%v must be positive", c.HostCapacity)
	}
	return nil
}

// Jellyfish is a built random-graph topology. Switches are modeled as edge
// switches (they all face hosts); hosts hang off each switch's spare ports.
type Jellyfish struct {
	*Topology
	Cfg      JellyfishConfig
	switches []NodeID
	hosts    []NodeID
}

// NewJellyfish builds a Jellyfish network using the standard incremental
// random-matching construction with edge swaps to place the last stubs.
func NewJellyfish(cfg JellyfishConfig) (*Jellyfish, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jf := &Jellyfish{Topology: &Topology{}, Cfg: cfg}
	for i := 0; i < cfg.Switches; i++ {
		jf.switches = append(jf.switches, jf.AddNode(KindEdge, -1, i))
	}

	// Random regular graph: repeatedly connect two random switches with
	// free stubs; when stuck, swap with an existing link.
	free := make([]int, cfg.Switches) // free network stubs per switch
	for i := range free {
		free[i] = cfg.NetDegree
	}
	remaining := cfg.Switches * cfg.NetDegree / 2
	for attempts := 0; remaining > 0; attempts++ {
		if attempts > 100000 {
			return nil, fmt.Errorf("topo: jellyfish wiring did not converge")
		}
		cands := candidatesWithStubs(free)
		if len(cands) == 0 {
			break
		}
		a := cands[rng.Intn(len(cands))]
		b := cands[rng.Intn(len(cands))]
		if a == b || jf.LinkBetween(jf.switches[a], jf.switches[b]) != NoLink {
			// If only unconnectable stubs remain, perform the
			// Jellyfish edge swap: remove a random existing link
			// (x, y) with x,y distinct from a,b, then wire a-x and
			// b-y.
			if !jf.trySwap(rng, free, a, b) {
				continue
			}
			remaining--
			continue
		}
		if _, err := jf.AddLink(jf.switches[a], jf.switches[b], cfg.LinkCapacity); err != nil {
			return nil, err
		}
		free[a]--
		free[b]--
		remaining--
	}

	// Hosts on the spare ports.
	hostPorts := cfg.Ports - cfg.NetDegree
	for i := 0; i < cfg.Switches; i++ {
		for h := 0; h < hostPorts; h++ {
			id := jf.AddNode(KindHost, -1, len(jf.hosts))
			jf.hosts = append(jf.hosts, id)
			if _, err := jf.AddLink(id, jf.switches[i], cfg.HostCapacity); err != nil {
				return nil, err
			}
		}
	}
	return jf, nil
}

func candidatesWithStubs(free []int) []int {
	var out []int
	for i, f := range free {
		if f > 0 {
			out = append(out, i)
		}
	}
	return out
}

// trySwap implements the Jellyfish stuck-stub resolution. It returns true if
// one stub pair was consumed.
func (jf *Jellyfish) trySwap(rng *rand.Rand, free []int, a, b int) bool {
	if a == b {
		// Single switch with >= 2 free stubs: break an existing link
		// (x, y) not touching a, then connect a-x and a-y.
		if free[a] < 2 || len(jf.Links) == 0 {
			return false
		}
		for tries := 0; tries < 50; tries++ {
			l := jf.Links[rng.Intn(len(jf.Links))]
			x, y := l.A, l.B
			na, xa := jf.Node(x), jf.Node(y)
			if na.Kind != KindEdge || xa.Kind != KindEdge {
				continue
			}
			if x == jf.switches[a] || y == jf.switches[a] {
				continue
			}
			if jf.LinkBetween(jf.switches[a], x) != NoLink || jf.LinkBetween(jf.switches[a], y) != NoLink {
				continue
			}
			jf.removeLink(l.ID)
			if _, err := jf.AddLink(jf.switches[a], x, jf.Cfg.LinkCapacity); err != nil {
				return false
			}
			if _, err := jf.AddLink(jf.switches[a], y, jf.Cfg.LinkCapacity); err != nil {
				return false
			}
			free[a] -= 2
			return true
		}
		return false
	}
	// a-b already linked: break (x, y) and rewire a-x, b-y.
	for tries := 0; tries < 50; tries++ {
		l := jf.Links[rng.Intn(len(jf.Links))]
		x, y := l.A, l.B
		if jf.Node(x).Kind != KindEdge || jf.Node(y).Kind != KindEdge {
			continue
		}
		if x == jf.switches[a] || x == jf.switches[b] || y == jf.switches[a] || y == jf.switches[b] {
			continue
		}
		if jf.LinkBetween(jf.switches[a], x) != NoLink || jf.LinkBetween(jf.switches[b], y) != NoLink {
			continue
		}
		jf.removeLink(l.ID)
		if _, err := jf.AddLink(jf.switches[a], x, jf.Cfg.LinkCapacity); err != nil {
			return false
		}
		if _, err := jf.AddLink(jf.switches[b], y, jf.Cfg.LinkCapacity); err != nil {
			return false
		}
		free[a]--
		free[b]--
		return true
	}
	return false
}

// removeLink deletes a link. Link IDs are reassigned (the slice is
// compacted), so this is only safe during construction, before IDs escape.
func (jf *Jellyfish) removeLink(id LinkID) {
	l := jf.Links[id]
	jf.adj[l.A] = removeFrom(jf.adj[l.A], id)
	jf.adj[l.B] = removeFrom(jf.adj[l.B], id)
	delete(jf.byPair, pairKey(l.A, l.B))
	last := LinkID(len(jf.Links) - 1)
	if id != last {
		moved := jf.Links[last]
		moved.ID = id
		jf.Links[id] = moved
		jf.adj[moved.A] = replaceIn(jf.adj[moved.A], last, id)
		jf.adj[moved.B] = replaceIn(jf.adj[moved.B], last, id)
		jf.byPair[pairKey(moved.A, moved.B)] = id
	}
	jf.Links = jf.Links[:last]
}

func removeFrom(s []LinkID, id LinkID) []LinkID {
	for i, v := range s {
		if v == id {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func replaceIn(s []LinkID, old, new LinkID) []LinkID {
	for i, v := range s {
		if v == old {
			s[i] = new
		}
	}
	return s
}

// Switches returns the switch node IDs.
func (jf *Jellyfish) Switches() []NodeID { return jf.switches }

// Hosts returns the host node IDs.
func (jf *Jellyfish) Hosts() []NodeID { return jf.hosts }

// NetDegreeOf returns the realized switch-to-switch degree of a switch.
func (jf *Jellyfish) NetDegreeOf(s NodeID) int {
	d := 0
	for _, lid := range jf.LinksOf(s) {
		if jf.Node(jf.Link(lid).Other(s)).Kind.IsSwitch() {
			d++
		}
	}
	return d
}
