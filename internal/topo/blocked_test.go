package topo

import (
	"math/rand"
	"testing"
)

// mapBlocked is the reference implementation the bitset Blocked replaced;
// the differential test below drives both through randomized op sequences.
type mapBlocked struct {
	nodes map[NodeID]bool
	links map[LinkID]bool
}

func newMapBlocked() *mapBlocked {
	return &mapBlocked{nodes: make(map[NodeID]bool), links: make(map[LinkID]bool)}
}

// TestBlockedDifferential checks bitset Blocked against the map reference
// under randomized block/unblock/reset/copy sequences.
func TestBlockedDifferential(t *testing.T) {
	const maxNode, maxLink = 700, 1300
	r := rand.New(rand.NewSource(42))
	b := NewBlocked()
	ref := newMapBlocked()
	check := func(step int) {
		for n := NodeID(0); n < maxNode; n++ {
			if b.NodeBlocked(n) != ref.nodes[n] {
				t.Fatalf("step %d: node %d: bitset %v, map %v", step, n, b.NodeBlocked(n), ref.nodes[n])
			}
		}
		for l := LinkID(0); l < maxLink; l++ {
			if b.LinkBlocked(l) != ref.links[l] {
				t.Fatalf("step %d: link %d: bitset %v, map %v", step, l, b.LinkBlocked(l), ref.links[l])
			}
		}
	}
	for step := 0; step < 3000; step++ {
		n := NodeID(r.Intn(maxNode))
		l := LinkID(r.Intn(maxLink))
		switch r.Intn(10) {
		case 0, 1, 2:
			b.BlockNode(n)
			ref.nodes[n] = true
		case 3, 4, 5:
			b.BlockLink(l)
			ref.links[l] = true
		case 6:
			b.UnblockNode(n)
			delete(ref.nodes, n)
		case 7:
			b.UnblockLink(l)
			delete(ref.links, l)
		case 8:
			if r.Intn(20) == 0 { // rare full reset
				b.Reset()
				ref = newMapBlocked()
			}
		case 9:
			// CopyFrom round-trips through a scratch set.
			scratch := NewBlocked()
			scratch.CopyFrom(b)
			scratch.BlockNode(n)
			b.CopyFrom(scratch)
			ref.nodes[n] = true
		}
		if step%100 == 0 {
			check(step)
		}
	}
	check(3000)
}

// TestBlockedNilAndSentinels checks the nil receiver and the negative
// sentinel IDs are safe no-answers, matching the map semantics where absent
// keys read false.
func TestBlockedNilAndSentinels(t *testing.T) {
	var b *Blocked
	if b.NodeBlocked(3) || b.LinkBlocked(3) || b.NodeBlocked(None) || b.LinkBlocked(NoLink) {
		t.Fatal("nil Blocked blocked something")
	}
	if !b.PathOK(Path{Nodes: []NodeID{1, 2}, Links: []LinkID{0}}) {
		t.Fatal("nil Blocked rejected a path")
	}
	nb := NewBlocked()
	nb.BlockNode(0)
	if nb.NodeBlocked(None) || nb.LinkBlocked(NoLink) {
		t.Fatal("sentinel IDs read as blocked")
	}
}

// TestBlockedCopyFrom checks CopyFrom semantics, including shrinking copies
// and nil sources.
func TestBlockedCopyFrom(t *testing.T) {
	a := NewBlocked()
	a.BlockNode(500) // force a long bitset
	b := NewBlocked()
	b.BlockNode(1)
	b.BlockLink(2)
	a.CopyFrom(b) // shrink: the stale word 500/64 must not survive
	if a.NodeBlocked(500) {
		t.Fatal("CopyFrom kept stale high bits")
	}
	if !a.NodeBlocked(1) || !a.LinkBlocked(2) {
		t.Fatal("CopyFrom dropped bits")
	}
	a.BlockNode(9)
	if b.NodeBlocked(9) {
		t.Fatal("CopyFrom aliased the source")
	}
	a.CopyFrom(nil)
	if a.NodeBlocked(1) || a.LinkBlocked(2) {
		t.Fatal("CopyFrom(nil) did not clear")
	}
}

// TestBlockedNegativePanic checks that blocking a sentinel is a programming
// error caught loudly rather than silently widening the set.
func TestBlockedNegativePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BlockNode(None) did not panic")
		}
	}()
	NewBlocked().BlockNode(None)
}
