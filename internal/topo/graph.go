package topo

import (
	"fmt"
	"sync"
)

// LinkID identifies a link within one Topology. IDs are dense: they index
// into Topology.Links.
type LinkID int32

// NoLink is the sentinel for "no link".
const NoLink LinkID = -1

// Link is an undirected capacitated edge of the topology graph.
type Link struct {
	ID LinkID
	A  NodeID
	B  NodeID
	// Capacity is the link bandwidth in abstract capacity units
	// (the fluid simulator interprets them as bytes per second).
	Capacity float64
}

// Other returns the endpoint of l opposite to n. It panics if n is not an
// endpoint of l; callers always know which links touch which nodes.
func (l Link) Other(n NodeID) NodeID {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	panic(fmt.Sprintf("topo: node %d is not an endpoint of link %d (%d-%d)", n, l.ID, l.A, l.B))
}

type linkKey struct{ lo, hi NodeID }

func pairKey(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Topology is an undirected capacitated multigraph-free graph: at most one
// link joins any node pair. The zero value is an empty topology ready to use.
type Topology struct {
	Nodes []Node
	Links []Link

	adj    [][]LinkID
	byPair map[linkKey]LinkID

	// bfsPool recycles ShortestPath scratch (visit marks, predecessor
	// arrays, queue) across searches and goroutines.
	bfsPool sync.Pool
}

// AddNode appends a node of the given kind and returns its ID.
func (t *Topology) AddNode(kind Kind, pod, index int) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{ID: id, Kind: kind, Pod: pod, Index: index})
	t.adj = append(t.adj, nil)
	return id
}

// AddLink joins a and b with a link of the given capacity and returns its ID.
// It returns an error if either node does not exist, a == b, capacity is not
// positive, or the pair is already linked.
func (t *Topology) AddLink(a, b NodeID, capacity float64) (LinkID, error) {
	if !t.valid(a) || !t.valid(b) {
		return NoLink, fmt.Errorf("topo: AddLink(%d, %d): node out of range", a, b)
	}
	if a == b {
		return NoLink, fmt.Errorf("topo: AddLink: self-loop at node %d", a)
	}
	if capacity <= 0 {
		return NoLink, fmt.Errorf("topo: AddLink(%d, %d): capacity %v must be positive", a, b, capacity)
	}
	if t.byPair == nil {
		t.byPair = make(map[linkKey]LinkID)
	}
	key := pairKey(a, b)
	if _, dup := t.byPair[key]; dup {
		return NoLink, fmt.Errorf("topo: AddLink(%d, %d): pair already linked", a, b)
	}
	id := LinkID(len(t.Links))
	t.Links = append(t.Links, Link{ID: id, A: a, B: b, Capacity: capacity})
	t.adj[a] = append(t.adj[a], id)
	t.adj[b] = append(t.adj[b], id)
	t.byPair[key] = id
	return id, nil
}

func (t *Topology) valid(n NodeID) bool { return n >= 0 && int(n) < len(t.Nodes) }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) Node { return t.Nodes[id] }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) Link { return t.Links[id] }

// NumNodes returns the number of nodes.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// NumLinks returns the number of links.
func (t *Topology) NumLinks() int { return len(t.Links) }

// LinksOf returns the IDs of all links incident to n. The returned slice is
// owned by the topology and must not be modified.
func (t *Topology) LinksOf(n NodeID) []LinkID { return t.adj[n] }

// LinkBetween returns the link joining a and b, or NoLink if none exists.
func (t *Topology) LinkBetween(a, b NodeID) LinkID {
	if !t.valid(a) || !t.valid(b) {
		return NoLink
	}
	id, ok := t.byPair[pairKey(a, b)]
	if !ok {
		return NoLink
	}
	return id
}

// Degree returns the number of links incident to n.
func (t *Topology) Degree(n NodeID) int { return len(t.adj[n]) }

// Neighbors appends the IDs of all nodes adjacent to n to dst and returns
// the extended slice. Pass nil to allocate.
func (t *Topology) Neighbors(dst []NodeID, n NodeID) []NodeID {
	for _, lid := range t.adj[n] {
		dst = append(dst, t.Links[lid].Other(n))
	}
	return dst
}

// NodesOfKind returns the IDs of all nodes of the given kind in ID order.
func (t *Topology) NodesOfKind(kind Kind) []NodeID {
	var out []NodeID
	for _, n := range t.Nodes {
		if n.Kind == kind {
			out = append(out, n.ID)
		}
	}
	return out
}

// SwitchIDs returns the IDs of all packet switches (edge, agg, core) in ID
// order.
func (t *Topology) SwitchIDs() []NodeID {
	var out []NodeID
	for _, n := range t.Nodes {
		if n.Kind.IsSwitch() {
			out = append(out, n.ID)
		}
	}
	return out
}

// SwitchLinkIDs returns the IDs of all switch-to-switch links in ID order.
// Host-facing links are excluded; the paper's failure study injects link
// failures on the switching fabric.
func (t *Topology) SwitchLinkIDs() []LinkID {
	var out []LinkID
	for _, l := range t.Links {
		if t.Nodes[l.A].Kind.IsSwitch() && t.Nodes[l.B].Kind.IsSwitch() {
			out = append(out, l.ID)
		}
	}
	return out
}
