// Package topo models data center network topologies as undirected
// capacitated graphs and provides generators for the structures the
// ShareBackup paper builds on: the k-ary fat-tree (Al-Fares et al.,
// SIGCOMM'08), the F10 AB fat-tree (Liu et al., NSDI'13), and the
// structural accounting for Aspen trees (Walraed-Sullivan et al.,
// CoNEXT'13) used by the cost model.
//
// Identifiers follow Table 1 of the paper: H_j is the j-th host, E_{i,j}
// the j-th edge switch in pod i, A_{i,j} the j-th aggregation switch in
// pod i, and C_j the j-th core switch.
package topo

import "fmt"

// Kind classifies a node in the topology.
type Kind uint8

const (
	// KindHost is an end host (or, at rack granularity, a whole rack
	// modeled as a single traffic endpoint).
	KindHost Kind = iota
	// KindEdge is a top-of-rack (edge) packet switch.
	KindEdge
	// KindAgg is an aggregation packet switch.
	KindAgg
	// KindCore is a core packet switch.
	KindCore
)

// String returns the conventional short name of the kind.
func (k Kind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindEdge:
		return "edge"
	case KindAgg:
		return "agg"
	case KindCore:
		return "core"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsSwitch reports whether the kind is a packet switch layer.
func (k Kind) IsSwitch() bool { return k == KindEdge || k == KindAgg || k == KindCore }

// NodeID identifies a node within one Topology. IDs are dense: they index
// into Topology.Nodes.
type NodeID int32

// None is the sentinel for "no node".
const None NodeID = -1

// Node is a vertex of the topology graph.
type Node struct {
	ID   NodeID
	Kind Kind
	// Pod is the pod index for hosts, edge and aggregation switches.
	// It is -1 for core switches, which belong to no pod.
	Pod int
	// Index is the in-pod index for edge and aggregation switches
	// (the j of E_{i,j} / A_{i,j}), the global index for core switches
	// (the j of C_j), and the global host index for hosts (the j of H_j).
	Index int
}

// Name renders the paper's notation for the node (E_{i,j}, A_{i,j}, C_j, H_j).
func (n Node) Name() string {
	switch n.Kind {
	case KindHost:
		return fmt.Sprintf("H%d", n.Index)
	case KindEdge:
		return fmt.Sprintf("E%d,%d", n.Pod, n.Index)
	case KindAgg:
		return fmt.Sprintf("A%d,%d", n.Pod, n.Index)
	case KindCore:
		return fmt.Sprintf("C%d", n.Index)
	default:
		return fmt.Sprintf("N%d", n.ID)
	}
}
