package topo

import "testing"

func TestJellyfishStructure(t *testing.T) {
	cfg := JellyfishConfig{Switches: 20, Ports: 8, NetDegree: 5, Seed: 3}
	jf, err := NewJellyfish(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(jf.Switches()); got != 20 {
		t.Fatalf("switches = %d", got)
	}
	if got, want := len(jf.Hosts()), 20*(8-5); got != want {
		t.Fatalf("hosts = %d, want %d", got, want)
	}
	// Every switch's realized network degree is at most NetDegree, and
	// the vast majority hit it exactly (the random matching may leave a
	// few stubs when swaps cannot resolve).
	full := 0
	for _, s := range jf.Switches() {
		d := jf.NetDegreeOf(s)
		if d > 5 {
			t.Fatalf("switch %d network degree %d exceeds NetDegree", s, d)
		}
		if d == 5 {
			full++
		}
	}
	if full < 18 {
		t.Errorf("only %d/20 switches reached full degree", full)
	}
	// No self loops or duplicate links (guaranteed by Topology), and all
	// switch pairs distinct.
	for _, l := range jf.Links {
		if l.A == l.B {
			t.Fatal("self loop")
		}
	}
}

func TestJellyfishConnected(t *testing.T) {
	jf, err := NewJellyfish(JellyfishConfig{Switches: 30, Ports: 6, NetDegree: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s0 := jf.Switches()[0]
	for _, s := range jf.Switches()[1:] {
		if !jf.Connected(s0, s, nil) {
			t.Fatalf("switch %d unreachable; random regular graph should be connected at degree 4", s)
		}
	}
}

func TestJellyfishDeterministic(t *testing.T) {
	a, err := NewJellyfish(JellyfishConfig{Switches: 16, Ports: 6, NetDegree: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewJellyfish(JellyfishConfig{Switches: 16, Ports: 6, NetDegree: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("same-seed builds differ")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs between same-seed builds", i)
		}
	}
}

func TestJellyfishValidation(t *testing.T) {
	bad := []JellyfishConfig{
		{Switches: 1, Ports: 4, NetDegree: 2},
		{Switches: 10, Ports: 4, NetDegree: 0},
		{Switches: 10, Ports: 2, NetDegree: 4},
		{Switches: 10, Ports: 4, NetDegree: 12},
		{Switches: 5, Ports: 6, NetDegree: 3}, // odd stub count
		{Switches: 10, Ports: 6, NetDegree: 3, LinkCapacity: -1},
	}
	for _, cfg := range bad {
		if _, err := NewJellyfish(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestJellyfishHostsAttached(t *testing.T) {
	jf, err := NewJellyfish(JellyfishConfig{Switches: 12, Ports: 5, NetDegree: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range jf.Hosts() {
		if jf.Degree(h) != 1 {
			t.Fatalf("host %d degree = %d, want 1", h, jf.Degree(h))
		}
		nbr := jf.Link(jf.LinksOf(h)[0]).Other(h)
		if !jf.Node(nbr).Kind.IsSwitch() {
			t.Fatalf("host %d attached to non-switch", h)
		}
	}
}
