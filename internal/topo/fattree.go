package topo

import (
	"fmt"
	"sync/atomic"
)

// Config describes a fat-tree (or F10 AB fat-tree) to build.
type Config struct {
	// K is the fat-tree parameter: switch port count and number of pods.
	// It must be even and at least 4.
	K int

	// HostsPerEdge is the number of host endpoints attached to each edge
	// switch. It defaults to K/2 (the canonical fat-tree). The paper's
	// failure study uses rack-level traffic, which corresponds to
	// HostsPerEdge == 1 with an oversubscribed HostCapacity.
	HostsPerEdge int

	// LinkCapacity is the capacity of every switch-to-switch link.
	// It defaults to 1.
	LinkCapacity float64

	// HostCapacity is the capacity of every host-to-edge link. It defaults
	// to LinkCapacity. To model the paper's 10:1 oversubscription at rack
	// granularity, set HostsPerEdge to 1 and HostCapacity to
	// 10 * (K/2) * LinkCapacity.
	HostCapacity float64

	// AB selects F10's AB fat-tree wiring: pods alternate between two
	// aggregation-to-core wiring patterns (type A on even pods, type B on
	// odd pods) so that adjacent levels see diverse alternative paths.
	// When false, the canonical fat-tree wiring is used everywhere.
	AB bool
}

func (c *Config) setDefaults() error {
	if c.K < 4 || c.K%2 != 0 {
		return fmt.Errorf("topo: fat-tree parameter k=%d must be even and >= 4", c.K)
	}
	if c.HostsPerEdge == 0 {
		c.HostsPerEdge = c.K / 2
	}
	if c.HostsPerEdge < 0 {
		return fmt.Errorf("topo: HostsPerEdge=%d must be positive", c.HostsPerEdge)
	}
	if c.LinkCapacity == 0 {
		c.LinkCapacity = 1
	}
	if c.LinkCapacity < 0 {
		return fmt.Errorf("topo: LinkCapacity=%v must be positive", c.LinkCapacity)
	}
	if c.HostCapacity == 0 {
		c.HostCapacity = c.LinkCapacity
	}
	if c.HostCapacity < 0 {
		return fmt.Errorf("topo: HostCapacity=%v must be positive", c.HostCapacity)
	}
	return nil
}

// FatTree is a built fat-tree (or AB fat-tree) topology with structured
// accessors for its switches and hosts.
type FatTree struct {
	*Topology
	Cfg Config

	edge     [][]NodeID // [pod][j] -> E_{pod,j}
	agg      [][]NodeID // [pod][j] -> A_{pod,j}
	core     []NodeID   // [j] -> C_j
	hosts    []NodeID   // [j] -> H_j
	hostEdge []NodeID   // host global index -> its edge switch

	store atomic.Pointer[PathStore] // lazily created shared path store
}

// NewFatTree builds a fat-tree from cfg. Node IDs are assigned
// deterministically: all edge switches pod by pod, then all aggregation
// switches, then cores, then hosts.
func NewFatTree(cfg Config) (*FatTree, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	k := cfg.K
	half := k / 2
	ft := &FatTree{
		Topology: &Topology{},
		Cfg:      cfg,
		edge:     make([][]NodeID, k),
		agg:      make([][]NodeID, k),
		core:     make([]NodeID, half*half),
	}
	for pod := 0; pod < k; pod++ {
		ft.edge[pod] = make([]NodeID, half)
		for j := 0; j < half; j++ {
			ft.edge[pod][j] = ft.AddNode(KindEdge, pod, j)
		}
	}
	for pod := 0; pod < k; pod++ {
		ft.agg[pod] = make([]NodeID, half)
		for j := 0; j < half; j++ {
			ft.agg[pod][j] = ft.AddNode(KindAgg, pod, j)
		}
	}
	for j := range ft.core {
		ft.core[j] = ft.AddNode(KindCore, -1, j)
	}

	// Edge <-> aggregation: complete bipartite graph within each pod.
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				if _, err := ft.AddLink(ft.edge[pod][e], ft.agg[pod][a], cfg.LinkCapacity); err != nil {
					return nil, err
				}
			}
		}
	}

	// Aggregation <-> core. Canonical wiring: A_{i,s} connects to cores
	// [s*k/2, (s+1)*k/2). AB wiring flips odd pods to the transposed
	// pattern: A_{i,s} connects to cores {t*k/2 + s : t}, so core
	// C_{x*k/2+y} reaches agg x in type-A pods and agg y in type-B pods.
	for pod := 0; pod < k; pod++ {
		typeB := cfg.AB && pod%2 == 1
		for s := 0; s < half; s++ {
			for t := 0; t < half; t++ {
				var coreIdx int
				if typeB {
					coreIdx = t*half + s
				} else {
					coreIdx = s*half + t
				}
				if _, err := ft.AddLink(ft.agg[pod][s], ft.core[coreIdx], cfg.LinkCapacity); err != nil {
					return nil, err
				}
			}
		}
	}

	// Hosts.
	ft.hosts = make([]NodeID, 0, k*half*cfg.HostsPerEdge)
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for h := 0; h < cfg.HostsPerEdge; h++ {
				id := ft.AddNode(KindHost, pod, len(ft.hosts))
				ft.hosts = append(ft.hosts, id)
				ft.hostEdge = append(ft.hostEdge, ft.edge[pod][e])
				if _, err := ft.AddLink(id, ft.edge[pod][e], cfg.HostCapacity); err != nil {
					return nil, err
				}
			}
		}
	}
	return ft, nil
}

// PathStore returns the topology's shared interned path store, creating it
// on first use. The store is safe for concurrent use; all callers of one
// FatTree see the same instance, so interned pairs are built at most once.
func (ft *FatTree) PathStore() *PathStore {
	if ps := ft.store.Load(); ps != nil {
		return ps
	}
	ps := NewPathStore(ft)
	if !ft.store.CompareAndSwap(nil, ps) {
		return ft.store.Load()
	}
	return ps
}

// K returns the fat-tree parameter.
func (ft *FatTree) K() int { return ft.Cfg.K }

// NumPods returns the number of pods (k).
func (ft *FatTree) NumPods() int { return ft.Cfg.K }

// Edge returns E_{pod,j}.
func (ft *FatTree) Edge(pod, j int) NodeID { return ft.edge[pod][j] }

// Agg returns A_{pod,j}.
func (ft *FatTree) Agg(pod, j int) NodeID { return ft.agg[pod][j] }

// Core returns C_j.
func (ft *FatTree) Core(j int) NodeID { return ft.core[j] }

// NumCores returns (k/2)^2.
func (ft *FatTree) NumCores() int { return len(ft.core) }

// Host returns H_j by global host index.
func (ft *FatTree) Host(j int) NodeID { return ft.hosts[j] }

// NumHosts returns the number of hosts.
func (ft *FatTree) NumHosts() int { return len(ft.hosts) }

// EdgeOfHost returns the edge switch the host with global index j attaches to.
func (ft *FatTree) EdgeOfHost(j int) NodeID { return ft.hostEdge[j] }

// HostsOfEdge returns the global indices of hosts under E_{pod,j}.
func (ft *FatTree) HostsOfEdge(pod, j int) []int {
	per := ft.Cfg.HostsPerEdge
	base := (pod*(ft.Cfg.K/2) + j) * per
	out := make([]int, per)
	for i := range out {
		out[i] = base + i
	}
	return out
}

// CoreIndicesOfAgg returns the global core indices A_{pod,s} connects to.
func (ft *FatTree) CoreIndicesOfAgg(pod, s int) []int {
	half := ft.Cfg.K / 2
	out := make([]int, half)
	typeB := ft.Cfg.AB && pod%2 == 1
	for t := 0; t < half; t++ {
		if typeB {
			out[t] = t*half + s
		} else {
			out[t] = s*half + t
		}
	}
	return out
}

// AggOfCoreInPod returns the aggregation switch core C_c connects to in the
// given pod.
func (ft *FatTree) AggOfCoreInPod(c, pod int) NodeID {
	half := ft.Cfg.K / 2
	x, y := c/half, c%half
	if ft.Cfg.AB && pod%2 == 1 {
		return ft.agg[pod][y]
	}
	return ft.agg[pod][x]
}
