package ctlnet

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/controller"
	"sharebackup/internal/ctlplane"
	"sharebackup/internal/obs"
	"sharebackup/internal/sbnet"
)

func startCluster(t *testing.T, cfg ClusterConfig) *ClusterEmulation {
	t.Helper()
	e, err := NewClusterEmulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// follower returns a replica that is not ld.
func follower(t *testing.T, e *ClusterEmulation, ld *Replica) *Replica {
	t.Helper()
	for _, r := range e.Replicas {
		if r.ID != ld.ID {
			return r
		}
	}
	t.Fatal("no follower")
	return nil
}

// TestClusterFailoverMidStorm is the headline emulation: a 3-replica
// controller cluster serving four switch agents loses its leader in the
// middle of a failure storm. Every report must still complete — the agents
// chase the new leader through redirects and re-dials, the replicated log
// keeps the replicas' network models identical, and the stitched
// cross-process trace shows the failover hop inside a recovery's span.
func TestClusterFailoverMidStorm(t *testing.T) {
	dir := t.TempDir()
	e := startCluster(t, ClusterConfig{
		EmulationConfig: EmulationConfig{
			NumAgents: 4,
			NumCS:     1,
			TraceDir:  dir,
			// The storm pauses agents' heartbeats while they chase the new
			// leader; node-death detection (tested elsewhere) must not
			// misread that as four switch failures.
			MissThreshold: 25,
		},
		Replicas:  3,
		TickEvery: 5 * time.Millisecond,
	})
	if !e.WaitClockSync(5 * time.Second) {
		t.Fatal("agents never clock-synced")
	}
	ld, err := e.Leader(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Monitor a follower: it must survive the leader's death, and the
	// replicated log delivers every recovery to it regardless of which
	// replica leads when the recovery commits.
	mon, err := Subscribe(follower(t, e, ld).Server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	// The leader's consensus replica dies first: commits over loopback take
	// microseconds, so stopping the node before the storm is the only way
	// to guarantee the reports are un-committed when leadership is lost
	// (rather than racing a sleep against the replication round trip).
	// Every report now reaches a server that can no longer commit and must
	// fail over to the next elected leader.
	ld.Node.Stop()

	// The storm: every agent reports its up-link dead, concurrently.
	errs := make([]error, len(e.Agents))
	var wg sync.WaitGroup
	for i := range e.Agents {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = e.FailLink(i, 500*time.Microsecond)
		}(i)
	}
	// Mid-storm, the rest of the replica dies: its serving socket drops
	// every agent session and its consensus transport goes dark.
	time.Sleep(5 * time.Millisecond)
	ld.Server.Close()
	ld.Transport.Close()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("agent %d report failed across the failover: %v", i, err)
		}
	}
	newLd, err := e.Leader(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if newLd.ID == ld.ID {
		t.Fatalf("killed replica %d still leads", ld.ID)
	}

	// The monitored follower observes every recovery through its applied
	// log, whichever leader committed it.
	want := len(e.Agents)
	got := 0
	deadline := time.After(15 * time.Second)
	for got < want {
		select {
		case ev, ok := <-mon.Events:
			if !ok {
				t.Fatalf("follower monitor closed after %d/%d events: %v", got, want, mon.Err())
			}
			if ev.Kind != "link" {
				t.Errorf("event kind = %q, want link (failed=%v backup=%v latency=%v)", ev.Kind, ev.Failed, ev.Backup, ev.Latency)
			}
			got++
		case <-deadline:
			t.Fatalf("follower observed %d/%d recoveries within 15s", got, want)
		}
	}

	// The new leader's network model shows all four links recovered:
	// every reporting agent's switch was failed over (non-active role).
	for _, a := range e.Agents {
		if role := newLd.Net.Switch(a.ID).Role; role == sbnet.RoleActive {
			t.Errorf("switch %d still active on the new leader after its link failed", a.ID)
		}
	}

	files := e.TraceFiles()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	var procs []obs.ProcTrace
	for _, path := range files {
		evs, err := obs.ReadJSONL(mustOpen(t, path))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".jsonl")
		procs = append(procs, obs.ProcTrace{Name: name, Events: evs})
	}
	res, err := obs.Stitch(procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) < want {
		t.Fatalf("stitched %d traces, want at least %d", len(res.Traces), want)
	}
	// At least one recovery's stitched trace shows the failover hop: the
	// agent re-dialed a replica while its report span was open.
	hops := 0
	for _, tr := range res.Traces {
		if strings.Contains(tr.Render(), "failover ->") {
			hops++
		}
	}
	if hops == 0 {
		var all strings.Builder
		for _, tr := range res.Traces {
			all.WriteString(tr.Render())
		}
		t.Errorf("no stitched trace shows a failover hop:\n%s", all.String())
	}
}

// TestClusterQuorumLossDrill loses 2 of 3 replicas. The survivor must halt
// safely — never elect itself, refuse proposals — rather than split-brain,
// and an operator rebootstrap from its snapshot restores the full recovery
// state on a fresh single-replica cluster that resumes service.
func TestClusterQuorumLossDrill(t *testing.T) {
	e := startCluster(t, ClusterConfig{
		EmulationConfig: EmulationConfig{
			NumAgents: 2,
			NumCS:     1,
		},
		Replicas:  3,
		TickEvery: 5 * time.Millisecond,
	})
	ld, err := e.Leader(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	surv := follower(t, e, ld)
	mon, err := Subscribe(surv.Server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	// One recovery while the cluster is healthy, observed on the survivor
	// (so we know its applied state contains it before the others die).
	if err := e.FailLink(0, 500*time.Microsecond); err != nil {
		t.Fatalf("report with healthy cluster: %v", err)
	}
	select {
	case ev, ok := <-mon.Events:
		if !ok {
			t.Fatalf("survivor monitor closed: %v", mon.Err())
		}
		if ev.Kind != "link" {
			t.Errorf("event kind = %q", ev.Kind)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("survivor never observed the healthy-cluster recovery")
	}

	// Snapshot the survivor BEFORE the quorum dies: TakeSnapshot runs a
	// barrier through the consensus loop, which needs a live quorum to
	// guarantee the applied state is current.
	snap, err := surv.Node.TakeSnapshot(5 * time.Second)
	if err != nil {
		t.Fatalf("survivor snapshot: %v", err)
	}
	if snap.LastIndex == 0 {
		t.Fatal("survivor snapshot has no applied state")
	}

	// Quorum loss: the leader and the other follower die.
	for _, r := range e.Replicas {
		if r.ID != surv.ID {
			r.Kill()
		}
	}

	// Safe halt: across many election timeouts the survivor never wins an
	// election (no quorum to grant it), and proposals fail instead of
	// being accepted by a minority.
	haltDeadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(haltDeadline) {
		if surv.Node.IsLeader() {
			t.Fatal("split-brain: survivor led without a quorum")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := surv.Node.Propose([]byte("x"), 300*time.Millisecond); err == nil {
		t.Fatal("survivor accepted a proposal without a quorum")
	}

	// Operator rebootstrap: a fresh single-replica cluster seeded from the
	// survivor's snapshot replays the recovery log into a fresh network
	// model and resumes serving recoveries.
	nw2, err := sbnet.New(sbnet.Config{K: e.cfg.K, N: e.cfg.N, Tech: circuit.Crosspoint})
	if err != nil {
		t.Fatal(err)
	}
	ctl2 := controller.New(nw2, controller.Config{ProbeInterval: e.cfg.Interval})
	dir2 := newClusterDirectory()
	srv2, err := NewServer("127.0.0.1:0", ctl2, ServerConfig{
		Interval:   e.cfg.Interval,
		CheckEvery: e.cfg.Interval,
		Cluster:    newClusterHooks(dir2, 9),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	node9 := ctlplane.NewNode(ctlplane.NodeConfig{
		Raft:      ctlplane.RaftConfig{ID: 9, Peers: []int{9}, Seed: 55, Restore: &snap},
		TickEvery: 5 * time.Millisecond,
		Apply:     func(data []byte) (any, error) { return srv2.ApplyCommand(data) },
		Snapshot:  srv2.SnapshotState,
		Restore:   srv2.RestoreState,
	})
	defer node9.Stop()
	dir2.register(9, node9, srv2.Addr())

	// The restore replayed the survivor's applied log: the rebooted network
	// model agrees with the survivor's, switch by switch.
	for id := 0; id < nw2.NumSwitches(); id++ {
		sid := sbnet.SwitchID(id)
		if got, want := nw2.Switch(sid).Role, surv.Net.Switch(sid).Role; got != want {
			t.Errorf("switch %d role after rebootstrap = %v, survivor has %v", id, got, want)
		}
	}

	// The single-replica cluster leads itself and serves a new recovery
	// end to end: agent dial, leader discovery, report, ack, publish.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !node9.IsLeader() {
		time.Sleep(5 * time.Millisecond)
	}
	if !node9.IsLeader() {
		t.Fatal("rebootstrapped replica never led its single-node cluster")
	}
	mon2, err := Subscribe(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mon2.Close()
	ids := agentSwitchIDs(nw2, e.cfg.K, 2)
	a, err := DialCluster([]string{srv2.Addr()}, ids[1], e.cfg.Interval)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ownPort, agg, aggPort := firstUpLink(nw2, ids[1], e.cfg.K)
	if err := a.ReportLinkFailureDetected(ownPort, agg, aggPort, 500*time.Microsecond); err != nil {
		t.Fatalf("report after rebootstrap: %v", err)
	}
	select {
	case ev, ok := <-mon2.Events:
		if !ok {
			t.Fatalf("rebooted monitor closed: %v", mon2.Err())
		}
		if ev.Kind != "link" {
			t.Errorf("post-rebootstrap event kind = %q", ev.Kind)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("rebootstrapped cluster served no recovery within 10s")
	}
}

// TestClusterRedirectsToLeader checks the discovery protocol directly: a
// follower answers msgLeaderReq with the leader's serving address and
// redirects keep-alive traffic instead of consuming it.
func TestClusterLeaderInfoRoundTrip(t *testing.T) {
	isLeader, addr, err := decodeLeaderInfo(encodeLeaderInfo(true, "127.0.0.1:4242"))
	if err != nil || !isLeader || addr != "127.0.0.1:4242" {
		t.Fatalf("leaderInfo round trip = %v %q %v", isLeader, addr, err)
	}
	isLeader, addr, err = decodeLeaderInfo(encodeLeaderInfo(false, ""))
	if err != nil || isLeader || addr != "" {
		t.Fatalf("empty leaderInfo round trip = %v %q %v", isLeader, addr, err)
	}
	if _, _, err := decodeLeaderInfo(nil); err == nil {
		t.Error("empty leaderInfo payload accepted")
	}
	status, err := decodeReportAck(encodeReportAck(reportAckOK))
	if err != nil || status != reportAckOK {
		t.Fatalf("reportAck round trip = %v %v", status, err)
	}
	if _, err := decodeReportAck([]byte{1, 2}); err == nil {
		t.Error("oversized reportAck accepted")
	}
}
