package ctlnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sharebackup/internal/controller"
	"sharebackup/internal/routing"
	"sharebackup/internal/sbnet"
	"sharebackup/internal/topo"
)

// ServerConfig tunes the TCP control plane.
type ServerConfig struct {
	// Interval is the expected keep-alive interval. Default 5 ms.
	Interval time.Duration
	// MissThreshold is how many missed intervals declare a node dead.
	// Default 3.
	MissThreshold int
	// CheckEvery is the detector's scan period. Default Interval.
	CheckEvery time.Duration
	// Logf, if set, receives server diagnostics (default: discarded).
	Logf func(format string, args ...interface{})
}

func (c *ServerConfig) setDefaults() {
	if c.Interval == 0 {
		c.Interval = 5 * time.Millisecond
	}
	if c.MissThreshold == 0 {
		c.MissThreshold = 3
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = c.Interval
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
}

// Server is the controller endpoint: it accepts switch agents and monitors,
// tracks keep-alives on the wall clock, and drives failover on the
// underlying network when a switch goes silent.
type Server struct {
	cfg   ServerConfig
	ctl   *controller.Controller
	ln    net.Listener
	start time.Time

	mu       sync.Mutex
	lastSeen map[sbnet.SwitchID]time.Time
	subs     []net.Conn
	tables   map[int][]byte // per-pod serialized combined tables
	closed   bool

	wg   sync.WaitGroup
	quit chan struct{}
}

// NewServer starts a controller server listening on addr (use
// "127.0.0.1:0" for tests). The controller's virtual clock is driven from
// the wall clock relative to server start.
func NewServer(addr string, ctl *controller.Controller, cfg ServerConfig) (*Server, error) {
	cfg.setDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlnet: listen: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		ctl:      ctl,
		ln:       ln,
		start:    time.Now(),
		lastSeen: make(map[sbnet.SwitchID]time.Time),
		quit:     make(chan struct{}),
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.detectLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for its goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	subs := s.subs
	s.subs = nil
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range subs {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
			}
			s.cfg.Logf("ctlnet: accept: %v", err)
			return
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	subscribed := false
	defer func() {
		if !subscribed {
			conn.Close()
		}
	}()
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.cfg.Logf("ctlnet: conn %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		switch typ {
		case msgHello:
			id, err := decodeHello(payload)
			if err != nil {
				s.cfg.Logf("ctlnet: %v", err)
				return
			}
			s.seen(id)
			// Hot-standby provisioning (Section 4.3): edge-group
			// switches — regular and backup alike — receive their
			// pod's combined failure-group table on registration.
			if tbl := s.tableFor(id); tbl != nil {
				if err := writeFrame(conn, msgTableLoad, tbl); err != nil {
					s.cfg.Logf("ctlnet: table push to %d: %v", id, err)
					return
				}
			}
		case msgKeepAlive:
			id, _, err := decodeKeepAlive(payload)
			if err != nil {
				s.cfg.Logf("ctlnet: %v", err)
				return
			}
			s.seen(id)
		case msgLinkFail:
			aSw, aPort, bSw, bPort, err := decodeLinkFail(payload)
			if err != nil {
				s.cfg.Logf("ctlnet: %v", err)
				return
			}
			s.handleLinkFail(aSw, aPort, bSw, bPort)
		case msgSubscribe:
			s.mu.Lock()
			if !s.closed {
				s.subs = append(s.subs, conn)
				subscribed = true
			}
			s.mu.Unlock()
			if !subscribed {
				return
			}
			if err := writeFrame(conn, msgSubAck, nil); err != nil {
				s.cfg.Logf("ctlnet: subscribe ack: %v", err)
				return
			}
		default:
			s.cfg.Logf("ctlnet: unknown message type %d", typ)
			return
		}
	}
}

// tableFor builds (and caches) the serialized combined table for an
// edge-group switch's pod; nil for agg/core switches, whose shared tables
// are a degenerate case the agents already derive from k.
func (s *Server) tableFor(id sbnet.SwitchID) []byte {
	net := s.ctl.Network()
	sw := net.Switch(id)
	if sw.Kind != topo.KindEdge {
		return nil
	}
	pod := net.Group(sw.Group).Pod
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tables == nil {
		s.tables = make(map[int][]byte)
	}
	if b, ok := s.tables[pod]; ok {
		return b
	}
	vt, err := routing.BuildVLANTable(net.K(), pod)
	if err != nil {
		s.cfg.Logf("ctlnet: building table for pod %d: %v", pod, err)
		return nil
	}
	b, err := vt.MarshalBinary()
	if err != nil {
		s.cfg.Logf("ctlnet: encoding table for pod %d: %v", pod, err)
		return nil
	}
	s.tables[pod] = b
	return b
}

func (s *Server) seen(id sbnet.SwitchID) {
	now := time.Now()
	s.mu.Lock()
	s.lastSeen[id] = now
	s.ctl.Heartbeat(id, now.Sub(s.start))
	s.mu.Unlock()
}

func (s *Server) handleLinkFail(aSw sbnet.SwitchID, aPort int, bSw sbnet.SwitchID, bPort int) {
	t0 := time.Now()
	s.mu.Lock()
	rec, err := s.ctl.ReportLinkFailure(
		controller.EndPoint{Switch: aSw, Port: aPort},
		controller.EndPoint{Switch: bSw, Port: bPort},
		t0.Sub(s.start),
	)
	s.mu.Unlock()
	if err != nil {
		s.cfg.Logf("ctlnet: link recovery: %v", err)
		if rec == nil {
			return
		}
	}
	s.publish(RecoveryEvent{
		Kind:    "link",
		Failed:  rec.Failed,
		Backup:  rec.Backup,
		Latency: time.Since(t0),
	})
}

// detectLoop scans for silent switches and fails them over.
func (s *Server) detectLoop() {
	defer s.wg.Done()
	deadline := time.Duration(s.cfg.MissThreshold) * s.cfg.Interval
	ticker := time.NewTicker(s.cfg.CheckEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.quit:
			return
		case now := <-ticker.C:
			var dead []sbnet.SwitchID
			var silence []time.Duration
			s.mu.Lock()
			for id, last := range s.lastSeen {
				if now.Sub(last) >= deadline && s.ctl.Network().Switch(id).Role == sbnet.RoleActive {
					dead = append(dead, id)
					silence = append(silence, now.Sub(last))
				}
			}
			s.mu.Unlock()
			for i, id := range dead {
				s.mu.Lock()
				rec, err := s.ctl.RecoverNode(id, now.Sub(s.start))
				if err == nil {
					delete(s.lastSeen, id)
				}
				s.mu.Unlock()
				if err != nil {
					s.cfg.Logf("ctlnet: node recovery of %d: %v", id, err)
					continue
				}
				s.publish(RecoveryEvent{
					Kind:    "node",
					Failed:  rec.Failed,
					Backup:  rec.Backup,
					Latency: silence[i] + time.Since(now),
				})
			}
		}
	}
}

// publish sends a recovery event to all subscribers, dropping broken ones.
func (s *Server) publish(ev RecoveryEvent) {
	payload := encodeRecovery(ev)
	s.mu.Lock()
	subs := append([]net.Conn(nil), s.subs...)
	s.mu.Unlock()
	var broken []net.Conn
	for _, c := range subs {
		if err := writeFrame(c, msgRecovery, payload); err != nil {
			broken = append(broken, c)
		}
	}
	if len(broken) > 0 {
		s.mu.Lock()
		kept := s.subs[:0]
		for _, c := range s.subs {
			isBroken := false
			for _, b := range broken {
				if c == b {
					isBroken = true
					break
				}
			}
			if isBroken {
				c.Close()
			} else {
				kept = append(kept, c)
			}
		}
		s.subs = kept
		s.mu.Unlock()
	}
}
