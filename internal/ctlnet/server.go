package ctlnet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/controller"
	"sharebackup/internal/ctlplane"
	"sharebackup/internal/obs"
	"sharebackup/internal/obs/prof"
	"sharebackup/internal/obs/tsdb"
	"sharebackup/internal/routing"
	"sharebackup/internal/sbnet"
	"sharebackup/internal/topo"
)

// ClusterHooks is the server's view of its consensus replica when it runs
// as one member of a replicated controller cluster. ctlnet owns the
// interface (and ctlplane knows nothing of ctlnet) so the dependency points
// one way: server → consensus.
type ClusterHooks interface {
	// IsLeader reports whether this replica currently leads.
	IsLeader() bool
	// LeaderAddr returns the serving (agent-facing) address of the replica
	// believed to lead, or "" when unknown — sent to agents as the redirect
	// hint in msgNotLeader.
	LeaderAddr() string
	// Propose replicates the command through the log; once committed it is
	// applied on every replica via Server.ApplyCommand, and the local
	// apply's recovery record is returned.
	Propose(cmd ctlplane.Command, timeout time.Duration) (*controller.Recovery, error)
}

// proposeTimeout bounds one replicated-log commit, covering a leader
// election in the worst case (default election timeout ≈ 250–500 ms).
const proposeTimeout = 2 * time.Second

// ServerConfig tunes the TCP control plane.
type ServerConfig struct {
	// Interval is the expected keep-alive interval. Default 5 ms.
	Interval time.Duration
	// MissThreshold is how many missed intervals declare a node dead.
	// Default 3.
	MissThreshold int
	// CheckEvery is the detector's scan period. Default Interval.
	CheckEvery time.Duration
	// Logf, if set, receives server diagnostics (default: discarded).
	//
	// Concurrency contract: the server reaches its log path from the
	// accept loop, every per-connection goroutine, and the detector scan,
	// but all diagnostics are routed through the event bus (whose sink
	// dispatch holds one lock) and Logf itself is additionally serialized
	// by a server-private mutex — so Logf is never invoked concurrently
	// and needs no locking of its own.
	Logf func(format string, args ...interface{})
	// Obs receives the server's structured events (failure-declared,
	// recovery-complete, tables-preloaded, log) with wall-clock
	// timestamps relative to server start. Defaults to obs.Default so
	// command-level -trace/-events flags observe the server without
	// plumbing; set it explicitly to isolate a server in tests. If the bus
	// has no process name yet, the server names it "controller".
	Obs *obs.Bus
	// CSAddrs lists circuit-switch control-service addresses. The server
	// dials each at startup, measures clock offsets (emitting clock-sync
	// events the trace stitcher aligns epochs with), and mirrors every
	// recovery to each service as a traced reconfiguration batch — making
	// the controller-to-circuit-switch leg a measured hop of the recovery's
	// cross-process trace. Empty disables mirroring.
	CSAddrs []string
	// CSChanges maps a recovery to the circuit-change batch mirrored to
	// each circuit switch. Default: one crossbar swap of ports 0 and 1.
	CSChanges func(rec *controller.Recovery) []circuit.Change
	// TSDB backs the msgTSReq wire query with windowed metric history.
	// Nil means the server builds its own store over the controller's
	// registry (1s interval) and owns its lifecycle (started here, closed
	// in Close); a caller-provided store is only read.
	TSDB *tsdb.Store
	// Shards is the number of keep-alive fan-in shards (see shard.go): a
	// connection reader only appends to its shard's pending list, and one
	// goroutine per shard folds and scans — the keep-alive hot path never
	// takes the server or controller lock. Default 8, capped at 254.
	Shards int
	// Pollers is the number of multiplexed reader loops (epoll instances
	// on Linux, pool workers elsewhere) parked connections are spread
	// over. Together with Shards it bounds the steady-state goroutine
	// count regardless of how many agents connect. Default 2.
	Pollers int
	// FleetSize widens the keep-alive tracking range beyond the network
	// model: switch IDs in [0, max(FleetSize, NumSwitches)) are accepted
	// on the keep-alive path (sharded by ID for out-of-model entries), but
	// only in-model switches are recovery-eligible — a silent synthetic ID
	// is simply forgotten. This is how the fleet bench drives 10k+ agents
	// through a server whose fat-tree model is far smaller. Default 0
	// (track exactly the network model).
	FleetSize int
	// Cluster, when set, makes this server one replica of a replicated
	// controller cluster: recovery mutations are proposed into the
	// replicated log instead of applied directly, non-leaders redirect
	// agents with msgNotLeader, and link reports are acknowledged so agents
	// can resend across a leader failover. Nil means standalone.
	Cluster ClusterHooks
}

func (c *ServerConfig) setDefaults() {
	if c.Interval == 0 {
		c.Interval = 5 * time.Millisecond
	}
	if c.MissThreshold == 0 {
		c.MissThreshold = 3
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = c.Interval
	}
	if c.Obs == nil {
		c.Obs = obs.Default
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Shards > 254 {
		c.Shards = 254 // shard indexes stage in uint8 scratch (see seenBatch)
	}
	if c.Pollers == 0 {
		c.Pollers = 2
	}
}

// Server is the controller endpoint: it accepts switch agents and monitors,
// tracks keep-alives on the wall clock, and drives failover on the
// underlying network when a switch goes silent.
type Server struct {
	cfg       ServerConfig
	ctl       *controller.Controller
	ln        net.Listener
	start     time.Time
	bus       *obs.Bus
	csClients []*CSClient
	tsdb      *tsdb.Store
	ownsTS    bool

	// Runtime metrics, merged into the controller's registry so one varz
	// snapshot covers both layers.
	mKeepalives  *obs.Counter
	mHellos      *obs.Counter
	mLinkReports *obs.Counter
	mTablePushes *obs.Counter
	mProbeMisses *obs.Counter
	mLogLines    *obs.Counter
	mUnknownMsgs *obs.Counter
	mWireErrors  *obs.Counter
	mKABatches   *obs.Counter
	gSubscribers *obs.Gauge
	gConns       *obs.Gauge

	logMu sync.Mutex // serializes cfg.Logf (see ServerConfig.Logf)

	// Keep-alive fan-in (shard.go): per-failure-group shards scanned by
	// their own goroutines, funneling dead candidates into recoverLoop.
	shards []*kaShard
	deadCh chan deadCandidate

	// poller multiplexes parked connections (poller.go); numSwitches and
	// fleetSize are fixed at construction so the keep-alive hot path never
	// consults the network model's size under a lock.
	poller      connPoller
	numSwitches int
	fleetSize   int

	mu     sync.Mutex
	subs   []net.Conn
	conns  map[net.Conn]*pollConn // live agent sessions, closed on shutdown
	tables map[int][]byte         // per-pod serialized combined tables
	// appliedCmds is the ordered replicated-command history — the replay
	// snapshot (SnapshotState) and the restore cursor (RestoreState applies
	// only the tail past this prefix).
	appliedCmds [][]byte
	closed      bool

	wg   sync.WaitGroup
	quit chan struct{}
}

// logf routes a diagnostic line through the event bus (serialized sink
// dispatch) and the optional ServerConfig.Logf (serialized by logMu).
func (s *Server) logf(format string, args ...interface{}) {
	s.mLogLines.Inc()
	s.bus.Logf(time.Since(s.start), true, format, args...)
	if s.cfg.Logf != nil {
		s.logMu.Lock()
		s.cfg.Logf(format, args...)
		s.logMu.Unlock()
	}
}

// Varz renders the merged controller+server metric registry as a text
// snapshot — the control plane's "/varz" dump, also served over the wire
// protocol (see FetchVarz).
func (s *Server) Varz() string {
	return fmt.Sprintf("ctlnet.uptime_ns %d\n", time.Since(s.start).Nanoseconds()) +
		s.ctl.Metrics().Snapshot()
}

// timeSeriesJSON renders the store's series (last n points each; 0 means
// 60) as JSON, halving the point budget as needed to respect the wire
// protocol's frame-size limit.
func (s *Server) timeSeriesJSON(n int) []byte {
	if n <= 0 || n > 1<<15 {
		n = 60
	}
	for {
		data, err := json.Marshal(s.tsdb.All(n))
		if err != nil {
			return []byte("[]")
		}
		if len(data)+1 <= maxFrame || n == 0 {
			return data
		}
		n /= 2
	}
}

// NewServer starts a controller server listening on addr (use
// "127.0.0.1:0" for tests). The controller's virtual clock is driven from
// the wall clock relative to server start.
func NewServer(addr string, ctl *controller.Controller, cfg ServerConfig) (*Server, error) {
	cfg.setDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlnet: listen: %w", err)
	}
	s := &Server{
		cfg:    cfg,
		ctl:    ctl,
		ln:     ln,
		start:  time.Now(),
		bus:    cfg.Obs,
		conns:  make(map[net.Conn]*pollConn),
		deadCh: make(chan deadCandidate, 1024),
		quit:   make(chan struct{}),
	}
	s.numSwitches = ctl.Network().NumSwitches()
	s.fleetSize = s.numSwitches
	if cfg.FleetSize > s.fleetSize {
		s.fleetSize = cfg.FleetSize
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &kaShard{lastSeen: make(map[sbnet.SwitchID]time.Time)})
	}
	reg := ctl.Metrics()
	s.mKeepalives = reg.Counter("ctlnet.keepalives")
	s.mHellos = reg.Counter("ctlnet.hellos")
	s.mLinkReports = reg.Counter("ctlnet.link_reports")
	s.mTablePushes = reg.Counter("ctlnet.table_pushes")
	s.mProbeMisses = reg.Counter("ctlnet.probe_misses")
	s.mLogLines = reg.Counter("ctlnet.log_lines")
	s.mUnknownMsgs = reg.Counter("ctlnet.unknown_msgs")
	s.mWireErrors = reg.Counter("ctlnet.wire_errors")
	s.mKABatches = reg.Counter("ctlnet.ka_batches")
	s.gSubscribers = reg.Gauge("ctlnet.subscribers")
	s.gConns = reg.Gauge("ctlnet.connections")
	s.poller = newPoller(s, cfg.Pollers)
	s.tsdb = cfg.TSDB
	if s.tsdb == nil {
		s.tsdb = tsdb.New(tsdb.Config{Registry: reg})
		s.ownsTS = true
		s.tsdb.Start()
	}
	// The controller below this server runs on the server's virtual clock;
	// give it the same bus so its spans and the server's events interleave
	// in one stream.
	if ctl.Observer() == nil {
		ctl.SetObserver(s.bus)
	}
	if s.bus.Proc() == "" {
		s.bus.SetProc("controller")
	}
	for _, addr := range cfg.CSAddrs {
		cl, err := DialCS(addr)
		if err != nil {
			for _, c := range s.csClients {
				c.Close()
			}
			s.poller.close()
			ln.Close()
			return nil, fmt.Errorf("ctlnet: cs dial %s: %w", addr, err)
		}
		s.csClients = append(s.csClients, cl)
		// Three probes give the stitcher a median over per-exchange jitter.
		for i := 0; i < 3; i++ {
			s.syncCSClock(cl)
		}
	}
	s.wg.Add(2 + len(s.shards))
	go s.acceptLoop()
	go s.recoverLoop()
	for _, sh := range s.shards {
		go s.shardLoop(sh)
	}
	return s, nil
}

// Now returns the server's epoch offset (time since start) — the timestamp
// base for every event the server emits, exported so a co-located consensus
// replica (ctlplane.NodeConfig.Now) stamps its election events on the same
// epoch.
func (s *Server) Now() time.Duration { return time.Since(s.start) }

// syncCSClock runs one clock-sync exchange against a circuit-switch service
// and emits the resulting offset edge for the trace stitcher.
func (s *Server) syncCSClock(cl *CSClient) {
	off, rtt, proc, err := cl.SyncClock(s.start)
	if err != nil {
		s.logf("ctlnet: cs clock sync: %v", err)
		return
	}
	if proc != "" && s.bus.Enabled() {
		ev := obs.NewEvent(obs.KindClockSync, time.Since(s.start))
		ev.Wall = true
		ev.Detail = proc
		ev.Offset = off
		ev.RTT = rtt
		s.bus.Emit(ev)
	}
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for its goroutines. The poller stops
// before any parked connection is closed — its readers use raw descriptors
// on Linux, and a descriptor must never be closed while a reader loop could
// still dequeue an event for it (see poller_linux.go on fd recycling).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	subs := s.subs
	s.subs = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.poller.close()
	for _, c := range subs {
		c.Close()
	}
	// Sever live agent sessions too: a killed cluster replica must not wait
	// for its agents to hang up first (they are busy failing over).
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	if s.ownsTS {
		s.tsdb.Close()
	}
	for _, c := range s.csClients {
		c.Close()
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
			}
			s.logf("ctlnet: accept: %v", err)
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		pc := &pollConn{conn: conn, fd: -1}
		if fd, ok := connFD(conn); ok {
			pc.fd = fd
		}
		s.conns[conn] = pc
		s.mu.Unlock()
		s.gConns.Add(1)
		// Park immediately: no per-connection goroutine. The first frame
		// (usually a hello) promotes the conn to a serveActive handler.
		s.poller.park(pc)
	}
}

// replyWriteTimeout bounds server->agent reply writes. Fast-path replies
// are written from poller context, so a stalled peer must fail fast rather
// than wedge a reader loop that serves thousands of other connections.
const replyWriteTimeout = 2 * time.Second

// writeReply writes one reply frame with a bounded write deadline.
func writeReply(conn net.Conn, typ byte, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(replyWriteTimeout))
	err := writeFrame(conn, typ, payload)
	conn.SetWriteDeadline(time.Time{})
	return err
}

// wireError counts a malformed steady-state payload. The frame is already
// length-delimited and consumed, so the stream stays in sync — skip it and
// keep the session (and, with batching, the whole agent group behind it)
// alive. Only unrecoverable framing errors disconnect.
func (s *Server) wireError(err error) {
	s.mWireErrors.Inc()
	s.logf("ctlnet: wire error (frame skipped): %v", err)
}

// handleFrame dispatches one frame for pc. It is the single dispatch point
// shared by the poller fast path (keep-alives, clock syncs) and serveActive
// (slow frames). A non-nil return tears the connection down; malformed
// payloads on steady-state message types are skipped via wireError instead.
// payload may alias a reader buffer and must not be retained.
func (s *Server) handleFrame(pc *pollConn, typ byte, payload []byte, rc *readCtx) error {
	conn := pc.conn
	switch typ {
	case msgHello:
		id, err := decodeHello(payload)
		if err != nil {
			// Handshake integrity: a malformed hello is a protocol
			// violation from a client that never registered — drop it.
			s.logf("ctlnet: %v", err)
			return err
		}
		s.mHellos.Inc()
		if !s.isLeader() {
			return s.redirect(conn)
		}
		s.seen(id)
		// Hot-standby provisioning (Section 4.3): edge-group
		// switches — regular and backup alike — receive their
		// pod's combined failure-group table on registration.
		// Out-of-model fleet IDs have no table.
		if int(id) >= s.numSwitches {
			return nil
		}
		if tbl := s.tableFor(id); tbl != nil {
			if err := writeReply(conn, msgTableLoad, tbl); err != nil {
				s.logf("ctlnet: table push to %d: %v", id, err)
				return err
			}
			s.mTablePushes.Inc()
			if s.bus.Enabled() {
				ev := obs.NewEvent(obs.KindTablesPreloaded, time.Since(s.start))
				ev.Wall = true
				ev.Switch = int32(id)
				ev.Count = int32(len(tbl))
				s.bus.Emit(ev)
			}
		}
	case msgKeepAlive:
		id, _, err := decodeKeepAlive(payload)
		if err != nil {
			s.wireError(err)
			return nil
		}
		s.mKeepalives.Inc()
		if !s.isLeader() {
			return s.redirectPaced(pc)
		}
		s.seen(id)
	case msgKeepAliveBatch:
		cnt, err := kaBatchCount(payload)
		if err != nil {
			s.wireError(err)
			return nil
		}
		s.mKABatches.Inc()
		s.mKeepalives.Add(int64(cnt))
		if !s.isLeader() {
			return s.redirectPaced(pc)
		}
		s.seenBatch(payload, cnt, rc)
	case msgLinkFail:
		aSw, aPort, bSw, bPort, err := decodeLinkFail(payload)
		if err != nil {
			s.wireError(err)
			return nil
		}
		s.mLinkReports.Inc()
		s.handleLinkFail(conn, obs.TraceContext{}, 0, aSw, aPort, bSw, bPort)
	case msgLinkFailTraced:
		ctx, detection, aSw, aPort, bSw, bPort, err := decodeLinkFailTraced(payload)
		if err != nil {
			s.wireError(err)
			return nil
		}
		s.mLinkReports.Inc()
		s.handleLinkFail(conn, ctx, detection, aSw, aPort, bSw, bPort)
	case msgLeaderReq:
		isLeader := s.isLeader()
		addr := s.Addr()
		if !isLeader {
			addr = s.leaderAddr()
		}
		if err := writeReply(conn, msgLeaderInfo, encodeLeaderInfo(isLeader, addr)); err != nil {
			s.logf("ctlnet: leader info reply: %v", err)
			return err
		}
	case msgClockSync:
		t1, err := decodeClockSync(payload)
		if err != nil {
			s.wireError(err)
			return nil
		}
		ack := encodeClockSyncAck(t1, time.Since(s.start).Nanoseconds(), s.bus.Proc())
		if err := writeReply(conn, msgClockSyncAck, ack); err != nil {
			s.logf("ctlnet: clock sync ack: %v", err)
			return err
		}
	case msgVarzReq:
		if err := writeReply(conn, msgVarz, []byte(s.Varz())); err != nil {
			s.logf("ctlnet: varz reply: %v", err)
			return err
		}
	case msgTSReq:
		n := 0
		if len(payload) >= 2 {
			n = int(payload[0])<<8 | int(payload[1])
		}
		if err := writeReply(conn, msgTS, s.timeSeriesJSON(n)); err != nil {
			s.logf("ctlnet: timeseries reply: %v", err)
			return err
		}
	case msgSubscribe:
		subscribed := false
		s.mu.Lock()
		if !s.closed {
			s.subs = append(s.subs, conn)
			pc.subscribed = true
			subscribed = true
			s.gSubscribers.Set(int64(len(s.subs)))
		}
		s.mu.Unlock()
		if !subscribed {
			return net.ErrClosed
		}
		if err := writeReply(conn, msgSubAck, nil); err != nil {
			s.logf("ctlnet: subscribe ack: %v", err)
			return err
		}
	default:
		// Forward compatibility: frames are length-prefixed, so the
		// payload of an unrecognized type is already consumed — skip it
		// and keep the session alive rather than killing a newer agent
		// that speaks additional message types.
		s.mUnknownMsgs.Inc()
		s.logf("ctlnet: skipping unknown message type %d", typ)
	}
	return nil
}

// redirectPaced rate-limits msgNotLeader on the keep-alive firehose.
func (s *Server) redirectPaced(pc *pollConn) error {
	if time.Since(pc.lastRedirect) < 250*time.Millisecond {
		return nil
	}
	pc.lastRedirect = time.Now()
	return s.redirect(pc.conn)
}

// isLeader reports whether this server may mutate controller state:
// standalone servers always lead; cluster replicas ask their consensus node.
func (s *Server) isLeader() bool {
	return s.cfg.Cluster == nil || s.cfg.Cluster.IsLeader()
}

// leaderAddr is the redirect hint for agents ("" when unknown).
func (s *Server) leaderAddr() string {
	if s.cfg.Cluster == nil {
		return s.Addr()
	}
	return s.cfg.Cluster.LeaderAddr()
}

// redirect tells an agent where the leader is.
func (s *Server) redirect(conn net.Conn) error {
	return writeFrame(conn, msgNotLeader, []byte(s.leaderAddr()))
}

// tableFor builds (and caches) the serialized combined table for an
// edge-group switch's pod; nil for agg/core switches, whose shared tables
// are a degenerate case the agents already derive from k.
func (s *Server) tableFor(id sbnet.SwitchID) []byte {
	net := s.ctl.Network()
	sw := net.Switch(id)
	if sw.Kind != topo.KindEdge {
		return nil
	}
	pod := net.Group(sw.Group).Pod
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tables == nil {
		s.tables = make(map[int][]byte)
	}
	if b, ok := s.tables[pod]; ok {
		return b
	}
	vt, err := routing.BuildVLANTable(net.K(), pod)
	if err != nil {
		s.logf("ctlnet: building table for pod %d: %v", pod, err)
		return nil
	}
	b, err := vt.MarshalBinary()
	if err != nil {
		s.logf("ctlnet: encoding table for pod %d: %v", pod, err)
		return nil
	}
	s.tables[pod] = b
	return b
}

// handleLinkFail turns a link-failure report into a replicated command (or
// a direct apply when standalone) and acknowledges the outcome so agents
// can resend reliably across a leader failover.
func (s *Server) handleLinkFail(conn net.Conn, ctx obs.TraceContext, detection time.Duration, aSw sbnet.SwitchID, aPort int, bSw sbnet.SwitchID, bPort int) {
	if !s.isLeader() {
		if err := s.redirect(conn); err != nil {
			s.logf("ctlnet: link report redirect: %v", err)
		}
		return
	}
	// Idempotent resend: an agent that reported to a leader which committed
	// the recovery but died before acking will resend here. If neither
	// endpoint is active anymore, the recovery this report describes has
	// already been applied — ack success without proposing a duplicate.
	if s.linkAlreadyRecovered(aSw, bSw) {
		if err := writeFrame(conn, msgReportAck, encodeReportAck(reportAckOK)); err != nil {
			s.logf("ctlnet: report ack: %v", err)
		}
		return
	}
	cmd := ctlplane.Command{
		Kind:        ctlplane.CmdRecoverLink,
		ASwitch:     int32(aSw),
		APort:       int32(aPort),
		BSwitch:     int32(bSw),
		BPort:       int32(bPort),
		AtNS:        time.Since(s.start).Nanoseconds(),
		DetectionNS: detection.Nanoseconds(),
		Trace:       ctx.Trace,
		Span:        ctx.Span,
		Proc:        ctx.Proc,
	}
	var err error
	if s.cfg.Cluster != nil {
		_, err = s.cfg.Cluster.Propose(cmd, proposeTimeout)
	} else {
		_, err = s.ApplyCommand(cmd.Encode())
	}
	status := reportAckOK
	if err != nil {
		status = reportAckFailed
		s.logf("ctlnet: link recovery: %v", err)
	}
	if err := writeFrame(conn, msgReportAck, encodeReportAck(status)); err != nil {
		s.logf("ctlnet: report ack: %v", err)
	}
}

// linkAlreadyRecovered reports whether both reported endpoints have already
// left active duty — the signature of a recovery that committed on a
// previous leader.
func (s *Server) linkAlreadyRecovered(aSw, bSw sbnet.SwitchID) bool {
	net := s.ctl.Network()
	n := net.NumSwitches()
	if int(aSw) < 0 || int(aSw) >= n || int(bSw) < 0 || int(bSw) >= n {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return net.Switch(aSw).Role != sbnet.RoleActive && net.Switch(bSw).Role != sbnet.RoleActive
}

// recoverDead proposes (or, standalone, applies) the node failover for one
// silent switch found by a shard scan.
func (s *Server) recoverDead(c deadCandidate) {
	cmd := ctlplane.Command{
		Kind:       ctlplane.CmdRecoverNode,
		Switch:     int32(c.id),
		LastSeenNS: c.lastSeen.Sub(s.start).Nanoseconds(),
		AtNS:       time.Since(s.start).Nanoseconds(),
	}
	var err error
	if s.cfg.Cluster != nil {
		if !s.cfg.Cluster.IsLeader() {
			return
		}
		_, err = s.cfg.Cluster.Propose(cmd, proposeTimeout)
	} else {
		_, err = s.ApplyCommand(cmd.Encode())
	}
	if err != nil {
		s.logf("ctlnet: node recovery of %d: %v", c.id, err)
	}
}

// ApplyCommand applies one committed (or, standalone, direct) controller
// mutation and returns its recovery. Kept for callers that know they hold a
// single recover command; batch commands apply fine but return a nil
// recovery — use ApplyReplicated to see per-sub-command results.
func (s *Server) ApplyCommand(data []byte) (*controller.Recovery, error) {
	res, err := s.applyReplicated(data, true)
	rec, _ := res.(*controller.Recovery)
	return rec, err
}

// ApplyReplicated is the consensus node's Apply hook: every replica —
// leader and follower alike — runs the identical command against its own
// controller and network copy, with all timestamps taken from the command,
// so the applied state is deterministic across the cluster. A batch command
// applies its sub-commands in encoded order under one lock acquisition and
// returns []ctlplane.BatchResult; a single command returns its
// *controller.Recovery.
func (s *Server) ApplyReplicated(data []byte) (any, error) {
	return s.applyReplicated(data, true)
}

// appliedResult carries one command's outcome from the locked apply to the
// live side effects (event emit, CS mirroring, subscriber publish).
type appliedResult struct {
	cmd        ctlplane.Command
	rec        *controller.Recovery
	err        error
	processing time.Duration
}

func (s *Server) applyReplicated(data []byte, live bool) (any, error) {
	cmd, err := ctlplane.DecodeCommand(data)
	if err != nil {
		return nil, err
	}
	if cmd.Kind == ctlplane.CmdBatch {
		results := make([]ctlplane.BatchResult, len(cmd.Sub))
		applied := make([]appliedResult, 0, len(cmd.Sub))
		s.mu.Lock()
		// One history entry for the whole batch: replay re-applies it as a
		// batch, in the same sub-command order, so the rebuilt state is
		// identical (the order is fixed by the log entry, not by which
		// proposer goroutine won a race).
		s.appliedCmds = append(s.appliedCmds, append([]byte(nil), data...))
		for i, sub := range cmd.Sub {
			sc, derr := ctlplane.DecodeCommand(sub)
			if derr != nil || sc.Kind == ctlplane.CmdBatch {
				if derr == nil {
					derr = errors.New("ctlnet: nested batch command")
				}
				results[i] = ctlplane.BatchResult{Err: derr}
				continue
			}
			ar := s.applyLocked(sc, live)
			results[i] = ctlplane.BatchResult{Val: ar.rec, Err: ar.err}
			if ar.rec != nil {
				applied = append(applied, ar)
			}
		}
		s.mu.Unlock()
		if live {
			for _, ar := range applied {
				s.finishLive(ar)
			}
		}
		return results, nil
	}
	s.mu.Lock()
	// Record the command before knowing its outcome: failed recoveries are
	// part of the deterministic history too (replicas replaying the log
	// must fail them identically).
	s.appliedCmds = append(s.appliedCmds, append([]byte(nil), data...))
	ar := s.applyLocked(cmd, live)
	s.mu.Unlock()
	if ar.err != nil && ar.rec == nil {
		return nil, ar.err
	}
	if !live {
		// Snapshot replay rebuilds state only; the leader already emitted,
		// mirrored, and published this recovery when it happened.
		return ar.rec, ar.err
	}
	s.finishLive(ar)
	return ar.rec, ar.err
}

// applyLocked runs one decoded recover command against the controller.
// Caller holds s.mu.
func (s *Server) applyLocked(cmd ctlplane.Command, live bool) appliedResult {
	t0 := time.Now()
	ar := appliedResult{cmd: cmd}
	switch cmd.Kind {
	case ctlplane.CmdRecoverNode:
		if cmd.LastSeenNS > 0 {
			s.ctl.Heartbeat(sbnet.SwitchID(cmd.Switch), time.Duration(cmd.LastSeenNS))
		}
		ar.rec, ar.err = s.ctl.RecoverNode(sbnet.SwitchID(cmd.Switch), time.Duration(cmd.AtNS))
	case ctlplane.CmdRecoverLink:
		traced := live && cmd.Trace != 0
		if traced {
			// The reporting agent opened the recovery's root span; the
			// controller's BeginSpan below joins it as a child.
			s.bus.SetRemoteParent(obs.TraceContext{Trace: cmd.Trace, Span: cmd.Span, Proc: cmd.Proc})
		}
		ar.rec, ar.err = s.ctl.ReportLinkFailure(
			controller.EndPoint{Switch: sbnet.SwitchID(cmd.ASwitch), Port: int(cmd.APort)},
			controller.EndPoint{Switch: sbnet.SwitchID(cmd.BSwitch), Port: int(cmd.BPort)},
			time.Duration(cmd.AtNS),
		)
		if ar.err != nil && ar.rec == nil && traced {
			// Recovery never opened a span; drop the staged remote parent so
			// it cannot leak into an unrelated recovery.
			s.bus.EndSpan()
		}
	}
	ar.processing = time.Since(t0)
	return ar
}

// finishLive runs the leader-visible side effects of one applied recovery.
func (s *Server) finishLive(ar appliedResult) {
	processing := ar.processing
	detection := time.Duration(ar.cmd.DetectionNS)
	s.emitRecovered(ar.rec, time.Since(s.start)-processing, processing, detection)
	if s.isLeader() {
		// Followers apply the same command but must not re-reconfigure the
		// shared circuit switches the leader already drove.
		s.mirrorCS(ar.rec)
	}
	ev := RecoveryEvent{Kind: "link", Failed: ar.rec.Failed, Backup: ar.rec.Backup, Latency: processing}
	if ar.cmd.Kind == ctlplane.CmdRecoverNode {
		ev.Kind = "node"
		ev.Latency = time.Duration(ar.cmd.AtNS-ar.cmd.LastSeenNS) + processing
	}
	s.publish(ev)
}

// SnapshotState serializes the applied command history — the replay-based
// snapshot a lagging replica (or a quorum-loss rebootstrap) restores from.
func (s *Server) SnapshotState() []byte {
	s.mu.Lock()
	cmds := append([][]byte(nil), s.appliedCmds...)
	s.mu.Unlock()
	return ctlplane.EncodeReplayLog(cmds)
}

// RestoreState replays a snapshot's command tail past this replica's own
// applied prefix (the log-prefix property guarantees the prefixes agree).
func (s *Server) RestoreState(data []byte) error {
	rl, err := ctlplane.DecodeReplayLog(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	n := len(s.appliedCmds)
	s.mu.Unlock()
	for i := n; i < len(rl.Commands); i++ {
		// Per-command errors are part of the history being replayed (the
		// leader logged them when they happened); only decode failures abort.
		if _, err := s.applyReplicated(rl.Commands[i], false); err != nil {
			if _, decodeErr := ctlplane.DecodeCommand(rl.Commands[i]); decodeErr != nil {
				return decodeErr
			}
		}
	}
	return nil
}

// mirrorCS sends the recovery's reconfiguration batch to every attached
// circuit-switch service, carrying the recovery's trace context so each
// crossbar reconfiguration lands as a child span of the controller's.
func (s *Server) mirrorCS(rec *controller.Recovery) {
	if len(s.csClients) == 0 || rec == nil {
		return
	}
	changes := []circuit.Change{{A: 0, B: 1}}
	if s.cfg.CSChanges != nil {
		changes = s.cfg.CSChanges(rec)
	}
	if len(changes) == 0 {
		return
	}
	ctx := obs.TraceContext{Trace: rec.Trace, Span: rec.Span, Proc: s.bus.Proc()}
	for _, cl := range s.csClients {
		if _, _, err := cl.ReconfigureTraced(ctx, changes); err != nil {
			s.logf("ctlnet: cs mirror: %v", err)
		}
	}
}

// emitRecovered publishes the wall-clock recovery-complete event for a
// recovery the server just drove: detection and circuit reconfiguration come
// from the controller's record (or the reporting agent's measured detection,
// when it sent one), the report phase is the measured server processing
// time, and T is the offset of completion since server start. The controller
// already emitted the virtual-time span; this event is the wall-clock view
// of the same recovery, sharing its trace and span IDs so stitchers and the
// SLO watchdog see one recovery, not two.
func (s *Server) emitRecovered(rec *controller.Recovery, at, processing, detection time.Duration) {
	if !s.bus.Enabled() {
		return
	}
	if detection == 0 {
		detection = rec.Detection
	}
	ev := obs.NewEvent(obs.KindRecoveryComplete, at+processing)
	ev.Wall = true
	ev.Detail = rec.Kind
	ev.Span = rec.Span
	ev.Trace = rec.Trace
	if len(rec.Failed) > 0 {
		ev.Switch = int32(rec.Failed[0])
	}
	if len(rec.Backup) > 0 {
		ev.Backup = int32(rec.Backup[0])
	}
	ev.Count = int32(len(rec.Failed))
	ev.Detection = detection
	ev.Report = processing
	ev.Reconfig = rec.Reconfig
	ev.Total = detection + processing + rec.Reconfig
	s.bus.Emit(ev)
}

// publish sends a recovery event to all subscribers, dropping broken ones.
func (s *Server) publish(ev RecoveryEvent) {
	prof.Do(prof.PhaseNotify, func() { s.publishAll(ev) })
}

func (s *Server) publishAll(ev RecoveryEvent) {
	payload := encodeRecovery(ev)
	s.mu.Lock()
	subs := append([]net.Conn(nil), s.subs...)
	s.mu.Unlock()
	var broken []net.Conn
	for _, c := range subs {
		if err := writeFrame(c, msgRecovery, payload); err != nil {
			broken = append(broken, c)
		}
	}
	if len(broken) > 0 {
		s.mu.Lock()
		kept := s.subs[:0]
		for _, c := range s.subs {
			isBroken := false
			for _, b := range broken {
				if c == b {
					isBroken = true
					break
				}
			}
			if isBroken {
				c.Close()
			} else {
				kept = append(kept, c)
			}
		}
		s.subs = kept
		s.gSubscribers.Set(int64(len(s.subs)))
		s.mu.Unlock()
	}
}
