package ctlnet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/controller"
	"sharebackup/internal/obs"
	"sharebackup/internal/obs/prof"
	"sharebackup/internal/obs/tsdb"
	"sharebackup/internal/routing"
	"sharebackup/internal/sbnet"
	"sharebackup/internal/topo"
)

// ServerConfig tunes the TCP control plane.
type ServerConfig struct {
	// Interval is the expected keep-alive interval. Default 5 ms.
	Interval time.Duration
	// MissThreshold is how many missed intervals declare a node dead.
	// Default 3.
	MissThreshold int
	// CheckEvery is the detector's scan period. Default Interval.
	CheckEvery time.Duration
	// Logf, if set, receives server diagnostics (default: discarded).
	//
	// Concurrency contract: the server reaches its log path from the
	// accept loop, every per-connection goroutine, and the detector scan,
	// but all diagnostics are routed through the event bus (whose sink
	// dispatch holds one lock) and Logf itself is additionally serialized
	// by a server-private mutex — so Logf is never invoked concurrently
	// and needs no locking of its own.
	Logf func(format string, args ...interface{})
	// Obs receives the server's structured events (failure-declared,
	// recovery-complete, tables-preloaded, log) with wall-clock
	// timestamps relative to server start. Defaults to obs.Default so
	// command-level -trace/-events flags observe the server without
	// plumbing; set it explicitly to isolate a server in tests. If the bus
	// has no process name yet, the server names it "controller".
	Obs *obs.Bus
	// CSAddrs lists circuit-switch control-service addresses. The server
	// dials each at startup, measures clock offsets (emitting clock-sync
	// events the trace stitcher aligns epochs with), and mirrors every
	// recovery to each service as a traced reconfiguration batch — making
	// the controller-to-circuit-switch leg a measured hop of the recovery's
	// cross-process trace. Empty disables mirroring.
	CSAddrs []string
	// CSChanges maps a recovery to the circuit-change batch mirrored to
	// each circuit switch. Default: one crossbar swap of ports 0 and 1.
	CSChanges func(rec *controller.Recovery) []circuit.Change
	// TSDB backs the msgTSReq wire query with windowed metric history.
	// Nil means the server builds its own store over the controller's
	// registry (1s interval) and owns its lifecycle (started here, closed
	// in Close); a caller-provided store is only read.
	TSDB *tsdb.Store
}

func (c *ServerConfig) setDefaults() {
	if c.Interval == 0 {
		c.Interval = 5 * time.Millisecond
	}
	if c.MissThreshold == 0 {
		c.MissThreshold = 3
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = c.Interval
	}
	if c.Obs == nil {
		c.Obs = obs.Default
	}
}

// Server is the controller endpoint: it accepts switch agents and monitors,
// tracks keep-alives on the wall clock, and drives failover on the
// underlying network when a switch goes silent.
type Server struct {
	cfg       ServerConfig
	ctl       *controller.Controller
	ln        net.Listener
	start     time.Time
	bus       *obs.Bus
	csClients []*CSClient
	tsdb      *tsdb.Store
	ownsTS    bool

	// Runtime metrics, merged into the controller's registry so one varz
	// snapshot covers both layers.
	mKeepalives  *obs.Counter
	mHellos      *obs.Counter
	mLinkReports *obs.Counter
	mTablePushes *obs.Counter
	mProbeMisses *obs.Counter
	mLogLines    *obs.Counter
	gSubscribers *obs.Gauge
	gConns       *obs.Gauge

	logMu sync.Mutex // serializes cfg.Logf (see ServerConfig.Logf)

	mu       sync.Mutex
	lastSeen map[sbnet.SwitchID]time.Time
	subs     []net.Conn
	tables   map[int][]byte // per-pod serialized combined tables
	closed   bool

	wg   sync.WaitGroup
	quit chan struct{}
}

// logf routes a diagnostic line through the event bus (serialized sink
// dispatch) and the optional ServerConfig.Logf (serialized by logMu).
func (s *Server) logf(format string, args ...interface{}) {
	s.mLogLines.Inc()
	s.bus.Logf(time.Since(s.start), true, format, args...)
	if s.cfg.Logf != nil {
		s.logMu.Lock()
		s.cfg.Logf(format, args...)
		s.logMu.Unlock()
	}
}

// Varz renders the merged controller+server metric registry as a text
// snapshot — the control plane's "/varz" dump, also served over the wire
// protocol (see FetchVarz).
func (s *Server) Varz() string {
	return fmt.Sprintf("ctlnet.uptime_ns %d\n", time.Since(s.start).Nanoseconds()) +
		s.ctl.Metrics().Snapshot()
}

// timeSeriesJSON renders the store's series (last n points each; 0 means
// 60) as JSON, halving the point budget as needed to respect the wire
// protocol's frame-size limit.
func (s *Server) timeSeriesJSON(n int) []byte {
	if n <= 0 || n > 1<<15 {
		n = 60
	}
	for {
		data, err := json.Marshal(s.tsdb.All(n))
		if err != nil {
			return []byte("[]")
		}
		if len(data)+1 <= maxFrame || n == 0 {
			return data
		}
		n /= 2
	}
}

// NewServer starts a controller server listening on addr (use
// "127.0.0.1:0" for tests). The controller's virtual clock is driven from
// the wall clock relative to server start.
func NewServer(addr string, ctl *controller.Controller, cfg ServerConfig) (*Server, error) {
	cfg.setDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlnet: listen: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		ctl:      ctl,
		ln:       ln,
		start:    time.Now(),
		bus:      cfg.Obs,
		lastSeen: make(map[sbnet.SwitchID]time.Time),
		quit:     make(chan struct{}),
	}
	reg := ctl.Metrics()
	s.mKeepalives = reg.Counter("ctlnet.keepalives")
	s.mHellos = reg.Counter("ctlnet.hellos")
	s.mLinkReports = reg.Counter("ctlnet.link_reports")
	s.mTablePushes = reg.Counter("ctlnet.table_pushes")
	s.mProbeMisses = reg.Counter("ctlnet.probe_misses")
	s.mLogLines = reg.Counter("ctlnet.log_lines")
	s.gSubscribers = reg.Gauge("ctlnet.subscribers")
	s.gConns = reg.Gauge("ctlnet.connections")
	s.tsdb = cfg.TSDB
	if s.tsdb == nil {
		s.tsdb = tsdb.New(tsdb.Config{Registry: reg})
		s.ownsTS = true
		s.tsdb.Start()
	}
	// The controller below this server runs on the server's virtual clock;
	// give it the same bus so its spans and the server's events interleave
	// in one stream.
	if ctl.Observer() == nil {
		ctl.SetObserver(s.bus)
	}
	if s.bus.Proc() == "" {
		s.bus.SetProc("controller")
	}
	for _, addr := range cfg.CSAddrs {
		cl, err := DialCS(addr)
		if err != nil {
			for _, c := range s.csClients {
				c.Close()
			}
			ln.Close()
			return nil, fmt.Errorf("ctlnet: cs dial %s: %w", addr, err)
		}
		s.csClients = append(s.csClients, cl)
		// Three probes give the stitcher a median over per-exchange jitter.
		for i := 0; i < 3; i++ {
			s.syncCSClock(cl)
		}
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.detectLoop()
	return s, nil
}

// syncCSClock runs one clock-sync exchange against a circuit-switch service
// and emits the resulting offset edge for the trace stitcher.
func (s *Server) syncCSClock(cl *CSClient) {
	off, rtt, proc, err := cl.SyncClock(s.start)
	if err != nil {
		s.logf("ctlnet: cs clock sync: %v", err)
		return
	}
	if proc != "" && s.bus.Enabled() {
		ev := obs.NewEvent(obs.KindClockSync, time.Since(s.start))
		ev.Wall = true
		ev.Detail = proc
		ev.Offset = off
		ev.RTT = rtt
		s.bus.Emit(ev)
	}
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for its goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	subs := s.subs
	s.subs = nil
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range subs {
		c.Close()
	}
	s.wg.Wait()
	if s.ownsTS {
		s.tsdb.Close()
	}
	for _, c := range s.csClients {
		c.Close()
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
			}
			s.logf("ctlnet: accept: %v", err)
			return
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	s.gConns.Add(1)
	defer s.gConns.Add(-1)
	subscribed := false
	defer func() {
		if !subscribed {
			conn.Close()
		}
	}()
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("ctlnet: conn %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		switch typ {
		case msgHello:
			id, err := decodeHello(payload)
			if err != nil {
				s.logf("ctlnet: %v", err)
				return
			}
			s.mHellos.Inc()
			s.seen(id)
			// Hot-standby provisioning (Section 4.3): edge-group
			// switches — regular and backup alike — receive their
			// pod's combined failure-group table on registration.
			if tbl := s.tableFor(id); tbl != nil {
				if err := writeFrame(conn, msgTableLoad, tbl); err != nil {
					s.logf("ctlnet: table push to %d: %v", id, err)
					return
				}
				s.mTablePushes.Inc()
				if s.bus.Enabled() {
					ev := obs.NewEvent(obs.KindTablesPreloaded, time.Since(s.start))
					ev.Wall = true
					ev.Switch = int32(id)
					ev.Count = int32(len(tbl))
					s.bus.Emit(ev)
				}
			}
		case msgKeepAlive:
			id, _, err := decodeKeepAlive(payload)
			if err != nil {
				s.logf("ctlnet: %v", err)
				return
			}
			s.mKeepalives.Inc()
			s.seen(id)
		case msgLinkFail:
			aSw, aPort, bSw, bPort, err := decodeLinkFail(payload)
			if err != nil {
				s.logf("ctlnet: %v", err)
				return
			}
			s.mLinkReports.Inc()
			s.handleLinkFail(obs.TraceContext{}, 0, aSw, aPort, bSw, bPort)
		case msgLinkFailTraced:
			ctx, detection, aSw, aPort, bSw, bPort, err := decodeLinkFailTraced(payload)
			if err != nil {
				s.logf("ctlnet: %v", err)
				return
			}
			s.mLinkReports.Inc()
			s.handleLinkFail(ctx, detection, aSw, aPort, bSw, bPort)
		case msgClockSync:
			t1, err := decodeClockSync(payload)
			if err != nil {
				s.logf("ctlnet: %v", err)
				return
			}
			ack := encodeClockSyncAck(t1, time.Since(s.start).Nanoseconds(), s.bus.Proc())
			if err := writeFrame(conn, msgClockSyncAck, ack); err != nil {
				s.logf("ctlnet: clock sync ack: %v", err)
				return
			}
		case msgVarzReq:
			if err := writeFrame(conn, msgVarz, []byte(s.Varz())); err != nil {
				s.logf("ctlnet: varz reply: %v", err)
				return
			}
		case msgTSReq:
			n := 0
			if len(payload) >= 2 {
				n = int(payload[0])<<8 | int(payload[1])
			}
			if err := writeFrame(conn, msgTS, s.timeSeriesJSON(n)); err != nil {
				s.logf("ctlnet: timeseries reply: %v", err)
				return
			}
		case msgSubscribe:
			s.mu.Lock()
			if !s.closed {
				s.subs = append(s.subs, conn)
				subscribed = true
				s.gSubscribers.Set(int64(len(s.subs)))
			}
			s.mu.Unlock()
			if !subscribed {
				return
			}
			if err := writeFrame(conn, msgSubAck, nil); err != nil {
				s.logf("ctlnet: subscribe ack: %v", err)
				return
			}
		default:
			s.logf("ctlnet: unknown message type %d", typ)
			return
		}
	}
}

// tableFor builds (and caches) the serialized combined table for an
// edge-group switch's pod; nil for agg/core switches, whose shared tables
// are a degenerate case the agents already derive from k.
func (s *Server) tableFor(id sbnet.SwitchID) []byte {
	net := s.ctl.Network()
	sw := net.Switch(id)
	if sw.Kind != topo.KindEdge {
		return nil
	}
	pod := net.Group(sw.Group).Pod
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tables == nil {
		s.tables = make(map[int][]byte)
	}
	if b, ok := s.tables[pod]; ok {
		return b
	}
	vt, err := routing.BuildVLANTable(net.K(), pod)
	if err != nil {
		s.logf("ctlnet: building table for pod %d: %v", pod, err)
		return nil
	}
	b, err := vt.MarshalBinary()
	if err != nil {
		s.logf("ctlnet: encoding table for pod %d: %v", pod, err)
		return nil
	}
	s.tables[pod] = b
	return b
}

func (s *Server) seen(id sbnet.SwitchID) {
	now := time.Now()
	s.mu.Lock()
	s.lastSeen[id] = now
	s.ctl.Heartbeat(id, now.Sub(s.start))
	s.mu.Unlock()
}

func (s *Server) handleLinkFail(ctx obs.TraceContext, detection time.Duration, aSw sbnet.SwitchID, aPort int, bSw sbnet.SwitchID, bPort int) {
	t0 := time.Now()
	s.mu.Lock()
	if ctx.Trace != 0 {
		// The reporting agent opened the recovery's root span; the
		// controller's BeginSpan below joins it as a child.
		s.bus.SetRemoteParent(ctx)
	}
	rec, err := s.ctl.ReportLinkFailure(
		controller.EndPoint{Switch: aSw, Port: aPort},
		controller.EndPoint{Switch: bSw, Port: bPort},
		t0.Sub(s.start),
	)
	if err != nil && rec == nil && ctx.Trace != 0 {
		// Recovery never opened a span; drop the staged remote parent so it
		// cannot leak into an unrelated recovery.
		s.bus.EndSpan()
	}
	s.mu.Unlock()
	if err != nil {
		s.logf("ctlnet: link recovery: %v", err)
		if rec == nil {
			return
		}
	}
	s.emitRecovered(rec, t0.Sub(s.start), time.Since(t0), detection)
	s.mirrorCS(rec)
	s.publish(RecoveryEvent{
		Kind:    "link",
		Failed:  rec.Failed,
		Backup:  rec.Backup,
		Latency: time.Since(t0),
	})
}

// mirrorCS sends the recovery's reconfiguration batch to every attached
// circuit-switch service, carrying the recovery's trace context so each
// crossbar reconfiguration lands as a child span of the controller's.
func (s *Server) mirrorCS(rec *controller.Recovery) {
	if len(s.csClients) == 0 || rec == nil {
		return
	}
	changes := []circuit.Change{{A: 0, B: 1}}
	if s.cfg.CSChanges != nil {
		changes = s.cfg.CSChanges(rec)
	}
	if len(changes) == 0 {
		return
	}
	ctx := obs.TraceContext{Trace: rec.Trace, Span: rec.Span, Proc: s.bus.Proc()}
	for _, cl := range s.csClients {
		if _, _, err := cl.ReconfigureTraced(ctx, changes); err != nil {
			s.logf("ctlnet: cs mirror: %v", err)
		}
	}
}

// emitRecovered publishes the wall-clock recovery-complete event for a
// recovery the server just drove: detection and circuit reconfiguration come
// from the controller's record (or the reporting agent's measured detection,
// when it sent one), the report phase is the measured server processing
// time, and T is the offset of completion since server start. The controller
// already emitted the virtual-time span; this event is the wall-clock view
// of the same recovery, sharing its trace and span IDs so stitchers and the
// SLO watchdog see one recovery, not two.
func (s *Server) emitRecovered(rec *controller.Recovery, at, processing, detection time.Duration) {
	if !s.bus.Enabled() {
		return
	}
	if detection == 0 {
		detection = rec.Detection
	}
	ev := obs.NewEvent(obs.KindRecoveryComplete, at+processing)
	ev.Wall = true
	ev.Detail = rec.Kind
	ev.Span = rec.Span
	ev.Trace = rec.Trace
	if len(rec.Failed) > 0 {
		ev.Switch = int32(rec.Failed[0])
	}
	if len(rec.Backup) > 0 {
		ev.Backup = int32(rec.Backup[0])
	}
	ev.Count = int32(len(rec.Failed))
	ev.Detection = detection
	ev.Report = processing
	ev.Reconfig = rec.Reconfig
	ev.Total = detection + processing + rec.Reconfig
	s.bus.Emit(ev)
}

// detectLoop scans for silent switches and fails them over.
func (s *Server) detectLoop() {
	defer s.wg.Done()
	deadline := time.Duration(s.cfg.MissThreshold) * s.cfg.Interval
	ticker := time.NewTicker(s.cfg.CheckEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.quit:
			return
		case now := <-ticker.C:
			var dead []sbnet.SwitchID
			var silence []time.Duration
			prof.Do(prof.PhaseDetect, func() {
				s.mu.Lock()
				for id, last := range s.lastSeen {
					if now.Sub(last) < deadline {
						if now.Sub(last) >= s.cfg.Interval {
							s.mProbeMisses.Inc()
						}
						continue
					}
					if s.ctl.Network().Switch(id).Role == sbnet.RoleActive {
						dead = append(dead, id)
						silence = append(silence, now.Sub(last))
					}
				}
				s.mu.Unlock()
			})
			for i, id := range dead {
				s.mu.Lock()
				rec, err := s.ctl.RecoverNode(id, now.Sub(s.start))
				if err == nil {
					delete(s.lastSeen, id)
				}
				s.mu.Unlock()
				if err != nil {
					s.logf("ctlnet: node recovery of %d: %v", id, err)
					continue
				}
				s.emitRecovered(rec, now.Sub(s.start), time.Since(now), 0)
				s.mirrorCS(rec)
				s.publish(RecoveryEvent{
					Kind:    "node",
					Failed:  rec.Failed,
					Backup:  rec.Backup,
					Latency: silence[i] + time.Since(now),
				})
			}
		}
	}
}

// publish sends a recovery event to all subscribers, dropping broken ones.
func (s *Server) publish(ev RecoveryEvent) {
	prof.Do(prof.PhaseNotify, func() { s.publishAll(ev) })
}

func (s *Server) publishAll(ev RecoveryEvent) {
	payload := encodeRecovery(ev)
	s.mu.Lock()
	subs := append([]net.Conn(nil), s.subs...)
	s.mu.Unlock()
	var broken []net.Conn
	for _, c := range subs {
		if err := writeFrame(c, msgRecovery, payload); err != nil {
			broken = append(broken, c)
		}
	}
	if len(broken) > 0 {
		s.mu.Lock()
		kept := s.subs[:0]
		for _, c := range s.subs {
			isBroken := false
			for _, b := range broken {
				if c == b {
					isBroken = true
					break
				}
			}
			if isBroken {
				c.Close()
			} else {
				kept = append(kept, c)
			}
		}
		s.subs = kept
		s.gSubscribers.Set(int64(len(s.subs)))
		s.mu.Unlock()
	}
}
