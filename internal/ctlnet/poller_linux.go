//go:build linux

package ctlnet

import (
	"io"
	"net"
	"sync"
	"syscall"
)

// The Linux backend: each of cfg.Pollers loops owns an epoll instance and
// the connections assigned to it (fd mod pollers). Go sockets are already
// non-blocking, so raw syscall.Read on the extracted fd drains a readable
// connection without touching the runtime netpoller; level-triggered epoll
// re-reports anything left behind.
//
// fd-recycling safety: events are processed under the loop's mutex, and a
// connection is always removed from the fd map (evict) before anything
// closes it. An event dequeued for an fd that was since evicted finds no
// map entry and is ignored; an fd recycled onto a *new* parked connection
// resolves, at processing time, to the new pollConn — which is exactly the
// connection that is readable.

// newPoller builds the platform poller: n epoll loops.
func newPoller(s *Server, n int) connPoller {
	set := &epollSet{}
	for i := 0; i < n; i++ {
		set.loops = append(set.loops, newEpollLoop(s))
	}
	return set
}

type epollSet struct {
	loops []*epollLoop
}

func (p *epollSet) loopFor(pc *pollConn) *epollLoop {
	if pc.fd >= 0 {
		return p.loops[pc.fd%len(p.loops)]
	}
	return p.loops[0]
}

func (p *epollSet) park(pc *pollConn)  { p.loopFor(pc).park(pc) }
func (p *epollSet) evict(pc *pollConn) { p.loopFor(pc).evict(pc) }
func (p *epollSet) close() {
	for _, l := range p.loops {
		l.close()
	}
}

type epollLoop struct {
	s    *Server
	epfd int
	// wake unblocks EpollWait for shutdown (self-pipe).
	wakeR, wakeW int
	rc           readCtx

	mu     sync.Mutex
	conns  map[int]*pollConn
	closed bool

	wg sync.WaitGroup
}

func newEpollLoop(s *Server) *epollLoop {
	l := &epollLoop{s: s, epfd: -1, wakeR: -1, wakeW: -1, conns: make(map[int]*pollConn)}
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return l // degenerate loop: park falls back to serveActive-per-conn
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return l
	}
	l.epfd, l.wakeR, l.wakeW = epfd, p[0], p[1]
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(l.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, l.wakeR, &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(p[0])
		syscall.Close(p[1])
		l.epfd, l.wakeR, l.wakeW = -1, -1, -1
		return l
	}
	l.wg.Add(1)
	go l.run()
	return l
}

// connFD extracts a TCP connection's raw file descriptor; (-1, false) for
// non-TCP conns (tests with pipes) or extraction failures.
func connFD(conn net.Conn) (int, bool) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return -1, false
	}
	rc, err := tc.SyscallConn()
	if err != nil {
		return -1, false
	}
	fd := -1
	if err := rc.Control(func(f uintptr) { fd = int(f) }); err != nil || fd < 0 {
		return -1, false
	}
	return fd, true
}

func (l *epollLoop) park(pc *pollConn) {
	if l.epfd < 0 || pc.fd < 0 {
		// No epoll (or no raw fd): fall back to a dedicated handler
		// goroutine, preserving correctness at the old cost for this conn.
		l.s.mu.Lock()
		closed := l.s.closed
		l.s.mu.Unlock()
		if closed {
			pc.conn.Close()
			return
		}
		l.s.wg.Add(1)
		go l.s.serveActiveBlocking(pc)
		return
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		pc.conn.Close()
		return
	}
	l.conns[pc.fd] = pc
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN | syscall.EPOLLRDHUP, Fd: int32(pc.fd)}
	err := syscall.EpollCtl(l.epfd, syscall.EPOLL_CTL_ADD, pc.fd, &ev)
	if err != nil {
		delete(l.conns, pc.fd)
	}
	l.mu.Unlock()
	if err != nil {
		l.s.dropConn(pc, err)
	}
}

func (l *epollLoop) evict(pc *pollConn) {
	if l.epfd < 0 || pc.fd < 0 {
		return
	}
	l.mu.Lock()
	l.evictLocked(pc)
	l.mu.Unlock()
}

func (l *epollLoop) evictLocked(pc *pollConn) {
	if cur, ok := l.conns[pc.fd]; ok && cur == pc {
		delete(l.conns, pc.fd)
		syscall.EpollCtl(l.epfd, syscall.EPOLL_CTL_DEL, pc.fd, nil)
	}
}

func (l *epollLoop) close() {
	if l.epfd < 0 {
		return
	}
	l.mu.Lock()
	already := l.closed
	l.closed = true
	l.mu.Unlock()
	if !already {
		var one [1]byte
		syscall.Write(l.wakeW, one[:])
	}
	l.wg.Wait()
	syscall.Close(l.epfd)
	syscall.Close(l.wakeR)
	syscall.Close(l.wakeW)
}

func (l *epollLoop) run() {
	defer l.wg.Done()
	events := make([]syscall.EpollEvent, 128)
	for {
		n, err := syscall.EpollWait(l.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return
		}
		var drops []*pollConn
		var dropErrs []error
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		for i := 0; i < n; i++ {
			fd := int(events[i].Fd)
			if fd == l.wakeR {
				continue // closed flag re-checked next wait
			}
			pc, ok := l.conns[fd]
			if !ok {
				continue
			}
			if err := l.serveReadable(pc); err != nil {
				if _, promoted := err.(handoffMarker); promoted {
					continue
				}
				l.evictLocked(pc)
				drops = append(drops, pc)
				dropErrs = append(dropErrs, err)
			}
		}
		closed := l.closed
		l.mu.Unlock()
		for i, pc := range drops {
			l.s.dropConn(pc, dropErrs[i])
		}
		if closed {
			return
		}
	}
}

// errHandoff is serveReadable's "not an error" signal that the conn was
// promoted to serveActive and must leave the fd map without dropping.
type handoffMarker struct{}

func (handoffMarker) Error() string { return "handoff" }

// serveReadable drains one readable parked connection (l.mu held): raw
// non-blocking reads into the accumulator, fast frames dispatched inline,
// slow frames promoting the conn to serveActive. Returns nil to keep the
// conn parked, handoffMarker{} after promotion, or a real error to drop.
func (l *epollLoop) serveReadable(pc *pollConn) error {
	for {
		spare := pc.accSpare(512)
		n, err := syscall.Read(pc.fd, spare)
		if n > 0 {
			pc.acc = pc.acc[:len(pc.acc)+n]
			handoff, perr := l.s.pumpBuffered(pc, &l.rc)
			if perr != nil {
				return perr
			}
			if handoff {
				l.evictLocked(pc)
				l.s.wg.Add(1)
				go l.s.serveActive(pc)
				return handoffMarker{}
			}
			continue
		}
		if n == 0 && err == nil {
			return io.EOF
		}
		switch err {
		case syscall.EAGAIN:
			pc.releaseAcc()
			return nil
		case syscall.EINTR:
			continue
		default:
			return err
		}
	}
}
