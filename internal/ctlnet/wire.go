// Package ctlnet puts ShareBackup's control plane on real sockets: switch
// agents speak a compact length-prefixed binary protocol over TCP to a
// controller server, which detects missed keep-alives, drives failover on
// the underlying sbnet.Network through the controller package, and publishes
// recovery events to subscribers. The paper argues (Section 5.3) that with
// an efficient controller implementation the switch-to-controller and
// controller-to-circuit-switch communication stays sub-millisecond; this
// package is the measurable stand-in for that claim — the loopback demo and
// tests time the detection-to-reconfiguration path end to end.
package ctlnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"sharebackup/internal/obs"
	"sharebackup/internal/sbnet"
)

// Message types.
const (
	msgHello     byte = 1 // agent -> server: int32 switch ID
	msgKeepAlive byte = 2 // agent -> server: int32 switch ID, uint64 seq
	msgLinkFail  byte = 3 // agent -> server: int32 switch, int32 port, int32 switch, int32 port
	msgSubscribe byte = 4 // monitor -> server: empty
	msgRecovery  byte = 5 // server -> monitor: recovery event
	msgSubAck    byte = 6 // server -> monitor: subscription registered
	msgTableLoad byte = 7 // server -> agent: preloaded failure-group table (§4.3)
	msgVarzReq   byte = 8 // client -> server: request the metrics snapshot
	msgVarz      byte = 9 // server -> client: text metrics snapshot

	// Clock synchronization (usable on both agent->server and
	// controller->circuit-switch sessions): the requester sends its local
	// epoch-relative send time t1; the responder echoes t1 and adds its own
	// epoch-relative receive time t2 plus its process name. The requester
	// computes, NTP-style, offset = (t1+t3)/2 - t2 (t3 its receive time),
	// meaning t_requester ~= t_responder + offset — what sbtap's stitcher
	// uses to align independent per-process epochs.
	msgClockSync    byte = 10 // requester -> responder: int64 t1 ns
	msgClockSyncAck byte = 11 // responder -> requester: int64 t1, int64 t2, proc name

	// msgLinkFailTraced is msgLinkFail carrying a trace context (the
	// reporting agent's root span) plus the agent-measured detection
	// latency, so the controller's recovery joins the agent's causal trace.
	msgLinkFailTraced byte = 12

	// Time-series range query: the client sends an optional uint16
	// points-per-series limit (0 = server default); the server replies
	// with the JSON-encoded []tsdb.SeriesData of its embedded windowed
	// metric store — /timeseriesz over the wire protocol.
	msgTSReq byte = 13 // client -> server: uint16 lastN (optional)
	msgTS    byte = 14 // server -> client: JSON []tsdb.SeriesData

	// Replicated-controller cluster messages (§5.1). A replica that is not
	// the current leader answers state-mutating requests (hello, link-fail
	// reports) — and, rate-limited, keep-alives — with msgNotLeader carrying
	// its best guess at the leader's serving address so agents can redirect.
	msgNotLeader  byte = 15 // server -> client: leader serving address (may be empty)
	msgLeaderReq  byte = 16 // client -> server: empty — ask who leads
	msgLeaderInfo byte = 17 // server -> client: byte isLeader, leader serving address
	// msgReportAck closes the loop on a link-failure report so agents can
	// reliably resend across a leader failover: status 0 = recovery
	// committed (or duplicate of an already-completed recovery), 1 = the
	// recovery failed (no backup left, controller halted, ...).
	msgReportAck byte = 18 // server -> agent: byte status

	// msgKeepAliveBatch coalesces one flush tick's worth of keep-alives
	// from co-located agents sharing a connection (AgentGroup): uint16
	// count, then count × (uint32 switch ID, uint64 seq). One frame, one
	// syscall, one decode on the server — the fleet-scale ingest format.
	msgKeepAliveBatch byte = 19 // agent group -> server: batched (id, seq) pairs
)

// maxFrame bounds frame sizes; control messages are tiny.
const maxFrame = 64 * 1024

// writeFrame writes a length-prefixed frame: uint32 length, byte type,
// payload. Header and payload go out in a single Write so two goroutines
// writing different frames to the same connection can never interleave a
// header with a foreign payload (net.Conn serializes each Write call).
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("ctlnet: frame too large (%d bytes)", len(payload)+1)
	}
	buf := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)+1))
	buf[4] = typ
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

// appendFrame appends a complete frame to dst — the zero-extra-Write path
// for senders that batch several frames into one syscall (AgentGroup).
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame reads one frame, allocating a fresh payload. Hot paths use
// frameReader (reusable scratch) or extractFrame (zero-copy from a poller
// buffer) instead.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("ctlnet: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// frameReader reads frames into a reusable scratch buffer. The returned
// payload aliases the buffer and is valid only until the next call — for
// read loops whose handlers decode (and copy what escapes) before the next
// frame, it removes the per-frame allocation of readFrame.
type frameReader struct {
	r   io.Reader
	buf []byte
}

func (fr *frameReader) next() (typ byte, payload []byte, err error) {
	if cap(fr.buf) < 4 {
		fr.buf = make([]byte, 0, 512)
	}
	hdr := fr.buf[:4]
	if _, err := io.ReadFull(fr.r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("ctlnet: bad frame length %d", n)
	}
	if uint32(cap(fr.buf)) < n {
		fr.buf = make([]byte, 0, n)
	}
	body := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// extractFrame parses one frame from the head of buf without copying:
// payload aliases buf and must not be retained past the caller's dispatch.
// n is the total bytes consumed; n == 0 with a nil error means the buffer
// holds only part of a frame. A bad length is the one unrecoverable framing
// error — resynchronization is impossible, so the connection must drop.
func extractFrame(buf []byte) (typ byte, payload []byte, n int, err error) {
	if len(buf) < 5 {
		return 0, nil, 0, nil
	}
	ln := binary.BigEndian.Uint32(buf[:4])
	if ln == 0 || ln > maxFrame {
		return 0, nil, 0, fmt.Errorf("ctlnet: bad frame length %d", ln)
	}
	if uint32(len(buf)-4) < ln {
		return 0, nil, 0, nil
	}
	end := 4 + int(ln)
	return buf[4], buf[5:end], end, nil
}

func encodeHello(id sbnet.SwitchID) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(id))
	return b[:]
}

func decodeHello(p []byte) (sbnet.SwitchID, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("ctlnet: hello payload %d bytes, want 4", len(p))
	}
	return sbnet.SwitchID(binary.BigEndian.Uint32(p)), nil
}

func encodeKeepAlive(id sbnet.SwitchID, seq uint64) []byte {
	var b [12]byte
	binary.BigEndian.PutUint32(b[:4], uint32(id))
	binary.BigEndian.PutUint64(b[4:], seq)
	return b[:]
}

func decodeKeepAlive(p []byte) (sbnet.SwitchID, uint64, error) {
	if len(p) != 12 {
		return 0, 0, fmt.Errorf("ctlnet: keepalive payload %d bytes, want 12", len(p))
	}
	return sbnet.SwitchID(binary.BigEndian.Uint32(p[:4])), binary.BigEndian.Uint64(p[4:]), nil
}

// Keep-alive batch payload: uint16 count, then count kaPairSize-byte
// (uint32 id, uint64 seq) records. maxKAPairs is what fits one frame.
const (
	kaPairSize = 12
	maxKAPairs = (maxFrame - 1 - 2) / kaPairSize
)

// appendKeepAliveBatch appends a batch payload for ids[from:to) at seq.
func appendKeepAliveBatch(dst []byte, ids []sbnet.SwitchID, seq uint64) []byte {
	var cnt [2]byte
	binary.BigEndian.PutUint16(cnt[:], uint16(len(ids)))
	dst = append(dst, cnt[:]...)
	for _, id := range ids {
		var rec [kaPairSize]byte
		binary.BigEndian.PutUint32(rec[:4], uint32(id))
		binary.BigEndian.PutUint64(rec[4:], seq)
		dst = append(dst, rec[:]...)
	}
	return dst
}

// kaBatchCount validates a batch payload's shape and returns its pair count.
func kaBatchCount(p []byte) (int, error) {
	if len(p) < 2 {
		return 0, fmt.Errorf("ctlnet: keepalive batch payload %d bytes, want >= 2", len(p))
	}
	n := int(binary.BigEndian.Uint16(p[:2]))
	if len(p) != 2+n*kaPairSize {
		return 0, fmt.Errorf("ctlnet: keepalive batch promises %d pairs, payload %d bytes", n, len(p))
	}
	return n, nil
}

// kaBatchPair returns pair i of a payload kaBatchCount already validated.
func kaBatchPair(p []byte, i int) (sbnet.SwitchID, uint64) {
	rec := p[2+i*kaPairSize:]
	return sbnet.SwitchID(binary.BigEndian.Uint32(rec[:4])), binary.BigEndian.Uint64(rec[4:kaPairSize])
}

func encodeLinkFail(aSw sbnet.SwitchID, aPort int, bSw sbnet.SwitchID, bPort int) []byte {
	var b [16]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(aSw))
	binary.BigEndian.PutUint32(b[4:8], uint32(aPort))
	binary.BigEndian.PutUint32(b[8:12], uint32(bSw))
	binary.BigEndian.PutUint32(b[12:16], uint32(bPort))
	return b[:]
}

func decodeLinkFail(p []byte) (aSw sbnet.SwitchID, aPort int, bSw sbnet.SwitchID, bPort int, err error) {
	if len(p) != 16 {
		return 0, 0, 0, 0, fmt.Errorf("ctlnet: linkfail payload %d bytes, want 16", len(p))
	}
	return sbnet.SwitchID(binary.BigEndian.Uint32(p[0:4])), int(int32(binary.BigEndian.Uint32(p[4:8]))),
		sbnet.SwitchID(binary.BigEndian.Uint32(p[8:12])), int(int32(binary.BigEndian.Uint32(p[12:16]))), nil
}

// appendTraceContext appends trace(8) span(8) procLen(1) proc.
func appendTraceContext(b []byte, ctx obs.TraceContext) []byte {
	var v [16]byte
	binary.BigEndian.PutUint64(v[:8], ctx.Trace)
	binary.BigEndian.PutUint64(v[8:], ctx.Span)
	b = append(b, v[:]...)
	proc := ctx.Proc
	if len(proc) > 255 {
		proc = proc[:255]
	}
	b = append(b, byte(len(proc)))
	return append(b, proc...)
}

// readTraceContext consumes a trace context, returning the remainder.
func readTraceContext(p []byte) (obs.TraceContext, []byte, error) {
	if len(p) < 17 {
		return obs.TraceContext{}, nil, fmt.Errorf("ctlnet: truncated trace context (%d bytes)", len(p))
	}
	ctx := obs.TraceContext{
		Trace: binary.BigEndian.Uint64(p[:8]),
		Span:  binary.BigEndian.Uint64(p[8:16]),
	}
	n := int(p[16])
	if len(p) < 17+n {
		return obs.TraceContext{}, nil, fmt.Errorf("ctlnet: trace context proc truncated")
	}
	ctx.Proc = string(p[17 : 17+n])
	return ctx, p[17+n:], nil
}

func encodeClockSync(t1 int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(t1))
	return b[:]
}

func decodeClockSync(p []byte) (int64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("ctlnet: clocksync payload %d bytes, want 8", len(p))
	}
	return int64(binary.BigEndian.Uint64(p)), nil
}

func encodeClockSyncAck(t1, t2 int64, proc string) []byte {
	b := make([]byte, 16, 16+len(proc))
	binary.BigEndian.PutUint64(b[:8], uint64(t1))
	binary.BigEndian.PutUint64(b[8:16], uint64(t2))
	return append(b, proc...)
}

func decodeClockSyncAck(p []byte) (t1, t2 int64, proc string, err error) {
	if len(p) < 16 {
		return 0, 0, "", fmt.Errorf("ctlnet: clocksync ack payload %d bytes, want >= 16", len(p))
	}
	return int64(binary.BigEndian.Uint64(p[:8])), int64(binary.BigEndian.Uint64(p[8:16])), string(p[16:]), nil
}

func encodeLinkFailTraced(ctx obs.TraceContext, detection time.Duration, aSw sbnet.SwitchID, aPort int, bSw sbnet.SwitchID, bPort int) []byte {
	b := appendTraceContext(make([]byte, 0, 17+len(ctx.Proc)+8+16), ctx)
	var d [8]byte
	binary.BigEndian.PutUint64(d[:], uint64(detection))
	b = append(b, d[:]...)
	return append(b, encodeLinkFail(aSw, aPort, bSw, bPort)...)
}

func decodeLinkFailTraced(p []byte) (ctx obs.TraceContext, detection time.Duration, aSw sbnet.SwitchID, aPort int, bSw sbnet.SwitchID, bPort int, err error) {
	ctx, rest, err := readTraceContext(p)
	if err != nil {
		return ctx, 0, 0, 0, 0, 0, err
	}
	if len(rest) != 8+16 {
		return ctx, 0, 0, 0, 0, 0, fmt.Errorf("ctlnet: traced linkfail payload %d bytes after context, want 24", len(rest))
	}
	detection = time.Duration(binary.BigEndian.Uint64(rest[:8]))
	aSw, aPort, bSw, bPort, err = decodeLinkFail(rest[8:])
	return ctx, detection, aSw, aPort, bSw, bPort, err
}

func encodeLeaderInfo(isLeader bool, addr string) []byte {
	b := make([]byte, 1, 1+len(addr))
	if isLeader {
		b[0] = 1
	}
	return append(b, addr...)
}

func decodeLeaderInfo(p []byte) (isLeader bool, addr string, err error) {
	if len(p) < 1 {
		return false, "", fmt.Errorf("ctlnet: leader info payload empty")
	}
	return p[0] == 1, string(p[1:]), nil
}

// Report-ack statuses.
const (
	reportAckOK     byte = 0
	reportAckFailed byte = 1
)

func encodeReportAck(status byte) []byte { return []byte{status} }

func decodeReportAck(p []byte) (byte, error) {
	if len(p) != 1 {
		return 0, fmt.Errorf("ctlnet: report ack payload %d bytes, want 1", len(p))
	}
	return p[0], nil
}

// RecoveryEvent is the server's notification of a completed failover.
type RecoveryEvent struct {
	Kind    string // "node" or "link"
	Failed  []sbnet.SwitchID
	Backup  []sbnet.SwitchID
	Latency time.Duration // wall-clock detection-to-reconfigured latency
}

func encodeRecovery(ev RecoveryEvent) []byte {
	kind := byte(0)
	if ev.Kind == "link" {
		kind = 1
	}
	b := make([]byte, 0, 1+4+4*len(ev.Failed)+4+4*len(ev.Backup)+8)
	b = append(b, kind)
	b = appendIDs(b, ev.Failed)
	b = appendIDs(b, ev.Backup)
	var lat [8]byte
	binary.BigEndian.PutUint64(lat[:], uint64(ev.Latency))
	return append(b, lat[:]...)
}

func appendIDs(b []byte, ids []sbnet.SwitchID) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(ids)))
	b = append(b, n[:]...)
	for _, id := range ids {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], uint32(id))
		b = append(b, v[:]...)
	}
	return b
}

func decodeRecovery(p []byte) (RecoveryEvent, error) {
	var ev RecoveryEvent
	if len(p) < 1+4 {
		return ev, fmt.Errorf("ctlnet: recovery payload too short")
	}
	if p[0] == 1 {
		ev.Kind = "link"
	} else {
		ev.Kind = "node"
	}
	rest := p[1:]
	var err error
	ev.Failed, rest, err = readIDs(rest)
	if err != nil {
		return ev, err
	}
	ev.Backup, rest, err = readIDs(rest)
	if err != nil {
		return ev, err
	}
	if len(rest) != 8 {
		return ev, fmt.Errorf("ctlnet: recovery payload trailing %d bytes", len(rest))
	}
	ev.Latency = time.Duration(binary.BigEndian.Uint64(rest))
	return ev, nil
}

func readIDs(p []byte) ([]sbnet.SwitchID, []byte, error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("ctlnet: truncated ID list")
	}
	n := binary.BigEndian.Uint32(p[:4])
	p = p[4:]
	if uint32(len(p)) < n*4 {
		return nil, nil, fmt.Errorf("ctlnet: ID list promises %d entries, %d bytes left", n, len(p))
	}
	ids := make([]sbnet.SwitchID, n)
	for i := range ids {
		ids[i] = sbnet.SwitchID(binary.BigEndian.Uint32(p[:4]))
		p = p[4:]
	}
	return ids, p, nil
}
