package ctlnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/obs"
)

// Circuit-switch control messages.
const (
	msgCSReconfig byte = 16 // client -> service: batch of circuit changes
	msgCSAck      byte = 17 // service -> client: applied, with latency
	msgCSErr      byte = 18 // service -> client: error text
	// msgCSReconfigTraced is msgCSReconfig prefixed with a trace context, so
	// the service's circuit-reconfigured event joins the recovery's
	// cross-process trace as a child of the controller's span.
	msgCSReconfigTraced byte = 19
)

// CSService exposes one circuit switch's bare-minimum control software
// (Section 5.1) on a TCP socket: it accepts reconfiguration batches, applies
// them to the crossbar, and acknowledges with the reconfiguration latency.
// The paper's availability argument rests on this software being tiny and
// receiving requests only when failures happen; this implementation is the
// measurable stand-in for the controller-to-circuit-switch leg of recovery.
type CSService struct {
	sw *circuit.Switch
	ln net.Listener
	// start is the service's private epoch; its events' T values are
	// durations since it, aligned offline via clock-sync offsets.
	start time.Time

	mu     sync.Mutex
	bus    *obs.Bus
	closed bool
	wg     sync.WaitGroup
}

// NewCSService starts a control service for the circuit switch on addr.
func NewCSService(addr string, sw *circuit.Switch) (*CSService, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlnet: cs service listen: %w", err)
	}
	s := &CSService{sw: sw, ln: ln, start: time.Now()}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetObserver attaches an event bus: traced reconfigurations emit
// circuit-reconfigured events on it (name the bus' process via SetProc so
// stitched traces can tell circuit switches apart).
func (s *CSService) SetObserver(bus *obs.Bus) {
	s.mu.Lock()
	s.bus = bus
	s.mu.Unlock()
}

func (s *CSService) observer() *obs.Bus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bus
}

// Addr returns the service's listen address.
func (s *CSService) Addr() string { return s.ln.Addr().String() }

// Close stops the service.
func (s *CSService) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *CSService) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *CSService) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Connection-level noise; drop the session.
			}
			return
		}
		var ctx obs.TraceContext
		switch typ {
		case msgClockSync:
			t1, err := decodeClockSync(payload)
			if err != nil {
				_ = writeFrame(conn, msgCSErr, []byte(err.Error()))
				return
			}
			ack := encodeClockSyncAck(t1, time.Since(s.start).Nanoseconds(), s.observer().Proc())
			if err := writeFrame(conn, msgClockSyncAck, ack); err != nil {
				return
			}
			continue
		case msgCSReconfig:
		case msgCSReconfigTraced:
			var rest []byte
			var err error
			ctx, rest, err = readTraceContext(payload)
			if err != nil {
				_ = writeFrame(conn, msgCSErr, []byte(err.Error()))
				return
			}
			payload = rest
		default:
			_ = writeFrame(conn, msgCSErr, []byte(fmt.Sprintf("unexpected message type %d", typ)))
			return
		}
		changes, err := decodeCSReconfig(payload)
		if err != nil {
			_ = writeFrame(conn, msgCSErr, []byte(err.Error()))
			return
		}
		s.mu.Lock()
		bus := s.bus
		at := time.Since(s.start)
		var span uint64
		if ctx.Trace != 0 && bus.Enabled() {
			// Join the controller's recovery trace as a child span covering
			// this crossbar reconfiguration.
			bus.SetRemoteParent(ctx)
			span = bus.BeginSpan()
		}
		d, err := s.sw.Apply(changes)
		if span != 0 && err == nil {
			ev := obs.NewEvent(obs.KindCircuitReconfigured, at)
			ev.Wall = true
			ev.Span = span
			ev.Reconfig = d
			ev.Count = int32(len(changes))
			bus.Emit(ev)
		}
		if span != 0 {
			bus.EndSpan()
		}
		s.mu.Unlock()
		if err != nil {
			if werr := writeFrame(conn, msgCSErr, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		var ack [8]byte
		binary.BigEndian.PutUint64(ack[:], uint64(d))
		if err := writeFrame(conn, msgCSAck, ack[:]); err != nil {
			return
		}
	}
}

// CSClient is the controller-side handle to a circuit switch's control
// service.
type CSClient struct {
	mu   sync.Mutex
	conn net.Conn
}

// DialCS connects to a circuit-switch control service.
func DialCS(addr string) (*CSClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlnet: cs dial: %w", err)
	}
	return &CSClient{conn: conn}, nil
}

// Reconfigure applies a batch of circuit changes and returns the crossbar's
// reconfiguration delay plus the measured request round-trip time.
func (c *CSClient) Reconfigure(changes []circuit.Change) (reconfig time.Duration, rtt time.Duration, err error) {
	return c.reconfigure(obs.TraceContext{}, changes)
}

// ReconfigureTraced is Reconfigure carrying the caller's trace context, so
// the service's reconfiguration event joins the recovery's trace.
func (c *CSClient) ReconfigureTraced(ctx obs.TraceContext, changes []circuit.Change) (reconfig time.Duration, rtt time.Duration, err error) {
	return c.reconfigure(ctx, changes)
}

func (c *CSClient) reconfigure(ctx obs.TraceContext, changes []circuit.Change) (reconfig time.Duration, rtt time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t0 := time.Now()
	var werr error
	if ctx.Trace != 0 {
		payload := appendTraceContext(nil, ctx)
		werr = writeFrame(c.conn, msgCSReconfigTraced, append(payload, encodeCSReconfig(changes)...))
	} else {
		werr = writeFrame(c.conn, msgCSReconfig, encodeCSReconfig(changes))
	}
	if werr != nil {
		return 0, 0, werr
	}
	typ, payload, err := readFrame(c.conn)
	if err != nil {
		return 0, 0, err
	}
	rtt = time.Since(t0)
	switch typ {
	case msgCSAck:
		if len(payload) != 8 {
			return 0, rtt, fmt.Errorf("ctlnet: cs ack payload %d bytes", len(payload))
		}
		return time.Duration(binary.BigEndian.Uint64(payload)), rtt, nil
	case msgCSErr:
		return 0, rtt, fmt.Errorf("ctlnet: cs service: %s", payload)
	default:
		return 0, rtt, fmt.Errorf("ctlnet: cs client got message type %d", typ)
	}
}

// SyncClock measures the clock offset between the caller's epoch and the
// service's: it returns offset such that t_local ~= t_service + offset,
// along with the request RTT and the service's process name. The caller
// passes its own epoch (the instant its event timestamps are relative to).
func (c *CSClient) SyncClock(epoch time.Time) (offset, rtt time.Duration, proc string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t1 := time.Since(epoch)
	if err := writeFrame(c.conn, msgClockSync, encodeClockSync(t1.Nanoseconds())); err != nil {
		return 0, 0, "", err
	}
	typ, payload, err := readFrame(c.conn)
	if err != nil {
		return 0, 0, "", err
	}
	t3 := time.Since(epoch)
	if typ != msgClockSyncAck {
		return 0, 0, "", fmt.Errorf("ctlnet: clock sync got message type %d", typ)
	}
	t1e, t2, proc, err := decodeClockSyncAck(payload)
	if err != nil {
		return 0, 0, "", err
	}
	if t1e != t1.Nanoseconds() {
		return 0, 0, "", fmt.Errorf("ctlnet: clock sync ack echoes t1=%d, sent %d", t1e, t1.Nanoseconds())
	}
	offset = time.Duration((t1.Nanoseconds()+t3.Nanoseconds())/2 - t2)
	return offset, t3 - t1, proc, nil
}

// Close tears the control session down.
func (c *CSClient) Close() error { return c.conn.Close() }

func encodeCSReconfig(changes []circuit.Change) []byte {
	b := make([]byte, 4+8*len(changes))
	binary.BigEndian.PutUint32(b[:4], uint32(len(changes)))
	for i, ch := range changes {
		binary.BigEndian.PutUint32(b[4+8*i:], uint32(int32(ch.A)))
		binary.BigEndian.PutUint32(b[8+8*i:], uint32(int32(ch.B)))
	}
	return b
}

func decodeCSReconfig(p []byte) ([]circuit.Change, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("ctlnet: truncated reconfig")
	}
	n := binary.BigEndian.Uint32(p[:4])
	if uint32(len(p)-4) != n*8 {
		return nil, fmt.Errorf("ctlnet: reconfig promises %d changes, payload %d bytes", n, len(p)-4)
	}
	changes := make([]circuit.Change, n)
	for i := range changes {
		changes[i].A = int(int32(binary.BigEndian.Uint32(p[4+8*i:])))
		changes[i].B = int(int32(binary.BigEndian.Uint32(p[8+8*i:])))
	}
	return changes, nil
}
