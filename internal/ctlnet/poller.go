package ctlnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The multiplexed reader path. Historically every accepted connection got
// its own handleConn goroutine, so a 10k-agent fleet cost 10k parked reader
// stacks. Now a connection is *parked* in a poller (epoll on Linux, a
// bounded reader pool elsewhere) and its steady-state frames — keep-alives,
// batched keep-alives, clock syncs, leader queries — are dispatched inline
// by the poller's own goroutine. Only slow-path frames (hello, link
// reports, subscriptions, varz/timeseries queries) promote the connection
// to a short-lived serveActive goroutine, which handles the burst and
// re-parks. Steady-state goroutine count is O(shards + pollers), not
// O(agents).
//
// Ownership protocol: a pollConn is owned by exactly one party at a time —
// the poller (parked) or a serveActive goroutine (active). Only the owner
// reads from the connection. The poller's backends must evict a connection
// from their own data structures *before* anyone closes it (see dropConn),
// so a recycled file descriptor can never be confused with a parked one.

// connPoller multiplexes parked connections onto a bounded reader set.
type connPoller interface {
	// park transfers ownership of pc to the poller. If the poller is
	// closed, park closes the connection instead.
	park(pc *pollConn)
	// evict removes pc from the poller's structures if parked there; a
	// no-op for active or already-evicted connections. Required before a
	// non-owner closes pc's connection.
	evict(pc *pollConn)
	// close stops the poller's readers and waits for them to exit. Parked
	// connections are left open (Server.Close severs them afterwards).
	close()
}

// pollConn is one connection's parked state.
type pollConn struct {
	conn net.Conn
	fd   int // raw fd (Linux poller); -1 when unavailable

	// acc accumulates raw bytes across poller visits until whole frames
	// can be extracted; a partial frame survives a re-park. Empty accs are
	// returned to the poller's buffer pool between visits.
	acc []byte

	// lastRedirect paces msgNotLeader replies on the keep-alive firehose.
	lastRedirect time.Time

	// subscribed marks recovery-event subscribers; their conns are owned
	// by the publish path once set (dropConn then never closes them).
	subscribed bool

	// dropped guards the teardown path: the first CompareAndSwap winner
	// runs dropConn's bookkeeping, every later caller is a no-op.
	dropped atomic.Bool

	// evicted marks a conn removed from the portable pool's rotation, so
	// a queued entry popped after eviction is skipped.
	evicted atomic.Bool
}

// readCtx is per-reader scratch shared across every connection a reader
// serves: the shard-index staging for keep-alive batch fan-in lives here so
// the steady state allocates nothing.
type readCtx struct {
	shardOf []uint8
}

// accBufSize is the pooled accumulator capacity — enough for a whole
// keep-alive batch flush from a mid-sized agent group without growing.
const accBufSize = 4096

var accPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, accBufSize)
		return &b
	},
}

func getAcc() []byte {
	return (*accPool.Get().(*[]byte))[:0]
}

func putAcc(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	accPool.Put(&b)
}

// releaseAcc returns a fully-drained accumulator to the pool.
func (pc *pollConn) releaseAcc() {
	if pc.acc != nil && len(pc.acc) == 0 {
		putAcc(pc.acc)
		pc.acc = nil
	}
}

// accSpare grows pc.acc as needed and returns its spare capacity to read
// into; commit the bytes with pc.acc = pc.acc[:len(pc.acc)+n].
func (pc *pollConn) accSpare(min int) []byte {
	if pc.acc == nil {
		pc.acc = getAcc()
	}
	if cap(pc.acc)-len(pc.acc) < min {
		grown := make([]byte, len(pc.acc), 2*cap(pc.acc)+min)
		copy(grown, pc.acc)
		putAcc(pc.acc[:0])
		pc.acc = grown
	}
	return pc.acc[len(pc.acc):cap(pc.acc)]
}

// isSlowFrame reports whether a frame type needs a dedicated handler
// goroutine: it may block (consensus proposals run up to proposeTimeout),
// write large replies, or mutate subscription state.
func isSlowFrame(typ byte) bool {
	switch typ {
	case msgHello, msgLinkFail, msgLinkFailTraced, msgSubscribe, msgVarzReq, msgTSReq:
		return true
	}
	return false
}

// pumpBuffered dispatches the complete fast frames at the head of pc.acc.
// It stops at the first slow frame — left at the head of acc, handoff=true,
// for serveActive to consume — or at a partial frame (handoff=false, the
// bytes wait for the next poller visit). A framing or dispatch error means
// the connection must drop.
func (s *Server) pumpBuffered(pc *pollConn, rc *readCtx) (handoff bool, err error) {
	consumed := 0
	for {
		typ, payload, n, ferr := extractFrame(pc.acc[consumed:])
		if ferr != nil {
			err = ferr
			break
		}
		if n == 0 {
			break
		}
		if isSlowFrame(typ) {
			handoff = true
			break
		}
		if derr := s.handleFrame(pc, typ, payload, rc); derr != nil {
			consumed += n
			err = derr
			break
		}
		consumed += n
	}
	if consumed > 0 {
		pc.acc = pc.acc[:copy(pc.acc, pc.acc[consumed:])]
	}
	return handoff, err
}

// activeLinger is how long serveActive waits for a follow-up frame before
// re-parking — shorter than any keep-alive interval, so a connection whose
// slow burst is over returns to the poller within one tick.
const activeLinger = 500 * time.Microsecond

// serveActive owns one promoted connection: it drains the buffered frames
// (the slow frame that triggered promotion first), lingers briefly for a
// follow-up, and re-parks. This is the only place slow frames are handled,
// and the connection has exactly one such goroutine at a time.
func (s *Server) serveActive(pc *pollConn) {
	defer s.wg.Done()
	rc := &readCtx{}
	for {
		for {
			typ, payload, n, err := extractFrame(pc.acc)
			if err != nil {
				s.dropConn(pc, err)
				return
			}
			if n == 0 {
				break
			}
			if err := s.handleFrame(pc, typ, payload, rc); err != nil {
				s.dropConn(pc, err)
				return
			}
			pc.acc = pc.acc[:copy(pc.acc, pc.acc[n:])]
		}
		pc.conn.SetReadDeadline(time.Now().Add(activeLinger))
		spare := pc.accSpare(512)
		n, err := pc.conn.Read(spare)
		pc.conn.SetReadDeadline(time.Time{})
		if n > 0 {
			pc.acc = pc.acc[:len(pc.acc)+n]
			continue
		}
		if err == nil {
			continue
		}
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			pc.releaseAcc()
			s.poller.park(pc)
			return
		}
		s.dropConn(pc, err)
		return
	}
}

// serveActiveBlocking is the degenerate path for connections the platform
// poller cannot multiplex (no raw fd, or epoll setup failed): one dedicated
// goroutine per connection, the pre-poller cost model, same frame dispatch.
func (s *Server) serveActiveBlocking(pc *pollConn) {
	defer s.wg.Done()
	rc := &readCtx{}
	fr := frameReader{r: pc.conn}
	for {
		typ, payload, err := fr.next()
		if err != nil {
			s.dropConn(pc, err)
			return
		}
		if err := s.handleFrame(pc, typ, payload, rc); err != nil {
			s.dropConn(pc, err)
			return
		}
	}
}

// dropConn finishes a connection: the first caller wins, unregisters it,
// and closes it (unless a subscriber — the publish path owns those). The
// caller must have evicted pc from the poller first, or be the poller
// backend itself having already removed it; dropConn calls evict again
// defensively, which backends tolerate for unparked conns.
func (s *Server) dropConn(pc *pollConn, err error) {
	if !pc.dropped.CompareAndSwap(false, true) {
		return
	}
	s.poller.evict(pc)
	s.mu.Lock()
	delete(s.conns, pc.conn)
	s.mu.Unlock()
	s.gConns.Add(-1)
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		s.logf("ctlnet: conn %v: %v", pc.conn.RemoteAddr(), err)
	}
	pc.releaseAcc()
	if !pc.subscribed {
		pc.conn.Close()
	}
}
