package ctlnet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sharebackup/internal/obs"
)

// startEmulation builds a trace-collecting emulation and tears it down with
// the test.
func startEmulation(t *testing.T, cfg EmulationConfig) *Emulation {
	t.Helper()
	e, err := NewEmulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestEmulationStitchedTrace drives one link-failure recovery through the
// multi-process emulation — agent, controller, and circuit-switch services,
// each with a private bus, epoch, and trace file — and checks that sbtap's
// stitcher reassembles a single cross-process causal trace with per-hop
// Table-2 phase attribution.
func TestEmulationStitchedTrace(t *testing.T) {
	dir := t.TempDir()
	e := startEmulation(t, EmulationConfig{
		NumAgents: 2,
		NumCS:     2,
		TraceDir:  dir,
	})

	mon, err := Subscribe(e.Server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	if !e.WaitClockSync(5 * time.Second) {
		t.Fatal("agents never synced clocks with the controller")
	}
	if err := e.FailLink(0, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-mon.Events:
		if !ok {
			t.Fatalf("monitor closed: %v", mon.Err())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no recovery event within 5s")
	}

	files := e.TraceFiles()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	var procs []obs.ProcTrace
	for _, path := range files {
		evs, err := obs.ReadJSONL(mustOpen(t, path))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".jsonl")
		procs = append(procs, obs.ProcTrace{Name: name, Events: evs})
	}
	res, err := obs.Stitch(procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unstitchable) != 0 {
		t.Fatalf("unstitchable: %v", res.Unstitchable)
	}
	if res.Reference != "controller" {
		t.Errorf("reference proc = %q, want controller", res.Reference)
	}
	if len(res.Traces) != 1 {
		t.Fatalf("stitched %d traces, want 1", len(res.Traces))
	}
	tr := res.Traces[0]

	// One causal tree: the agent's root span, the controller's recovery
	// under it, and a circuit-switch reconfiguration under that.
	if len(tr.Roots) != 1 {
		t.Fatalf("trace has %d roots, want 1:\n%s", len(tr.Roots), tr.Render())
	}
	root := tr.Roots[0]
	if !strings.HasPrefix(root.Proc, "agent-") {
		t.Errorf("trace root on %q, want the reporting agent", root.Proc)
	}
	byProc := map[string]int{}
	for _, ss := range tr.Spans {
		byProc[ss.Proc]++
	}
	if byProc["controller"] == 0 {
		t.Errorf("no controller span in trace:\n%s", tr.Render())
	}
	csSpans := 0
	for proc, n := range byProc {
		if strings.HasPrefix(proc, "cs-") {
			csSpans += n
		}
	}
	if csSpans != 2 {
		t.Errorf("trace has %d circuit-switch spans, want 2:\n%s", csSpans, tr.Render())
	}
	var ctlSpan *obs.StitchedSpan
	for _, ss := range tr.Spans {
		if ss.Proc == "controller" {
			ctlSpan = ss
		}
	}
	if ctlSpan.Parent != root {
		t.Error("controller span is not a child of the agent's root span")
	}

	// Table-2 phase attribution per hop: detection on the agent, report and
	// reconfiguration on the controller, crossbar time on the cs procs.
	attr := map[string]map[string]time.Duration{}
	for _, a := range tr.Attribution() {
		if attr[a.Phase] == nil {
			attr[a.Phase] = map[string]time.Duration{}
		}
		attr[a.Phase][a.Proc] += a.Value
	}
	if got := attr["detection"][root.Proc]; got != 5*time.Millisecond {
		t.Errorf("detection attributed to %s = %v, want 5ms", root.Proc, got)
	}
	if _, ok := attr["report"]["controller"]; !ok {
		t.Errorf("no report phase attributed to controller: %v", attr)
	}
	if _, ok := attr["reconfig"]["controller"]; !ok {
		t.Errorf("no reconfig phase attributed to controller: %v", attr)
	}

	// The controller span carries the completed recovery's breakdown.
	if !ctlSpan.Span.Complete {
		t.Error("controller span not marked complete")
	}
	if ctlSpan.Span.Total <= 0 {
		t.Errorf("controller span total = %v", ctlSpan.Span.Total)
	}
}

// TestEmulationSLOBreachFlightDump injects an over-budget recovery and
// checks the SLO watchdog counts the breach (once, despite the virtual- and
// wall-clock mirrors of the event) and the flight recorder writes a bundle.
func TestEmulationSLOBreachFlightDump(t *testing.T) {
	t.Setenv("SHAREBACKUP_FLIGHT_DIR", filepath.Join(t.TempDir(), "dumps"))
	e := startEmulation(t, EmulationConfig{
		NumAgents:      1,
		NumCS:          1,
		TraceDir:       t.TempDir(),
		SLOBudget:      time.Nanosecond, // every real recovery breaches
		FlightRecorder: true,
	})

	mon, err := Subscribe(e.Server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	if err := e.FailLink(0, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	select {
	case <-mon.Events:
	case <-time.After(5 * time.Second):
		t.Fatal("no recovery event within 5s")
	}

	if got := e.Watchdog.Breaches(); got != 1 {
		t.Errorf("breaches = %d, want 1 (virtual+wall mirrors must dedup)", got)
	}
	if got := e.Watchdog.Recoveries(); got != 1 {
		t.Errorf("recoveries = %d, want 1", got)
	}
	if rate := e.Watchdog.BurnRate(); rate != 1 {
		t.Errorf("burn rate = %v, want 1", rate)
	}

	if !e.Flight.WaitDump(1, 5*time.Second) {
		t.Fatal("flight recorder wrote no bundle within 5s")
	}
	dumps := e.Flight.Dumps()
	bundle := dumps[0]
	if !strings.Contains(filepath.Base(bundle), "slo-breach") {
		t.Errorf("bundle %s not named for its slo-breach trigger", bundle)
	}
	evs, err := obs.ReadJSONL(mustOpen(t, filepath.Join(bundle, "events.jsonl")))
	if err != nil {
		t.Fatalf("bundle events: %v", err)
	}
	sawRecovery := false
	for _, ev := range evs {
		if ev.Kind == obs.KindRecoveryComplete {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Error("bundle events.jsonl has no recovery-complete event")
	}
	for _, name := range []string{"varz.json", "goroutines.txt", "meta.json"} {
		if _, err := os.Stat(filepath.Join(bundle, name)); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
	}
}

func mustOpen(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}
