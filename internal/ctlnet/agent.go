package ctlnet

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sharebackup/internal/obs"
	"sharebackup/internal/obs/tsdb"
	"sharebackup/internal/routing"
	"sharebackup/internal/sbnet"
)

// clockSyncEvery is how many keep-alives pass between piggybacked clock-sync
// probes once a bus is attached (the first probe goes out on the first tick,
// so a trace captured right after startup is already alignable).
const clockSyncEvery = 8

// ackRedirected is an agent-local sentinel pushed into the ack channel when a
// redirect arrives: the pending report will never be acked on this session,
// so the report loop should retry immediately instead of waiting out the ack
// timeout. Never sent on the wire (servers only send reportAckOK/Failed).
const ackRedirected byte = 0xFF

// Agent is a switch-side keep-alive client: it registers with the controller
// server and sends periodic keep-alives until stopped. Stopping the agent
// without closing the connection models a crashed forwarding engine whose
// TCP session lingers — exactly the case keep-alive detection exists for.
type Agent struct {
	ID sbnet.SwitchID

	conn     net.Conn
	interval time.Duration
	// start is the agent's private epoch: its events' T values are
	// durations since it, aligned to other processes via clock sync.
	start time.Time

	// offsetNS is the latest measured clock offset to the server
	// (t_agent ~= t_server + offset), stored +1 so zero means "unmeasured".
	offsetNS atomic.Int64

	// addrs holds every replica's serving address in cluster mode (empty
	// for a solo Dial). gen counts connection generations: each write
	// snapshots (conn, gen) and a failed write triggers reconnect(gen, ...),
	// which is a no-op if another path already replaced that generation.
	addrs []string
	gen   uint64

	// ackCh receives msgReportAck statuses from the read loop so a
	// link-failure report can be resent across a leader failover.
	ackCh chan byte

	mu      sync.Mutex
	bus     *obs.Bus
	stopped bool
	closed  bool
	table   *routing.VLANTable
	quit    chan struct{}
	done    chan struct{}

	// tableLoaded is closed when the preloaded failure-group table
	// arrives (Section 4.3 hot-standby provisioning).
	tableLoaded chan struct{}
}

// Dial connects an agent for the given switch to the controller server and
// starts its keep-alive loop.
func Dial(addr string, id sbnet.SwitchID, interval time.Duration) (*Agent, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("ctlnet: agent interval %v must be positive", interval)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlnet: agent dial: %w", err)
	}
	if err := writeFrame(conn, msgHello, encodeHello(id)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ctlnet: agent hello: %w", err)
	}
	a := &Agent{
		ID:          id,
		conn:        conn,
		interval:    interval,
		start:       time.Now(),
		ackCh:       make(chan byte, 4),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
		tableLoaded: make(chan struct{}),
	}
	go a.keepAliveLoop()
	go a.readLoop(conn, 0)
	return a, nil
}

// DialCluster connects an agent to a replicated controller cluster: it
// discovers the current leader among addrs (each replica's serving address)
// and keeps following it — a write failure or a msgNotLeader redirect makes
// the agent re-dial, hint-first, and resume. Dialing tolerates an election
// in progress (no replica leads yet) for a few seconds.
func DialCluster(addrs []string, id sbnet.SwitchID, interval time.Duration) (*Agent, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("ctlnet: agent interval %v must be positive", interval)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("ctlnet: agent needs at least one cluster address")
	}
	a := &Agent{
		ID:          id,
		interval:    interval,
		start:       time.Now(),
		addrs:       append([]string(nil), addrs...),
		ackCh:       make(chan byte, 4),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
		tableLoaded: make(chan struct{}),
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, _, err := a.dialLeader("")
		if err == nil {
			a.conn = conn
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("ctlnet: agent dial cluster: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	go a.keepAliveLoop()
	go a.readLoop(a.conn, 0)
	return a, nil
}

// dialLeader finds the replica that currently leads: it asks each candidate
// (redirect hint first) who leads via msgLeaderReq, follows the answer, and
// registers with msgHello once a self-professed leader is found.
func (a *Agent) dialLeader(hint string) (net.Conn, string, error) {
	cands := make([]string, 0, len(a.addrs)+1)
	if hint != "" {
		cands = append(cands, hint)
	}
	cands = append(cands, a.addrs...)
	tried := make(map[string]bool, len(cands))
	for len(cands) > 0 {
		addr := cands[0]
		cands = cands[1:]
		if addr == "" || tried[addr] {
			continue
		}
		tried[addr] = true
		c, err := net.DialTimeout("tcp", addr, 500*time.Millisecond)
		if err != nil {
			continue
		}
		if err := writeFrame(c, msgLeaderReq, nil); err != nil {
			c.Close()
			continue
		}
		c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		typ, payload, err := readFrame(c)
		c.SetReadDeadline(time.Time{})
		if err != nil || typ != msgLeaderInfo {
			c.Close()
			continue
		}
		isLeader, leader, err := decodeLeaderInfo(payload)
		if err != nil {
			c.Close()
			continue
		}
		if !isLeader {
			c.Close()
			// Chase the candidate's hint before the remaining replicas.
			if leader != "" && !tried[leader] {
				cands = append([]string{leader}, cands...)
			}
			continue
		}
		if err := writeFrame(c, msgHello, encodeHello(a.ID)); err != nil {
			c.Close()
			continue
		}
		return c, addr, nil
	}
	return nil, "", fmt.Errorf("ctlnet: no leader reachable among %v", a.addrs)
}

// reconnect replaces connection generation fromGen with a fresh session to
// the current leader (hint-first). A no-op when the agent is closed, solo,
// or when another path already reconnected; when every candidate fails the
// dead connection stays in place so writes keep failing fast and the next
// keep-alive tick (or report retry) tries again.
func (a *Agent) reconnect(fromGen uint64, hint string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed || len(a.addrs) == 0 || a.gen != fromGen {
		return
	}
	a.conn.Close()
	conn, addr, err := a.dialLeader(hint)
	if err != nil {
		return
	}
	a.gen++
	a.conn = conn
	go a.readLoop(conn, a.gen)
	if a.bus != nil {
		// Immediate clock-sync probe so traces spanning the failover are
		// alignable against the new leader's epoch right away.
		writeFrame(conn, msgClockSync, encodeClockSync(time.Since(a.start).Nanoseconds()))
	}
	if a.bus.Enabled() {
		// Emitted inside the active span (if any): a stitched recovery
		// trace shows the failover hop between report attempts.
		ev := obs.NewEvent(obs.KindFailover, time.Since(a.start))
		ev.Wall = true
		ev.Switch = int32(a.ID)
		ev.Detail = addr
		ev.Count = int32(a.gen)
		ev.Span = a.bus.ActiveSpan()
		a.bus.Emit(ev)
	}
}

// SetObserver attaches an event bus: the agent emits failure-declared and
// clock-sync events on it, giving the switch process its own span in
// stitched traces. Name the bus (e.g. bus.SetProc("agent-12")) so spans are
// attributable. Attach before failures are reported.
func (a *Agent) SetObserver(bus *obs.Bus) {
	a.mu.Lock()
	a.bus = bus
	a.mu.Unlock()
}

func (a *Agent) observer() *obs.Bus {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bus
}

// ClockOffset returns the latest measured offset to the server's epoch
// (t_agent ~= t_server + offset) and whether a measurement exists yet.
func (a *Agent) ClockOffset() (time.Duration, bool) {
	v := a.offsetNS.Load()
	if v == 0 {
		return 0, false
	}
	return time.Duration(v - 1), true
}

// readLoop handles server-to-agent messages on one connection generation:
// preloaded tables, clock-sync acks, report acks, and leader redirects.
// Unknown message types are skipped (forward compatibility). It exits when
// the connection closes — in cluster mode after kicking off a reconnect.
func (a *Agent) readLoop(conn net.Conn, gen uint64) {
	// One reusable frame buffer for the connection's lifetime; every case
	// below decodes (or copies) the payload before the next frame is read.
	fr := frameReader{r: conn}
	for {
		typ, payload, err := fr.next()
		if err != nil {
			a.reconnect(gen, "")
			return
		}
		switch typ {
		case msgClockSyncAck:
			a.handleClockSyncAck(payload)
		case msgNotLeader:
			// This replica lost (or never had) leadership; chase its hint
			// on a fresh session. Abort any report wait first — a redirect
			// means the pending report will never be acked on this session,
			// and waiting out the full ack timeout would leave the failed
			// link unrecovered (and its agent's switch exposed to spurious
			// node-death detection) for seconds. The brief pause keeps
			// redirect chasing from spinning while an election converges.
			select {
			case a.ackCh <- ackRedirected:
			default:
			}
			hint := string(payload)
			time.Sleep(20 * time.Millisecond)
			a.reconnect(gen, hint)
			return
		case msgReportAck:
			if status, err := decodeReportAck(payload); err == nil {
				select {
				case a.ackCh <- status:
				default:
				}
			}
		case msgTableLoad:
			vt, err := routing.UnmarshalVLANTable(payload)
			if err != nil {
				continue
			}
			a.mu.Lock()
			first := a.table == nil
			a.table = vt
			a.mu.Unlock()
			if first {
				close(a.tableLoaded)
			}
		}
	}
}

// Table returns the preloaded failure-group table, or nil if none has
// arrived (agg/core switches derive their shared tables locally).
func (a *Agent) Table() *routing.VLANTable {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.table
}

// WaitTable blocks until the preloaded table arrives or the timeout
// expires, reporting success.
func (a *Agent) WaitTable(timeout time.Duration) bool {
	select {
	case <-a.tableLoaded:
		return true
	case <-time.After(timeout):
		return false
	}
}

// handleClockSyncAck finishes one NTP-style exchange: the ack echoes our
// send time t1 and carries the server's receive time t2 (server epoch);
// with our receive time t3, offset = (t1+t3)/2 - t2.
func (a *Agent) handleClockSyncAck(payload []byte) {
	t3 := time.Since(a.start)
	t1, t2, proc, err := decodeClockSyncAck(payload)
	if err != nil {
		return
	}
	offset := time.Duration((t1+t3.Nanoseconds())/2 - t2)
	a.offsetNS.Store(int64(offset) + 1)
	if bus := a.observer(); bus.Enabled() {
		ev := obs.NewEvent(obs.KindClockSync, t3)
		ev.Wall = true
		ev.Switch = int32(a.ID)
		ev.Detail = proc
		ev.Offset = offset
		ev.RTT = t3 - time.Duration(t1)
		bus.Emit(ev)
	}
}

func (a *Agent) keepAliveLoop() {
	defer close(a.done)
	ticker := time.NewTicker(a.interval)
	defer ticker.Stop()
	seq := uint64(0)
	for {
		select {
		case <-a.quit:
			return
		case <-ticker.C:
			seq++
			a.mu.Lock()
			gen := a.gen
			cluster := len(a.addrs) > 0
			err := writeFrame(a.conn, msgKeepAlive, encodeKeepAlive(a.ID, seq))
			if err == nil && a.bus != nil && seq%clockSyncEvery == 1 {
				// Piggyback a clock-sync probe so stitched traces can align
				// this agent's epoch with the controller's.
				err = writeFrame(a.conn, msgClockSync, encodeClockSync(time.Since(a.start).Nanoseconds()))
			}
			a.mu.Unlock()
			if err != nil {
				if !cluster {
					return
				}
				// Cluster mode: a dead leader connection is survivable —
				// re-dial and keep the heartbeat stream going.
				a.reconnect(gen, "")
			}
		}
	}
}

// ReportLinkFailure sends a link-failure report naming both suspect
// interfaces (the agent's own and the peer's), as switches on both sides of
// a failed link do in Section 4.1.
func (a *Agent) ReportLinkFailure(ownPort int, peer sbnet.SwitchID, peerPort int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stopped {
		return fmt.Errorf("ctlnet: agent %d stopped", a.ID)
	}
	return writeFrame(a.conn, msgLinkFail, encodeLinkFail(a.ID, ownPort, peer, peerPort))
}

// ReportLinkFailureDetected is ReportLinkFailure for an agent that measured
// the failure itself (e.g. via a detect.Monitor): it opens the recovery's
// root span on the agent's bus, emits the failure-declared event with the
// given detection latency, and sends a traced report so the controller's
// recovery — and the circuit-switch reconfigurations under it — join one
// cross-process trace.
func (a *Agent) ReportLinkFailureDetected(ownPort int, peer sbnet.SwitchID, peerPort int, detection time.Duration) error {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return fmt.Errorf("ctlnet: agent %d stopped", a.ID)
	}
	bus := a.bus
	cluster := len(a.addrs) > 0
	a.mu.Unlock()

	typ, payload := msgLinkFail, encodeLinkFail(a.ID, ownPort, peer, peerPort)
	if bus.Enabled() {
		span := bus.BeginSpan()
		defer bus.EndSpan()
		ev := obs.NewEvent(obs.KindFailureDeclared, time.Since(a.start))
		ev.Wall = true
		ev.Span = span
		ev.Switch = int32(a.ID)
		ev.Port = int32(ownPort)
		ev.Peer = int32(peer)
		ev.PeerPort = int32(peerPort)
		ev.Detection = detection
		ev.Detail = "link"
		bus.Emit(ev)
		ctx := bus.ActiveContext()
		typ, payload = msgLinkFailTraced, encodeLinkFailTraced(ctx, detection, a.ID, ownPort, peer, peerPort)
	}
	if !cluster {
		a.mu.Lock()
		defer a.mu.Unlock()
		return writeFrame(a.conn, typ, payload)
	}
	// Cluster mode: the report is delivered reliably. Each attempt writes
	// to the current leader session and waits for msgReportAck; a write
	// failure, ack timeout, or refused report triggers a failover (re-dial
	// the leader, emitting KindFailover inside the recovery's span) and a
	// resend — which the server deduplicates if the previous leader already
	// committed the recovery.
	const attempts = 8
	backoff := 25 * time.Millisecond
	var lastErr error
	for i := 0; i < attempts; i++ {
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			return fmt.Errorf("ctlnet: agent %d closed", a.ID)
		}
		gen := a.gen
		// Drop stale acks so the wait below matches this attempt.
		for drained := false; !drained; {
			select {
			case <-a.ackCh:
			default:
				drained = true
			}
		}
		err := writeFrame(a.conn, typ, payload)
		a.mu.Unlock()
		if err == nil {
			status, ok := a.waitAck(proposeTimeout)
			switch {
			case ok && status == reportAckOK:
				return nil
			case ok && status == ackRedirected:
				lastErr = fmt.Errorf("ctlnet: leader changed mid-report")
			case ok:
				lastErr = fmt.Errorf("ctlnet: link report refused (status %d)", status)
			default:
				lastErr = fmt.Errorf("ctlnet: link report ack timed out")
			}
		} else {
			lastErr = err
		}
		a.reconnect(gen, "")
		time.Sleep(backoff)
		if backoff < 400*time.Millisecond {
			backoff *= 2
		}
	}
	return lastErr
}

// waitAck blocks for the next report acknowledgement.
func (a *Agent) waitAck(timeout time.Duration) (byte, bool) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case status := <-a.ackCh:
		return status, true
	case <-t.C:
		return 0, false
	}
}

// StopHeartbeats silences the agent without closing the connection —
// simulating a node failure as the controller sees it.
func (a *Agent) StopHeartbeats() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.stopped {
		a.stopped = true
		close(a.quit)
	}
}

// Close stops the agent and closes its connection.
func (a *Agent) Close() error {
	a.mu.Lock()
	a.closed = true // stop any further reconnect attempts
	conn := a.conn
	a.mu.Unlock()
	a.StopHeartbeats()
	<-a.done
	return conn.Close()
}

// Monitor subscribes to the server's recovery events.
type Monitor struct {
	conn   net.Conn
	Events chan RecoveryEvent
	errMu  sync.Mutex
	err    error
}

// Subscribe connects a monitor and starts decoding recovery events into
// Events (closed when the connection drops).
func Subscribe(addr string) (*Monitor, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlnet: monitor dial: %w", err)
	}
	if err := writeFrame(conn, msgSubscribe, nil); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ctlnet: subscribe: %w", err)
	}
	// Wait for the acknowledgement so no event published after Subscribe
	// returns can be missed.
	typ, _, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("ctlnet: subscribe ack: %w", err)
	}
	if typ != msgSubAck {
		conn.Close()
		return nil, fmt.Errorf("ctlnet: subscribe ack: got message type %d", typ)
	}
	m := &Monitor{conn: conn, Events: make(chan RecoveryEvent, 16)}
	go m.readLoop()
	return m, nil
}

func (m *Monitor) readLoop() {
	defer close(m.Events)
	fr := frameReader{r: m.conn}
	for {
		typ, payload, err := fr.next()
		if err != nil {
			m.setErr(err)
			return
		}
		if typ != msgRecovery {
			// Forward compatibility: skip message types this monitor
			// doesn't understand instead of dropping the subscription.
			continue
		}
		ev, err := decodeRecovery(payload)
		if err != nil {
			m.setErr(err)
			return
		}
		m.Events <- ev
	}
}

func (m *Monitor) setErr(err error) {
	m.errMu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.errMu.Unlock()
}

// Err returns the first read error, if any (net.ErrClosed / io.EOF after
// Close are normal).
func (m *Monitor) Err() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.err
}

// Close tears down the subscription.
func (m *Monitor) Close() error { return m.conn.Close() }

// FetchVarz requests the server's text metrics snapshot (counters, gauges,
// uptime) over the wire protocol — the "/varz" dump of the control plane.
func FetchVarz(addr string) (string, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ctlnet: varz dial: %w", err)
	}
	defer conn.Close()
	if err := writeFrame(conn, msgVarzReq, nil); err != nil {
		return "", fmt.Errorf("ctlnet: varz request: %w", err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return "", fmt.Errorf("ctlnet: varz reply: %w", err)
	}
	if typ != msgVarz {
		return "", fmt.Errorf("ctlnet: varz reply: got message type %d", typ)
	}
	return string(payload), nil
}

// FetchTimeSeries requests the server's windowed metric history (last n
// points per series; n <= 0 asks for the server default) over the wire
// protocol — /timeseriesz for processes that only speak ctlnet.
func FetchTimeSeries(addr string, n int) ([]tsdb.SeriesData, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlnet: timeseries dial: %w", err)
	}
	defer conn.Close()
	if n < 0 || n > 1<<15 {
		n = 0
	}
	req := []byte{byte(n >> 8), byte(n)}
	if err := writeFrame(conn, msgTSReq, req); err != nil {
		return nil, fmt.Errorf("ctlnet: timeseries request: %w", err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("ctlnet: timeseries reply: %w", err)
	}
	if typ != msgTS {
		return nil, fmt.Errorf("ctlnet: timeseries reply: got message type %d", typ)
	}
	var out []tsdb.SeriesData
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("ctlnet: timeseries reply: %w", err)
	}
	return out, nil
}
