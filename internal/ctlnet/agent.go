package ctlnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sharebackup/internal/routing"
	"sharebackup/internal/sbnet"
)

// Agent is a switch-side keep-alive client: it registers with the controller
// server and sends periodic keep-alives until stopped. Stopping the agent
// without closing the connection models a crashed forwarding engine whose
// TCP session lingers — exactly the case keep-alive detection exists for.
type Agent struct {
	ID sbnet.SwitchID

	conn     net.Conn
	interval time.Duration

	mu      sync.Mutex
	stopped bool
	table   *routing.VLANTable
	quit    chan struct{}
	done    chan struct{}

	// tableLoaded is closed when the preloaded failure-group table
	// arrives (Section 4.3 hot-standby provisioning).
	tableLoaded chan struct{}
}

// Dial connects an agent for the given switch to the controller server and
// starts its keep-alive loop.
func Dial(addr string, id sbnet.SwitchID, interval time.Duration) (*Agent, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("ctlnet: agent interval %v must be positive", interval)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlnet: agent dial: %w", err)
	}
	if err := writeFrame(conn, msgHello, encodeHello(id)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ctlnet: agent hello: %w", err)
	}
	a := &Agent{
		ID:          id,
		conn:        conn,
		interval:    interval,
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
		tableLoaded: make(chan struct{}),
	}
	go a.keepAliveLoop()
	go a.readLoop()
	return a, nil
}

// readLoop handles server-to-agent messages (currently: the preloaded
// failure-group table). It exits when the connection closes.
func (a *Agent) readLoop() {
	for {
		typ, payload, err := readFrame(a.conn)
		if err != nil {
			return
		}
		if typ != msgTableLoad {
			continue
		}
		vt, err := routing.UnmarshalVLANTable(payload)
		if err != nil {
			continue
		}
		a.mu.Lock()
		first := a.table == nil
		a.table = vt
		a.mu.Unlock()
		if first {
			close(a.tableLoaded)
		}
	}
}

// Table returns the preloaded failure-group table, or nil if none has
// arrived (agg/core switches derive their shared tables locally).
func (a *Agent) Table() *routing.VLANTable {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.table
}

// WaitTable blocks until the preloaded table arrives or the timeout
// expires, reporting success.
func (a *Agent) WaitTable(timeout time.Duration) bool {
	select {
	case <-a.tableLoaded:
		return true
	case <-time.After(timeout):
		return false
	}
}

func (a *Agent) keepAliveLoop() {
	defer close(a.done)
	ticker := time.NewTicker(a.interval)
	defer ticker.Stop()
	seq := uint64(0)
	for {
		select {
		case <-a.quit:
			return
		case <-ticker.C:
			seq++
			a.mu.Lock()
			err := writeFrame(a.conn, msgKeepAlive, encodeKeepAlive(a.ID, seq))
			a.mu.Unlock()
			if err != nil {
				return
			}
		}
	}
}

// ReportLinkFailure sends a link-failure report naming both suspect
// interfaces (the agent's own and the peer's), as switches on both sides of
// a failed link do in Section 4.1.
func (a *Agent) ReportLinkFailure(ownPort int, peer sbnet.SwitchID, peerPort int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stopped {
		return fmt.Errorf("ctlnet: agent %d stopped", a.ID)
	}
	return writeFrame(a.conn, msgLinkFail, encodeLinkFail(a.ID, ownPort, peer, peerPort))
}

// StopHeartbeats silences the agent without closing the connection —
// simulating a node failure as the controller sees it.
func (a *Agent) StopHeartbeats() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.stopped {
		a.stopped = true
		close(a.quit)
	}
}

// Close stops the agent and closes its connection.
func (a *Agent) Close() error {
	a.StopHeartbeats()
	<-a.done
	return a.conn.Close()
}

// Monitor subscribes to the server's recovery events.
type Monitor struct {
	conn   net.Conn
	Events chan RecoveryEvent
	errMu  sync.Mutex
	err    error
}

// Subscribe connects a monitor and starts decoding recovery events into
// Events (closed when the connection drops).
func Subscribe(addr string) (*Monitor, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlnet: monitor dial: %w", err)
	}
	if err := writeFrame(conn, msgSubscribe, nil); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ctlnet: subscribe: %w", err)
	}
	// Wait for the acknowledgement so no event published after Subscribe
	// returns can be missed.
	typ, _, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("ctlnet: subscribe ack: %w", err)
	}
	if typ != msgSubAck {
		conn.Close()
		return nil, fmt.Errorf("ctlnet: subscribe ack: got message type %d", typ)
	}
	m := &Monitor{conn: conn, Events: make(chan RecoveryEvent, 16)}
	go m.readLoop()
	return m, nil
}

func (m *Monitor) readLoop() {
	defer close(m.Events)
	for {
		typ, payload, err := readFrame(m.conn)
		if err != nil {
			m.setErr(err)
			return
		}
		if typ != msgRecovery {
			m.setErr(fmt.Errorf("ctlnet: monitor got message type %d", typ))
			return
		}
		ev, err := decodeRecovery(payload)
		if err != nil {
			m.setErr(err)
			return
		}
		m.Events <- ev
	}
}

func (m *Monitor) setErr(err error) {
	m.errMu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.errMu.Unlock()
}

// Err returns the first read error, if any (net.ErrClosed / io.EOF after
// Close are normal).
func (m *Monitor) Err() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.err
}

// Close tears down the subscription.
func (m *Monitor) Close() error { return m.conn.Close() }

// FetchVarz requests the server's text metrics snapshot (counters, gauges,
// uptime) over the wire protocol — the "/varz" dump of the control plane.
func FetchVarz(addr string) (string, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ctlnet: varz dial: %w", err)
	}
	defer conn.Close()
	if err := writeFrame(conn, msgVarzReq, nil); err != nil {
		return "", fmt.Errorf("ctlnet: varz request: %w", err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return "", fmt.Errorf("ctlnet: varz reply: %w", err)
	}
	if typ != msgVarz {
		return "", fmt.Errorf("ctlnet: varz reply: got message type %d", typ)
	}
	return string(payload), nil
}
