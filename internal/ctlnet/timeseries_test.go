package ctlnet

import (
	"testing"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/controller"
	"sharebackup/internal/obs"
	"sharebackup/internal/obs/tsdb"
	"sharebackup/internal/sbnet"
)

// TestFetchTimeSeriesOverTCP round-trips windowed metric history through the
// msgTSReq/msgTS wire pair: a caller-driven store is sampled, then fetched
// through a real socket and checked for the sampled series.
func TestFetchTimeSeriesOverTCP(t *testing.T) {
	nw, err := sbnet.New(sbnet.Config{K: 4, N: 1, Tech: circuit.Crosspoint})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(nw, controller.Config{ProbeInterval: 5 * time.Millisecond})
	reg := ctl.Metrics()
	store := tsdb.New(tsdb.Config{Registry: reg, Window: 32})
	defer store.Close()
	srv, err := NewServer("127.0.0.1:0", ctl, ServerConfig{
		Interval: 5 * time.Millisecond,
		Obs:      &obs.Bus{},
		TSDB:     store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := reg.Counter("test.ts_roundtrip")
	for i := 0; i < 5; i++ {
		c.Add(3)
		store.Sample(time.UnixMilli(1_000_000).Add(time.Duration(i) * time.Second))
	}

	series, err := FetchTimeSeries(srv.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var got *tsdb.SeriesData
	for i := range series {
		if series[i].Name == "test.ts_roundtrip" {
			got = &series[i]
		}
	}
	if got == nil {
		t.Fatalf("test.ts_roundtrip missing from %d fetched series", len(series))
	}
	if got.Kind != tsdb.KindCounterDelta {
		t.Errorf("kind = %q", got.Kind)
	}
	// n=4 trims the 5 samples to the newest 4: deltas of 3 after the
	// baseline sample.
	if len(got.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(got.Points))
	}
	for _, p := range got.Points {
		if p.V != 3 {
			t.Fatalf("points: %+v", got.Points)
		}
	}

	// A server with no injected store still answers (it owns one).
	ctl2 := controller.New(nw, controller.Config{ProbeInterval: 5 * time.Millisecond})
	srv2, err := NewServer("127.0.0.1:0", ctl2, ServerConfig{
		Interval: 5 * time.Millisecond,
		Obs:      &obs.Bus{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if _, err := FetchTimeSeries(srv2.Addr(), 0); err != nil {
		t.Fatalf("owned-store fetch: %v", err)
	}
}
