package ctlnet

import (
	"sync"
	"time"

	"sharebackup/internal/obs/prof"
	"sharebackup/internal/sbnet"
)

// The keep-alive fan-in is sharded by failure group so the hot path scales
// to tens of thousands of agents: a connection reader appends one record to
// its shard's pending list (one short lock, no controller call, no shared
// server lock) and moves on. One goroutine per shard folds the pending
// records into the shard-local lastSeen map and scans it for silent
// switches every CheckEvery; candidates funnel into a single recover loop
// that proposes the failover. The detection math is unchanged from the
// unsharded server — the controller's Heartbeat is injected at recover time
// from the candidate's recorded lastSeen, so detection latency is still
// "time of action minus last heartbeat".

// kaRecord is one observed keep-alive (or hello).
type kaRecord struct {
	id sbnet.SwitchID
	at time.Time
}

// kaShard owns keep-alive state for a subset of failure groups. Only
// pending is shared (readers append, the shard loop swaps it out); lastSeen
// is touched exclusively by the shard's own goroutine.
type kaShard struct {
	mu       sync.Mutex
	pending  []kaRecord
	lastSeen map[sbnet.SwitchID]time.Time
}

// deadCandidate is a switch a shard scan declared silent.
type deadCandidate struct {
	id       sbnet.SwitchID
	lastSeen time.Time
}

// shardIndex maps a switch to its shard. In-model switches shard by failure
// group, so one group's agents land on one shard and a recovery storm in a
// group cannot convoy every other group's scans. Synthetic fleet IDs (beyond
// the model, admitted by ServerConfig.FleetSize for scale benches) shard by
// ID directly.
func (s *Server) shardIndex(id sbnet.SwitchID) int {
	if int(id) < s.numSwitches {
		g := s.ctl.Network().Switch(id).Group
		return int(g) % len(s.shards)
	}
	return int(id) % len(s.shards)
}

// seen records a heartbeat from id on the wall clock. Hot path: one
// shard-local lock, one append.
func (s *Server) seen(id sbnet.SwitchID) {
	if int(id) < 0 || int(id) >= s.fleetSize {
		return
	}
	sh := s.shards[s.shardIndex(id)]
	rec := kaRecord{id: id, at: time.Now()}
	sh.mu.Lock()
	sh.pending = append(sh.pending, rec)
	sh.mu.Unlock()
}

// seenBatch records every valid pair in a keep-alive batch payload, taking
// each destination shard's lock at most once per batch instead of once per
// pair. Shard indices are staged in the reader's scratch (rc.shardOf), so
// the steady state allocates nothing.
func (s *Server) seenBatch(p []byte, cnt int, rc *readCtx) {
	now := time.Now()
	if cap(rc.shardOf) < cnt {
		rc.shardOf = make([]uint8, cnt)
	}
	so := rc.shardOf[:cnt]
	for i := 0; i < cnt; i++ {
		id, _ := kaBatchPair(p, i)
		if int(id) < 0 || int(id) >= s.fleetSize {
			so[i] = 0xFF // out of model and fleet: forget the pair
			continue
		}
		so[i] = uint8(s.shardIndex(id)) // Shards capped at 254 in setDefaults
	}
	for si := range s.shards {
		locked := false
		for i := 0; i < cnt; i++ {
			if int(so[i]) != si {
				continue
			}
			if !locked {
				s.shards[si].mu.Lock()
				locked = true
			}
			id, _ := kaBatchPair(p, i)
			s.shards[si].pending = append(s.shards[si].pending, kaRecord{id: id, at: now})
		}
		if locked {
			s.shards[si].mu.Unlock()
		}
	}
}

// shardLoop drains and scans one shard every CheckEvery.
func (s *Server) shardLoop(sh *kaShard) {
	defer s.wg.Done()
	deadline := time.Duration(s.cfg.MissThreshold) * s.cfg.Interval
	ticker := time.NewTicker(s.cfg.CheckEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.quit:
			return
		case now := <-ticker.C:
			var dead []deadCandidate
			prof.Do(prof.PhaseDetect, func() {
				sh.mu.Lock()
				pending := sh.pending
				sh.pending = nil
				sh.mu.Unlock()
				// Fold the batch: coalesce duplicate heartbeats, keep the
				// latest timestamp per switch.
				for _, r := range pending {
					if r.at.After(sh.lastSeen[r.id]) {
						sh.lastSeen[r.id] = r.at
					}
				}
				var silent []deadCandidate
				for id, last := range sh.lastSeen {
					silence := now.Sub(last)
					if silence < deadline {
						if silence >= s.cfg.Interval {
							s.mProbeMisses.Inc()
						}
						continue
					}
					silent = append(silent, deadCandidate{id: id, lastSeen: last})
				}
				if len(silent) == 0 {
					return
				}
				// Role reads must not race command applies mutating the
				// network; s.mu is taken only on this rare silent path, never
				// on the per-keep-alive hot path.
				s.mu.Lock()
				nw := s.ctl.Network()
				for _, c := range silent {
					// Synthetic fleet IDs have no role and no backup to
					// fail over to — a silent one is simply forgotten.
					if int(c.id) >= s.numSwitches {
						delete(sh.lastSeen, c.id)
						continue
					}
					if nw.Switch(c.id).Role != sbnet.RoleActive {
						continue
					}
					dead = append(dead, c)
					// Drop the entry now: the recovery is handed off, and
					// rescanning a dead switch every tick would re-propose
					// it forever.
					delete(sh.lastSeen, c.id)
				}
				s.mu.Unlock()
			})
			for _, c := range dead {
				select {
				case s.deadCh <- c:
				case <-s.quit:
					return
				}
			}
		}
	}
}

// recoverLoop drains node failovers from every shard. A failure storm
// arrives as a burst of candidates; draining the burst and recovering them
// concurrently lets the cluster's batch proposer fold the proposals into a
// few consensus rounds instead of one round per dead switch.
func (s *Server) recoverLoop() {
	defer s.wg.Done()
	const maxBurst = 256
	for {
		select {
		case <-s.quit:
			return
		case c := <-s.deadCh:
			burst := []deadCandidate{c}
			for len(burst) < maxBurst {
				select {
				case more := <-s.deadCh:
					burst = append(burst, more)
				default:
					goto drained
				}
			}
		drained:
			if len(burst) == 1 {
				s.recoverDead(burst[0])
				continue
			}
			var wg sync.WaitGroup
			for _, cand := range burst {
				wg.Add(1)
				go func(cand deadCandidate) {
					defer wg.Done()
					s.recoverDead(cand)
				}(cand)
			}
			wg.Wait()
		}
	}
}
