package ctlnet

import (
	"strings"
	"testing"
	"time"

	"sharebackup/internal/circuit"
)

func newCSService(t *testing.T) (*CSService, *CSClient, *circuit.Switch) {
	t.Helper()
	sw, err := circuit.New("cs-test", circuit.Crosspoint, 8)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewCSService("127.0.0.1:0", sw)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	cli, err := DialCS(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return svc, cli, sw
}

func TestCSReconfigureOverTCP(t *testing.T) {
	_, cli, sw := newCSService(t)
	reconfig, rtt, err := cli.Reconfigure([]circuit.Change{{A: 0, B: 3}, {A: 1, B: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if reconfig != 70*time.Nanosecond {
		t.Errorf("reconfig delay = %v, want one crosspoint reset", reconfig)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Errorf("rtt = %v", rtt)
	}
	if sw.BOf(0) != 3 || sw.BOf(1) != 2 {
		t.Error("changes not applied to the crossbar")
	}
	// The Section 5.3 claim: the controller-to-circuit-switch leg is
	// sub-millisecond with an efficient implementation. Loopback TCP
	// comfortably demonstrates the order of magnitude.
	if rtt > 50*time.Millisecond {
		t.Errorf("loopback reconfiguration RTT %v implausibly slow", rtt)
	}
}

func TestCSReconfigureFailover(t *testing.T) {
	// The actual failover batch: move a B-side port from the failed
	// member's A-port to the backup's.
	_, cli, sw := newCSService(t)
	if _, _, err := cli.Reconfigure([]circuit.Change{{A: 0, B: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Reconfigure([]circuit.Change{{A: 5, B: 0}}); err != nil {
		t.Fatal(err)
	}
	if sw.AOf(0) != 5 {
		t.Errorf("B0 circuits to A%d, want the backup port 5", sw.AOf(0))
	}
	if sw.BOf(0) != circuit.Unconnected {
		t.Error("failed member's circuit survived")
	}
}

func TestCSReconfigureErrors(t *testing.T) {
	_, cli, sw := newCSService(t)
	// Out-of-range port: service reports the crossbar's error, session
	// stays usable.
	if _, _, err := cli.Reconfigure([]circuit.Change{{A: 99, B: 0}}); err == nil {
		t.Fatal("out-of-range change accepted")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("error %v does not surface the crossbar failure", err)
	}
	if _, _, err := cli.Reconfigure([]circuit.Change{{A: 1, B: 1}}); err != nil {
		t.Fatalf("session unusable after an error: %v", err)
	}
	if sw.BOf(1) != 1 {
		t.Error("follow-up change not applied")
	}
	// Failed crossbar.
	sw.Fail()
	if _, _, err := cli.Reconfigure([]circuit.Change{{A: 2, B: 2}}); err == nil {
		t.Error("reconfiguration of failed crossbar accepted")
	}
}

func TestCSWireRoundTrip(t *testing.T) {
	in := []circuit.Change{{A: 1, B: 2}, {A: 3, B: circuit.Unconnected}}
	out, err := decodeCSReconfig(encodeCSReconfig(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip = %v", out)
	}
	if _, err := decodeCSReconfig([]byte{1, 2}); err == nil {
		t.Error("truncated reconfig accepted")
	}
	if _, err := decodeCSReconfig([]byte{0, 0, 0, 2, 0}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCSServiceConcurrentClients(t *testing.T) {
	svc, _, _ := newCSService(t)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			cli, err := DialCS(svc.Addr())
			if err != nil {
				done <- err
				return
			}
			defer cli.Close()
			for rep := 0; rep < 20; rep++ {
				if _, _, err := cli.Reconfigure([]circuit.Change{{A: i, B: (i + rep) % 8}}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
