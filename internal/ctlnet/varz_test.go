package ctlnet

import (
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/controller"
	"sharebackup/internal/obs"
	"sharebackup/internal/sbnet"
)

// TestVarzOverTCP exercises the metrics surface end to end: a failover over
// real sockets must show up in the counter snapshot fetched through the wire
// protocol, and in the recovery events captured by a sink on the server's
// bus. It also exercises the ServerConfig.Logf serialization contract —
// the unsynchronized slice append below is safe exactly because the server
// never invokes Logf concurrently (the race detector enforces this in
// `go test -race`).
func TestVarzOverTCP(t *testing.T) {
	nw, err := sbnet.New(sbnet.Config{K: 4, N: 1, Tech: circuit.Crosspoint})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(nw, controller.Config{ProbeInterval: 5 * time.Millisecond})
	bus := &obs.Bus{}
	ring := obs.NewRing(128)
	bus.Attach(ring)
	var lines []string // deliberately unsynchronized; Logf is serialized
	srv, err := NewServer("127.0.0.1:0", ctl, ServerConfig{
		Interval:      5 * time.Millisecond,
		MissThreshold: 3,
		CheckEvery:    2 * time.Millisecond,
		Obs:           bus,
		Logf:          func(format string, args ...interface{}) { lines = append(lines, format) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	edge := nw.EdgeGroup(0).Slots()[0]
	agg := nw.AggGroup(0).Slots()[0]
	a, err := Dial(srv.Addr(), edge, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	time.Sleep(15 * time.Millisecond) // a few keep-alives

	if err := a.ReportLinkFailure(2, agg, 0); err != nil {
		t.Fatal(err)
	}
	wallRecovery := func() *obs.Event {
		for _, ev := range ring.Find(obs.KindRecoveryComplete) {
			if ev.Wall {
				return &ev
			}
		}
		return nil
	}
	deadline := time.Now().Add(2 * time.Second)
	for wallRecovery() == nil {
		if time.Now().After(deadline) {
			t.Fatal("no wall-clock recovery-complete event within 2s")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Unknown message types make the server log — from two connections at
	// once, so unserialized Logf calls would trip the race detector.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			for j := 0; j < 20; j++ {
				if err := writeFrame(conn, 0xF0, nil); err != nil {
					return
				}
			}
			time.Sleep(10 * time.Millisecond) // let the server drain the frames
		}()
	}
	wg.Wait()

	varz, err := FetchVarz(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	got := parseVarz(t, varz)
	for name, min := range map[string]int64{
		"ctlnet.hellos":              1,
		"ctlnet.keepalives":          1,
		"ctlnet.link_reports":        1,
		"ctlnet.log_lines":           1,
		"controller.link_recoveries": 1,
	} {
		if got[name] < min {
			t.Errorf("varz %s = %d, want >= %d\nfull snapshot:\n%s", name, got[name], min, varz)
		}
	}
	if _, ok := got["ctlnet.uptime_ns"]; !ok {
		t.Errorf("varz missing ctlnet.uptime_ns:\n%s", varz)
	}

	ev := wallRecovery()
	if ev.Detail != "link" {
		t.Errorf("recovery-complete detail = %q, want link", ev.Detail)
	}
	if ev.Total <= 0 || ev.Total != ev.Detection+ev.Report+ev.Reconfig {
		t.Errorf("recovery-complete phases don't sum: detection=%v report=%v reconfig=%v total=%v",
			ev.Detection, ev.Report, ev.Reconfig, ev.Total)
	}

	// Close agent then server (Close waits for every connection handler),
	// so reading the log slice below cannot race with a late append.
	a.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("Logf never invoked")
	}
}

func parseVarz(t *testing.T, varz string) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	for _, line := range strings.Split(strings.TrimSpace(varz), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed varz line %q", line)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("varz line %q: %v", line, err)
		}
		out[fields[0]] = v
	}
	return out
}
