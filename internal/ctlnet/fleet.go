package ctlnet

import (
	"fmt"
	"runtime"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/controller"
	"sharebackup/internal/obs"
	"sharebackup/internal/sbnet"
)

// The fleet harness drives N agents' keep-alive load through one server to
// measure control-plane I/O throughput at scales far beyond the fat-tree
// model (ServerConfig.FleetSize admits the synthetic IDs). Agents ride
// AgentGroup sessions — GroupSize co-located agents per connection, one
// batched keep-alive frame per flush — so a 10k-agent fleet is a few
// hundred connections and a few hundred client goroutines, while the
// server side stays at O(shards + pollers) goroutines regardless.

// FleetConfig sizes one fleet throughput run.
type FleetConfig struct {
	// Agents is the total number of keep-aliving switch identities.
	Agents int
	// GroupSize is how many agents share one AgentGroup session. Default 50.
	GroupSize int
	// Interval is the keep-alive flush interval. Default 10 ms.
	Interval time.Duration
	// Warmup runs before the measurement window opens. Default 200 ms.
	Warmup time.Duration
	// Duration is the measurement window. Default 1 s.
	Duration time.Duration
	// Shards and Pollers pass through to ServerConfig (0 = defaults).
	Shards  int
	Pollers int
	// K is the in-model fat-tree arity backing the server. Default 8.
	K int
}

func (c *FleetConfig) setDefaults() {
	if c.GroupSize == 0 {
		c.GroupSize = 50
	}
	if c.Interval == 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.Warmup == 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.K == 0 {
		c.K = 8
	}
}

// FleetResult is one fleet run's measurement.
type FleetResult struct {
	Agents    int
	Conns     int
	GroupSize int
	// KAs is how many keep-alives the server counted in the window.
	KAs int64
	// KAPerSec is the sustained server-side keep-alive ingest rate.
	KAPerSec float64
	// ServerGoroutines is the steady-state goroutine count attributable to
	// the server: total at measurement time minus the harness's own client
	// goroutines (two per AgentGroup) and the baseline captured before the
	// server started. This is the number the soak test bounds by
	// O(shards + pollers).
	ServerGoroutines int
	// WireErrors and Batches are the server's ctlnet.wire_errors and
	// ctlnet.ka_batches counters at the end of the window.
	WireErrors int64
	Batches    int64
}

// RunFleet builds a server, dials Agents/GroupSize batched sessions against
// it, and measures sustained keep-alive throughput over cfg.Duration.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	cfg.setDefaults()
	baseline := runtime.NumGoroutine()
	nw, err := sbnet.New(sbnet.Config{K: cfg.K, N: 1, Tech: circuit.Crosspoint})
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	ctl := controller.New(nw, controller.Config{
		ProbeInterval: cfg.Interval,
		Metrics:       reg,
	})
	srv, err := NewServer("127.0.0.1:0", ctl, ServerConfig{
		Interval: cfg.Interval,
		// The fleet run measures ingest, not detection: a huge miss
		// threshold keeps the shard scans from declaring anyone dead under
		// scheduler jitter at 10k agents.
		MissThreshold: 1 << 20,
		CheckEvery:    100 * time.Millisecond,
		Shards:        cfg.Shards,
		Pollers:       cfg.Pollers,
		FleetSize:     cfg.Agents,
		Obs:           &obs.Bus{},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	var groups []*AgentGroup
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	for off := 0; off < cfg.Agents; off += cfg.GroupSize {
		end := off + cfg.GroupSize
		if end > cfg.Agents {
			end = cfg.Agents
		}
		ids := make([]sbnet.SwitchID, 0, end-off)
		for id := off; id < end; id++ {
			ids = append(ids, sbnet.SwitchID(id))
		}
		g, err := DialGroup(srv.Addr(), ids, cfg.Interval)
		if err != nil {
			return nil, fmt.Errorf("ctlnet: fleet group at %d: %w", off, err)
		}
		groups = append(groups, g)
	}

	time.Sleep(cfg.Warmup)
	kaCounter := reg.Counter("ctlnet.keepalives")
	start := kaCounter.Value()
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	delta := kaCounter.Value() - start
	elapsed := time.Since(t0)
	// Client side costs two goroutines per group (flush + drain); what
	// remains above the pre-server baseline is the server's own footprint.
	goro := runtime.NumGoroutine() - 2*len(groups) - baseline

	return &FleetResult{
		Agents:           cfg.Agents,
		Conns:            len(groups),
		GroupSize:        cfg.GroupSize,
		KAs:              delta,
		KAPerSec:         float64(delta) / elapsed.Seconds(),
		ServerGoroutines: goro,
		WireErrors:       reg.Counter("ctlnet.wire_errors").Value(),
		Batches:          reg.Counter("ctlnet.ka_batches").Value(),
	}, nil
}
