package ctlnet

import (
	"fmt"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/controller"
	"sharebackup/internal/obs"
	"sharebackup/internal/sbnet"
)

// EmulationConfig tunes a multi-process control-plane emulation.
type EmulationConfig struct {
	// K is the fat-tree parameter. Default 4.
	K int
	// N is the number of backups per failure group. Default 1.
	N int
	// NumAgents is how many switch agents to run (taken from pod 0's edge
	// group actives, then pod 1's, ...). Default 2.
	NumAgents int
	// NumCS is how many circuit-switch control services to run. Default 1.
	NumCS int
	// Interval is the agents' keep-alive interval. Default 2 ms.
	Interval time.Duration
	// MissThreshold is how many missed keep-alive intervals declare a
	// switch dead (the server default when zero). Widen it for scenarios
	// where agents legitimately pause heartbeats — e.g. while chasing a
	// new leader across a controller failover.
	MissThreshold int
	// TraceDir, when set, receives one JSONL trace file per process
	// (controller.jsonl, agent-<id>.jsonl, cs-<i>.jsonl) — the input set
	// for sbtap -stitch.
	TraceDir string
	// SLOBudget, when positive, attaches an SLO watchdog to the controller
	// bus auditing every recovery against it.
	SLOBudget time.Duration
	// FlightRecorder attaches a flight recorder to the controller bus,
	// dumping bundles into FlightDir on anomalies (SLO breach when
	// SLOBudget is set, keep-alive gaps, ring-drop bursts).
	FlightRecorder bool
	// FlightDir is where flight-recorder bundles land. Empty resolves
	// through obs.DefaultFlightDir.
	FlightDir string
	// Registry collects every process' metrics. Nil builds a private one.
	Registry *obs.Registry
}

func (c *EmulationConfig) setDefaults() {
	if c.K == 0 {
		c.K = 4
	}
	if c.N == 0 {
		c.N = 1
	}
	if c.NumAgents == 0 {
		c.NumAgents = 2
	}
	if c.NumCS == 0 {
		c.NumCS = 1
	}
	if c.Interval == 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
}

// Emulation is ShareBackup's control plane as separate communicating
// processes-in-miniature: a controller server, switch agents, and
// circuit-switch services, each with its OWN event bus, its OWN epoch, and
// (when TraceDir is set) its own JSONL trace file — connected only by TCP.
// Nothing shares a clock: the trace files are stitched back into one causal
// timeline by sbtap via the clock-sync events the wires carry.
type Emulation struct {
	Net      *sbnet.Network
	Ctl      *controller.Controller
	Server   *Server
	Agents   []*Agent
	CS       []*CSService
	Watchdog *obs.SLOWatchdog
	Flight   *obs.FlightRecorder

	// ServerBus is the controller process' bus; AgentBus and CSBus are the
	// per-process buses of the other emulated processes.
	ServerBus *obs.Bus
	AgentBus  []*obs.Bus
	CSBus     []*obs.Bus

	cfg   EmulationConfig
	sinks procSinks
}

// NewEmulation builds and starts the emulation.
func NewEmulation(cfg EmulationConfig) (*Emulation, error) {
	cfg.setDefaults()
	e := &Emulation{cfg: cfg, sinks: procSinks{dir: cfg.TraceDir}}
	ok := false
	defer func() {
		if !ok {
			e.Close()
		}
	}()

	nw, err := sbnet.New(sbnet.Config{K: cfg.K, N: cfg.N, Tech: circuit.Crosspoint})
	if err != nil {
		return nil, err
	}
	e.Net = nw

	// Circuit-switch processes first: the server dials them at startup.
	var csAddrs []string
	for i := 0; i < cfg.NumCS; i++ {
		proc := fmt.Sprintf("cs-%d", i)
		bus, err := e.newProcBus(proc)
		if err != nil {
			return nil, err
		}
		sw, err := circuit.New(proc, circuit.Crosspoint, cfg.K)
		if err != nil {
			return nil, err
		}
		svc, err := NewCSService("127.0.0.1:0", sw)
		if err != nil {
			return nil, err
		}
		svc.SetObserver(bus)
		e.CS = append(e.CS, svc)
		e.CSBus = append(e.CSBus, bus)
		csAddrs = append(csAddrs, svc.Addr())
	}

	// The controller process.
	serverBus, err := e.newProcBus("controller")
	if err != nil {
		return nil, err
	}
	e.ServerBus = serverBus
	if cfg.FlightRecorder {
		e.Flight = obs.NewFlightRecorder(obs.FlightConfig{
			Dir:                   obs.DefaultFlightDir(cfg.FlightDir),
			SLOBudget:             cfg.SLOBudget,
			KeepAliveGapThreshold: 3,
			DropBurstThreshold:    1024,
			Registry:              cfg.Registry,
		})
		e.Flight.Attach(serverBus)
	}
	if cfg.SLOBudget > 0 {
		e.Watchdog = obs.NewSLOWatchdog(obs.SLOConfig{
			Budget:   cfg.SLOBudget,
			Registry: cfg.Registry,
		})
		serverBus.Attach(e.Watchdog)
	}
	e.Ctl = controller.New(nw, controller.Config{
		ProbeInterval: cfg.Interval,
		Metrics:       cfg.Registry,
	})
	e.Ctl.SetObserver(serverBus)
	e.Server, err = NewServer("127.0.0.1:0", e.Ctl, ServerConfig{
		Interval:      cfg.Interval,
		MissThreshold: cfg.MissThreshold,
		CheckEvery:    cfg.Interval,
		Obs:           serverBus,
		CSAddrs:       csAddrs,
	})
	if err != nil {
		return nil, err
	}

	// Switch-agent processes, drawn from edge-group actives pod by pod.
	ids := e.agentSwitches(cfg.NumAgents)
	if len(ids) < cfg.NumAgents {
		return nil, fmt.Errorf("ctlnet: emulation has only %d agent slots, want %d", len(ids), cfg.NumAgents)
	}
	for _, id := range ids {
		proc := fmt.Sprintf("agent-%d", id)
		bus, err := e.newProcBus(proc)
		if err != nil {
			return nil, err
		}
		a, err := Dial(e.Server.Addr(), id, cfg.Interval)
		if err != nil {
			return nil, err
		}
		a.SetObserver(bus)
		e.Agents = append(e.Agents, a)
		e.AgentBus = append(e.AgentBus, bus)
	}
	ok = true
	return e, nil
}

// newProcBus builds one emulated process' named bus, attaching a JSONL file
// sink under TraceDir when configured.
func (e *Emulation) newProcBus(proc string) (*obs.Bus, error) {
	return e.sinks.newProcBus(proc)
}

// agentSwitches picks n active edge switches striped across pods, so that
// concurrently injected failures land in distinct failure groups: with N=1
// each group has a single backup, and two failures in one group would leave
// the second unrecoverable.
func (e *Emulation) agentSwitches(n int) []sbnet.SwitchID {
	return agentSwitchIDs(e.Net, e.cfg.K, n)
}

// WaitClockSync blocks until every agent has at least one clock-offset
// measurement to the controller, or the timeout expires.
func (e *Emulation) WaitClockSync(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		synced := 0
		for _, a := range e.Agents {
			if _, ok := a.ClockOffset(); ok {
				synced++
			}
		}
		if synced == len(e.Agents) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// FailLink makes agent i report the failure of its switch's first up-link,
// as if its local detect.Monitor crossed the miss threshold after the given
// detection latency. The report is traced: the agent's span roots the
// recovery's cross-process trace.
func (e *Emulation) FailLink(i int, detection time.Duration) error {
	if i < 0 || i >= len(e.Agents) {
		return fmt.Errorf("ctlnet: emulation has no agent %d", i)
	}
	a := e.Agents[i]
	ownPort, agg, aggPort := firstUpLink(e.Net, a.ID, e.cfg.K)
	return a.ReportLinkFailureDetected(ownPort, agg, aggPort, detection)
}

// TraceFiles lists the per-process JSONL trace files (empty without
// TraceDir).
func (e *Emulation) TraceFiles() []string { return e.sinks.names() }

// Close stops every emulated process and flushes the trace files.
func (e *Emulation) Close() error {
	for _, a := range e.Agents {
		a.Close()
	}
	var err error
	if e.Server != nil {
		err = e.Server.Close()
	}
	for _, svc := range e.CS {
		svc.Close()
	}
	if e.Flight != nil {
		e.ServerBus.Detach(e.Flight)
		e.Flight.Close() // drains pending dumps before trace files close
	}
	if cerr := e.sinks.close(); err == nil {
		err = cerr
	}
	return err
}
