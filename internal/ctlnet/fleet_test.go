package ctlnet

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/controller"
	"sharebackup/internal/ctlplane"
	"sharebackup/internal/obs"
	"sharebackup/internal/sbnet"
)

func TestKeepAliveBatchWireRoundTrip(t *testing.T) {
	ids := []sbnet.SwitchID{0, 7, 511, 9999}
	p := appendKeepAliveBatch(nil, ids, 42)
	cnt, err := kaBatchCount(p)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != len(ids) {
		t.Fatalf("count = %d, want %d", cnt, len(ids))
	}
	for i, want := range ids {
		id, seq := kaBatchPair(p, i)
		if id != want || seq != 42 {
			t.Fatalf("pair %d = (%d, %d), want (%d, 42)", i, id, seq, want)
		}
	}
	// A frame whose pair bytes don't match its count header is malformed.
	if _, err := kaBatchCount(p[:len(p)-3]); err == nil {
		t.Error("truncated batch accepted")
	}
	if _, err := kaBatchCount(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

// TestMalformedKeepAliveKeepsConnAlive is the wire-errors contract: a
// malformed keep-alive (or batch) payload is counted and skipped, and the
// session keeps working — it does not tear down the other 49 agents
// multiplexed behind the same connection.
func TestMalformedKeepAliveKeepsConnAlive(t *testing.T) {
	nw, err := sbnet.New(sbnet.Config{K: 4, N: 1, Tech: circuit.Crosspoint})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctl := controller.New(nw, controller.Config{ProbeInterval: 5 * time.Millisecond, Metrics: reg})
	srv, err := NewServer("127.0.0.1:0", ctl, ServerConfig{
		Interval:      5 * time.Millisecond,
		MissThreshold: 1 << 20,
		CheckEvery:    50 * time.Millisecond,
		Obs:           &obs.Bus{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g, err := DialGroup(srv.Addr(), []sbnet.SwitchID{1, 2, 3}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Inject garbage frames on the shared session: a short keep-alive, a
	// batch whose count disagrees with its pairs, and a short link report.
	var raw bytes.Buffer
	raw.Write(appendFrame(nil, msgKeepAlive, []byte{1, 2, 3}))
	raw.Write(appendFrame(nil, msgKeepAliveBatch, []byte{0, 9, 1, 2}))
	raw.Write(appendFrame(nil, msgLinkFail, []byte{5}))
	if _, err := g.conn.Write(raw.Bytes()); err != nil {
		t.Fatal(err)
	}

	wireErrors := reg.Counter("ctlnet.wire_errors")
	deadline := time.Now().Add(2 * time.Second)
	for wireErrors.Value() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := wireErrors.Value(); got != 3 {
		t.Fatalf("ctlnet.wire_errors = %d, want 3", got)
	}

	// The session survived: keep-alive batches written after the garbage
	// still land.
	ka := reg.Counter("ctlnet.keepalives")
	before := ka.Value()
	deadline = time.Now().Add(2 * time.Second)
	for ka.Value() < before+3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := ka.Value(); got < before+3 {
		t.Fatalf("keepalives stalled after wire errors: %d -> %d", before, got)
	}
}

// TestBatchedApplyMatchesSequential is the differential check behind the
// batched consensus path: applying N recover commands one by one and
// applying them as one CmdBatch must yield identical per-switch roles and
// identical recovery sequences — the batch is a transport optimization, not
// a semantic change.
func TestBatchedApplyMatchesSequential(t *testing.T) {
	build := func() (*Server, *sbnet.Network, *controller.Controller) {
		nw, err := sbnet.New(sbnet.Config{K: 4, N: 1, Tech: circuit.Crosspoint})
		if err != nil {
			t.Fatal(err)
		}
		ctl := controller.New(nw, controller.Config{ProbeInterval: 5 * time.Millisecond})
		srv, err := NewServer("127.0.0.1:0", ctl, ServerConfig{
			Interval: 5 * time.Millisecond,
			Obs:      &obs.Bus{},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv, nw, ctl
	}

	// A storm: two node failures in different pods plus one link failure,
	// timestamped in order.
	nwProbe, err := sbnet.New(sbnet.Config{K: 4, N: 1, Tech: circuit.Crosspoint})
	if err != nil {
		t.Fatal(err)
	}
	ids := agentSwitchIDs(nwProbe, 4, 3)
	cmds := [][]byte{
		ctlplane.Command{Kind: ctlplane.CmdRecoverNode, Switch: int32(ids[0]), LastSeenNS: 1e6, AtNS: 2e6}.Encode(),
		ctlplane.Command{Kind: ctlplane.CmdRecoverNode, Switch: int32(ids[1]), LastSeenNS: 1e6, AtNS: 3e6}.Encode(),
	}
	{
		ownPort, agg, aggPort := firstUpLink(nwProbe, ids[2], 4)
		cmds = append(cmds, ctlplane.Command{
			Kind:    ctlplane.CmdRecoverLink,
			ASwitch: int32(ids[2]), APort: int32(ownPort),
			BSwitch: int32(agg), BPort: int32(aggPort),
			AtNS: 4e6,
		}.Encode())
	}

	seqSrv, seqNet, seqCtl := build()
	for _, cmd := range cmds {
		if _, err := seqSrv.ApplyCommand(cmd); err != nil {
			t.Fatalf("sequential apply: %v", err)
		}
	}

	batSrv, batNet, batCtl := build()
	res, err := batSrv.ApplyReplicated(ctlplane.EncodeBatch(cmds))
	if err != nil {
		t.Fatalf("batched apply: %v", err)
	}
	results, ok := res.([]ctlplane.BatchResult)
	if !ok || len(results) != len(cmds) {
		t.Fatalf("batched apply returned %T (%d results), want %d", res, len(results), len(cmds))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch sub %d: %v", i, r.Err)
		}
		if r.Val.(*controller.Recovery) == nil {
			t.Fatalf("batch sub %d: nil recovery", i)
		}
	}

	for id := 0; id < seqNet.NumSwitches(); id++ {
		sid := sbnet.SwitchID(id)
		if got, want := batNet.Switch(sid).Role, seqNet.Switch(sid).Role; got != want {
			t.Errorf("switch %d role: batched %v, sequential %v", id, got, want)
		}
	}
	seqRecs, batRecs := seqCtl.Recoveries(), batCtl.Recoveries()
	if len(seqRecs) != len(batRecs) {
		t.Fatalf("recoveries: batched %d, sequential %d", len(batRecs), len(seqRecs))
	}
	for i := range seqRecs {
		if fmt.Sprint(seqRecs[i].Kind, seqRecs[i].Failed, seqRecs[i].Backup) !=
			fmt.Sprint(batRecs[i].Kind, batRecs[i].Failed, batRecs[i].Backup) {
			t.Errorf("recovery %d: batched %v/%v/%v, sequential %v/%v/%v", i,
				batRecs[i].Kind, batRecs[i].Failed, batRecs[i].Backup,
				seqRecs[i].Kind, seqRecs[i].Failed, seqRecs[i].Backup)
		}
	}

	// The batch is one history entry; a replica restored from the batched
	// server's snapshot converges to the same roles.
	nw3, err := sbnet.New(sbnet.Config{K: 4, N: 1, Tech: circuit.Crosspoint})
	if err != nil {
		t.Fatal(err)
	}
	ctl3 := controller.New(nw3, controller.Config{ProbeInterval: 5 * time.Millisecond})
	srv3, err := NewServer("127.0.0.1:0", ctl3, ServerConfig{Interval: 5 * time.Millisecond, Obs: &obs.Bus{}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	if err := srv3.RestoreState(batSrv.SnapshotState()); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < nw3.NumSwitches(); id++ {
		sid := sbnet.SwitchID(id)
		if got, want := nw3.Switch(sid).Role, batNet.Switch(sid).Role; got != want {
			t.Errorf("restored switch %d role = %v, want %v", id, got, want)
		}
	}
}

// TestBatchProposerFoldsConcurrentProposals drives concurrent proposals
// through a BatchProposer over a slow propose function and checks that they
// fold into fewer rounds with per-caller results intact.
func TestBatchProposerFoldsConcurrentProposals(t *testing.T) {
	bp := NewBatchProposer(func(data []byte, timeout time.Duration) (any, error) {
		time.Sleep(2 * time.Millisecond) // one "consensus round"
		cmd, err := ctlplane.DecodeCommand(data)
		if err != nil {
			return nil, err
		}
		if cmd.Kind != ctlplane.CmdBatch {
			return int(cmd.Switch), nil
		}
		out := make([]ctlplane.BatchResult, len(cmd.Sub))
		for i, sub := range cmd.Sub {
			sc, err := ctlplane.DecodeCommand(sub)
			if err != nil {
				out[i] = ctlplane.BatchResult{Err: err}
				continue
			}
			out[i] = ctlplane.BatchResult{Val: int(sc.Switch)}
		}
		return out, nil
	})

	const callers = 32
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			data := ctlplane.Command{Kind: ctlplane.CmdRecoverNode, Switch: int32(i)}.Encode()
			val, err := bp.Propose(data, time.Second)
			if err == nil && val.(int) != i {
				err = fmt.Errorf("caller %d got result %v", i, val)
			}
			errs <- err
		}(i)
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := bp.Commands(); got != callers {
		t.Fatalf("commands = %d, want %d", got, callers)
	}
	if rounds := bp.Rounds(); rounds >= callers {
		t.Fatalf("no folding: %d rounds for %d commands", rounds, callers)
	}
}

// TestFleetSoak runs a 1k-agent fleet through one server and asserts the
// tentpole's goroutine contract: the server's steady-state goroutine count
// is O(shards + pollers), independent of agent count. Run under -race by
// `make soak-fleet`.
func TestFleetSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak skipped in -short")
	}
	cfg := FleetConfig{
		Agents:    1000,
		GroupSize: 50,
		Interval:  20 * time.Millisecond,
		Warmup:    200 * time.Millisecond,
		Duration:  500 * time.Millisecond,
		Shards:    8,
		Pollers:   2,
	}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.KAs == 0 {
		t.Fatal("no keep-alives landed")
	}
	if res.WireErrors != 0 {
		t.Fatalf("wire errors on a clean fleet: %d", res.WireErrors)
	}
	if res.Batches == 0 {
		t.Fatal("no batched keep-alive frames seen")
	}
	// Server footprint: shard loops + poller loops + recover loop + accept
	// loop + tsdb/etc. The bound is deliberately generous (slack for test
	// runtime goroutines) but far below anything O(agents): the old
	// goroutine-per-conn design would sit at >= 20 even with only 20 conns,
	// and at 1000 agents unbatched it was >= 1000.
	bound := cfg.Shards + cfg.Pollers + 24
	if res.ServerGoroutines > bound {
		t.Fatalf("server goroutines = %d, want <= %d (O(shards+pollers), agents=%d)",
			res.ServerGoroutines, bound, cfg.Agents)
	}
	t.Logf("fleet: %d agents on %d conns, %.0f ka/s, %d server goroutines",
		res.Agents, res.Conns, res.KAPerSec, res.ServerGoroutines)
}
