package ctlnet

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/controller"
	"sharebackup/internal/sbnet"
)

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgHello, encodeHello(42)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgHello {
		t.Fatalf("type = %d", typ)
	}
	id, err := decodeHello(payload)
	if err != nil || id != 42 {
		t.Fatalf("hello = %v, %v", id, err)
	}

	buf.Reset()
	if err := writeFrame(&buf, msgKeepAlive, encodeKeepAlive(7, 99)); err != nil {
		t.Fatal(err)
	}
	_, payload, err = readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kid, seq, err := decodeKeepAlive(payload)
	if err != nil || kid != 7 || seq != 99 {
		t.Fatalf("keepalive = %v %v %v", kid, seq, err)
	}

	buf.Reset()
	if err := writeFrame(&buf, msgLinkFail, encodeLinkFail(1, 5, 2, 0)); err != nil {
		t.Fatal(err)
	}
	_, payload, err = readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, ap, b, bp, err := decodeLinkFail(payload)
	if err != nil || a != 1 || ap != 5 || b != 2 || bp != 0 {
		t.Fatalf("linkfail = %v %v %v %v %v", a, ap, b, bp, err)
	}

	ev := RecoveryEvent{Kind: "link", Failed: []sbnet.SwitchID{3, 4}, Backup: []sbnet.SwitchID{9}, Latency: 17 * time.Millisecond}
	back, err := decodeRecovery(encodeRecovery(ev))
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != "link" || len(back.Failed) != 2 || back.Failed[1] != 4 ||
		len(back.Backup) != 1 || back.Backup[0] != 9 || back.Latency != 17*time.Millisecond {
		t.Fatalf("recovery round trip = %+v", back)
	}
}

func TestWireDecodeErrors(t *testing.T) {
	if _, err := decodeHello([]byte{1, 2}); err == nil {
		t.Error("short hello accepted")
	}
	if _, _, err := decodeKeepAlive(make([]byte, 5)); err == nil {
		t.Error("short keepalive accepted")
	}
	if _, _, _, _, err := decodeLinkFail(make([]byte, 3)); err == nil {
		t.Error("short linkfail accepted")
	}
	if _, err := decodeRecovery([]byte{0}); err == nil {
		t.Error("short recovery accepted")
	}
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // zero-length frame
	if _, _, err := readFrame(&buf); err == nil {
		t.Error("zero-length frame accepted")
	}
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := readFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
}

func newServer(t *testing.T) (*Server, *sbnet.Network) {
	t.Helper()
	net, err := sbnet.New(sbnet.Config{K: 4, N: 1, Tech: circuit.Crosspoint})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(net, controller.Config{ProbeInterval: 5 * time.Millisecond})
	srv, err := NewServer("127.0.0.1:0", ctl, ServerConfig{
		Interval:      5 * time.Millisecond,
		MissThreshold: 3,
		CheckEvery:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, net
}

func TestNodeFailoverOverTCP(t *testing.T) {
	srv, net := newServer(t)

	mon, err := Subscribe(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	// Agents for every active switch in pod 0's edge group.
	var agents []*Agent
	for _, id := range net.EdgeGroup(0).Slots() {
		a, err := Dial(srv.Addr(), id, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		agents = append(agents, a)
	}
	// Let heartbeats register.
	time.Sleep(20 * time.Millisecond)

	// Kill one switch: its agent goes silent.
	victim := agents[0]
	victim.StopHeartbeats()
	t0 := time.Now()

	select {
	case ev, ok := <-mon.Events:
		if !ok {
			t.Fatalf("monitor closed: %v", mon.Err())
		}
		wall := time.Since(t0)
		if ev.Kind != "node" {
			t.Errorf("event kind = %q", ev.Kind)
		}
		if len(ev.Failed) != 1 || ev.Failed[0] != victim.ID {
			t.Errorf("failed = %v, want [%v]", ev.Failed, victim.ID)
		}
		if len(ev.Backup) != 1 {
			t.Errorf("backup = %v", ev.Backup)
		}
		// Detection threshold is 15 ms; the whole failover should land
		// well within a second even on a loaded machine.
		if wall > time.Second {
			t.Errorf("failover took %v", wall)
		}
		if ev.Latency <= 0 {
			t.Errorf("reported latency = %v", ev.Latency)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no recovery event within 2s")
	}

	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("network invariants after TCP failover: %v", err)
	}
	if net.Switch(victim.ID).Role != sbnet.RoleOffline {
		t.Error("victim not offline")
	}
}

func TestLinkFailureOverTCP(t *testing.T) {
	srv, net := newServer(t)

	mon, err := Subscribe(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	edge := net.EdgeGroup(1).Slots()[0]
	agg := net.AggGroup(1).Slots()[0]
	a, err := Dial(srv.Addr(), edge, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Edge slot 0's up-port 0 reaches agg slot 0 (rotation j=0).
	if err := a.ReportLinkFailure(2, agg, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case ev, ok := <-mon.Events:
		if !ok {
			t.Fatalf("monitor closed: %v", mon.Err())
		}
		if ev.Kind != "link" {
			t.Errorf("kind = %q", ev.Kind)
		}
		if len(ev.Failed) != 2 {
			t.Errorf("link failover replaced %d switches, want both ends", len(ev.Failed))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no link recovery event within 2s")
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTablePreloadOverTCP(t *testing.T) {
	srv, net := newServer(t)
	// An edge-group BACKUP switch gets the combined table too — that is
	// what makes it a hot standby (Section 4.3).
	backup := net.EdgeGroup(0).Members[2]
	a, err := Dial(srv.Addr(), backup, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if !a.WaitTable(2 * time.Second) {
		t.Fatal("preloaded table never arrived")
	}
	vt := a.Table()
	if vt == nil || vt.K != 4 || vt.Pod != 0 {
		t.Fatalf("table = %+v", vt)
	}
	if got, want := vt.Size(), 4/2+4*4/4; got != want {
		t.Errorf("table size = %d, want k/2 + k^2/4 = %d", got, want)
	}
	// Agg switches get no table push.
	agg, err := Dial(srv.Addr(), net.AggGroup(0).Members[0], 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	if agg.WaitTable(50 * time.Millisecond) {
		t.Error("agg switch received an edge table")
	}
}

func TestAgentValidation(t *testing.T) {
	srv, _ := newServer(t)
	if _, err := Dial(srv.Addr(), 0, 0); err == nil {
		t.Error("zero interval accepted")
	}
	a, err := Dial(srv.Addr(), 0, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	a.StopHeartbeats()
	if err := a.ReportLinkFailure(0, 1, 0); err == nil {
		t.Error("report after stop accepted")
	}
	a.Close()
	a.Close() // double close must be safe
}

func TestServerSkipsUnknownMessageTypes(t *testing.T) {
	// Forward compatibility: a newer agent speaking additional message
	// types must not lose its session — the length-prefixed frame lets the
	// server skip what it doesn't understand and keep serving.
	srv, _ := newServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, 0xEE, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// The session is still alive: a varz request on the same connection
	// gets its reply.
	if err := writeFrame(conn, msgVarzReq, nil); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("session died after an unknown message type: %v", err)
	}
	if typ != msgVarz {
		t.Fatalf("got message type %d after unknown-type skip, want msgVarz", typ)
	}
	if !strings.Contains(string(payload), "ctlnet.unknown_msgs 1") {
		t.Errorf("unknown_msgs counter not incremented; varz:\n%s", payload)
	}
}

func TestServerDropsProtocolViolations(t *testing.T) {
	srv, _ := newServer(t)
	// Malformed hello: terminated.
	conn2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := writeFrame(conn2, msgHello, []byte{1}); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := readFrame(conn2); err == nil {
		t.Error("server kept a session alive after a malformed hello")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := newServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestNoRecoveryForUnregisteredSwitch(t *testing.T) {
	// A switch that never sent Hello must not be failed over by the
	// detector, no matter how long the server runs.
	srv, net := newServer(t)
	mon, err := Subscribe(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	time.Sleep(60 * time.Millisecond) // several detection periods
	select {
	case ev := <-mon.Events:
		t.Fatalf("spurious recovery event: %+v", ev)
	default:
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseUnblocksMonitor(t *testing.T) {
	srv, _ := newServer(t)
	mon, err := Subscribe(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	select {
	case _, ok := <-mon.Events:
		if ok {
			t.Error("unexpected event")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("monitor not unblocked by server close")
	}
}
