package ctlnet

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/controller"
	"sharebackup/internal/ctlplane"
	"sharebackup/internal/obs"
	"sharebackup/internal/sbnet"
)

// This file wires N complete controller replicas — each its own network
// model, controller, ctlnet server, and consensus node — into one cluster
// over loopback TCP. The layering rule: the Server knows its consensus
// replica only through ClusterHooks, and the consensus node knows the
// Server only through its Apply/Snapshot/Restore hooks. The directory below
// late-binds the two (the Server needs hooks at construction time, before
// its replica's node exists).

// clusterDirectory maps replica IDs to their consensus nodes and serving
// (agent-facing) addresses. Entries are registered as replicas come up.
type clusterDirectory struct {
	mu      sync.Mutex
	nodes   map[int]*ctlplane.Node
	serving map[int]string
}

func newClusterDirectory() *clusterDirectory {
	return &clusterDirectory{
		nodes:   make(map[int]*ctlplane.Node),
		serving: make(map[int]string),
	}
}

func (d *clusterDirectory) register(id int, node *ctlplane.Node, servingAddr string) {
	d.mu.Lock()
	d.nodes[id] = node
	d.serving[id] = servingAddr
	d.mu.Unlock()
}

func (d *clusterDirectory) node(id int) *ctlplane.Node {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nodes[id]
}

func (d *clusterDirectory) servingAddr(id int) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.serving[id]
}

// clusterHooks adapts one replica's consensus node to the Server's
// ClusterHooks interface. Proposals are routed through a BatchProposer so a
// failure storm — many concurrent Propose calls — commits in a few
// replicated batch rounds instead of one consensus round per recovery.
type clusterHooks struct {
	dir  *clusterDirectory
	self int
	bp   *BatchProposer
}

func newClusterHooks(dir *clusterDirectory, self int) *clusterHooks {
	h := &clusterHooks{dir: dir, self: self}
	h.bp = NewBatchProposer(func(data []byte, timeout time.Duration) (any, error) {
		n := dir.node(self)
		if n == nil {
			return nil, ctlplane.ErrNotLeader
		}
		return n.Propose(data, timeout)
	})
	return h
}

func (h *clusterHooks) IsLeader() bool {
	n := h.dir.node(h.self)
	return n != nil && n.IsLeader()
}

func (h *clusterHooks) LeaderAddr() string {
	n := h.dir.node(h.self)
	if n == nil {
		return ""
	}
	ld := n.LeaderID()
	if ld < 0 {
		return ""
	}
	return h.dir.servingAddr(ld)
}

func (h *clusterHooks) Propose(cmd ctlplane.Command, timeout time.Duration) (*controller.Recovery, error) {
	res, err := h.bp.Propose(cmd.Encode(), timeout)
	if err != nil {
		return nil, err
	}
	rec, _ := res.(*controller.Recovery)
	return rec, nil
}

// BatchProposer folds concurrent Propose calls into one replicated batch
// command. The first caller in a quiet window proposes immediately; callers
// arriving while a consensus round is in flight accumulate and go out
// together as a single CmdBatch when the round completes. The replicated
// apply path decodes the batch and applies its sub-commands in encoded
// order (see Server.ApplyReplicated), so the folded path commits byte-for-
// byte the same state transitions as N sequential rounds — just in far
// fewer round trips.
type BatchProposer struct {
	propose  func(data []byte, timeout time.Duration) (any, error)
	maxBatch int

	mu       sync.Mutex
	pending  []*batchCall
	flushing bool

	rounds   atomic.Int64
	commands atomic.Int64
}

type batchCall struct {
	data    []byte
	timeout time.Duration
	done    chan batchOutcome
}

type batchOutcome struct {
	val any
	err error
}

// NewBatchProposer wraps a raw propose function (typically a consensus
// node's Propose) with storm batching.
func NewBatchProposer(propose func(data []byte, timeout time.Duration) (any, error)) *BatchProposer {
	return &BatchProposer{propose: propose, maxBatch: 64}
}

// Propose submits one encoded command and blocks until its outcome is
// known, whether it rode alone or inside a folded batch.
func (b *BatchProposer) Propose(data []byte, timeout time.Duration) (any, error) {
	c := &batchCall{data: data, timeout: timeout, done: make(chan batchOutcome, 1)}
	b.mu.Lock()
	b.pending = append(b.pending, c)
	if !b.flushing {
		b.flushing = true
		go b.flushLoop()
	}
	b.mu.Unlock()
	out := <-c.done
	return out.val, out.err
}

// Rounds returns the number of consensus proposals actually issued.
func (b *BatchProposer) Rounds() int64 { return b.rounds.Load() }

// Commands returns the number of commands submitted through Propose.
func (b *BatchProposer) Commands() int64 { return b.commands.Load() }

// flushLoop drains pending calls round by round; it exits when a round
// completes and nothing new accumulated behind it.
func (b *BatchProposer) flushLoop() {
	for {
		b.mu.Lock()
		n := len(b.pending)
		if n == 0 {
			b.flushing = false
			b.mu.Unlock()
			return
		}
		if n > b.maxBatch {
			n = b.maxBatch
		}
		batch := make([]*batchCall, n)
		copy(batch, b.pending[:n])
		b.pending = b.pending[:copy(b.pending, b.pending[n:])]
		b.mu.Unlock()
		b.flush(batch)
	}
}

func (b *BatchProposer) flush(batch []*batchCall) {
	b.rounds.Add(1)
	b.commands.Add(int64(len(batch)))
	if len(batch) == 1 {
		// Solo command: propose it raw, preserving the unbatched wire
		// format and apply result shape.
		c := batch[0]
		val, err := b.propose(c.data, c.timeout)
		c.done <- batchOutcome{val: val, err: err}
		return
	}
	subs := make([][]byte, len(batch))
	timeout := batch[0].timeout
	for i, c := range batch {
		subs[i] = c.data
		if c.timeout > timeout {
			timeout = c.timeout
		}
	}
	res, err := b.propose(ctlplane.EncodeBatch(subs), timeout)
	if err != nil {
		for _, c := range batch {
			c.done <- batchOutcome{err: err}
		}
		return
	}
	results, ok := res.([]ctlplane.BatchResult)
	if !ok || len(results) != len(batch) {
		err := fmt.Errorf("ctlnet: batch apply returned %T (%d results), want %d", res, len(results), len(batch))
		for _, c := range batch {
			c.done <- batchOutcome{err: err}
		}
		return
	}
	for i, c := range batch {
		c.done <- batchOutcome{val: results[i].Val, err: results[i].Err}
	}
}

// Replica is one complete cluster member: its own copy of the network
// model and controller (kept identical across replicas by the replicated
// log), the agent-facing server, and the consensus node + transport.
type Replica struct {
	ID        int
	Net       *sbnet.Network
	Ctl       *controller.Controller
	Server    *Server
	Node      *ctlplane.Node
	Transport *ctlplane.TCPTransport
	Bus       *obs.Bus
}

// Kill tears the replica down abruptly (consensus node, server, transport)
// — the emulation's "power off the controller" lever.
func (r *Replica) Kill() {
	r.Node.Stop()
	r.Server.Close()
	r.Transport.Close()
}

// ClusterConfig tunes a replicated-controller emulation.
type ClusterConfig struct {
	EmulationConfig
	// Replicas is the cluster size. Default 3.
	Replicas int
	// TickEvery is one consensus logical tick (election timeout is 10–20
	// ticks). Default 10 ms, so elections converge in ~100–200 ms and a
	// leader-kill test completes quickly.
	TickEvery time.Duration
	// Seed feeds the replicas' randomized election timeouts.
	Seed uint64
}

func (c *ClusterConfig) setDefaults() {
	c.EmulationConfig.setDefaults()
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.TickEvery == 0 {
		c.TickEvery = 10 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ClusterEmulation is the Emulation's replicated sibling: NumAgents switch
// agents keep-aliving against whichever of the Replicas currently leads,
// with consensus, redirects, and failover all riding real loopback TCP.
type ClusterEmulation struct {
	Replicas []*Replica
	Agents   []*Agent
	CS       []*CSService

	AgentBus []*obs.Bus
	CSBus    []*obs.Bus

	cfg   ClusterConfig
	dir   *clusterDirectory
	sinks procSinks
}

// NewClusterEmulation builds and starts a replica cluster plus its agents.
func NewClusterEmulation(cfg ClusterConfig) (*ClusterEmulation, error) {
	cfg.setDefaults()
	e := &ClusterEmulation{cfg: cfg, dir: newClusterDirectory(), sinks: procSinks{dir: cfg.TraceDir}}
	ok := false
	defer func() {
		if !ok {
			e.Close()
		}
	}()

	// Circuit-switch processes first: every replica dials them, but only
	// the leader mirrors recoveries (Server.applyReplicated gates on it).
	var csAddrs []string
	for i := 0; i < cfg.NumCS; i++ {
		proc := fmt.Sprintf("cs-%d", i)
		bus, err := e.sinks.newProcBus(proc)
		if err != nil {
			return nil, err
		}
		sw, err := circuit.New(proc, circuit.Crosspoint, cfg.K)
		if err != nil {
			return nil, err
		}
		svc, err := NewCSService("127.0.0.1:0", sw)
		if err != nil {
			return nil, err
		}
		svc.SetObserver(bus)
		e.CS = append(e.CS, svc)
		e.CSBus = append(e.CSBus, bus)
		csAddrs = append(csAddrs, svc.Addr())
	}

	// Replicas: server + controller stack first (each its own process bus
	// and epoch), then the consensus mesh once every server address exists.
	peers := make([]int, cfg.Replicas)
	for i := range peers {
		peers[i] = i
	}
	for i := 0; i < cfg.Replicas; i++ {
		bus, err := e.sinks.newProcBus(fmt.Sprintf("controller-%d", i))
		if err != nil {
			return nil, err
		}
		nw, err := sbnet.New(sbnet.Config{K: cfg.K, N: cfg.N, Tech: circuit.Crosspoint})
		if err != nil {
			return nil, err
		}
		reg := obs.NewRegistry()
		if i == 0 && cfg.Registry != nil {
			// The shared registry observes replica 0 (metric names collide
			// across replicas; the consensus gauges are ID-namespaced and
			// registered below for every replica).
			reg = cfg.Registry
		}
		ctl := controller.New(nw, controller.Config{
			ProbeInterval: cfg.Interval,
			Metrics:       reg,
		})
		ctl.SetObserver(bus)
		srv, err := NewServer("127.0.0.1:0", ctl, ServerConfig{
			Interval:      cfg.Interval,
			MissThreshold: cfg.MissThreshold,
			CheckEvery:    cfg.Interval,
			Obs:           bus,
			CSAddrs:       csAddrs,
			Cluster:       newClusterHooks(e.dir, i),
		})
		if err != nil {
			return nil, err
		}
		e.Replicas = append(e.Replicas, &Replica{
			ID: i, Net: nw, Ctl: ctl, Server: srv, Bus: bus,
		})
	}
	// Consensus mesh: bind every transport, then exchange addresses.
	addrs := make(map[int]string, cfg.Replicas)
	for _, r := range e.Replicas {
		r := r
		tr, err := ctlplane.NewTCPTransport(r.ID, map[int]string{r.ID: "127.0.0.1:0"}, func(m ctlplane.Message) {
			if n := e.dir.node(m.To); n != nil {
				n.Deliver(m)
			}
		})
		if err != nil {
			return nil, err
		}
		r.Transport = tr
		addrs[r.ID] = tr.Addr()
	}
	for _, r := range e.Replicas {
		r.Transport.SetPeers(addrs)
	}
	for _, r := range e.Replicas {
		r := r
		reg := obs.NewRegistry()
		if cfg.Registry != nil {
			reg = cfg.Registry
		}
		r.Node = ctlplane.NewNode(ctlplane.NodeConfig{
			Raft: ctlplane.RaftConfig{
				ID:    r.ID,
				Peers: peers,
				Seed:  cfg.Seed + uint64(r.ID)*977,
			},
			TickEvery: cfg.TickEvery,
			Transport: r.Transport,
			Apply:     r.Server.ApplyReplicated,
			Snapshot:  r.Server.SnapshotState,
			Restore:   r.Server.RestoreState,
			Bus:       r.Bus,
			Now:       r.Server.Now,
			Metrics:   reg,
		})
		e.dir.register(r.ID, r.Node, r.Server.Addr())
	}

	// Wait for a first leader so agents don't spend their dial budget on an
	// unelected cluster.
	if _, err := e.Leader(10 * time.Second); err != nil {
		return nil, err
	}

	// Switch agents, striped across pods exactly like the solo emulation.
	var serving []string
	for _, r := range e.Replicas {
		serving = append(serving, r.Server.Addr())
	}
	ids := agentSwitchIDs(e.Replicas[0].Net, cfg.K, cfg.NumAgents)
	if len(ids) < cfg.NumAgents {
		return nil, fmt.Errorf("ctlnet: cluster emulation has only %d agent slots, want %d", len(ids), cfg.NumAgents)
	}
	for _, id := range ids {
		proc := fmt.Sprintf("agent-%d", id)
		bus, err := e.sinks.newProcBus(proc)
		if err != nil {
			return nil, err
		}
		a, err := DialCluster(serving, id, cfg.Interval)
		if err != nil {
			return nil, err
		}
		a.SetObserver(bus)
		e.Agents = append(e.Agents, a)
		e.AgentBus = append(e.AgentBus, bus)
	}
	ok = true
	return e, nil
}

// Leader polls until one replica reports leadership, returning it.
func (e *ClusterEmulation) Leader(timeout time.Duration) (*Replica, error) {
	deadline := time.Now().Add(timeout)
	for {
		for _, r := range e.Replicas {
			if r.Node != nil && r.Node.IsLeader() {
				return r, nil
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("ctlnet: no replica led within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// KillLeader abruptly stops the current leader (consensus node, server,
// transport), returning the killed replica. The survivors elect a
// replacement; the agents chase it via redirects and re-dials.
func (e *ClusterEmulation) KillLeader(timeout time.Duration) (*Replica, error) {
	ld, err := e.Leader(timeout)
	if err != nil {
		return nil, err
	}
	ld.Kill()
	return ld, nil
}

// WaitClockSync blocks until every agent has a clock-offset measurement.
func (e *ClusterEmulation) WaitClockSync(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		synced := 0
		for _, a := range e.Agents {
			if _, ok := a.ClockOffset(); ok {
				synced++
			}
		}
		if synced == len(e.Agents) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// FailLink makes agent i report its switch's first up-link as failed, with
// the given measured detection latency (see Emulation.FailLink).
func (e *ClusterEmulation) FailLink(i int, detection time.Duration) error {
	if i < 0 || i >= len(e.Agents) {
		return fmt.Errorf("ctlnet: cluster emulation has no agent %d", i)
	}
	a := e.Agents[i]
	ownPort, agg, aggPort := firstUpLink(e.Replicas[0].Net, a.ID, e.cfg.K)
	return a.ReportLinkFailureDetected(ownPort, agg, aggPort, detection)
}

// TraceFiles lists the per-process JSONL trace files (empty without
// TraceDir).
func (e *ClusterEmulation) TraceFiles() []string { return e.sinks.names() }

// Close stops agents, replicas, and circuit switches, and flushes traces.
func (e *ClusterEmulation) Close() error {
	for _, a := range e.Agents {
		a.Close()
	}
	for _, r := range e.Replicas {
		if r.Node != nil {
			r.Node.Stop()
		}
		r.Server.Close()
		if r.Transport != nil {
			r.Transport.Close()
		}
	}
	for _, svc := range e.CS {
		svc.Close()
	}
	return e.sinks.close()
}

// procSinks owns the per-process trace buses' JSONL file sinks, shared by
// both emulation flavors.
type procSinks struct {
	dir   string
	files []*os.File
	pairs []struct {
		bus  *obs.Bus
		sink obs.Sink
	}
}

// newProcBus builds one emulated process' named bus, attaching a JSONL
// file sink under dir when configured.
func (p *procSinks) newProcBus(proc string) (*obs.Bus, error) {
	bus := &obs.Bus{}
	bus.SetProc(proc)
	if p.dir != "" {
		if err := os.MkdirAll(p.dir, 0o755); err != nil {
			return nil, err
		}
		f, err := os.Create(filepath.Join(p.dir, proc+".jsonl"))
		if err != nil {
			return nil, err
		}
		p.files = append(p.files, f)
		sink := obs.NewJSONLSink(f)
		bus.Attach(sink)
		p.pairs = append(p.pairs, struct {
			bus  *obs.Bus
			sink obs.Sink
		}{bus, sink})
	}
	return bus, nil
}

func (p *procSinks) names() []string {
	var out []string
	for _, f := range p.files {
		out = append(out, f.Name())
	}
	return out
}

func (p *procSinks) close() error {
	for _, s := range p.pairs {
		s.bus.Detach(s.sink)
	}
	var err error
	for _, f := range p.files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// agentSwitchIDs picks n active edge switches striped across pods (pod 0
// slot 0, pod 1 slot 0, ... then slot 1), so concurrently injected
// failures land in distinct failure groups.
func agentSwitchIDs(nw *sbnet.Network, k, n int) []sbnet.SwitchID {
	var ids []sbnet.SwitchID
	for slot := 0; len(ids) < n; slot++ {
		added := false
		for pod := 0; pod < k && len(ids) < n; pod++ {
			slots := nw.EdgeGroup(pod).Slots()
			if slot < len(slots) {
				ids = append(ids, slots[slot])
				added = true
			}
		}
		if !added {
			break
		}
	}
	return ids
}

// firstUpLink resolves the edge switch's first up-port and its agg-side
// peer: edge slot s's up-port 0 (physical port K/2) reaches agg slot 0 by
// the fat-tree rotation, and the agg end's port is the edge's slot index.
func firstUpLink(nw *sbnet.Network, id sbnet.SwitchID, k int) (ownPort int, agg sbnet.SwitchID, aggPort int) {
	sw := nw.Switch(id)
	pod := nw.Group(sw.Group).Pod
	slot := 0
	for j, sid := range nw.EdgeGroup(pod).Slots() {
		if sid == id {
			slot = j
			break
		}
	}
	return k / 2, nw.AggGroup(pod).Slots()[0], slot
}
