//go:build !linux

package ctlnet

import (
	"errors"
	"net"
	"sync"
	"time"
)

// The portable backend: a bounded pool of reader workers round-robins over
// the parked connections with short deadline-bounded reads. Goroutine count
// is O(workers), matching the epoll backend's contract; per-connection read
// latency grows with conns/workers, which is acceptable for the platforms
// this fallback serves (development hosts, not the 10k-agent bench).

// poolSweep is one worker's read window per connection visit.
const poolSweep = time.Millisecond

// connFD has no portable use: the pool reads through net.Conn directly.
func connFD(net.Conn) (int, bool) { return -1, false }

func newPoller(s *Server, n int) connPoller {
	p := &poolPoller{s: s}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

type poolPoller struct {
	s    *Server
	mu   sync.Mutex
	cond *sync.Cond
	// queue is the rotation of parked connections; a worker pops one,
	// serves one read window, and re-enqueues it.
	queue  []*pollConn
	closed bool
	wg     sync.WaitGroup
}

func (p *poolPoller) park(pc *pollConn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pc.conn.Close()
		return
	}
	pc.evicted.Store(false)
	p.queue = append(p.queue, pc)
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *poolPoller) evict(pc *pollConn) {
	// The queue entry (if any) is skipped when popped.
	pc.evicted.Store(true)
}

func (p *poolPoller) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

func (p *poolPoller) worker() {
	defer p.wg.Done()
	rc := &readCtx{}
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		pc := p.queue[0]
		p.queue = p.queue[:copy(p.queue, p.queue[1:])]
		p.mu.Unlock()
		if pc.evicted.Load() || pc.dropped.Load() {
			continue
		}
		p.serve(pc, rc)
	}
}

// serve gives one parked connection one read window: bytes that arrive are
// pumped through the shared fast-frame dispatch; a slow frame promotes the
// conn to serveActive; a quiet window re-enqueues it.
func (p *poolPoller) serve(pc *pollConn, rc *readCtx) {
	pc.conn.SetReadDeadline(time.Now().Add(poolSweep))
	spare := pc.accSpare(512)
	n, err := pc.conn.Read(spare)
	pc.conn.SetReadDeadline(time.Time{})
	if n > 0 {
		pc.acc = pc.acc[:len(pc.acc)+n]
		handoff, perr := p.s.pumpBuffered(pc, rc)
		if perr != nil {
			p.evict(pc)
			p.s.dropConn(pc, perr)
			return
		}
		if handoff {
			p.evict(pc)
			p.s.wg.Add(1)
			go p.s.serveActive(pc)
			return
		}
		pc.releaseAcc()
		p.park(pc)
		return
	}
	var nerr net.Error
	if err == nil || (errors.As(err, &nerr) && nerr.Timeout()) {
		pc.releaseAcc()
		p.park(pc)
		return
	}
	p.evict(pc)
	p.s.dropConn(pc, err)
}
