package ctlnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sharebackup/internal/sbnet"
)

// AgentGroup is the fleet-scale keep-alive client: many co-located switch
// agents (think one rack's worth of forwarding engines behind a management
// processor) share a single TCP session, and every flush tick their
// heartbeats leave as one msgKeepAliveBatch frame instead of len(ids)
// individual keep-alives. The server decodes one frame per batch into the
// sharded fan-in, so the per-heartbeat cost on both ends is a few dozen
// nanoseconds of buffer work rather than a syscall.
//
// An AgentGroup costs two goroutines total (flush ticker + reply drain),
// which is what makes 10k-agent client fleets drivable from one process.
type AgentGroup struct {
	ids      []sbnet.SwitchID
	interval time.Duration

	conn net.Conn
	buf  []byte // reused flush buffer: frames are appended, then one Write
	pay  []byte // reused batch payload staging

	mu     sync.Mutex
	closed bool
	seq    uint64

	quit chan struct{}
	done chan struct{}
}

// DialGroup connects one shared session for the given switch IDs: every ID
// is registered with its own hello (written back to back in one buffer),
// then the flush loop batches all their keep-alives at the given interval.
func DialGroup(addr string, ids []sbnet.SwitchID, interval time.Duration) (*AgentGroup, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("ctlnet: group interval %v must be positive", interval)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("ctlnet: group needs at least one switch ID")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlnet: group dial: %w", err)
	}
	g := &AgentGroup{
		ids:      append([]sbnet.SwitchID(nil), ids...),
		interval: interval,
		conn:     conn,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// Register the whole group in one write.
	buf := g.buf[:0]
	for _, id := range g.ids {
		buf = appendFrame(buf, msgHello, encodeHello(id))
	}
	g.buf = buf
	if _, err := conn.Write(buf); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ctlnet: group hello: %w", err)
	}
	go g.drainReplies()
	go g.flushLoop()
	return g, nil
}

// Len returns the number of agents riding this session.
func (g *AgentGroup) Len() int { return len(g.ids) }

// Seq returns the number of completed flush ticks.
func (g *AgentGroup) Seq() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.seq
}

// flushLoop emits one keep-alive batch per tick: the group's IDs are
// chunked at the wire format's pair capacity and each chunk leaves as a
// single frame from the reused buffer.
func (g *AgentGroup) flushLoop() {
	defer close(g.done)
	ticker := time.NewTicker(g.interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.quit:
			return
		case <-ticker.C:
			g.mu.Lock()
			g.seq++
			seq := g.seq
			g.mu.Unlock()
			for off := 0; off < len(g.ids); off += maxKAPairs {
				end := off + maxKAPairs
				if end > len(g.ids) {
					end = len(g.ids)
				}
				g.pay = appendKeepAliveBatch(g.pay[:0], g.ids[off:end], seq)
				g.buf = appendFrame(g.buf[:0], msgKeepAliveBatch, g.pay)
				if _, err := g.conn.Write(g.buf); err != nil {
					return // fleet harness sessions don't reconnect
				}
			}
		}
	}
}

// drainReplies consumes server-to-group frames (table pushes for in-model
// IDs, clock-sync acks) so the server's reply writes never block; the fleet
// harness has no per-agent state to deliver them to.
func (g *AgentGroup) drainReplies() {
	fr := frameReader{r: g.conn}
	for {
		if _, _, err := fr.next(); err != nil {
			return
		}
	}
}

// Close stops the flush loop and closes the shared session.
func (g *AgentGroup) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	close(g.quit)
	<-g.done
	return g.conn.Close()
}
