package controller

import (
	"fmt"
	"sort"
)

// Cluster models the replicated controller deployment of Section 5.1: the
// logically centralized controller is a small cluster of machines; switches
// and hosts report to all of them, and a primary is elected to react to
// failures. When the primary fails, another replica takes over.
type Cluster struct {
	alive   map[int]bool
	primary int
	// terms counts elections, for observability.
	terms int
}

// NewCluster creates a cluster of n replicas (IDs 0..n-1) and elects a
// primary.
func NewCluster(n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("controller: cluster needs at least one replica, got %d", n)
	}
	c := &Cluster{alive: make(map[int]bool, n)}
	for i := 0; i < n; i++ {
		c.alive[i] = true
	}
	c.elect()
	return c, nil
}

// elect chooses the lowest-ID live replica (a deterministic bully-style
// election).
func (c *Cluster) elect() {
	ids := make([]int, 0, len(c.alive))
	for id, ok := range c.alive {
		if ok {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		c.primary = -1
		return
	}
	sort.Ints(ids)
	if c.primary != ids[0] {
		c.primary = ids[0]
		c.terms++
	}
}

// Primary returns the current primary's ID, or -1 when no replica is alive.
func (c *Cluster) Primary() int { return c.primary }

// Terms returns how many elections have completed.
func (c *Cluster) Terms() int { return c.terms }

// AliveCount returns the number of live replicas.
func (c *Cluster) AliveCount() int {
	n := 0
	for _, ok := range c.alive {
		if ok {
			n++
		}
	}
	return n
}

// Fail marks a replica dead and re-elects if it was the primary.
func (c *Cluster) Fail(id int) error {
	if _, known := c.alive[id]; !known {
		return fmt.Errorf("controller: unknown replica %d", id)
	}
	c.alive[id] = false
	if id == c.primary {
		c.elect()
	}
	return nil
}

// Recover marks a replica live again. The current primary keeps its role
// (no disruptive fail-back), matching the paper's keep-the-backup-online
// philosophy.
func (c *Cluster) Recover(id int) error {
	if _, known := c.alive[id]; !known {
		return fmt.Errorf("controller: unknown replica %d", id)
	}
	c.alive[id] = true
	if c.primary == -1 {
		c.elect()
	}
	return nil
}
