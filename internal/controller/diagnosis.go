package controller

import (
	"fmt"

	"sharebackup/internal/obs"
	"sharebackup/internal/obs/prof"
	"sharebackup/internal/sbnet"
)

// DiagnosisResult reports the outcome of offline diagnosis for one suspect
// interface.
type DiagnosisResult struct {
	Suspect EndPoint
	// Healthy is true when the suspect interface had connectivity in at
	// least one probe configuration and the switch was exonerated.
	Healthy bool
	// Partners lists the interfaces the suspect was tested against
	// (up to three, per Figure 4's configurations 1-3).
	Partners []EndPoint
	// Exonerated is true when the switch was returned to the backup pool.
	Exonerated bool
	// Skipped is true when the suspect could not be probed offline: it is
	// still active (its group had no backup to replace it with) or was
	// already cleared by an earlier diagnosis or repair. Offline
	// diagnosis only ever involves switches already taken offline
	// (Section 4.2).
	Skipped bool
}

// PendingDiagnosis returns the queued link-failure suspects.
func (c *Controller) PendingDiagnosis() []LinkSuspects {
	return append([]LinkSuspects(nil), c.pendingDiagnosis...)
}

// RunDiagnosis drains the diagnosis queue, testing every suspect interface
// against up to three partner interfaces reached through the circuit-switch
// side-port rings (Section 4.2, Figure 4). A suspect with connectivity in at
// least one configuration is redressed as healthy and its switch released
// back to the backup pool; otherwise the switch stays offline for repair.
//
// Diagnosis only involves switches already taken offline and backup switches
// not in use, so it never touches the live network. If neither side of a
// failed link can offer a healthy partner interface, both suspects are
// considered faulty (the paper's conservative rule).
func (c *Controller) RunDiagnosis() ([]DiagnosisResult, error) {
	if c.bus.Enabled() {
		ev := obs.NewEvent(obs.KindDiagnosisStarted, -1)
		ev.Count = int32(len(c.pendingDiagnosis))
		c.bus.Emit(ev)
	}
	reconfigsBefore := c.diagnosisReconfigs
	var results []DiagnosisResult
	for _, item := range c.pendingDiagnosis {
		for _, suspect := range []EndPoint{item.A, item.B} {
			res, err := c.diagnoseInterface(suspect)
			if err != nil {
				return results, err
			}
			results = append(results, res)
		}
	}
	c.pendingDiagnosis = nil
	c.gPendingDiagnosis.Set(0)
	c.mDiagnosisReconfigs.Add(int64(c.diagnosisReconfigs - reconfigsBefore))
	if c.bus.Enabled() {
		exonerated := 0
		for _, r := range results {
			if r.Exonerated {
				exonerated++
			}
		}
		ev := obs.NewEvent(obs.KindDiagnosisFinished, -1)
		ev.Count = int32(exonerated)
		ev.Detail = fmt.Sprintf("%d probes, %d reconfigs", len(results), c.diagnosisReconfigs-reconfigsBefore)
		c.bus.Emit(ev)
	}
	return results, nil
}

// diagnoseInterface probes one suspect interface against up to three
// partners.
func (c *Controller) diagnoseInterface(suspect EndPoint) (DiagnosisResult, error) {
	sw := c.net.Switch(suspect.Switch)
	if sw.Role != sbnet.RoleOffline {
		// Still active (its group had no spare backup at report time)
		// or already cleared by an earlier diagnosis item or repair:
		// nothing to probe offline.
		return DiagnosisResult{Suspect: suspect, Skipped: true}, nil
	}
	res := DiagnosisResult{Suspect: suspect}
	for _, partner := range c.partnerInterfaces(suspect) {
		if len(res.Partners) == 3 {
			break
		}
		res.Partners = append(res.Partners, partner)
		// Each probe configuration costs two circuit reconfigurations
		// (set up the test circuit through the side-port ring, then
		// restore).
		c.diagnosisReconfigs += 2
		if c.net.InterfaceUp(suspect.Switch, suspect.Port) && c.net.InterfaceUp(partner.Switch, partner.Port) {
			res.Healthy = true
			break
		}
	}
	if res.Healthy {
		// Exoneration reverts the failover: the suspect rejoins its
		// group's backup pool — the Table 2 "revert" phase.
		var err error
		prof.Do(prof.PhaseRevert, func() { err = c.net.Release(suspect.Switch) })
		if err != nil {
			return res, err
		}
		res.Exonerated = true
		c.noteBackupUse(sw.Group)
	}
	return res, nil
}

// partnerInterfaces enumerates candidate partner interfaces for a suspect:
// first the suspect switch's own other interfaces (configurations that loop
// back through the side-port ring to the same switch, like A_{1,0} in
// Figure 4), then interfaces on free backup switches of the same failure
// group (like A_{3,0} in Figure 4).
func (c *Controller) partnerInterfaces(suspect EndPoint) []EndPoint {
	var out []EndPoint
	sw := c.net.Switch(suspect.Switch)
	for p := range sw.PortHealthy {
		if p != suspect.Port {
			out = append(out, EndPoint{Switch: suspect.Switch, Port: p})
		}
	}
	for _, id := range c.net.FreeBackups(sw.Group) {
		bsw := c.net.Switch(id)
		for p := range bsw.PortHealthy {
			out = append(out, EndPoint{Switch: id, Port: p})
		}
	}
	return out
}

// RepairSwitch models the completion of a physical repair: the switch's
// faults are cleared and it joins the backup pool of its failure group. Per
// Section 4.2 the network does not switch back to the original assignment.
func (c *Controller) RepairSwitch(id sbnet.SwitchID) error {
	var err error
	prof.Do(prof.PhaseRevert, func() { err = c.net.Release(id) })
	return err
}
