// Package controller implements ShareBackup's logically centralized control
// plane (Section 4): keep-alive failure detection, backup allocation and
// circuit reconfiguration for node failures, replace-both-ends handling of
// link failures, offline failure diagnosis over the circuit-switch side-port
// rings, live impersonation bookkeeping, circuit-switch failure thresholds,
// and a replicated-controller election model.
//
// Time is virtual: callers drive the controller with explicit timestamps
// (time.Duration since an epoch), which makes recovery-latency accounting
// (Section 5.3) exact and deterministic. The real-socket control plane in
// internal/ctlnet layers the same logic over TCP.
package controller

import (
	"errors"
	"fmt"
	"time"

	"sharebackup/internal/obs"
	"sharebackup/internal/obs/prof"
	"sharebackup/internal/sbnet"
	"sharebackup/internal/topo"
)

// Config tunes the control plane.
type Config struct {
	// ProbeInterval is the keep-alive/probing interval. The paper assumes
	// the same probing interval as F10 and Aspen Tree; the default is
	// 1 ms (F10-class fast detection).
	ProbeInterval time.Duration
	// MissThreshold is how many consecutive missed keep-alives declare a
	// node failure. Default 3.
	MissThreshold int
	// CommDelay is the one-way switch-to-controller (and
	// controller-to-circuit-switch) communication delay. The paper argues
	// an efficient controller keeps this sub-millisecond; default 100 µs.
	CommDelay time.Duration
	// CSReportThreshold is the number of link-failure reports associated
	// with one circuit switch within CSReportWindow that triggers a halt
	// and a request for human intervention (Section 5.1). Default 3.
	CSReportThreshold int
	// CSReportWindow is the sliding window for CSReportThreshold.
	// Default 1 s.
	CSReportWindow time.Duration
	// Metrics is the registry the controller resolves its counters and
	// gauges in. Nil keeps the historical behaviour — a private fresh
	// registry per controller (test isolation). Commands pass
	// obs.DefaultRegistry so controller metrics surface on the -debug-addr
	// /varz endpoint alongside fluid telemetry.
	Metrics *obs.Registry
}

func (c *Config) setDefaults() {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Millisecond
	}
	if c.MissThreshold == 0 {
		c.MissThreshold = 3
	}
	if c.CommDelay == 0 {
		c.CommDelay = 100 * time.Microsecond
	}
	if c.CSReportThreshold == 0 {
		c.CSReportThreshold = 3
	}
	if c.CSReportWindow == 0 {
		c.CSReportWindow = time.Second
	}
}

// Recovery records one recovery action and its latency breakdown.
type Recovery struct {
	At     time.Duration // when the controller acted
	Kind   string        // "node" or "link"
	Failed []sbnet.SwitchID
	Backup []sbnet.SwitchID
	// Detection is the time from the actual failure (or last heartbeat)
	// to the controller noticing.
	Detection time.Duration
	// Comm is the report and reconfiguration-request communication time.
	Comm time.Duration
	// Reconfig is the circuit reconfiguration latency.
	Reconfig time.Duration
	// Trace and Span identify the recovery's causal span on the event bus,
	// so wall-clock mirrors of the same recovery (the ctlnet server's
	// recovered event, circuit-switch agent reconfigurations) can join it.
	Trace uint64
	Span  uint64
}

// Total returns the end-to-end recovery latency.
func (r *Recovery) Total() time.Duration { return r.Detection + r.Comm + r.Reconfig }

// ErrHalted is returned when recovery is suspended pending human
// intervention after a suspected circuit-switch failure.
var ErrHalted = fmt.Errorf("controller: recovery halted, human intervention required")

// EndPoint names one interface: a physical switch and a port on it.
type EndPoint struct {
	Switch sbnet.SwitchID
	Port   int
}

type csKey struct {
	layer, pod, idx int
}

// Controller is the ShareBackup control plane over one network.
type Controller struct {
	net *sbnet.Network
	cfg Config

	lastSeen map[sbnet.SwitchID]time.Duration
	halted   bool

	recoveries []Recovery
	csReports  map[csKey][]time.Duration

	// pendingDiagnosis holds link-failure suspects awaiting offline
	// diagnosis (Section 4.2).
	pendingDiagnosis []LinkSuspects

	// hostSuspects tracks host-link replacements: if the problem
	// persists, the switch is exonerated and the host flagged.
	flaggedHosts map[int]bool

	diagnosisReconfigs int

	// bus receives structured control-plane events (nil-safe: a zero
	// Controller emits nothing). Virtual timestamps.
	bus *obs.Bus
	// reg holds the controller's runtime metrics; handles are resolved
	// once here so the recovery path never touches the registry map.
	reg                  *obs.Registry
	mFailovers           *obs.Counter
	mLinkRecoveries      *obs.Counter
	mHalts               *obs.Counter
	mDiagnosisReconfigs  *obs.Counter
	mBackupPoolExhausted *obs.Counter
	gPendingDiagnosis    *obs.Gauge
}

// LinkSuspects is a pending diagnosis work item: the two suspect interfaces
// of a reported link failure.
type LinkSuspects struct {
	A, B EndPoint
}

// New builds a controller over net.
func New(net *sbnet.Network, cfg Config) *Controller {
	cfg.setDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Controller{
		net:          net,
		cfg:          cfg,
		lastSeen:     make(map[sbnet.SwitchID]time.Duration),
		csReports:    make(map[csKey][]time.Duration),
		flaggedHosts: make(map[int]bool),
		reg:          reg,
	}
	c.mFailovers = c.reg.Counter("controller.failovers")
	c.mLinkRecoveries = c.reg.Counter("controller.link_recoveries")
	c.mHalts = c.reg.Counter("controller.halts")
	c.mDiagnosisReconfigs = c.reg.Counter("controller.diagnosis_reconfigs")
	c.mBackupPoolExhausted = c.reg.Counter("controller.backup_pool_exhausted")
	c.gPendingDiagnosis = c.reg.Gauge("controller.pending_diagnosis")
	return c
}

// SetObserver attaches an event bus; the controller (and, via
// Network.SetObserver, usually the network below it) emits structured
// events there. A nil bus disables emission.
func (c *Controller) SetObserver(bus *obs.Bus) { c.bus = bus }

// Observer returns the attached event bus (possibly nil).
func (c *Controller) Observer() *obs.Bus { return c.bus }

// Metrics returns the controller's counter/gauge registry. The ctlnet
// server merges its own metrics into the same registry for the varz dump.
func (c *Controller) Metrics() *obs.Registry { return c.reg }

// groupLabel names a failure group for per-group gauges ("agg-pod2", ...).
func (c *Controller) groupLabel(g sbnet.GroupID) string {
	grp := c.net.Group(g)
	switch grp.Kind {
	case topo.KindEdge:
		return fmt.Sprintf("edge-pod%d", grp.Pod)
	case topo.KindAgg:
		return fmt.Sprintf("agg-pod%d", grp.Pod)
	default:
		return fmt.Sprintf("core-%d", grp.Index)
	}
}

// noteBackupUse refreshes the backups-in-use gauge of one failure group.
func (c *Controller) noteBackupUse(g sbnet.GroupID) {
	inUse := c.net.NBackups() - len(c.net.FreeBackups(g))
	c.reg.Gauge("controller.backups_in_use." + c.groupLabel(g)).Set(int64(inUse))
}

// Network returns the controlled network.
func (c *Controller) Network() *sbnet.Network { return c.net }

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// Halted reports whether recovery is suspended pending human intervention.
func (c *Controller) Halted() bool { return c.halted }

// Recoveries returns the recovery log.
func (c *Controller) Recoveries() []Recovery { return c.recoveries }

// DiagnosisReconfigs returns circuit reconfigurations spent on offline
// diagnosis so far.
func (c *Controller) DiagnosisReconfigs() int { return c.diagnosisReconfigs }

// FlaggedHosts returns hosts flagged for troubleshooting after a switch
// replacement did not fix their link.
func (c *Controller) FlaggedHosts() []int {
	var out []int
	for h := range c.flaggedHosts {
		out = append(out, h)
	}
	return out
}

// Heartbeat records a keep-alive from a switch.
func (c *Controller) Heartbeat(id sbnet.SwitchID, at time.Duration) {
	c.lastSeen[id] = at
}

// DetectFailures scans heartbeat state at time `at` and returns the active
// switches whose keep-alives have been missing for MissThreshold intervals.
// Switches that never sent a heartbeat are not reported (they are considered
// not yet registered).
func (c *Controller) DetectFailures(at time.Duration) []sbnet.SwitchID {
	deadline := time.Duration(c.cfg.MissThreshold) * c.cfg.ProbeInterval
	var out []sbnet.SwitchID
	prof.Do(prof.PhaseDetect, func() {
		for id, last := range c.lastSeen {
			if c.net.Switch(id).Role != sbnet.RoleActive {
				continue
			}
			if at-last >= deadline {
				out = append(out, id)
			}
		}
	})
	return out
}

// RecoverNode fails over a node detected dead at time `at`, whose last
// heartbeat was `lastSeen` ago (used for the detection-latency breakdown).
func (c *Controller) RecoverNode(id sbnet.SwitchID, at time.Duration) (*Recovery, error) {
	if c.halted {
		return nil, ErrHalted
	}
	last, ok := c.lastSeen[id]
	detection := time.Duration(c.cfg.MissThreshold) * c.cfg.ProbeInterval
	if ok && at-last > 0 {
		detection = at - last
	}
	span := c.bus.BeginSpan()
	defer c.bus.EndSpan()
	if c.bus.Enabled() {
		ev := obs.NewEvent(obs.KindFailureDeclared, at)
		ev.Span = span
		ev.Switch = int32(id)
		ev.Detection = detection
		ev.Detail = "node"
		c.bus.Emit(ev)
	}
	var (
		backup   sbnet.SwitchID
		reconfig time.Duration
		err      error
	)
	prof.Do(prof.PhaseReconfig, func() {
		backup, reconfig, err = c.net.Replace(id)
	})
	if err != nil {
		if errors.Is(err, sbnet.ErrNoBackup) {
			c.mBackupPoolExhausted.Inc()
		}
		return nil, err
	}
	delete(c.lastSeen, id)
	rec := Recovery{
		At:        at,
		Kind:      "node",
		Failed:    []sbnet.SwitchID{id},
		Backup:    []sbnet.SwitchID{backup},
		Detection: detection,
		Comm:      2 * c.cfg.CommDelay, // report in, reconfigure out
		Reconfig:  reconfig,
	}
	c.recoveries = append(c.recoveries, rec)
	c.mFailovers.Inc()
	c.noteBackupUse(c.net.Switch(backup).Group)
	c.emitRecoveryDone(span, at, &c.recoveries[len(c.recoveries)-1])
	return &c.recoveries[len(c.recoveries)-1], nil
}

// emitRecoveryDone publishes the backup-assigned and recovery-complete
// events closing a recovery span.
func (c *Controller) emitRecoveryDone(span uint64, at time.Duration, rec *Recovery) {
	// Record the span identity on the recovery itself (before the deferred
	// EndSpan clears the bus context) so cross-process mirrors can join it.
	rec.Span = span
	rec.Trace = c.bus.ActiveTrace()
	if !c.bus.Enabled() {
		return
	}
	prof.Do(prof.PhaseNotify, func() { c.emitRecoveryEvents(span, at, rec) })
}

func (c *Controller) emitRecoveryEvents(span uint64, at time.Duration, rec *Recovery) {
	for i, failed := range rec.Failed {
		ev := obs.NewEvent(obs.KindBackupAssigned, at)
		ev.Span = span
		ev.Switch = int32(failed)
		if i < len(rec.Backup) {
			ev.Backup = int32(rec.Backup[i])
		}
		c.bus.Emit(ev)
	}
	done := obs.NewEvent(obs.KindRecoveryComplete, at+rec.Comm+rec.Reconfig)
	done.Span = span
	done.Detail = rec.Kind
	if len(rec.Failed) > 0 {
		done.Switch = int32(rec.Failed[0])
	}
	if len(rec.Backup) > 0 {
		done.Backup = int32(rec.Backup[0])
	}
	done.Count = int32(len(rec.Failed))
	done.Detection = rec.Detection
	done.Report = rec.Comm
	done.Reconfig = rec.Reconfig
	done.Total = rec.Total()
	c.bus.Emit(done)
}

// ReportLinkFailure handles a link-failure report from both endpoints
// (Section 4.1): for fast recovery the controller replaces the switches on
// both sides of the link immediately, and queues the pair for offline
// diagnosis. If either failure group has no backup left, the available side
// is still replaced and an error is returned for the other.
//
// The report is also charged against the circuit switch carrying the link;
// crossing the report threshold within the window halts recovery
// (suspected circuit-switch failure, Section 5.1).
//
// The detection latency in the recovery record is the probing interval; use
// ReportLinkFailureDetected when the actual measured detection delay (e.g.
// from a detect.Monitor) is known.
func (c *Controller) ReportLinkFailure(a, b EndPoint, at time.Duration) (*Recovery, error) {
	return c.ReportLinkFailureDetected(a, b, at, c.cfg.ProbeInterval)
}

// ReportLinkFailureDetected is ReportLinkFailure with an explicit measured
// detection latency.
func (c *Controller) ReportLinkFailureDetected(a, b EndPoint, at, detection time.Duration) (*Recovery, error) {
	if c.halted {
		return nil, ErrHalted
	}
	if key, ok := c.circuitSwitchOf(a, b); ok {
		if c.chargeCSReport(key, at) {
			c.halted = true
			c.mHalts.Inc()
			if c.bus.Enabled() {
				ev := obs.NewEvent(obs.KindCircuitSwitchHalted, at)
				ev.Switch = int32(a.Switch)
				ev.Peer = int32(b.Switch)
				ev.Detail = fmt.Sprintf("CS%d,%d,%d exceeded %d reports in %v",
					key.layer, key.pod, key.idx, c.cfg.CSReportThreshold, c.cfg.CSReportWindow)
				c.bus.Emit(ev)
			}
			return nil, fmt.Errorf("%w (circuit switch CS%d,%d,%d exceeded %d reports in %v)",
				ErrHalted, key.layer, key.pod, key.idx, c.cfg.CSReportThreshold, c.cfg.CSReportWindow)
		}
	}
	span := c.bus.BeginSpan()
	defer c.bus.EndSpan()
	if c.bus.Enabled() {
		ev := obs.NewEvent(obs.KindFailureDeclared, at)
		ev.Span = span
		ev.Switch = int32(a.Switch)
		ev.Port = int32(a.Port)
		ev.Peer = int32(b.Switch)
		ev.PeerPort = int32(b.Port)
		ev.Detection = detection
		ev.Detail = "link"
		c.bus.Emit(ev)
	}
	rec := Recovery{
		At:        at,
		Kind:      "link",
		Detection: detection, // endpoint-to-endpoint probing
		Comm:      2 * c.cfg.CommDelay,
	}
	var firstErr error
	prof.Do(prof.PhaseReconfig, func() {
		for _, ep := range []EndPoint{a, b} {
			backup, reconfig, err := c.net.Replace(ep.Switch)
			if err != nil {
				if errors.Is(err, sbnet.ErrNoBackup) {
					c.mBackupPoolExhausted.Inc()
				}
				if firstErr == nil {
					firstErr = fmt.Errorf("controller: link recovery for %s: %w", c.net.Name(ep.Switch), err)
				}
				continue
			}
			rec.Failed = append(rec.Failed, ep.Switch)
			rec.Backup = append(rec.Backup, backup)
			c.noteBackupUse(c.net.Switch(backup).Group)
			if reconfig > rec.Reconfig {
				rec.Reconfig = reconfig
			}
		}
	})
	if len(rec.Failed) > 0 {
		c.recoveries = append(c.recoveries, rec)
		c.pendingDiagnosis = append(c.pendingDiagnosis, LinkSuspects{A: a, B: b})
		c.mLinkRecoveries.Inc()
		c.gPendingDiagnosis.Set(int64(len(c.pendingDiagnosis)))
		c.emitRecoveryDone(span, at, &c.recoveries[len(c.recoveries)-1])
		return &c.recoveries[len(c.recoveries)-1], firstErr
	}
	return nil, firstErr
}

// circuitSwitchOf locates the circuit switch a link between the two
// endpoints traverses. Edge-agg links traverse CS_{2,pod,j} where j is the
// edge's up-port; agg-core links traverse CS_{3,pod,t} where t is the agg's
// up-port. Host-edge endpoints map to CS_{1,pod,j}.
func (c *Controller) circuitSwitchOf(a, b EndPoint) (csKey, bool) {
	sa, sb := c.net.Switch(a.Switch), c.net.Switch(b.Switch)
	half := c.net.K() / 2
	up := func(ep EndPoint) (int, bool) {
		p := ep.Port - half
		if p < 0 || p >= half {
			return 0, false
		}
		return p, true
	}
	switch {
	case sa.Kind == topo.KindEdge && sb.Kind == topo.KindAgg:
		if j, ok := up(a); ok {
			return csKey{2, c.net.Group(sa.Group).Pod, j}, true
		}
	case sa.Kind == topo.KindAgg && sb.Kind == topo.KindEdge:
		if j, ok := up(b); ok {
			return csKey{2, c.net.Group(sb.Group).Pod, j}, true
		}
	case sa.Kind == topo.KindAgg && sb.Kind == topo.KindCore:
		if t, ok := up(a); ok {
			return csKey{3, c.net.Group(sa.Group).Pod, t}, true
		}
	case sa.Kind == topo.KindCore && sb.Kind == topo.KindAgg:
		if t, ok := up(b); ok {
			return csKey{3, c.net.Group(sb.Group).Pod, t}, true
		}
	}
	return csKey{}, false
}

// chargeCSReport records a report against a circuit switch and reports
// whether the threshold is now exceeded.
func (c *Controller) chargeCSReport(key csKey, at time.Duration) bool {
	reports := c.csReports[key]
	kept := reports[:0]
	for _, t := range reports {
		if at-t <= c.cfg.CSReportWindow {
			kept = append(kept, t)
		}
	}
	kept = append(kept, at)
	c.csReports[key] = kept
	return len(kept) > c.cfg.CSReportThreshold
}

// ResumeAfterIntervention clears the halt after a human has repaired or
// replaced the suspect circuit switch and the controller has re-pushed the
// authoritative configuration (Network.SyncCircuit).
func (c *Controller) ResumeAfterIntervention() {
	c.halted = false
	c.csReports = make(map[csKey][]time.Duration)
}

// HandleHostLinkFailure implements Section 4.2's host-link policy: offline
// diagnosis cannot run against a host (all hosts are in use), so the switch
// is assumed at fault and replaced. If the problem persists afterwards — the
// oracle being whether the host-side interface was actually the broken one —
// the switch is exonerated (released back to the backup pool, marked
// healthy) and the host is flagged for troubleshooting. The returned bool
// reports whether the host was flagged.
func (c *Controller) HandleHostLinkFailure(edge sbnet.SwitchID, port int, host int, hostAtFault bool, at time.Duration) (bool, error) {
	if c.halted {
		return false, ErrHalted
	}
	span := c.bus.BeginSpan()
	defer c.bus.EndSpan()
	if c.bus.Enabled() {
		ev := obs.NewEvent(obs.KindFailureDeclared, at)
		ev.Span = span
		ev.Switch = int32(edge)
		ev.Port = int32(port)
		ev.Detection = c.cfg.ProbeInterval
		ev.Detail = "link"
		c.bus.Emit(ev)
	}
	backup, reconfig, err := c.net.Replace(edge)
	if err != nil {
		if errors.Is(err, sbnet.ErrNoBackup) {
			c.mBackupPoolExhausted.Inc()
		}
		return false, err
	}
	rec := Recovery{
		At: at, Kind: "link",
		Failed:    []sbnet.SwitchID{edge},
		Backup:    []sbnet.SwitchID{backup},
		Detection: c.cfg.ProbeInterval,
		Comm:      2 * c.cfg.CommDelay,
		Reconfig:  reconfig,
	}
	c.recoveries = append(c.recoveries, rec)
	c.mLinkRecoveries.Inc()
	c.noteBackupUse(c.net.Switch(backup).Group)
	c.emitRecoveryDone(span, at, &c.recoveries[len(c.recoveries)-1])
	if hostAtFault {
		// Replacement did not fix the link: mark the switch healthy
		// and trouble-shoot the host.
		if err := c.net.Release(edge); err != nil {
			return false, err
		}
		c.noteBackupUse(c.net.Switch(edge).Group)
		c.flaggedHosts[host] = true
		return true, nil
	}
	return false, nil
}

// SDNRuleUpdateLatency is the forwarding-rule modification time the paper
// cites for SDN switches (~1 ms, He et al., SOSR'15); rerouting-based
// recovery pays at least one of these.
const SDNRuleUpdateLatency = time.Millisecond

// RerouteRecoveryLatency returns the recovery latency of an F10/Aspen-class
// local-rerouting scheme under this controller's probing interval: detection
// plus one forwarding-rule update. Used by the Section 5.3 comparison.
func (c *Controller) RerouteRecoveryLatency() time.Duration {
	return c.cfg.ProbeInterval + SDNRuleUpdateLatency
}
