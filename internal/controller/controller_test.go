package controller

import (
	"errors"
	"testing"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/sbnet"
)

func newCtl(t *testing.T, k, n int) (*Controller, *sbnet.Network) {
	t.Helper()
	net, err := sbnet.New(sbnet.Config{K: k, N: n, Tech: circuit.Crosspoint})
	if err != nil {
		t.Fatal(err)
	}
	return New(net, Config{}), net
}

func TestHeartbeatDetection(t *testing.T) {
	c, net := newCtl(t, 6, 1)
	eg := net.EdgeGroup(0)
	victim := eg.Members[0]
	other := eg.Members[1]

	// Both switches heartbeat at t=0; the victim then goes silent.
	c.Heartbeat(victim, 0)
	c.Heartbeat(other, 0)
	net.InjectNodeFailure(victim)

	// Before the miss threshold (3 x 1 ms): nothing detected.
	if got := c.DetectFailures(2 * time.Millisecond); len(got) != 0 {
		t.Errorf("early detection: %v", got)
	}
	c.Heartbeat(other, 2*time.Millisecond)

	got := c.DetectFailures(3 * time.Millisecond)
	if len(got) != 1 || got[0] != victim {
		t.Fatalf("DetectFailures = %v, want [%v]", got, victim)
	}
}

func TestRecoverNodeLatencyBreakdown(t *testing.T) {
	c, net := newCtl(t, 6, 1)
	victim := net.AggGroup(1).Members[0]
	c.Heartbeat(victim, 0)
	net.InjectNodeFailure(victim)

	at := 3 * time.Millisecond
	rec, err := c.RecoverNode(victim, at)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Detection != 3*time.Millisecond {
		t.Errorf("detection = %v, want 3ms (time since last heartbeat)", rec.Detection)
	}
	if rec.Comm != 200*time.Microsecond {
		t.Errorf("comm = %v, want 2 x 100µs", rec.Comm)
	}
	if rec.Reconfig != 70*time.Nanosecond {
		t.Errorf("reconfig = %v, want one crosspoint delay", rec.Reconfig)
	}
	if rec.Total() != rec.Detection+rec.Comm+rec.Reconfig {
		t.Error("total is not the sum of parts")
	}
	// Section 5.3: ShareBackup's recovery is as fast as rerouting — here
	// strictly faster, because a circuit reset (70ns) beats a ~1ms SDN
	// rule update.
	reroute := c.RerouteRecoveryLatency()
	sb := rec.Comm + rec.Reconfig + c.Config().ProbeInterval
	if sb >= reroute+time.Millisecond {
		t.Errorf("ShareBackup recovery %v not comparable to rerouting %v", sb, reroute)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if net.Switch(victim).Role != sbnet.RoleOffline {
		t.Error("victim not offline after recovery")
	}
}

func TestRecoverNodeNoBackup(t *testing.T) {
	c, net := newCtl(t, 4, 0)
	victim := net.EdgeGroup(0).Members[0]
	if _, err := c.RecoverNode(victim, 0); !errors.Is(err, sbnet.ErrNoBackup) {
		t.Errorf("err = %v, want ErrNoBackup", err)
	}
}

func TestLinkFailureReplacesBothEndsAndQueuesDiagnosis(t *testing.T) {
	c, net := newCtl(t, 6, 1)
	half := 3
	edge := net.EdgeGroup(2).Slots()[0]
	agg := net.AggGroup(2).Slots()[1]
	// Edge slot 0's up-port j reaches agg slot (0+j)%3; agg slot 1 is
	// reached via up-port 1. Ground truth: the edge-side interface broke.
	if err := net.InjectPortFailure(edge, half+1); err != nil {
		t.Fatal(err)
	}
	rec, err := c.ReportLinkFailure(
		EndPoint{Switch: edge, Port: half + 1},
		EndPoint{Switch: agg, Port: 0},
		time.Millisecond,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Failed) != 2 || len(rec.Backup) != 2 {
		t.Fatalf("link recovery replaced %d switches, want 2 (both ends)", len(rec.Failed))
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(c.PendingDiagnosis()) != 1 {
		t.Fatal("link failure not queued for diagnosis")
	}

	// Offline diagnosis: the agg side is healthy and must be exonerated;
	// the edge side is faulty and stays offline.
	results, err := c.RunDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("diagnosis results = %d, want 2", len(results))
	}
	byID := map[sbnet.SwitchID]DiagnosisResult{}
	for _, r := range results {
		byID[r.Suspect.Switch] = r
	}
	if byID[edge].Healthy || byID[edge].Exonerated {
		t.Error("faulty edge interface exonerated")
	}
	if !byID[agg].Healthy || !byID[agg].Exonerated {
		t.Error("healthy agg not exonerated")
	}
	if net.Switch(agg).Role != sbnet.RoleBackup {
		t.Error("exonerated switch not returned to backup pool")
	}
	if net.Switch(edge).Role != sbnet.RoleOffline {
		t.Error("faulty switch not kept offline")
	}
	if len(c.PendingDiagnosis()) != 0 {
		t.Error("diagnosis queue not drained")
	}
	if c.DiagnosisReconfigs() == 0 {
		t.Error("diagnosis performed no circuit reconfigurations")
	}
	// The repaired switch later rejoins as a backup — and is NOT swapped
	// back into its old slot.
	if err := c.RepairSwitch(edge); err != nil {
		t.Fatal(err)
	}
	if net.Switch(edge).Role != sbnet.RoleBackup {
		t.Error("repaired switch not a backup")
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDiagnosisNodeFailureBothSuspectsFaulty(t *testing.T) {
	c, net := newCtl(t, 6, 1)
	edge := net.EdgeGroup(0).Slots()[1]
	agg := net.AggGroup(0).Slots()[1]
	// The whole edge node is down: every probe configuration fails for
	// it; the agg is exonerated.
	net.InjectNodeFailure(edge)
	if _, err := c.ReportLinkFailure(
		EndPoint{Switch: edge, Port: 3},
		EndPoint{Switch: agg, Port: 1},
		0,
	); err != nil {
		t.Fatal(err)
	}
	results, err := c.RunDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Suspect.Switch == edge && r.Healthy {
			t.Error("dead node exonerated")
		}
		if r.Suspect.Switch == agg && !r.Healthy {
			t.Error("healthy agg condemned")
		}
		if len(r.Partners) == 0 || len(r.Partners) > 3 {
			t.Errorf("diagnosis used %d partner interfaces, want 1..3", len(r.Partners))
		}
	}
}

func TestDiagnosisSkipsNonOfflineSuspects(t *testing.T) {
	c, net := newCtl(t, 4, 1)
	active := net.EdgeGroup(0).Slots()[0]
	c.pendingDiagnosis = append(c.pendingDiagnosis, LinkSuspects{
		A: EndPoint{Switch: active, Port: 0},
		B: EndPoint{Switch: active, Port: 1},
	})
	results, err := c.RunDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Skipped {
			t.Errorf("active suspect %v probed, want Skipped", r.Suspect)
		}
		if r.Exonerated || r.Healthy {
			t.Error("skipped suspect must not be judged")
		}
	}
}

func TestCircuitSwitchFailureThreshold(t *testing.T) {
	c, net := newCtl(t, 8, 4)
	pod := 0
	// All reports implicate CS_{2,0,0}: links between edge slot s
	// (up-port 0) and agg slot s.
	half := 4
	for i := 0; i < 3; i++ {
		edge := net.EdgeGroup(pod).Slots()[i]
		agg := net.AggGroup(pod).Slots()[i]
		if _, err := c.ReportLinkFailure(
			EndPoint{Switch: edge, Port: half + 0},
			EndPoint{Switch: agg, Port: i},
			time.Duration(i)*time.Millisecond,
		); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
	}
	// The 4th report within the window crosses the threshold (3): halt.
	edge := net.EdgeGroup(pod).Slots()[3]
	agg := net.AggGroup(pod).Slots()[3]
	_, err := c.ReportLinkFailure(
		EndPoint{Switch: edge, Port: half + 0},
		EndPoint{Switch: agg, Port: 3},
		3*time.Millisecond,
	)
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("4th report err = %v, want ErrHalted", err)
	}
	if !c.Halted() {
		t.Fatal("controller not halted")
	}
	// Everything is refused while halted.
	if _, err := c.RecoverNode(net.CoreGroup(0).Slots()[0], 0); !errors.Is(err, ErrHalted) {
		t.Error("node recovery proceeded while halted")
	}
	// Human intervention: reboot the circuit switch, re-push config,
	// resume.
	cs := net.CS2(pod, 0)
	cs.Fail()
	cs.Repair()
	if _, err := net.SyncCircuit(2, pod, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("after SyncCircuit: %v", err)
	}
	c.ResumeAfterIntervention()
	if c.Halted() {
		t.Error("still halted after intervention")
	}
	if _, err := c.ReportLinkFailure(
		EndPoint{Switch: edge, Port: half + 0},
		EndPoint{Switch: agg, Port: 3},
		4*time.Millisecond,
	); err != nil {
		t.Errorf("recovery after intervention failed: %v", err)
	}
}

func TestCSReportWindowSlides(t *testing.T) {
	c, net := newCtl(t, 8, 4)
	half := 4
	// Three reports spread over more than the window must not halt.
	for i := 0; i < 4; i++ {
		edge := net.EdgeGroup(0).Slots()[i]
		agg := net.AggGroup(0).Slots()[i]
		if _, err := c.ReportLinkFailure(
			EndPoint{Switch: edge, Port: half + 0},
			EndPoint{Switch: agg, Port: i},
			time.Duration(i)*2*time.Second, // window is 1s
		); err != nil {
			t.Fatalf("spread report %d: %v", i, err)
		}
	}
	if c.Halted() {
		t.Error("halted on reports outside the window")
	}
}

func TestHostLinkFailurePolicy(t *testing.T) {
	c, net := newCtl(t, 6, 2)
	edge := net.EdgeGroup(1).Slots()[0]

	// Case 1: the switch really was at fault; replacement fixes it.
	flagged, err := c.HandleHostLinkFailure(edge, 0, 100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if flagged {
		t.Error("host flagged although the switch was at fault")
	}
	if net.Switch(edge).Role != sbnet.RoleOffline {
		t.Error("faulty switch should stay offline")
	}

	// Case 2: the host was at fault; after replacing the (new) switch the
	// problem persists, so the switch is exonerated and the host flagged.
	edge2 := net.EdgeGroup(1).Slots()[1]
	flagged, err = c.HandleHostLinkFailure(edge2, 1, 101, true, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !flagged {
		t.Error("host not flagged")
	}
	if net.Switch(edge2).Role != sbnet.RoleBackup {
		t.Errorf("exonerated switch role = %v, want backup", net.Switch(edge2).Role)
	}
	hosts := c.FlaggedHosts()
	if len(hosts) != 1 || hosts[0] != 101 {
		t.Errorf("flagged hosts = %v, want [101]", hosts)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryLog(t *testing.T) {
	c, net := newCtl(t, 6, 1)
	victim := net.CoreGroup(0).Slots()[0]
	net.InjectNodeFailure(victim)
	if _, err := c.RecoverNode(victim, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	recs := c.Recoveries()
	if len(recs) != 1 || recs[0].Kind != "node" {
		t.Fatalf("recovery log = %+v", recs)
	}
}

func TestClusterElection(t *testing.T) {
	cl, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Primary() != 0 {
		t.Errorf("initial primary = %d, want 0", cl.Primary())
	}
	if err := cl.Fail(0); err != nil {
		t.Fatal(err)
	}
	if cl.Primary() != 1 {
		t.Errorf("primary after failure = %d, want 1", cl.Primary())
	}
	// Non-primary failure does not trigger an election.
	terms := cl.Terms()
	if err := cl.Fail(2); err != nil {
		t.Fatal(err)
	}
	if cl.Terms() != terms || cl.Primary() != 1 {
		t.Error("non-primary failure changed leadership")
	}
	// Recovery does not fail back.
	if err := cl.Recover(0); err != nil {
		t.Fatal(err)
	}
	if cl.Primary() != 1 {
		t.Error("recovered replica stole leadership")
	}
	if cl.AliveCount() != 2 {
		t.Errorf("alive = %d, want 2", cl.AliveCount())
	}
	// Total loss and recovery.
	if err := cl.Fail(1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Fail(0); err != nil {
		t.Fatal(err)
	}
	if cl.Primary() != -1 {
		t.Errorf("primary with no replicas = %d, want -1", cl.Primary())
	}
	if err := cl.Recover(2); err != nil {
		t.Fatal(err)
	}
	if cl.Primary() != 2 {
		t.Errorf("primary after total loss recovery = %d, want 2", cl.Primary())
	}
	if err := cl.Fail(99); err == nil {
		t.Error("unknown replica accepted")
	}
	if _, err := NewCluster(0); err == nil {
		t.Error("empty cluster accepted")
	}
}
