// Package failure provides failure injection and the availability arithmetic
// the paper draws on. The empirical grounding is Gill et al. (SIGCOMM'11):
// failures in data centers are rare (most devices show >99.99% availability),
// independent, and short (most last under five minutes) — the regime in
// which a small shared backup pool covers a large network (Section 5.1).
package failure

import (
	"fmt"
	"math"
	"math/rand"

	"sharebackup/internal/topo"
)

// SwitchAvailability is the paper's working availability figure: most
// devices have over 99.99% availability, i.e. a 0.01% failure rate.
const SwitchAvailability = 0.9999

// SwitchFailureRate is the corresponding instantaneous unavailability.
const SwitchFailureRate = 1 - SwitchAvailability

// Unavailability converts a mean-time-between-failures / mean-time-to-repair
// pair into steady-state unavailability MTTR / (MTBF + MTTR).
func Unavailability(mtbf, mttr float64) float64 {
	if mtbf <= 0 || mttr < 0 {
		return math.NaN()
	}
	return mttr / (mtbf + mttr)
}

// BinomialTail returns P[X > n] for X ~ Binomial(size, p): the probability
// that more than n of a failure group's `size` switches are down at once,
// i.e. that the group's n backups are insufficient.
func BinomialTail(size, n int, p float64) float64 {
	if size < 0 || p < 0 || p > 1 {
		return math.NaN()
	}
	if n >= size {
		return 0
	}
	// Sum P[X = i] for i in [0, n], return the complement.
	cdf := 0.0
	for i := 0; i <= n && i <= size; i++ {
		cdf += math.Exp(logChoose(size, i) + float64(i)*math.Log(p) + float64(size-i)*math.Log1p(-p))
	}
	if cdf > 1 {
		cdf = 1
	}
	return 1 - cdf
}

func logChoose(n, k int) float64 {
	if k == 0 || k == n {
		return 0
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// ExpectedConcurrent returns the expected number of simultaneously failed
// switches among `count` devices with unavailability p.
func ExpectedConcurrent(count int, p float64) float64 { return float64(count) * p }

// Injector samples failures over a fat-tree.
type Injector struct {
	FT  *topo.FatTree
	Rng *rand.Rand
}

// NewInjector builds an injector with a deterministic seed.
func NewInjector(ft *topo.FatTree, seed int64) *Injector {
	return &Injector{FT: ft, Rng: rand.New(rand.NewSource(seed))}
}

// ReroutableSwitches returns the switches whose failure the rerouting
// baselines can in principle survive: aggregation and core switches. Edge
// switches are excluded because hosts in a plain fat-tree are single-homed —
// an edge failure disconnects its rack no matter how traffic is rerouted, so
// the paper's rerouting study (and ours) injects failures into the fabric
// above the edge.
func (in *Injector) ReroutableSwitches() []topo.NodeID {
	var out []topo.NodeID
	for _, n := range in.FT.Nodes {
		if n.Kind == topo.KindAgg || n.Kind == topo.KindCore {
			out = append(out, n.ID)
		}
	}
	return out
}

// AllSwitches returns every packet switch.
func (in *Injector) AllSwitches() []topo.NodeID { return in.FT.SwitchIDs() }

// FabricLinks returns all switch-to-switch links (failure candidates for
// link-failure experiments).
func (in *Injector) FabricLinks() []topo.LinkID { return in.FT.SwitchLinkIDs() }

// SampleNodes fails a deterministic fraction of the candidates:
// max(1, round(rate*len)) distinct nodes chosen uniformly. rate == 0 returns
// nil.
func (in *Injector) SampleNodes(candidates []topo.NodeID, rate float64) ([]topo.NodeID, error) {
	count, err := sampleCount(len(candidates), rate)
	if err != nil || count == 0 {
		return nil, err
	}
	perm := in.Rng.Perm(len(candidates))
	out := make([]topo.NodeID, count)
	for i := 0; i < count; i++ {
		out[i] = candidates[perm[i]]
	}
	return out, nil
}

// SampleLinks fails a deterministic fraction of the candidate links.
func (in *Injector) SampleLinks(candidates []topo.LinkID, rate float64) ([]topo.LinkID, error) {
	count, err := sampleCount(len(candidates), rate)
	if err != nil || count == 0 {
		return nil, err
	}
	perm := in.Rng.Perm(len(candidates))
	out := make([]topo.LinkID, count)
	for i := 0; i < count; i++ {
		out[i] = candidates[perm[i]]
	}
	return out, nil
}

func sampleCount(n int, rate float64) (int, error) {
	if rate < 0 || rate > 1 || math.IsNaN(rate) {
		return 0, fmt.Errorf("failure: rate %v outside [0, 1]", rate)
	}
	if rate == 0 || n == 0 {
		return 0, nil
	}
	count := int(math.Round(rate * float64(n)))
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	return count, nil
}

// Blocked converts failed elements into a path filter.
func Blocked(nodes []topo.NodeID, links []topo.LinkID) *topo.Blocked {
	b := topo.NewBlocked()
	BlockedInto(b, nodes, links)
	return b
}

// BlockedInto resets b and fills it with the failed elements, so trial loops
// can reuse one allocation instead of building a fresh set per scenario.
func BlockedInto(b *topo.Blocked, nodes []topo.NodeID, links []topo.LinkID) {
	b.Reset()
	for _, n := range nodes {
		b.BlockNode(n)
	}
	for _, l := range links {
		b.BlockLink(l)
	}
}

// Scenario is one timed failure for recovery experiments: the element fails
// at At and is repaired at Repair. The paper's study uses one failure per
// 5-minute window, present for the whole window.
type Scenario struct {
	Node   topo.NodeID // or topo.None
	Link   topo.LinkID // or topo.NoLink
	At     float64
	Repair float64
}

// Validate checks the scenario names exactly one element and has a sane
// window.
func (s Scenario) Validate() error {
	hasNode := s.Node != topo.None
	hasLink := s.Link != topo.NoLink
	if hasNode == hasLink {
		return fmt.Errorf("failure: scenario must name exactly one of node or link")
	}
	if s.Repair < s.At {
		return fmt.Errorf("failure: scenario repairs (%v) before it fails (%v)", s.Repair, s.At)
	}
	return nil
}

// SingleNodeScenarios builds one whole-window scenario per candidate node.
func SingleNodeScenarios(candidates []topo.NodeID, window float64) []Scenario {
	out := make([]Scenario, len(candidates))
	for i, n := range candidates {
		out[i] = Scenario{Node: n, Link: topo.NoLink, At: 0, Repair: window}
	}
	return out
}

// SingleLinkScenarios builds one whole-window scenario per candidate link.
func SingleLinkScenarios(candidates []topo.LinkID, window float64) []Scenario {
	out := make([]Scenario, len(candidates))
	for i, l := range candidates {
		out[i] = Scenario{Node: topo.None, Link: l, At: 0, Repair: window}
	}
	return out
}

// Blocked converts the scenario into a path filter (ignoring timing).
func (s Scenario) Blocked() *topo.Blocked {
	b := topo.NewBlocked()
	if s.Node != topo.None {
		b.BlockNode(s.Node)
	}
	if s.Link != topo.NoLink {
		b.BlockLink(s.Link)
	}
	return b
}
