package failure

import (
	"math"
	"testing"
)

func TestSimulateGroupAvailabilityCalibration(t *testing.T) {
	// At the paper's parameters the measured per-switch unavailability
	// must land near the configured 1e-4.
	res, err := SimulateGroupAvailability(AvailabilityConfig{
		GroupSize: 24, Backups: 1, Horizon: 2e6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures simulated")
	}
	if res.Unavailability < 0.5e-4 || res.Unavailability > 2e-4 {
		t.Errorf("measured unavailability = %v, want ~1e-4", res.Unavailability)
	}
	// Section 5.1's claim, validated dynamically: with n=1 backups a
	// 24-switch group essentially never overflows. At 2e6 simulated
	// hours (~228 years), zero or a handful of overflow events.
	if res.OverflowFraction > 1e-5 {
		t.Errorf("overflow fraction = %v, want negligible", res.OverflowFraction)
	}
	// The analytic model (binomial at measured unavailability) and the
	// simulation must agree on the order of magnitude of overflow time
	// (both essentially zero here).
	if res.AnalyticOverflow > 1e-5 {
		t.Errorf("analytic overflow = %v", res.AnalyticOverflow)
	}
}

func TestSimulateGroupAvailabilityOverflowRegime(t *testing.T) {
	// Crank unavailability up (MTTR comparable to MTBF) so overflows are
	// common, and check the simulation tracks the analytic binomial tail.
	res, err := SimulateGroupAvailability(AvailabilityConfig{
		GroupSize: 8, Backups: 1, MTBF: 10, MTTR: 5, Horizon: 2e5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverflowEvents == 0 {
		t.Fatal("high-failure regime produced no overflows")
	}
	// p = 5/15 = 1/3; P[X > 1] for Binomial(8, 1/3) ~ 0.805.
	if math.Abs(res.Unavailability-1.0/3) > 0.02 {
		t.Errorf("unavailability = %v, want ~1/3", res.Unavailability)
	}
	if math.Abs(res.OverflowFraction-res.AnalyticOverflow) > 0.05 {
		t.Errorf("simulated overflow %v vs analytic %v; model and dynamics disagree",
			res.OverflowFraction, res.AnalyticOverflow)
	}
}

func TestSimulateGroupAvailabilityBackupsHelp(t *testing.T) {
	base := AvailabilityConfig{GroupSize: 8, MTBF: 10, MTTR: 5, Horizon: 1e5, Seed: 7}
	cfg1, cfg4 := base, base
	cfg1.Backups = 1
	cfg4.Backups = 4
	r1, err := SimulateGroupAvailability(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := SimulateGroupAvailability(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.OverflowFraction >= r1.OverflowFraction {
		t.Errorf("n=4 overflow %v not below n=1 overflow %v", r4.OverflowFraction, r1.OverflowFraction)
	}
}

func TestSimulateGroupAvailabilityValidation(t *testing.T) {
	bad := []AvailabilityConfig{
		{GroupSize: 0},
		{GroupSize: 4, Backups: -1},
		{GroupSize: 4, MTBF: -1},
		{GroupSize: 4, Horizon: -5},
	}
	for _, cfg := range bad {
		if _, err := SimulateGroupAvailability(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestSimulateGroupAvailabilityShardedDeterministic(t *testing.T) {
	base := AvailabilityConfig{
		GroupSize: 8, Backups: 1, MTBF: 10, MTTR: 5,
		Horizon: 1e5, Seed: 7, Shards: 16,
	}
	var want *AvailabilityResult
	for _, workers := range []int{1, 4, 0} {
		cfg := base
		cfg.Workers = workers
		got, err := SimulateGroupAvailability(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
		} else if *got != *want {
			t.Fatalf("workers=%d: result %+v != workers=1 result %+v", workers, got, want)
		}
	}
	if want.Failures == 0 {
		t.Fatal("sharded simulation recorded no failures")
	}

	// The sharded estimate must agree statistically with the sequential one.
	seq, err := SimulateGroupAvailability(AvailabilityConfig{
		GroupSize: 8, Backups: 1, MTBF: 10, MTTR: 5, Horizon: 1e5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := want.Unavailability / seq.Unavailability; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("sharded unavailability %v far from sequential %v", want.Unavailability, seq.Unavailability)
	}
}
