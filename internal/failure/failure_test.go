package failure

import (
	"math"
	"testing"

	"sharebackup/internal/topo"
)

func newFT(t *testing.T, k int) *topo.FatTree {
	t.Helper()
	ft, err := topo.NewFatTree(topo.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestUnavailability(t *testing.T) {
	// 5-minute repairs every ~35 days give about four nines.
	mtbf := 35 * 24 * 3600.0
	mttr := 300.0
	p := Unavailability(mtbf, mttr)
	if p < 0.00009 || p > 0.00011 {
		t.Errorf("unavailability = %v, want ~1e-4", p)
	}
	if !math.IsNaN(Unavailability(0, 1)) || !math.IsNaN(Unavailability(-1, 1)) {
		t.Error("invalid MTBF accepted")
	}
}

func TestBinomialTail(t *testing.T) {
	// P[X > 0] = 1 - (1-p)^size.
	size, p := 24, SwitchFailureRate
	want := 1 - math.Pow(1-p, float64(size))
	if got := BinomialTail(size, 0, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("BinomialTail(size, 0) = %v, want %v", got, want)
	}
	// Monotone in n.
	prev := 1.0
	for n := 0; n <= size; n++ {
		cur := BinomialTail(size, n, p)
		if cur > prev {
			t.Fatalf("tail not monotone at n=%d: %v > %v", n, cur, prev)
		}
		prev = cur
	}
	if got := BinomialTail(size, size, p); got != 0 {
		t.Errorf("P[X > size] = %v, want 0", got)
	}
	// Section 5.1's claim: with k=48 and n=1, a failure group of 24
	// switches at a 0.01% failure rate essentially never exceeds one
	// concurrent failure.
	if got := BinomialTail(24, 1, SwitchFailureRate); got > 1e-5 {
		t.Errorf("P[group overflow] = %v; paper expects negligible", got)
	}
	if !math.IsNaN(BinomialTail(-1, 0, p)) || !math.IsNaN(BinomialTail(3, 0, 2)) {
		t.Error("invalid arguments accepted")
	}
}

func TestExpectedConcurrent(t *testing.T) {
	// A k=48 fat-tree has 2880 switches; at 1e-4 unavailability that is
	// ~0.29 concurrent failures — far below the 120 backups n=1 provides.
	if got := ExpectedConcurrent(2880, SwitchFailureRate); math.Abs(got-0.288) > 1e-9 {
		t.Errorf("expected concurrent = %v", got)
	}
}

func TestReroutableSwitchesExcludesEdge(t *testing.T) {
	ft := newFT(t, 4)
	in := NewInjector(ft, 1)
	for _, id := range in.ReroutableSwitches() {
		if k := ft.Node(id).Kind; k != topo.KindAgg && k != topo.KindCore {
			t.Fatalf("candidate %v has kind %v", id, k)
		}
	}
	if got, want := len(in.ReroutableSwitches()), 8+4; got != want {
		t.Errorf("reroutable switches = %d, want %d", got, want)
	}
	if got, want := len(in.AllSwitches()), 20; got != want {
		t.Errorf("all switches = %d, want %d", got, want)
	}
	if got, want := len(in.FabricLinks()), 32; got != want {
		t.Errorf("fabric links = %d, want %d (k^3/2)", got, want)
	}
}

func TestSampleNodes(t *testing.T) {
	ft := newFT(t, 8)
	in := NewInjector(ft, 42)
	cands := in.ReroutableSwitches()

	if got, err := in.SampleNodes(cands, 0); err != nil || got != nil {
		t.Errorf("rate 0: %v, %v", got, err)
	}
	one, err := in.SampleNodes(cands, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Errorf("tiny positive rate should fail exactly one node, got %d", len(one))
	}
	half, err := in.SampleNodes(cands, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(half) != len(cands)/2 {
		t.Errorf("rate 0.5 failed %d of %d", len(half), len(cands))
	}
	seen := make(map[topo.NodeID]bool)
	for _, n := range half {
		if seen[n] {
			t.Fatal("duplicate sample")
		}
		seen[n] = true
	}
	all, err := in.SampleNodes(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(cands) {
		t.Errorf("rate 1 failed %d of %d", len(all), len(cands))
	}
	if _, err := in.SampleNodes(cands, 1.5); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := in.SampleNodes(cands, -0.1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestSampleLinks(t *testing.T) {
	ft := newFT(t, 4)
	in := NewInjector(ft, 7)
	links, err := in.SampleLinks(in.FabricLinks(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 8 {
		t.Errorf("sampled %d links, want 8", len(links))
	}
	for _, l := range links {
		link := ft.Link(l)
		if !ft.Node(link.A).Kind.IsSwitch() || !ft.Node(link.B).Kind.IsSwitch() {
			t.Error("sampled a host link")
		}
	}
}

func TestBlockedConstruction(t *testing.T) {
	ft := newFT(t, 4)
	b := Blocked([]topo.NodeID{ft.Core(0)}, []topo.LinkID{0})
	if !b.NodeBlocked(ft.Core(0)) || !b.LinkBlocked(0) {
		t.Error("Blocked missing entries")
	}
}

func TestScenarios(t *testing.T) {
	ft := newFT(t, 4)
	nodes := []topo.NodeID{ft.Core(0), ft.Agg(0, 1)}
	ss := SingleNodeScenarios(nodes, 300)
	if len(ss) != 2 {
		t.Fatalf("scenarios = %d", len(ss))
	}
	for _, s := range ss {
		if err := s.Validate(); err != nil {
			t.Errorf("valid scenario rejected: %v", err)
		}
		if s.Repair != 300 {
			t.Error("window not applied")
		}
		if !s.Blocked().NodeBlocked(s.Node) {
			t.Error("Blocked missing the failed node")
		}
	}
	ls := SingleLinkScenarios([]topo.LinkID{3}, 300)
	if len(ls) != 1 || !ls[0].Blocked().LinkBlocked(3) {
		t.Error("link scenario wrong")
	}
	bad := Scenario{Node: topo.None, Link: topo.NoLink}
	if err := bad.Validate(); err == nil {
		t.Error("empty scenario accepted")
	}
	both := Scenario{Node: 1, Link: 1}
	if err := both.Validate(); err == nil {
		t.Error("double scenario accepted")
	}
	backwards := Scenario{Node: 1, Link: topo.NoLink, At: 10, Repair: 5}
	if err := backwards.Validate(); err == nil {
		t.Error("repair before failure accepted")
	}
}
