package failure

import (
	"fmt"
	"math"
	"math/rand"
)

// Monte-Carlo availability simulation for Section 5.1: switches fail as
// independent Poisson processes (rate 1/MTBF) and repair after exponential
// MTTR; the question is how often a failure group has more than n switches
// down at once — i.e. how often ShareBackup's shared pool would be
// insufficient. The analytic answer is BinomialTail at the steady-state
// unavailability; the simulation validates it including the time dynamics.

// AvailabilityConfig parameterizes the simulation.
type AvailabilityConfig struct {
	// GroupSize is the number of switches sharing the pool (k/2).
	GroupSize int
	// Backups is the pool size n.
	Backups int
	// MTBF and MTTR are in hours. Defaults approximate the paper's
	// figures: four-nines availability with ~5-minute repairs ->
	// MTTR 1/12 h, MTBF ~833 h.
	MTBF, MTTR float64
	// Horizon is the simulated time in hours. Default 1e6.
	Horizon float64
	// Seed drives the simulation.
	Seed int64
}

func (c *AvailabilityConfig) setDefaults() error {
	if c.GroupSize <= 0 {
		return fmt.Errorf("failure: GroupSize=%d must be positive", c.GroupSize)
	}
	if c.Backups < 0 {
		return fmt.Errorf("failure: Backups=%d must be non-negative", c.Backups)
	}
	if c.MTTR == 0 {
		c.MTTR = 1.0 / 12 // 5 minutes
	}
	if c.MTBF == 0 {
		c.MTBF = c.MTTR * (1 - SwitchFailureRate) / SwitchFailureRate
	}
	if c.MTBF <= 0 || c.MTTR <= 0 {
		return fmt.Errorf("failure: MTBF=%v and MTTR=%v must be positive", c.MTBF, c.MTTR)
	}
	if c.Horizon == 0 {
		c.Horizon = 1e6
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("failure: Horizon=%v must be positive", c.Horizon)
	}
	return nil
}

// AvailabilityResult summarizes a simulation.
type AvailabilityResult struct {
	// Failures is the number of switch-failure events simulated.
	Failures int
	// OverflowEvents counts transitions into the ">n concurrently down"
	// state — moments a failure found the backup pool empty.
	OverflowEvents int
	// OverflowFraction is the fraction of simulated time spent with more
	// than n switches down.
	OverflowFraction float64
	// Unavailability is the measured per-switch down-time fraction (for
	// calibration against the analytic input).
	Unavailability float64
	// AnalyticOverflow is BinomialTail(GroupSize, Backups, p) at the
	// measured unavailability, for comparison.
	AnalyticOverflow float64
}

// SimulateGroupAvailability runs the Monte-Carlo simulation event by event.
func SimulateGroupAvailability(cfg AvailabilityConfig) (*AvailabilityResult, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// nextEvent[i] is switch i's next transition time; down[i] its state.
	next := make([]float64, cfg.GroupSize)
	down := make([]bool, cfg.GroupSize)
	for i := range next {
		next[i] = rng.ExpFloat64() * cfg.MTBF
	}
	res := &AvailabilityResult{}
	now := 0.0
	downCount := 0
	downTime := 0.0     // integrated switch-down time
	overflowTime := 0.0 // integrated time with downCount > Backups
	for now < cfg.Horizon {
		// Next transition.
		i := 0
		for j := 1; j < cfg.GroupSize; j++ {
			if next[j] < next[i] {
				i = j
			}
		}
		t := next[i]
		if t > cfg.Horizon {
			t = cfg.Horizon
		}
		dt := t - now
		downTime += float64(downCount) * dt
		if downCount > cfg.Backups {
			overflowTime += dt
		}
		now = t
		if now >= cfg.Horizon {
			break
		}
		if down[i] {
			down[i] = false
			downCount--
			next[i] = now + rng.ExpFloat64()*cfg.MTBF
		} else {
			down[i] = true
			downCount++
			res.Failures++
			if downCount == cfg.Backups+1 {
				res.OverflowEvents++
			}
			next[i] = now + rng.ExpFloat64()*cfg.MTTR
		}
	}
	res.OverflowFraction = overflowTime / cfg.Horizon
	res.Unavailability = downTime / (cfg.Horizon * float64(cfg.GroupSize))
	res.AnalyticOverflow = BinomialTail(cfg.GroupSize, cfg.Backups, res.Unavailability)
	if math.IsNaN(res.AnalyticOverflow) {
		res.AnalyticOverflow = 0
	}
	return res, nil
}
