package failure

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"sharebackup/internal/sweep"
)

// Monte-Carlo availability simulation for Section 5.1: switches fail as
// independent Poisson processes (rate 1/MTBF) and repair after exponential
// MTTR; the question is how often a failure group has more than n switches
// down at once — i.e. how often ShareBackup's shared pool would be
// insufficient. The analytic answer is BinomialTail at the steady-state
// unavailability; the simulation validates it including the time dynamics.

// AvailabilityConfig parameterizes the simulation.
type AvailabilityConfig struct {
	// GroupSize is the number of switches sharing the pool (k/2).
	GroupSize int
	// Backups is the pool size n.
	Backups int
	// MTBF and MTTR are in hours. Defaults approximate the paper's
	// figures: four-nines availability with ~5-minute repairs ->
	// MTTR 1/12 h, MTBF ~833 h.
	MTBF, MTTR float64
	// Horizon is the simulated time in hours. Default 1e6.
	Horizon float64
	// Seed drives the simulation.
	Seed int64
	// Shards splits the horizon into this many independent simulations of
	// Horizon/Shards hours each, run as one sweep (each shard seeded from
	// its own substream of Seed) and summed. Shards <= 1 runs the single
	// sequential simulation; results differ between shard counts (different
	// RNG streams) but are identical for any Workers value at a fixed
	// Shards.
	Shards int
	// Workers sizes the sweep worker pool (0 = GOMAXPROCS). Only
	// meaningful with Shards > 1.
	Workers int
	// Checkpoint and Resume are the sweep's checkpoint file and resume
	// flag (see internal/sweep); only meaningful with Shards > 1.
	Checkpoint string
	Resume     bool
}

func (c *AvailabilityConfig) setDefaults() error {
	if c.GroupSize <= 0 {
		return fmt.Errorf("failure: GroupSize=%d must be positive", c.GroupSize)
	}
	if c.Backups < 0 {
		return fmt.Errorf("failure: Backups=%d must be non-negative", c.Backups)
	}
	if c.MTTR == 0 {
		c.MTTR = 1.0 / 12 // 5 minutes
	}
	if c.MTBF == 0 {
		c.MTBF = c.MTTR * (1 - SwitchFailureRate) / SwitchFailureRate
	}
	if c.MTBF <= 0 || c.MTTR <= 0 {
		return fmt.Errorf("failure: MTBF=%v and MTTR=%v must be positive", c.MTBF, c.MTTR)
	}
	if c.Horizon == 0 {
		c.Horizon = 1e6
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("failure: Horizon=%v must be positive", c.Horizon)
	}
	return nil
}

// AvailabilityResult summarizes a simulation.
type AvailabilityResult struct {
	// Failures is the number of switch-failure events simulated.
	Failures int
	// OverflowEvents counts transitions into the ">n concurrently down"
	// state — moments a failure found the backup pool empty.
	OverflowEvents int
	// OverflowFraction is the fraction of simulated time spent with more
	// than n switches down.
	OverflowFraction float64
	// Unavailability is the measured per-switch down-time fraction (for
	// calibration against the analytic input).
	Unavailability float64
	// AnalyticOverflow is BinomialTail(GroupSize, Backups, p) at the
	// measured unavailability, for comparison.
	AnalyticOverflow float64
}

// availabilitySlice is one shard's raw tallies over its horizon slice.
// JSON-tagged so shards checkpoint.
type availabilitySlice struct {
	Failures       int     `json:"failures"`
	OverflowEvents int     `json:"overflow_events"`
	DownTime       float64 `json:"down_time"`
	OverflowTime   float64 `json:"overflow_time"`
}

// simulateSlice runs the event loop for one horizon slice starting from the
// all-up state. The process mixes in O(MTTR), so for slices much longer than
// the repair time the cold start is statistically negligible.
func simulateSlice(cfg *AvailabilityConfig, seed int64, horizon float64) availabilitySlice {
	rng := rand.New(rand.NewSource(seed))
	// next[i] is switch i's next transition time; down[i] its state.
	next := make([]float64, cfg.GroupSize)
	down := make([]bool, cfg.GroupSize)
	for i := range next {
		next[i] = rng.ExpFloat64() * cfg.MTBF
	}
	var sl availabilitySlice
	now := 0.0
	downCount := 0
	for now < horizon {
		// Next transition.
		i := 0
		for j := 1; j < cfg.GroupSize; j++ {
			if next[j] < next[i] {
				i = j
			}
		}
		t := next[i]
		if t > horizon {
			t = horizon
		}
		dt := t - now
		sl.DownTime += float64(downCount) * dt
		if downCount > cfg.Backups {
			sl.OverflowTime += dt
		}
		now = t
		if now >= horizon {
			break
		}
		if down[i] {
			down[i] = false
			downCount--
			next[i] = now + rng.ExpFloat64()*cfg.MTBF
		} else {
			down[i] = true
			downCount++
			sl.Failures++
			if downCount == cfg.Backups+1 {
				sl.OverflowEvents++
			}
			next[i] = now + rng.ExpFloat64()*cfg.MTTR
		}
	}
	return sl
}

// SimulateGroupAvailability runs the Monte-Carlo simulation event by event.
// With cfg.Shards > 1 the horizon is split into independent slices swept
// across cfg.Workers goroutines; the merged result is bit-identical for any
// worker count.
func SimulateGroupAvailability(cfg AvailabilityConfig) (*AvailabilityResult, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	var total availabilitySlice
	if cfg.Shards <= 1 {
		total = simulateSlice(&cfg, cfg.Seed, cfg.Horizon)
	} else {
		sliceHorizon := cfg.Horizon / float64(cfg.Shards)
		slices, err := sweep.Run(context.Background(), sweep.Config{
			Name: "montecarlo", Shards: cfg.Shards, Seed: cfg.Seed,
			Workers: cfg.Workers, Checkpoint: cfg.Checkpoint, Resume: cfg.Resume,
		}, func(_ context.Context, sh sweep.Shard) (availabilitySlice, error) {
			return simulateSlice(&cfg, sh.Seed, sliceHorizon), nil
		})
		if err != nil {
			return nil, err
		}
		for _, sl := range slices {
			total.Failures += sl.Failures
			total.OverflowEvents += sl.OverflowEvents
			total.DownTime += sl.DownTime
			total.OverflowTime += sl.OverflowTime
		}
	}
	res := &AvailabilityResult{
		Failures:         total.Failures,
		OverflowEvents:   total.OverflowEvents,
		OverflowFraction: total.OverflowTime / cfg.Horizon,
		Unavailability:   total.DownTime / (cfg.Horizon * float64(cfg.GroupSize)),
	}
	res.AnalyticOverflow = BinomialTail(cfg.GroupSize, cfg.Backups, res.Unavailability)
	if math.IsNaN(res.AnalyticOverflow) {
		res.AnalyticOverflow = 0
	}
	return res, nil
}
