package coflow

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// FuzzParse hardens the trace parser against malformed input: it must never
// panic, and anything it accepts must satisfy the trace invariants.
func FuzzParse(f *testing.F) {
	f.Add(sampleTrace)
	f.Add("3 1\n0 0 1 0 1 1:1\n")
	f.Add("")
	f.Add("1 0\n")
	f.Add("150 1\n0 999 3 0 1 2 2 10:5.5 20:0.25\n")
	f.Add("2 1\n0 0 1 0 1 1:1e309\n") // overflow size
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted traces are internally consistent.
		last := -1.0
		for i := range tr.Coflows {
			c := &tr.Coflows[i]
			if c.Arrival < last {
				t.Fatal("arrivals not sorted")
			}
			last = c.Arrival
			for _, fl := range c.Flows {
				if fl.Src < 0 || fl.Src >= tr.NumRacks || fl.Dst < 0 || fl.Dst >= tr.NumRacks {
					t.Fatalf("flow endpoint out of range: %+v", fl)
				}
				if fl.Src == fl.Dst {
					t.Fatal("rack-local flow survived parsing")
				}
				if !(fl.Bytes > 0) {
					t.Fatalf("non-positive flow bytes: %v", fl.Bytes)
				}
			}
		}
	})
}

// TestQuickGenerateFormatParse: for random generator configs, the generated
// trace round-trips through Format/Parse preserving coflow count, arrivals
// (to ms precision), and total bytes.
func TestQuickGenerateFormatParse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := GenConfig{
			Racks:      2 + r.Intn(40),
			NumCoflows: 1 + r.Intn(25),
			Duration:   1 + r.Float64()*500,
			Seed:       seed,
		}
		tr, err := Generate(cfg)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := tr.Format(&buf); err != nil {
			return false
		}
		back, err := Parse(&buf)
		if err != nil {
			return false
		}
		if len(back.Coflows) != len(tr.Coflows) || back.NumRacks != tr.NumRacks {
			return false
		}
		for i := range tr.Coflows {
			a, b := tr.Coflows[i].TotalBytes(), back.Coflows[i].TotalBytes()
			if a <= 0 {
				return false
			}
			rel := (a - b) / a
			if rel < 0 {
				rel = -rel
			}
			// %g formatting plus ms-truncated arrivals: generous
			// tolerance, but bytes must essentially survive.
			if rel > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
