// Package coflow models the coflow workloads of the paper's failure study.
// A coflow (Chowdhury & Stoica, HotNets'12) is a set of parallel flows with
// a collective completion semantic: the application can proceed only when
// every flow in the set has finished, so the Coflow Completion Time (CCT) is
// the finish time of the slowest flow. That straggler semantic is what
// magnifies rare failures into application-level disasters (Figure 1).
//
// The paper replays the Facebook coflow-benchmark trace — rack-level
// traffic from a 150-rack, 10:1 oversubscribed cluster. The trace file is an
// external download, so this package provides both a parser for its exact
// format and a synthetic generator with matching structure and heavy-tailed
// marginals (documented substitution in DESIGN.md).
package coflow

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Flow is one rack-to-rack transfer within a coflow.
type Flow struct {
	Src   int     // source rack
	Dst   int     // destination rack
	Bytes float64 // transfer size in bytes
}

// Coflow is a set of flows that complete together.
type Coflow struct {
	ID      int
	Arrival float64 // seconds from trace start
	Flows   []Flow
}

// Width returns the number of flows in the coflow — the quantity that
// drives failure magnification: P[coflow affected] = 1-(1-p)^Width.
func (c *Coflow) Width() int { return len(c.Flows) }

// TotalBytes sums the coflow's flow sizes.
func (c *Coflow) TotalBytes() float64 {
	sum := 0.0
	for _, f := range c.Flows {
		sum += f.Bytes
	}
	return sum
}

// Racks returns the distinct racks the coflow touches.
func (c *Coflow) Racks() []int {
	seen := make(map[int]bool)
	for _, f := range c.Flows {
		seen[f.Src] = true
		seen[f.Dst] = true
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Trace is a sequence of coflows over a rack-level fabric.
type Trace struct {
	NumRacks int
	Coflows  []Coflow
}

// Duration returns the time of the last arrival.
func (t *Trace) Duration() float64 {
	max := 0.0
	for i := range t.Coflows {
		if t.Coflows[i].Arrival > max {
			max = t.Coflows[i].Arrival
		}
	}
	return max
}

// TotalFlows counts flows across all coflows.
func (t *Trace) TotalFlows() int {
	n := 0
	for i := range t.Coflows {
		n += t.Coflows[i].Width()
	}
	return n
}

// Partition slices the trace into consecutive windows of windowSec seconds
// by arrival time (the paper runs 5-minute partitions; Section 2.2). Each
// window's coflows have arrivals rebased to the window start. Empty windows
// are included so window indices stay aligned with time.
func (t *Trace) Partition(windowSec float64) ([]*Trace, error) {
	if windowSec <= 0 {
		return nil, fmt.Errorf("coflow: Partition: window %v must be positive", windowSec)
	}
	nw := int(math.Floor(t.Duration()/windowSec)) + 1
	out := make([]*Trace, nw)
	for i := range out {
		out[i] = &Trace{NumRacks: t.NumRacks}
	}
	for _, c := range t.Coflows {
		w := int(c.Arrival / windowSec)
		cc := c
		cc.Arrival = c.Arrival - float64(w)*windowSec
		out[w].Coflows = append(out[w].Coflows, cc)
	}
	return out, nil
}

// MB is one megabyte in bytes, the unit of the coflow-benchmark format.
const MB = 1e6

// Parse reads the Facebook coflow-benchmark format:
//
//	<num racks> <num coflows>
//	<id> <arrival ms> <m> <mapper rack> x m <r> <rack>:<sizeMB> x r
//
// Each reducer's bytes are split evenly across the coflow's mappers, giving
// m*r flows. Mapper-local reducers produce no network flow and are skipped.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("coflow: empty trace")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 {
		return nil, fmt.Errorf("coflow: header %q: want '<racks> <coflows>'", sc.Text())
	}
	racks, err := strconv.Atoi(header[0])
	if err != nil {
		return nil, fmt.Errorf("coflow: header racks: %w", err)
	}
	count, err := strconv.Atoi(header[1])
	if err != nil {
		return nil, fmt.Errorf("coflow: header count: %w", err)
	}
	tr := &Trace{NumRacks: racks}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		c, err := parseCoflowLine(text, racks)
		if err != nil {
			return nil, fmt.Errorf("coflow: line %d: %w", line, err)
		}
		tr.Coflows = append(tr.Coflows, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tr.Coflows) != count {
		return nil, fmt.Errorf("coflow: header promises %d coflows, file has %d", count, len(tr.Coflows))
	}
	sort.SliceStable(tr.Coflows, func(i, j int) bool { return tr.Coflows[i].Arrival < tr.Coflows[j].Arrival })
	return tr, nil
}

func parseCoflowLine(text string, racks int) (Coflow, error) {
	f := strings.Fields(text)
	pos := 0
	next := func() (string, error) {
		if pos >= len(f) {
			return "", fmt.Errorf("truncated record")
		}
		s := f[pos]
		pos++
		return s, nil
	}
	nextInt := func() (int, error) {
		s, err := next()
		if err != nil {
			return 0, err
		}
		return strconv.Atoi(s)
	}
	id, err := nextInt()
	if err != nil {
		return Coflow{}, fmt.Errorf("coflow id: %w", err)
	}
	arrMS, err := nextInt()
	if err != nil {
		return Coflow{}, fmt.Errorf("arrival: %w", err)
	}
	m, err := nextInt()
	if err != nil {
		return Coflow{}, fmt.Errorf("mapper count: %w", err)
	}
	if m <= 0 {
		return Coflow{}, fmt.Errorf("mapper count %d must be positive", m)
	}
	mappers := make([]int, m)
	for i := range mappers {
		mappers[i], err = nextInt()
		if err != nil {
			return Coflow{}, fmt.Errorf("mapper %d: %w", i, err)
		}
		if mappers[i] < 0 || mappers[i] >= racks {
			return Coflow{}, fmt.Errorf("mapper rack %d out of range [0,%d)", mappers[i], racks)
		}
	}
	r, err := nextInt()
	if err != nil {
		return Coflow{}, fmt.Errorf("reducer count: %w", err)
	}
	if r <= 0 {
		return Coflow{}, fmt.Errorf("reducer count %d must be positive", r)
	}
	c := Coflow{ID: id, Arrival: float64(arrMS) / 1000}
	for i := 0; i < r; i++ {
		s, err := next()
		if err != nil {
			return Coflow{}, fmt.Errorf("reducer %d: %w", i, err)
		}
		parts := strings.SplitN(s, ":", 2)
		if len(parts) != 2 {
			return Coflow{}, fmt.Errorf("reducer %d: %q is not rack:sizeMB", i, s)
		}
		rack, err := strconv.Atoi(parts[0])
		if err != nil {
			return Coflow{}, fmt.Errorf("reducer %d rack: %w", i, err)
		}
		if rack < 0 || rack >= racks {
			return Coflow{}, fmt.Errorf("reducer rack %d out of range [0,%d)", rack, racks)
		}
		sizeMB, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return Coflow{}, fmt.Errorf("reducer %d size: %w", i, err)
		}
		if sizeMB <= 0 {
			return Coflow{}, fmt.Errorf("reducer %d size %v must be positive", i, sizeMB)
		}
		per := sizeMB * MB / float64(m)
		for _, src := range mappers {
			if src == rack {
				continue // rack-local shuffle: no network flow
			}
			c.Flows = append(c.Flows, Flow{Src: src, Dst: rack, Bytes: per})
		}
	}
	return c, nil
}

// Format writes the trace in coflow-benchmark format, the inverse of Parse
// up to flow regrouping. Note Parse splits reducers into flows, so Format
// reconstructs mapper/reducer structure from the flow set.
func (t *Trace) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%d %d\n", t.NumRacks, len(t.Coflows)); err != nil {
		return err
	}
	for i := range t.Coflows {
		c := &t.Coflows[i]
		mapperSet := make(map[int]bool)
		reducerBytes := make(map[int]float64)
		for _, f := range c.Flows {
			mapperSet[f.Src] = true
			reducerBytes[f.Dst] += f.Bytes
		}
		mappers := make([]int, 0, len(mapperSet))
		for m := range mapperSet {
			mappers = append(mappers, m)
		}
		sort.Ints(mappers)
		reducers := make([]int, 0, len(reducerBytes))
		for r := range reducerBytes {
			reducers = append(reducers, r)
		}
		sort.Ints(reducers)
		var b strings.Builder
		fmt.Fprintf(&b, "%d %d %d", c.ID, int(c.Arrival*1000), len(mappers))
		for _, m := range mappers {
			fmt.Fprintf(&b, " %d", m)
		}
		fmt.Fprintf(&b, " %d", len(reducers))
		for _, r := range reducers {
			sizeMB := reducerBytes[r] / MB
			// The format splits a reducer's size across all mappers
			// and drops the rack-local pair; when this reducer rack
			// is itself a mapper, scale the written size up so a
			// re-parse reproduces the same network bytes.
			if mapperSet[r] && len(mappers) > 1 {
				sizeMB *= float64(len(mappers)) / float64(len(mappers)-1)
			}
			fmt.Fprintf(&b, " %d:%g", r, sizeMB)
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// GenConfig parameterizes the synthetic generator. Zero fields take the
// defaults documented on each field, which approximate the published
// structure of the Facebook trace (150 racks, 526 coflows over one hour,
// heavy-tailed widths and sizes).
type GenConfig struct {
	// Racks is the number of rack endpoints. Default 150.
	Racks int
	// NumCoflows is the number of coflows to generate. Default 526.
	NumCoflows int
	// Duration is the arrival horizon in seconds (Poisson arrivals).
	// Default 3600.
	Duration float64
	// Seed makes generation deterministic.
	Seed int64

	// MapperLogMean/MapperLogStd parameterize the lognormal mapper count.
	// Defaults 1.2 and 1.3: median ~3 mappers, tail to all racks.
	MapperLogMean, MapperLogStd float64
	// ReducerLogMean/ReducerLogStd parameterize the lognormal reducer
	// count. Defaults 0.9 and 1.4.
	ReducerLogMean, ReducerLogStd float64
	// SizeLogMeanMB/SizeLogStdMB parameterize the lognormal per-reducer
	// size in MB. Defaults 1.8 and 1.9: median ~6 MB, tail to tens of GB.
	SizeLogMeanMB, SizeLogStdMB float64
}

func (c *GenConfig) setDefaults() error {
	if c.Racks == 0 {
		c.Racks = 150
	}
	if c.Racks < 2 {
		return fmt.Errorf("coflow: Racks=%d must be >= 2", c.Racks)
	}
	if c.NumCoflows == 0 {
		c.NumCoflows = 526
	}
	if c.NumCoflows < 0 {
		return fmt.Errorf("coflow: NumCoflows=%d must be positive", c.NumCoflows)
	}
	if c.Duration == 0 {
		c.Duration = 3600
	}
	if c.Duration < 0 {
		return fmt.Errorf("coflow: Duration=%v must be positive", c.Duration)
	}
	if c.MapperLogMean == 0 {
		c.MapperLogMean = 1.2
	}
	if c.MapperLogStd == 0 {
		c.MapperLogStd = 1.3
	}
	if c.ReducerLogMean == 0 {
		c.ReducerLogMean = 0.9
	}
	if c.ReducerLogStd == 0 {
		c.ReducerLogStd = 1.4
	}
	if c.SizeLogMeanMB == 0 {
		c.SizeLogMeanMB = 1.8
	}
	if c.SizeLogStdMB == 0 {
		c.SizeLogStdMB = 1.9
	}
	return nil
}

// Generate produces a synthetic trace with the configured marginals:
// lognormal mapper/reducer counts (clipped to the rack count), lognormal
// per-reducer bytes split across mappers, uniform rack placement without
// replacement, and uniform arrivals over the duration (a Poisson process
// conditioned on the count).
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{NumRacks: cfg.Racks}
	lognormInt := func(mu, sigma float64, max int) int {
		v := int(math.Round(math.Exp(rng.NormFloat64()*sigma + mu)))
		if v < 1 {
			v = 1
		}
		if v > max {
			v = max
		}
		return v
	}
	for i := 0; i < cfg.NumCoflows; i++ {
		m := lognormInt(cfg.MapperLogMean, cfg.MapperLogStd, cfg.Racks)
		r := lognormInt(cfg.ReducerLogMean, cfg.ReducerLogStd, cfg.Racks)
		perm := rng.Perm(cfg.Racks)
		mappers := perm[:m]
		reducers := make([]int, r)
		// Reducers drawn independently of mappers (rack-local pairs
		// are dropped, as in Parse).
		perm2 := rng.Perm(cfg.Racks)
		copy(reducers, perm2[:r])
		c := Coflow{ID: i, Arrival: rng.Float64() * cfg.Duration}
		for _, red := range reducers {
			sizeMB := math.Exp(rng.NormFloat64()*cfg.SizeLogStdMB + cfg.SizeLogMeanMB)
			per := sizeMB * MB / float64(m)
			for _, src := range mappers {
				if src == red {
					continue
				}
				c.Flows = append(c.Flows, Flow{Src: src, Dst: red, Bytes: per})
			}
		}
		if len(c.Flows) == 0 {
			// Degenerate single-rack coflow; synthesize one flow so
			// every coflow is observable on the network.
			dst := (mappers[0] + 1) % cfg.Racks
			c.Flows = append(c.Flows, Flow{Src: mappers[0], Dst: dst,
				Bytes: math.Exp(rng.NormFloat64()*cfg.SizeLogStdMB+cfg.SizeLogMeanMB) * MB})
		}
		tr.Coflows = append(tr.Coflows, c)
	}
	sort.SliceStable(tr.Coflows, func(i, j int) bool { return tr.Coflows[i].Arrival < tr.Coflows[j].Arrival })
	return tr, nil
}
