package coflow

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
)

const sampleTrace = `3 2
0 0 2 0 1 1 2:6
1 1500 1 2 2 0:3 2:4
`

func TestParse(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRacks != 3 || len(tr.Coflows) != 2 {
		t.Fatalf("parsed %d racks, %d coflows", tr.NumRacks, len(tr.Coflows))
	}
	c0 := tr.Coflows[0]
	// Coflow 0: mappers {0,1}, reducer 2 with 6 MB -> 2 flows of 3 MB.
	if c0.Width() != 2 {
		t.Fatalf("coflow 0 width = %d, want 2", c0.Width())
	}
	for _, f := range c0.Flows {
		if f.Dst != 2 || math.Abs(f.Bytes-3*MB) > 1 {
			t.Errorf("coflow 0 flow = %+v", f)
		}
	}
	// Coflow 1: mapper {2}, reducers 0 (3MB) and 2 (4MB). The 2->2 flow
	// is rack-local and dropped.
	c1 := tr.Coflows[1]
	if c1.Width() != 1 {
		t.Fatalf("coflow 1 width = %d, want 1 (local flow dropped)", c1.Width())
	}
	if c1.Flows[0].Src != 2 || c1.Flows[0].Dst != 0 || math.Abs(c1.Flows[0].Bytes-3*MB) > 1 {
		t.Errorf("coflow 1 flow = %+v", c1.Flows[0])
	}
	if c1.Arrival != 1.5 {
		t.Errorf("coflow 1 arrival = %v s, want 1.5", c1.Arrival)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"short header", "3\n"},
		{"count mismatch", "3 5\n0 0 1 0 1 1:1\n"},
		{"mapper out of range", "3 1\n0 0 1 9 1 1:1\n"},
		{"reducer out of range", "3 1\n0 0 1 0 1 9:1\n"},
		{"bad reducer format", "3 1\n0 0 1 0 1 1-1\n"},
		{"zero mappers", "3 1\n0 0 0 1 1:1\n"},
		{"negative size", "3 1\n0 0 1 0 1 1:-2\n"},
		{"truncated", "3 1\n0 0 2 0\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: parse accepted", c.name)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	tr, err := Generate(GenConfig{Racks: 20, NumCoflows: 30, Duration: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Format(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\nfile:\n%s", err, buf.String())
	}
	if len(back.Coflows) != len(tr.Coflows) {
		t.Fatalf("round trip lost coflows: %d -> %d", len(tr.Coflows), len(back.Coflows))
	}
	// Total bytes are preserved within formatting precision. (Width can
	// legitimately change: Format regroups flows into full m x r
	// rectangles.)
	for i := range tr.Coflows {
		a, b := tr.Coflows[i].TotalBytes(), back.Coflows[i].TotalBytes()
		if math.Abs(a-b)/a > 1e-6 && math.Abs(a-b) > 1 {
			t.Errorf("coflow %d bytes %v -> %v", i, a, b)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenConfig{Seed: 9, NumCoflows: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Seed: 9, NumCoflows: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Coflows) != len(b.Coflows) {
		t.Fatal("nondeterministic coflow count")
	}
	for i := range a.Coflows {
		if a.Coflows[i].Arrival != b.Coflows[i].Arrival || a.Coflows[i].Width() != b.Coflows[i].Width() {
			t.Fatalf("coflow %d differs between same-seed runs", i)
		}
	}
	c, err := Generate(GenConfig{Seed: 10, NumCoflows: 50})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Coflows {
		if a.Coflows[i].Width() != c.Coflows[i].Width() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateMarginals(t *testing.T) {
	tr, err := Generate(GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRacks != 150 || len(tr.Coflows) != 526 {
		t.Fatalf("defaults: %d racks, %d coflows", tr.NumRacks, len(tr.Coflows))
	}
	widths := make([]int, len(tr.Coflows))
	for i := range tr.Coflows {
		w := tr.Coflows[i].Width()
		if w < 1 {
			t.Fatalf("coflow %d has no flows", i)
		}
		widths[i] = w
	}
	sort.Ints(widths)
	median := widths[len(widths)/2]
	max := widths[len(widths)-1]
	// Heavy tail: the median coflow is narrow, the widest is orders of
	// magnitude wider (the Facebook trace spans 1 to >20k flows).
	if median > 60 {
		t.Errorf("median width = %d; want mostly narrow coflows", median)
	}
	if max < 100 {
		t.Errorf("max width = %d; tail not heavy enough", max)
	}
	// Arrivals within horizon and sorted.
	last := -1.0
	for i := range tr.Coflows {
		a := tr.Coflows[i].Arrival
		if a < last {
			t.Fatal("arrivals not sorted")
		}
		if a < 0 || a > 3600 {
			t.Fatalf("arrival %v outside horizon", a)
		}
		last = a
	}
	// All endpoints in range and no rack-local flows.
	for i := range tr.Coflows {
		for _, f := range tr.Coflows[i].Flows {
			if f.Src == f.Dst {
				t.Fatalf("coflow %d has a rack-local flow", i)
			}
			if f.Src < 0 || f.Src >= 150 || f.Dst < 0 || f.Dst >= 150 {
				t.Fatalf("coflow %d flow endpoint out of range: %+v", i, f)
			}
			if f.Bytes <= 0 {
				t.Fatalf("coflow %d non-positive flow size", i)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Racks: 1}); err == nil {
		t.Error("1-rack config accepted")
	}
	if _, err := Generate(GenConfig{NumCoflows: -5}); err == nil {
		t.Error("negative coflow count accepted")
	}
	if _, err := Generate(GenConfig{Duration: -1}); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestPartition(t *testing.T) {
	tr := &Trace{NumRacks: 4, Coflows: []Coflow{
		{ID: 0, Arrival: 10, Flows: []Flow{{0, 1, 1}}},
		{ID: 1, Arrival: 310, Flows: []Flow{{1, 2, 1}}},
		{ID: 2, Arrival: 320, Flows: []Flow{{2, 3, 1}}},
		{ID: 3, Arrival: 900, Flows: []Flow{{0, 3, 1}}},
	}}
	windows, err := tr.Partition(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 4 {
		t.Fatalf("windows = %d, want 4 (0-300, 300-600, 600-900, 900-1200)", len(windows))
	}
	if len(windows[0].Coflows) != 1 || len(windows[1].Coflows) != 2 ||
		len(windows[2].Coflows) != 0 || len(windows[3].Coflows) != 1 {
		t.Fatalf("window sizes = %d,%d,%d,%d", len(windows[0].Coflows), len(windows[1].Coflows),
			len(windows[2].Coflows), len(windows[3].Coflows))
	}
	// Arrivals rebased to window start.
	if got := windows[1].Coflows[0].Arrival; got != 10 {
		t.Errorf("rebased arrival = %v, want 10", got)
	}
	if got := windows[3].Coflows[0].Arrival; got != 0 {
		t.Errorf("rebased arrival = %v, want 0", got)
	}
	if _, err := tr.Partition(0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestCoflowHelpers(t *testing.T) {
	c := Coflow{Flows: []Flow{{0, 1, 5}, {2, 1, 7}}}
	if c.Width() != 2 {
		t.Error("width")
	}
	if c.TotalBytes() != 12 {
		t.Error("total bytes")
	}
	racks := c.Racks()
	if len(racks) != 3 || racks[0] != 0 || racks[1] != 1 || racks[2] != 2 {
		t.Errorf("racks = %v", racks)
	}
}
