package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// The checkpoint is a JSONL file: a header line identifying the sweep,
// followed by one line per completed shard, appended (and flushed) as each
// shard finishes. A killed run leaves at worst one truncated trailing line,
// which resume tolerates; every complete line is a shard that never needs to
// run again. Opening a checkpoint rewrites the file (header plus the prior
// lines being kept) through a temp file + rename, so a resumed file is
// always well-formed before new lines are appended.

const checkpointVersion = 1

type checkpointHeader struct {
	Sweep   string `json:"sweep"`
	Shards  int    `json:"shards"`
	Seed    int64  `json:"seed"`
	Version int    `json:"version"`
}

type checkpointLine struct {
	Shard int             `json:"shard"`
	Data  json.RawMessage `json:"data"`
}

// loadCheckpoint reads the completed shards of a prior run. A missing file
// is an empty resume, not an error; a header that names a different sweep
// (name, shard count, or seed) is an error, because merging shards from two
// different trial spaces would silently corrupt the results. A truncated
// final line (the run was killed mid-append) is dropped; malformed content
// anywhere else is an error.
func loadCheckpoint(path string, want checkpointHeader) (map[int]json.RawMessage, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	var lines [][]byte
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) > 0 {
			lines = append(lines, append([]byte(nil), line...))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint %s: %w", path, err)
	}
	if len(lines) == 0 {
		return nil, nil
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint %s: bad header: %w", path, err)
	}
	if hdr != want {
		return nil, fmt.Errorf("sweep: checkpoint %s was written by a different sweep: have %+v, want %+v",
			path, hdr, want)
	}
	out := make(map[int]json.RawMessage)
	for i, line := range lines[1:] {
		var cl checkpointLine
		if err := json.Unmarshal(line, &cl); err != nil {
			if i == len(lines)-2 {
				break // truncated final line from a killed run
			}
			return nil, fmt.Errorf("sweep: checkpoint %s line %d: %w", path, i+2, err)
		}
		if cl.Shard < 0 || cl.Shard >= want.Shards {
			return nil, fmt.Errorf("sweep: checkpoint %s line %d: shard %d out of range [0, %d)",
				path, i+2, cl.Shard, want.Shards)
		}
		out[cl.Shard] = cl.Data
	}
	return out, nil
}

// checkpointWriter appends completed shard lines, one flushed write each.
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
}

// openCheckpoint rewrites path to contain the header plus the prior
// completed lines (temp file + rename, so a crash never leaves a corrupt
// header) and returns an appending writer.
func openCheckpoint(path string, hdr checkpointHeader, prior map[int]json.RawMessage) (*checkpointWriter, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(hdr); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint header: %w", err)
	}
	for shard := 0; shard < hdr.Shards; shard++ {
		data, ok := prior[shard]
		if !ok {
			continue
		}
		if err := enc.Encode(checkpointLine{Shard: shard, Data: data}); err != nil {
			return nil, fmt.Errorf("sweep: checkpoint shard %d: %w", shard, err)
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	return &checkpointWriter{f: f}, nil
}

// write appends one completed shard as a single flushed line.
func (w *checkpointWriter) write(shard int, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: checkpoint shard %d: %w", shard, err)
	}
	line, err := json.Marshal(checkpointLine{Shard: shard, Data: data})
	if err != nil {
		return fmt.Errorf("sweep: checkpoint shard %d: %w", shard, err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("sweep: checkpoint shard %d: %w", shard, err)
	}
	return nil
}

func (w *checkpointWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
